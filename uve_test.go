package uve_test

import (
	"math"
	"testing"

	uve "repro"
)

// TestQuickstartSaxpy runs the paper's Fig 4 saxpy end to end through the
// public API on the UVE machine.
func TestQuickstartSaxpy(t *testing.T) {
	const n, a = 1000, 2.5
	m := uve.NewMachine(uve.DefaultConfig())
	x := m.Float32s(n)
	y := m.Float32s(n)
	x.Fill(func(i int) float64 { return float64(i) })
	y.Fill(func(i int) float64 { return float64(2 * i) })

	b := uve.NewProgram("saxpy")
	b.ConfigStream(0, uve.NewLoadStream(x.Base, uve.W4).Linear(n, 1).MustBuild())
	b.ConfigStream(1, uve.NewLoadStream(y.Base, uve.W4).Linear(n, 1).MustBuild())
	b.ConfigStream(2, uve.NewStoreStream(y.Base, uve.W4).Linear(n, 1).MustBuild())
	b.I(uve.VDup(uve.W4, uve.V(3), uve.F(1)))
	b.Label("loop")
	b.I(uve.VFMul(uve.W4, uve.V(4), uve.V(3), uve.V(0), uve.None))
	b.I(uve.VFAdd(uve.W4, uve.V(2), uve.V(4), uve.V(1), uve.None))
	b.I(uve.BranchStreamNotEnd(0, "loop"))
	b.I(uve.Halt())

	res, err := m.Run(b.MustBuild(), uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(float32(a)*float32(i) + float32(2*i))
		if got := y.At(i); got != want {
			t.Fatalf("y[%d] = %v, want %v", i, got, want)
		}
	}
	if res.Cycles <= 0 || res.Committed == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	// The streamed loop is 2 compute instructions + 1 branch per 16-lane
	// chunk: far fewer committed instructions than elements.
	if res.Committed > uint64(n) {
		t.Fatalf("committed %d instructions for %d elements", res.Committed, n)
	}
}

// TestDescriptorAddressesStandalone exercises the pattern model without a
// machine: the paper's Fig 3.B4 lower-triangular pattern.
func TestDescriptorAddressesStandalone(t *testing.T) {
	d := uve.NewLoadStream(0, uve.W4).
		Dim(0, 0, 1).
		Dim(0, 4, 10).
		Mod(uve.TargetSize, uve.ModAdd, 1, 4).
		MustBuild()
	got := uve.Addresses(d, nil)
	want := []uint64{0, 40, 44, 80, 84, 88, 120, 124, 128, 132}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i]*4/4*4 { // byte addresses, width 4, idx already scaled
			break
		}
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("addr[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestBaselineMachinesRun checks the SVE and NEON configurations execute
// the same baseline program.
func TestBaselineMachinesRun(t *testing.T) {
	for _, cfg := range []uve.Config{uve.SVEConfig(), uve.NEONConfig()} {
		m := uve.NewMachine(cfg)
		src := m.Float32s(64)
		dst := m.Float32s(64)
		src.Fill(func(i int) float64 { return float64(i) })

		w := uve.W4
		b := uve.NewProgram("copy")
		b.I(uve.Li(uve.X(9), 0))
		b.I(uve.Whilelt(w, uve.P(1), uve.X(9), uve.X(1)))
		b.Label("loop")
		b.I(uve.VLoad(w, uve.V(1), uve.X(2), uve.X(9), 0, uve.P(1)))
		b.I(uve.VStore(w, uve.X(3), uve.X(9), 0, uve.V(1), uve.P(1)))
		b.I(uve.IncVL(w, uve.X(9), uve.X(9)))
		b.I(uve.Whilelt(w, uve.P(1), uve.X(9), uve.X(1)))
		b.I(uve.BFirst(uve.P(1), "loop"))
		b.I(uve.Halt())

		_, err := m.Run(b.MustBuild(),
			uve.IntArg(1, 64), uve.IntArg(2, src.Base), uve.IntArg(3, dst.Base))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if dst.At(i) != float64(i) {
				t.Fatalf("VecBytes=%d: dst[%d] = %v", m.VecBytes(), i, dst.At(i))
			}
		}
	}
}

// TestIndirectGatherPublicAPI runs an indirect (gather) stream through the
// public API: out[i] = table[idx[i]].
func TestIndirectGatherPublicAPI(t *testing.T) {
	const n = 200
	m := uve.NewMachine(uve.DefaultConfig())
	table := m.Float32s(512)
	table.Fill(func(i int) float64 { return math.Sqrt(float64(i)) })
	idx := m.Uint64s(n)
	idx.Fill(func(i int) uint64 { return uint64((i * 37) % 512) })
	out := m.Float32s(n)

	b := uve.NewProgram("gather")
	b.ConfigStream(0, uve.NewLoadStream(idx.Base, uve.W8).Linear(n, 1).MustBuild())
	b.ConfigStream(1, uve.NewLoadStream(table.Base, uve.W4).
		Dim(0, n, 0).
		Indirect(uve.TargetOffset, uve.ModSetValue, 0).
		MustBuild())
	b.ConfigStream(2, uve.NewStoreStream(out.Base, uve.W4).Linear(n, 1).MustBuild())
	b.Label("loop")
	b.I(uve.VMove(uve.W4, uve.V(2), uve.V(1)))
	b.I(uve.BranchStreamNotEnd(1, "loop"))
	b.I(uve.Halt())

	if _, err := m.Run(b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := table.At(int(idx.At(i)))
		if got := out.At(i); got != want {
			t.Fatalf("out[%d] = %v, want %v", i, got, want)
		}
	}
}

// TestUVEFasterThanBaseline is the headline property at API level.
func TestUVEFasterThanBaseline(t *testing.T) {
	const n = 4096
	run := func(cfg uve.Config, streaming bool) int64 {
		m := uve.NewMachine(cfg)
		x := m.Float32s(n)
		y := m.Float32s(n)
		x.Fill(func(i int) float64 { return 1 })
		y.Fill(func(i int) float64 { return 2 })
		w := uve.W4
		b := uve.NewProgram("saxpy")
		if streaming {
			b.ConfigStream(0, uve.NewLoadStream(x.Base, w).Linear(n, 1).MustBuild())
			b.ConfigStream(1, uve.NewLoadStream(y.Base, w).Linear(n, 1).MustBuild())
			b.ConfigStream(2, uve.NewStoreStream(y.Base, w).Linear(n, 1).MustBuild())
			b.I(uve.VDup(w, uve.V(3), uve.F(1)))
			b.Label("loop")
			b.I(uve.VFMul(w, uve.V(4), uve.V(3), uve.V(0), uve.None))
			b.I(uve.VFAdd(w, uve.V(2), uve.V(4), uve.V(1), uve.None))
			b.I(uve.BranchStreamNotEnd(0, "loop"))
		} else {
			b.I(uve.VDup(w, uve.V(3), uve.F(1)))
			b.I(uve.Li(uve.X(9), 0))
			b.I(uve.Whilelt(w, uve.P(1), uve.X(9), uve.X(1)))
			b.Label("loop")
			b.I(uve.VLoad(w, uve.V(1), uve.X(2), uve.X(9), 0, uve.P(1)))
			b.I(uve.VLoad(w, uve.V(2), uve.X(3), uve.X(9), 0, uve.P(1)))
			b.I(uve.VFMla(w, uve.V(2), uve.V(3), uve.V(1), uve.P(1)))
			b.I(uve.VStore(w, uve.X(3), uve.X(9), 0, uve.V(2), uve.P(1)))
			b.I(uve.IncVL(w, uve.X(9), uve.X(9)))
			b.I(uve.Whilelt(w, uve.P(1), uve.X(9), uve.X(1)))
			b.I(uve.BFirst(uve.P(1), "loop"))
		}
		b.I(uve.Halt())
		res, err := m.Run(b.MustBuild(),
			uve.FloatArg(1, w, 2.0),
			uve.IntArg(1, n), uve.IntArg(2, x.Base), uve.IntArg(3, y.Base))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	uveCycles := run(uve.DefaultConfig(), true)
	sveCycles := run(uve.SVEConfig(), false)
	if uveCycles >= sveCycles {
		t.Fatalf("UVE %d cycles ≥ SVE %d cycles", uveCycles, sveCycles)
	}
}

// TestEstimateCostSaxpy validates the public static cost model entry point
// against a real run: the exact committed-instruction prediction must equal
// the measured count and every cycle bound must hold.
func TestEstimateCostSaxpy(t *testing.T) {
	const n, a = 1000, 2.5
	m := uve.NewMachine(uve.DefaultConfig())
	x := m.Float32s(n)
	y := m.Float32s(n)
	x.Fill(func(i int) float64 { return float64(i) })
	y.Fill(func(i int) float64 { return float64(2 * i) })

	b := uve.NewProgram("saxpy")
	b.ConfigStream(0, uve.NewLoadStream(x.Base, uve.W4).Linear(n, 1).MustBuild())
	b.ConfigStream(1, uve.NewLoadStream(y.Base, uve.W4).Linear(n, 1).MustBuild())
	b.ConfigStream(2, uve.NewStoreStream(y.Base, uve.W4).Linear(n, 1).MustBuild())
	b.I(uve.VDup(uve.W4, uve.V(3), uve.F(1)))
	b.Label("loop")
	b.I(uve.VFMul(uve.W4, uve.V(4), uve.V(3), uve.V(0), uve.None))
	b.I(uve.VFAdd(uve.W4, uve.V(2), uve.V(4), uve.V(1), uve.None))
	b.I(uve.BranchStreamNotEnd(0, "loop"))
	b.I(uve.Halt())
	p := b.MustBuild()

	est, err := m.EstimateCost(p, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	if !est.Exact {
		t.Fatalf("saxpy is pure affine; estimate must be exact: %v", est.Diags)
	}
	res, err := m.Run(p, uve.FloatArg(1, uve.W4, a))
	if err != nil {
		t.Fatal(err)
	}
	if !est.Committed.IsExact() || est.Committed.Value() != res.Committed {
		t.Fatalf("predicted committed %s, measured %d", est.Committed, res.Committed)
	}
	if est.Bounds.Best <= 0 || est.Bounds.Best > res.Cycles {
		t.Fatalf("cycle lower bound %d (%s) exceeds measured %d cycles",
			est.Bounds.Best, est.Bounds.BestName, res.Cycles)
	}
	// All three streams are length-n and fully consumed.
	if len(est.Streams) != 3 {
		t.Fatalf("want 3 streams, got %d", len(est.Streams))
	}
	for _, s := range est.Streams {
		if !s.Elems.IsExact() || s.Elems.Value() != n {
			t.Fatalf("u%d: elems %s, want exactly %d", s.U, s.Elems, n)
		}
		if !s.Complete {
			t.Fatalf("u%d: stream not statically complete", s.U)
		}
	}
}
