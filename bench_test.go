package uve_test

import (
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// The benchmarks below regenerate every table and figure of the paper's
// evaluation (§VI). Each reports the paper's metrics as custom benchmark
// units, so `go test -bench=. -benchmem` produces the full evaluation.
// Problem sizes are scaled down (bench.Options{Scale: 4}) to keep a full
// sweep quick; run cmd/uvebench for paper-scale numbers. The harness fans
// simulations out over all cores; fresh Options per iteration keep the
// memo table from short-circuiting repeated measurement iterations.

func benchOpts() *bench.Options { return &bench.Options{Scale: 4} }

// BenchmarkFig8Table reports the benchmark-metadata table (Fig 8 left).
func BenchmarkFig8Table(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = bench.FormatFig8Table()
	}
	b.ReportMetric(float64(len(kernels.All)), "kernels")
}

// BenchmarkFig8 regenerates Fig 8 A–D: committed-instruction reduction,
// speedup, rename blocks and DRAM bus utilization across all 19 kernels.
func BenchmarkFig8(b *testing.B) {
	var rows []bench.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig8(benchOpts())
	}
	b.ReportMetric(bench.GeoMeanSpeedup(rows, kernels.SVE, true), "speedup-vs-SVE")
	b.ReportMetric(bench.GeoMeanSpeedup(rows, kernels.NEON, false), "speedup-vs-NEON")
	b.ReportMetric(100*bench.MeanInstReduction(rows, kernels.SVE, true), "%inst-red-vs-SVE")
	b.ReportMetric(100*bench.MeanInstReduction(rows, kernels.NEON, false), "%inst-red-vs-NEON")
	b.ReportMetric(100*bench.MeanRenameReduction(rows, kernels.SVE, true), "%rename-red-vs-SVE")
}

// BenchmarkFig8Sequential is BenchmarkFig8 pinned to one worker — the
// baseline for measuring the parallel runner's scaling on this machine.
func BenchmarkFig8Sequential(b *testing.B) {
	var rows []bench.Fig8Row
	for i := 0; i < b.N; i++ {
		rows = bench.Fig8(&bench.Options{Scale: 4, Workers: 1})
	}
	b.ReportMetric(bench.GeoMeanSpeedup(rows, kernels.SVE, true), "speedup-vs-SVE")
}

// Per-kernel benchmarks: BenchmarkKernel/<ID>-<name>/<variant> measures one
// benchmark on one machine and reports cycles and IPC.
func BenchmarkKernel(b *testing.B) {
	for _, k := range kernels.All {
		k := k
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			v := v
			b.Run(fmt.Sprintf("%s-%s/%s", k.ID, k.Name, v), func(b *testing.B) {
				var cycles int64
				var inst uint64
				size := bench.SizeFor(k, benchOpts())
				for i := 0; i < b.N; i++ {
					// A fresh single-worker runner per iteration: its memo
					// table must not short-circuit repeated measurements.
					res, err := bench.NewRunner(1).Run(bench.Job{Kernel: k, Variant: v, Size: size})
					if err != nil {
						b.Fatal(err)
					}
					cycles, inst = res.Cycles, res.Committed
				}
				b.ReportMetric(float64(cycles), "cycles")
				b.ReportMetric(float64(inst), "committed")
			})
		}
	}
}

// BenchmarkFig8E regenerates the GEMM loop-unrolling ablation.
func BenchmarkFig8E(b *testing.B) {
	var pts []bench.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = bench.Fig8E(benchOpts())
	}
	for _, p := range pts {
		b.ReportMetric(p.Speedup, p.Param)
	}
}

// BenchmarkFig9 regenerates the vector physical-register sensitivity sweep.
func BenchmarkFig9(b *testing.B) {
	var pts []bench.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = bench.Fig9(benchOpts())
	}
	// Report the paper's headline: UVE insensitive, SVE sensitive.
	var uveMax, sveMax float64
	for _, p := range pts {
		d := p.Speedup
		if d < 1 {
			d = 1 / d
		}
		if p.Variant == kernels.UVE && d-1 > uveMax {
			uveMax = d - 1
		}
		if p.Variant == kernels.SVE && d-1 > sveMax {
			sveMax = d - 1
		}
	}
	b.ReportMetric(100*uveMax, "%max-UVE-PR-sensitivity")
	b.ReportMetric(100*sveMax, "%max-SVE-PR-sensitivity")
}

// BenchmarkFig10 regenerates the FIFO-depth sensitivity sweep.
func BenchmarkFig10(b *testing.B) {
	var pts []bench.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = bench.Fig10(benchOpts())
	}
	for _, p := range pts {
		if p.Param == "depth=2" || p.Param == "depth=4" {
			b.ReportMetric(p.Speedup, p.Kernel+"/"+p.Param)
		}
	}
}

// BenchmarkFig11 regenerates the streaming cache-level sensitivity sweep.
func BenchmarkFig11(b *testing.B) {
	var pts []bench.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = bench.Fig11(benchOpts())
	}
	for _, p := range pts {
		if p.Param != "L2" {
			b.ReportMetric(p.Speedup, p.Kernel+"/"+p.Param)
		}
	}
}

// BenchmarkSPMSweep regenerates the stream-processing-module count sweep
// (§VI-B: the paper reports <0.1% variation between 2 and 8 modules).
func BenchmarkSPMSweep(b *testing.B) {
	var pts []bench.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = bench.SPMSweep(benchOpts())
	}
	var maxDev float64
	for _, p := range pts {
		d := p.Speedup - 1
		if d < 0 {
			d = -d
		}
		if d > maxDev {
			maxDev = d
		}
	}
	b.ReportMetric(100*maxDev, "%max-SPM-variation")
}

// simWallCells are the representative kernel×variant cells for the
// wall-clock trajectory (BENCH_simwall.json): a streaming BLAS kernel, an
// irregular gather, and a 3-D stencil, each on the machines where their
// behavior differs most, plus a fault-starved run (heavy NACK backoffs)
// where the machine spends most cycles provably idle — the workload class
// event-driven skipping exists for. scripts/perfsmoke.sh gates regressions
// on these.
var simWallCells = []struct {
	id     string
	v      kernels.Variant
	faults string // fault.ParsePlan spec; cycle tiers only
}{
	{"C", kernels.UVE, ""},
	{"C", kernels.SVE, ""},
	{"C", kernels.NEON, ""},
	{"I", kernels.UVE, ""},
	{"I", kernels.SVE, ""},
	{"K", kernels.UVE, ""},
	{"C", kernels.UVE, "seed=7,nack=900,nack-backoff=200"},
}

// BenchmarkSimWall measures simulator wall-clock per run in three modes:
// the detailed model with event-driven cycle skipping (the default), the
// same model ticking every cycle, and the functional tier. ns/op is the
// trajectory metric; cycles (zero on the functional tier) confirms the
// workload is identical. Faulted cells run only on the cycle tiers — the
// functional tier rejects fault plans (nothing to perturb).
// sanitizeWallCells are the certified-elision pairs: kernels whose safety
// certificate proves every dependence pair disjoint (see
// internal/sim/sanitizeauto_test.go), each measured on the functional tier
// with the byte-granular sanitizer forced on and with SanitizeAuto eliding
// it from the certificate. The on/auto ns gap is the wall-clock the static
// proof buys; perfcmp records it as sanitize_elision_speedup.
var sanitizeWallCells = []struct {
	id   string
	mode sim.SanitizeMode
	name string
}{
	{"A", sim.SanitizeOn, "sanitize-on/A-UVE"},
	{"A", sim.SanitizeAuto, "sanitize-auto/A-UVE"},
	{"L", sim.SanitizeOn, "sanitize-on/L-UVE"},
	{"L", sim.SanitizeAuto, "sanitize-auto/L-UVE"},
}

func BenchmarkSimWall(b *testing.B) {
	for _, c := range sanitizeWallCells {
		c := c
		k := kernels.ByID(c.id)
		size := bench.SizeFor(k, &bench.Options{Scale: 64})
		b.Run(c.name, func(b *testing.B) {
			elided := false
			for i := 0; i < b.N; i++ {
				o := sim.DefaultOptions(kernels.UVE)
				o.Fidelity = sim.Functional
				o.SkipCheck = true
				o.Sanitize = c.mode
				res, err := sim.Run(k, kernels.UVE, size, &o)
				if err != nil {
					b.Fatal(err)
				}
				elided = res.SanitizerElided
			}
			if want := c.mode == sim.SanitizeAuto; elided != want {
				b.Fatalf("SanitizerElided=%v in mode %v", elided, c.mode)
			}
		})
	}
	for _, mode := range []string{"skip", "noskip", "functional"} {
		for _, c := range simWallCells {
			if mode == "functional" && c.faults != "" {
				continue
			}
			k := kernels.ByID(c.id)
			size := bench.SizeFor(k, benchOpts())
			name := fmt.Sprintf("%s/%s-%s", mode, c.id, c.v)
			var plan *fault.Plan
			if c.faults != "" {
				p, err := fault.ParsePlan(c.faults)
				if err != nil {
					b.Fatal(err)
				}
				plan = &p
				name += "-starved"
			}
			b.Run(name, func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					o := sim.DefaultOptions(c.v)
					o.SkipCheck = true
					o.Faults = plan
					switch mode {
					case "noskip":
						o.Core.EventSkip = false
					case "functional":
						o.Fidelity = sim.Functional
					}
					res, err := sim.Run(k, c.v, size, &o)
					if err != nil {
						b.Fatal(err)
					}
					cycles = res.Cycles
				}
				b.ReportMetric(float64(cycles), "cycles")
			})
		}
	}
}
