// Rowmax reproduces the paper's Fig 2 demonstration of simplified
// vectorization (feature F3): the maximum across the rows of three different
// inputs — a full matrix, a lower-triangular matrix, and a vector indexed
// through a pointer matrix — computed by EXACTLY the same loop code. Only
// the stream descriptors change.
//
//	go run ./examples/rowmax
package main

import (
	"fmt"

	uve "repro"
)

const (
	rows = 48
	cols = 48
	w    = uve.W4
)

func main() {
	full()
	triangular()
	indirect()
}

// loop is the shared Fig 2.D kernel: u0 is the input stream, u1 the
// per-row output stream.
func loop(b *uve.ProgramBuilder) {
	b.Label("next")
	b.I(uve.VMove(w, uve.V(5), uve.V(0))) // first chunk of the row
	b.I(uve.BranchDimEnd(0, 0, "hmax"))   // single-chunk row?
	b.Label("loop")
	b.I(uve.VFMax(w, uve.V(5), uve.V(5), uve.V(0), uve.None))
	b.I(uve.BranchDimNotEnd(0, 0, "loop"))
	b.Label("hmax")
	b.I(uve.VFMaxV(w, uve.V(1), uve.V(5))) // row max → output stream
	b.I(uve.BranchStreamNotEnd(0, "next"))
	b.I(uve.Halt())
}

func outStream(c *uve.F32Array) *uve.Descriptor {
	// One element per row: each horizontal max is its own chunk.
	return uve.NewStoreStream(c.Base, w).Dim(0, 1, 1).Dim(0, rows, 1).MustBuild()
}

func run(name string, m *uve.Machine, b *uve.ProgramBuilder, c *uve.F32Array, want func(i int) float64) {
	if _, err := m.Run(b.MustBuild()); err != nil {
		panic(err)
	}
	for i := 0; i < rows; i++ {
		if c.At(i) != want(i) {
			panic(fmt.Sprintf("%s: C[%d] = %v, want %v", name, i, c.At(i), want(i)))
		}
	}
	fmt.Printf("%-22s ok — C[0..3] = %.0f %.0f %.0f %.0f\n", name, c.At(0), c.At(1), c.At(2), c.At(3))
}

// full: Fig 2.A — max across full matrix rows.
func full() {
	m := uve.NewMachine(uve.DefaultConfig())
	a := m.Float32s(rows * cols)
	a.Fill(func(i int) float64 { return float64((i*131 + 7) % 1000) })
	c := m.Float32s(rows)

	b := uve.NewProgram("rowmax-full")
	b.ConfigStream(0, uve.NewLoadStream(a.Base, w).
		Dim(0, cols, 1).
		Dim(0, rows, cols).
		MustBuild())
	b.ConfigStream(1, outStream(c))
	loop(b)

	run("full matrix", m, b, c, func(i int) float64 {
		best := a.At(i * cols)
		for j := 1; j < cols; j++ {
			if v := a.At(i*cols + j); v > best {
				best = v
			}
		}
		return best
	})
}

// triangular: Fig 2.B — row i has i+1 valid elements; a static size
// modifier grows the inner dimension each outer iteration (Fig 3.B4).
func triangular() {
	m := uve.NewMachine(uve.DefaultConfig())
	a := m.Float32s(rows * cols)
	a.Fill(func(i int) float64 { return float64((i*97 + 13) % 1000) })
	c := m.Float32s(rows)

	b := uve.NewProgram("rowmax-tri")
	b.ConfigStream(0, uve.NewLoadStream(a.Base, w).
		Dim(0, 0, 1).
		Dim(0, rows, cols).
		Mod(uve.TargetSize, uve.ModAdd, 1, rows).
		MustBuild())
	b.ConfigStream(1, outStream(c))
	loop(b)

	run("lower triangular", m, b, c, func(i int) float64 {
		best := a.At(i * cols)
		for j := 1; j <= i; j++ {
			if v := a.At(i*cols + j); v > best {
				best = v
			}
		}
		return best
	})
}

// indirect: Fig 2.C — C[i] = max_j A[B[i][j]]: a per-element gather driven
// by an index-matrix stream (indirect modifier, Fig 3.B5).
func indirect() {
	m := uve.NewMachine(uve.DefaultConfig())
	a := m.Float32s(1024)
	a.Fill(func(i int) float64 { return float64((i*211 + 3) % 1000) })
	idx := m.Uint64s(rows * cols)
	idx.Fill(func(i int) uint64 { return uint64((i*61 + 17) % 1024) })
	c := m.Float32s(rows)

	b := uve.NewProgram("rowmax-ind")
	b.ConfigStream(2, uve.NewLoadStream(idx.Base, uve.W8).Linear(rows*cols, 1).MustBuild())
	b.ConfigStream(0, uve.NewLoadStream(a.Base, w).
		Dim(0, cols, 0).
		Indirect(uve.TargetOffset, uve.ModSetValue, 2).
		Dim(0, rows, 0).
		MustBuild())
	b.ConfigStream(1, outStream(c))
	loop(b)

	run("indirect (A[B[i][j]])", m, b, c, func(i int) float64 {
		best := a.At(int(idx.At(i * cols)))
		for j := 1; j < cols; j++ {
			if v := a.At(int(idx.At(i*cols + j))); v > best {
				best = v
			}
		}
		return best
	})
}
