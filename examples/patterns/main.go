// Patterns explores the descriptor model standalone (no machine): it builds
// the five example patterns of the paper's Fig 3.B and prints their exact
// address sequences, dimension boundaries and storage cost.
//
//	go run ./examples/patterns
package main

import (
	"fmt"

	uve "repro"
)

func show(name string, d *uve.Descriptor, origins uve.OriginSource) {
	fmt.Printf("%s\n  %s\n  state: %d bytes to save on context switch\n  ", name, d, d.StateBytes())
	elems := uve.Elements(d, origins)
	for i, e := range elems {
		if i == 24 {
			fmt.Printf("… (%d total)", len(elems))
			break
		}
		fmt.Printf("%d", e.Addr/4)
		if e.EndsDim(0) && !e.Last {
			fmt.Print(" |")
		}
		fmt.Print(" ")
	}
	fmt.Print("\n\n")
}

func main() {
	// B1: linear.
	show("B1 linear: A[i], i<12",
		uve.NewLoadStream(0, uve.W4).Linear(12, 1).MustBuild(), nil)

	// B2: rectangular (row-major matrix scan).
	show("B2 rectangular: A[i*6+j]",
		uve.NewLoadStream(0, uve.W4).Dim(0, 6, 1).Dim(0, 4, 6).MustBuild(), nil)

	// B3: rectangular scattered (every other row, every other column).
	show("B3 scattered: A[2i*8+2j]",
		uve.NewLoadStream(0, uve.W4).Dim(0, 4, 2).Dim(0, 3, 16).MustBuild(), nil)

	// B4: lower triangular via a static size modifier.
	show("B4 triangular: A[i*8+j], j<=i",
		uve.NewLoadStream(0, uve.W4).
			Dim(0, 0, 1).
			Dim(0, 5, 8).
			Mod(uve.TargetSize, uve.ModAdd, 1, 5).
			MustBuild(), nil)

	// B5: indirection — B[A[i]] with A supplied as literal origin values.
	idx := []uint64{9, 2, 2, 31, 0, 17}
	show("B5 indirection: B[A[i]]",
		uve.NewLoadStream(0, uve.W4).
			Dim(0, int64(len(idx)), 0).
			Indirect(uve.TargetOffset, uve.ModSetValue, 7).
			MustBuild(),
		uve.SliceOrigin(map[int][]uint64{7: idx}))
}
