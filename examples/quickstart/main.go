// Quickstart: the paper's saxpy kernel (Fig 1.D / Fig 4) on the simulated
// UVE machine, compared against the SVE-style baseline on the same inputs.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	uve "repro"
)

const (
	n = 1 << 14
	a = 2.5
	w = uve.W4
)

func main() {
	uveCycles, uveInst := runUVE()
	sveCycles, sveInst := runSVE()
	fmt.Println()
	fmt.Printf("UVE: %7d cycles, %7d committed instructions\n", uveCycles, uveInst)
	fmt.Printf("SVE: %7d cycles, %7d committed instructions\n", sveCycles, sveInst)
	fmt.Printf("speedup %.2fx, instruction reduction %.1f%%\n",
		float64(sveCycles)/float64(uveCycles),
		100*(1-float64(uveInst)/float64(sveInst)))
}

// runUVE streams x and y through the engine: the loop body is one multiply,
// one add and a single stream-conditional branch — no loads, stores or
// index arithmetic (the paper's features F1/F2/F4).
func runUVE() (int64, uint64) {
	m := uve.NewMachine(uve.DefaultConfig())
	x, y := makeData(m)

	b := uve.NewProgram("saxpy-uve")
	b.ConfigStream(0, uve.NewLoadStream(x.Base, w).Linear(n, 1).MustBuild())
	b.ConfigStream(1, uve.NewLoadStream(y.Base, w).Linear(n, 1).MustBuild())
	b.ConfigStream(2, uve.NewStoreStream(y.Base, w).Linear(n, 1).MustBuild())
	b.I(uve.VDup(w, uve.V(3), uve.F(1))) // broadcast the scalar a
	b.Label("loop")
	b.I(uve.VFMul(w, uve.V(4), uve.V(3), uve.V(0), uve.None)) // a·x chunk
	b.I(uve.VFAdd(w, uve.V(2), uve.V(4), uve.V(1), uve.None)) // + y chunk → out
	b.I(uve.BranchStreamNotEnd(0, "loop"))
	b.I(uve.Halt())

	res, err := m.Run(b.MustBuild(), uve.FloatArg(1, w, a))
	check(err, y)
	return res.Cycles, res.Committed
}

// runSVE is the Fig 1.B shape: predicated loads/stores, whilelt loop
// control, explicit index stepping.
func runSVE() (int64, uint64) {
	m := uve.NewMachine(uve.SVEConfig())
	x, y := makeData(m)

	b := uve.NewProgram("saxpy-sve")
	b.I(uve.VDup(w, uve.V(0), uve.F(1)))
	b.I(uve.Li(uve.X(4), 0))
	b.I(uve.Whilelt(w, uve.P(1), uve.X(4), uve.X(3)))
	b.Label("loop")
	b.I(uve.VLoad(w, uve.V(1), uve.X(8), uve.X(4), 0, uve.P(1)))
	b.I(uve.VLoad(w, uve.V(2), uve.X(9), uve.X(4), 0, uve.P(1)))
	b.I(uve.VFMla(w, uve.V(2), uve.V(0), uve.V(1), uve.P(1)))
	b.I(uve.VStore(w, uve.X(9), uve.X(4), 0, uve.V(2), uve.P(1)))
	b.I(uve.IncVL(w, uve.X(4), uve.X(4)))
	b.I(uve.Whilelt(w, uve.P(1), uve.X(4), uve.X(3)))
	b.I(uve.BFirst(uve.P(1), "loop"))
	b.I(uve.Halt())

	res, err := m.Run(b.MustBuild(),
		uve.FloatArg(1, w, a),
		uve.IntArg(3, n), uve.IntArg(8, x.Base), uve.IntArg(9, y.Base))
	check(err, y)
	return res.Cycles, res.Committed
}

func makeData(m *uve.Machine) (x, y *uve.F32Array) {
	x = m.Float32s(n)
	y = m.Float32s(n)
	x.Fill(func(i int) float64 { return float64(i % 100) })
	y.Fill(func(i int) float64 { return float64(i % 37) })
	return x, y
}

func check(err error, y *uve.F32Array) {
	if err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		want := float64(float32(a)*float32(i%100) + float32(i%37))
		if y.At(i) != want {
			panic(fmt.Sprintf("y[%d] = %v, want %v", i, y.At(i), want))
		}
	}
	fmt.Println("result validated:", n, "elements")
}
