// Faults: a seeded deterministic fault campaign on the saxpy kernel.
//
// The Streaming Engine's recovery machinery (§IV-B) must preserve precise
// architectural state across mid-stream page faults, NACKed line fetches
// and forced suspend/resume. This example runs saxpy fault-free, replays
// it under a grid of seeded campaigns, and checks the output is
// byte-identical every time — only the cycle count moves. It then bounds
// one run far below its natural length to show the watchdog's structured
// diagnostic (the alternative to hanging on an injection-induced livelock).
//
//	go run ./examples/faults
package main

import (
	"errors"
	"fmt"

	uve "repro"
)

const (
	n = 1 << 13
	a = 2.5
	w = uve.W4
)

func main() {
	baseCycles, want, _ := run(0, nil)
	fmt.Printf("fault-free: %d cycles\n\n", baseCycles)

	fmt.Printf("%-6s %10s %10s  %s\n", "seed", "cycles", "slowdown", "injected (output identical every row)")
	for _, seed := range []uint64{3, 7, 11} {
		plan := uve.DefaultFaultPlan(seed)
		cycles, got, stats := run(seed, &plan)
		for i := range want {
			if got[i] != want[i] {
				panic(fmt.Sprintf("seed %d: y[%d] = %v, want %v", seed, i, got[i], want[i]))
			}
		}
		fmt.Printf("%-6d %10d %9.3fx  %s\n",
			seed, cycles, float64(cycles)/float64(baseCycles), stats)
	}

	fmt.Println("\nwatchdog: bounding the same run to 1000 cycles ...")
	m, p, _ := build(uve.WithMaxCycles(1000))
	_, err := m.Run(p, uve.FloatArg(1, w, a))
	var wd *uve.WatchdogError
	if !errors.As(err, &wd) {
		panic(fmt.Sprintf("expected a watchdog diagnostic, got %v", err))
	}
	fmt.Printf("  tripped at cycle %d (last commit at %d)\n", wd.Cycle, wd.LastCommit)
	fmt.Println("  the full error carries the ROB head and the stream table:")
	fmt.Println()
	fmt.Println(err)
}

// run executes saxpy once — under plan when non-nil — validates nothing
// crashed, and returns the cycle count, the output array and the
// injection counts.
func run(seed uint64, plan *uve.FaultPlan) (int64, []float64, uve.FaultStats) {
	var opts []uve.Option
	if plan != nil {
		opts = append(opts, uve.WithFaults(*plan), uve.WithWatchdog(1_000_000))
	}
	m, p, y := build(opts...)
	res, err := m.Run(p, uve.FloatArg(1, w, a))
	if err != nil {
		panic(err)
	}
	if plan != nil && res.Faults.Total() == 0 {
		panic(fmt.Sprintf("seed %d injected nothing", seed))
	}
	return res.Cycles, y.Slice(), res.Faults
}

// build assembles a fresh machine, data and the streamed saxpy program
// (the Fig 1.D shape: descriptors in the preamble, a load-free loop body).
func build(opts ...uve.Option) (*uve.Machine, *uve.Program, *uve.F32Array) {
	m := uve.NewMachine(uve.DefaultConfig(), opts...)
	x := m.Float32s(n)
	y := m.Float32s(n)
	x.Fill(func(i int) float64 { return float64(i % 100) })
	y.Fill(func(i int) float64 { return float64(i % 37) })

	b := uve.NewProgram("saxpy-faults")
	b.ConfigStream(0, uve.NewLoadStream(x.Base, w).Linear(n, 1).MustBuild())
	b.ConfigStream(1, uve.NewLoadStream(y.Base, w).Linear(n, 1).MustBuild())
	b.ConfigStream(2, uve.NewStoreStream(y.Base, w).Linear(n, 1).MustBuild())
	b.I(uve.VDup(w, uve.V(3), uve.F(1)))
	b.Label("loop")
	b.I(uve.VFMul(w, uve.V(4), uve.V(3), uve.V(0), uve.None))
	b.I(uve.VFAdd(w, uve.V(2), uve.V(4), uve.V(1), uve.None))
	b.I(uve.BranchStreamNotEnd(0, "loop"))
	b.I(uve.Halt())
	return m, b.MustBuild(), y
}
