// Stencil runs a 5-point Jacobi sweep over a 2-D grid using interior
// stream descriptors: five shifted input views of the same matrix and one
// output stream, with zero index arithmetic in the loop.
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"math"

	uve "repro"
)

const (
	n     = 128
	w     = uve.W4
	coeff = 0.2
)

// interior builds the (n-2)×(n-2) interior view of an n×n matrix shifted by
// (di, dj) elements.
func interior(base uint64, di, dj int) *uve.StreamBuilder {
	origin := base + uint64(4*((1+di)*n+1+dj))
	return uve.NewLoadStream(origin, w).
		Dim(0, n-2, 1).
		Dim(0, n-2, n)
}

func main() {
	m := uve.NewMachine(uve.DefaultConfig())
	a := m.Float32s(n * n)
	out := m.Float32s(n * n)
	a.Fill(func(i int) float64 { return math.Sin(float64(i) * 0.01) })

	b := uve.NewProgram("jacobi2d")
	b.ConfigStream(0, interior(a.Base, 0, 0).MustBuild())
	b.ConfigStream(1, interior(a.Base, 0, -1).MustBuild())
	b.ConfigStream(2, interior(a.Base, 0, 1).MustBuild())
	b.ConfigStream(3, interior(a.Base, -1, 0).MustBuild())
	b.ConfigStream(4, interior(a.Base, 1, 0).MustBuild())
	b.ConfigStream(5, uve.NewStoreStream(out.Base+uint64(4*(n+1)), w).
		Dim(0, n-2, 1).
		Dim(0, n-2, n).
		MustBuild())
	b.I(uve.VDup(w, uve.V(19), uve.F(1)))
	b.Label("loop")
	b.I(uve.VFAdd(w, uve.V(20), uve.V(0), uve.V(1), uve.None))
	b.I(uve.VFAdd(w, uve.V(21), uve.V(2), uve.V(3), uve.None))
	b.I(uve.VFAdd(w, uve.V(22), uve.V(20), uve.V(21), uve.None))
	b.I(uve.VFAdd(w, uve.V(23), uve.V(22), uve.V(4), uve.None))
	b.I(uve.VFMul(w, uve.V(5), uve.V(23), uve.V(19), uve.None))
	b.I(uve.BranchStreamNotEnd(0, "loop"))
	b.I(uve.Halt())

	res, err := m.Run(b.MustBuild(), uve.FloatArg(1, w, coeff))
	if err != nil {
		panic(err)
	}

	// Validate against a straightforward Go sweep.
	worst := 0.0
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			want := float64(float32(coeff) * (float32(a.At(i*n+j)) + float32(a.At(i*n+j-1)) +
				float32(a.At(i*n+j+1)) + float32(a.At((i-1)*n+j)) + float32(a.At((i+1)*n+j))))
			if d := math.Abs(out.At(i*n+j) - want); d > worst {
				worst = d
			}
		}
	}
	if worst > 1e-5 {
		panic(fmt.Sprintf("max deviation %g", worst))
	}
	fmt.Printf("jacobi 5-point sweep over %dx%d grid validated\n", n, n)
	fmt.Printf("cycles: %d, committed instructions: %d (%.2f elems/cycle)\n",
		res.Cycles, res.Committed, float64((n-2)*(n-2))/float64(res.Cycles))
	fmt.Printf("engine: %d chunks streamed in, %d out, %d line requests\n",
		res.Engine.ChunksLoaded, res.Engine.ChunksStored, res.Engine.LineRequests)
}
