#!/bin/sh
# PR gate without make: formatting, vet, static kernel verification, build,
# race-detected tests (exercising the parallel experiment runner), a short
# fuzz smoke over the descriptor iterator and footprint abstraction, and a
# one-shot Fig 8 benchmark smoke.
set -eux
cd "$(dirname "$0")/.."

fmt_diff=$(gofmt -l .)
if [ -n "$fmt_diff" ]; then
    echo "gofmt needed on: $fmt_diff" >&2
    exit 1
fi
go vet ./...
go build ./...
go run ./cmd/uvelint -all
# Targeted race run for the PR-1 parallel experiment runner and the
# simulation facade it drives, then the full race-detected suite.
go test -race ./internal/bench ./internal/sim
go test -race ./...
# Fuzz smokes (one -fuzz target per invocation): descriptor address
# iterator and symbolic footprint vs. the concrete oracle.
go test -run '^$' -fuzz '^FuzzIterator$' -fuzztime 5s ./internal/descriptor
go test -run '^$' -fuzz '^FuzzFootprint$' -fuzztime 5s ./internal/descriptor
go test -run '^$' -bench '^BenchmarkFig8$' -benchtime 1x .
