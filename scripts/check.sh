#!/bin/sh
# PR gate without make: formatting, vet, static kernel verification, build,
# race-detected tests (exercising the parallel experiment runner), a short
# fuzz smoke over the descriptor iterator, footprint abstraction and the
# abstract-interpretation soundness oracle, a one-shot Fig 8 benchmark
# smoke, execution-tier differential smokes, trace/fault determinism
# smokes, the watchdog no-hang smoke, the wire-format canonicality smoke,
# the prove/certificate smoke and the wall-clock perf gate against the
# committed BENCH_simwall.json.
set -eux
cd "$(dirname "$0")/.."

fmt_diff=$(gofmt -l .)
if [ -n "$fmt_diff" ]; then
    echo "gofmt needed on: $fmt_diff" >&2
    exit 1
fi
go vet ./...
# Determinism vet: the simulation/report packages must not read the wall
# clock, draw from the global math/rand source, or let map iteration order
# leak into rendered output.
go run ./cmd/uvevet
go build ./...
go run ./cmd/uvelint -all
# Targeted race run for the PR-1 parallel experiment runner and the
# simulation facade it drives, then the full race-detected suite.
go test -race ./internal/bench ./internal/sim
go test -race ./...
# Fuzz smokes (one -fuzz target per invocation): descriptor address
# iterator and symbolic footprint vs. the concrete oracle.
go test -run '^$' -fuzz '^FuzzIterator$' -fuzztime 5s ./internal/descriptor
go test -run '^$' -fuzz '^FuzzFootprint$' -fuzztime 5s ./internal/descriptor
go test -run '^$' -fuzz '^FuzzClosedFormWalk$' -fuzztime 5s ./internal/cost
go test -run '^$' -fuzz '^FuzzAbsintSoundness$' -fuzztime 5s ./internal/absint
go test -run '^$' -fuzz '^FuzzWireDecode$' -fuzztime 5s ./internal/wire
go test -run '^$' -fuzz '^FuzzWireRoundTrip$' -fuzztime 5s ./internal/wire
go test -run '^$' -bench '^BenchmarkFig8$' -benchtime 1x .
# Execution-tier smoke: the functional/cycle differential oracle and the
# event-skip bit-equivalence suite race-detected, a short differential
# fuzz pass, and one race-detected end-to-end functional sweep through
# the uvebench CLI.
go test -race -run 'TestFunctionalDifferential|TestEventSkipEquivalence' ./internal/sim
go test -run '^$' -fuzz '^FuzzTierDifferential$' -fuzztime 5s ./internal/sim
go run -race ./cmd/uvebench -fidelity functional -scale 64 > /dev/null
# Trace smoke: a traced saxpy run must emit a valid Chrome trace file, and
# the tracing machinery — compiled in but disabled — must leave uvesim's
# stdout byte-identical to the traced run's, and uvebench's figure output
# byte-identical between sequential and parallel execution.
tracedir=$(mktemp -d)
trap 'rm -rf "$tracedir"' EXIT
go run ./cmd/uvesim -kernel C -size 512 > "$tracedir/plain.txt"
go run ./cmd/uvesim -kernel C -size 512 -trace "$tracedir/saxpy.json" > "$tracedir/traced.txt" 2> /dev/null
go run ./scripts/jsonvalid "$tracedir/saxpy.json"
cmp "$tracedir/plain.txt" "$tracedir/traced.txt"
go run ./cmd/uvebench -exp fig8 -scale 256 -j 1 > "$tracedir/fig8-seq.txt"
go run ./cmd/uvebench -exp fig8 -scale 256 > "$tracedir/fig8-par.txt"
cmp "$tracedir/fig8-seq.txt" "$tracedir/fig8-par.txt"
# Wire-format smoke: the canonical encoder must be bit-reproducible (two
# corpus encodes diff clean), every blob must disassemble, -verify must
# certify canonicality and lint-verdict identity for the whole corpus, and
# the README walkthrough (encode saxpy -> disassemble -> statically verify)
# must work end to end.
go build -o "$tracedir/uveasm" ./cmd/uveasm
"$tracedir/uveasm" -o "$tracedir/wire-a" > /dev/null
"$tracedir/uveasm" -o "$tracedir/wire-b" > /dev/null
diff -r "$tracedir/wire-a" "$tracedir/wire-b"
"$tracedir/uveasm" -d "$tracedir/wire-a"/*.uve > /dev/null
"$tracedir/uveasm" -verify "$tracedir/wire-a"/*.uve > /dev/null
"$tracedir/uveasm" -kernel C -variant uve -o "$tracedir/saxpy.uve" > /dev/null
"$tracedir/uveasm" -d "$tracedir/saxpy.uve" | grep -q saxpy
"$tracedir/uveasm" -lint "$tracedir/saxpy.uve" | grep -q "certificate: safe=true"
# Cost-model validation sweep: the static descriptor model's exact traffic
# predictions must equal the simulator's committed counters and every cycle
# lower bound must hold across the full kernel × variant matrix (-exp model
# fails via the degeneracy gate on any violation); the machine-readable
# lint+cost report must be valid JSON end to end.
go run ./cmd/uvebench -exp model -scale 256 > /dev/null
go run ./cmd/uvelint -all -cost -json | go run ./scripts/jsonvalid
# Prove smoke: the value-range prover is deterministic — two -prove sweeps
# must render byte-identically, certificates included — and actually
# proves: the HACCmk scalar-store pairs read disjoint only with the prover
# on, and a certified kernel elides the sanitizer under -sanitize=auto.
# The certified-elision wall clock rides the sanitize-on/sanitize-auto
# BenchmarkSimWall cells, gated below against BENCH_simwall.json.
go run ./cmd/uvelint -all -deps > "$tracedir/prove1.txt"
go run ./cmd/uvelint -all -deps > "$tracedir/prove2.txt"
cmp "$tracedir/prove1.txt" "$tracedir/prove2.txt"
grep -q "proven outside the stream footprint by value-range analysis" "$tracedir/prove1.txt"
go run ./cmd/uvelint -kernel L -variant uve -deps -prove=false | grep -q "collision-free=false"
go run ./cmd/uvesim -kernel L -size 256 -fidelity functional -sanitize=auto | grep -q "sanitizer:         elided"
# Fault smoke: seeded injection is deterministic — the same seed must give
# byte-identical output for a single faulted run and for the full campaign
# table (every kernel × {UVE,SVE} × seed grid, each checked against the
# fault-free memory image) — and the campaign paths run race-detected.
go run ./cmd/uvesim -kernel C -size 512 -faults seed=7 > "$tracedir/fault1.txt"
go run ./cmd/uvesim -kernel C -size 512 -faults seed=7 > "$tracedir/fault2.txt"
cmp "$tracedir/fault1.txt" "$tracedir/fault2.txt"
go run ./cmd/uvebench -exp faults -scale 512 > "$tracedir/campaign1.txt"
go run ./cmd/uvebench -exp faults -scale 512 > "$tracedir/campaign2.txt"
cmp "$tracedir/campaign1.txt" "$tracedir/campaign2.txt"
go test -race -run Fault ./internal/fault ./internal/sim ./internal/bench
# Watchdog smoke: an intentionally starved run (every line fetch NACKed
# into long back-offs, tight no-commit bound) must exit non-zero with the
# structured diagnostic — never hang.
if go run ./cmd/uvesim -kernel C -size 65536 \
    -faults seed=7,nack=900,nack-backoff=200 -watchdog 150 > "$tracedir/wd.txt" 2>&1; then
    echo "watchdog smoke: starved run exited zero" >&2
    exit 1
fi
grep -q watchdog "$tracedir/wd.txt"
grep -q "stream table" "$tracedir/wd.txt"
# Serve smoke: the uveserve daemon end to end over curl — two concurrent
# clients get byte-identical reports for the same matrix, SIGTERM drains
# cleanly with an in-flight job, and a restart over the same store serves
# everything from disk with a positive hit rate.
./scripts/servesmoke.sh
# Wall-clock trajectory gate: BenchmarkSimWall cells vs the committed
# baseline, >2x regression fails (loose on purpose: absolute numbers are
# host-dependent; regenerate with `scripts/perfsmoke.sh -update` after an
# intentional perf change).
./scripts/perfsmoke.sh
