#!/bin/sh
# PR gate without make: formatting, vet, static kernel verification, build,
# race-detected tests (exercising the parallel experiment runner), and a
# one-shot Fig 8 benchmark smoke.
set -eux
cd "$(dirname "$0")/.."

fmt_diff=$(gofmt -l .)
if [ -n "$fmt_diff" ]; then
    echo "gofmt needed on: $fmt_diff" >&2
    exit 1
fi
go vet ./...
go build ./...
go run ./cmd/uvelint -all
go test -race ./...
go test -run '^$' -bench '^BenchmarkFig8$' -benchtime 1x .
