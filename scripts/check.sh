#!/bin/sh
# PR gate without make: vet, build, race-detected tests (exercising the
# parallel experiment runner), and a one-shot Fig 8 benchmark smoke.
set -eux
cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./...
go test -run '^$' -bench '^BenchmarkFig8$' -benchtime 1x .
