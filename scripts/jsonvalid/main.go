// Command jsonvalid exits 0 iff every argument file (or stdin, with no
// arguments) is syntactically valid JSON. It exists so the CI trace smoke
// can validate emitted trace files without assuming jq or python on the
// host.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		check("stdin", os.Stdin)
		return
	}
	for _, path := range os.Args[1:] {
		f, err := os.Open(path)
		if err != nil {
			fail("%v", err)
		}
		check(path, f)
		f.Close()
	}
}

func check(name string, r io.Reader) {
	b, err := io.ReadAll(r)
	if err != nil {
		fail("%s: %v", name, err)
	}
	if !json.Valid(b) {
		fail("%s: invalid JSON", name)
	}
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "jsonvalid: "+format+"\n", args...)
	os.Exit(1)
}
