#!/bin/sh
# Serve smoke: boots the uveserve daemon against an empty store, has two
# concurrent clients submit the same kernel x variant x size matrix, and
# asserts every client got byte-identical report documents. The daemon is
# then SIGTERMed (clean drain must exit 0) and restarted over the same
# store directory; the resubmitted matrix must be served from disk with a
# positive hit rate, byte-identical to the first boot's reports.
set -eu
cd "$(dirname "$0")/.."

dir=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2> /dev/null || true
    rm -rf "$dir"
}
trap cleanup EXIT

go build -o "$dir/uveserve" ./cmd/uveserve

start_daemon() {
    rm -f "$dir/addr"
    "$dir/uveserve" -addr 127.0.0.1:0 -addr-file "$dir/addr" \
        -store "$dir/store" -j 2 2> "$dir/daemon.log" &
    pid=$!
    i=0
    while [ ! -f "$dir/addr" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "servesmoke: daemon never wrote $dir/addr" >&2
            cat "$dir/daemon.log" >&2
            exit 1
        fi
        sleep 0.1
    done
    addr=$(cat "$dir/addr")
}

# SIGTERM the daemon and require a clean drain: exit status 0, bounded.
stop_daemon() {
    kill -TERM "$pid"
    st=0
    wait "$pid" || st=$?
    pid=""
    if [ "$st" -ne 0 ]; then
        echo "servesmoke: daemon drain exited $st" >&2
        cat "$dir/daemon.log" >&2
        exit 1
    fi
}

matrix='{"jobs":[
  {"kernel":"C","variant":"uve","size":4096},
  {"kernel":"C","variant":"sve","size":4096},
  {"kernel":"A","variant":"uve","size":4096}
]}'

# submit_matrix <client> <outfile>: batch-submit and wait for completion.
submit_matrix() {
    curl -sS -f -H "X-UVE-Client: $1" -d "$matrix" \
        "http://$addr/v1/jobs?wait=1" > "$2"
}

# fetch_reports <submit-response> <outdir>: pull the raw report bytes for
# each job, in matrix order.
fetch_reports() {
    mkdir -p "$2"
    i=0
    for id in $(jq -r '.jobs[].id' "$1"); do
        curl -sS -f "http://$addr/v1/jobs/$id/report" > "$2/$i.json"
        go run ./scripts/jsonvalid "$2/$i.json"
        i=$((i + 1))
    done
}

start_daemon

# Two concurrent clients, same matrix: byte-identical reports.
submit_matrix alice "$dir/alice.json" &
apid=$!
submit_matrix bob "$dir/bob.json"
wait "$apid"
[ "$(jq -r '[.jobs[].state] | unique | .[]' "$dir/alice.json")" = "done" ]
[ "$(jq -r '[.jobs[].state] | unique | .[]' "$dir/bob.json")" = "done" ]
fetch_reports "$dir/alice.json" "$dir/reports-alice"
fetch_reports "$dir/bob.json" "$dir/reports-bob"
diff -r "$dir/reports-alice" "$dir/reports-bob"

# Leave one simulation in flight, then SIGTERM: the drain must let it
# finish and still exit cleanly.
curl -sS -f -d '{"kernel":"C","variant":"uve","size":65536}' \
    "http://$addr/v1/jobs" > /dev/null
stop_daemon

# Restart over the same store: everything comes from disk, byte-identical,
# and the store hit counter is positive.
start_daemon
submit_matrix carol "$dir/carol.json"
[ "$(jq -r '[.jobs[].from_store] | unique | .[]' "$dir/carol.json")" = "true" ]
fetch_reports "$dir/carol.json" "$dir/reports-carol"
diff -r "$dir/reports-alice" "$dir/reports-carol"
hits=$(curl -sS -f "http://$addr/v1/stats" | jq -r .store_hits)
if [ "$hits" -le 0 ]; then
    echo "servesmoke: restart store_hits = $hits, want > 0" >&2
    exit 1
fi
stop_daemon

echo "servesmoke: OK (restart hits=$hits)"
