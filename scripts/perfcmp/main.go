// Command perfcmp maintains BENCH_simwall.json, the simulator's wall-clock
// trajectory file. It reads `go test -bench` output for BenchmarkSimWall on
// stdin and either:
//
//	perfcmp -update BENCH_simwall.json   # rewrite the committed baseline
//	perfcmp -baseline BENCH_simwall.json # gate: fail on >2x regression
//
// In -update mode it also times the uvebench tier comparison (the detailed
// model regenerating the full kernel x variant matrix vs the functional
// sweep over the same matrix, at figure scale and at fuzz/fault-campaign
// scale) and records the measured speedups. In gate mode only the
// per-cell ns/op figures are re-measured and compared — the committed
// baseline's absolute numbers are from the machine named in its "host"
// field, so the default threshold is a deliberately loose 2x.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Cell is one BenchmarkSimWall sub-benchmark measurement.
type Cell struct {
	Name    string  `json:"name"` // mode/kernel-variant, e.g. "skip/C-UVE"
	NsPerOp float64 `json:"ns_per_op"`
	Cycles  int64   `json:"cycles"` // simulated cycles (0 on the functional tier)
}

// TierComparison is one timed uvebench invocation pair.
type TierComparison struct {
	CycleCmd     string  `json:"cycle_cmd"`
	CycleSeconds float64 `json:"cycle_seconds"`
	FuncCmd      string  `json:"functional_cmd"`
	FuncSeconds  float64 `json:"functional_seconds"`
	Speedup      float64 `json:"speedup"`
}

// Baseline is the BENCH_simwall.json document.
type Baseline struct {
	Host      string `json:"host"`
	Benchmark string `json:"benchmark"`
	Gate      string `json:"gate"`
	Cells     []Cell `json:"cells"`
	// Summary ratios computed from Cells: aggregate cycle-tier (skip) time
	// over functional-tier time for the unfaulted cells, aggregate noskip
	// over skip, and the starved cell's noskip/skip ratio.
	FunctionalSpeedup  float64 `json:"functional_vs_cycle_speedup"`
	SkipSpeedup        float64 `json:"skip_vs_noskip_speedup"`
	SkipSpeedupStarved float64 `json:"skip_vs_noskip_speedup_starved"`
	// Aggregate sanitizer-on time over SanitizeAuto (certificate-elided)
	// time on the certified kernels: the wall-clock the static safety
	// proof buys on verification sweeps.
	SanitizeElisionSpeedup float64 `json:"sanitize_elision_speedup,omitempty"`
	// Measured once at -update time, not re-run by the gate.
	ExpAll     *TierComparison `json:"exp_all,omitempty"`
	FigMatrix  *TierComparison `json:"figure_matrix,omitempty"`
	FaultScale *TierComparison `json:"fault_fuzz_scale,omitempty"`
}

var benchLine = regexp.MustCompile(`^BenchmarkSimWall/(\S+?)(?:-\d+)?\s+\d+\s+(\d+(?:\.\d+)?) ns/op(?:\s+(\d+(?:\.\d+)?) cycles)?`)
var cpuLine = regexp.MustCompile(`^cpu: (.+)$`)

func main() {
	update := flag.String("update", "", "rewrite this baseline file from the bench output on stdin")
	baseline := flag.String("baseline", "", "gate the bench output on stdin against this baseline file")
	maxRatio := flag.Float64("max-ratio", 2.0, "gate threshold: fail when current ns/op exceeds baseline*ratio")
	flag.Parse()
	if (*update == "") == (*baseline == "") {
		fail("exactly one of -update or -baseline is required")
	}

	host := ""
	var cells []Cell
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		if m := cpuLine.FindStringSubmatch(sc.Text()); m != nil {
			host = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		var cyc float64
		if m[3] != "" {
			cyc, _ = strconv.ParseFloat(m[3], 64)
		}
		cells = append(cells, Cell{Name: m[1], NsPerOp: ns, Cycles: int64(cyc)})
	}
	if err := sc.Err(); err != nil {
		fail("reading stdin: %v", err)
	}
	if len(cells) == 0 {
		fail("no BenchmarkSimWall lines found on stdin")
	}

	if *update != "" {
		writeBaseline(*update, host, cells)
		return
	}
	gate(*baseline, cells, *maxRatio)
}

// gate compares freshly measured cells against the committed baseline.
func gate(path string, cur []Cell, maxRatio float64) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fail("%s: %v", path, err)
	}
	curByName := map[string]Cell{}
	for _, c := range cur {
		curByName[c.Name] = c
	}
	bad := 0
	for _, b := range base.Cells {
		c, ok := curByName[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "perfcmp: cell %s missing from current run\n", b.Name)
			bad++
			continue
		}
		if c.Cycles != b.Cycles {
			// A cycle-count change is a model change, not a perf regression;
			// the equivalence suite owns that. Report it for visibility only.
			fmt.Fprintf(os.Stderr, "perfcmp: note: %s simulates %d cycles (baseline %d) — regenerate with -update\n",
				b.Name, c.Cycles, b.Cycles)
		}
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > maxRatio {
			status = "REGRESSION"
			bad++
		}
		fmt.Printf("%-28s %12.0f ns/op  baseline %12.0f  ratio %.2fx  %s\n",
			b.Name, c.NsPerOp, b.NsPerOp, ratio, status)
	}
	if bad > 0 {
		fail("%d cell(s) regressed past %.1fx (baseline host: %s)", bad, maxRatio, base.Host)
	}
}

// writeBaseline measures the uvebench tier comparisons and writes the full
// trajectory document.
func writeBaseline(path, host string, cells []Cell) {
	doc := Baseline{
		Host:      host,
		Benchmark: "BenchmarkSimWall (go test -run '^$' -bench '^BenchmarkSimWall$' -benchtime 3x .)",
		Gate:      "scripts/perfsmoke.sh fails when any cell's ns/op exceeds 2x this baseline",
		Cells:     cells,
	}
	sum := func(pred func(Cell) bool) float64 {
		var t float64
		for _, c := range cells {
			if pred(c) {
				t += c.NsPerOp
			}
		}
		return t
	}
	isMode := func(mode string) func(Cell) bool {
		return func(c Cell) bool {
			return strings.HasPrefix(c.Name, mode+"/") && !strings.HasSuffix(c.Name, "-starved")
		}
	}
	if fn := sum(isMode("functional")); fn > 0 {
		doc.FunctionalSpeedup = round2(sum(isMode("skip")) / fn)
	}
	if sk := sum(isMode("skip")); sk > 0 {
		doc.SkipSpeedup = round2(sum(isMode("noskip")) / sk)
	}
	if auto := sum(isMode("sanitize-auto")); auto > 0 {
		doc.SanitizeElisionSpeedup = round2(sum(isMode("sanitize-on")) / auto)
	}
	var skStarved, noStarved float64
	for _, c := range cells {
		switch c.Name {
		case "skip/C-UVE-starved":
			skStarved = c.NsPerOp
		case "noskip/C-UVE-starved":
			noStarved = c.NsPerOp
		}
	}
	if skStarved > 0 {
		doc.SkipSpeedupStarved = round2(noStarved / skStarved)
	}

	doc.ExpAll = timePair(
		[]string{"-exp", "all", "-scale", "4"},
		[]string{"-fidelity", "functional", "-scale", "4"})
	doc.FigMatrix = timePair(
		[]string{"-exp", "fig8", "-scale", "4"},
		[]string{"-fidelity", "functional", "-scale", "4"})
	doc.FaultScale = timePair(
		[]string{"-exp", "fig8", "-scale", "64"},
		[]string{"-fidelity", "functional", "-scale", "64"})

	f, err := os.Create(path)
	if err != nil {
		fail("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fail("%v", err)
	}
	if err := f.Close(); err != nil {
		fail("%v", err)
	}
	fmt.Printf("perfcmp: wrote %s (%d cells, functional %vx, skip %vx, starved skip %vx)\n",
		path, len(cells), doc.FunctionalSpeedup, doc.SkipSpeedup, doc.SkipSpeedupStarved)
}

// timePair times one cycle-tier and one functional-tier uvebench run.
// uvebench must already be built at ./uvebench.bin (perfsmoke.sh does this)
// so process start-up cost is identical on both sides.
func timePair(cycleArgs, funcArgs []string) *TierComparison {
	run := func(args []string) float64 {
		start := time.Now()
		cmd := exec.Command("./uvebench.bin", args...)
		cmd.Stdout = nil
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fail("uvebench %v: %v", args, err)
		}
		return time.Since(start).Seconds()
	}
	tc := &TierComparison{
		CycleCmd: fmt.Sprint("uvebench ", cycleArgs),
		FuncCmd:  fmt.Sprint("uvebench ", funcArgs),
	}
	tc.CycleSeconds = round3(run(cycleArgs))
	tc.FuncSeconds = round3(run(funcArgs))
	if tc.FuncSeconds > 0 {
		tc.Speedup = round2(tc.CycleSeconds / tc.FuncSeconds)
	}
	return tc
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "perfcmp: "+format+"\n", args...)
	os.Exit(1)
}
