#!/bin/sh
# Wall-clock trajectory gate: re-measures the BenchmarkSimWall cells and
# fails when any of them runs more than 2x slower than the committed
# BENCH_simwall.json baseline. `perfsmoke.sh -update` instead regenerates
# the baseline, including the timed uvebench tier comparisons (detailed
# model vs functional tier) whose speedups the JSON records.
set -eu
cd "$(dirname "$0")/.."

benchout=$(mktemp)
trap 'rm -f "$benchout" uvebench.bin' EXIT

go test -run '^$' -bench '^BenchmarkSimWall$' -benchtime 3x -count 1 . | tee "$benchout"

if [ "${1:-}" = "-update" ]; then
    go build -o uvebench.bin ./cmd/uvebench
    go run ./scripts/perfcmp -update BENCH_simwall.json < "$benchout"
else
    go run ./scripts/perfcmp -baseline BENCH_simwall.json < "$benchout"
fi
