// Package cliflags holds the flag definitions and parsing helpers shared
// by the repo's command-line tools (uvesim, uvebench, uvelint, uvetrace).
// Each tool used to re-declare its own copies of the common flags — worker
// counts, JSON output, variant names, trace destinations and, with this
// package, fault-injection campaigns — with drifting help strings and
// validation; these helpers are the single source of truth.
package cliflags

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Workers registers -j: the simulation worker pool size.
func Workers(fs *flag.FlagSet) *int {
	return fs.Int("j", 0, "simulation worker pool size (0 = all cores, 1 = sequential)")
}

// JSON registers -json: machine-readable output instead of text tables.
func JSON(fs *flag.FlagSet) *bool {
	return fs.Bool("json", false, "emit machine-readable JSON instead of text")
}

// SanitizeFlag is the -sanitize flag value: a sanitizer mode. The bare
// boolean spellings (-sanitize, -sanitize=false) keep working and map to
// on/off, so existing invocations are unchanged.
type SanitizeFlag struct {
	Mode sim.SanitizeMode
}

func (s *SanitizeFlag) String() string {
	if s == nil {
		return "off"
	}
	return s.Mode.String()
}

// Set parses off|on|auto (plus true/false for boolean compatibility).
func (s *SanitizeFlag) Set(v string) error {
	m, err := sim.ParseSanitizeMode(v)
	if err != nil {
		return err
	}
	s.Mode = m
	return nil
}

// IsBoolFlag lets bare -sanitize mean -sanitize=on.
func (s *SanitizeFlag) IsBoolFlag() bool { return true }

// Sanitize registers -sanitize: the runtime stream sanitizer mode.
func Sanitize(fs *flag.FlagSet) *SanitizeFlag {
	f := &SanitizeFlag{}
	fs.Var(f, "sanitize",
		"stream sanitizer mode: off, on (shadow-track every byte live streams touch; UVE only, slow) or auto (elide tracking when the safety certificate proves all pairs disjoint); spell modes as -sanitize=auto — bare -sanitize means on")
	return f
}

// Variant parses a machine variant name, case-insensitively.
func Variant(s string) (kernels.Variant, error) {
	var v kernels.Variant
	switch s {
	case "uve":
		s = "UVE"
	case "sve":
		s = "SVE"
	case "neon":
		s = "NEON"
	}
	if err := v.UnmarshalText([]byte(s)); err != nil {
		return v, fmt.Errorf("unknown variant %q (UVE|SVE|NEON)", s)
	}
	return v, nil
}

// Variants parses a variant name or "all".
func Variants(s string) ([]kernels.Variant, error) {
	if s == "all" {
		return []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON}, nil
	}
	v, err := Variant(s)
	if err != nil {
		return nil, err
	}
	return []kernels.Variant{v}, nil
}

// Fidelity bundles the -fidelity flag: which execution tier a run uses.
type Fidelity struct {
	Name string
}

// AddFidelity registers -fidelity on fs.
func AddFidelity(fs *flag.FlagSet) *Fidelity {
	f := &Fidelity{}
	fs.StringVar(&f.Name, "fidelity", "cycle",
		"execution tier: cycle (detailed machine) or functional (program-order interpretation, no timing)")
	return f
}

// Parse resolves the tier, rejecting unknown spellings as a hard error.
func (f *Fidelity) Parse() (sim.Fidelity, error) {
	return sim.ParseFidelity(f.Name)
}

// RejectTimingFlags hard-errors when -fidelity functional is combined with
// flags that only mean something on the cycle tier (mirroring the unknown
// -trace-format handling: a usage error, not a silent no-op). Callers pass
// the names of the timing flags the user actually set.
func (f *Fidelity) RejectTimingFlags(active ...string) error {
	fid, err := f.Parse()
	if err != nil {
		return err
	}
	if fid == sim.Functional && len(active) > 0 {
		return fmt.Errorf("-fidelity functional cannot be combined with %s: functional runs have no cycles to trace or attribute",
			strings.Join(active, ", "))
	}
	return nil
}

// Trace bundles the -trace flag family.
type Trace struct {
	File     string
	Interval int64
	Format   string
}

// AddTrace registers -trace, -trace-interval and -trace-format on fs.
func AddTrace(fs *flag.FlagSet) *Trace {
	t := &Trace{}
	fs.StringVar(&t.File, "trace", "", "write a cycle trace to this file")
	fs.Int64Var(&t.Interval, "trace-interval", 1000, "stall-attribution interval in cycles")
	fs.StringVar(&t.Format, "trace-format", "chrome", "trace file format: chrome (trace_event JSON) or text")
	return t
}

// Validate rejects an unknown -trace-format as a hard error (historically
// uvesim silently fell through to one of the formats).
func (t *Trace) Validate() error {
	if t.Format != "chrome" && t.Format != "text" {
		return fmt.Errorf("unknown -trace-format %q (chrome|text)", t.Format)
	}
	if t.Interval <= 0 {
		return fmt.Errorf("-trace-interval must be positive, got %d", t.Interval)
	}
	return nil
}

// Collector builds the run's trace collector: ringSize event slots when a
// trace file was requested, attribution-only otherwise. Returns nil when
// neither the file nor wantAttribution asks for one.
func (t *Trace) Collector(ringSize int, wantAttribution bool) *trace.Collector {
	if t.File == "" && !wantAttribution {
		return nil
	}
	ring := 0
	if t.File != "" {
		ring = ringSize
	}
	return trace.NewCollector(ring, t.Interval)
}

// Faults bundles the -faults / -watchdog flag family.
type Faults struct {
	Spec     string
	set      bool
	Watchdog int64
}

// AddFaults registers -faults and -watchdog on fs. -faults takes a
// comma-separated key=value campaign spec (seed, nack, nack-retries,
// nack-backoff, pf, max-pf, dram, dram-cycles, suspend, suspend-cycles);
// the empty value selects the default plan with seed 1.
func AddFaults(fs *flag.FlagSet) *Faults {
	f := &Faults{}
	fs.Var(faultSpec{f}, "faults",
		"run under seeded deterministic fault injection; spec: key=value,... (e.g. seed=7,nack=100,pf=50)")
	fs.Int64Var(&f.Watchdog, "watchdog", 0,
		"abort with a diagnostic after this many cycles without a commit (0 = default bound)")
	return f
}

// faultSpec makes -faults distinguishable between "absent" and "empty"
// (an empty value is a valid spec: the default campaign).
type faultSpec struct{ f *Faults }

func (s faultSpec) String() string { return "" }
func (s faultSpec) Set(v string) error {
	s.f.Spec = v
	s.f.set = true
	// Parse eagerly so a bad spec fails at flag-parse time with the
	// offending key in the message.
	_, err := fault.ParsePlan(v)
	return err
}

// Plan returns the campaign plan, or nil when -faults was not given.
func (f *Faults) Plan() (*fault.Plan, error) {
	if !f.set {
		return nil, nil
	}
	p, err := fault.ParsePlan(f.Spec)
	if err != nil {
		return nil, err
	}
	return &p, nil
}
