package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/kernels"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestVariant(t *testing.T) {
	for in, want := range map[string]kernels.Variant{
		"UVE": kernels.UVE, "uve": kernels.UVE,
		"SVE": kernels.SVE, "sve": kernels.SVE,
		"NEON": kernels.NEON, "neon": kernels.NEON,
	} {
		v, err := Variant(in)
		if err != nil || v != want {
			t.Errorf("Variant(%q) = %v, %v", in, v, err)
		}
	}
	if _, err := Variant("AVX"); err == nil {
		t.Error("Variant accepted AVX")
	}
	vs, err := Variants("all")
	if err != nil || len(vs) != 3 {
		t.Errorf("Variants(all) = %v, %v", vs, err)
	}
}

func TestTraceValidate(t *testing.T) {
	fs := newFS()
	tr := AddTrace(fs)
	if err := fs.Parse([]string{"-trace", "x.json", "-trace-format", "perfetto"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "perfetto") {
		t.Errorf("bad format not rejected: %v", err)
	}

	fs = newFS()
	tr = AddTrace(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if c := tr.Collector(16, false); c != nil {
		t.Error("collector built with no trace file and no attribution request")
	}
	if c := tr.Collector(16, true); c == nil {
		t.Error("no collector despite attribution request")
	}
	tr.File = "x.json"
	if c := tr.Collector(16, false); c == nil {
		t.Error("no collector despite trace file")
	}
}

func TestFaultsFlag(t *testing.T) {
	fs := newFS()
	f := AddFaults(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if p, err := f.Plan(); err != nil || p != nil {
		t.Errorf("absent -faults: plan %v, err %v", p, err)
	}

	fs = newFS()
	f = AddFaults(fs)
	if err := fs.Parse([]string{"-faults", "seed=9,nack=100", "-watchdog", "777"}); err != nil {
		t.Fatal(err)
	}
	p, err := f.Plan()
	if err != nil || p == nil || p.Seed != 9 || p.NackPerMille != 100 {
		t.Errorf("plan = %+v, err %v", p, err)
	}
	if f.Watchdog != 777 {
		t.Errorf("watchdog = %d", f.Watchdog)
	}

	// Empty spec is the default campaign, not an error.
	fs = newFS()
	f = AddFaults(fs)
	if err := fs.Parse([]string{"-faults", ""}); err != nil {
		t.Fatal(err)
	}
	if p, err := f.Plan(); err != nil || p == nil || !p.Enabled() {
		t.Errorf("empty spec: plan %+v, err %v", p, err)
	}

	// A bad spec fails at parse time.
	fs = newFS()
	AddFaults(fs)
	if err := fs.Parse([]string{"-faults", "bogus=1"}); err == nil {
		t.Error("bad spec accepted at parse time")
	}
}
