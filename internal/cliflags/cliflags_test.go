package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sim"
)

func newFS() *flag.FlagSet {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	return fs
}

func TestVariant(t *testing.T) {
	for in, want := range map[string]kernels.Variant{
		"UVE": kernels.UVE, "uve": kernels.UVE,
		"SVE": kernels.SVE, "sve": kernels.SVE,
		"NEON": kernels.NEON, "neon": kernels.NEON,
	} {
		v, err := Variant(in)
		if err != nil || v != want {
			t.Errorf("Variant(%q) = %v, %v", in, v, err)
		}
	}
	if _, err := Variant("AVX"); err == nil {
		t.Error("Variant accepted AVX")
	}
	vs, err := Variants("all")
	if err != nil || len(vs) != 3 {
		t.Errorf("Variants(all) = %v, %v", vs, err)
	}
}

func TestTraceValidate(t *testing.T) {
	fs := newFS()
	tr := AddTrace(fs)
	if err := fs.Parse([]string{"-trace", "x.json", "-trace-format", "perfetto"}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "perfetto") {
		t.Errorf("bad format not rejected: %v", err)
	}

	fs = newFS()
	tr = AddTrace(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Errorf("defaults rejected: %v", err)
	}
	if c := tr.Collector(16, false); c != nil {
		t.Error("collector built with no trace file and no attribution request")
	}
	if c := tr.Collector(16, true); c == nil {
		t.Error("no collector despite attribution request")
	}
	tr.File = "x.json"
	if c := tr.Collector(16, false); c == nil {
		t.Error("no collector despite trace file")
	}
}

func TestFaultsFlag(t *testing.T) {
	fs := newFS()
	f := AddFaults(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if p, err := f.Plan(); err != nil || p != nil {
		t.Errorf("absent -faults: plan %v, err %v", p, err)
	}

	fs = newFS()
	f = AddFaults(fs)
	if err := fs.Parse([]string{"-faults", "seed=9,nack=100", "-watchdog", "777"}); err != nil {
		t.Fatal(err)
	}
	p, err := f.Plan()
	if err != nil || p == nil || p.Seed != 9 || p.NackPerMille != 100 {
		t.Errorf("plan = %+v, err %v", p, err)
	}
	if f.Watchdog != 777 {
		t.Errorf("watchdog = %d", f.Watchdog)
	}

	// Empty spec is the default campaign, not an error.
	fs = newFS()
	f = AddFaults(fs)
	if err := fs.Parse([]string{"-faults", ""}); err != nil {
		t.Fatal(err)
	}
	if p, err := f.Plan(); err != nil || p == nil || !p.Enabled() {
		t.Errorf("empty spec: plan %+v, err %v", p, err)
	}

	// A bad spec fails at parse time.
	fs = newFS()
	AddFaults(fs)
	if err := fs.Parse([]string{"-faults", "bogus=1"}); err == nil {
		t.Error("bad spec accepted at parse time")
	}
}

func TestFidelity(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		timing  []string // timing flags the tool saw set
		wantFid sim.Fidelity
		wantErr string // substring of the expected error, "" = success
	}{
		{name: "default-cycle", args: nil, wantFid: sim.Cycle},
		{name: "explicit-cycle", args: []string{"-fidelity", "cycle"}, wantFid: sim.Cycle},
		{name: "functional", args: []string{"-fidelity", "functional"}, wantFid: sim.Functional},
		{name: "unknown-tier", args: []string{"-fidelity", "approximate"}, wantErr: "unknown fidelity"},
		{name: "functional-with-trace", args: []string{"-fidelity", "functional"},
			timing: []string{"-trace"}, wantErr: "-fidelity functional cannot be combined with -trace"},
		{name: "functional-with-stalls", args: []string{"-fidelity", "functional"},
			timing: []string{"-stalls"}, wantErr: "cannot be combined with -stalls"},
		{name: "functional-with-both", args: []string{"-fidelity", "functional"},
			timing: []string{"-trace", "-stalls"}, wantErr: "-trace, -stalls"},
		{name: "cycle-with-trace-ok", args: []string{"-fidelity", "cycle"}, timing: []string{"-trace"}},
		{name: "default-with-stalls-ok", args: nil, timing: []string{"-stalls"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := newFS()
			f := AddFidelity(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatalf("flag parse: %v", err)
			}
			err := f.RejectTimingFlags(tc.timing...)
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			fid, err := f.Parse()
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if fid != tc.wantFid {
				t.Fatalf("fidelity = %v, want %v", fid, tc.wantFid)
			}
		})
	}
}
