package kernels

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// ld and st are shorthand 1-D stream descriptor builders.
func ld1(base uint64, w arch.ElemWidth, n int) *descriptor.Descriptor {
	return descriptor.New(base, w, descriptor.Load).Linear(int64(n), 1).MustBuild()
}

func st1(base uint64, w arch.ElemWidth, n int) *descriptor.Descriptor {
	return descriptor.New(base, w, descriptor.Store).Linear(int64(n), 1).MustBuild()
}

// --- A. Memcpy ---

// KMemcpy is y[i] = x[i] over double-words.
var KMemcpy = register(&Kernel{
	ID: "A", Name: "Memcpy", Domain: "memory",
	Streams: 2, Loops: 1, Pattern: "1D",
	SVEVectorized: true,
	DefaultSize:   1 << 16,
	Build:         buildMemcpy,
})

func buildMemcpy(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(101)
	xb := h.Mem.Alloc(8*n, arch.LineSize)
	yb := h.Mem.Alloc(8*n, arch.LineSize)
	for i := 0; i < n; i++ {
		h.Mem.Write(xb+uint64(8*i), arch.W8, rng.next())
	}
	spec := &map1DSpec{
		name: "memcpy", w: arch.W8, ins: []uint64{xb}, out: yb, n: n,
		emit: func(b *program.Builder, w arch.ElemWidth, pred isa.Reg, in []isa.Reg, out isa.Reg) {
			b.I(isa.VMove(w, out, in[0]))
		},
		emitScalar: func(b *program.Builder, w arch.ElemWidth, in []isa.Reg, out isa.Reg) {
			b.I(isa.FMv(w, out, in[0]))
		},
	}
	check := func() error {
		for i := 0; i < n; i++ {
			want := h.Mem.Read(xb+uint64(8*i), arch.W8)
			if got := h.Mem.Read(yb+uint64(8*i), arch.W8); got != want {
				return fmt.Errorf("y[%d] = %#x, want %#x", i, got, want)
			}
		}
		return nil
	}
	return instanceMap1D(h, v, spec, int64(16*n), check)
}

// --- C. SAXPY (paper Figs 1 and 4) ---

// KSaxpy is y[i] = a·x[i] + y[i].
var KSaxpy = register(&Kernel{
	ID: "C", Name: "SAXPY", Domain: "BLAS",
	Streams: 3, Loops: 1, Pattern: "1D",
	SVEVectorized: true,
	DefaultSize:   1 << 15,
	Build:         buildSaxpy,
})

func buildSaxpy(h *mem.Hierarchy, v Variant, n int) *Instance {
	const a = 2.5
	rng := newLCG(303)
	xb, xs := allocF32(h, n, func(int) float64 { return rng.f32(10) })
	yb, ys := allocF32(h, n, func(int) float64 { return rng.f32(10) })
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		want[i] = float64(float32(a)*float32(xs[i]) + float32(ys[i]))
	}

	w := arch.W4
	var bld *program.Builder
	if v == UVE {
		// Fig 4: three streams, a broadcast, and mul+add per chunk (the FMA
		// cannot be used because a stream register cannot be read and
		// written by the same instruction).
		b := program.NewBuilder("saxpy-UVE")
		b.ConfigStream(0, ld1(xb, w, n))
		b.ConfigStream(1, ld1(yb, w, n))
		b.ConfigStream(2, st1(yb, w, n))
		b.I(isa.VDup(w, isa.V(3), isa.F(1)))
		b.Label("loop")
		b.I(isa.VFMul(w, isa.V(4), isa.V(3), isa.V(0), isa.None))
		b.I(isa.VFAdd(w, isa.V(2), isa.V(4), isa.V(1), isa.None))
		b.I(isa.SBNotEnd(0, "loop"))
		b.I(isa.Halt())
		bld = b
	} else {
		spec := &map1DSpec{
			name: "saxpy", w: w, ins: []uint64{xb, yb}, out: yb, n: n,
			setup: func(b *program.Builder, w arch.ElemWidth) {
				b.I(isa.VDup(w, isa.V(9), isa.F(1)))
			},
			emit: func(b *program.Builder, w arch.ElemWidth, pred isa.Reg, in []isa.Reg, out isa.Reg) {
				b.I(isa.VMove(w, out, in[1]))
				b.I(isa.VFMla(w, out, isa.V(9), in[0], pred))
			},
			emitScalar: func(b *program.Builder, w arch.ElemWidth, in []isa.Reg, out isa.Reg) {
				b.I(isa.FMadd(w, out, isa.F(1), in[0], in[1]))
			},
		}
		bld = buildMap1D(v, spec)
	}
	inst := instance(bld, int64(12*n), func() error { return checkF32(h, "y", yb, want, 1e-5) })
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[2] = xb
		inst.IntArgs[3] = yb
		inst.IntArgs[4] = yb
	}
	inst.FPArgs[1] = FPArg{W: w, V: a}
	return finalize(h, inst)
}

// --- B. STREAM (Scale, Add, Triad — McCalpin) ---

// KStream runs the three non-copy STREAM sub-kernels back to back:
// b = s·c; c = a + b; a = b + s·c.
var KStream = register(&Kernel{
	ID: "B", Name: "STREAM", Domain: "memory",
	Streams: 3, Loops: 3, Pattern: "1D",
	SVEVectorized: true,
	DefaultSize:   1 << 15,
	Build:         buildStream,
})

func buildStream(h *mem.Hierarchy, v Variant, n int) *Instance {
	const s = 3.0
	rng := newLCG(202)
	ab, av := allocF32(h, n, func(int) float64 { return rng.f32(10) })
	bb, _ := allocF32(h, n, func(int) float64 { return rng.f32(10) })
	cb, cv := allocF32(h, n, func(int) float64 { return rng.f32(10) })

	wantB := make([]float64, n)
	wantC := make([]float64, n)
	wantA := make([]float64, n)
	for i := 0; i < n; i++ {
		wantB[i] = float64(float32(s) * float32(cv[i]))
		wantC[i] = float64(float32(av[i]) + float32(wantB[i]))
		wantA[i] = float64(float32(wantB[i]) + float32(s)*float32(wantC[i]))
	}

	w := arch.W4
	var bld *program.Builder
	if v == UVE {
		b := program.NewBuilder("stream-UVE")
		b.I(isa.VDup(w, isa.V(9), isa.F(1)))
		// Scale: b = s·c.
		b.ConfigStream(0, ld1(cb, w, n))
		b.ConfigStream(1, st1(bb, w, n))
		b.Label("scale")
		b.I(isa.VFMul(w, isa.V(1), isa.V(9), isa.V(0), isa.None))
		b.I(isa.SBNotEnd(0, "scale"))
		// Add: c = a + b.
		b.ConfigStream(2, ld1(ab, w, n))
		b.ConfigStream(3, ld1(bb, w, n))
		b.ConfigStream(4, st1(cb, w, n))
		b.Label("add")
		b.I(isa.VFAdd(w, isa.V(4), isa.V(2), isa.V(3), isa.None))
		b.I(isa.SBNotEnd(2, "add"))
		// Triad: a = b + s·c.
		b.ConfigStream(5, ld1(bb, w, n))
		b.ConfigStream(6, ld1(cb, w, n))
		b.ConfigStream(7, st1(ab, w, n))
		b.Label("triad")
		b.I(isa.VFMulAdd(w, isa.V(7), isa.V(9), isa.V(6), isa.V(5)))
		b.I(isa.SBNotEnd(5, "triad"))
		b.I(isa.Halt())
		bld = b
	} else {
		// Baselines: three sequential vector loops sharing the map-1D shape.
		b := program.NewBuilder("stream-" + v.String())
		b.I(isa.VDup(w, isa.V(9), isa.F(1)))
		phase := func(tag string, ins []int, out int, emit func(pb *program.Builder, pred isa.Reg, in []isa.Reg, o isa.Reg), scalar func(pb *program.Builder, in []isa.Reg, o isa.Reg)) {
			emitVecLoop(b, v, w, tag, ins, out, emit, scalar)
		}
		// Register args: x1=n, x2=a, x3=b, x4=c.
		phase("scale", []int{4}, 3, func(pb *program.Builder, pred isa.Reg, in []isa.Reg, o isa.Reg) {
			pb.I(isa.VFMul(w, o, isa.V(9), in[0], pred))
		}, func(pb *program.Builder, in []isa.Reg, o isa.Reg) {
			pb.I(isa.FMul(w, o, isa.F(1), in[0]))
		})
		phase("add", []int{2, 3}, 4, func(pb *program.Builder, pred isa.Reg, in []isa.Reg, o isa.Reg) {
			pb.I(isa.VFAdd(w, o, in[0], in[1], pred))
		}, func(pb *program.Builder, in []isa.Reg, o isa.Reg) {
			pb.I(isa.FAdd(w, o, in[0], in[1]))
		})
		phase("triad", []int{3, 4}, 2, func(pb *program.Builder, pred isa.Reg, in []isa.Reg, o isa.Reg) {
			pb.I(isa.VMove(w, o, in[0]))
			pb.I(isa.VFMla(w, o, isa.V(9), in[1], pred))
		}, func(pb *program.Builder, in []isa.Reg, o isa.Reg) {
			pb.I(isa.FMadd(w, o, isa.F(1), in[1], in[0]))
		})
		b.I(isa.Halt())
		bld = b
	}

	inst := instance(bld, int64(12*n), func() error {
		if err := checkF32(h, "b", bb, wantB, 1e-5); err != nil {
			return err
		}
		if err := checkF32(h, "c", cb, wantC, 1e-5); err != nil {
			return err
		}
		return checkF32(h, "a", ab, wantA, 1e-5)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[2] = ab
		inst.IntArgs[3] = bb
		inst.IntArgs[4] = cb
	}
	inst.FPArgs[1] = FPArg{W: w, V: s}
	return finalize(h, inst)
}

// emitVecLoop appends one whilelt-style (SVE) or fixed-width+tail (NEON)
// vector loop over n=x1 elements. ins/out are argument-register numbers
// holding base addresses.
func emitVecLoop(b *program.Builder, v Variant, w arch.ElemWidth, tag string,
	ins []int, out int,
	emit func(pb *program.Builder, pred isa.Reg, in []isa.Reg, o isa.Reg),
	scalar func(pb *program.Builder, in []isa.Reg, o isa.Reg)) {

	inRegs := make([]isa.Reg, len(ins))
	if v == SVE {
		b.I(isa.Li(isa.X(9), 0))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		b.Label(tag + "_loop")
		for i, a := range ins {
			inRegs[i] = isa.V(10 + i)
			b.I(isa.VLoad(w, inRegs[i], isa.X(a), isa.X(9), 0, isa.P(1)))
		}
		emit(b, isa.P(1), inRegs, isa.V(20))
		b.I(isa.VStore(w, isa.X(out), isa.X(9), 0, isa.V(20), isa.P(1)))
		b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		b.I(isa.BFirst(isa.P(1), tag+"_loop"))
		return
	}
	lanes := lanesFor(NEON, w)
	b.I(isa.Li(isa.X(9), 0))
	b.I(isa.Li(isa.X(15), int64(lanes)))
	b.I(isa.Div(isa.X(10), isa.X(1), isa.X(15)))
	b.I(isa.Mul(isa.X(10), isa.X(10), isa.X(15)))
	b.I(isa.Beq(isa.X(10), isa.X(0), tag+"_tail"))
	b.Label(tag + "_loop")
	for i, a := range ins {
		inRegs[i] = isa.V(10 + i)
		b.I(isa.VLoad(w, inRegs[i], isa.X(a), isa.X(9), 0, isa.None))
	}
	emit(b, isa.None, inRegs, isa.V(20))
	b.I(isa.VStore(w, isa.X(out), isa.X(9), 0, isa.V(20), isa.None))
	b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
	b.I(isa.Blt(isa.X(9), isa.X(10), tag+"_loop"))
	b.Label(tag + "_tail")
	b.I(isa.Bge(isa.X(9), isa.X(1), tag+"_done"))
	b.I(isa.Li(isa.X(11), int64(w)))
	b.I(isa.Mul(isa.X(12), isa.X(9), isa.X(11)))
	b.Label(tag + "_tloop")
	fin := make([]isa.Reg, len(ins))
	for i, a := range ins {
		fin[i] = isa.F(10 + i)
		b.I(isa.Add(isa.X(13), isa.X(a), isa.X(12)))
		b.I(isa.FLoad(w, fin[i], isa.X(13), 0))
	}
	scalar(b, fin, isa.F(20))
	b.I(isa.Add(isa.X(13), isa.X(out), isa.X(12)))
	b.I(isa.FStore(w, isa.X(13), 0, isa.F(20)))
	b.I(isa.Add(isa.X(12), isa.X(12), isa.X(11)))
	b.I(isa.AddI(isa.X(9), isa.X(9), 1))
	b.I(isa.Blt(isa.X(9), isa.X(1), tag+"_tloop"))
	b.Label(tag + "_done")
}
