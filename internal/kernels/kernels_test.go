package kernels_test

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// testSizes gives each kernel a small correctness-test size.
var testSizes = map[string]int{
	"A": 1000, // memcpy elements
	"B": 700,  // stream elements
	"C": 777,  // saxpy elements
	"D": 32,   // gemm N
	"E": 16,   // 3mm N
	"F": 48,   // mvt N
	"G": 32,   // gemver N
	"H": 40,   // trisolv N
	"I": 500,  // jacobi-1d N
	"J": 24,   // jacobi-2d N
	"K": 8,    // irsmk grid edge
	"L": 64,   // haccmk particles
	"M": 48,   // knn points
	"N": 16,   // covariance N
	"O": 24,   // mamr N
	"P": 24,
	"Q": 24,
	"R": 20, // seidel N
	"S": 20, // floyd-warshall N
}

// TestAllKernelsAllVariants runs every registered benchmark on every ISA
// variant at a small size and validates outputs against the pure-Go
// reference.
func TestAllKernelsAllVariants(t *testing.T) {
	for _, k := range kernels.All {
		k := k
		size := testSizes[k.ID]
		if size == 0 {
			size = 32
		}
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			v := v
			t.Run(k.ID+"-"+k.Name+"/"+v.String(), func(t *testing.T) {
				t.Parallel()
				res, err := sim.Run(k, v, size, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Cycles <= 0 || res.Committed == 0 {
					t.Fatalf("degenerate run: %+v", res)
				}
			})
		}
	}
}

// TestRegistryMetadata sanity-checks the Fig 8 table metadata.
func TestRegistryMetadata(t *testing.T) {
	seen := map[string]bool{}
	for _, k := range kernels.All {
		if seen[k.ID] {
			t.Errorf("duplicate kernel ID %s", k.ID)
		}
		seen[k.ID] = true
		if k.Streams <= 0 || k.Loops <= 0 || k.Pattern == "" || k.DefaultSize <= 0 {
			t.Errorf("kernel %s has incomplete metadata: %+v", k.ID, k)
		}
		if kernels.ByID(k.ID) != k {
			t.Errorf("ByID(%s) lookup failed", k.ID)
		}
	}
}

// TestUVEBeatsBaselinesOnInstructionCount checks the Fig 8.A direction for
// every vectorized kernel: UVE commits fewer instructions than SVE, which
// commits fewer than NEON.
func TestUVEBeatsBaselinesOnInstructionCount(t *testing.T) {
	for _, k := range kernels.All {
		if !k.SVEVectorized {
			continue
		}
		k := k
		t.Run(k.ID+"-"+k.Name, func(t *testing.T) {
			t.Parallel()
			size := testSizes[k.ID]
			uve := sim.MustRun(k, kernels.UVE, size, nil)
			sve := sim.MustRun(k, kernels.SVE, size, nil)
			neon := sim.MustRun(k, kernels.NEON, size, nil)
			if uve.Committed >= sve.Committed {
				t.Errorf("UVE committed %d ≥ SVE %d", uve.Committed, sve.Committed)
			}
			if sve.Committed >= neon.Committed {
				t.Errorf("SVE committed %d ≥ NEON %d", sve.Committed, neon.Committed)
			}
		})
	}
}
