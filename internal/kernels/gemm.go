package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// allocMatF32 allocates a rows×cols row-major float32 matrix.
func allocMatF32(h *mem.Hierarchy, rows, cols int, fill func(i, j int) float64) (uint64, []float64) {
	base := h.Mem.Alloc(4*rows*cols, arch.LineSize)
	vals := make([]float64, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := float64(float32(fill(i, j)))
			vals[i*cols+j] = v
			h.Mem.WriteFloat(base+uint64(4*(i*cols+j)), arch.W4, v)
		}
	}
	return base, vals
}

// refGemm computes C = A·B in float32 with the k-ordered accumulation every
// variant uses, so comparisons are near-exact.
func refGemm(a, b []float64, n int) []float64 {
	c := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			acc := float32(0)
			for k := 0; k < n; k++ {
				acc += float32(a[i*n+k]) * float32(b[k*n+j])
			}
			c[i*n+j] = float64(acc)
		}
	}
	return c
}

// emitGemmUVE appends one C = A·B matrix multiply using four streams
// starting at register u0: B blocks (4-D), A scalars (4-D), C output (3-D).
// The inner k-loop is three instructions (broadcast, fused multiply-add and
// one dimension-conditional branch).
func emitGemmUVE(b *program.Builder, tag string, u0 int, aB, bB, cB uint64, n int) {
	const w = arch.W4
	lanes := arch.LanesFor(arch.MaxVecBytes, w)
	nb := n / lanes
	if nb*lanes != n {
		b.Errorf("gemm: N=%d must be a multiple of the vector lane count %d", n, lanes)
	}
	n64, l64, nb64 := int64(n), int64(lanes), int64(nb)
	dB := descriptor.New(bB, w, descriptor.Load).
		Dim(0, l64, 1).    // j within block
		Dim(0, n64, n64).  // k rows
		Dim(0, nb64, l64). // jb blocks
		Dim(0, n64, 0).    // repeated for every i
		MustBuild()
	dA := descriptor.New(aB, w, descriptor.Load).
		Dim(0, 1, 1).     // one scalar per (i,k)
		Dim(0, n64, 1).   // k
		Dim(0, nb64, 0).  // repeated per block
		Dim(0, n64, n64). // i rows
		MustBuild()
	dC := descriptor.New(cB, w, descriptor.Store).
		Dim(0, l64, 1).
		Dim(0, nb64, l64).
		Dim(0, n64, n64).
		MustBuild()
	uB, uA, uC := u0, u0+1, u0+2
	b.ConfigStream(uB, dB)
	b.ConfigStream(uA, dA)
	b.ConfigStream(uC, dC)
	b.Label(tag + "_jb")
	b.I(isa.VDupX(w, isa.V(28), isa.X(0))) // acc = 0
	b.Label(tag + "_k")
	// Multiply and accumulate separately (the paper's Fig 4 idiom): the
	// dependent chain is the 2-cycle add, not a 4-cycle FMA.
	b.I(isa.VBcast(w, isa.V(29), isa.V(uA)))
	b.I(isa.VFMul(w, isa.V(27), isa.V(29), isa.V(uB), isa.None))
	b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(27), isa.None))
	b.I(isa.SBDimNotEnd(uB, 1, tag+"_k"))
	b.I(isa.VMove(w, isa.V(uC), isa.V(28)))
	b.I(isa.SBNotEnd(uB, tag+"_jb"))
}

// emitGemmBaseline appends one C = A·B multiply in SVE (whilelt-predicated)
// or NEON (fixed-width) style. Matrix base addresses live in argument
// registers regA/regB/regC; N is in x1.
func emitGemmBaseline(b *program.Builder, v Variant, tag string, regA, regB, regC int) {
	const w = arch.W4
	pred := isa.None
	if v == SVE {
		pred = isa.P(1)
	}
	lanes := lanesFor(v, w)
	b.I(isa.Li(isa.X(5), 0)) // i
	b.Label(tag + "_i")
	b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1))) // i*N
	b.I(isa.Li(isa.X(6), 0))                   // jb
	if v == SVE {
		b.I(isa.Whilelt(w, isa.P(1), isa.X(6), isa.X(1)))
	}
	b.Label(tag + "_jb")
	b.I(isa.VDupX(w, isa.V(3), isa.X(0))) // acc = 0
	b.I(isa.Li(isa.X(7), 0))              // k
	b.I(isa.Mv(isa.X(11), isa.X(6)))      // bidx = jb
	b.Label(tag + "_k")
	b.I(isa.Add(isa.X(12), isa.X(8), isa.X(7))) // i*N + k
	b.I(isa.SllI(isa.X(13), isa.X(12), 2))
	b.I(isa.Add(isa.X(13), isa.X(13), isa.X(regA)))
	b.I(isa.FLoad(w, isa.F(2), isa.X(13), 0)) // A[i][k] (ld1r-style)
	b.I(isa.VDup(w, isa.V(1), isa.F(2)))
	b.I(isa.VLoad(w, isa.V(2), isa.X(regB), isa.X(11), 0, pred))
	b.I(isa.VFMla(w, isa.V(3), isa.V(1), isa.V(2), pred))
	b.I(isa.Add(isa.X(11), isa.X(11), isa.X(1))) // bidx += N
	b.I(isa.AddI(isa.X(7), isa.X(7), 1))
	b.I(isa.Blt(isa.X(7), isa.X(1), tag+"_k"))
	b.I(isa.Add(isa.X(12), isa.X(8), isa.X(6)))
	b.I(isa.VStore(w, isa.X(regC), isa.X(12), 0, isa.V(3), pred))
	if v == SVE {
		b.I(isa.IncVL(w, isa.X(6), isa.X(6)))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(6), isa.X(1)))
		b.I(isa.BFirst(isa.P(1), tag+"_jb"))
	} else {
		b.I(isa.AddI(isa.X(6), isa.X(6), int64(lanes)))
		b.I(isa.Blt(isa.X(6), isa.X(1), tag+"_jb"))
	}
	b.I(isa.AddI(isa.X(5), isa.X(5), 1))
	b.I(isa.Blt(isa.X(5), isa.X(1), tag+"_i"))
}

// --- D. GEMM ---

// KGemm is C = A·B over N×N float32 matrices.
var KGemm = register(&Kernel{
	ID: "D", Name: "GEMM", Domain: "BLAS",
	Streams: 4, Loops: 3, Pattern: "1-4D",
	SVEVectorized: true,
	DefaultSize:   96,
	Build:         buildGemm,
})

func buildGemm(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(404)
	aB, av := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	bB, bv := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	cB := h.Mem.Alloc(4*n*n, arch.LineSize)
	want := refGemm(av, bv, n)

	b := program.NewBuilder("gemm-" + v.String())
	if v == UVE {
		emitGemmUVE(b, "g", 0, aB, bB, cB, n)
	} else {
		emitGemmBaseline(b, v, "g", 20, 21, 22)
	}
	b.I(isa.Halt())
	inst := instance(b, int64(12*n*n), func() error {
		return checkF32(h, "C", cB, want, 1e-4)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[20] = aB
		inst.IntArgs[21] = bB
		inst.IntArgs[22] = cB
	}
	return finalize(h, inst)
}

// --- E. 3MM ---

// K3mm is E = A·B; F = C·D; G = E·F (PolyBench 3mm).
var K3mm = register(&Kernel{
	ID: "E", Name: "3MM", Domain: "algebra",
	Streams: 9, Loops: 3, Pattern: "4D",
	SVEVectorized: true,
	DefaultSize:   64,
	Build:         build3mm,
})

func build3mm(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(505)
	aB, av := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	bB, bv := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	cB, cv := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	dB, dv := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	eB := h.Mem.Alloc(4*n*n, arch.LineSize)
	fB := h.Mem.Alloc(4*n*n, arch.LineSize)
	gB := h.Mem.Alloc(4*n*n, arch.LineSize)
	ev := refGemm(av, bv, n)
	fv := refGemm(cv, dv, n)
	gv := refGemm(ev, fv, n)

	b := program.NewBuilder("3mm-" + v.String())
	if v == UVE {
		emitGemmUVE(b, "p1", 0, aB, bB, eB, n)
		emitGemmUVE(b, "p2", 3, cB, dB, fB, n)
		emitGemmUVE(b, "p3", 6, eB, fB, gB, n)
	} else {
		emitGemmBaseline(b, v, "p1", 20, 21, 24)
		emitGemmBaseline(b, v, "p2", 22, 23, 25)
		emitGemmBaseline(b, v, "p3", 24, 25, 26)
	}
	b.I(isa.Halt())
	inst := instance(b, int64(28*n*n), func() error {
		if err := checkF32(h, "E", eB, ev, 1e-4); err != nil {
			return err
		}
		if err := checkF32(h, "F", fB, fv, 1e-4); err != nil {
			return err
		}
		return checkF32(h, "G", gB, gv, 2e-4)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[20] = aB
		inst.IntArgs[21] = bB
		inst.IntArgs[22] = cB
		inst.IntArgs[23] = dB
		inst.IntArgs[24] = eB
		inst.IntArgs[25] = fB
		inst.IntArgs[26] = gB
	}
	return finalize(h, inst)
}

// UnrolledGemmUVE builds the Fig 8.E ablation: the UVE GEMM with the inner
// k-loop unrolled by the given factor (1, 2, 4 or 8).
func UnrolledGemmUVE(h *mem.Hierarchy, n, unroll int) *Instance {
	rng := newLCG(404)
	aB, av := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	bB, bv := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	cB := h.Mem.Alloc(4*n*n, arch.LineSize)
	want := refGemm(av, bv, n)

	const w = arch.W4
	b := program.NewBuilder("gemm-uve-unroll")
	if unroll <= 0 || n%unroll != 0 {
		b.Errorf("unrolled gemm: N=%d must be divisible by the unroll factor %d", n, unroll)
	}
	lanes := arch.LanesFor(arch.MaxVecBytes, w)
	nb := n / lanes
	n64, l64, nb64 := int64(n), int64(lanes), int64(nb)
	dB := descriptor.New(bB, w, descriptor.Load).
		Dim(0, l64, 1).Dim(0, n64, n64).Dim(0, nb64, l64).Dim(0, n64, 0).MustBuild()
	dA := descriptor.New(aB, w, descriptor.Load).
		Dim(0, 1, 1).Dim(0, n64, 1).Dim(0, nb64, 0).Dim(0, n64, n64).MustBuild()
	dC := descriptor.New(cB, w, descriptor.Store).
		Dim(0, l64, 1).Dim(0, nb64, l64).Dim(0, n64, n64).MustBuild()
	b.ConfigStream(0, dB)
	b.ConfigStream(1, dA)
	b.ConfigStream(2, dC)
	b.Label("jb")
	// Independent partial accumulators break the FMA dependence chain.
	for uacc := 0; uacc < unroll; uacc++ {
		b.I(isa.VDupX(w, isa.V(20+uacc), isa.X(0)))
	}
	b.Label("k")
	// The unrolling ablation uses the fused-multiply-add form: with no
	// unrolling its 4-cycle accumulate chain limits throughput, and each
	// doubling of independent accumulators halves the exposed latency —
	// the effect Fig 8.E measures.
	for uacc := 0; uacc < unroll; uacc++ {
		b.I(isa.VBcast(w, isa.V(29), isa.V(1)))
		b.I(isa.VFMla(w, isa.V(20+uacc), isa.V(29), isa.V(0), isa.None))
	}
	b.I(isa.SBDimNotEnd(0, 1, "k"))
	for uacc := 1; uacc < unroll; uacc++ {
		b.I(isa.VFAdd(w, isa.V(20), isa.V(20), isa.V(20+uacc), isa.None))
	}
	b.I(isa.VMove(w, isa.V(2), isa.V(20)))
	b.I(isa.SBNotEnd(0, "jb"))
	b.I(isa.Halt())

	return finalize(h, instance(b, int64(12*n*n), func() error {
		return checkF32(h, "C", cB, want, 1e-3)
	}))
}
