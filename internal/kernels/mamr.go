package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// The three MAMR variants compute the maximum across the rows of a matrix
// (paper Fig 2): (O) a full matrix, (P) a lower-triangular matrix, and (Q)
// a full matrix of pointers into an array. The UVE loop code is *identical*
// for all three — only the stream descriptors differ — which is the paper's
// simplified-vectorization claim (F3). The ARM compiler vectorized none of
// them, so both baselines run scalar code.

// emitMamrUVE is the shared Fig 2.D loop: u0 is the input stream (whatever
// its pattern), u1 the per-row output stream.
func emitMamrUVE(b *program.Builder) {
	const w = arch.W4
	b.Label("next")
	b.I(isa.VMove(w, isa.V(5), isa.V(0)))
	b.I(isa.SBDimEnd(0, 0, "hmax"))
	b.Label("loop")
	b.I(isa.VFMax(w, isa.V(5), isa.V(5), isa.V(0), isa.None))
	b.I(isa.SBDimNotEnd(0, 0, "loop"))
	b.Label("hmax")
	b.I(isa.VFMaxV(w, isa.V(1), isa.V(5)))
	b.I(isa.SBNotEnd(0, "next"))
}

type mamrShape int

const (
	mamrFull mamrShape = iota
	mamrDiag
	mamrInd
)

func buildMamr(shape mamrShape) func(h *mem.Hierarchy, v Variant, n int) *Instance {
	return func(h *mem.Hierarchy, v Variant, n int) *Instance {
		const w = arch.W4
		rng := newLCG(1200 + uint64(shape))
		cB := h.Mem.Alloc(4*n, arch.LineSize)

		var aB uint64
		var av []float64
		var idxB uint64
		var idx []uint64
		rowLen := func(i int) int { return n }
		elemAt := func(i, j int) float64 { return av[i*n+j] }
		switch shape {
		case mamrFull:
			aB, av = allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(100) })
		case mamrDiag:
			aB, av = allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(100) })
			rowLen = func(i int) int { return i + 1 }
		case mamrInd:
			// A is a vector; B holds per-element indices into it (Fig 2.C).
			aB, av = allocF32(h, n, func(int) float64 { return rng.f32(100) })
			idxB, idx = allocU64(h, n*n, func(int) uint64 { return rng.next() % uint64(n) })
			elemAt = func(i, j int) float64 { return av[idx[i*n+j]] }
		}

		want := make([]float64, n)
		for i := 0; i < n; i++ {
			best := elemAt(i, 0)
			for j := 1; j < rowLen(i); j++ {
				if v := elemAt(i, j); v > best {
					best = v
				}
			}
			want[i] = best
		}

		b := program.NewBuilder("mamr-" + v.String())
		if v == UVE {
			switch shape {
			case mamrFull:
				b.ConfigStream(0, rows2D(aB, w, n, n, n))
			case mamrDiag:
				// Fig 3.B4: triangular rows via a static size modifier.
				b.ConfigStream(0, descriptor.New(aB, w, descriptor.Load).
					Dim(0, 0, 1).
					Dim(0, int64(n), int64(n)).
					Mod(descriptor.TargetSize, descriptor.Add, 1, int64(n)).
					MustBuild())
			case mamrInd:
				// Index stream feeds a per-element gather (Fig 3.B5 shape).
				b.ConfigStream(2, descriptor.New(idxB, arch.W8, descriptor.Load).
					Linear(int64(n*n), 1).MustBuild())
				b.ConfigStream(0, descriptor.New(aB, w, descriptor.Load).
					Dim(0, int64(n), 0).
					Indirect(descriptor.TargetOffset, descriptor.SetValue, 2).
					Dim(0, int64(n), 0).
					MustBuild())
			}
			b.ConfigStream(1, scalarRows(cB, w, n, 1, descriptor.Store))
			emitMamrUVE(b)
		} else {
			// Scalar baseline.
			b.I(isa.Li(isa.X(5), 0)) // i
			b.Label("i")
			b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1))) // i*n
			// row bound: full/ind → n; diag → i+1 (in x7).
			if shape == mamrDiag {
				b.I(isa.AddI(isa.X(7), isa.X(5), 1))
			} else {
				b.I(isa.Mv(isa.X(7), isa.X(1)))
			}
			loadElem := func(dst isa.Reg) {
				// element address for A[i][j] / A[idx[i*n+j]]
				b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
				if shape == mamrInd {
					b.I(isa.SllI(isa.X(13), isa.X(12), 3))
					b.I(isa.Add(isa.X(13), isa.X(13), isa.X(21)))
					b.I(isa.Load(arch.W8, isa.X(14), isa.X(13), 0))
					b.I(isa.SllI(isa.X(14), isa.X(14), 2))
					b.I(isa.Add(isa.X(14), isa.X(14), isa.X(20)))
					b.I(isa.FLoad(w, dst, isa.X(14), 0))
				} else {
					b.I(isa.SllI(isa.X(13), isa.X(12), 2))
					b.I(isa.Add(isa.X(13), isa.X(13), isa.X(20)))
					b.I(isa.FLoad(w, dst, isa.X(13), 0))
				}
			}
			b.I(isa.Li(isa.X(9), 0))
			loadElem(isa.F(10))
			b.I(isa.Li(isa.X(9), 1))
			b.I(isa.Bge(isa.X(9), isa.X(7), "rowdone"))
			b.Label("j")
			loadElem(isa.F(11))
			b.I(isa.FMax(w, isa.F(10), isa.F(10), isa.F(11)))
			b.I(isa.AddI(isa.X(9), isa.X(9), 1))
			b.I(isa.Blt(isa.X(9), isa.X(7), "j"))
			b.Label("rowdone")
			b.I(isa.SllI(isa.X(13), isa.X(5), 2))
			b.I(isa.Add(isa.X(13), isa.X(13), isa.X(22)))
			b.I(isa.FStore(w, isa.X(13), 0, isa.F(10)))
			b.I(isa.AddI(isa.X(5), isa.X(5), 1))
			b.I(isa.Blt(isa.X(5), isa.X(1), "i"))
		}
		b.I(isa.Halt())

		inst := instance(b, int64(4*n*n), func() error {
			return checkF32(h, "C", cB, want, 0)
		})
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[20] = aB
		inst.IntArgs[21] = idxB
		inst.IntArgs[22] = cB
		return finalize(h, inst)
	}
}

// KMamr, KMamrDiag and KMamrInd are the Fig 8 rows O, P, Q.
var KMamr = register(&Kernel{
	ID: "O", Name: "MAMR", Domain: "data mining",
	Streams: 2, Loops: 1, Pattern: "2D",
	SVEVectorized: false,
	DefaultSize:   192,
	Build:         buildMamr(mamrFull),
})

var KMamrDiag = register(&Kernel{
	ID: "P", Name: "MAMR-Diag", Domain: "data mining",
	Streams: 2, Loops: 1, Pattern: "2D+static-mod",
	SVEVectorized: false,
	DefaultSize:   192,
	Build:         buildMamr(mamrDiag),
})

var KMamrInd = register(&Kernel{
	ID: "Q", Name: "MAMR-Ind", Domain: "data mining",
	Streams: 3, Loops: 1, Pattern: "2D+indirect-mod",
	SVEVectorized: false,
	DefaultSize:   128,
	Build:         buildMamr(mamrInd),
})
