package kernels

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// --- S. Floyd-Warshall ---

// KFloyd computes all-pairs shortest paths: for each k,
// D[i][j] = min(D[i][j], D[i][k] + D[k][j]). The ARM compiler did not
// vectorize it (scalar baselines); the UVE version reconfigures four
// streams per k iteration — the paper's mechanism for high-dimensional
// patterns ("forcing the outer loop(s) to reconfigure the access pattern at
// each new iteration", §III-A2). Row k is rewritten with identical values
// (D[k][k]=0), so the in-place streaming stays hazard-free.
var KFloyd = register(&Kernel{
	ID: "S", Name: "Floyd-Warshall", Domain: "dynamic programming",
	Streams: 4, Loops: 1, Pattern: "2D",
	SVEVectorized: false,
	DefaultSize:   64,
	Build:         buildFloyd,
})

func buildFloyd(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(1313)
	dB, dv := allocMatF32(h, n, n, func(i, j int) float64 {
		if i == j {
			return 0
		}
		return 1 + float64(rng.next()%1000)/10
	})

	want := append([]float64(nil), dv...)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				alt := float32(want[i*n+k]) + float32(want[k*n+j])
				if alt < float32(want[i*n+j]) {
					want[i*n+j] = float64(alt)
				}
			}
		}
	}

	const w = arch.W4
	b := program.NewBuilder("floyd-" + v.String())
	if v == UVE {
		// The k loop is expanded by the builder: each iteration's stream
		// bases depend on k, and configuration instructions carry them as
		// immediates (hardware would read them from scalar registers).
		for k := 0; k < n; k++ {
			tag := fmt.Sprintf("k%d", k)
			b.ConfigStream(0, rows2D(dB, w, n, n, n))                               // D in
			b.ConfigStream(1, repRows(dB+uint64(4*k*n), w, n, n))                   // row k, repeated
			b.ConfigStream(2, scalarRows(dB+uint64(4*k), w, n, n, descriptor.Load)) // column k
			b.ConfigStream(3, descriptor.New(dB, w, descriptor.Store).
				Dim(0, int64(n), 1).Dim(0, int64(n), int64(n)).MustBuild()) // D out
			b.Label(tag + "_row")
			b.I(isa.VBcast(w, isa.V(20), isa.V(2)))
			b.Label(tag + "_ch")
			b.I(isa.VFAdd(w, isa.V(21), isa.V(20), isa.V(1), isa.None))
			b.I(isa.VFMin(w, isa.V(3), isa.V(0), isa.V(21), isa.None))
			b.I(isa.SBDimNotEnd(0, 0, tag+"_ch"))
			b.I(isa.SBNotEnd(0, tag+"_row"))
		}
	} else {
		// Scalar baseline.
		b.I(isa.Li(isa.X(4), 0)) // k
		b.Label("k")
		b.I(isa.Mul(isa.X(6), isa.X(4), isa.X(1))) // k*n
		b.I(isa.Li(isa.X(5), 0))                   // i
		b.Label("i")
		b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1))) // i*n
		// f10 = D[i][k]
		b.I(isa.Add(isa.X(12), isa.X(8), isa.X(4)))
		b.I(isa.SllI(isa.X(12), isa.X(12), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(10), isa.X(12), 0))
		b.I(isa.Li(isa.X(9), 0)) // j
		b.Label("j")
		b.I(isa.Add(isa.X(12), isa.X(6), isa.X(9)))
		b.I(isa.SllI(isa.X(12), isa.X(12), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(11), isa.X(12), 0)) // D[k][j]
		b.I(isa.Add(isa.X(13), isa.X(8), isa.X(9)))
		b.I(isa.SllI(isa.X(13), isa.X(13), 2))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(12), isa.X(13), 0)) // D[i][j]
		b.I(isa.FAdd(w, isa.F(13), isa.F(10), isa.F(11)))
		b.I(isa.FMin(w, isa.F(14), isa.F(12), isa.F(13)))
		b.I(isa.FStore(w, isa.X(13), 0, isa.F(14)))
		b.I(isa.AddI(isa.X(9), isa.X(9), 1))
		b.I(isa.Blt(isa.X(9), isa.X(1), "j"))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "i"))
		b.I(isa.AddI(isa.X(4), isa.X(4), 1))
		b.I(isa.Blt(isa.X(4), isa.X(1), "k"))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*n*n), func() error {
		return checkF32(h, "D", dB, want, 1e-4)
	})
	inst.IntArgs[1] = uint64(n)
	inst.IntArgs[20] = dB
	return finalize(h, inst)
}
