package kernels

import (
	"fmt"
	"sort"

	"repro/internal/mem"
	"repro/internal/wire"
)

// CorpusSize is the problem size every corpus program is built at. Small
// enough that assembling and statically verifying all 19 kernels × 3
// variants is a sub-second operation, large enough that every kernel's
// size preconditions hold and its loop structure is fully exercised.
const CorpusSize = 96

// CorpusEntry is one built corpus program: the kernel/variant identity and
// the verified instance (program, argument registers, lint verdicts).
type CorpusEntry struct {
	Kernel  *Kernel
	Variant Variant
	Size    int
	Inst    *Instance
	// Extents are the instance's legal buffer extents (allocation order),
	// captured from the hierarchy the kernel was built against.
	Extents []mem.Extent
}

// Name returns the entry's canonical file stem, <ID>-<VARIANT>-<size>.
func (e *CorpusEntry) Name() string {
	return fmt.Sprintf("%s-%s-%d", e.Kernel.ID, e.Variant, e.Size)
}

// Unit packages the entry as a wire unit: the program plus the build
// context (argument registers in canonical sorted order, buffer extents in
// allocation order) a consumer needs to lint or execute the decoded copy
// exactly as the original.
func (e *CorpusEntry) Unit() *wire.Unit {
	return UnitOf(e.Inst, e.Extents)
}

// UnitOf packages any built instance as a wire unit, with the argument
// registers in canonical sorted order and the extents in allocation order.
// The unit's canonical encoding is the content-addressed identity of the
// built program — the result store hashes exactly these bytes.
func UnitOf(inst *Instance, extents []mem.Extent) *wire.Unit {
	u := &wire.Unit{Prog: inst.Prog}
	iregs := make([]int, 0, len(inst.IntArgs))
	for r := range inst.IntArgs {
		iregs = append(iregs, r)
	}
	sort.Ints(iregs)
	for _, r := range iregs {
		u.IntArgs = append(u.IntArgs, wire.IntArg{Reg: r, Val: inst.IntArgs[r]})
	}
	fregs := make([]int, 0, len(inst.FPArgs))
	for r := range inst.FPArgs {
		fregs = append(fregs, r)
	}
	sort.Ints(fregs)
	for _, r := range fregs {
		a := inst.FPArgs[r]
		u.FPArgs = append(u.FPArgs, wire.FPArg{Reg: r, Width: a.W, Val: a.V})
	}
	for _, x := range extents {
		u.Extents = append(u.Extents, wire.Extent{Base: x.Base, Size: x.Size})
	}
	return u
}

// Corpus builds every kernel × {UVE, SVE, NEON} at CorpusSize and returns
// the entries in Fig 8 order (kernels sorted by ID, variants in declaration
// order). It is the substrate for the on-disk program corpus: the wire
// format's round-trip, canonical-form and fuzz-seed guarantees are all
// property-tested over exactly this set. A build failure for any entry is
// an error — the corpus must always be whole.
func Corpus() ([]CorpusEntry, error) {
	var out []CorpusEntry
	for _, k := range All {
		for _, v := range []Variant{UVE, SVE, NEON} {
			h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
			inst := k.Build(h, v, CorpusSize)
			if inst.Err != nil {
				return nil, fmt.Errorf("corpus: %s/%s n=%d: %w", k.ID, v, CorpusSize, inst.Err)
			}
			out = append(out, CorpusEntry{
				Kernel:  k,
				Variant: v,
				Size:    CorpusSize,
				Inst:    inst,
				Extents: h.Mem.Extents(),
			})
		}
	}
	return out, nil
}
