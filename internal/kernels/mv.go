package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// rows2D is an N-row, rowLen-column row-major load pattern.
func rows2D(base uint64, w arch.ElemWidth, rows, rowLen, stride int) *descriptor.Descriptor {
	return descriptor.New(base, w, descriptor.Load).
		Dim(0, int64(rowLen), 1).
		Dim(0, int64(rows), int64(stride)).
		MustBuild()
}

// cols2D walks an N×N matrix column by column (strided dim 0).
func cols2D(base uint64, w arch.ElemWidth, n int) *descriptor.Descriptor {
	return descriptor.New(base, w, descriptor.Load).
		Dim(0, int64(n), int64(n)).
		Dim(0, int64(n), 1).
		MustBuild()
}

// repRows repeats a length-n vector once per row, rows times. Such small,
// heavily re-used structures are streamed from the L1 (so.cfg.mem1), the
// use-case the paper calls out for L1-level streaming (§VI-B, Fig 11).
func repRows(base uint64, w arch.ElemWidth, rows, n int) *descriptor.Descriptor {
	return descriptor.New(base, w, descriptor.Load).
		Dim(0, int64(n), 1).
		Dim(0, int64(rows), 0).
		AtLevel(arch.LevelL1).
		MustBuild()
}

// scalarRows delivers one element per row (1-element dim-0 runs), so each
// horizontal result pairs with exactly one chunk.
func scalarRows(base uint64, w arch.ElemWidth, rows, stride int, kind descriptor.Kind) *descriptor.Descriptor {
	return descriptor.New(base, w, kind).
		Dim(0, 1, 1).
		Dim(0, int64(rows), int64(stride)).
		MustBuild()
}

// emitDotRowsUVE appends a "per row: out = combine(Σ row·vec, carry-in)"
// loop using four streams at u0: matrix rows (or columns), the repeated
// vector, a 1-element carry-in stream and the 1-element output stream.
// combine receives 1-lane vectors: (sum, carryIn) → written to the output
// stream register.
func emitDotRowsUVE(b *program.Builder, tag string, uMat, uVec, uIn, uOut int,
	combine func(b *program.Builder, sum, carry isa.Reg, out isa.Reg)) {
	const w = arch.W4
	b.Label(tag + "_row")
	b.I(isa.VDupX(w, isa.V(28), isa.X(0)))
	b.Label(tag + "_ch")
	b.I(isa.VFMul(w, isa.V(26), isa.V(uMat), isa.V(uVec), isa.None))
	b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(26), isa.None))
	b.I(isa.SBDimNotEnd(uMat, 0, tag+"_ch"))
	b.I(isa.VFAddV(w, isa.V(27), isa.V(28)))
	combine(b, isa.V(27), isa.V(uIn), isa.V(uOut))
	b.I(isa.SBNotEnd(uMat, tag+"_row"))
}

// emitColUpdateUVE appends the blocked-interchange form of a transposed
// matrix-vector update: for each lane block ib, acc starts from a carry
// block and accumulates (scale·v[j])·M[j][ib] over all rows j, then stores.
// This is the vectorization a hand-coder uses for Aᵀ·y — unit-stride matrix
// chunks instead of strided columns. Streams at uMat: matrix blocks (3-D),
// per-j vector scalars, carry-in blocks, output blocks. scaleV names a
// broadcast-scale vector register, or None for scale 1.
func emitColUpdateUVE(b *program.Builder, tag string, uMat, uVec, uIn, uOut int, scaleV isa.Reg) {
	const w = arch.W4
	b.Label(tag + "_ib")
	b.I(isa.VMove(w, isa.V(28), isa.V(uIn))) // acc = carry block
	b.Label(tag + "_j")
	b.I(isa.VBcast(w, isa.V(27), isa.V(uVec)))
	if scaleV.Class != isa.ClassNone {
		b.I(isa.VFMul(w, isa.V(27), isa.V(27), scaleV, isa.None))
	}
	b.I(isa.VFMul(w, isa.V(26), isa.V(27), isa.V(uMat), isa.None))
	b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(26), isa.None))
	b.I(isa.SBDimNotEnd(uMat, 1, tag+"_j"))
	b.I(isa.VMove(w, isa.V(uOut), isa.V(28)))
	b.I(isa.SBNotEnd(uMat, tag+"_ib"))
}

// colUpdateStreamsUVE configures the four streams emitColUpdateUVE expects:
// matrix blocks M[j][ib·L..], the per-j vector, and carry-in/out blocks.
func colUpdateStreamsUVE(b *program.Builder, uMat, uVec, uIn, uOut int,
	mat, vec, carry, out uint64, n int) {
	const w = arch.W4
	lanes := arch.LanesFor(arch.MaxVecBytes, w)
	if n%lanes != 0 {
		b.Errorf("colUpdate: N=%d must be a multiple of the UVE lane count %d", n, lanes)
	}
	nb := int64(n / lanes)
	n64, l64 := int64(n), int64(lanes)
	b.ConfigStream(uMat, descriptor.New(mat, w, descriptor.Load).
		Dim(0, l64, 1).Dim(0, n64, n64).Dim(0, nb, l64).MustBuild())
	b.ConfigStream(uVec, descriptor.New(vec, w, descriptor.Load).
		Dim(0, 1, 1).Dim(0, n64, 1).Dim(0, nb, 0).MustBuild())
	b.ConfigStream(uIn, descriptor.New(carry, w, descriptor.Load).
		Dim(0, l64, 1).Dim(0, nb, l64).MustBuild())
	b.ConfigStream(uOut, descriptor.New(out, w, descriptor.Store).
		Dim(0, l64, 1).Dim(0, nb, l64).MustBuild())
}

// emitDotRowsBaseline appends the baseline row-dot loop: x{regOut}[i] =
// x{regIn}[i] + scale·Σj M[i·stride+j]·v[j]. scaleV names a vector register
// holding the broadcast scale (or None for scale=1).
func emitDotRowsBaseline(b *program.Builder, v Variant, tag string,
	regMat, regVec, regIn, regOut int, scaleF isa.Reg) {
	const w = arch.W4
	lanes := lanesFor(v, w)
	b.I(isa.Li(isa.X(5), 0)) // i
	b.Label(tag + "_i")
	b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1))) // i*N
	b.I(isa.VDupX(w, isa.V(3), isa.X(0)))      // acc
	b.I(isa.Li(isa.X(9), 0))                   // j
	if v == SVE {
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		b.Label(tag + "_j")
		b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
		b.I(isa.VLoad(w, isa.V(1), isa.X(regMat), isa.X(12), 0, isa.P(1)))
		b.I(isa.VLoad(w, isa.V(2), isa.X(regVec), isa.X(9), 0, isa.P(1)))
		b.I(isa.VFMla(w, isa.V(3), isa.V(1), isa.V(2), isa.P(1)))
		b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		b.I(isa.BFirst(isa.P(1), tag+"_j"))
		b.I(isa.VFAddVF(w, isa.F(20), isa.V(3)))
	} else {
		b.I(isa.Li(isa.X(15), int64(lanes)))
		b.I(isa.Div(isa.X(10), isa.X(1), isa.X(15)))
		b.I(isa.Mul(isa.X(10), isa.X(10), isa.X(15)))
		b.I(isa.Beq(isa.X(10), isa.X(0), tag+"_jt"))
		b.Label(tag + "_j")
		b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
		b.I(isa.VLoad(w, isa.V(1), isa.X(regMat), isa.X(12), 0, isa.None))
		b.I(isa.VLoad(w, isa.V(2), isa.X(regVec), isa.X(9), 0, isa.None))
		b.I(isa.VFMla(w, isa.V(3), isa.V(1), isa.V(2), isa.None))
		b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
		b.I(isa.Blt(isa.X(9), isa.X(10), tag+"_j"))
		b.Label(tag + "_jt")
		b.I(isa.VFAddVF(w, isa.F(20), isa.V(3)))
		// Scalar tail accumulates onto f20.
		b.I(isa.Bge(isa.X(9), isa.X(1), tag+"_jd"))
		b.Label(tag + "_jtl")
		b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
		b.I(isa.SllI(isa.X(13), isa.X(12), 2))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(regMat)))
		b.I(isa.FLoad(w, isa.F(21), isa.X(13), 0))
		b.I(isa.SllI(isa.X(13), isa.X(9), 2))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(regVec)))
		b.I(isa.FLoad(w, isa.F(22), isa.X(13), 0))
		b.I(isa.FMadd(w, isa.F(20), isa.F(21), isa.F(22), isa.F(20)))
		b.I(isa.AddI(isa.X(9), isa.X(9), 1))
		b.I(isa.Blt(isa.X(9), isa.X(1), tag+"_jtl"))
		b.Label(tag + "_jd")
	}
	if scaleF.Class != isa.ClassNone {
		b.I(isa.FMul(w, isa.F(20), isa.F(20), scaleF))
	}
	b.I(isa.SllI(isa.X(13), isa.X(5), 2))
	b.I(isa.Add(isa.X(14), isa.X(13), isa.X(regIn)))
	b.I(isa.FLoad(w, isa.F(23), isa.X(14), 0))
	b.I(isa.FAdd(w, isa.F(24), isa.F(23), isa.F(20)))
	b.I(isa.Add(isa.X(14), isa.X(13), isa.X(regOut)))
	b.I(isa.FStore(w, isa.X(14), 0, isa.F(24)))
	b.I(isa.AddI(isa.X(5), isa.X(5), 1))
	b.I(isa.Blt(isa.X(5), isa.X(1), tag+"_i"))
}

// emitColUpdateBaseline appends the interchange form used by the baselines
// for transposed products: for ib blocks: acc = x[ib..]; for j: acc +=
// (scale·v[j])·M[j][ib]; store. This is how a vectorizing compiler handles
// Aᵀ·y without gathers.
func emitColUpdateBaseline(b *program.Builder, v Variant, tag string,
	regMat, regVec, regX int, scaleF isa.Reg) {
	const w = arch.W4
	lanes := lanesFor(v, w)
	pred := isa.None
	if v == SVE {
		pred = isa.P(1)
	}
	b.I(isa.Li(isa.X(6), 0)) // ib
	if v == SVE {
		b.I(isa.Whilelt(w, isa.P(1), isa.X(6), isa.X(1)))
	}
	b.Label(tag + "_ib")
	b.I(isa.VLoad(w, isa.V(3), isa.X(regX), isa.X(6), 0, pred))
	b.I(isa.Li(isa.X(7), 0))         // j
	b.I(isa.Mv(isa.X(11), isa.X(6))) // midx = ib
	b.Label(tag + "_j")
	b.I(isa.SllI(isa.X(13), isa.X(7), 2))
	b.I(isa.Add(isa.X(13), isa.X(13), isa.X(regVec)))
	b.I(isa.FLoad(w, isa.F(2), isa.X(13), 0))
	if scaleF.Class != isa.ClassNone {
		b.I(isa.FMul(w, isa.F(2), isa.F(2), scaleF))
	}
	b.I(isa.VDup(w, isa.V(1), isa.F(2)))
	b.I(isa.VLoad(w, isa.V(2), isa.X(regMat), isa.X(11), 0, pred))
	b.I(isa.VFMla(w, isa.V(3), isa.V(1), isa.V(2), pred))
	b.I(isa.Add(isa.X(11), isa.X(11), isa.X(1)))
	b.I(isa.AddI(isa.X(7), isa.X(7), 1))
	b.I(isa.Blt(isa.X(7), isa.X(1), tag+"_j"))
	b.I(isa.VStore(w, isa.X(regX), isa.X(6), 0, isa.V(3), pred))
	if v == SVE {
		b.I(isa.IncVL(w, isa.X(6), isa.X(6)))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(6), isa.X(1)))
		b.I(isa.BFirst(isa.P(1), tag+"_ib"))
	} else {
		b.I(isa.AddI(isa.X(6), isa.X(6), int64(lanes)))
		b.I(isa.Blt(isa.X(6), isa.X(1), tag+"_ib"))
	}
}

// --- F. MVT ---

// KMvt is x1 += A·y1; x2 += Aᵀ·y2 (PolyBench mvt).
var KMvt = register(&Kernel{
	ID: "F", Name: "MVT", Domain: "algebra",
	Streams: 8, Loops: 2, Pattern: "2D",
	SVEVectorized: true,
	DefaultSize:   192,
	Build:         buildMvt,
})

func buildMvt(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(606)
	aB, av := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	y1B, y1 := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	y2B, y2 := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	x1B, x1 := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	x2B, x2 := allocF32(h, n, func(int) float64 { return rng.f32(1) })

	want1 := make([]float64, n)
	want2 := make([]float64, n)
	for i := 0; i < n; i++ {
		s1, s2 := 0.0, 0.0
		for j := 0; j < n; j++ {
			s1 += av[i*n+j] * y1[j]
			s2 += av[j*n+i] * y2[j]
		}
		want1[i] = x1[i] + s1
		want2[i] = x2[i] + s2
	}

	const w = arch.W4
	b := program.NewBuilder("mvt-" + v.String())
	if v == UVE {
		b.ConfigStream(0, rows2D(aB, w, n, n, n))
		b.ConfigStream(1, repRows(y1B, w, n, n))
		b.ConfigStream(2, scalarRows(x1B, w, n, 1, descriptor.Load))
		b.ConfigStream(3, scalarRows(x1B, w, n, 1, descriptor.Store))
		emitDotRowsUVE(b, "p1", 0, 1, 2, 3, func(pb *program.Builder, sum, carry, out isa.Reg) {
			pb.I(isa.VFAdd(w, out, sum, carry, isa.None))
		})
		// Second kernel (Aᵀ·y2): blocked interchange over unit-stride
		// matrix chunks.
		colUpdateStreamsUVE(b, 4, 5, 6, 7, aB, y2B, x2B, x2B, n)
		emitColUpdateUVE(b, "p2", 4, 5, 6, 7, isa.None)
	} else {
		emitDotRowsBaseline(b, v, "p1", 20, 21, 23, 23, isa.None)
		emitColUpdateBaseline(b, v, "p2", 20, 22, 24, isa.None)
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*(n*n+4*n)), func() error {
		if err := checkF32(h, "x1", x1B, want1, 1e-3); err != nil {
			return err
		}
		return checkF32(h, "x2", x2B, want2, 1e-3)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[20] = aB
		inst.IntArgs[21] = y1B
		inst.IntArgs[22] = y2B
		inst.IntArgs[23] = x1B
		inst.IntArgs[24] = x2B
	}
	return finalize(h, inst)
}

// --- G. GEMVER ---

// KGemver is the PolyBench gemver sequence: A += u1·v1ᵀ + u2·v2ᵀ;
// x += β·Aᵀ·y; x += z; w += α·A·x.
var KGemver = register(&Kernel{
	ID: "G", Name: "GEMVER", Domain: "algebra",
	Streams: 17, Loops: 4, Pattern: "2D",
	SVEVectorized: true,
	DefaultSize:   160,
	Build:         buildGemver,
})

func buildGemver(h *mem.Hierarchy, v Variant, n int) *Instance {
	const alpha, beta = 1.5, 1.25
	rng := newLCG(707)
	aB, av := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	u1B, u1 := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	u2B, u2 := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	v1B, v1 := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	v2B, v2 := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	yB, yv := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	zB, zv := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	xB, _ := allocF32(h, n, func(int) float64 { return 0 })
	wB, _ := allocF32(h, n, func(int) float64 { return 0 })

	// Reference.
	wantA := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			wantA[i*n+j] = float64(float32(av[i*n+j]) + float32(u1[i])*float32(v1[j]) + float32(u2[i])*float32(v2[j]))
		}
	}
	wantX := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += wantA[j*n+i] * yv[j]
		}
		wantX[i] = beta*s + zv[i]
	}
	wantW := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += wantA[i*n+j] * wantX[j]
		}
		wantW[i] = alpha * s
	}

	const w = arch.W4
	b := program.NewBuilder("gemver-" + v.String())
	if v == UVE {
		// Phase 1: rank-2 update (6 streams).
		b.ConfigStream(0, rows2D(aB, w, n, n, n))
		b.ConfigStream(1, scalarRows(u1B, w, n, 1, descriptor.Load))
		b.ConfigStream(2, scalarRows(u2B, w, n, 1, descriptor.Load))
		b.ConfigStream(3, repRows(v1B, w, n, n))
		b.ConfigStream(4, repRows(v2B, w, n, n))
		b.ConfigStream(5, descriptor.New(aB, w, descriptor.Store).
			Dim(0, int64(n), 1).Dim(0, int64(n), int64(n)).MustBuild())
		b.Label("p1_row")
		b.I(isa.VBcast(w, isa.V(26), isa.V(1)))
		b.I(isa.VBcast(w, isa.V(25), isa.V(2)))
		b.Label("p1_ch")
		b.I(isa.VFMulAdd(w, isa.V(24), isa.V(26), isa.V(3), isa.V(0)))
		b.I(isa.VFMulAdd(w, isa.V(5), isa.V(25), isa.V(4), isa.V(24)))
		b.I(isa.SBDimNotEnd(0, 0, "p1_ch"))
		b.I(isa.SBNotEnd(0, "p1_row"))
		// Phase 2: x = z + β·Aᵀ·y, blocked interchange with z as the carry.
		b.I(isa.VDup(w, isa.V(23), isa.F(2))) // beta
		colUpdateStreamsUVE(b, 6, 7, 8, 9, aB, yB, zB, xB, n)
		emitColUpdateUVE(b, "p2", 6, 7, 8, 9, isa.V(23))
		// Phase 4 (phase 3 x += z was folded into phase 2's carry-in):
		// w = α·A·x with zero carry — use the w array (zero-initialized) as
		// carry-in, matching PolyBench's w += semantics.
		b.I(isa.VDup(w, isa.V(22), isa.F(1))) // alpha
		b.ConfigStream(10, rows2D(aB, w, n, n, n))
		b.ConfigStream(11, repRows(xB, w, n, n))
		b.ConfigStream(12, scalarRows(wB, w, n, 1, descriptor.Load))
		b.ConfigStream(13, scalarRows(wB, w, n, 1, descriptor.Store))
		emitDotRowsUVE(b, "p4", 10, 11, 12, 13, func(pb *program.Builder, sum, carry, out isa.Reg) {
			pb.I(isa.VFMulAdd(w, out, sum, isa.V(22), carry))
		})
	} else {
		// Phase 1.
		lanes := lanesFor(v, w)
		pred := isa.None
		if v == SVE {
			pred = isa.P(1)
		}
		b.I(isa.Li(isa.X(5), 0))
		b.Label("p1_i")
		b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1)))
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(21)))
		b.I(isa.FLoad(w, isa.F(3), isa.X(14), 0))
		b.I(isa.VDup(w, isa.V(5), isa.F(3))) // u1[i]
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(22)))
		b.I(isa.FLoad(w, isa.F(4), isa.X(14), 0))
		b.I(isa.VDup(w, isa.V(6), isa.F(4))) // u2[i]
		b.I(isa.Li(isa.X(9), 0))
		if v == SVE {
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		} else {
			b.I(isa.Li(isa.X(15), int64(lanes)))
			b.I(isa.Div(isa.X(10), isa.X(1), isa.X(15)))
			b.I(isa.Mul(isa.X(10), isa.X(10), isa.X(15)))
		}
		b.Label("p1_j")
		b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
		b.I(isa.VLoad(w, isa.V(1), isa.X(20), isa.X(12), 0, pred))
		b.I(isa.VLoad(w, isa.V(2), isa.X(23), isa.X(9), 0, pred))
		b.I(isa.VLoad(w, isa.V(3), isa.X(24), isa.X(9), 0, pred))
		b.I(isa.VFMla(w, isa.V(1), isa.V(5), isa.V(2), pred))
		b.I(isa.VFMla(w, isa.V(1), isa.V(6), isa.V(3), pred))
		b.I(isa.VStore(w, isa.X(20), isa.X(12), 0, isa.V(1), pred))
		if v == SVE {
			b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
			b.I(isa.BFirst(isa.P(1), "p1_j"))
		} else {
			b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
			b.I(isa.Blt(isa.X(9), isa.X(10), "p1_j"))
			// n is kept a multiple of the NEON width by the harness.
		}
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "p1_i"))
		// Phase 2: x = z; x += β·Aᵀ·y (interchange form).
		copyVec(b, v, w, "p2c", 27, 26) // x ← z
		b.I(isa.FMv(w, isa.F(5), isa.F(2)))
		emitColUpdateBaseline(b, v, "p2", 20, 25, 26, isa.F(5))
		// Phase 4: w += α·A·x.
		emitDotRowsBaseline(b, v, "p4", 20, 26, 28, 28, isa.F(1))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*(n*n+7*n)), func() error {
		if err := checkF32(h, "A", aB, wantA, 1e-4); err != nil {
			return err
		}
		if err := checkF32(h, "x", xB, wantX, 1e-3); err != nil {
			return err
		}
		return checkF32(h, "w", wB, wantW, 1e-3)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[20] = aB
		inst.IntArgs[21] = u1B
		inst.IntArgs[22] = u2B
		inst.IntArgs[23] = v1B
		inst.IntArgs[24] = v2B
		inst.IntArgs[25] = yB
		inst.IntArgs[26] = xB
		inst.IntArgs[27] = zB
		inst.IntArgs[28] = wB
	}
	inst.FPArgs[1] = FPArg{W: w, V: alpha}
	inst.FPArgs[2] = FPArg{W: w, V: beta}
	return finalize(h, inst)
}

// copyVec emits x{dst}[i] = x{src}[i] over n=x1 elements.
func copyVec(b *program.Builder, v Variant, w arch.ElemWidth, tag string, src, dst int) {
	pred := isa.None
	if v == SVE {
		pred = isa.P(1)
	}
	lanes := lanesFor(v, w)
	b.I(isa.Li(isa.X(9), 0))
	if v == SVE {
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
	}
	b.Label(tag + "_l")
	b.I(isa.VLoad(w, isa.V(1), isa.X(src), isa.X(9), 0, pred))
	b.I(isa.VStore(w, isa.X(dst), isa.X(9), 0, isa.V(1), pred))
	if v == SVE {
		b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		b.I(isa.BFirst(isa.P(1), tag+"_l"))
	} else {
		b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
		b.I(isa.Blt(isa.X(9), isa.X(1), tag+"_l"))
	}
}
