package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// --- K. IRSmk ---

// KIrsmk is the ASC Sequoia implicit-radiation-solver kernel: a 27-point
// 3-D stencil with per-point coefficient arrays,
// b[i] = Σ_k a_k[i] · x[i + off_k]. The paper counts 57 streams across the
// kernel; with 32 architectural stream registers the UVE version runs three
// passes of nine terms each (9 coefficient + 9 shifted-x + carry in/out =
// 20 concurrent streams per pass).
var KIrsmk = register(&Kernel{
	ID: "K", Name: "IRSmk", Domain: "stencil",
	Streams: 20, Loops: 1, Pattern: "3D",
	SVEVectorized: true,
	DefaultSize:   24,
	Build:         buildIrsmk,
})

// interior3D walks the interior of an m³ grid shifted by (dx,dy,dz).
func interior3D(base uint64, m, dx, dy, dz int, kind descriptor.Kind) *descriptor.Descriptor {
	origin := base + uint64(4*((1+dz)*m*m+(1+dy)*m+1+dx))
	mi := int64(m - 2)
	return descriptor.New(origin, arch.W4, kind).
		Dim(0, mi, 1).
		Dim(0, mi, int64(m)).
		Dim(0, mi, int64(m*m)).
		MustBuild()
}

func buildIrsmk(h *mem.Hierarchy, v Variant, m int) *Instance {
	rng := newLCG(1616)
	const terms = 27
	grid := m * m * m
	xB, xv := allocF32(h, grid, func(int) float64 { return rng.f32(1) })
	aB := make([]uint64, terms)
	av := make([][]float64, terms)
	for t := 0; t < terms; t++ {
		aB[t], av[t] = allocF32(h, grid, func(int) float64 { return rng.f32(0.2) })
	}
	bB, _ := allocF32(h, grid, func(int) float64 { return 0 })

	offs := make([][3]int, 0, terms)
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				offs = append(offs, [3]int{dx, dy, dz})
			}
		}
	}
	// Reference, accumulated in the same pass structure (9+9+9) the UVE
	// version uses; the baselines compute all 27 terms in one loop with the
	// same left-to-right order, which matches in float32 because each pass
	// sums into the carry sequentially.
	want := make([]float64, grid)
	for z := 1; z < m-1; z++ {
		for y := 1; y < m-1; y++ {
			for x := 1; x < m-1; x++ {
				i := z*m*m + y*m + x
				var acc float32
				for t := 0; t < terms; t++ {
					o := offs[t]
					j := (z+o[2])*m*m + (y+o[1])*m + (x + o[0])
					acc += float32(av[t][i]) * float32(xv[j])
				}
				want[i] = float64(acc)
			}
		}
	}

	const w = arch.W4
	b := program.NewBuilder("irsmk-" + v.String())
	if v == UVE {
		for pass := 0; pass < 3; pass++ {
			tag := []string{"pa", "pb", "pc"}[pass]
			for t := 0; t < 9; t++ {
				term := pass*9 + t
				o := offs[term]
				b.ConfigStream(t, interior3D(aB[term], m, 0, 0, 0, descriptor.Load))
				b.ConfigStream(9+t, interior3D(xB, m, o[0], o[1], o[2], descriptor.Load))
			}
			b.ConfigStream(18, interior3D(bB, m, 0, 0, 0, descriptor.Load))
			b.ConfigStream(19, interior3D(bB, m, 0, 0, 0, descriptor.Store))
			b.Label(tag)
			b.I(isa.VFMul(w, isa.V(28), isa.V(0), isa.V(9), isa.None))
			for t := 1; t < 9; t++ {
				b.I(isa.VFMul(w, isa.V(27), isa.V(t), isa.V(9+t), isa.None))
				b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(27), isa.None))
			}
			b.I(isa.VFAdd(w, isa.V(19), isa.V(28), isa.V(18), isa.None))
			b.I(isa.SBNotEnd(0, tag))
		}
	} else {
		// Baselines: one loop over interior rows, vectorized along x, all
		// 27 terms inline.
		lanes := lanesFor(v, w)
		pred := isa.None
		if v == SVE {
			pred = isa.P(1)
		}
		// x1 = m-2 (inner length); x2 = m; x3 = m-1.
		b.I(isa.Li(isa.X(4), 1)) // z
		b.Label("z")
		b.I(isa.Li(isa.X(5), 1)) // y
		b.Label("y")
		// row base index = z·m² + y·m + 1
		b.I(isa.Mul(isa.X(8), isa.X(4), isa.X(2)))
		b.I(isa.Add(isa.X(8), isa.X(8), isa.X(5)))
		b.I(isa.Mul(isa.X(8), isa.X(8), isa.X(2)))
		b.I(isa.AddI(isa.X(8), isa.X(8), 1))
		b.I(isa.Li(isa.X(9), 0)) // x
		if v == SVE {
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		} else {
			b.I(isa.Li(isa.X(15), int64(lanes)))
			b.I(isa.Div(isa.X(10), isa.X(1), isa.X(15)))
			b.I(isa.Mul(isa.X(10), isa.X(10), isa.X(15)))
		}
		b.Label("x")
		b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
		b.I(isa.VDupX(w, isa.V(3), isa.X(0)))
		for t := 0; t < terms; t++ {
			o := offs[t]
			shift := int64(o[2]*m*m + o[1]*m + o[0])
			b.I(isa.VLoad(w, isa.V(1), isa.X(20), isa.X(12), int64(t)*int64(grid), pred))
			b.I(isa.VLoad(w, isa.V(2), isa.X(21), isa.X(12), shift, pred))
			b.I(isa.VFMla(w, isa.V(3), isa.V(1), isa.V(2), pred))
		}
		b.I(isa.VStore(w, isa.X(22), isa.X(12), 0, isa.V(3), pred))
		if v == SVE {
			b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
			b.I(isa.BFirst(isa.P(1), "x"))
		} else {
			b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
			b.I(isa.Blt(isa.X(9), isa.X(10), "x"))
			// Scalar tail for the row remainder.
			b.I(isa.Bge(isa.X(9), isa.X(1), "xd"))
			b.Label("xt")
			b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
			b.I(isa.SllI(isa.X(13), isa.X(12), 2))
			b.I(isa.FLi(w, isa.F(10), 0))
			for t := 0; t < terms; t++ {
				o := offs[t]
				shift := int64(o[2]*m*m + o[1]*m + o[0])
				b.I(isa.Add(isa.X(14), isa.X(13), isa.X(20)))
				b.I(isa.FLoad(w, isa.F(11), isa.X(14), int64(t)*int64(grid)*4))
				b.I(isa.Add(isa.X(14), isa.X(13), isa.X(21)))
				b.I(isa.FLoad(w, isa.F(12), isa.X(14), shift*4))
				b.I(isa.FMadd(w, isa.F(10), isa.F(11), isa.F(12), isa.F(10)))
			}
			b.I(isa.Add(isa.X(14), isa.X(13), isa.X(22)))
			b.I(isa.FStore(w, isa.X(14), 0, isa.F(10)))
			b.I(isa.AddI(isa.X(9), isa.X(9), 1))
			b.I(isa.Blt(isa.X(9), isa.X(1), "xt"))
			b.Label("xd")
		}
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(3), "y"))
		b.I(isa.AddI(isa.X(4), isa.X(4), 1))
		b.I(isa.Blt(isa.X(4), isa.X(3), "z"))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*grid*(terms+2)), func() error {
		// Validate the interior only; the halo stays zero.
		for z := 1; z < m-1; z++ {
			for y := 1; y < m-1; y++ {
				row := z*m*m + y*m + 1
				if err := checkF32(h, "b", bB+uint64(4*row), want[row:row+m-2], 1e-3); err != nil {
					return err
				}
			}
		}
		return nil
	})
	inst.IntArgs[1] = uint64(m - 2)
	inst.IntArgs[2] = uint64(m)
	inst.IntArgs[3] = uint64(m - 1)
	inst.IntArgs[20] = aB[0] // coefficient arrays are contiguous allocations
	inst.IntArgs[21] = xB
	inst.IntArgs[22] = bB
	return finalize(h, inst)
}
