package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// map1DSpec describes a streaming element-wise kernel over 1-D arrays:
// out[i] = f(in0[i], in1[i], ...). This family covers Memcpy, the STREAM
// sub-kernels, SAXPY and Jacobi-1D (whose "shifted" inputs are just offset
// base addresses).
type map1DSpec struct {
	name string
	w    arch.ElemWidth
	ins  []uint64 // input base addresses
	out  uint64
	n    int
	// setup emits once-per-kernel preamble (e.g. broadcasting an FP
	// argument from f1 into v9).
	setup func(b *program.Builder, w arch.ElemWidth)
	// emit computes the output vector from input vector registers. pred is
	// None for UVE/NEON bodies and the loop predicate for SVE.
	emit func(b *program.Builder, w arch.ElemWidth, pred isa.Reg, in []isa.Reg, out isa.Reg)
	// emitScalar is the scalar body for NEON tails and uses FP registers.
	emitScalar func(b *program.Builder, w arch.ElemWidth, in []isa.Reg, out isa.Reg)
}

// buildMap1D lowers the spec for one ISA variant.
//
// Register convention: x1 = n, x9 = element index, x10 = main-loop bound;
// inputs stream through u0..u(k-1) (UVE) or v10.. (baselines); the result
// is u(k) (UVE) or v20.
func buildMap1D(v Variant, spec *map1DSpec) *program.Builder {
	w := spec.w
	k := len(spec.ins)
	b := program.NewBuilder(spec.name + "-" + v.String())
	switch v {
	case UVE:
		for i, base := range spec.ins {
			d := descriptor.New(base, w, descriptor.Load).Linear(int64(spec.n), 1).MustBuild()
			b.ConfigStream(i, d)
		}
		dout := descriptor.New(spec.out, w, descriptor.Store).Linear(int64(spec.n), 1).MustBuild()
		b.ConfigStream(k, dout)
		if spec.setup != nil {
			spec.setup(b, w)
		}
		in := make([]isa.Reg, k)
		for i := range in {
			in[i] = isa.V(i)
		}
		b.Label("loop")
		spec.emit(b, w, isa.None, in, isa.V(k))
		b.I(isa.SBNotEnd(0, "loop"))
		b.I(isa.Halt())

	case SVE:
		// Fig 1.B shape: whilelt-predicated loop, incvl stepping.
		if spec.setup != nil {
			spec.setup(b, w)
		}
		b.I(isa.Li(isa.X(9), 0))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		in := make([]isa.Reg, k)
		b.Label("loop")
		for i := range spec.ins {
			in[i] = isa.V(10 + i)
			b.I(isa.VLoad(w, in[i], isa.X(2+i), isa.X(9), 0, isa.P(1)))
		}
		spec.emit(b, w, isa.P(1), in, isa.V(20))
		b.I(isa.VStore(w, isa.X(2+k), isa.X(9), 0, isa.V(20), isa.P(1)))
		b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		b.I(isa.BFirst(isa.P(1), "loop"))
		b.I(isa.Halt())

	case NEON:
		// Fixed-width main loop plus scalar tail.
		lanes := lanesFor(NEON, w)
		if spec.setup != nil {
			spec.setup(b, w)
		}
		b.I(isa.Li(isa.X(9), 0))
		b.I(isa.Li(isa.X(10), int64(spec.n/lanes*lanes)))
		in := make([]isa.Reg, k)
		b.I(isa.Beq(isa.X(10), isa.X(0), "tail"))
		b.Label("loop")
		for i := range spec.ins {
			in[i] = isa.V(10 + i)
			b.I(isa.VLoad(w, in[i], isa.X(2+i), isa.X(9), 0, isa.None))
		}
		spec.emit(b, w, isa.None, in, isa.V(20))
		b.I(isa.VStore(w, isa.X(2+k), isa.X(9), 0, isa.V(20), isa.None))
		b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
		b.I(isa.Blt(isa.X(9), isa.X(10), "loop"))
		b.Label("tail")
		b.I(isa.Bge(isa.X(9), isa.X(1), "done"))
		b.I(isa.Li(isa.X(11), int64(w)))
		b.I(isa.Mul(isa.X(12), isa.X(9), isa.X(11))) // byte offset
		b.Label("tloop")
		fin := make([]isa.Reg, k)
		for i := range spec.ins {
			fin[i] = isa.F(10 + i)
			b.I(isa.Add(isa.X(13), isa.X(2+i), isa.X(12)))
			b.I(isa.FLoad(w, fin[i], isa.X(13), 0))
		}
		spec.emitScalar(b, w, fin, isa.F(20))
		b.I(isa.Add(isa.X(13), isa.X(2+k), isa.X(12)))
		b.I(isa.FStore(w, isa.X(13), 0, isa.F(20)))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(11)))
		b.I(isa.AddI(isa.X(9), isa.X(9), 1))
		b.I(isa.Blt(isa.X(9), isa.X(1), "tloop")).
			Label("done").
			I(isa.Halt())
	}
	return b
}

// instanceMap1D builds the Instance with argument registers for a map1D
// program.
func instanceMap1D(h *mem.Hierarchy, v Variant, spec *map1DSpec, bytes int64, check func() error) *Instance {
	inst := instance(buildMap1D(v, spec), bytes, check)
	if v != UVE {
		inst.IntArgs[1] = uint64(spec.n)
		for i, base := range spec.ins {
			inst.IntArgs[2+i] = base
		}
		inst.IntArgs[2+len(spec.ins)] = spec.out
	}
	return finalize(h, inst)
}
