package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// --- I. Jacobi-1D ---

// KJacobi1D runs the PolyBench jacobi-1d pair of sweeps:
// B[i] = (A[i-1]+A[i]+A[i+1])/3, then A[i] = (B[i-1]+B[i]+B[i+1])/3.
var KJacobi1D = register(&Kernel{
	ID: "I", Name: "Jacobi-1D", Domain: "stencil",
	Streams: 8, Loops: 2, Pattern: "1D",
	SVEVectorized: true,
	DefaultSize:   1 << 15,
	Build:         buildJacobi1D,
})

func buildJacobi1D(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(909)
	aB, av := allocF32(h, n, func(int) float64 { return rng.f32(10) })
	bB, bv := allocF32(h, n, func(int) float64 { return rng.f32(10) })

	third := float64(float32(1.0 / 3.0))
	wantB := append([]float64(nil), bv...)
	for i := 1; i < n-1; i++ {
		wantB[i] = float64((float32(av[i-1]) + float32(av[i]) + float32(av[i+1])) * float32(third))
	}
	wantA := append([]float64(nil), av...)
	for i := 1; i < n-1; i++ {
		wantA[i] = float64((float32(wantB[i-1]) + float32(wantB[i]) + float32(wantB[i+1])) * float32(third))
	}

	const w = arch.W4
	inner := n - 2
	emit := func(b *program.Builder, ww arch.ElemWidth, pred isa.Reg, in []isa.Reg, out isa.Reg) {
		b.I(isa.VFAdd(ww, isa.V(21), in[0], in[1], pred))
		b.I(isa.VFAdd(ww, isa.V(22), isa.V(21), in[2], pred))
		b.I(isa.VFMul(ww, out, isa.V(22), isa.V(9), pred))
	}
	emitScalar := func(b *program.Builder, ww arch.ElemWidth, in []isa.Reg, out isa.Reg) {
		b.I(isa.FAdd(ww, isa.F(21), in[0], in[1]))
		b.I(isa.FAdd(ww, isa.F(22), isa.F(21), in[2]))
		b.I(isa.FMul(ww, out, isa.F(22), isa.F(1)))
	}
	var bld *program.Builder
	if v == UVE {
		b := program.NewBuilder("jacobi1d-UVE")
		b.I(isa.VDup(w, isa.V(9), isa.F(1)))
		cfg := func(u int, src, dst uint64) {
			b.ConfigStream(u, ld1(src, w, inner))
			b.ConfigStream(u+1, ld1(src+4, w, inner))
			b.ConfigStream(u+2, ld1(src+8, w, inner))
			b.ConfigStream(u+3, st1(dst+4, w, inner))
		}
		cfg(0, aB, bB)
		b.Label("s1")
		emit(b, w, isa.None, []isa.Reg{isa.V(0), isa.V(1), isa.V(2)}, isa.V(3))
		b.I(isa.SBNotEnd(0, "s1"))
		cfg(4, bB, aB)
		b.Label("s2")
		emit(b, w, isa.None, []isa.Reg{isa.V(4), isa.V(5), isa.V(6)}, isa.V(7))
		b.I(isa.SBNotEnd(4, "s2"))
		b.I(isa.Halt())
		bld = b
	} else {
		b := program.NewBuilder("jacobi1d-" + v.String())
		b.I(isa.VDup(w, isa.V(9), isa.F(1)))
		// Sweep 1: args x20,x21,x22 = A-1,A,A+1 bases; out x23 = B+4.
		emitVecLoop(b, v, w, "s1", []int{20, 21, 22}, 23,
			func(pb *program.Builder, pred isa.Reg, in []isa.Reg, o isa.Reg) { emit(pb, w, pred, in, o) },
			func(pb *program.Builder, in []isa.Reg, o isa.Reg) { emitScalar(pb, w, in, o) })
		emitVecLoop(b, v, w, "s2", []int{24, 25, 26}, 27,
			func(pb *program.Builder, pred isa.Reg, in []isa.Reg, o isa.Reg) { emit(pb, w, pred, in, o) },
			func(pb *program.Builder, in []isa.Reg, o isa.Reg) { emitScalar(pb, w, in, o) })
		b.I(isa.Halt())
		bld = b
	}
	inst := instance(bld, int64(8*n), func() error {
		if err := checkF32(h, "B", bB, wantB, 1e-5); err != nil {
			return err
		}
		return checkF32(h, "A", aB, wantA, 1e-5)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(inner)
		inst.IntArgs[20] = aB
		inst.IntArgs[21] = aB + 4
		inst.IntArgs[22] = aB + 8
		inst.IntArgs[23] = bB + 4
		inst.IntArgs[24] = bB
		inst.IntArgs[25] = bB + 4
		inst.IntArgs[26] = bB + 8
		inst.IntArgs[27] = aB + 4
	}
	inst.FPArgs[1] = FPArg{W: w, V: third}
	return finalize(h, inst)
}

// --- J. Jacobi-2D ---

// KJacobi2D runs the PolyBench jacobi-2d pair of 5-point sweeps.
var KJacobi2D = register(&Kernel{
	ID: "J", Name: "Jacobi-2D", Domain: "stencil",
	Streams: 12, Loops: 2, Pattern: "2D",
	SVEVectorized: true,
	DefaultSize:   128,
	Build:         buildJacobi2D,
})

// interior2D is the (n-2)×(n-2) interior of an n×n matrix, shifted by
// (di, dj) elements.
func interior2D(base uint64, w arch.ElemWidth, n, di, dj int, kind descriptor.Kind) *descriptor.Descriptor {
	origin := base + uint64(4*((1+di)*n+1+dj))
	return descriptor.New(origin, w, kind).
		Dim(0, int64(n-2), 1).
		Dim(0, int64(n-2), int64(n)).
		MustBuild()
}

func buildJacobi2D(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(1010)
	aB, av := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(10) })
	bB, bv := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(10) })

	const c5 = 0.2
	sweep := func(dst, src []float64) {
		for i := 1; i < n-1; i++ {
			for j := 1; j < n-1; j++ {
				dst[i*n+j] = float64(float32(c5) * (float32(src[i*n+j]) + float32(src[i*n+j-1]) +
					float32(src[i*n+j+1]) + float32(src[(i-1)*n+j]) + float32(src[(i+1)*n+j])))
			}
		}
	}
	wantB := append([]float64(nil), bv...)
	sweep(wantB, av)
	wantA := append([]float64(nil), av...)
	sweep(wantA, wantB)

	const w = arch.W4
	b := program.NewBuilder("jacobi2d-" + v.String())
	// The constant lives above the stream-register range (streams use
	// u0..u11 across the two sweeps).
	b.I(isa.VDup(w, isa.V(19), isa.F(1)))
	if v == UVE {
		cfg := func(u int, src, dst uint64) {
			b.ConfigStream(u, interior2D(src, w, n, 0, 0, descriptor.Load))
			b.ConfigStream(u+1, interior2D(src, w, n, 0, -1, descriptor.Load))
			b.ConfigStream(u+2, interior2D(src, w, n, 0, 1, descriptor.Load))
			b.ConfigStream(u+3, interior2D(src, w, n, -1, 0, descriptor.Load))
			b.ConfigStream(u+4, interior2D(src, w, n, 1, 0, descriptor.Load))
			b.ConfigStream(u+5, interior2D(dst, w, n, 0, 0, descriptor.Store))
		}
		body := func(u int) {
			b.I(isa.VFAdd(w, isa.V(20), isa.V(u), isa.V(u+1), isa.None))
			b.I(isa.VFAdd(w, isa.V(21), isa.V(u+2), isa.V(u+3), isa.None))
			b.I(isa.VFAdd(w, isa.V(22), isa.V(20), isa.V(21), isa.None))
			b.I(isa.VFAdd(w, isa.V(23), isa.V(22), isa.V(u+4), isa.None))
			b.I(isa.VFMul(w, isa.V(u+5), isa.V(23), isa.V(19), isa.None))
		}
		cfg(0, aB, bB)
		b.Label("s1")
		body(0)
		b.I(isa.SBNotEnd(0, "s1"))
		cfg(6, bB, aB)
		b.Label("s2")
		body(6)
		b.I(isa.SBNotEnd(6, "s2"))
	} else {
		// Baselines: outer i loop, inner vectorized j over the row interior
		// using immediate-offset addressing for the four neighbors.
		lanes := lanesFor(v, w)
		pred := isa.None
		if v == SVE {
			pred = isa.P(1)
		}
		phase := func(tag string, src, dst int) {
			b.I(isa.Li(isa.X(5), 1)) // i
			b.Label(tag + "_i")
			b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1)))
			b.I(isa.AddI(isa.X(8), isa.X(8), 1)) // i*n+1
			b.I(isa.Li(isa.X(9), 0))             // j-1 within interior
			if v == SVE {
				b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(2)))
			} else {
				b.I(isa.Li(isa.X(15), int64(lanes)))
				b.I(isa.Div(isa.X(10), isa.X(2), isa.X(15)))
				b.I(isa.Mul(isa.X(10), isa.X(10), isa.X(15)))
				b.I(isa.Beq(isa.X(10), isa.X(0), tag+"_jt"))
			}
			b.Label(tag + "_j")
			b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
			b.I(isa.VLoad(w, isa.V(1), isa.X(src), isa.X(12), 0, pred))
			b.I(isa.VLoad(w, isa.V(2), isa.X(src), isa.X(12), -1, pred))
			b.I(isa.VLoad(w, isa.V(3), isa.X(src), isa.X(12), 1, pred))
			b.I(isa.VLoad(w, isa.V(4), isa.X(src), isa.X(12), -int64(n), pred))
			b.I(isa.VLoad(w, isa.V(5), isa.X(src), isa.X(12), int64(n), pred))
			b.I(isa.VFAdd(w, isa.V(6), isa.V(1), isa.V(2), pred))
			b.I(isa.VFAdd(w, isa.V(7), isa.V(3), isa.V(4), pred))
			b.I(isa.VFAdd(w, isa.V(6), isa.V(6), isa.V(7), pred))
			b.I(isa.VFAdd(w, isa.V(6), isa.V(6), isa.V(5), pred))
			b.I(isa.VFMul(w, isa.V(6), isa.V(6), isa.V(19), pred))
			b.I(isa.VStore(w, isa.X(dst), isa.X(12), 0, isa.V(6), pred))
			if v == SVE {
				b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
				b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(2)))
				b.I(isa.BFirst(isa.P(1), tag+"_j"))
			} else {
				b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
				b.I(isa.Blt(isa.X(9), isa.X(10), tag+"_j"))
				b.Label(tag + "_jt")
				b.I(isa.Bge(isa.X(9), isa.X(2), tag+"_jd"))
				b.Label(tag + "_jtl")
				b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
				b.I(isa.SllI(isa.X(13), isa.X(12), 2))
				b.I(isa.Add(isa.X(13), isa.X(13), isa.X(src)))
				b.I(isa.FLoad(w, isa.F(2), isa.X(13), 0))
				b.I(isa.FLoad(w, isa.F(3), isa.X(13), -4))
				b.I(isa.FLoad(w, isa.F(4), isa.X(13), 4))
				b.I(isa.FLoad(w, isa.F(5), isa.X(13), -4*int64(n)))
				b.I(isa.FLoad(w, isa.F(6), isa.X(13), 4*int64(n)))
				b.I(isa.FAdd(w, isa.F(7), isa.F(2), isa.F(3)))
				b.I(isa.FAdd(w, isa.F(8), isa.F(4), isa.F(5)))
				b.I(isa.FAdd(w, isa.F(7), isa.F(7), isa.F(8)))
				b.I(isa.FAdd(w, isa.F(7), isa.F(7), isa.F(6)))
				b.I(isa.FMul(w, isa.F(7), isa.F(7), isa.F(1)))
				b.I(isa.SllI(isa.X(13), isa.X(12), 2))
				b.I(isa.Add(isa.X(13), isa.X(13), isa.X(dst)))
				b.I(isa.FStore(w, isa.X(13), 0, isa.F(7)))
				b.I(isa.AddI(isa.X(9), isa.X(9), 1))
				b.I(isa.Blt(isa.X(9), isa.X(2), tag+"_jtl"))
				b.Label(tag + "_jd")
			}
			b.I(isa.AddI(isa.X(5), isa.X(5), 1))
			b.I(isa.Blt(isa.X(5), isa.X(3), tag+"_i"))
		}
		phase("s1", 20, 21)
		phase("s2", 21, 20)
	}
	b.I(isa.Halt())

	inst := instance(b, int64(8*n*n), func() error {
		if err := checkF32(h, "B", bB, wantB, 1e-4); err != nil {
			return err
		}
		return checkF32(h, "A", aB, wantA, 1e-4)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[2] = uint64(n - 2)
		inst.IntArgs[3] = uint64(n - 1)
		inst.IntArgs[20] = aB
		inst.IntArgs[21] = bB
	}
	inst.FPArgs[1] = FPArg{W: w, V: c5}
	return finalize(h, inst)
}

// reference computation for Seidel: EXACTLY the evaluation order the
// kernels use (top/bottom column sums, then the middle row).
func refSeidel(a []float64, n int) []float64 {
	out := append([]float64(nil), a...)
	inv9 := float32(1.0 / 9.0)
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			cs := func(c int) float32 {
				return float32(out[(i-1)*n+c]) + float32(out[(i+1)*n+c])
			}
			tb := cs(j-1) + cs(j) + cs(j+1)
			mid := float32(out[i*n+j-1]) + float32(out[i*n+j]) + float32(out[i*n+j+1])
			out[i*n+j] = float64((tb + mid) * inv9)
		}
	}
	return out
}

// --- R. Seidel-2D ---

// KSeidel is the in-place Gauss-Seidel 9-point sweep. Its loop-carried
// dependences defeat vectorization (the paper's ARM compiler emitted scalar
// code, and UVE processes it scalar too), but UVE still streams the
// not-yet-written south row and the output, removing indexing overhead.
var KSeidel = register(&Kernel{
	ID: "R", Name: "Seidel-2D", Domain: "stencil",
	Streams: 10, Loops: 1, Pattern: "2D",
	SVEVectorized: false,
	DefaultSize:   64,
	Build:         buildSeidel,
})

func buildSeidel(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(1111)
	aB, av := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(10) })
	want := refSeidel(av, n)

	const w = arch.W4
	b := program.NewBuilder("seidel-" + v.String())
	if v == UVE {
		// Streams: south-east elements A[i+1][j+1] (read exactly once, not
		// yet written this sweep) as 1-element chunks, and the output.
		dSE := descriptor.New(aB+uint64(4*(2*n+2)), w, descriptor.Load).
			Dim(0, 1, 1).
			Dim(0, int64(n-2), 1).
			Dim(0, int64(n-2), int64(n)).
			MustBuild()
		dOut := descriptor.New(aB+uint64(4*(n+1)), w, descriptor.Store).
			Dim(0, 1, 1).
			Dim(0, int64(n-2), 1).
			Dim(0, int64(n-2), int64(n)).
			MustBuild()
		b.I(isa.Li(isa.X(20), int64(aB)))
		b.ConfigStream(0, dSE)
		b.ConfigStream(1, dOut)
		b.I(isa.Li(isa.X(5), 1)) // i
		b.Label("i")
		// Row prologue: column sums tb(j=0), tb(j=1); middle carries.
		b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1)))
		b.I(isa.SllI(isa.X(8), isa.X(8), 2))
		b.I(isa.Add(isa.X(8), isa.X(8), isa.X(20))) // &A[i][0]
		colsum := func(dst isa.Reg, off int64) {
			b.I(isa.FLoad(w, isa.F(20), isa.X(8), off-4*int64(n)))
			b.I(isa.FLoad(w, isa.F(21), isa.X(8), off+4*int64(n)))
			b.I(isa.FAdd(w, dst, isa.F(20), isa.F(21)))
		}
		colsum(isa.F(10), 0)                      // tb0
		colsum(isa.F(11), 4)                      // tb1
		b.I(isa.FLoad(w, isa.F(12), isa.X(8), 0)) // w (updated A[i][0] = boundary)
		b.I(isa.FLoad(w, isa.F(13), isa.X(8), 4)) // c = A[i][1] old
		b.I(isa.Li(isa.X(9), 1))                  // j
		b.Label("j")
		// tb2 = A[i-1][j+1] (load) + A[i+1][j+1] (stream).
		b.I(isa.SllI(isa.X(12), isa.X(9), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(8))) // &A[i][j]
		b.I(isa.FLoad(w, isa.F(20), isa.X(12), 4-4*int64(n)))
		b.I(isa.VFAddVF(w, isa.F(21), isa.V(0))) // stream element
		b.I(isa.FAdd(w, isa.F(14), isa.F(20), isa.F(21)))
		b.I(isa.FLoad(w, isa.F(15), isa.X(12), 4)) // e = A[i][j+1] old
		b.I(isa.FAdd(w, isa.F(22), isa.F(10), isa.F(11)))
		b.I(isa.FAdd(w, isa.F(22), isa.F(22), isa.F(14)))
		b.I(isa.FAdd(w, isa.F(23), isa.F(12), isa.F(13)))
		b.I(isa.FAdd(w, isa.F(23), isa.F(23), isa.F(15)))
		b.I(isa.FAdd(w, isa.F(24), isa.F(22), isa.F(23)))
		b.I(isa.FMul(w, isa.F(25), isa.F(24), isa.F(1)))
		b.I(isa.VDup(w, isa.V(1), isa.F(25))) // store via the output stream
		// Rotate carries.
		b.I(isa.FMv(w, isa.F(10), isa.F(11)))
		b.I(isa.FMv(w, isa.F(11), isa.F(14)))
		b.I(isa.FMv(w, isa.F(12), isa.F(25))) // w ← updated value
		b.I(isa.FMv(w, isa.F(13), isa.F(15))) // c ← old east
		b.I(isa.AddI(isa.X(9), isa.X(9), 1))
		b.I(isa.SBDimNotEnd(0, 1, "j"))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.SBNotEnd(0, "i"))
	} else {
		// Scalar baseline (the paper's compiler did not vectorize Seidel).
		b.I(isa.Li(isa.X(5), 1))
		b.Label("i")
		b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1)))
		b.I(isa.SllI(isa.X(8), isa.X(8), 2))
		b.I(isa.Add(isa.X(8), isa.X(8), isa.X(20)))
		b.I(isa.Li(isa.X(9), 1))
		b.Label("j")
		b.I(isa.SllI(isa.X(12), isa.X(9), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(8)))
		nn := 4 * int64(n)
		// Column sums of the top and bottom rows, then the middle row, in
		// the same order as the UVE code and the reference.
		b.I(isa.FLoad(w, isa.F(2), isa.X(12), -4-nn))
		b.I(isa.FLoad(w, isa.F(3), isa.X(12), -4+nn))
		b.I(isa.FAdd(w, isa.F(10), isa.F(2), isa.F(3)))
		b.I(isa.FLoad(w, isa.F(2), isa.X(12), -nn))
		b.I(isa.FLoad(w, isa.F(3), isa.X(12), nn))
		b.I(isa.FAdd(w, isa.F(11), isa.F(2), isa.F(3)))
		b.I(isa.FLoad(w, isa.F(2), isa.X(12), 4-nn))
		b.I(isa.FLoad(w, isa.F(3), isa.X(12), 4+nn))
		b.I(isa.FAdd(w, isa.F(14), isa.F(2), isa.F(3)))
		b.I(isa.FAdd(w, isa.F(22), isa.F(10), isa.F(11)))
		b.I(isa.FAdd(w, isa.F(22), isa.F(22), isa.F(14)))
		b.I(isa.FLoad(w, isa.F(12), isa.X(12), -4))
		b.I(isa.FLoad(w, isa.F(13), isa.X(12), 0))
		b.I(isa.FLoad(w, isa.F(15), isa.X(12), 4))
		b.I(isa.FAdd(w, isa.F(23), isa.F(12), isa.F(13)))
		b.I(isa.FAdd(w, isa.F(23), isa.F(23), isa.F(15)))
		b.I(isa.FAdd(w, isa.F(24), isa.F(22), isa.F(23)))
		b.I(isa.FMul(w, isa.F(25), isa.F(24), isa.F(1)))
		b.I(isa.FStore(w, isa.X(12), 0, isa.F(25)))
		b.I(isa.AddI(isa.X(9), isa.X(9), 1))
		b.I(isa.Blt(isa.X(9), isa.X(2), "j"))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(2), "i"))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*n*n), func() error {
		return checkF32(h, "A", aB, want, 1e-4)
	})
	inst.IntArgs[1] = uint64(n)
	inst.IntArgs[2] = uint64(n - 1)
	inst.IntArgs[20] = aB
	inst.FPArgs[1] = FPArg{W: w, V: float64(float32(1.0 / 9.0))}
	return finalize(h, inst)
}
