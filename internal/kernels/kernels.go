// Package kernels implements the paper's 19 evaluation benchmarks (Fig 8
// left table) three times each: UVE (hand-coded streams, as the authors
// did), SVE-like (predicated vector-length-agnostic code, Fig 1.B shape)
// and NEON-like (fixed 128-bit vectors with scalar tails). Kernels the ARM
// SVE compiler failed to vectorize in the paper (Seidel-2D, the MAMR
// variants, Covariance, Floyd-Warshall) fall back to scalar code in both
// baselines, as the paper reports.
//
// Every kernel also carries a pure-Go reference; Instance.Check validates
// the simulated memory image against it after a run.
package kernels

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/lint"
	"repro/internal/mem"
	"repro/internal/program"
)

// Variant selects the ISA implementation of a kernel.
type Variant int

const (
	UVE Variant = iota
	SVE
	NEON
)

func (v Variant) String() string {
	switch v {
	case UVE:
		return "UVE"
	case SVE:
		return "SVE"
	case NEON:
		return "NEON"
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// MarshalText renders the variant by name, so variant-keyed maps and
// fields serialize readably in the -json experiment reports.
func (v Variant) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses a variant name (the inverse of MarshalText).
func (v *Variant) UnmarshalText(b []byte) error {
	switch string(b) {
	case "UVE":
		*v = UVE
	case "SVE":
		*v = SVE
	case "NEON":
		*v = NEON
	default:
		return fmt.Errorf("unknown variant %q", b)
	}
	return nil
}

// VecBytes returns the vector register width the variant runs with: 512-bit
// for UVE and SVE (the paper's configuration), 128-bit for NEON.
func (v Variant) VecBytes() int {
	if v == NEON {
		return 16
	}
	return arch.MaxVecBytes
}

// FPArg is one floating-point kernel argument.
type FPArg struct {
	W arch.ElemWidth
	V float64
}

// Instance is a built, runnable kernel: program, initialized memory (inside
// the hierarchy it was built against), argument registers and a validator.
// Build never panics on a bad instance: assembly or verification failures
// land in Err (with the full diagnostic list in Diags) and Prog is nil.
type Instance struct {
	Prog      *program.Program
	IntArgs   map[int]uint64
	FPArgs    map[int]FPArg
	Check     func() error
	DataBytes int64

	// Err is the combined build/verify failure, nil for a clean instance.
	Err error
	// Diags holds the static verifier's findings, including warnings that
	// did not fail the build.
	Diags []lint.Diagnostic
	// Deps holds the dependence analyzer's classified stream pairs.
	Deps []lint.DepPair

	builder *program.Builder
	// lintOpts records the verification options finalize ran with, so the
	// same analysis can be replayed over a re-decoded copy of the program
	// (Relint) and compared verdict-for-verdict.
	lintOpts *lint.Options
}

// Relint re-runs the static verifier over p with exactly the options this
// instance's own program was verified with. The wire-format round-trip
// gate uses it: a decoded program must earn verdicts identical to the
// Builder-built original's.
func (inst *Instance) Relint(p *program.Program) ([]lint.Diagnostic, []lint.DepPair) {
	return lint.Analyze(p, inst.lintOpts)
}

// Kernel describes one benchmark.
type Kernel struct {
	ID      string // Fig 8 row letter
	Name    string
	Domain  string
	Streams int    // concurrent UVE streams (Fig 8 table)
	Loops   int    // #kernels (disjoint loop nests)
	Pattern string // Fig 8 "memory access pattern" column
	// SVEVectorized is false for kernels the paper's ARM compiler did not
	// vectorize; their SVE and NEON baselines run scalar code.
	SVEVectorized bool
	// DefaultSize is the problem-size parameter used by the figure harness.
	DefaultSize int
	// Build constructs the kernel against h for the given variant and
	// problem size.
	Build func(h *mem.Hierarchy, v Variant, size int) *Instance
}

// All lists the benchmarks in Fig 8 order (A..S).
var All []*Kernel

func init() {
	// Registration order follows source-file order; present Fig 8 order.
	sort.Slice(All, func(i, j int) bool { return All[i].ID < All[j].ID })
}

func register(k *Kernel) *Kernel {
	All = append(All, k)
	return k
}

// ByID returns the kernel with the given Fig 8 letter.
func ByID(id string) *Kernel {
	for _, k := range All {
		if k.ID == id {
			return k
		}
	}
	return nil
}

// --- shared data helpers ---

// lcg is a small deterministic generator for input data.
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2654435761 + 1} }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 16
}

// f32 returns a deterministic float in (-range, +range).
func (l *lcg) f32(rng float64) float64 {
	v := float64(l.next()%20011)/20011*2 - 1
	return float64(float32(v * rng))
}

// allocF32 allocates and fills a float32 array, returning its base and a Go
// mirror of the initial contents.
func allocF32(h *mem.Hierarchy, n int, fill func(i int) float64) (uint64, []float64) {
	base := h.Mem.Alloc(4*n, arch.LineSize)
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		v := float64(float32(fill(i)))
		vals[i] = v
		h.Mem.WriteFloat(base+uint64(4*i), arch.W4, v)
	}
	return base, vals
}

// allocU64 allocates and fills a uint64 array (index vectors).
func allocU64(h *mem.Hierarchy, n int, fill func(i int) uint64) (uint64, []uint64) {
	base := h.Mem.Alloc(8*n, arch.LineSize)
	vals := make([]uint64, n)
	for i := 0; i < n; i++ {
		vals[i] = fill(i)
		h.Mem.Write(base+uint64(8*i), arch.W8, vals[i])
	}
	return base, vals
}

// checkF32 compares a float32 array in simulated memory against want with a
// relative tolerance (reduction orders differ across vector widths).
func checkF32(h *mem.Hierarchy, name string, base uint64, want []float64, tol float64) error {
	for i, w := range want {
		got := h.Mem.ReadFloat(base+uint64(4*i), arch.W4)
		if !closeEnough(got, w, tol) {
			return fmt.Errorf("%s[%d] = %v, want %v", name, i, got, w)
		}
	}
	return nil
}

func closeEnough(got, want, tol float64) bool {
	if got == want {
		return true
	}
	d := math.Abs(got - want)
	m := math.Max(math.Abs(got), math.Abs(want))
	return d <= tol*math.Max(m, 1)
}

// instance assembles the common Instance fields around a still-unresolved
// builder. Kernel Build functions fill IntArgs/FPArgs afterwards and pass
// the result through finalize, which assembles and verifies the program.
func instance(b *program.Builder, bytes int64, check func() error) *Instance {
	return &Instance{
		IntArgs:   map[int]uint64{},
		FPArgs:    map[int]FPArg{},
		Check:     check,
		DataBytes: bytes,
		builder:   b,
	}
}

// finalize assembles the instance's program and runs the static verifier
// over it, with the argument registers as the entry-defined set and the
// hierarchy's allocations as the legal buffer extents. It runs last in every
// kernel Build — after IntArgs/FPArgs are known — and never panics: failures
// are reported through Err/Diags.
func finalize(h *mem.Hierarchy, inst *Instance) *Instance {
	opts := &lint.Options{
		EntryIntVals:      inst.IntArgs,
		MaxFootprintElems: MaxFootprintElems,
		Prove:             ProveDeps,
	}
	for r := range inst.IntArgs {
		opts.EntryInt = append(opts.EntryInt, r)
	}
	for r := range inst.FPArgs {
		opts.EntryFP = append(opts.EntryFP, r)
	}
	// The entry sets are semantically unordered, but keeping them sorted
	// means every consumer (and any rendering of the options) is
	// independent of map iteration order.
	sort.Ints(opts.EntryInt)
	sort.Ints(opts.EntryFP)
	for _, e := range h.Mem.Extents() {
		opts.Extents = append(opts.Extents, lint.Extent{Base: e.Base, Size: e.Size})
	}
	inst.lintOpts = opts
	p, err := inst.builder.BuildVerified(func(p *program.Program) error {
		inst.Diags, inst.Deps = lint.Analyze(p, opts)
		return lint.ToError(inst.Diags)
	})
	inst.Prog, inst.Err = p, err
	return inst
}

// MaxFootprintElems caps the verifier's per-stream address enumeration for
// every kernel build (0 uses lint.DefaultMaxFootprintElems). cmd/uvelint's
// -max-footprint flag sets it.
var MaxFootprintElems int64

// ProveDeps enables the abstract-interpretation prover on every kernel
// build, so register-addressed scalar stores get value-range bounds and the
// dependence pass can upgrade unknown verdicts. cmd/uvelint's -prove flag
// (and tests that want the pre-prover behaviour) toggle it.
var ProveDeps = true

// lanesFor returns the vector lane count of a variant for width w.
func lanesFor(v Variant, w arch.ElemWidth) int { return arch.LanesFor(v.VecBytes(), w) }
