package kernels

import (
	"math"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// --- L. HACCmk ---

// KHaccmk is the HACC n-body force kernel (CORAL): for every particle i,
// accumulate the softened gravitational pull of all particles,
// f = Δ / (r² + ε)^(3/2), into (fx,fy,fz).
var KHaccmk = register(&Kernel{
	ID: "L", Name: "HACCmk", Domain: "n-body",
	Streams: 3, Loops: 1, Pattern: "1D",
	SVEVectorized: true,
	DefaultSize:   256,
	Build:         buildHaccmk,
})

func buildHaccmk(h *mem.Hierarchy, v Variant, n int) *Instance {
	const eps = 0.01
	rng := newLCG(1414)
	xB, xs := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	yB, ys := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	zB, zs := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	fxB, _ := allocF32(h, n, func(int) float64 { return 0 })
	fyB, _ := allocF32(h, n, func(int) float64 { return 0 })
	fzB, _ := allocF32(h, n, func(int) float64 { return 0 })

	wantFx := make([]float64, n)
	wantFy := make([]float64, n)
	wantFz := make([]float64, n)
	for i := 0; i < n; i++ {
		var fx, fy, fz float64
		for j := 0; j < n; j++ {
			dx := xs[j] - xs[i]
			dy := ys[j] - ys[i]
			dz := zs[j] - zs[i]
			r2 := dx*dx + dy*dy + dz*dz + eps
			s := 1 / (r2 * math.Sqrt(r2))
			fx += dx * s
			fy += dy * s
			fz += dz * s
		}
		wantFx[i], wantFy[i], wantFz[i] = fx, fy, fz
	}

	const w = arch.W4
	b := program.NewBuilder("haccmk-" + v.String())
	// f1 = eps, f2 = 1.0 (for the reciprocal).
	b.I(isa.VDup(w, isa.V(16), isa.F(1)))
	b.I(isa.VDup(w, isa.V(17), isa.F(2)))

	// Vector body: given position chunks in px,py,pz and broadcast particle
	// coordinates in v10..v12, accumulate into v20..v22.
	body := func(px, py, pz isa.Reg, pred isa.Reg) {
		b.I(isa.VFSub(w, isa.V(4), px, isa.V(10), pred)) // dx
		b.I(isa.VFSub(w, isa.V(5), py, isa.V(11), pred))
		b.I(isa.VFSub(w, isa.V(6), pz, isa.V(12), pred))
		b.I(isa.VFMul(w, isa.V(7), isa.V(4), isa.V(4), pred))
		b.I(isa.VFMla(w, isa.V(7), isa.V(5), isa.V(5), pred))
		b.I(isa.VFMla(w, isa.V(7), isa.V(6), isa.V(6), pred))
		b.I(isa.VFAdd(w, isa.V(7), isa.V(7), isa.V(16), pred)) // +eps
		b.I(isa.VFSqrt(w, isa.V(8), isa.V(7)))
		b.I(isa.VFMul(w, isa.V(8), isa.V(8), isa.V(7), pred)) // r²·√r²
		b.I(isa.VFDiv(w, isa.V(8), isa.V(17), isa.V(8), pred))
		b.I(isa.VFMla(w, isa.V(20), isa.V(4), isa.V(8), pred))
		b.I(isa.VFMla(w, isa.V(21), isa.V(5), isa.V(8), pred))
		b.I(isa.VFMla(w, isa.V(22), isa.V(6), isa.V(8), pred))
	}
	// Scalar per-i prologue: broadcast (x[i],y[i],z[i]), zero accumulators.
	prologue := func() {
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(10), isa.X(14), 0))
		b.I(isa.VDup(w, isa.V(10), isa.F(10)))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(21)))
		b.I(isa.FLoad(w, isa.F(11), isa.X(14), 0))
		b.I(isa.VDup(w, isa.V(11), isa.F(11)))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(22)))
		b.I(isa.FLoad(w, isa.F(12), isa.X(14), 0))
		b.I(isa.VDup(w, isa.V(12), isa.F(12)))
		b.I(isa.VDupX(w, isa.V(20), isa.X(0)))
		b.I(isa.VDupX(w, isa.V(21), isa.X(0)))
		b.I(isa.VDupX(w, isa.V(22), isa.X(0)))
	}
	// Scalar per-i epilogue: reduce and store forces.
	epilogue := func() {
		b.I(isa.VFAddVF(w, isa.F(20), isa.V(20)))
		b.I(isa.VFAddVF(w, isa.F(21), isa.V(21)))
		b.I(isa.VFAddVF(w, isa.F(22), isa.V(22)))
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(23)))
		b.I(isa.FStore(w, isa.X(14), 0, isa.F(20)))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(24)))
		b.I(isa.FStore(w, isa.X(14), 0, isa.F(21)))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(25)))
		b.I(isa.FStore(w, isa.X(14), 0, isa.F(22)))
	}

	if v == UVE {
		// Three coordinate streams, each replayed once per particle — the
		// paper's 3-stream configuration.
		b.ConfigStream(0, repRows(xB, w, n, n))
		b.ConfigStream(1, repRows(yB, w, n, n))
		b.ConfigStream(2, repRows(zB, w, n, n))
		b.I(isa.Li(isa.X(5), 0))
		b.Label("i")
		prologue()
		b.Label("j")
		body(isa.V(0), isa.V(1), isa.V(2), isa.None)
		b.I(isa.SBDimNotEnd(0, 0, "j"))
		epilogue()
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.SBNotEnd(0, "i"))
	} else {
		lanes := lanesFor(v, w)
		pred := isa.None
		if v == SVE {
			pred = isa.P(1)
		}
		b.I(isa.Li(isa.X(5), 0))
		b.Label("i")
		prologue()
		b.I(isa.Li(isa.X(9), 0))
		if v == SVE {
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
		}
		b.Label("j")
		b.I(isa.VLoad(w, isa.V(1), isa.X(20), isa.X(9), 0, pred))
		b.I(isa.VLoad(w, isa.V(2), isa.X(21), isa.X(9), 0, pred))
		b.I(isa.VLoad(w, isa.V(3), isa.X(22), isa.X(9), 0, pred))
		body(isa.V(1), isa.V(2), isa.V(3), pred)
		if v == SVE {
			b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(1)))
			b.I(isa.BFirst(isa.P(1), "j"))
		} else {
			b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
			b.I(isa.Blt(isa.X(9), isa.X(1), "j"))
			// n is kept a multiple of the NEON width by the harness sizes.
		}
		epilogue()
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "i"))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(24*n), func() error {
		if err := checkF32(h, "fx", fxB, wantFx, 2e-3); err != nil {
			return err
		}
		if err := checkF32(h, "fy", fyB, wantFy, 2e-3); err != nil {
			return err
		}
		return checkF32(h, "fz", fzB, wantFz, 2e-3)
	})
	inst.IntArgs[1] = uint64(n)
	inst.IntArgs[20] = xB
	inst.IntArgs[21] = yB
	inst.IntArgs[22] = zB
	inst.IntArgs[23] = fxB
	inst.IntArgs[24] = fyB
	inst.IntArgs[25] = fzB
	inst.FPArgs[1] = FPArg{W: w, V: eps}
	inst.FPArgs[2] = FPArg{W: w, V: 1}
	return finalize(h, inst)
}

// --- M. KNN ---

// KKnn computes squared distances from a query point to N candidate points
// selected through an index list: dist[i] = Σ_d (P[idx[i]][d] − q[d])².
// The UVE gather uses an indirect modifier that retargets each row's offset
// from the index stream.
var KKnn = register(&Kernel{
	ID: "M", Name: "KNN", Domain: "data mining",
	Streams: 4, Loops: 1, Pattern: "2D+indirect-mod",
	SVEVectorized: true,
	DefaultSize:   512,
	Build:         buildKnn,
})

func buildKnn(h *mem.Hierarchy, v Variant, n int) *Instance {
	const dims = 32 // point dimensionality
	rng := newLCG(1515)
	npoints := 2 * n
	pB, pv := allocMatF32(h, npoints, dims, func(i, j int) float64 { return rng.f32(1) })
	qB, qv := allocF32(h, dims, func(int) float64 { return rng.f32(1) })
	// Index values are stored pre-scaled to element offsets (idx·dims), the
	// natural encoding for an offset-retargeting indirection.
	idxB, idx := allocU64(h, n, func(int) uint64 { return (rng.next() % uint64(npoints)) * dims })
	distB := h.Mem.Alloc(4*n, arch.LineSize)

	want := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		row := int(idx[i])
		for d := 0; d < dims; d++ {
			diff := pv[row+d] - qv[d]
			s += diff * diff
		}
		want[i] = s
	}

	const w = arch.W4
	b := program.NewBuilder("knn-" + v.String())
	if v == UVE {
		// Index stream (engine-consumed) and the row gather it drives: the
		// indirect modifier retargets the row offset once per outer
		// iteration (paper §II-B3).
		b.ConfigStream(0, descriptor.New(idxB, arch.W8, descriptor.Load).
			Linear(int64(n), 1).MustBuild())
		b.ConfigStream(1, descriptor.New(pB, w, descriptor.Load).
			Dim(0, dims, 1).
			Dim(0, int64(n), 0).
			Indirect(descriptor.TargetOffset, descriptor.SetValue, 0).
			MustBuild())
		b.ConfigStream(2, repRows(qB, w, n, dims))
		b.ConfigStream(3, scalarRows(distB, w, n, 1, descriptor.Store))
		b.Label("row")
		b.I(isa.VDupX(w, isa.V(28), isa.X(0)))
		b.Label("ch")
		b.I(isa.VFSub(w, isa.V(27), isa.V(1), isa.V(2), isa.None))
		b.I(isa.VFMul(w, isa.V(26), isa.V(27), isa.V(27), isa.None))
		b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(26), isa.None))
		b.I(isa.SBDimNotEnd(1, 0, "ch"))
		b.I(isa.VFAddV(w, isa.V(3), isa.V(28)))
		b.I(isa.SBNotEnd(1, "row"))
	} else {
		lanes := lanesFor(v, w)
		pred := isa.None
		if v == SVE {
			pred = isa.P(1)
		}
		b.I(isa.Li(isa.X(2), dims))
		b.I(isa.Li(isa.X(5), 0)) // i
		b.Label("i")
		// base of the selected point: P + idx[i]·4 (pre-scaled by dims).
		b.I(isa.SllI(isa.X(13), isa.X(5), 3))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(21)))
		b.I(isa.Load(arch.W8, isa.X(14), isa.X(13), 0))
		b.I(isa.SllI(isa.X(14), isa.X(14), 2))
		b.I(isa.Add(isa.X(14), isa.X(14), isa.X(20)))
		b.I(isa.VDupX(w, isa.V(3), isa.X(0)))
		b.I(isa.Li(isa.X(9), 0)) // d
		if v == SVE {
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(2)))
		}
		b.Label("d")
		b.I(isa.VLoad(w, isa.V(1), isa.X(14), isa.X(9), 0, pred))
		b.I(isa.VLoad(w, isa.V(2), isa.X(22), isa.X(9), 0, pred))
		b.I(isa.VFSub(w, isa.V(4), isa.V(1), isa.V(2), pred))
		b.I(isa.VFMla(w, isa.V(3), isa.V(4), isa.V(4), pred))
		if v == SVE {
			b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(2)))
			b.I(isa.BFirst(isa.P(1), "d"))
		} else {
			b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
			b.I(isa.Blt(isa.X(9), isa.X(2), "d"))
		}
		b.I(isa.VFAddVF(w, isa.F(20), isa.V(3)))
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(23)))
		b.I(isa.FStore(w, isa.X(13), 0, isa.F(20)))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "i"))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*npoints*dims+8*n), func() error {
		return checkF32(h, "dist", distB, want, 1e-3)
	})
	inst.IntArgs[1] = uint64(n)
	inst.IntArgs[20] = pB
	inst.IntArgs[21] = idxB
	inst.IntArgs[22] = qB
	inst.IntArgs[23] = distB
	return finalize(h, inst)
}
