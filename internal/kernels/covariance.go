package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// --- N. Covariance ---

// KCovariance is the PolyBench covariance kernel: column means, mean
// subtraction, then the upper-triangular covariance matrix
// cov[i][j] = Σ_k d[k][i]·d[k][j] / (N−1). The paper's ARM compiler did not
// vectorize it (scalar baselines). The UVE version's third kernel pairs
// column streams whose offset and size are rewritten by static modifiers on
// every outer iteration — the triangular pattern family of Fig 3.B4.
var KCovariance = register(&Kernel{
	ID: "N", Name: "Covariance", Domain: "data mining",
	Streams: 8, Loops: 3, Pattern: "3D+static-mod",
	SVEVectorized: false,
	DefaultSize:   48,
	Build:         buildCovariance,
})

func buildCovariance(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(1717)
	dB, dv := allocMatF32(h, n, n, func(i, j int) float64 { return rng.f32(1) })
	meanB := h.Mem.Alloc(4*n, arch.LineSize)
	covB := h.Mem.Alloc(4*n*n, arch.LineSize)

	// Reference (same operation structure as the kernels; dot products use
	// a tolerance because chunked accumulation reorders the sums).
	mean := make([]float64, n)
	for j := 0; j < n; j++ {
		s := 0.0
		for i := 0; i < n; i++ {
			s += dv[i*n+j]
		}
		mean[j] = s / float64(n)
	}
	cent := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cent[i*n+j] = dv[i*n+j] - mean[j]
		}
	}
	wantCov := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			s := 0.0
			for k := 0; k < n; k++ {
				s += cent[k*n+i] * cent[k*n+j]
			}
			wantCov[i*n+j] = s / float64(n-1)
		}
	}

	const w = arch.W4
	lanes := arch.LanesFor(arch.MaxVecBytes, w)
	b := program.NewBuilder("covariance-" + v.String())
	if v == UVE {
		if n%lanes != 0 {
			b.Errorf("covariance: N=%d must be a multiple of the UVE lane count %d", n, lanes)
		}
		nb := n / lanes
		// Kernel 1: column means, accumulated block-wise over rows.
		b.ConfigStream(0, descriptor.New(dB, w, descriptor.Load).
			Dim(0, int64(lanes), 1).
			Dim(0, int64(n), int64(n)).
			Dim(0, int64(nb), int64(lanes)).
			MustBuild())
		b.ConfigStream(1, descriptor.New(meanB, w, descriptor.Store).
			Dim(0, int64(lanes), 1).
			Dim(0, int64(nb), int64(lanes)).
			MustBuild())
		b.I(isa.VDup(w, isa.V(17), isa.F(1))) // 1/N
		b.I(isa.VDup(w, isa.V(18), isa.F(2))) // 1/(N−1)
		b.Label("k1_jb")
		b.I(isa.VDupX(w, isa.V(28), isa.X(0)))
		b.Label("k1_i")
		b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(0), isa.None))
		b.I(isa.SBDimNotEnd(0, 1, "k1_i"))
		b.I(isa.VFMul(w, isa.V(1), isa.V(28), isa.V(17), isa.None))
		b.I(isa.SBNotEnd(0, "k1_jb"))
		// Kernel 2: subtract the means.
		b.ConfigStream(2, rows2D(dB, w, n, n, n))
		b.ConfigStream(3, repRows(meanB, w, n, n))
		b.ConfigStream(4, descriptor.New(dB, w, descriptor.Store).
			Dim(0, int64(n), 1).Dim(0, int64(n), int64(n)).MustBuild())
		b.Label("k2")
		b.I(isa.VFSub(w, isa.V(4), isa.V(2), isa.V(3), isa.None))
		b.I(isa.SBNotEnd(2, "k2"))
		// Kernel 3: triangular column-pair dots. Column i repeats a
		// shrinking number of times (size modifier); column j slides right
		// (offset + size modifiers); the output walks the upper triangle.
		// Column i: the k-scan repeats once per j; the repeat count shrinks
		// by one on every i iteration (modifier bound to the outer dim).
		b.ConfigStream(5, descriptor.New(dB, w, descriptor.Load).
			Dim(0, int64(n), int64(n)). // k scan down column i
			Dim(0, int64(n+1), 0).      // repeated per j
			Dim(0, int64(n), 1).        // i selects the column
			Mod(descriptor.TargetSize, descriptor.Sub, 1, int64(n)).
			MustBuild())
		// Column j: starts at i and slides right; offset grows and size
		// shrinks per i iteration. The modifiers fire before the first
		// iteration too, hence the -1/n+1 initial values.
		b.ConfigStream(6, descriptor.New(dB, w, descriptor.Load).
			Dim(0, int64(n), int64(n)). // k scan down column j
			Dim(-1, int64(n+1), 1).     // j from i to N−1
			Dim(0, int64(n), 0).        // per i
			Mod(descriptor.TargetOffset, descriptor.Add, 1, int64(n)).
			Mod(descriptor.TargetSize, descriptor.Sub, 1, int64(n)).
			MustBuild())
		// Output: one element per (i,j) pair along the upper triangle.
		b.ConfigStream(7, descriptor.New(covB, w, descriptor.Store).
			Dim(0, 1, 1).
			Dim(-1, int64(n+1), 1).
			Dim(0, int64(n), int64(n)).
			Mod(descriptor.TargetOffset, descriptor.Add, 1, int64(n)).
			Mod(descriptor.TargetSize, descriptor.Sub, 1, int64(n)).
			MustBuild())
		b.Label("k3_pair")
		b.I(isa.VDupX(w, isa.V(28), isa.X(0)))
		b.Label("k3_k")
		b.I(isa.VFMul(w, isa.V(26), isa.V(5), isa.V(6), isa.None))
		b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(26), isa.None))
		b.I(isa.SBDimNotEnd(5, 0, "k3_k"))
		b.I(isa.VFAddV(w, isa.V(27), isa.V(28)))
		b.I(isa.VFMul(w, isa.V(7), isa.V(27), isa.V(18), isa.None))
		b.I(isa.SBNotEnd(5, "k3_pair"))
	} else {
		// Scalar baseline, three loop nests.
		// Kernel 1: means.
		b.I(isa.Li(isa.X(5), 0)) // j
		b.Label("m_j")
		b.I(isa.FLi(w, isa.F(10), 0))
		b.I(isa.Li(isa.X(6), 0)) // i
		b.Label("m_i")
		b.I(isa.Mul(isa.X(12), isa.X(6), isa.X(1)))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(5)))
		b.I(isa.SllI(isa.X(12), isa.X(12), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(11), isa.X(12), 0))
		b.I(isa.FAdd(w, isa.F(10), isa.F(10), isa.F(11)))
		b.I(isa.AddI(isa.X(6), isa.X(6), 1))
		b.I(isa.Blt(isa.X(6), isa.X(1), "m_i"))
		b.I(isa.FMul(w, isa.F(10), isa.F(10), isa.F(1)))
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(21)))
		b.I(isa.FStore(w, isa.X(13), 0, isa.F(10)))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "m_j"))
		// Kernel 2: subtract.
		b.I(isa.Li(isa.X(6), 0))
		b.Label("s_i")
		b.I(isa.Li(isa.X(5), 0))
		b.Label("s_j")
		b.I(isa.Mul(isa.X(12), isa.X(6), isa.X(1)))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(5)))
		b.I(isa.SllI(isa.X(12), isa.X(12), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(11), isa.X(12), 0))
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(21)))
		b.I(isa.FLoad(w, isa.F(12), isa.X(13), 0))
		b.I(isa.FSub(w, isa.F(11), isa.F(11), isa.F(12)))
		b.I(isa.FStore(w, isa.X(12), 0, isa.F(11)))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "s_j"))
		b.I(isa.AddI(isa.X(6), isa.X(6), 1))
		b.I(isa.Blt(isa.X(6), isa.X(1), "s_i"))
		// Kernel 3: upper-triangular covariance.
		b.I(isa.Li(isa.X(5), 0)) // i
		b.Label("c_i")
		b.I(isa.Mv(isa.X(6), isa.X(5))) // j
		b.Label("c_j")
		b.I(isa.FLi(w, isa.F(10), 0))
		b.I(isa.Li(isa.X(7), 0)) // k
		b.Label("c_k")
		b.I(isa.Mul(isa.X(12), isa.X(7), isa.X(1)))
		b.I(isa.Add(isa.X(13), isa.X(12), isa.X(5)))
		b.I(isa.SllI(isa.X(13), isa.X(13), 2))
		b.I(isa.Add(isa.X(13), isa.X(13), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(11), isa.X(13), 0))
		b.I(isa.Add(isa.X(14), isa.X(12), isa.X(6)))
		b.I(isa.SllI(isa.X(14), isa.X(14), 2))
		b.I(isa.Add(isa.X(14), isa.X(14), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(12), isa.X(14), 0))
		b.I(isa.FMadd(w, isa.F(10), isa.F(11), isa.F(12), isa.F(10)))
		b.I(isa.AddI(isa.X(7), isa.X(7), 1))
		b.I(isa.Blt(isa.X(7), isa.X(1), "c_k"))
		b.I(isa.FMul(w, isa.F(10), isa.F(10), isa.F(2)))
		b.I(isa.Mul(isa.X(12), isa.X(5), isa.X(1)))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(6)))
		b.I(isa.SllI(isa.X(12), isa.X(12), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(22)))
		b.I(isa.FStore(w, isa.X(12), 0, isa.F(10)))
		b.I(isa.AddI(isa.X(6), isa.X(6), 1))
		b.I(isa.Blt(isa.X(6), isa.X(1), "c_j"))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "c_i"))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*(2*n*n+n)), func() error {
		if err := checkF32(h, "mean", meanB, mean, 1e-3); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			row := i*n + i
			if err := checkF32(h, "cov", covB+uint64(4*row), wantCov[row:i*n+n], 2e-3); err != nil {
				return err
			}
		}
		return nil
	})
	inst.IntArgs[1] = uint64(n)
	inst.IntArgs[20] = dB
	inst.IntArgs[21] = meanB
	inst.IntArgs[22] = covB
	inst.FPArgs[1] = FPArg{W: w, V: 1.0 / float64(n)}
	inst.FPArgs[2] = FPArg{W: w, V: 1.0 / float64(n-1)}
	return finalize(h, inst)
}
