package kernels

import (
	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// --- H. Trisolv ---

// KTrisolv solves L·x = b for a lower-triangular L (PolyBench trisolv):
// x[i] = (b[i] − Σ_{j<i} L[i][j]·x[j]) / L[i][i]. The UVE version streams
// the triangular L rows with a static size modifier (the paper's Fig 3.B4
// pattern) while x is read through predicated legacy vector loads, because
// x is being produced by the kernel's own output stream (the paper's
// streaming memory model forbids streaming a concurrently-written input).
var KTrisolv = register(&Kernel{
	ID: "H", Name: "Trisolv", Domain: "algebra",
	Streams: 5, Loops: 1, Pattern: "2D+static-mod",
	SVEVectorized: true,
	DefaultSize:   128,
	Build:         buildTrisolv,
})

func buildTrisolv(h *mem.Hierarchy, v Variant, n int) *Instance {
	rng := newLCG(808)
	lB, lv := allocMatF32(h, n, n, func(i, j int) float64 {
		if j > i {
			return 0
		}
		if j == i {
			return 2 + rng.f32(0.5) // well-conditioned diagonal
		}
		return rng.f32(1) / float64(n)
	})
	bB, bv := allocF32(h, n, func(int) float64 { return rng.f32(1) })
	xB, _ := allocF32(h, n, func(int) float64 { return 0 })

	want := make([]float64, n)
	for i := 0; i < n; i++ {
		s := bv[i]
		for j := 0; j < i; j++ {
			s -= lv[i*n+j] * want[j]
		}
		want[i] = s / lv[i*n+i]
	}

	const w = arch.W4
	b := program.NewBuilder("trisolv-" + v.String())
	if v == UVE {
		// Scalar prologue: x[0] = b[0]/L[0][0].
		b.I(isa.Li(isa.X(20), int64(lB)))
		b.I(isa.Li(isa.X(21), int64(bB)))
		b.I(isa.Li(isa.X(22), int64(xB)))
		b.I(isa.FLoad(w, isa.F(2), isa.X(21), 0))
		b.I(isa.FLoad(w, isa.F(3), isa.X(20), 0))
		b.I(isa.FDiv(w, isa.F(4), isa.F(2), isa.F(3)))
		b.I(isa.FStore(w, isa.X(22), 0, isa.F(4)))
		// Streams over rows 1..N-1. The triangular row lengths 1,2,…,N-1
		// come from a static size modifier (paper Fig 3.B4).
		dL := descriptor.New(lB+uint64(4*n), w, descriptor.Load).
			Dim(0, 0, 1).
			Dim(0, int64(n-1), int64(n)).
			Mod(descriptor.TargetSize, descriptor.Add, 1, int64(n-1)).
			MustBuild()
		dB := scalarRows(bB+4, w, n-1, 1, descriptor.Load)
		dDiag := scalarRows(lB+uint64(4*(n+1)), w, n-1, n+1, descriptor.Load)
		dX := scalarRows(xB+4, w, n-1, 1, descriptor.Store)
		b.ConfigStream(0, dL)
		b.ConfigStream(1, dB)
		b.ConfigStream(2, dDiag)
		b.ConfigStream(3, dX)
		b.I(isa.Li(isa.X(8), 1)) // i
		b.Label("row")
		b.I(isa.VDupX(w, isa.V(28), isa.X(0)))
		b.I(isa.Li(isa.X(9), 0))
		b.Label("ch")
		b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(8)))
		b.I(isa.VLoad(w, isa.V(27), isa.X(22), isa.X(9), 0, isa.P(1)))
		b.I(isa.VFMul(w, isa.V(26), isa.V(0), isa.V(27), isa.None))
		b.I(isa.VFAdd(w, isa.V(28), isa.V(28), isa.V(26), isa.None))
		b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
		b.I(isa.SBDimNotEnd(0, 0, "ch"))
		b.I(isa.VFAddV(w, isa.V(26), isa.V(28)))
		b.I(isa.VFSub(w, isa.V(25), isa.V(1), isa.V(26), isa.None))
		b.I(isa.VFDiv(w, isa.V(3), isa.V(25), isa.V(2), isa.None))
		b.I(isa.AddI(isa.X(8), isa.X(8), 1))
		b.I(isa.SBNotEnd(0, "row"))
	} else {
		// Baselines: per-row predicated dot over j<i, scalar solve step.
		lanes := lanesFor(v, w)
		b.I(isa.Li(isa.X(5), 0)) // i
		b.Label("row")
		b.I(isa.Mul(isa.X(8), isa.X(5), isa.X(1))) // i*N
		b.I(isa.VDupX(w, isa.V(3), isa.X(0)))
		b.I(isa.Li(isa.X(9), 0)) // j
		if v == SVE {
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(5)))
			b.I(isa.BFirst(isa.P(1), "jloop"))
			b.I(isa.J("jdone"))
			b.Label("jloop")
			b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
			b.I(isa.VLoad(w, isa.V(1), isa.X(20), isa.X(12), 0, isa.P(1)))
			b.I(isa.VLoad(w, isa.V(2), isa.X(22), isa.X(9), 0, isa.P(1)))
			b.I(isa.VFMla(w, isa.V(3), isa.V(1), isa.V(2), isa.P(1)))
			b.I(isa.IncVL(w, isa.X(9), isa.X(9)))
			b.I(isa.Whilelt(w, isa.P(1), isa.X(9), isa.X(5)))
			b.I(isa.BFirst(isa.P(1), "jloop"))
			b.Label("jdone")
			b.I(isa.VFAddVF(w, isa.F(20), isa.V(3)))
		} else {
			b.I(isa.Li(isa.X(15), int64(lanes)))
			b.I(isa.Div(isa.X(10), isa.X(5), isa.X(15)))
			b.I(isa.Mul(isa.X(10), isa.X(10), isa.X(15)))
			b.I(isa.Beq(isa.X(10), isa.X(0), "jtail"))
			b.Label("jloop")
			b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
			b.I(isa.VLoad(w, isa.V(1), isa.X(20), isa.X(12), 0, isa.None))
			b.I(isa.VLoad(w, isa.V(2), isa.X(22), isa.X(9), 0, isa.None))
			b.I(isa.VFMla(w, isa.V(3), isa.V(1), isa.V(2), isa.None))
			b.I(isa.AddI(isa.X(9), isa.X(9), int64(lanes)))
			b.I(isa.Blt(isa.X(9), isa.X(10), "jloop"))
			b.Label("jtail")
			b.I(isa.VFAddVF(w, isa.F(20), isa.V(3)))
			b.I(isa.Bge(isa.X(9), isa.X(5), "jdone"))
			b.Label("jtl")
			b.I(isa.Add(isa.X(12), isa.X(8), isa.X(9)))
			b.I(isa.SllI(isa.X(13), isa.X(12), 2))
			b.I(isa.Add(isa.X(13), isa.X(13), isa.X(20)))
			b.I(isa.FLoad(w, isa.F(21), isa.X(13), 0))
			b.I(isa.SllI(isa.X(13), isa.X(9), 2))
			b.I(isa.Add(isa.X(13), isa.X(13), isa.X(22)))
			b.I(isa.FLoad(w, isa.F(22), isa.X(13), 0))
			b.I(isa.FMadd(w, isa.F(20), isa.F(21), isa.F(22), isa.F(20)))
			b.I(isa.AddI(isa.X(9), isa.X(9), 1))
			b.I(isa.Blt(isa.X(9), isa.X(5), "jtl"))
			b.Label("jdone")
		}
		if v == NEON {
			// Scalar accumulator already folded into f20 above.
			_ = lanes
		}
		// x[i] = (b[i] − sum) / L[i][i]
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(21)))
		b.I(isa.FLoad(w, isa.F(23), isa.X(14), 0))
		b.I(isa.FSub(w, isa.F(24), isa.F(23), isa.F(20)))
		b.I(isa.Add(isa.X(12), isa.X(8), isa.X(5)))
		b.I(isa.SllI(isa.X(12), isa.X(12), 2))
		b.I(isa.Add(isa.X(12), isa.X(12), isa.X(20)))
		b.I(isa.FLoad(w, isa.F(25), isa.X(12), 0))
		b.I(isa.FDiv(w, isa.F(26), isa.F(24), isa.F(25)))
		b.I(isa.Add(isa.X(14), isa.X(13), isa.X(22)))
		b.I(isa.FStore(w, isa.X(14), 0, isa.F(26)))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.Blt(isa.X(5), isa.X(1), "row"))
	}
	b.I(isa.Halt())

	inst := instance(b, int64(4*(n*n+2*n)), func() error {
		return checkF32(h, "x", xB, want, 1e-3)
	})
	if v != UVE {
		inst.IntArgs[1] = uint64(n)
		inst.IntArgs[20] = lB
		inst.IntArgs[21] = bB
		inst.IntArgs[22] = xB
	}
	return finalize(h, inst)
}
