package sim

import (
	"context"
	"fmt"

	"repro/internal/funcsim"
	"repro/internal/kernels"
	"repro/internal/mem"
)

// Fidelity selects the execution tier a run uses.
type Fidelity int

const (
	// Cycle is the detailed tier: the out-of-order core, streaming engine
	// and memory hierarchy simulated cycle by cycle. The default.
	Cycle Fidelity = iota
	// Functional is the fast tier: program-order interpretation with eager
	// stream iteration (internal/funcsim). Produces final memory, committed
	// counts and sanitizer collisions, but no cycles and no timing stats.
	Functional
)

// String returns the CLI spelling of the fidelity.
func (f Fidelity) String() string {
	switch f {
	case Cycle:
		return "cycle"
	case Functional:
		return "functional"
	}
	return fmt.Sprintf("Fidelity(%d)", int(f))
}

// ParseFidelity parses a CLI spelling ("cycle" or "functional").
func ParseFidelity(s string) (Fidelity, error) {
	switch s {
	case "cycle":
		return Cycle, nil
	case "functional":
		return Functional, nil
	}
	return Cycle, fmt.Errorf("unknown fidelity %q (want cycle or functional)", s)
}

// runFunctional is RunBuilt's Functional-tier path: it interprets the built
// instance in program order and fills the architectural subset of Result
// (Committed, per-kind counts, Collisions, MemHash). Timing fields stay
// zero — a functional Result answers "what did the program compute", never
// "how fast".
func runFunctional(ctx context.Context, id string, v kernels.Variant, size int, o *Options, h *mem.Hierarchy, inst *kernels.Instance) (*Result, error) {
	if o.Trace != nil {
		return nil, fmt.Errorf("%s/%s: functional fidelity cannot record traces (no cycles to attribute events to)", id, v)
	}
	if o.Faults != nil && o.Faults.Enabled() {
		return nil, fmt.Errorf("%s/%s: functional fidelity cannot inject faults (injectors perturb timing, which the tier does not model)", id, v)
	}
	sanitize, elided := o.resolveSanitize(v, inst)
	cfg := funcsim.Config{
		VecBytes: o.Core.VecBytes,
		Sanitize: sanitize,
	}
	// The detailed tier bounds runs in cycles; translate the same knob into
	// an instruction budget (commit width retires at most that many per
	// cycle, so the bound is never tighter than the cycle model's).
	if o.Core.MaxCycles > 0 {
		cfg.MaxInsts = o.Core.MaxCycles * int64(o.Core.CommitWidth)
	}
	installFuncCancel(ctx, &cfg)
	fm := funcsim.New(cfg, inst.Prog, h.Mem)
	for r, val := range inst.IntArgs {
		fm.SetIntReg(r, val)
	}
	for r, a := range inst.FPArgs {
		fm.SetFPReg(r, a.W, a.V)
	}
	if err := fm.Run(); err != nil {
		return nil, fmt.Errorf("%s/%s: %w", id, v, err)
	}
	res := &Result{
		Variant:    v,
		Kernel:     id,
		Size:       size,
		Committed:  fm.Committed(),
		Collisions: fm.Collisions(),

		SanitizerElided: elided,
	}
	res.Core.Committed = fm.Committed()
	res.Core.CommittedByKind = fm.CommittedByKind()
	if o.HashMem {
		res.MemHash = h.Mem.HashExtents()
	}
	if !o.SkipCheck && inst.Check != nil {
		if err := inst.Check(); err != nil {
			return res, fmt.Errorf("output mismatch: %w", err)
		}
	}
	return res, nil
}
