package sim

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/kernels"
)

// TestRunContextPreCanceled: a done context aborts before the kernel is
// even built, with the typed error wrapping context.Canceled.
func TestRunContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, kernels.ByID("C"), kernels.UVE, 500, nil)
	if err == nil {
		t.Fatal("pre-canceled context did not abort the run")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) is false: %v", err)
	}
}

// TestRunContextDeadlineDetailed: an expiring deadline interrupts a
// detailed-tier run mid-flight, and the error carries the cycle the poll
// observed it at.
func TestRunContextDeadlineDetailed(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := RunContext(ctx, kernels.ByID("C"), kernels.UVE, 1<<16, nil)
	if err == nil {
		t.Skip("run finished before the 1ms deadline expired")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *CanceledError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) is false: %v", err)
	}
	if ce.Cycle <= 0 {
		t.Fatalf("detailed-tier cancellation reported cycle %d, want > 0", ce.Cycle)
	}
	if ce.Insts != 0 {
		t.Fatalf("detailed-tier cancellation reported Insts=%d, want 0", ce.Insts)
	}
}

// TestRunContextFunctionalCanceled: the functional tier honours
// cancellation too, reporting progress in interpreted instructions.
func TestRunContextFunctionalCanceled(t *testing.T) {
	o := DefaultOptions(kernels.UVE)
	o.Fidelity = Functional
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel from a goroutine racing the run; the run either finishes
	// first (skip) or aborts with the typed error.
	go func() {
		time.Sleep(200 * time.Microsecond)
		cancel()
	}()
	_, err := RunContext(ctx, kernels.ByID("C"), kernels.UVE, 1<<16, &o)
	if err == nil {
		t.Skip("functional run finished before the cancel landed")
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *CanceledError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) is false: %v", err)
	}
	if ce.Cycle != 0 {
		t.Fatalf("functional-tier cancellation reported Cycle=%d, want 0", ce.Cycle)
	}
}

// TestRunContextBackgroundMatchesRun: RunContext with a background context
// is bit-for-bit the same simulation as Run.
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	r1, err := Run(kernels.ByID("C"), kernels.UVE, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunContext(context.Background(), kernels.ByID("C"), kernels.UVE, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Committed != r2.Committed {
		t.Fatalf("Run (%d cyc, %d inst) differs from RunContext(Background) (%d cyc, %d inst)",
			r1.Cycles, r1.Committed, r2.Cycles, r2.Committed)
	}
}

// TestCanceledErrorString covers the three progress renderings.
func TestCanceledErrorString(t *testing.T) {
	cases := []struct {
		e    CanceledError
		want string
	}{
		{CanceledError{Cycle: 42, Err: context.Canceled}, "sim: run canceled at cycle 42: context canceled"},
		{CanceledError{Insts: 7, Err: context.DeadlineExceeded}, "sim: run canceled after 7 instructions: context deadline exceeded"},
		{CanceledError{Err: context.Canceled}, "sim: run canceled: context canceled"},
	}
	for _, c := range cases {
		if got := c.e.Error(); got != c.want {
			t.Errorf("Error() = %q, want %q", got, c.want)
		}
	}
}
