package sim_test

// The functional-tier differential oracle (the tentpole's acceptance
// property): every kernel, on every variant, at multiple sizes, interpreted
// by the functional tier must produce exactly the architectural results of
// the cycle-accurate machine — byte-identical final memory, identical
// committed-instruction counts, and the same unordered collision-pair sets
// from the shared sanitizer. Any divergence is a semantics drift between
// the two tiers and fails loudly with the kernel/variant/size cell.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

func runTier(t *testing.T, k *kernels.Kernel, v kernels.Variant, size int, f sim.Fidelity) *sim.Result {
	t.Helper()
	o := sim.DefaultOptions(v)
	o.Fidelity = f
	o.HashMem = true
	if v == kernels.UVE {
		o.Sanitize = sim.SanitizeOn
	}
	r, err := sim.Run(k, v, size, &o)
	if err != nil {
		t.Fatalf("%s/%s n=%d fidelity=%s: %v", k.ID, v, size, f, err)
	}
	return r
}

// TestFunctionalDifferential sweeps all kernels × all variants × a size
// grid through both tiers and compares their architectural results.
func TestFunctionalDifferential(t *testing.T) {
	scales := []int{16, 64}
	if testing.Short() {
		scales = []int{64}
	}
	cells := 0
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			sizes := map[int]bool{}
			for _, sc := range scales {
				sizes[bench.SizeFor(k, &bench.Options{Scale: sc})] = true
			}
			for size := range sizes {
				cyc := runTier(t, k, v, size, sim.Cycle)
				fn := runTier(t, k, v, size, sim.Functional)
				if fn.Cycles != 0 {
					t.Errorf("%s/%s n=%d: functional run reported cycles (%d)", k.ID, v, size, fn.Cycles)
				}
				if fn.MemHash != cyc.MemHash {
					t.Errorf("%s/%s n=%d: final memory diverged between tiers (functional %#x vs cycle %#x)",
						k.ID, v, size, fn.MemHash, cyc.MemHash)
				}
				if fn.Committed != cyc.Committed {
					t.Errorf("%s/%s n=%d: committed counts diverged (functional %d vs cycle %d)",
						k.ID, v, size, fn.Committed, cyc.Committed)
				}
				if fn.Core.CommittedByKind != cyc.Core.CommittedByKind {
					t.Errorf("%s/%s n=%d: per-kind commit counts diverged (functional %v vs cycle %v)",
						k.ID, v, size, fn.Core.CommittedByKind, cyc.Core.CommittedByKind)
				}
				if got, want := collisionPairs(fn), collisionPairs(cyc); got != want {
					t.Errorf("%s/%s n=%d: collision pairs diverged (functional %q vs cycle %q)",
						k.ID, v, size, got, want)
				}
				cells++
			}
		}
	}
	if cells == 0 {
		t.Fatal("differential sweep covered no cells")
	}
}

// TestFunctionalRejectsTimingOptions: the functional tier has no cycles, so
// trace recording and fault injection are configuration errors, not silent
// no-ops.
func TestFunctionalRejectsTimingOptions(t *testing.T) {
	k := kernels.ByID("C")
	o := sim.DefaultOptions(kernels.UVE)
	o.Fidelity = sim.Functional
	o.Trace = trace.NewCollector(64, 0)
	if _, err := sim.Run(k, kernels.UVE, 64, &o); err == nil {
		t.Error("functional run with a trace recorder succeeded; want error")
	}
}
