// Package sim assembles complete machines (core + memory hierarchy, plus
// the Streaming Engine for UVE) and runs kernel instances on them,
// collecting the statistics the paper's evaluation reports.
package sim

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Options overrides pieces of the Table I machine for sensitivity sweeps.
type Options struct {
	Core cpu.Config
	Eng  engine.Config
	Hier mem.HierarchyConfig
	// Fidelity selects the execution tier: Cycle (default) runs the
	// detailed machine; Functional interprets the program in program order
	// for architectural results only (no cycles, no timing stats, and
	// incompatible with Trace and Faults).
	Fidelity Fidelity
	// SkipCheck skips output validation (benchmark loops that re-run the
	// same instance's timing many times).
	SkipCheck bool
	// Sanitize selects the streaming engine's shadow address tracker, which
	// records every byte live streams touch and reports runtime collisions
	// (Result.Collisions). UVE only; byte-granular, so meant for
	// verification runs at test sizes, not timing experiments. SanitizeAuto
	// elides tracking when the program's static safety certificate proves
	// every dependence pair disjoint (see Result.SanitizerElided).
	Sanitize SanitizeMode
	// Trace, when non-nil, receives typed instrumentation events from the
	// core and (UVE) the streaming engine. Timing is unaffected: the same
	// cycles are simulated with or without a recorder.
	Trace trace.Recorder
	// Faults, when non-nil and enabled, runs the instance under the seeded
	// deterministic fault injectors (NACKed line fetches, mid-stream page
	// faults, DRAM latency spikes, forced generation pauses at dimension
	// boundaries). Injection perturbs timing only; architectural results
	// must match the fault-free run — the resilience oracle in
	// fault_test.go enforces it. A fresh Injector is built per run, so the
	// same Plan always yields the same cycle count.
	Faults *fault.Plan
	// Watchdog, when positive, overrides Core.Watchdog (forward-progress
	// bound in cycles without a commit).
	Watchdog int64
	// MaxCycles, when positive, overrides Core.MaxCycles (hard cycle bound
	// for fault campaigns; livelock becomes a *cpu.WatchdogError).
	MaxCycles int64
	// HashMem records an FNV-1a digest of the final memory image in
	// Result.MemHash — the architectural-state oracle fault campaigns
	// compare against the fault-free run.
	HashMem bool
}

// Clone returns a deep copy: shared pointer fields (Eng.ForceLevel, Faults)
// are duplicated so mutating the copy — or the original, as bench jobs do
// between submit and execution — cannot alias. Trace recorders are shared
// by reference; a recorder is a sink, not configuration.
func (o *Options) Clone() Options {
	c := *o
	if o.Eng.ForceLevel != nil {
		lv := *o.Eng.ForceLevel
		c.Eng.ForceLevel = &lv
	}
	if o.Faults != nil {
		p := *o.Faults
		c.Faults = &p
	}
	return c
}

// DefaultOptions returns the Table I machine for the given variant.
func DefaultOptions(v kernels.Variant) Options {
	o := Options{
		Core: cpu.DefaultConfig(),
		Eng:  engine.DefaultConfig(),
		Hier: mem.DefaultHierarchyConfig(),
	}
	o.Core.VecBytes = v.VecBytes()
	o.Eng.VecBytes = v.VecBytes()
	return o
}

// Result carries the measurements used by the §VI figures.
type Result struct {
	Variant   kernels.Variant
	Kernel    string
	Size      int
	Cycles    int64
	Committed uint64
	Core      cpu.Stats
	Eng       engine.Stats
	DRAM      mem.DRAMStats
	L1        mem.CacheStats
	L2        mem.CacheStats
	// BusUtil is (ReadBW+WriteBW)/PeakBW — the Fig 8.D metric.
	BusUtil float64
	// Collisions holds the stream sanitizer's observations (Options.Sanitize).
	Collisions []engine.Collision
	// Traffic holds the committed per-stream work records (UVE cycle runs
	// only) the static cost model validates against.
	Traffic []engine.StreamTraffic
	// Faults counts the injections actually fired (Options.Faults).
	Faults fault.Stats
	// MemHash is the final memory-image digest (Options.HashMem).
	MemHash uint64
	// SanitizerElided reports that SanitizeAuto skipped shadow tracking
	// because the program's safety certificate proved every dependence pair
	// disjoint — the sanitizer could only have observed zero collisions.
	SanitizerElided bool
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// Run builds the kernel at the given size for the variant and executes it
// to completion, validating the output against the kernel's reference.
// size == 0 runs the kernel's DefaultSize; negative sizes are an error.
// Run is RunContext with a background (never-canceled) context.
func Run(k *kernels.Kernel, v kernels.Variant, size int, opts *Options) (*Result, error) {
	return RunContext(context.Background(), k, v, size, opts)
}

// RunBuilt is RunBuiltContext with a background (never-canceled) context.
func RunBuilt(id string, v kernels.Variant, size int, opts *Options, build func(h *mem.Hierarchy) *kernels.Instance) (*Result, error) {
	return RunBuiltContext(context.Background(), id, v, size, opts, build)
}

// RunBuiltContext assembles the Table I machine for the variant (core +
// memory hierarchy, plus the Streaming Engine for UVE), runs the instance
// the build callback constructs against that hierarchy, and validates its
// output. It is the single execution path shared by Run and by custom
// instances such as the Fig 8.E unrolled GEMMs; id labels the Result.
// Validation errors are returned raw so callers can add kernel context.
// The context is polled at cycle-batch granularity; a done context aborts
// the run with a *CanceledError.
func RunBuiltContext(ctx context.Context, id string, v kernels.Variant, size int, opts *Options, build func(h *mem.Hierarchy) *kernels.Instance) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, &CanceledError{Err: err}
	}
	var o Options
	if opts != nil {
		o = opts.Clone()
	} else {
		o = DefaultOptions(v)
	}
	if o.Watchdog > 0 {
		o.Core.Watchdog = o.Watchdog
	}
	if o.MaxCycles > 0 {
		o.Core.MaxCycles = o.MaxCycles
	}
	h := mem.NewHierarchy(o.Hier)
	inst := build(h)
	if inst.Err != nil {
		return nil, fmt.Errorf("%s/%s: %w", id, v, inst.Err)
	}
	if o.Fidelity == Functional {
		return runFunctional(ctx, id, v, size, &o, h, inst)
	}

	var inj *fault.Injector
	if o.Faults != nil && o.Faults.Enabled() {
		inj = fault.NewInjector(*o.Faults)
		h.TLB.Inject = inj.PageFault
		h.DRAM.Inject = inj.DRAMDelay
	}
	sanitize, elided := o.resolveSanitize(v, inst)
	var eng *engine.Engine
	if v == kernels.UVE {
		eng = engine.New(o.Eng, h)
		if sanitize {
			eng.EnableSanitizer()
		}
		if o.Trace != nil {
			eng.SetRecorder(o.Trace)
		}
		if inj != nil {
			eng.SetInjector(inj)
		}
	}
	core := cpu.New(o.Core, inst.Prog, h, eng)
	if o.Trace != nil {
		core.SetRecorder(o.Trace)
	}
	for r, val := range inst.IntArgs {
		core.SetIntReg(r, val)
	}
	for r, a := range inst.FPArgs {
		core.SetFPReg(r, a.W, a.V)
	}
	installCancel(ctx, core)
	cycles, runErr := runCore(core, &o)
	if runErr != nil {
		return nil, fmt.Errorf("%s/%s: %w", id, v, runErr)
	}

	res := &Result{
		Variant:   v,
		Kernel:    id,
		Size:      size,
		Cycles:    cycles,
		Committed: core.Stats.Committed,
		Core:      core.Stats,
		DRAM:      h.DRAM.Stats,
		L1:        h.L1D.Stats,
		L2:        h.L2.Stats,
		BusUtil:   h.DRAM.Utilization(cycles),

		SanitizerElided: elided,
	}
	if eng != nil {
		res.Eng = eng.Stats
		res.Collisions = eng.Collisions()
		res.Traffic = eng.Traffic()
	}
	if inj != nil {
		res.Faults = inj.Stats
	}
	if o.HashMem {
		res.MemHash = h.Mem.HashExtents()
	}
	if !o.SkipCheck && inst.Check != nil {
		if err := inst.Check(); err != nil {
			return res, fmt.Errorf("output mismatch: %w", err)
		}
	}
	return res, nil
}

// runCore executes the core, converting a watchdog abort (livelock or
// cycle-bound trip, expected under adversarial fault plans) or a context
// cancellation into an error — for watchdogs, one that carries the
// structured diagnostic and, when the run was traced into a Collector,
// the tail of the event ring for post-mortem context. Other panics are
// modeling bugs and propagate.
func runCore(core *cpu.Core, o *Options) (cycles int64, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		switch e := r.(type) {
		case *cpu.WatchdogError:
			err = fmt.Errorf("%w%s", e, traceTail(o.Trace))
		case *CanceledError:
			err = e
		default:
			panic(r)
		}
	}()
	return core.Run(), nil
}

// traceTail renders the last few retained trace events for the watchdog
// diagnostic (empty unless the run recorded into a *trace.Collector).
func traceTail(r trace.Recorder) string {
	const tail = 12
	c, ok := r.(*trace.Collector)
	if !ok || c == nil {
		return ""
	}
	evs := c.Events()
	if len(evs) == 0 {
		return ""
	}
	if len(evs) > tail {
		evs = evs[len(evs)-tail:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "\nlast %d trace events:\n", len(evs))
	for _, e := range evs {
		fmt.Fprintf(&b, "  cycle %d: %s (%d, %d, %d)\n", e.Cycle, e.Kind, e.Arg0, e.Arg1, e.Arg2)
	}
	return strings.TrimRight(b.String(), "\n")
}

// MustRun is Run that fails the calling benchmark/test via panic on error.
func MustRun(k *kernels.Kernel, v kernels.Variant, size int, opts *Options) *Result {
	r, err := Run(k, v, size, opts)
	if err != nil {
		panic(err)
	}
	return r
}
