// Package sim assembles complete machines (core + memory hierarchy, plus
// the Streaming Engine for UVE) and runs kernel instances on them,
// collecting the statistics the paper's evaluation reports.
package sim

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/mem"
)

// Options overrides pieces of the Table I machine for sensitivity sweeps.
type Options struct {
	Core cpu.Config
	Eng  engine.Config
	Hier mem.HierarchyConfig
	// SkipCheck skips output validation (benchmark loops that re-run the
	// same instance's timing many times).
	SkipCheck bool
}

// DefaultOptions returns the Table I machine for the given variant.
func DefaultOptions(v kernels.Variant) Options {
	o := Options{
		Core: cpu.DefaultConfig(),
		Eng:  engine.DefaultConfig(),
		Hier: mem.DefaultHierarchyConfig(),
	}
	o.Core.VecBytes = v.VecBytes()
	o.Eng.VecBytes = v.VecBytes()
	return o
}

// Result carries the measurements used by the §VI figures.
type Result struct {
	Variant   kernels.Variant
	Kernel    string
	Size      int
	Cycles    int64
	Committed uint64
	Core      cpu.Stats
	Eng       engine.Stats
	DRAM      mem.DRAMStats
	L1        mem.CacheStats
	L2        mem.CacheStats
	// BusUtil is (ReadBW+WriteBW)/PeakBW — the Fig 8.D metric.
	BusUtil float64
}

// IPC returns committed instructions per cycle.
func (r *Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// Run builds the kernel at the given size for the variant and executes it
// to completion, validating the output against the kernel's reference.
func Run(k *kernels.Kernel, v kernels.Variant, size int, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	} else {
		o = DefaultOptions(v)
	}
	if size <= 0 {
		size = k.DefaultSize
	}
	h := mem.NewHierarchy(o.Hier)
	inst := k.Build(h, v, size)

	var eng *engine.Engine
	if v == kernels.UVE {
		eng = engine.New(o.Eng, h)
	}
	core := cpu.New(o.Core, inst.Prog, h, eng)
	for r, val := range inst.IntArgs {
		core.SetIntReg(r, val)
	}
	for r, a := range inst.FPArgs {
		core.SetFPReg(r, a.W, a.V)
	}
	cycles := core.Run()

	res := &Result{
		Variant:   v,
		Kernel:    k.ID,
		Size:      size,
		Cycles:    cycles,
		Committed: core.Stats.Committed,
		Core:      core.Stats,
		DRAM:      h.DRAM.Stats,
		L1:        h.L1D.Stats,
		L2:        h.L2.Stats,
		BusUtil:   h.DRAM.Utilization(cycles),
	}
	if eng != nil {
		res.Eng = eng.Stats
	}
	if !o.SkipCheck && inst.Check != nil {
		if err := inst.Check(); err != nil {
			return res, fmt.Errorf("%s/%s n=%d: output mismatch: %w", k.Name, v, size, err)
		}
	}
	return res, nil
}

// MustRun is Run that fails the calling benchmark/test via panic on error.
func MustRun(k *kernels.Kernel, v kernels.Variant, size int, opts *Options) *Result {
	r, err := Run(k, v, size, opts)
	if err != nil {
		panic(err)
	}
	return r
}
