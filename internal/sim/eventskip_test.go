package sim_test

// Event-driven cycle skipping must be invisible in every number a run
// reports: identical cycle counts, identical per-cycle stall tallies,
// identical cache/DRAM/engine statistics, identical architectural results.
// This sweep runs every kernel on every variant with skipping on and off
// and requires the two Results to be deeply equal — including a faulted
// UVE run, since injection timing must also be reproduced exactly.

import (
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func runWithSkip(t *testing.T, k *kernels.Kernel, v kernels.Variant, size int, skip bool, faults *fault.Plan) *sim.Result {
	t.Helper()
	o := sim.DefaultOptions(v)
	o.Core.EventSkip = skip
	o.HashMem = true
	if v == kernels.UVE {
		o.Sanitize = sim.SanitizeOn
	}
	o.Faults = faults
	r, err := sim.Run(k, v, size, &o)
	if err != nil {
		t.Fatalf("%s/%s n=%d skip=%v: %v", k.ID, v, size, skip, err)
	}
	return r
}

func TestEventSkipEquivalence(t *testing.T) {
	scale := 64
	if testing.Short() {
		scale = 16
	}
	cells := 0
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			size := bench.SizeFor(k, &bench.Options{Scale: scale})
			on := runWithSkip(t, k, v, size, true, nil)
			off := runWithSkip(t, k, v, size, false, nil)
			if !reflect.DeepEqual(on, off) {
				t.Errorf("%s/%s n=%d: results diverge with event skipping on vs off:\n on: %+v\noff: %+v",
					k.ID, v, size, on, off)
			}
			cells++
		}
	}
	if cells == 0 {
		t.Fatal("equivalence sweep covered no cells")
	}
}

// TestEventSkipEquivalenceUnderFaults: injectors perturb timing from the
// machine's own clock, so skipping must reproduce their firing cycles too.
func TestEventSkipEquivalenceUnderFaults(t *testing.T) {
	k := kernels.ByID("C")
	if k == nil {
		t.Skip("kernel C unavailable")
	}
	size := bench.SizeFor(k, &bench.Options{Scale: 64})
	plan := fault.DefaultPlan(7)
	on := runWithSkip(t, k, kernels.UVE, size, true, &plan)
	off := runWithSkip(t, k, kernels.UVE, size, false, &plan)
	if !reflect.DeepEqual(on, off) {
		t.Errorf("faulted run diverges with event skipping on vs off:\n on: %+v\noff: %+v", on, off)
	}
	if on.Faults.Total() == 0 {
		t.Log("note: plan injected nothing; equivalence still checked")
	}
}
