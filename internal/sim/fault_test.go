package sim_test

// The resilience oracle (the tentpole's acceptance property): every kernel,
// on both the UVE machine and the SVE baseline, run under a grid of seeded
// fault campaigns, must leave the final memory image byte-identical to the
// fault-free run and still pass the kernel's own output check. Injection is
// allowed to change *when* things happen, never *what* the program
// computes. The external test package lets this file reuse bench.SizeFor's
// per-kernel structural clamps without an import cycle.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// oracleSize shrinks a kernel to test scale through the same clamps the
// figure harness uses.
func oracleSize(k *kernels.Kernel) int {
	return bench.SizeFor(k, &bench.Options{Scale: 64})
}

func runOracle(t *testing.T, k *kernels.Kernel, v kernels.Variant, size int, plan *fault.Plan, fid sim.Fidelity) *sim.Result {
	t.Helper()
	o := sim.DefaultOptions(v)
	o.Fidelity = fid
	o.HashMem = true
	if v == kernels.UVE {
		o.Sanitize = sim.SanitizeOn
	}
	if plan != nil {
		o.Faults = plan
		// An injection-induced livelock must become a diagnostic, not a
		// hung test run.
		o.MaxCycles = 100_000_000
	}
	r, err := sim.Run(k, v, size, &o)
	if err != nil {
		t.Fatalf("%s/%s faults=%v: %v", k.ID, v, plan, err)
	}
	return r
}

// collisionPairs projects the sanitizer's observations onto accessor pairs.
// Some kernels legitimately collide (lockstep in-place idioms — the
// sanitizer cross-check test admits them against the static analyzer);
// injection must neither create new pairs nor hide existing ones. The
// first-observed address may shift with timing, so pairs, not addresses,
// are the invariant.
// Pairs are unordered: replay can make either stream the second toucher
// of the shared byte, so the same overlap may be recorded in both
// directions.
func collisionPairs(r *sim.Result) string {
	seen := map[string]bool{}
	var ps []string
	for _, c := range r.Collisions {
		a, b := c.StreamA, c.StreamB
		if b >= 0 && b < a {
			a, b = b, a
		}
		key := fmt.Sprintf("%d/%d/%d", a, b, c.ScalarPC)
		if !seen[key] {
			seen[key] = true
			ps = append(ps, key)
		}
	}
	sort.Strings(ps)
	return strings.Join(ps, ",")
}

// TestFaultOracle sweeps all kernels x {UVE, SVE} x seeded campaigns.
func TestFaultOracle(t *testing.T) {
	seeds := []uint64{3, 7}
	var injected uint64
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE} {
			size := oracleSize(k)
			// The fault-free baseline only supplies the memory image and
			// collision pairs, both of which the functional tier produces
			// (and the tier differential oracle keeps honest) — so the
			// baseline runs there, an order of magnitude cheaper.
			base := runOracle(t, k, v, size, nil, sim.Functional)
			if base.Faults.Total() != 0 {
				t.Fatalf("%s/%s: fault-free run reported injections: %v", k.ID, v, base.Faults)
			}
			for _, seed := range seeds {
				plan := fault.DefaultPlan(seed)
				r := runOracle(t, k, v, size, &plan, sim.Cycle)
				if r.MemHash != base.MemHash {
					t.Errorf("%s/%s seed=%d: memory image diverged from fault-free run (%#x vs %#x; %s)",
						k.ID, v, seed, r.MemHash, base.MemHash, r.Faults.String())
				}
				if got, want := collisionPairs(r), collisionPairs(base); got != want {
					t.Errorf("%s/%s seed=%d: collision pairs changed under faults: %q vs %q", k.ID, v, seed, got, want)
				}
				injected += r.Faults.Total()
			}
		}
	}
	if injected == 0 {
		t.Fatal("fault campaigns injected nothing across the whole sweep")
	}
}

// TestFaultDeterminism: the same plan must reproduce the exact run —
// cycle count, injection counts, and memory image.
func TestFaultDeterminism(t *testing.T) {
	k := kernels.ByID("C")
	if k == nil {
		t.Fatal("kernel C not registered")
	}
	plan := fault.DefaultPlan(0x5eed)
	plan.NackPerMille = 200
	plan.PageFaultEvery = 60
	a := runOracle(t, k, kernels.UVE, 4*oracleSize(k), &plan, sim.Cycle)
	b := runOracle(t, k, kernels.UVE, 4*oracleSize(k), &plan, sim.Cycle)
	if a.Cycles != b.Cycles || a.Faults != b.Faults || a.MemHash != b.MemHash {
		t.Fatalf("same seed, different runs: cycles %d/%d, faults %v/%v, hash %#x/%#x",
			a.Cycles, b.Cycles, a.Faults, b.Faults, a.MemHash, b.MemHash)
	}
	if a.Faults.Total() == 0 {
		t.Fatal("campaign injected nothing on kernel C")
	}
}

// TestFaultAggressiveSuspend forces a squash-or-pause decision at every
// descriptor dimension boundary plus frequent page faults and NACKs — the
// property test for engine suspend/resume and replay of speculative FIFO
// state at adversarial points.
func TestFaultAggressiveSuspend(t *testing.T) {
	plan := fault.Plan{
		Seed:              1,
		NackPerMille:      200,
		NackRetries:       4,
		NackBackoff:       9,
		PageFaultEvery:    40,
		MaxPageFaults:     16,
		DRAMSpikePerMille: 100,
		DRAMSpikeCycles:   60,
		SuspendEvery:      1, // pause at every non-terminal dim boundary
		SuspendCycles:     25,
	}
	var injected uint64
	for _, k := range kernels.All {
		size := oracleSize(k)
		// Functional baseline: state and collision pairs only. Timing
		// monotonicity under injection is covered by the bench fault
		// campaign's slowdown column, which keeps its cycle-tier baseline.
		base := runOracle(t, k, kernels.UVE, size, nil, sim.Functional)
		r := runOracle(t, k, kernels.UVE, size, &plan, sim.Cycle)
		if r.MemHash != base.MemHash {
			t.Errorf("%s: aggressive plan diverged memory image (%s)", k.ID, r.Faults.String())
		}
		if got, want := collisionPairs(r), collisionPairs(base); got != want {
			t.Errorf("%s: collision pairs changed under aggressive plan: %q vs %q", k.ID, got, want)
		}
		injected += r.Faults.Total()
	}
	if injected == 0 {
		t.Fatal("aggressive plan injected nothing")
	}
}

// TestFaultFreeUnperturbed: passing a nil or disabled plan must leave
// timing byte-identical to an options struct that never mentions faults —
// the hooks stay uninstalled.
func TestFaultFreeUnperturbed(t *testing.T) {
	k := kernels.ByID("A")
	if k == nil {
		t.Fatal("kernel A not registered")
	}
	size := oracleSize(k)
	// This test is about timing, so the baseline must stay on the cycle tier.
	plain := runOracle(t, k, kernels.UVE, size, nil, sim.Cycle)
	zero := fault.Plan{}
	o := sim.DefaultOptions(kernels.UVE)
	o.HashMem = true
	o.Faults = &zero
	r, err := sim.Run(k, kernels.UVE, size, &o)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles != plain.Cycles || r.MemHash != plain.MemHash {
		t.Fatalf("disabled plan perturbed the run: cycles %d vs %d", r.Cycles, plain.Cycles)
	}
}

// TestWatchdogDiagnostic: a run bounded to fewer cycles than it needs must
// return a structured watchdog error carrying the stream dump and the
// trace tail, not hang and not panic through Run.
func TestWatchdogDiagnostic(t *testing.T) {
	k := kernels.ByID("C")
	if k == nil {
		t.Fatal("kernel C not registered")
	}
	// Bound the run to far fewer cycles than the kernel needs, but enough
	// that the streams are configured by the trip point (so the dump has
	// content).
	o := sim.DefaultOptions(kernels.UVE)
	o.MaxCycles = 2000
	o.Trace = trace.NewCollector(64, 0)
	_, err := sim.Run(k, kernels.UVE, 1<<16, &o)
	if err == nil {
		t.Fatal("2000-cycle bound did not trip the watchdog")
	}
	var w *cpu.WatchdogError
	if !errors.As(err, &w) {
		t.Fatalf("watchdog error not structured: %v", err)
	}
	if w.Cycle < 2000 || w.StreamDump == "" {
		t.Fatalf("diagnostic incomplete: cycle=%d dump=%q", w.Cycle, w.StreamDump)
	}
	msg := err.Error()
	for _, want := range []string{"watchdog", "stream table", "trace events"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("diagnostic %q missing %q", msg, want)
		}
	}
}

// TestOptionsCloneNoAlias guards the DefaultOptions aliasing fix: cloning
// must deep-copy pointer fields so post-clone mutation cannot leak.
func TestOptionsCloneNoAlias(t *testing.T) {
	lv := arch.CacheLevel(1)
	plan := fault.DefaultPlan(4)
	o := sim.DefaultOptions(kernels.UVE)
	o.Eng.ForceLevel = &lv
	o.Faults = &plan
	c := o.Clone()
	*o.Eng.ForceLevel = arch.CacheLevel(2)
	o.Faults.Seed = 99
	if *c.Eng.ForceLevel != arch.CacheLevel(1) {
		t.Fatal("Clone shares ForceLevel")
	}
	if c.Faults.Seed != 4 {
		t.Fatal("Clone shares Faults plan")
	}
}
