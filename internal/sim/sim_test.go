package sim

import (
	"testing"

	"repro/internal/kernels"
)

func TestDefaultOptionsVectorWidths(t *testing.T) {
	if o := DefaultOptions(kernels.UVE); o.Core.VecBytes != 64 || o.Eng.VecBytes != 64 {
		t.Fatalf("UVE widths: %d/%d", o.Core.VecBytes, o.Eng.VecBytes)
	}
	if o := DefaultOptions(kernels.NEON); o.Core.VecBytes != 16 {
		t.Fatalf("NEON width: %d", o.Core.VecBytes)
	}
}

func TestRunValidatesAndMeasures(t *testing.T) {
	res, err := Run(kernels.ByID("C"), kernels.UVE, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Committed == 0 || res.IPC() <= 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Kernel != "C" || res.Variant != kernels.UVE || res.Size != 500 {
		t.Fatalf("metadata wrong: %+v", res)
	}
	if res.Eng.ConfigsCompleted != 3 {
		t.Fatalf("saxpy configured %d streams, want 3", res.Eng.ConfigsCompleted)
	}
}

func TestRunDefaultSize(t *testing.T) {
	res, err := Run(kernels.ByID("A"), kernels.NEON, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size != kernels.ByID("A").DefaultSize {
		t.Fatalf("size %d, want kernel default", res.Size)
	}
}

func TestRunSkipCheck(t *testing.T) {
	o := DefaultOptions(kernels.SVE)
	o.SkipCheck = true
	if _, err := Run(kernels.ByID("C"), kernels.SVE, 100, &o); err != nil {
		t.Fatal(err)
	}
}

func TestMustRunPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected a panic for a non-lane-multiple GEMM size")
		}
	}()
	// GEMM requires N to be a multiple of the lane count; 17 is not.
	MustRun(kernels.ByID("D"), kernels.UVE, 17, nil)
}
