package sim

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/mem"
)

// sanitizeSizes keeps the byte-granular shadow tracker cheap; the shapes
// (stream counts, lockstep overlaps, scalar epilogues) do not depend on the
// problem size.
var sanitizeSizes = map[string]int{
	"A": 256, "B": 256, "C": 260, "D": 16, "E": 16, "F": 32, "G": 16,
	"H": 24, "I": 120, "J": 16, "K": 6, "L": 32, "M": 32, "N": 16,
	"O": 16, "P": 16, "Q": 16, "R": 12, "S": 12,
}

// staticExplains reports whether the analyzer's verdicts admit the observed
// collision: at least one pair for the same accessors was NOT proven
// disjoint. A collision whose every matching pair is DepDisjoint is an
// analyzer soundness bug. Accessor pairs the analyzer never formed (runtime
// liveness it did not see) are vacuously admitted.
func staticExplains(deps []lint.DepPair, c engine.Collision) bool {
	matched := false
	for _, d := range deps {
		var hit bool
		if c.StreamB >= 0 {
			hit = (d.First == c.StreamA && d.Second == c.StreamB) ||
				(d.First == c.StreamB && d.Second == c.StreamA)
		} else {
			hit = d.First == c.StreamA && d.Second == -1 && d.SecondPC == c.ScalarPC
		}
		if !hit {
			continue
		}
		matched = true
		if d.Verdict != lint.DepDisjoint {
			return true
		}
	}
	return !matched
}

// TestSanitizerCrossCheck runs every UVE kernel with the runtime stream
// sanitizer on and checks the analyzer's verdicts against the observed
// collisions: the analyzer may be imprecise (unknowns), but it must never
// have proven disjoint a pair the hardware model actually collides.
func TestSanitizerCrossCheck(t *testing.T) {
	totalCollisions := 0
	for _, k := range kernels.All {
		k := k
		t.Run(k.ID+"-"+k.Name, func(t *testing.T) {
			size := sanitizeSizes[k.ID]
			if size == 0 {
				size = 16
			}
			// The cross-check compares accessor pairs, not timing, so the
			// sweep runs on the functional tier: the sanitizer observes the
			// same byte addresses an order of magnitude faster.
			opts := DefaultOptions(kernels.UVE)
			opts.Fidelity = Functional
			opts.Sanitize = SanitizeOn
			var inst *kernels.Instance
			res, err := RunBuilt(k.ID, kernels.UVE, size, &opts, func(h *mem.Hierarchy) *kernels.Instance {
				inst = k.Build(h, kernels.UVE, size)
				return inst
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range res.Collisions {
				totalCollisions++
				if !staticExplains(inst.Deps, c) {
					t.Errorf("collision %s contradicts a proven-disjoint static verdict (deps: %v)", c, inst.Deps)
				} else {
					t.Logf("collision %s admitted by static verdicts", c)
				}
			}
		})
	}
	if totalCollisions == 0 {
		t.Error("no collisions observed across all kernels — the lockstep idioms must collide; is the sanitizer recording?")
	}
}

// TestSanitizerOffByDefault checks that plain runs carry no collision state.
func TestSanitizerOffByDefault(t *testing.T) {
	res, err := Run(kernels.ByID("S"), kernels.UVE, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Collisions != nil {
		t.Fatalf("collisions without Sanitize: %v", res.Collisions)
	}
}
