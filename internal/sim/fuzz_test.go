package sim_test

// Fuzzing rides the functional tier: the fuzzer explores (kernel, variant,
// size) cells orders of magnitude faster than the detailed model allows,
// and each interesting input is cross-checked against one cycle-accurate
// run — a randomized extension of TestFunctionalDifferential's fixed grid.
// `go test` runs the seed corpus as ordinary tests; `go test -fuzz
// FuzzTierDifferential ./internal/sim` explores beyond it.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
	"repro/internal/sim"
)

func FuzzTierDifferential(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint16(64))
	f.Add(uint8(2), uint8(1), uint16(96))
	f.Add(uint8(7), uint8(2), uint16(48))
	f.Add(uint8(12), uint8(0), uint16(33))
	f.Add(uint8(18), uint8(0), uint16(0)) // cubic kernel: keep the cell tiny
	f.Fuzz(func(t *testing.T, ki, vi uint8, rawSize uint16) {
		k := kernels.All[int(ki)%len(kernels.All)]
		v := []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON}[int(vi)%3]
		// Bound the cell so the cycle-tier cross-check stays cheap, and
		// snap it onto the kernel's structural grid — builders reject
		// off-grid sizes (GEMM's lane blocking) instead of rounding.
		size := bench.QuantizeSize(k, 16+int(rawSize)%512)
		fn := runTier(t, k, v, size, sim.Functional)
		cyc := runTier(t, k, v, size, sim.Cycle)
		if fn.MemHash != cyc.MemHash {
			t.Errorf("%s/%s n=%d: final memory diverged (functional %#x vs cycle %#x)",
				k.ID, v, size, fn.MemHash, cyc.MemHash)
		}
		if fn.Committed != cyc.Committed {
			t.Errorf("%s/%s n=%d: committed counts diverged (functional %d vs cycle %d)",
				k.ID, v, size, fn.Committed, cyc.Committed)
		}
		if got, want := collisionPairs(fn), collisionPairs(cyc); got != want {
			t.Errorf("%s/%s n=%d: collision pairs diverged (functional %q vs cycle %q)",
				k.ID, v, size, got, want)
		}
	})
}
