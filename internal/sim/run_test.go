package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/program"
)

// badKernel returns a kernel whose instance halts immediately but whose
// output check always fails — the only way to exercise Run's validation
// error path without a real modeling bug.
func badKernel() *kernels.Kernel {
	return &kernels.Kernel{
		ID: "ZZ", Name: "always-wrong", DefaultSize: 16,
		Build: func(h *mem.Hierarchy, v kernels.Variant, size int) *kernels.Instance {
			p := program.NewBuilder("always-wrong").I(isa.Halt()).MustBuild()
			return &kernels.Instance{Prog: p, Check: func() error { return errors.New("synthetic mismatch") }}
		},
	}
}

func TestRunRejectsNilKernel(t *testing.T) {
	if _, err := Run(nil, kernels.SVE, 16, nil); err == nil {
		t.Fatal("Run(nil kernel) must error, not panic")
	}
}

func TestRunRejectsNegativeSize(t *testing.T) {
	_, err := Run(badKernel(), kernels.SVE, -4, nil)
	if err == nil || !strings.Contains(err.Error(), "invalid size") {
		t.Fatalf("err = %v, want invalid-size error", err)
	}
}

func TestRunDefaultsZeroSize(t *testing.T) {
	k := badKernel()
	res, _ := Run(k, kernels.SVE, 0, nil)
	if res == nil || res.Size != k.DefaultSize {
		t.Fatalf("size-0 run should use DefaultSize %d, got %+v", k.DefaultSize, res)
	}
}

func TestRunReportsCheckFailure(t *testing.T) {
	res, err := Run(badKernel(), kernels.SVE, 16, nil)
	if err == nil || !strings.Contains(err.Error(), "output mismatch") {
		t.Fatalf("err = %v, want output-mismatch error", err)
	}
	if !strings.Contains(err.Error(), "always-wrong/SVE") {
		t.Errorf("error %q should name the kernel and variant", err)
	}
	if res == nil || res.Cycles <= 0 {
		t.Error("failed validation must still return the measured result")
	}
}

func TestRunSkipCheckSuppressesValidation(t *testing.T) {
	opts := DefaultOptions(kernels.SVE)
	opts.SkipCheck = true
	if _, err := Run(badKernel(), kernels.SVE, 16, &opts); err != nil {
		t.Fatalf("SkipCheck run errored: %v", err)
	}
}

func TestRunBuiltLabelsResult(t *testing.T) {
	res, err := RunBuilt("custom-id", kernels.SVE, 8, nil, func(h *mem.Hierarchy) *kernels.Instance {
		p := program.NewBuilder("custom").I(isa.Halt()).MustBuild()
		return &kernels.Instance{Prog: p}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != "custom-id" || res.Size != 8 {
		t.Errorf("result labeled %q n=%d, want custom-id n=8", res.Kernel, res.Size)
	}
}

func TestMustRunPanicsOnCheckFailure(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRun must panic on validation failure")
		}
	}()
	MustRun(badKernel(), kernels.SVE, 16, nil)
}
