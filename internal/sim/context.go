package sim

import (
	"context"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/funcsim"
	"repro/internal/kernels"
	"repro/internal/mem"
)

// CanceledError is the typed error a run fails with when its
// context.Context is canceled or its deadline expires. It wraps the
// context's own error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) both see through it; Cycle
// records how far the detailed machine had simulated when the
// cancellation was observed (0 on the functional tier, whose progress is
// measured in instructions — see Insts).
type CanceledError struct {
	// Cycle is the detailed tier's cycle count at the cancellation poll
	// that observed the context error.
	Cycle int64
	// Insts is the functional tier's interpreted-instruction count at the
	// cancellation poll (0 on the cycle tier).
	Insts int64
	// Err is ctx.Err(): context.Canceled or context.DeadlineExceeded.
	Err error
}

func (e *CanceledError) Error() string {
	switch {
	case e.Cycle > 0:
		return fmt.Sprintf("sim: run canceled at cycle %d: %v", e.Cycle, e.Err)
	case e.Insts > 0:
		return fmt.Sprintf("sim: run canceled after %d instructions: %v", e.Insts, e.Err)
	}
	return fmt.Sprintf("sim: run canceled: %v", e.Err)
}

// Unwrap exposes the context error for errors.Is/errors.As.
func (e *CanceledError) Unwrap() error { return e.Err }

// coreCancel builds the detailed core's batched cancellation check: it
// panics with a *CanceledError the moment the context reports done, and
// runCore's recover converts the panic into an ordinary error return.
// Returns nil for contexts that can never be canceled, so the core's hot
// loop keeps its nil fast path.
func coreCancel(ctx context.Context) func(cycle int64) {
	if ctx.Done() == nil {
		return nil
	}
	return func(cycle int64) {
		if err := ctx.Err(); err != nil {
			panic(&CanceledError{Cycle: cycle, Err: err})
		}
	}
}

// funcCancel builds the functional tier's cancellation check (nil for
// never-canceled contexts).
func funcCancel(ctx context.Context) func(insts int64) error {
	if ctx.Done() == nil {
		return nil
	}
	return func(insts int64) error {
		if err := ctx.Err(); err != nil {
			return &CanceledError{Insts: insts, Err: err}
		}
		return nil
	}
}

// RunContext is Run with cancellation: the context is polled at
// cycle-batch granularity on the detailed tier (instruction-batch on the
// functional tier) and a done context aborts the run with a
// *CanceledError wrapping ctx.Err(). A context that is already done
// aborts before the kernel is built.
func RunContext(ctx context.Context, k *kernels.Kernel, v kernels.Variant, size int, opts *Options) (*Result, error) {
	if k == nil {
		return nil, fmt.Errorf("sim: nil kernel")
	}
	if size < 0 {
		return nil, fmt.Errorf("sim: %s/%s: invalid size %d", k.Name, v, size)
	}
	if size == 0 {
		size = k.DefaultSize
	}
	res, err := RunBuiltContext(ctx, k.ID, v, size, opts, func(h *mem.Hierarchy) *kernels.Instance {
		return k.Build(h, v, size)
	})
	if err != nil {
		return res, fmt.Errorf("%s/%s n=%d: %w", k.Name, v, size, err)
	}
	return res, nil
}

// installCancel arms the core's cancellation check for the run context.
func installCancel(ctx context.Context, core *cpu.Core) {
	if check := coreCancel(ctx); check != nil {
		core.SetCancel(check)
	}
}

// installFuncCancel arms the functional machine's cancellation check.
func installFuncCancel(ctx context.Context, cfg *funcsim.Config) {
	if check := funcCancel(ctx); check != nil {
		cfg.Cancel = check
	}
}
