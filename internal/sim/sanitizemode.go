package sim

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/lint"
)

// SanitizeMode selects how a run decides whether the byte-granular stream
// sanitizer (shadow address tracking) is enabled.
type SanitizeMode int

const (
	// SanitizeOff never tracks (the default; timing experiments).
	SanitizeOff SanitizeMode = iota
	// SanitizeOn always tracks on UVE runs (verification sweeps).
	SanitizeOn
	// SanitizeAuto consults the static safety certificate: when every
	// dependence pair of the program was proved disjoint
	// (lint.SafetyCertificate.CollisionFree), shadow tracking is elided —
	// the sanitizer could only ever observe zero collisions. Uncertified
	// programs and fault-injected runs track exactly like SanitizeOn.
	SanitizeAuto
)

// String returns the CLI spelling of the mode.
func (m SanitizeMode) String() string {
	switch m {
	case SanitizeOff:
		return "off"
	case SanitizeOn:
		return "on"
	case SanitizeAuto:
		return "auto"
	}
	return fmt.Sprintf("SanitizeMode(%d)", int(m))
}

// ParseSanitizeMode parses a CLI spelling. The boolean spellings keep the
// historical -sanitize flag working: true/on enable, false/off disable.
func ParseSanitizeMode(s string) (SanitizeMode, error) {
	switch s {
	case "off", "false", "":
		return SanitizeOff, nil
	case "on", "true":
		return SanitizeOn, nil
	case "auto":
		return SanitizeAuto, nil
	}
	return SanitizeOff, fmt.Errorf("unknown sanitize mode %q (want off, on or auto)", s)
}

// debugForceSanitize is a test-only hook: when set, SanitizeAuto runs the
// sanitizer even on certified programs (while still reporting
// Result.SanitizerElided) so differential tests can assert the certificate
// is truthful — a certified run must observe zero collisions.
var debugForceSanitize = false

// resolveSanitize decides whether shadow tracking runs for this instance,
// and whether it was elided on the strength of a safety certificate. Only
// UVE runs have streams to track; fault campaigns never elide (injection
// reorders engine timing, and the sanitizer is the oracle that proves the
// reordering is architecturally invisible).
func (o *Options) resolveSanitize(v kernels.Variant, inst *kernels.Instance) (enable, elided bool) {
	if v != kernels.UVE {
		return false, false
	}
	switch o.Sanitize {
	case SanitizeOn:
		return true, false
	case SanitizeAuto:
		if o.Faults != nil && o.Faults.Enabled() {
			return true, false
		}
		if cert := lint.Certify(inst.Diags, inst.Deps); cert.CollisionFree {
			return debugForceSanitize, true
		}
		return true, false
	}
	return false, false
}
