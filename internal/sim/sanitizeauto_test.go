package sim

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/mem"
)

// autoOpts is the SanitizeAuto sweep configuration the tests below share:
// functional tier (the certificate decision is tier-independent) with the
// final memory image hashed for differential comparison.
func autoOpts() Options {
	o := DefaultOptions(kernels.UVE)
	o.Fidelity = Functional
	o.Sanitize = SanitizeAuto
	o.HashMem = true
	return o
}

// TestSanitizeAutoDifferential is the elision soundness oracle: for every
// kernel whose certificate proves all pairs disjoint, the elided run and a
// forced-sanitizer run (test-only hook) must produce byte-identical final
// memory, and the forced run must observe zero collisions — the certificate
// said there was nothing to see, and the sanitizer agrees.
func TestSanitizeAutoDifferential(t *testing.T) {
	certified := 0
	for _, k := range kernels.All {
		k := k
		t.Run(k.ID+"-"+k.Name, func(t *testing.T) {
			size := sanitizeSizes[k.ID]
			if size == 0 {
				size = 16
			}
			opts := autoOpts()
			var inst *kernels.Instance
			res, err := RunBuilt(k.ID, kernels.UVE, size, &opts, func(h *mem.Hierarchy) *kernels.Instance {
				inst = k.Build(h, kernels.UVE, size)
				return inst
			})
			if err != nil {
				t.Fatal(err)
			}
			cert := lint.Certify(inst.Diags, inst.Deps)
			if res.SanitizerElided != cert.CollisionFree {
				t.Fatalf("SanitizerElided=%v but certificate CollisionFree=%v (%+v)",
					res.SanitizerElided, cert.CollisionFree, cert)
			}
			if !cert.CollisionFree {
				t.Skipf("not certified (%+v): elision not attempted", cert)
			}
			certified++
			if len(res.Collisions) != 0 {
				t.Fatalf("elided run recorded collisions: %v", res.Collisions)
			}

			// Forced run: same mode, sanitizer actually tracking.
			debugForceSanitize = true
			defer func() { debugForceSanitize = false }()
			opts2 := autoOpts()
			forced, err := RunBuilt(k.ID, kernels.UVE, size, &opts2, func(h *mem.Hierarchy) *kernels.Instance {
				return k.Build(h, kernels.UVE, size)
			})
			if err != nil {
				t.Fatal(err)
			}
			if !forced.SanitizerElided {
				t.Fatalf("forced run lost the elision verdict")
			}
			if len(forced.Collisions) != 0 {
				t.Errorf("certificate proved all pairs disjoint but the sanitizer observed: %v", forced.Collisions)
			}
			if forced.MemHash != res.MemHash {
				t.Errorf("final memory differs: elided %#x vs sanitized %#x", res.MemHash, forced.MemHash)
			}
		})
	}
	if certified == 0 {
		t.Error("no kernel certified collision-free — the prover should certify at least HACCmk/UVE")
	}
}

// TestSanitizeAutoUncertified checks the fallback: when the prover is off
// and a kernel's pairs stay unknown, SanitizeAuto must keep shadow tracking
// on (no elision without a certificate).
func TestSanitizeAutoUncertified(t *testing.T) {
	defer func(old bool) { kernels.ProveDeps = old }(kernels.ProveDeps)
	kernels.ProveDeps = false

	k := kernels.ByID("L") // HACCmk: scalar epilogue stores stay unknown unproven
	if k == nil || k.Name != "HACCmk" {
		for _, cand := range kernels.All {
			if cand.Name == "HACCmk" {
				k = cand
			}
		}
	}
	if k == nil {
		t.Fatal("HACCmk kernel not registered")
	}
	opts := autoOpts()
	var inst *kernels.Instance
	res, err := RunBuilt(k.ID, kernels.UVE, sanitizeSizes[k.ID], &opts, func(h *mem.Hierarchy) *kernels.Instance {
		inst = k.Build(h, kernels.UVE, sanitizeSizes[k.ID])
		return inst
	})
	if err != nil {
		t.Fatal(err)
	}
	if cert := lint.Certify(inst.Diags, inst.Deps); cert.CollisionFree {
		t.Fatalf("HACCmk certified with the prover off (%+v); the fallback test needs an uncertified program", cert)
	}
	if res.SanitizerElided {
		t.Fatal("uncertified program elided the sanitizer")
	}
}

// TestSanitizeAutoFaultsNeverElide checks that fault-injection campaigns
// keep the sanitizer on even for certified programs: injection perturbs
// engine timing, and the sanitizer is the oracle that shows the
// perturbation is architecturally invisible.
func TestSanitizeAutoFaultsNeverElide(t *testing.T) {
	k := kernels.ByID("A") // Memcpy: disjoint streams, certified
	o := DefaultOptions(kernels.UVE)
	o.Sanitize = SanitizeAuto
	plan := fault.DefaultPlan(7)
	o.Faults = &plan
	res, err := Run(k, kernels.UVE, 256, &o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SanitizerElided {
		t.Fatal("fault-injected run elided the sanitizer")
	}
	// And without faults the same kernel does elide, so the fault gate is
	// what made the difference.
	o2 := DefaultOptions(kernels.UVE)
	o2.Sanitize = SanitizeAuto
	res2, err := Run(k, kernels.UVE, 256, &o2)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.SanitizerElided {
		t.Skip("saxpy not certified at this size; fault gate still verified above")
	}
}

// TestSanitizeAutoNonUVE checks the baselines: no streams, nothing to
// track, never an elision claim.
func TestSanitizeAutoNonUVE(t *testing.T) {
	o := DefaultOptions(kernels.SVE)
	o.Fidelity = Functional
	o.Sanitize = SanitizeAuto
	res, err := Run(kernels.ByID("C"), kernels.SVE, 256, &o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SanitizerElided || res.Collisions != nil {
		t.Fatalf("SVE run: elided=%v collisions=%v", res.SanitizerElided, res.Collisions)
	}
}
