package absint

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/program"
)

const w = arch.W4

func mustBuild(t *testing.T, b *program.Builder) *program.Program {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

// --- lattice property tests ---

// randIv draws an interval biased toward the boundary regions where the
// modular arithmetic is interesting.
func randIv(rng *rand.Rand) Interval {
	pick := func() uint64 {
		switch rng.Intn(5) {
		case 0:
			return uint64(rng.Intn(64))
		case 1:
			return ^uint64(0) - uint64(rng.Intn(64))
		case 2:
			return 1<<63 - 1 - uint64(rng.Intn(4))
		case 3:
			return 1<<63 + uint64(rng.Intn(4))
		default:
			return rng.Uint64()
		}
	}
	a, b := pick(), pick()
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// sample picks a value inside iv, preferring the endpoints.
func sample(rng *rand.Rand, iv Interval) uint64 {
	switch rng.Intn(3) {
	case 0:
		return iv.Lo
	case 1:
		return iv.Hi
	}
	span := iv.Hi - iv.Lo
	if span == ^uint64(0) {
		return rng.Uint64()
	}
	return iv.Lo + rng.Uint64()%(span+1)
}

var propOps = []isa.Op{
	isa.OpLi, isa.OpMv, isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv,
	isa.OpRem, isa.OpAddI, isa.OpSllI, isa.OpSrlI, isa.OpAndI,
	isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt, isa.OpSltI,
}

// TestEvalOpSoundness is the lattice property test: for random intervals
// and random concrete points inside them, the abstract result contains the
// concrete one.
func TestEvalOpSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		op := propOps[rng.Intn(len(propOps))]
		a, b := randIv(rng), randIv(rng)
		imm := int64(rng.Uint64())
		if rng.Intn(2) == 0 {
			imm = int64(rng.Intn(128)) - 64
		}
		av, bv := sample(rng, a), sample(rng, b)
		got := isa.EvalInt(op, av, bv, imm)
		iv := EvalOp(op, a, b, imm)
		if !iv.Contains(got) {
			t.Fatalf("%s: a=%v(%d) b=%v(%d) imm=%d: concrete %d outside %v",
				op.Name(), a, av, b, bv, imm, got, iv)
		}
	}
}

func TestIntervalModularAdd(t *testing.T) {
	// Wrapping range stays precise when the span fits.
	got := add(Interval{^uint64(0) - 1, ^uint64(0)}, Point(3))
	want := Interval{1, 2}
	if got != want {
		t.Fatalf("wrap add: got %v want %v", got, want)
	}
	// addi r, r, -1 on a point.
	if got := EvalOp(isa.OpAddI, Point(5), Top(), -1); got != Point(4) {
		t.Fatalf("addi -1: got %v", got)
	}
	// Span overflow degrades to Top.
	if got := add(Interval{0, 1 << 63}, Interval{0, 1 << 63}); !got.IsTop() {
		t.Fatalf("span overflow: got %v", got)
	}
}

func TestIntervalLattice(t *testing.T) {
	a, b := Interval{2, 5}, Interval{4, 9}
	if u := a.Union(b); u != (Interval{2, 9}) {
		t.Fatalf("union: %v", u)
	}
	if iv, ok := a.Intersect(b); !ok || iv != (Interval{4, 5}) {
		t.Fatalf("intersect: %v %v", iv, ok)
	}
	if _, ok := Point(1).Intersect(Point(2)); ok {
		t.Fatal("disjoint points intersected")
	}
	if !Top().Contains(0) || !Top().Contains(^uint64(0)) {
		t.Fatal("top misses values")
	}
}

// --- straight-line and branch-refinement behavior ---

func TestStraightLine(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("straight").I(
		isa.Li(isa.X(1), 10),
		isa.AddI(isa.X(2), isa.X(1), 5),
		isa.Mul(isa.X(3), isa.X(2), isa.X(2)),
		isa.SllI(isa.X(4), isa.X(1), 3),
		isa.Halt(),
	))
	r := Analyze(p, Options{})
	halt := p.Len() - 1
	for reg, want := range map[int]uint64{1: 10, 2: 15, 3: 225, 4: 80} {
		if got := r.At(halt, reg); got != Point(want) {
			t.Errorf("x%d: got %v want %d", reg, got, want)
		}
	}
	if ex, ok := r.MaxExec(halt); !ok || ex != 1 {
		t.Errorf("straight-line MaxExec: %d %v", ex, ok)
	}
}

func TestBranchRefinement(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("refine").
		I(isa.AndI(isa.X(1), isa.X(9), 15)). // x1 in [0,15]
		I(isa.Blt(isa.X(1), isa.X(2), "less")).
		I(isa.Halt()). // fallthrough: x1 >= 10
		Label("less").
		I(isa.Halt())) // taken: x1 < 10
	r := Analyze(p, Options{Entry: map[int]uint64{2: 10}})
	if got := r.At(2, 1); got != (Interval{10, 15}) {
		t.Errorf("ge edge: %v", got)
	}
	if got := r.At(3, 1); got != (Interval{0, 9}) {
		t.Errorf("lt edge: %v", got)
	}
}

func TestDeadEdge(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("dead").
		I(isa.Li(isa.X(1), 3)).
		I(isa.Beq(isa.X(1), isa.X(2), "eq")).
		I(isa.Halt()).
		Label("eq").
		I(isa.Halt()))
	r := Analyze(p, Options{Entry: map[int]uint64{2: 4}})
	if r.Reachable(3) {
		t.Error("3 == 4 edge should be dead")
	}
	if !r.Reachable(2) {
		t.Error("fallthrough must stay live")
	}
}

// --- counted scalar loop (Case B) ---

func TestCountedLoop(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("count").
		I(isa.Li(isa.X(1), 0)).
		Label("loop").
		I(isa.AddI(isa.X(1), isa.X(1), 1)).
		I(isa.Blt(isa.X(1), isa.X(2), "loop")).
		I(isa.Halt()))
	r := Analyze(p, Options{Entry: map[int]uint64{2: 100}})
	if got := r.At(3, 1); got != Point(100) {
		t.Errorf("exit value: got %v want 100", got)
	}
	trip, ok := r.LoopTrip(1)
	if !ok || trip < 100 || trip > 105 {
		t.Errorf("trip: %d %v", trip, ok)
	}
	if ex, ok := r.MaxExec(1); !ok || ex < 100 || ex > 105 {
		t.Errorf("MaxExec(body): %d %v", ex, ok)
	}
}

// --- whilelt/b.first loop (SVE shape) ---

func TestWhileltLoop(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("sve").
		I(isa.Li(isa.X(1), 0)).
		I(isa.Whilelt(w, isa.P(1), isa.X(1), isa.X(2))).
		Label("loop").
		I(isa.IncVL(w, isa.X(1), isa.X(1))).
		I(isa.Whilelt(w, isa.P(1), isa.X(1), isa.X(2))).
		I(isa.BFirst(isa.P(1), "loop")).
		I(isa.Halt()))
	r := Analyze(p, Options{Entry: map[int]uint64{2: 100}, VecBytes: 64})
	halt := p.Len() - 1
	got := r.At(halt, 1)
	if got.Lo != 100 {
		t.Errorf("exit lower bound: %v (want Lo=100)", got)
	}
	maxStep := uint64(arch.LanesFor(64, w))
	if got.Hi > 99+maxStep {
		t.Errorf("exit upper bound: %v (want Hi <= %d)", got, 99+maxStep)
	}
	if trip, ok := r.LoopTrip(2); !ok || trip < 100/maxStep || trip > 102 {
		t.Errorf("trip: %d %v", trip, ok)
	}
}

// --- stream-latched loops (Case A outer + Case C inner, HACCmk shape) ---

func streamLoop(t *testing.T, rows, n int, mutate func(*program.Builder) *program.Builder) *program.Program {
	t.Helper()
	d := descriptor.New(0x1000, w, descriptor.Load).
		Dim(0, int64(n), 1).Dim(0, int64(rows), 0).MustBuild()
	b := program.NewBuilder("stream").
		ConfigStream(0, d).
		I(isa.Li(isa.X(5), 0)).
		Label("outer").
		I(isa.SllI(isa.X(13), isa.X(5), 2)).
		Label("inner").
		I(isa.VMove(w, isa.V(4), isa.V(0))).
		I(isa.SBDimNotEnd(0, 0, "inner")).
		I(isa.AddI(isa.X(5), isa.X(5), 1)).
		I(isa.SBNotEnd(0, "outer"))
	if mutate != nil {
		b = mutate(b)
	}
	return mustBuild(t, b.I(isa.Halt()))
}

func TestStreamTripAndInduction(t *testing.T) {
	const rows, n = 40, 7
	p := streamLoop(t, rows, n, nil)
	r := Analyze(p, Options{})
	outer := p.Labels["outer"]
	inner := p.Labels["inner"]
	addi := inner + 2

	if trip, ok := r.LoopTrip(outer); !ok || trip != rows {
		t.Errorf("outer trip: %d %v (want %d)", trip, ok, rows)
	}
	// The induction clamp proves the loop counter's range.
	if got := r.At(addi, 5); got != (Interval{0, rows - 1}) {
		t.Errorf("induction clamp: %v want [0,%d]", got, rows-1)
	}
	if ex, ok := r.MaxExec(outer); !ok || ex != rows {
		t.Errorf("outer MaxExec: %d %v", ex, ok)
	}
	// Inner chunk loop: one advance per iteration, lanes unknown => one
	// element per chunk, n chunks per row.
	if ex, ok := r.MaxExec(inner); !ok || ex != rows*n {
		t.Errorf("inner MaxExec: %d %v (want %d)", ex, ok, rows*n)
	}
	if _, ok := r.MaxExec(p.Len() - 1); !ok {
		t.Error("halt MaxExec unknown")
	}
}

func TestStreamTripWithLanes(t *testing.T) {
	const rows, n = 4, 10
	p := streamLoop(t, rows, n, nil)
	r := Analyze(p, Options{VecBytes: 16}) // 4 lanes at W4
	inner := p.Labels["inner"]
	if ex, ok := r.MaxExec(inner); !ok || ex != rows*3 { // ceil(10/4)=3 chunks
		t.Errorf("inner MaxExec with lanes: %d %v (want %d)", ex, ok, rows*3)
	}
}

// TestWholeStreamTrip: an SBNotEnd latch without the dimension-0 crossing
// discipline Case A wants still gets a bound — the stream's total chunk
// count — because every iteration strictly advances the stream and the
// stream holds finitely many chunks.
func TestWholeStreamTrip(t *testing.T) {
	const rows, n = 8, 4
	d := descriptor.New(0x1000, w, descriptor.Load).
		Dim(0, int64(n), 1).Dim(0, int64(rows), 0).MustBuild()
	p := mustBuild(t, program.NewBuilder("nocross").
		ConfigStream(0, d).
		Label("outer").
		I(isa.VMove(w, isa.V(4), isa.V(0))).
		I(isa.SBNotEnd(0, "outer")).
		I(isa.Halt()))
	outer := p.Labels["outer"]

	// Lanes unknown: one element per chunk, rows*n chunks total.
	r := Analyze(p, Options{})
	if trip, ok := r.LoopTrip(outer); !ok || trip != rows*n {
		t.Errorf("whole-stream trip: %d %v (want %d)", trip, ok, rows*n)
	}
	// Fixed vector length: ceil(4/4)=1 chunk per row.
	r = Analyze(p, Options{VecBytes: 16}) // 4 lanes at W4
	if trip, ok := r.LoopTrip(outer); !ok || trip != rows {
		t.Errorf("whole-stream trip with lanes: %d %v (want %d)", trip, ok, rows)
	}
}

// --- negative corpus: anything impure must block trip proofs ---

func TestNegativeNoTrip(t *testing.T) {
	const rows, n = 8, 4
	cases := []struct {
		name   string
		mutate func(*program.Builder) *program.Builder
		build  func(t *testing.T) *program.Program
	}{
		{name: "suspended stream", mutate: func(b *program.Builder) *program.Builder {
			return b.I(isa.SSuspend(0))
		}},
		{name: "reconfigured stream", mutate: func(b *program.Builder) *program.Builder {
			d := descriptor.New(0x9000, w, descriptor.Load).Linear(int64(n), 1).MustBuild()
			return b.ConfigStream(0, d)
		}},
		{name: "modifier descriptor", build: func(t *testing.T) *program.Program {
			d := descriptor.New(0x1000, w, descriptor.Load).
				Dim(0, int64(n), 1).
				Dim(0, int64(rows), 0).
				Mod(descriptor.TargetOffset, descriptor.Add, 4, 0).
				MustBuild()
			return mustBuild(t, program.NewBuilder("mod").
				ConfigStream(0, d).
				Label("outer").
				I(isa.SllI(isa.X(13), isa.X(5), 2)).
				Label("inner").
				I(isa.VMove(w, isa.V(4), isa.V(0))).
				I(isa.SBDimNotEnd(0, 0, "inner")).
				I(isa.SBNotEnd(0, "outer")).
				I(isa.Halt()))
		}},
		{name: "conditional advance", build: func(t *testing.T) *program.Program {
			d := descriptor.New(0x1000, w, descriptor.Load).
				Dim(0, int64(n), 1).Dim(0, int64(rows), 0).MustBuild()
			return mustBuild(t, program.NewBuilder("condadv").
				ConfigStream(0, d).
				Label("outer").
				I(isa.Beq(isa.X(3), isa.X(4), "skip")).
				Label("inner").
				I(isa.VMove(w, isa.V(4), isa.V(0))).
				I(isa.SBDimNotEnd(0, 0, "inner")).
				Label("skip").
				I(isa.SBNotEnd(0, "outer")).
				I(isa.Halt()))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var p *program.Program
			if tc.build != nil {
				p = tc.build(t)
			} else {
				p = streamLoop(t, rows, n, tc.mutate)
			}
			r := Analyze(p, Options{})
			for pc := 0; pc < p.Len(); pc++ {
				if p.At(pc).Op != isa.OpSBNotEnd {
					continue
				}
				h := p.At(pc).Target
				if trip, ok := r.LoopTrip(h); ok {
					t.Errorf("unexpected trip bound %d at header %d", trip, h)
				}
			}
		})
	}
}

// TestIrreducible: a jump into the middle of a loop disables exec bounds
// but the analysis still terminates with sound (Top-ish) states.
func TestIrreducible(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("irr").
		I(isa.J("mid")).
		Label("head").
		I(isa.AddI(isa.X(3), isa.X(3), 2)).
		Label("mid").
		I(isa.AddI(isa.X(1), isa.X(1), 1)).
		I(isa.Blt(isa.X(1), isa.X(2), "head")).
		I(isa.Halt()))
	r := Analyze(p, Options{Entry: map[int]uint64{2: 10}})
	if _, ok := r.MaxExec(2); ok {
		t.Error("irreducible CFG must not claim exec bounds")
	}
	// x1 goes 1,2,...,10: any sound state contains those.
	got := r.At(3, 1)
	for v := uint64(1); v <= 10; v++ {
		if !got.Contains(v) {
			t.Fatalf("unsound x1 interval %v misses %d", got, v)
		}
	}
}

// TestDataDependentLoop: a load-carried bound cannot be counted, but the
// analysis terminates and the exit state is sound.
func TestDataDependentLoop(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("datadep").
		I(isa.Li(isa.X(1), 0)).
		Label("loop").
		I(isa.AddI(isa.X(1), isa.X(1), 1)).
		I(isa.Load(arch.W8, isa.X(4), isa.X(9), 0)).
		I(isa.Blt(isa.X(1), isa.X(4), "loop")).
		I(isa.Halt()))
	r := Analyze(p, Options{})
	if trip, ok := r.LoopTrip(1); ok {
		t.Errorf("data-dependent trip claimed: %d", trip)
	}
	got := r.At(4, 1)
	for _, v := range []uint64{1, 5, 1 << 40} {
		if !got.Contains(v) {
			t.Fatalf("exit interval %v misses %d", got, v)
		}
	}
}

// TestWhileltFactKilled: redefining the tracked register invalidates the
// whilelt fact, so no refinement (and no unsound trip) may survive.
func TestWhileltFactKilled(t *testing.T) {
	p := mustBuild(t, program.NewBuilder("factkill").
		I(isa.Li(isa.X(1), 0)).
		Label("loop").
		I(isa.Whilelt(w, isa.P(1), isa.X(1), isa.X(2))).
		I(isa.Li(isa.X(1), 0)). // resets the induction register
		I(isa.BFirst(isa.P(1), "loop")).
		I(isa.Halt()))
	r := Analyze(p, Options{Entry: map[int]uint64{2: 5}})
	if trip, ok := r.LoopTrip(1); ok {
		t.Errorf("trip claimed for a non-terminating loop: %d", trip)
	}
	_ = r
}

func TestNilResult(t *testing.T) {
	var r *Result
	if !r.At(0, 1).IsTop() {
		t.Error("nil At must be Top")
	}
	if r.Reachable(0) {
		t.Error("nil Reachable must be false")
	}
	if _, ok := r.MaxExec(0); ok {
		t.Error("nil MaxExec must be unknown")
	}
}
