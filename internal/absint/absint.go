package absint

import (
	"math/bits"
	"sort"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/program"
)

// Options configures one analysis run.
type Options struct {
	// Entry presets integer registers with known concrete entry values
	// (kernel arguments). Every other register starts at Top.
	Entry map[int]uint64
	// VecBytes is the physical vector width when known; it tightens
	// lane-dependent bounds (ss.setvl/incvl results, chunk-level trip
	// counts). Zero assumes the architected maximum, which is sound
	// because effective widths only shrink.
	VecBytes int
}

// widenDelay is the number of times a header in-state register may grow
// before it is widened straight to Top. Branch refinement usually closes
// loops well before this; the jump guarantees termination regardless.
const widenDelay = 16

// stepBudget caps fixpoint edge-merge operations per program point. On
// overrun the analysis degrades every reachable point to all-Top (sound,
// just useless) instead of spinning.
const stepBudget = 1 << 13

// predFact records what a whilelt told us about a predicate register:
// the predicate has an active first lane iff (signed) reg < some value
// drawn from bound. The fact dies when reg or the predicate is redefined.
type predFact struct {
	valid bool
	reg   uint8
	bound Interval
}

// state is the abstract machine state at one program point: one interval
// per integer register plus per-predicate whilelt facts. live marks
// reachability; the zero state is unreachable-bottom.
type state struct {
	live  bool
	regs  [isa.NumIntRegs]Interval
	facts [isa.NumPredRegs]predFact
}

func (s *state) reg(r isa.Reg) Interval {
	if r.Class == isa.ClassInt {
		return s.regs[r.N]
	}
	return Top()
}

// setReg writes an interval, keeping x0 hardwired to zero.
func (s *state) setReg(n uint8, iv Interval) {
	if n != 0 {
		s.regs[n] = iv
	}
}

// killFactsOn invalidates every whilelt fact whose tracked register is
// redefined.
func (s *state) killFactsOn(n uint8) {
	for i := range s.facts {
		if s.facts[i].valid && s.facts[i].reg == n {
			s.facts[i].valid = false
		}
	}
}

// mergeState joins src into dst (plain interval union, fact agreement).
// It reports whether dst changed.
func mergeState(dst *state, src *state) bool {
	if !src.live {
		return false
	}
	if !dst.live {
		*dst = *src
		return true
	}
	changed := false
	for i := range dst.regs {
		u := dst.regs[i].Union(src.regs[i])
		if u != dst.regs[i] {
			dst.regs[i] = u
			changed = true
		}
	}
	for i := range dst.facts {
		m := mergeFact(dst.facts[i], src.facts[i])
		if m != dst.facts[i] {
			dst.facts[i] = m
			changed = true
		}
	}
	return changed
}

// mergeFact joins two predicate facts: they survive a merge only when both
// sides constrain the same register (bounds union).
func mergeFact(a, b predFact) predFact {
	if !a.valid || !b.valid || a.reg != b.reg {
		return predFact{}
	}
	return predFact{valid: true, reg: a.reg, bound: a.bound.Union(b.bound)}
}

// loopInfo is one natural loop (loops sharing a header are merged).
type loopInfo struct {
	header  int
	latches []int
	body    map[int]bool
	parent  int // index into loops, -1 for outermost

	// trip, when non-zero, bounds body executions per loop entry.
	trip uint64

	// wellNested: every entry edge into the header comes from the parent
	// loop's body (or from outside any loop for outermost loops), and the
	// body has no side entrances. Required for MaxExec products.
	wellNested bool

	// entryPreds counts distinct predecessors of the header outside the
	// body; each can trigger one entry per parent iteration.
	entryPreds uint64
}

// cfgSite is one complete ss.cfg run for a stream whose descriptor
// rebuilt successfully.
type cfgSite struct {
	endPC int
	desc  *descriptor.Descriptor
}

// Result holds the fixpoint. The zero/nil Result answers Top/unknown.
type Result struct {
	n         int
	in        []state
	loops     []loopInfo
	loopOf    []int
	reducible bool
}

type analysis struct {
	p     *program.Program
	o     Options
	n     int
	insts []isa.Inst
	succs [][]int
	preds [][]int

	isBack    map[[2]int]bool
	widenAt   []bool
	reducible bool

	loops  []loopInfo
	loopOf []int

	// Stream facts for trip bounds.
	sites  map[int][]cfgSite // stream → completed config runs
	ctl    map[int]bool      // stream named by suspend/resume/stop/force
	anyVL  bool              // program contains ss.setvl
	kindOf map[int]descriptor.Kind

	// Case-A induction clamps: header pc → reg → max per-iteration step.
	induction map[int]map[int]uint64
	tripAt    map[int]uint64 // header pc → Case-A trip, for clamping

	in       []state
	inPre    []state
	widenCnt [][isa.NumIntRegs]uint8

	// thresholds are the landing sites for widening: program constants
	// (immediates, entry values) and their neighbors. Sorted ascending.
	thresholds []uint64
}

// Analyze runs the abstract interpreter to fixpoint.
func Analyze(p *program.Program, o Options) *Result {
	n := p.Len()
	a := &analysis{p: p, o: o, n: n}
	if n == 0 {
		return &Result{n: 0, reducible: true}
	}
	a.insts = make([]isa.Inst, n)
	for pc := 0; pc < n; pc++ {
		a.insts[pc] = p.At(pc)
	}
	a.buildCFG()
	a.findLoops()
	a.collectStreams()
	a.caseATrips()
	a.collectThresholds()
	a.fixpoint()
	a.scalarTrips()
	return &Result{n: n, in: a.in, loops: a.loops, loopOf: a.loopOf, reducible: a.reducible}
}

// --- CFG construction ---

func (a *analysis) buildCFG() {
	a.succs = make([][]int, a.n)
	a.preds = make([][]int, a.n)
	for pc := 0; pc < a.n; pc++ {
		in := &a.insts[pc]
		var out []int
		switch {
		case in.Op == isa.OpHalt:
		case in.Op == isa.OpJ:
			out = []int{in.Target}
		case in.Op.IsBranch(): // conditional: taken edge first
			out = []int{in.Target, pc + 1}
		default:
			out = []int{pc + 1}
		}
		var kept []int
		for _, s := range out {
			if s >= 0 && s < a.n {
				kept = append(kept, s)
			}
		}
		a.succs[pc] = kept
		for _, s := range kept {
			a.preds[s] = append(a.preds[s], pc)
		}
	}
}

// findLoops runs a DFS for retreating edges, iterative dominators, and
// natural-loop bodies; irreducible graphs keep widening but disable trip
// bounds and induction clamps.
func (a *analysis) findLoops() {
	a.isBack = map[[2]int]bool{}
	a.widenAt = make([]bool, a.n)
	a.loopOf = make([]int, a.n)
	for i := range a.loopOf {
		a.loopOf[i] = -1
	}

	// Iterative DFS for retreating edges (edge into a gray node).
	// Colors: 0 white, 1 gray (on stack), 2 black.
	color := make([]byte, a.n)
	var retreat [][2]int
	type frame struct{ pc, next int }
	frames := []frame{{0, 0}}
	color[0] = 1
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		if f.next < len(a.succs[f.pc]) {
			s := a.succs[f.pc][f.next]
			f.next++
			switch color[s] {
			case 0:
				color[s] = 1
				frames = append(frames, frame{s, 0})
			case 1:
				retreat = append(retreat, [2]int{f.pc, s})
			}
			continue
		}
		color[f.pc] = 2
		frames = frames[:len(frames)-1]
	}

	// Iterative dominators over DFS-reachable nodes (bitsets).
	words := (a.n + 63) / 64
	full := make([]uint64, words)
	for pc := 0; pc < a.n; pc++ {
		if color[pc] != 0 {
			full[pc/64] |= 1 << uint(pc%64)
		}
	}
	dom := make([][]uint64, a.n)
	for pc := 0; pc < a.n; pc++ {
		if color[pc] == 0 {
			continue
		}
		dom[pc] = make([]uint64, words)
		if pc == 0 {
			dom[pc][0] = 1
		} else {
			copy(dom[pc], full)
		}
	}
	changed := true
	for changed {
		changed = false
		for pc := 0; pc < a.n; pc++ {
			if color[pc] == 0 || pc == 0 {
				continue
			}
			tmp := make([]uint64, words)
			copy(tmp, full)
			any := false
			for _, pr := range a.preds[pc] {
				if dom[pr] == nil {
					continue
				}
				any = true
				for w := range tmp {
					tmp[w] &= dom[pr][w]
				}
			}
			if !any {
				continue
			}
			tmp[pc/64] |= 1 << uint(pc%64)
			for w := range tmp {
				if tmp[w] != dom[pc][w] {
					dom[pc] = tmp
					changed = true
					break
				}
			}
		}
	}
	dominates := func(d, v int) bool {
		return dom[v] != nil && dom[v][d/64]&(1<<uint(d%64)) != 0
	}

	a.reducible = true
	byHeader := map[int]*loopInfo{}
	for _, e := range retreat {
		a.widenAt[e[1]] = true
		if !dominates(e[1], e[0]) {
			a.reducible = false
			continue
		}
		a.isBack[e] = true
		li := byHeader[e[1]]
		if li == nil {
			li = &loopInfo{header: e[1], body: map[int]bool{e[1]: true}, parent: -1}
			byHeader[e[1]] = li
		}
		li.latches = append(li.latches, e[0])
		// Natural loop: nodes reaching the latch without passing the header.
		work := []int{e[0]}
		for len(work) > 0 {
			v := work[len(work)-1]
			work = work[:len(work)-1]
			if li.body[v] {
				continue
			}
			li.body[v] = true
			for _, pr := range a.preds[v] {
				if color[pr] != 0 && !li.body[pr] {
					work = append(work, pr)
				}
			}
		}
	}
	if !a.reducible {
		a.isBack = map[[2]int]bool{}
		return
	}

	for _, li := range byHeader {
		a.loops = append(a.loops, *li)
	}
	// Sort by body size ascending so loopOf finds the innermost first.
	for i := 1; i < len(a.loops); i++ {
		for j := i; j > 0 && len(a.loops[j].body) < len(a.loops[j-1].body); j-- {
			a.loops[j], a.loops[j-1] = a.loops[j-1], a.loops[j]
		}
	}
	for pc := 0; pc < a.n; pc++ {
		for i := range a.loops {
			if a.loops[i].body[pc] {
				a.loopOf[pc] = i
				break
			}
		}
	}
	for i := range a.loops {
		for j := range a.loops {
			if i == j || len(a.loops[j].body) < len(a.loops[i].body) {
				continue
			}
			if j != i && a.loops[j].body[a.loops[i].header] && a.loops[j].header != a.loops[i].header {
				a.loops[i].parent = j
				break
			}
		}
	}
	for i := range a.loops {
		li := &a.loops[i]
		li.wellNested = true
		seen := map[int]bool{}
		for _, pr := range a.preds[li.header] {
			if li.body[pr] || color[pr] == 0 {
				continue
			}
			if !seen[pr] {
				seen[pr] = true
				li.entryPreds++
			}
			// Entry preds must live exactly in the parent loop.
			if a.loopOf[pr] != li.parent {
				li.wellNested = false
			}
		}
		if li.entryPreds == 0 {
			li.entryPreds = 1
		}
		// No side entrances: body nodes other than the header may only be
		// reached from inside the body.
		for v := range li.body {
			if v == li.header {
				continue
			}
			for _, pr := range a.preds[v] {
				if color[pr] != 0 && !li.body[pr] {
					li.wellNested = false
				}
			}
		}
	}
}

// --- stream configuration facts ---

func (a *analysis) collectStreams() {
	a.sites = map[int][]cfgSite{}
	a.ctl = map[int]bool{}
	a.kindOf = map[int]descriptor.Kind{}
	open := map[int][]*isa.StreamCfgPart{}
	for pc := 0; pc < a.n; pc++ {
		in := &a.insts[pc]
		switch in.Op {
		case isa.OpSCfg:
			cp := in.Cfg
			if cp == nil {
				continue
			}
			if cp.Start {
				open[cp.Stream] = open[cp.Stream][:0]
			}
			open[cp.Stream] = append(open[cp.Stream], cp)
			if cp.End {
				if d, err := isa.RebuildDescriptor(open[cp.Stream]); err == nil {
					a.sites[cp.Stream] = append(a.sites[cp.Stream], cfgSite{endPC: pc, desc: d})
					a.kindOf[cp.Stream] = d.Kind
				} else {
					// Unparseable config: poison the stream.
					a.ctl[cp.Stream] = true
				}
				delete(open, cp.Stream)
			}
		case isa.OpSSuspend, isa.OpSResume, isa.OpSStop, isa.OpSForce:
			a.ctl[int(in.Dst.N)] = true
		case isa.OpSSetVL:
			a.anyVL = true
		}
	}
}

// streamEligible reports whether stream u has exactly one affine
// configuration, never touched by stream control, and returns it.
func (a *analysis) streamEligible(u int) (cfgSite, bool) {
	if a.ctl[u] || len(a.sites[u]) != 1 {
		return cfgSite{}, false
	}
	s := a.sites[u][0]
	if len(s.desc.Static) != 0 || len(s.desc.Indirect) != 0 {
		return cfgSite{}, false
	}
	for _, d := range s.desc.Dims {
		if d.Size < 1 {
			return cfgSite{}, false
		}
	}
	return s, true
}

// advancesStream reports whether executing pc moves stream u's position:
// a load stream consumed as a vector source, or a store stream produced
// as a vector destination (mirrors funcsim's consume/produce rule).
func (a *analysis) advancesStream(pc, u int) bool {
	in := &a.insts[pc]
	if !regOperands(in.Op) {
		return false
	}
	kind, known := a.kindOf[u]
	if !known {
		return false
	}
	if kind == descriptor.Load {
		for _, r := range [...]isa.Reg{in.Src1, in.Src2, in.Src3} {
			if r.Class == isa.ClassVec && int(r.N) == u {
				return true
			}
		}
		return false
	}
	return in.Dst.Class == isa.ClassVec && int(in.Dst.N) == u
}

// regOperands mirrors funcsim: stream cfg/ctl ops and stream branches name
// streams, not register values.
func regOperands(op isa.Op) bool {
	switch op {
	case isa.OpSCfg, isa.OpSSuspend, isa.OpSResume, isa.OpSStop, isa.OpSForce,
		isa.OpSBNotEnd, isa.OpSBEnd, isa.OpSBDimNotEnd, isa.OpSBDimEnd:
		return false
	}
	return true
}

// reachableInBody is a DFS over the loop body with this loop's back edges
// removed and blocked edges skipped.
func (a *analysis) reachableInBody(li *loopInfo, from, to int, blocked func(u, v int) bool) bool {
	if from == to {
		return true
	}
	seen := map[int]bool{from: true}
	work := []int{from}
	for len(work) > 0 {
		u := work[len(work)-1]
		work = work[:len(work)-1]
		for _, v := range a.succs[u] {
			if !li.body[v] || a.isBack[[2]int{u, v}] {
				continue
			}
			if blocked != nil && blocked(u, v) {
				continue
			}
			if v == to {
				return true
			}
			if !seen[v] {
				seen[v] = true
				work = append(work, v)
			}
		}
	}
	return false
}

// rowsOf is the number of innermost-dimension runs of an affine
// descriptor: the product of all outer dimension sizes.
func rowsOf(d *descriptor.Descriptor) (uint64, bool) {
	rows := uint64(1)
	for _, dim := range d.Dims[1:] {
		hi, lo := bits.Mul64(rows, uint64(dim.Size))
		if hi != 0 {
			return 0, false
		}
		rows = lo
	}
	return rows, true
}

// maxLanes bounds the lane count any whilelt/incvl/setvl can observe for
// element width w.
func (a *analysis) maxLanes(w arch.ElemWidth) uint64 {
	vb := a.o.VecBytes
	if vb <= 0 || vb > arch.MaxVecBytes {
		vb = arch.MaxVecBytes
	}
	l := arch.LanesFor(vb, w)
	if l < 1 {
		l = 1
	}
	return uint64(l)
}

// --- Case-A trip bounds (so.b.nend latches) ---

// caseATrips resolves, before the value fixpoint, loops whose single latch
// is an SBNotEnd over a once-configured affine stream. Such a loop runs at
// most rows(stream) iterations per entry, provided every path around the
// loop both advances the stream and observes a fresh dimension-0 boundary:
//
//  1. the latch's taken edge is the only back edge;
//  2. the stream is configured exactly once, outside the loop, is affine,
//     and is never suspended/resumed/stopped/forced;
//  3. every header→latch path crosses the fall-through (dimension-0-end
//     observed) edge of an SBDimNotEnd(u, 0);
//  4. every header→latch path advances the stream at least once;
//  5. no path advances the stream between that crossing and the latch, so
//     the flags the latch reads belong to a dimension-0-end chunk.
//
// Then each latch observation lands on a distinct dimension-0-end chunk;
// there are rows of those and the final one carries last=true, so the back
// edge is taken at most rows-1 times.
func (a *analysis) caseATrips() {
	a.induction = map[int]map[int]uint64{}
	a.tripAt = map[int]uint64{}
	if !a.reducible {
		return
	}
	for i := range a.loops {
		li := &a.loops[i]
		if !li.wellNested || len(li.latches) != 1 {
			continue
		}
		b := li.latches[0]
		in := &a.insts[b]
		if in.Op != isa.OpSBNotEnd || in.Target != li.header || b+1 == li.header {
			continue
		}
		u := int(in.Src1.N)
		site, ok := a.streamEligible(u)
		if !ok || li.body[site.endPC] {
			continue
		}
		rows, ok := rowsOf(site.desc)
		if !ok || rows == 0 {
			continue
		}
		// Condition 3: block dim-0-end fall-throughs; the latch must
		// become unreachable.
		dimEndFT := func(p, q int) bool {
			pi := &a.insts[p]
			return pi.Op == isa.OpSBDimNotEnd && int(pi.Src1.N) == u &&
				pi.Imm == 0 && q == p+1
		}
		if a.reachableInBody(li, li.header, b, dimEndFT) {
			continue
		}
		// Condition 4: block successors of advancing instructions; the
		// latch must become unreachable.
		advOut := func(p, q int) bool { return a.advancesStream(p, u) }
		if a.reachableInBody(li, li.header, b, advOut) {
			continue
		}
		// Condition 5: nothing between a dim-0-end crossing and the latch
		// may advance the stream.
		clean := true
		for q := range li.body {
			qi := &a.insts[q]
			if qi.Op != isa.OpSBDimNotEnd || int(qi.Src1.N) != u || qi.Imm != 0 {
				continue
			}
			t := q + 1
			if t >= a.n || !li.body[t] {
				continue
			}
			seen := map[int]bool{}
			work := []int{t}
			for len(work) > 0 && clean {
				v := work[len(work)-1]
				work = work[:len(work)-1]
				if seen[v] || v == b {
					continue
				}
				seen[v] = true
				if a.advancesStream(v, u) {
					clean = false
					break
				}
				for _, s := range a.succs[v] {
					if li.body[s] && !a.isBack[[2]int{v, s}] && !seen[s] {
						work = append(work, s)
					}
				}
			}
			if !clean {
				break
			}
		}
		if !clean {
			continue
		}
		li.trip = rows
		a.tripAt[li.header] = rows
		a.findInduction(i)
	}
}

// findInduction records registers that qualify for header clamping in a
// trip-bounded loop: every definition inside the body is the same-register
// `addi r, r, imm>0` or `incvl r, r` shape, none sits in a nested loop, so
// per iteration the register grows by at least 1 and at most stepHi.
func (a *analysis) findInduction(i int) {
	li := &a.loops[i]
	steps := map[int]uint64{}
	bad := map[int]bool{}
	for pc := range li.body {
		in := &a.insts[pc]
		dst := a.intDst(pc)
		if dst <= 0 { // no int def, or x0
			continue
		}
		grow := uint64(0)
		switch in.Op {
		case isa.OpAddI:
			if in.Src1.Class == isa.ClassInt && int(in.Src1.N) == dst && in.Imm > 0 {
				grow = uint64(in.Imm)
			}
		case isa.OpIncVL:
			if in.Src1.Class == isa.ClassInt && int(in.Src1.N) == dst {
				grow = a.maxLanes(in.W)
			}
		}
		if grow == 0 || a.loopOf[pc] != i {
			bad[dst] = true
			continue
		}
		steps[dst] += grow
	}
	ind := map[int]uint64{}
	for r, s := range steps {
		if !bad[r] {
			ind[r] = s
		}
	}
	if len(ind) > 0 {
		a.induction[li.header] = ind
	}
}

// intDst returns the integer destination register of pc, or -1.
func (a *analysis) intDst(pc int) int {
	in := &a.insts[pc]
	if in.Op == isa.OpSCfg || in.Op.Kind() == isa.KindStreamCtl {
		return -1
	}
	if in.Dst.Class == isa.ClassInt && in.Dst.N != 0 {
		return int(in.Dst.N)
	}
	return -1
}

// clampIv bounds an induction register at the header: it starts inside
// pre and gains at most stepHi per iteration for at most trip-1 iterations.
func clampIv(pre Interval, stepHi, trip uint64) Interval {
	if trip == 0 {
		return Top()
	}
	hiMul, lo := bits.Mul64(stepHi, trip-1)
	if hiMul != 0 {
		return Top()
	}
	hi := pre.Hi + lo
	if hi < pre.Hi {
		return Top()
	}
	return Interval{pre.Lo, hi}
}

// collectThresholds gathers the constants a loop bound could settle on:
// instruction immediates and entry register values, each with its ±1
// neighbors (branch refinements land on v-1/v/v+1).
func (a *analysis) collectThresholds() {
	seen := map[uint64]bool{0: true, ^uint64(0): true}
	addNear := func(v uint64) {
		seen[v-1] = true
		seen[v] = true
		seen[v+1] = true
	}
	for pc := range a.insts {
		if imm := a.insts[pc].Imm; imm != 0 {
			addNear(uint64(imm))
		}
	}
	for _, v := range a.o.Entry {
		addNear(v)
	}
	for v := range seen {
		a.thresholds = append(a.thresholds, v)
	}
	sort.Slice(a.thresholds, func(i, j int) bool { return a.thresholds[i] < a.thresholds[j] })
}

// widenTo extends a growing interval outward to the nearest thresholds,
// so counted loops settle on their bound instead of shooting to Top.
func (a *analysis) widenTo(iv Interval) Interval {
	lo, hi := uint64(0), ^uint64(0)
	for _, t := range a.thresholds {
		if t <= iv.Lo && t > lo {
			lo = t
		}
		if t >= iv.Hi && t < hi {
			hi = t
			break // sorted: first t >= Hi is the nearest
		}
	}
	return Interval{lo, hi}
}

// --- the value fixpoint ---

func (a *analysis) fixpoint() {
	a.in = make([]state, a.n)
	a.inPre = make([]state, a.n)
	a.widenCnt = make([][isa.NumIntRegs]uint8, a.n)

	entry := state{live: true}
	for i := range entry.regs {
		entry.regs[i] = Top()
	}
	entry.regs[0] = Point(0)
	for r, v := range a.o.Entry {
		if r > 0 && r < isa.NumIntRegs {
			entry.regs[r] = Point(v)
		}
	}
	a.in[0] = entry

	work := []int{0}
	queued := make([]bool, a.n)
	queued[0] = true
	budget := a.n * stepBudget
	for len(work) > 0 {
		if budget--; budget < 0 {
			a.degradeToTop()
			return
		}
		pc := work[0]
		work = work[1:]
		queued[pc] = false
		outs := a.flow(pc, a.in[pc])
		for sIdx, succ := range a.succs[pc] {
			s := &outs[sIdx]
			if !s.live {
				continue
			}
			requeue := a.mergeEdge(pc, succ, s)
			for _, q := range requeue {
				if !queued[q] {
					queued[q] = true
					work = append(work, q)
				}
			}
		}
	}
}

// mergeEdge folds one edge's outgoing state into the target, applying
// induction clamps on back edges and tracking the preheader-only merge at
// widen points. It returns the pcs whose in-state changed.
func (a *analysis) mergeEdge(from, to int, s *state) []int {
	var requeue []int
	key := [2]int{from, to}
	if a.isBack[key] {
		if ind := a.induction[to]; ind != nil && a.inPre[to].live {
			trip := a.tripAt[to]
			for r, stepHi := range ind {
				s.regs[r] = clampIv(a.inPre[to].regs[r], stepHi, trip)
			}
		}
	} else if a.widenAt[to] {
		if mergeState(&a.inPre[to], s) && a.induction[to] != nil {
			// The clamp base moved: back edges must re-deliver.
			for i := range a.loops {
				if a.loops[i].header == to {
					for _, l := range a.loops[i].latches {
						if a.in[l].live {
							requeue = append(requeue, l)
						}
					}
				}
			}
		}
	}
	if a.mergeWiden(to, s) {
		requeue = append(requeue, to)
	}
	return requeue
}

// mergeWiden joins s into in[to]; at widen points each register may grow
// only widenDelay times before jumping to Top. Induction-clamped registers
// are exempt (their growth is bounded by the clamp).
func (a *analysis) mergeWiden(to int, s *state) bool {
	dst := &a.in[to]
	if !dst.live {
		*dst = *s
		return true
	}
	changed := false
	ind := a.induction[to]
	for i := range dst.regs {
		u := dst.regs[i].Union(s.regs[i])
		if u == dst.regs[i] {
			continue
		}
		if a.widenAt[to] {
			if _, clamped := ind[i]; !clamped {
				cnt := a.widenCnt[to][i]
				if cnt < 255 {
					a.widenCnt[to][i] = cnt + 1
				}
				if int(cnt) > widenDelay+2*len(a.thresholds)+8 {
					u = Top()
				} else if cnt > widenDelay {
					u = a.widenTo(u)
				}
			}
		}
		if u != dst.regs[i] {
			dst.regs[i] = u
			changed = true
		}
	}
	for i := range dst.facts {
		m := mergeFact(dst.facts[i], s.facts[i])
		if m != dst.facts[i] {
			dst.facts[i] = m
			changed = true
		}
	}
	return changed
}

// degradeToTop is the budget-overrun backstop: a plain reachability pass
// with every reachable state at Top. Trivially sound.
func (a *analysis) degradeToTop() {
	top := state{live: true}
	for i := range top.regs {
		top.regs[i] = Top()
	}
	top.regs[0] = Point(0)
	seen := make([]bool, a.n)
	work := []int{0}
	seen[0] = true
	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		a.in[pc] = top
		for _, s := range a.succs[pc] {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	for pc := range a.in {
		if !seen[pc] {
			a.in[pc] = state{}
		}
	}
	// Loop trip bounds derived from stream shapes (not from interval
	// states) stay valid; only the value states degrade.
}

// flow applies the instruction at pc and returns one refined state per
// successor (aligned with succs[pc]); dead edges come back with live=false.
func (a *analysis) flow(pc int, cur state) []state {
	in := &a.insts[pc]
	op := in.Op
	s := cur // value copy

	// Instruction effect on registers and facts.
	switch {
	case op == isa.OpSSetVL || op == isa.OpGetVL:
		a.defInt(&s, in.Dst, Interval{1, a.maxLanes(in.W)})
	case op == isa.OpIncVL:
		a.defInt(&s, in.Dst, add(s.reg(in.Src1), Interval{1, a.maxLanes(in.W)}))
	case op == isa.OpWhilelt:
		if in.Dst.Class == isa.ClassPred {
			f := predFact{}
			if in.Src1.Class == isa.ClassInt && in.Src2.Class == isa.ClassInt {
				f = predFact{valid: true, reg: in.Src1.N, bound: s.regs[in.Src2.N]}
			}
			s.facts[in.Dst.N] = f
		}
	case op.Kind() == isa.KindIntALU:
		a.defInt(&s, in.Dst, EvalOp(op, s.reg(in.Src1), s.reg(in.Src2), in.Imm))
	default:
		if in.Dst.Class == isa.ClassInt && regOperands(op) {
			a.defInt(&s, in.Dst, Top()) // loads, ftoi, flt/fle, …
		}
		if in.Dst.Class == isa.ClassPred {
			s.facts[in.Dst.N] = predFact{}
		}
	}

	succs := a.succs[pc]
	outs := make([]state, len(succs))
	for i := range outs {
		outs[i] = s
	}
	if len(outs) != 2 {
		return outs
	}

	// Per-edge refinement on the two-way branches (outs[0] = taken).
	switch op {
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		if in.Src1.Class != isa.ClassInt || in.Src2.Class != isa.ClassInt ||
			in.Src1.N == in.Src2.N {
			break
		}
		x, y := in.Src1.N, in.Src2.N
		eq, ne := 0, 1
		if op == isa.OpBne {
			eq, ne = 1, 0
		}
		switch op {
		case isa.OpBeq, isa.OpBne:
			refineEq(&outs[eq], x, y)
			refineNe(&outs[ne], x, y)
		case isa.OpBlt:
			refineLT(&outs[0], x, y)
			refineGE(&outs[1], x, y)
		case isa.OpBge:
			refineGE(&outs[0], x, y)
			refineLT(&outs[1], x, y)
		}
	case isa.OpBFirst, isa.OpBNone:
		if in.Src1.Class != isa.ClassPred {
			break
		}
		f := s.facts[in.Src1.N]
		if !f.valid {
			break
		}
		// Any active lane ⇔ (signed) reg < bound value.
		lt, ge := 0, 1
		if op == isa.OpBNone {
			lt, ge = 1, 0
		}
		refineLTBound(&outs[lt], f.reg, f.bound)
		refineGEBound(&outs[ge], f.reg, f.bound)
	}
	return outs
}

// defInt writes an integer destination and kills facts over it.
func (a *analysis) defInt(s *state, dst isa.Reg, iv Interval) {
	if dst.Class != isa.ClassInt {
		return
	}
	s.setReg(dst.N, iv)
	if dst.N != 0 {
		s.killFactsOn(dst.N)
	}
}

// --- branch refinements (all conservative: on any doubt, leave as-is) ---

func refineEq(s *state, x, y uint8) {
	iv, ok := s.regs[x].Intersect(s.regs[y])
	if !ok {
		s.live = false
		return
	}
	s.setReg(x, iv)
	s.setReg(y, iv)
}

func refineNe(s *state, x, y uint8) {
	a, b := s.regs[x], s.regs[y]
	if na, ok := excludePoint(a, b); ok {
		s.setReg(x, na)
	} else if b.IsPoint() && a.IsPoint() && a.Lo == b.Lo {
		s.live = false
		return
	}
	if nb, ok := excludePoint(b, s.regs[x]); ok {
		s.setReg(y, nb)
	}
}

// excludePoint trims iv's endpoints when o is a single excluded value;
// ok=false means no refinement applies (not that the edge is dead).
func excludePoint(iv, o Interval) (Interval, bool) {
	if !o.IsPoint() || !iv.Contains(o.Lo) {
		return iv, false
	}
	switch {
	case iv.IsPoint():
		return iv, false
	case iv.Lo == o.Lo:
		return Interval{iv.Lo + 1, iv.Hi}, true
	case iv.Hi == o.Lo:
		return Interval{iv.Lo, iv.Hi - 1}, true
	}
	return iv, false
}

// refineLT applies signed x < y. Signed and unsigned orderings agree only
// when both ranges are non-negative under a signed view; otherwise skip.
func refineLT(s *state, x, y uint8) {
	a, b := s.regs[x], s.regs[y]
	if !a.signedNonNeg() || !b.signedNonNeg() {
		return
	}
	if b.Hi == 0 { // nothing is < 0
		s.live = false
		return
	}
	if a.Hi > b.Hi-1 {
		a.Hi = b.Hi - 1
	}
	if b.Lo < s.regs[x].Lo+1 {
		b.Lo = s.regs[x].Lo + 1
	}
	if a.Lo > a.Hi || b.Lo > b.Hi {
		s.live = false
		return
	}
	s.setReg(x, a)
	s.setReg(y, b)
}

// refineGE applies signed x >= y.
func refineGE(s *state, x, y uint8) {
	a, b := s.regs[x], s.regs[y]
	if !a.signedNonNeg() || !b.signedNonNeg() {
		return
	}
	if a.Lo < b.Lo {
		a.Lo = b.Lo
	}
	if b.Hi > s.regs[x].Hi {
		b.Hi = s.regs[x].Hi
	}
	if a.Lo > a.Hi || b.Lo > b.Hi {
		s.live = false
		return
	}
	s.setReg(x, a)
	s.setReg(y, b)
}

// refineLTBound applies signed reg < v for some v in bound.
func refineLTBound(s *state, reg uint8, bound Interval) {
	a := s.regs[reg]
	if !a.signedNonNeg() || !bound.signedNonNeg() {
		return
	}
	if bound.Hi == 0 {
		s.live = false
		return
	}
	if a.Hi > bound.Hi-1 {
		a.Hi = bound.Hi - 1
	}
	if a.Lo > a.Hi {
		s.live = false
		return
	}
	s.setReg(reg, a)
}

// refineGEBound applies signed reg >= v for some v in bound.
func refineGEBound(s *state, reg uint8, bound Interval) {
	a := s.regs[reg]
	if !a.signedNonNeg() || !bound.signedNonNeg() {
		return
	}
	if a.Lo < bound.Lo {
		a.Lo = bound.Lo
	}
	if a.Lo > a.Hi {
		s.live = false
		return
	}
	s.setReg(reg, a)
}

// --- post-fixpoint scalar (Case B) and chunk (Case C) trip bounds ---

// scalarTrips bounds remaining single-latch loops using the final interval
// states: counted scalar loops (blt/bge latches), whilelt loops (b.first/
// b.none latches with a live fact), per-row chunk loops (so.b.ndc latches
// over an eligible stream), and whole-stream loops (so.b.nend latches Case
// A could not resolve, bounded by the stream's total chunk count).
func (a *analysis) scalarTrips() {
	if !a.reducible {
		return
	}
	for i := range a.loops {
		li := &a.loops[i]
		if li.trip != 0 || !li.wellNested || len(li.latches) != 1 {
			continue
		}
		b := li.latches[0]
		if !a.in[b].live {
			// Latch unreachable: the loop body runs at most once.
			li.trip = 1
			continue
		}
		in := &a.insts[b]
		var xReg int
		var bound Interval
		ok := false
		switch in.Op {
		case isa.OpBlt:
			if in.Target == li.header && b+1 != li.header &&
				in.Src1.Class == isa.ClassInt && in.Src2.Class == isa.ClassInt {
				xReg, bound, ok = int(in.Src1.N), a.in[b].regs[in.Src2.N], true
				ok = ok && a.invariantIn(li, int(in.Src2.N))
			}
		case isa.OpBge:
			if b+1 == li.header && !a.isBack[[2]int{b, in.Target}] &&
				in.Src1.Class == isa.ClassInt && in.Src2.Class == isa.ClassInt {
				xReg, bound, ok = int(in.Src1.N), a.in[b].regs[in.Src2.N], true
				ok = ok && a.invariantIn(li, int(in.Src2.N))
			}
		case isa.OpBFirst:
			if in.Target == li.header && b+1 != li.header && in.Src1.Class == isa.ClassPred {
				if f := a.in[b].facts[in.Src1.N]; f.valid {
					xReg, bound, ok = int(f.reg), f.bound, true
				}
			}
		case isa.OpBNone:
			if b+1 == li.header && !a.isBack[[2]int{b, in.Target}] && in.Src1.Class == isa.ClassPred {
				if f := a.in[b].facts[in.Src1.N]; f.valid {
					xReg, bound, ok = int(f.reg), f.bound, true
				}
			}
		case isa.OpSBDimNotEnd:
			if in.Target == li.header && b+1 != li.header {
				if trip, cok := a.caseCTrip(i, b); cok {
					li.trip = trip
				}
			}
			continue
		case isa.OpSBNotEnd:
			if in.Target == li.header && b+1 != li.header {
				if trip, cok := a.wholeStreamTrip(i, b); cok {
					li.trip = trip
				}
			}
			continue
		default:
			continue
		}
		if !ok {
			continue
		}
		stepLo, sok := a.monotoneStep(li, xReg)
		if !sok {
			continue
		}
		x := a.in[b].regs[xReg]
		if !x.signedNonNeg() || !bound.signedNonNeg() {
			continue
		}
		if bound.Hi <= x.Lo {
			li.trip = 1
			continue
		}
		li.trip = (bound.Hi-x.Lo)/stepLo + 2
	}
}

// invariantIn reports that no instruction in the body writes integer reg r.
func (a *analysis) invariantIn(li *loopInfo, r int) bool {
	for pc := range li.body {
		if a.intDst(pc) == r {
			return false
		}
	}
	return true
}

// monotoneStep checks that every body definition of reg only increases it
// by a positive known amount and that every header→latch path passes at
// least one such definition. It returns the minimum per-cycle gain.
func (a *analysis) monotoneStep(li *loopInfo, reg int) (uint64, bool) {
	stepLo := ^uint64(0)
	defs := map[int]bool{}
	for pc := range li.body {
		if a.intDst(pc) != reg {
			continue
		}
		in := &a.insts[pc]
		switch in.Op {
		case isa.OpAddI:
			if in.Src1.Class == isa.ClassInt && int(in.Src1.N) == reg && in.Imm > 0 {
				if uint64(in.Imm) < stepLo {
					stepLo = uint64(in.Imm)
				}
				defs[pc] = true
				continue
			}
		case isa.OpIncVL:
			if in.Src1.Class == isa.ClassInt && int(in.Src1.N) == reg {
				stepLo = 1 // lane count is at least 1
				defs[pc] = true
				continue
			}
		}
		return 0, false
	}
	if len(defs) == 0 {
		return 0, false
	}
	// Every cycle must pass a definition: with their out-edges blocked the
	// latch is unreachable from the header.
	blocked := func(p, q int) bool { return defs[p] }
	if a.reachableInBody(li, li.header, li.latches[0], blocked) {
		return 0, false
	}
	return stepLo, true
}

// caseCTrip bounds an inner chunk loop latched by SBDimNotEnd(u, d): per
// entry it runs at most the number of chunks in one dimension-(d+1) block,
// when exactly one instruction advances the stream per iteration; with
// only the at-least-once guarantee it still cannot outlive the whole
// stream, so the total chunk count bounds it.
func (a *analysis) caseCTrip(liIdx, b int) (uint64, bool) {
	li := &a.loops[liIdx]
	in := &a.insts[b]
	u := int(in.Src1.N)
	d := int(in.Imm)
	site, ok := a.streamEligible(u)
	if !ok || li.body[site.endPC] || d < 0 || d >= len(site.desc.Dims) {
		return 0, false
	}
	// Strict advance (at least one per cycle).
	advOut := func(p, q int) bool { return a.advancesStream(p, u) }
	if a.reachableInBody(li, li.header, b, advOut) {
		return 0, false
	}
	lanes := uint64(1)
	if a.o.VecBytes > 0 && !a.anyVL {
		lanes = a.maxLanes(site.desc.Width)
	}
	s0 := uint64(site.desc.Dims[0].Size)
	chunksRow := (s0 + lanes - 1) / lanes
	if chunksRow == 0 {
		chunksRow = 1
	}
	// Rows within one dimension-(d+1) block vs. the whole stream.
	block, total := uint64(1), uint64(1)
	for k, dim := range site.desc.Dims[1:] {
		hi, lo := bits.Mul64(total, uint64(dim.Size))
		if hi != 0 {
			return 0, false
		}
		total = lo
		if k+1 <= d {
			block = total
		}
	}
	rows := total
	if a.singleAdvance(liIdx, u) {
		rows = block
	}
	hi, trips := bits.Mul64(rows, chunksRow)
	if hi != 0 || trips == 0 {
		return 0, false
	}
	return trips, true
}

// wholeStreamTrip bounds a loop latched by SBNotEnd(u) that Case A could
// not resolve (no dimension-0-end crossing discipline): when every
// header→latch path strictly advances the once-configured affine stream,
// each taken back edge consumes at least one chunk of a stream that holds
// finitely many, so the total chunk count bounds the iterations.
func (a *analysis) wholeStreamTrip(liIdx, b int) (uint64, bool) {
	li := &a.loops[liIdx]
	in := &a.insts[b]
	u := int(in.Src1.N)
	site, ok := a.streamEligible(u)
	if !ok || li.body[site.endPC] {
		return 0, false
	}
	// Strict advance (at least one chunk per cycle).
	advOut := func(p, q int) bool { return a.advancesStream(p, u) }
	if a.reachableInBody(li, li.header, b, advOut) {
		return 0, false
	}
	lanes := uint64(1)
	if a.o.VecBytes > 0 && !a.anyVL {
		lanes = a.maxLanes(site.desc.Width)
	}
	s0 := uint64(site.desc.Dims[0].Size)
	chunksRow := (s0 + lanes - 1) / lanes
	if chunksRow == 0 {
		chunksRow = 1
	}
	rows, rok := rowsOf(site.desc)
	if !rok || rows == 0 {
		return 0, false
	}
	hi, trips := bits.Mul64(rows, chunksRow)
	if hi != 0 || trips == 0 {
		return 0, false
	}
	return trips, true
}

// singleAdvance reports that exactly one instruction in the body advances
// stream u and it is not nested in an inner loop, so it runs exactly once
// per iteration of this loop.
func (a *analysis) singleAdvance(liIdx, u int) bool {
	adv := -1
	for pc := range a.loops[liIdx].body {
		if !a.advancesStream(pc, u) {
			continue
		}
		if adv >= 0 {
			return false
		}
		adv = pc
	}
	return adv >= 0 && a.loopOf[adv] == liIdx
}

// --- query API ---

// At returns the interval of integer register reg immediately before pc
// executes. Unreachable or out-of-range points answer Top.
func (r *Result) At(pc, reg int) Interval {
	if r == nil || pc < 0 || pc >= r.n || reg < 0 || reg >= isa.NumIntRegs {
		return Top()
	}
	if !r.in[pc].live {
		return Top()
	}
	return r.in[pc].regs[reg]
}

// Reachable reports whether any abstract path reaches pc. Points the
// analysis proves unreachable never execute.
func (r *Result) Reachable(pc int) bool {
	if r == nil || pc < 0 || pc >= r.n {
		return false
	}
	return r.in[pc].live
}

// LoopTrip returns the proved per-entry iteration bound of the loop headed
// at pc, when one exists.
func (r *Result) LoopTrip(header int) (uint64, bool) {
	if r == nil {
		return 0, false
	}
	for i := range r.loops {
		if r.loops[i].header == header && r.loops[i].trip != 0 {
			return r.loops[i].trip, true
		}
	}
	return 0, false
}

// MaxExec bounds how many times pc can execute in any run: the product of
// the per-entry trip bounds and entry multiplicities along its loop chain.
// ok=false means no finite bound was proved.
func (r *Result) MaxExec(pc int) (uint64, bool) {
	if r == nil || pc < 0 || pc >= r.n || !r.reducible {
		return 0, false
	}
	if !r.in[pc].live {
		return 0, true
	}
	acc := uint64(1)
	for li := r.loopOf[pc]; li >= 0; li = r.loops[li].parent {
		l := &r.loops[li]
		if l.trip == 0 || !l.wellNested {
			return 0, false
		}
		hi, lo := bits.Mul64(acc, l.trip)
		if hi != 0 {
			return 0, false
		}
		hi, lo = bits.Mul64(lo, l.entryPreds)
		if hi != 0 {
			return 0, false
		}
		acc = lo
	}
	return acc, true
}
