// Package absint is a sound abstract interpreter over program control-flow
// graphs: scalar integer registers are tracked as unsigned intervals, loop
// induction variables are recognized and clamped by stream-derived trip
// counts, predicate producers leave refinable facts, and widening at
// back-edges guarantees termination. The lint dependence pass uses the
// results to resolve register-addressed scalar stores, and the cost model
// uses the loop trip bounds to bound committed-instruction counts after its
// concrete walk bails out.
//
// Soundness contract: for every reachable program point and every integer
// register, the concrete value any execution holds there is contained in
// the reported interval (FuzzAbsintSoundness checks this against the
// functional simulator). Anything the analysis cannot bound degrades to
// Top, never to a wrong range.
package absint

import (
	"fmt"
	"math/bits"

	"repro/internal/isa"
)

// Interval is an unsigned value range [Lo, Hi], both ends inclusive.
// The zero value is the point 0; Top() is the full 64-bit range.
type Interval struct {
	Lo, Hi uint64
}

// Top returns the full-range interval (no information).
func Top() Interval { return Interval{0, ^uint64(0)} }

// Point returns the singleton interval {v}.
func Point(v uint64) Interval { return Interval{v, v} }

// IsTop reports whether the interval carries no information.
func (iv Interval) IsTop() bool { return iv.Lo == 0 && iv.Hi == ^uint64(0) }

// IsPoint reports whether the interval is a single value.
func (iv Interval) IsPoint() bool { return iv.Lo == iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v uint64) bool { return iv.Lo <= v && v <= iv.Hi }

// Union is the lattice join: the smallest interval containing both.
func (iv Interval) Union(o Interval) Interval {
	if o.Lo < iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi > iv.Hi {
		iv.Hi = o.Hi
	}
	return iv
}

// Intersect returns the overlap and whether it is non-empty.
func (iv Interval) Intersect(o Interval) (Interval, bool) {
	if o.Lo > iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi < iv.Hi {
		iv.Hi = o.Hi
	}
	return iv, iv.Lo <= iv.Hi
}

func (iv Interval) String() string {
	if iv.IsTop() {
		return "⊤"
	}
	if iv.IsPoint() {
		return fmt.Sprintf("%d", iv.Lo)
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// signedNonNeg reports whether every value in the interval is non-negative
// under a signed interpretation, which makes signed and unsigned orderings
// agree. Refinements and signed comparisons apply only under this guard.
func (iv Interval) signedNonNeg() bool { return iv.Hi < 1<<63 }

// add is modular-interval addition: exact whenever the combined span fits
// in 64 bits and the result range does not wrap, Top otherwise. This keeps
// `addi x, x, -1` style negative immediates precise.
func add(a, b Interval) Interval {
	spanA, spanB := a.Hi-a.Lo, b.Hi-b.Lo
	span := spanA + spanB
	if span < spanA { // spans alone wrap: every value possible
		return Top()
	}
	lo := a.Lo + b.Lo // wrapping
	hi := lo + span
	if hi < lo { // result range wraps the 2^64 boundary
		return Top()
	}
	return Interval{lo, hi}
}

// sub is modular-interval subtraction (same wrap rules as add).
func sub(a, b Interval) Interval {
	spanA, spanB := a.Hi-a.Lo, b.Hi-b.Lo
	span := spanA + spanB
	if span < spanA {
		return Top()
	}
	lo := a.Lo - b.Hi // wrapping
	hi := lo + span
	if hi < lo {
		return Top()
	}
	return Interval{lo, hi}
}

func mul(a, b Interval) Interval {
	if hiHi, lo := bits.Mul64(a.Hi, b.Hi); hiHi == 0 {
		return Interval{a.Lo * b.Lo, lo}
	}
	return Top()
}

func shl(a Interval, k uint) Interval {
	if k == 0 {
		return a
	}
	if a.Hi>>(64-k) != 0 {
		return Top()
	}
	return Interval{a.Lo << k, a.Hi << k}
}

// EvalOp abstracts isa.EvalInt over intervals: for all a0 in a and b0 in b,
// EvalInt(op, a0, b0, imm) is contained in EvalOp(op, a, b, imm).
func EvalOp(op isa.Op, a, b Interval, imm int64) Interval {
	switch op {
	case isa.OpNop, isa.OpHalt:
		return Point(0)
	case isa.OpLi:
		return Point(uint64(imm))
	case isa.OpMv:
		return a
	case isa.OpAdd:
		return add(a, b)
	case isa.OpAddI:
		return add(a, Point(uint64(imm)))
	case isa.OpSub:
		return sub(a, b)
	case isa.OpMul:
		return mul(a, b)
	case isa.OpDiv:
		if a.signedNonNeg() && b.signedNonNeg() && b.Lo > 0 {
			return Interval{a.Lo / b.Hi, a.Hi / b.Lo}
		}
		return Top()
	case isa.OpRem:
		if a.signedNonNeg() && b.signedNonNeg() && b.Lo > 0 {
			hi := b.Hi - 1
			if a.Hi < hi {
				hi = a.Hi
			}
			return Interval{0, hi}
		}
		return Top()
	case isa.OpSllI:
		return shl(a, uint(imm&63))
	case isa.OpSrlI:
		k := uint(imm & 63)
		return Interval{a.Lo >> k, a.Hi >> k}
	case isa.OpAndI:
		if a.IsPoint() {
			return Point(a.Lo & uint64(imm))
		}
		if imm >= 0 {
			hi := uint64(imm)
			if a.Hi < hi {
				hi = a.Hi
			}
			return Interval{0, hi}
		}
		return Top()
	case isa.OpAnd:
		if a.IsPoint() && b.IsPoint() {
			return Point(a.Lo & b.Lo)
		}
		hi := a.Hi
		if b.Hi < hi {
			hi = b.Hi
		}
		return Interval{0, hi}
	case isa.OpOr, isa.OpXor:
		if a.IsPoint() && b.IsPoint() {
			if op == isa.OpOr {
				return Point(a.Lo | b.Lo)
			}
			return Point(a.Lo ^ b.Lo)
		}
		// Both operands fit below the next power of two, so does the result.
		n := bits.Len64(a.Hi | b.Hi)
		if n >= 64 {
			return Top()
		}
		return Interval{0, 1<<uint(n) - 1}
	case isa.OpSlt:
		return cmpLt(a, b)
	case isa.OpSltI:
		return cmpLt(a, Point(uint64(imm)))
	}
	return Top()
}

// cmpLt abstracts the signed a < b comparison to {0}, {1} or [0,1].
func cmpLt(a, b Interval) Interval {
	if a.signedNonNeg() && b.signedNonNeg() {
		if a.Hi < b.Lo {
			return Point(1)
		}
		if a.Lo >= b.Hi {
			return Point(0)
		}
	}
	return Interval{0, 1}
}
