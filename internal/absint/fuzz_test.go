package absint

// FuzzAbsintSoundness is the analysis' differential oracle: the fuzzer
// decodes its bytes into a bounded program (reusing the descriptor
// fuzz-corpus encoding for the stream shape), the functional interpreter
// executes it, and a step hook asserts that every fact the abstract
// interpreter derived contains the concrete state — register intervals
// contain the observed values, reachability covers every executed pc, and
// per-pc execution bounds are never exceeded. `go test` replays the seed
// corpus; `go test -fuzz FuzzAbsintSoundness ./internal/absint` explores
// beyond it (scripts/check.sh runs a short smoke).

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// fuzzStreamDesc decodes bounded descriptor parameters the same way the
// descriptor fuzz corpus does: small non-negative offsets and strides keep
// every address inside the arena the test allocates.
func fuzzStreamDesc(base uint64, e0, s0, e1, s1 uint8) *descriptor.Descriptor {
	width := arch.W4
	if e0%2 == 1 {
		width = arch.W8
	}
	b := descriptor.New(base, width, descriptor.Load)
	b.Dim(int64(s0%4), 1+int64(e0%12), int64(1+s0%3))
	if e1%3 != 0 {
		b.Dim(int64(s1%4), 1+int64(e1%6), int64(1+s1%3))
	}
	return b.MustBuild()
}

// fuzzProgram decodes the shape selector and immediates into one of four
// bounded program skeletons: a counted scalar loop, a whole-stream loop, a
// nested row/chunk stream loop, and a branch over a counted loop. Every
// skeleton terminates by construction (positive steps, finite streams).
func fuzzProgram(t *testing.T, base uint64, shape, e0, s0, e1, s1 uint8, imm0, imm1 uint16) *program.Program {
	t.Helper()
	d := fuzzStreamDesc(base, e0, s0, e1, s1)
	width := d.Width
	b := program.NewBuilder("fuzz")
	switch shape % 4 {
	case 0: // counted scalar loop
		b.I(isa.Li(isa.X(1), int64(imm0%64)))
		b.I(isa.Li(isa.X(2), int64(imm1%128)))
		b.Label("loop")
		b.I(isa.AddI(isa.X(1), isa.X(1), int64(1+s0%4)))
		b.I(isa.AddI(isa.X(3), isa.X(3), 1))
		b.I(isa.Blt(isa.X(1), isa.X(2), "loop"))
	case 1: // whole-stream loop (SBNotEnd latch, no dim-0 crossing)
		b.ConfigStream(0, d)
		b.Label("loop")
		b.I(isa.VMove(width, isa.V(5), isa.V(0)))
		b.I(isa.AddI(isa.X(3), isa.X(3), 1))
		b.I(isa.SBNotEnd(0, "loop"))
	case 2: // nested row/chunk loops (Case A outer, Case C inner)
		b.ConfigStream(0, d)
		b.I(isa.Li(isa.X(5), 0))
		b.Label("outer")
		b.I(isa.SllI(isa.X(13), isa.X(5), 2))
		b.Label("inner")
		b.I(isa.VMove(width, isa.V(4), isa.V(0)))
		b.I(isa.SBDimNotEnd(0, 0, "inner"))
		b.I(isa.AddI(isa.X(5), isa.X(5), 1))
		b.I(isa.SBNotEnd(0, "outer"))
	default: // branch guarding a counted loop
		b.I(isa.Li(isa.X(1), int64(imm0%32)))
		b.I(isa.Beq(isa.X(1), isa.X(0), "skip"))
		b.I(isa.AddI(isa.X(2), isa.X(7), int64(imm1%16)))
		b.Label("skip")
		b.I(isa.Li(isa.X(4), 0))
		b.Label("loop")
		b.I(isa.AddI(isa.X(4), isa.X(4), 1))
		b.I(isa.Blt(isa.X(4), isa.X(2), "loop"))
	}
	b.I(isa.Halt())
	return mustBuild(t, b)
}

func FuzzAbsintSoundness(f *testing.F) {
	// One seed per skeleton plus boundary-flavored variants.
	f.Add(uint8(0), uint8(0), uint8(1), uint8(0), uint8(1), uint16(5), uint16(40))
	f.Add(uint8(1), uint8(8), uint8(1), uint8(0), uint8(1), uint16(0), uint16(0))
	f.Add(uint8(2), uint8(6), uint8(1), uint8(4), uint8(2), uint16(0), uint16(0))
	f.Add(uint8(3), uint8(0), uint8(0), uint8(0), uint8(0), uint16(7), uint16(9))
	f.Add(uint8(1), uint8(11), uint8(2), uint8(5), uint8(1), uint16(63), uint16(127))
	f.Fuzz(func(t *testing.T, shape, e0, s0, e1, s1 uint8, imm0, imm1 uint16) {
		mm := mem.NewMemory()
		base := mm.Alloc(1<<14, arch.LineSize)
		p := fuzzProgram(t, base, shape, e0, s0, e1, s1, imm0, imm1)

		vb := []int{16, 32, 64}[int(e1)%3]
		entry := map[int]uint64{7: uint64(imm0)}
		r := Analyze(p, Options{Entry: entry, VecBytes: vb})

		m := funcsim.New(funcsim.Config{VecBytes: vb, MaxInsts: 1 << 14}, p, mm)
		for reg, v := range entry {
			m.SetIntReg(reg, v)
		}
		exec := make([]uint64, p.Len())
		m.SetStepHook(func(pc int) {
			exec[pc]++
			if !r.Reachable(pc) {
				t.Errorf("pc %d executed but proved unreachable", pc)
			}
			for reg := 0; reg < isa.NumIntRegs; reg++ {
				got := m.IntReg(reg)
				if iv := r.At(pc, reg); !iv.Contains(got) {
					t.Errorf("pc %d: x%d=%d outside proved interval %v", pc, reg, got, iv)
				}
			}
		})
		if err := m.Run(); err != nil {
			// The skeletons terminate by construction: a budget error means
			// the generator (not the analysis) is wrong, so surface it —
			// unless a fact check above already failed and explains it.
			if !t.Failed() || !strings.Contains(err.Error(), "budget") {
				t.Fatalf("functional run: %v", err)
			}
		}
		for pc, n := range exec {
			if max, ok := r.MaxExec(pc); ok && n > max {
				t.Errorf("pc %d executed %d times, proved bound is %d", pc, n, max)
			}
		}
	})
}
