// Package cpu implements the out-of-order core model used for both the UVE
// machine and the SVE/NEON baselines (paper §IV and Table I): speculative
// fetch with branch prediction, register renaming over physical register
// files, dispatch into an issue window with per-port schedulers, a
// load/store queue with store-to-load forwarding, in-order commit, and
// ROB-walk recovery for branch mispredictions and precise exceptions. The
// streaming engine attaches at the rename and commit stages exactly as the
// paper describes.
package cpu

import (
	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/trace"
)

// Config sizes the core (defaults per Table I, modeled on the Cortex-A76).
type Config struct {
	FetchWidth  int
	CommitWidth int
	IssueWidth  int

	ROBSize     int
	IQSize      int
	SchedSize   int // per-port-group scheduler entries
	LQSize      int
	SQSize      int
	DecodeQueue int

	IntPRF  int
	FPPRF   int
	VecPRF  int
	PredPRF int

	IntALUs    int
	VecFPUs    int
	LoadPorts  int
	StorePorts int

	// VecBytes is the implemented vector register width: 64 (512-bit, the
	// paper's SVE/UVE configuration) or 16 (NEON).
	VecBytes int

	// MispredictPenalty is the front-end refill delay after a redirect.
	MispredictPenalty int

	// FaultPenalty models OS page-fault handling time.
	FaultPenalty int

	// Watchdog aborts the simulation when no instruction commits for this
	// many cycles (a modeling bug, not a program property). The abort is a
	// panic with a structured *WatchdogError carrying the ROB head and the
	// engine's stream-table dump; internal/sim recovers it into an error.
	Watchdog int64

	// MaxCycles, when positive, is a hard wall-clock-free bound: the run
	// aborts with a *WatchdogError once the cycle count exceeds it. Fault
	// campaigns set it so an injection-induced livelock can never hang a
	// test harness.
	MaxCycles int64

	// EventSkip enables event-driven cycle skipping: when every unit proves
	// itself quiescent, Run advances the clock directly to the earliest
	// reported next event instead of ticking through dead cycles. Purely a
	// wall-clock optimization — all statistics, cycle counts and results are
	// bit-identical with it on or off (the equivalence test enforces this).
	// Automatically disabled while a trace recorder is attached, since
	// tracing observes every cycle.
	EventSkip bool
}

// DefaultConfig returns the Table I core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		CommitWidth: 4,
		IssueWidth:  8,

		ROBSize:     128,
		IQSize:      80,
		SchedSize:   24,
		LQSize:      32,
		SQSize:      48,
		DecodeQueue: 16,

		IntPRF:  128,
		FPPRF:   192,
		VecPRF:  48,
		PredPRF: 32,

		IntALUs:    2,
		VecFPUs:    2,
		LoadPorts:  2,
		StorePorts: 1,

		VecBytes: arch.MaxVecBytes,

		MispredictPenalty: 8,
		FaultPenalty:      300,
		Watchdog:          2_000_000,

		EventSkip: true,
	}
}

// Lanes returns the physical vector lane count for elements of width w.
func (c *Config) Lanes(w arch.ElemWidth) int { return arch.LanesFor(c.VecBytes, w) }

// BlockCause classifies why the rename stage stalled in a cycle (the
// Fig 8.C statistic breaks down by cause).
type BlockCause int

const (
	BlockNone BlockCause = iota
	BlockROB
	BlockIQ
	BlockScheduler
	BlockPRF
	BlockLQ
	BlockSQ
	BlockSCROB
	BlockStreamData  // input-stream FIFO had no ready chunk
	BlockStreamStore // output-stream FIFO had no addressed slot
	blockCauseCount
)

func (b BlockCause) String() string {
	switch b {
	case BlockNone:
		return "none"
	case BlockROB:
		return "rob"
	case BlockIQ:
		return "iq"
	case BlockScheduler:
		return "sched"
	case BlockPRF:
		return "prf"
	case BlockLQ:
		return "lq"
	case BlockSQ:
		return "sq"
	case BlockSCROB:
		return "scrob"
	case BlockStreamData:
		return "stream-data"
	case BlockStreamStore:
		return "stream-store"
	}
	return "?"
}

// stallClass maps a rename-blocking cause onto the trace package's
// canonical per-cycle attribution class.
func (b BlockCause) stallClass() trace.StallClass {
	switch b {
	case BlockROB:
		return trace.ClassRenameROB
	case BlockIQ:
		return trace.ClassRenameIQ
	case BlockScheduler:
		return trace.ClassRenameSched
	case BlockPRF:
		return trace.ClassRenamePRF
	case BlockLQ:
		return trace.ClassRenameLQ
	case BlockSQ:
		return trace.ClassRenameSQ
	case BlockSCROB:
		return trace.ClassRenameSCROB
	case BlockStreamData:
		return trace.ClassStreamData
	case BlockStreamStore:
		return trace.ClassStreamStore
	}
	return trace.ClassExec
}

// Stats aggregates core activity for the evaluation figures.
type Stats struct {
	Cycles    int64
	Committed uint64
	// CommittedByKind counts retired instructions per isa.Kind. A dense
	// array rather than a map: commit is the hottest loop in the simulator
	// and the per-retire map-assign showed up as the top allocation site.
	CommittedByKind [isa.KindCount]uint64
	// RenameBlocked counts cycles the rename stage stalled on structural
	// resources (ROB, IQ, schedulers, PRFs, LSQ, SCROB) — the Fig 8.C
	// metric. Waiting for stream data is tracked separately in StreamWait:
	// it reflects FIFO pacing of a saturated backend, not pipeline
	// pressure, and the paper's streaming design treats the pre-load into
	// the physical register as part of normal operand delivery.
	RenameBlocked    int64
	StreamWait       int64
	RenameBlockCause [blockCauseCount]int64
	Renamed          uint64
	Mispredicts      uint64
	BranchesResolved uint64
	Squashed         uint64
	LoadsExecuted    uint64
	StoresCommitted  uint64
	PageFaults       uint64
	FetchRedirects   uint64
	FetchStallCycles int64
	ROBOccupancySum  int64
}

// KindBreakdown returns the per-kind retirement counts keyed by the kind
// names (for reports and JSON output).
func (s *Stats) KindBreakdown() map[string]uint64 {
	m := make(map[string]uint64)
	for k, n := range s.CommittedByKind {
		if n != 0 {
			m[isa.Kind(k).String()] = n
		}
	}
	return m
}

// RenameBlocksPerCycle is the Fig 8.C metric.
func (s *Stats) RenameBlocksPerCycle() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.RenameBlocked) / float64(s.Cycles)
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}
