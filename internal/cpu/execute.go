package cpu

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// srcsReady reports whether every renamed source value is available.
func (c *Core) srcsReady(e *robEntry) bool {
	for i, cl := range e.srcClass {
		if cl == isa.ClassNone {
			continue
		}
		if !c.physReady(cl, e.srcPhys[i]) {
			return false
		}
	}
	return true
}

// issue selects ready instructions oldest-first, bounded by the issue width
// and per-port functional-unit counts (Table I: 2 int ALUs, 2 vector/FP
// units, 2 load + 1 store ports).
func (c *Core) issue() {
	caps := [pgCount]int{
		pgInt:   c.cfg.IntALUs,
		pgVec:   c.cfg.VecFPUs,
		pgLoad:  c.cfg.LoadPorts,
		pgStore: c.cfg.StorePorts,
	}
	var used [pgCount]int
	issued := 0
	for _, e := range c.rob {
		if issued >= c.cfg.IssueWidth {
			break
		}
		if e.issued || e.squashed {
			continue
		}
		if used[e.group] >= caps[e.group] {
			continue
		}
		if !c.srcsReady(e) {
			continue
		}
		e.issued = true
		c.iqCount--
		c.schedCnt[e.group]--
		used[e.group]++
		issued++
		c.activity++
		if c.tracing {
			c.rec.Emit(trace.Event{Cycle: c.cycle, Kind: trace.EvIssue, Arg0: int64(e.pc), Arg1: e.seq})
		}
		c.execute(e)
	}
}

func (c *Core) operandU64(e *robEntry, i int) uint64 {
	if e.srcClass[i] == isa.ClassNone {
		return 0
	}
	return c.readVal(e.srcClass[i], e.srcPhys[i])
}

func (c *Core) operandVec(e *robEntry, i int) isa.VecVal {
	if e.srcClass[i] != isa.ClassVec {
		return isa.VecVal{}
	}
	return c.vecVal[e.srcPhys[i]]
}

func (c *Core) operandPred(e *robEntry) isa.PredVal {
	if e.srcClass[3] != isa.ClassPred {
		return isa.AllLanes
	}
	return c.prVal[e.srcPhys[3]]
}

// execute computes the instruction's result (or starts its memory phase)
// and schedules writeback after the opcode latency.
func (c *Core) execute(e *robEntry) {
	in := &e.inst
	op := in.Op
	lat := int64(op.Latency())
	e.execDoneAt = c.cycle + lat

	switch {
	case op == isa.OpSCfg:
		// Completes only once the SCROB has processed the part (one per
		// cycle); see complete().
		e.execDoneAt = c.cycle + 1

	case op == isa.OpNop || op == isa.OpHalt || e.ctl:
		// Effects apply at commit.

	case op.IsStreamBranch():
		dim := int(in.Imm)
		switch op {
		case isa.OpSBNotEnd:
			e.actTaken = !e.sbLast
		case isa.OpSBEnd:
			e.actTaken = e.sbLast
		case isa.OpSBDimNotEnd:
			e.actTaken = e.sbEnd&(1<<uint(dim)) == 0
		case isa.OpSBDimEnd:
			e.actTaken = e.sbEnd&(1<<uint(dim)) != 0
		}

	case op == isa.OpJ:
		e.actTaken = true
	case op == isa.OpBeq || op == isa.OpBne || op == isa.OpBlt || op == isa.OpBge:
		e.actTaken = isa.EvalCondBranch(op, c.operandU64(e, 0), c.operandU64(e, 1))
	case op == isa.OpBFirst:
		e.actTaken = c.readPredSrc(e).Any()
	case op == isa.OpBNone:
		e.actTaken = !c.readPredSrc(e).Any()

	case op == isa.OpSSetVL:
		req := int(c.operandU64(e, 0))
		max := c.cfg.Lanes(in.W)
		if req <= 0 || req > max {
			req = max
		}
		e.resVal = uint64(req)

	case op == isa.OpWhilelt:
		e.resPred = isa.EvalWhilelt(c.operandU64(e, 0), c.operandU64(e, 1), c.lanes(in.W))
	case op == isa.OpPTrue:
		e.resPred = isa.PredVal{Active: c.lanes(in.W)}
	case op == isa.OpPNot:
		p := c.readPredSrc(e)
		e.resPred = isa.PredVal{Active: c.lanes(in.W) - p.Limit(c.lanes(in.W))}
	case op == isa.OpIncVL:
		e.resVal = c.operandU64(e, 0) + uint64(c.lanes(in.W))
	case op == isa.OpGetVL:
		e.resVal = uint64(c.lanes(in.W))

	case op.Kind() == isa.KindIntALU:
		e.resVal = isa.EvalInt(op, c.operandU64(e, 0), c.operandU64(e, 1), in.Imm)
	case op.Kind() == isa.KindFPALU:
		e.resVal = isa.EvalFP(op, in.W, c.operandU64(e, 0), c.operandU64(e, 1), c.operandU64(e, 2), in.Imm)

	case op == isa.OpVFAddV || op == isa.OpVFMaxV || op == isa.OpVFMinV:
		bits := isa.EvalVecHoriz(op, in.W, c.operandVec(e, 0))
		e.resVec = isa.VecFrom(in.W, []uint64{bits})
	case op == isa.OpVFAddVF || op == isa.OpVFMaxVF || op == isa.OpVFMinVF:
		e.resVal = isa.EvalVecHoriz(op, in.W, c.operandVec(e, 0))

	case op.Kind() == isa.KindVecALU:
		args := isa.VecArgs{
			A: c.operandVec(e, 0), B: c.operandVec(e, 1), C: c.operandVec(e, 2),
			Pred: c.operandPred(e), Lanes: c.lanes(in.W), W: in.W,
		}
		switch op {
		case isa.OpVDup, isa.OpVDupX:
			args.Scalar = c.operandU64(e, 0)
		case isa.OpVExtract:
			args.Scalar = uint64(in.Imm)
		}
		// Destructive forms merge into the old destination (the renamed read
		// of the same architectural register), so short stream chunks act as
		// false-predicated lanes rather than truncating the accumulator.
		if in.Dst.Class == isa.ClassVec {
			for i, r := range [...]isa.Reg{in.Src1, in.Src2, in.Src3} {
				if r.Class == isa.ClassVec && r.N == in.Dst.N {
					mv := c.operandVec(e, i)
					args.Merge = &mv
					break
				}
			}
		}
		e.resVec = isa.EvalVecALU(op, args)

	case op == isa.OpLoad || op == isa.OpFLoad:
		e.agDone = true
		e.addr = c.operandU64(e, 0) + uint64(in.Imm)
		e.memBytes = int(in.W)
		e.memLanes = 1
		e.lines = lineSpan(e.addr, e.memBytes)
		e.execDoneAt = 0 // completes via the memory phase

	case op == isa.OpVLoad:
		e.agDone = true
		pred := c.operandPred(e)
		lanes := pred.Limit(c.lanes(in.W))
		e.addr = c.operandU64(e, 0) + (c.operandU64(e, 1)+uint64(in.Imm))*uint64(in.W)
		e.memLanes = lanes
		e.memBytes = lanes * int(in.W)
		if e.memBytes == 0 {
			// All lanes inactive: completes immediately with an empty vector.
			e.resVec = isa.VecVal{W: in.W}
			e.execDoneAt = c.cycle + lat
			e.memDone = true
			break
		}
		e.lines = lineSpan(e.addr, e.memBytes)
		e.execDoneAt = 0

	case op == isa.OpVLoadG:
		e.agDone = true
		pred := c.operandPred(e)
		idx := c.operandVec(e, 1)
		lanes := pred.Limit(idx.N)
		base := c.operandU64(e, 0)
		e.memLanes = lanes
		e.memBytes = lanes * int(in.W)
		e.laneAddrs = e.laneAddrs[:0]
		seen := map[uint64]bool{}
		e.lines = nil
		for l := 0; l < lanes; l++ {
			a := base + idx.Lane(l)*uint64(in.W)
			e.laneAddrs = append(e.laneAddrs, a)
			ln := arch.LineOf(a)
			if !seen[ln] {
				seen[ln] = true
				e.lines = append(e.lines, ln)
			}
		}
		if lanes == 0 {
			e.resVec = isa.VecVal{W: in.W}
			e.execDoneAt = c.cycle + lat
			e.memDone = true
			break
		}
		e.execDoneAt = 0

	case op == isa.OpStore || op == isa.OpFStore:
		e.agDone = true
		e.addr = c.operandU64(e, 0) + uint64(in.Imm)
		e.memBytes = int(in.W)
		sq := c.sqEntryFor(e.seq)
		if sq != nil {
			sq.addr = e.addr
			sq.bytes = e.memBytes
			sq.w = in.W
			sq.lanes = []uint64{isa.Truncate(in.W, c.operandU64(e, 2))}
			sq.resolved = true
		}
		if _, fault := c.hier.TLB.Translate(e.addr); fault {
			e.fault = true
			e.faultAddr = e.addr
		}

	case op == isa.OpVStore:
		e.agDone = true
		pred := c.operandPred(e)
		data := c.operandVec(e, 2)
		lanes := pred.Limit(data.N)
		e.addr = c.operandU64(e, 0) + (c.operandU64(e, 1)+uint64(in.Imm))*uint64(in.W)
		e.memBytes = lanes * int(in.W)
		sq := c.sqEntryFor(e.seq)
		if sq != nil {
			sq.addr = e.addr
			sq.bytes = e.memBytes
			sq.w = in.W
			sq.lanes = append([]uint64(nil), data.L[:lanes]...)
			sq.resolved = true
		}
		if e.memBytes > 0 {
			if _, fault := c.hier.TLB.Translate(e.addr); fault {
				e.fault = true
				e.faultAddr = e.addr
			}
		}

	default:
		panic(fmt.Sprintf("cpu: unimplemented op %s", op.Name()))
	}
}

func (c *Core) readPredSrc(e *robEntry) isa.PredVal {
	if e.srcClass[0] == isa.ClassPred {
		return c.prVal[e.srcPhys[0]]
	}
	return isa.AllLanes
}

// lineSpan returns the cache lines covering [addr, addr+bytes).
func lineSpan(addr uint64, bytes int) []uint64 {
	first := arch.LineOf(addr)
	last := arch.LineOf(addr + uint64(bytes) - 1)
	lines := []uint64{first}
	for l := first + arch.LineSize; l <= last; l += arch.LineSize {
		lines = append(lines, l)
	}
	return lines
}

// loadEligible reports whether a ROB entry is a load the memory phase still
// has to drive (issued, address generated, not yet complete or faulted).
func loadEligible(e *robEntry) bool {
	return e.isLoad && e.issued && !e.squashed && !e.memDone && e.agDone && !e.fault
}

// loadConflict runs the LSQ memory-dependence scan for a load. All older
// store addresses must be known (conservative memory dependence policy).
// Among resolved overlapping older stores the YOUNGEST one supplies the
// value: an exact scalar match forwards (fwd non-nil), anything else holds
// the load until that store commits (conflict true). memPhase acts on the
// result; memPhaseBusy uses the same scan so the skip decision can never
// disagree with the pipeline.
func (c *Core) loadConflict(e *robEntry) (conflict bool, fwd *sqEntry) {
	for _, s := range c.sq { // ordered oldest→youngest
		if s.seq >= e.seq || !s.live {
			continue
		}
		if !s.resolved {
			return true, nil
		}
		if s.bytes > 0 && overlaps(e.addr, e.memBytes, s.addr, s.bytes) {
			if e.memLanes == 1 && s.addr == e.addr && s.w == e.memW && len(s.lanes) == 1 && e.linesIssued == 0 {
				fwd = s // keep scanning: a younger store supersedes
			} else {
				return true, nil
			}
		}
		if e.inst.Op == isa.OpVLoadG && s.bytes > 0 {
			for _, a := range e.laneAddrs {
				if overlaps(a, int(e.memW), s.addr, s.bytes) {
					return true, nil
				}
			}
		}
	}
	return false, fwd
}

// loadStreamBlocked reports whether an output stream draining to the load's
// range blocks its first line issue (core-side coherence, paper §IV-A).
func (c *Core) loadStreamBlocked(e *robEntry) bool {
	if c.eng == nil || e.linesIssued != 0 {
		return false
	}
	if e.inst.Op == isa.OpVLoadG && len(e.laneAddrs) > 0 {
		for _, a := range e.laneAddrs {
			if c.eng.StoreMayOverlap(a, int(e.memW), e.storeStamp) {
				return true
			}
		}
		return false
	}
	return c.eng.StoreMayOverlap(e.addr, e.memBytes, e.storeStamp)
}

// memPhase drives issued loads through the LSQ: memory-dependence checks,
// stream-store overlap checks, translation, and line requests.
func (c *Core) memPhase() {
	ports := c.cfg.LoadPorts // line requests issuable this cycle
	for _, e := range c.rob {
		if !loadEligible(e) {
			continue
		}
		conflict, fwd := c.loadConflict(e)
		if !conflict && fwd != nil {
			e.resVal = fwd.lanes[0]
			e.resVec = isa.VecFrom(e.memW, fwd.lanes)
			e.memDone = true
			e.fwdLatency = true
			e.execDoneAt = c.cycle + 4
			c.Stats.LoadsExecuted++
			c.activity++
			continue
		}
		if conflict {
			continue
		}
		if c.loadStreamBlocked(e) {
			continue
		}
		if e.linesIssued == 0 {
			if _, fault := c.hier.TLB.Translate(e.addr); fault {
				e.fault = true
				e.faultAddr = e.addr
				e.execDoneAt = c.cycle + 1
				c.activity++
				continue
			}
		}
		// Issue outstanding line requests within port bandwidth.
		for e.linesIssued < len(e.lines) && ports > 0 {
			line := e.lines[e.linesIssued]
			ee := e
			req := &mem.Req{Line: line, PC: e.pc, Done: func(at int64) { c.loadLineArrived(ee, at) }}
			ok := c.hier.Access(c.cycle, req)
			c.activity++ // both outcomes mutate: issue, or a reject tally below
			if !ok {
				break
			}
			e.linesIssued++
			e.linesPend++
			ports--
		}
	}
}

func overlaps(a uint64, an int, b uint64, bn int) bool {
	return a < b+uint64(bn) && b < a+uint64(an)
}

// loadLineArrived completes one line of a load; when all lines are in, the
// value is read functionally and writeback scheduled.
func (c *Core) loadLineArrived(e *robEntry, now int64) {
	c.activity++
	if e.squashed || e.memDone {
		return
	}
	e.linesPend--
	if e.linesPend > 0 || e.linesIssued < len(e.lines) {
		return
	}
	e.memDone = true
	c.Stats.LoadsExecuted++
	w := e.memW
	switch e.inst.Op {
	case isa.OpLoad:
		e.resVal = c.hier.Mem.Read(e.addr, w)
	case isa.OpFLoad:
		e.resVal = c.hier.Mem.Read(e.addr, w)
	case isa.OpVLoad:
		lanes := make([]uint64, e.memLanes)
		for i := range lanes {
			lanes[i] = c.hier.Mem.Read(e.addr+uint64(i)*uint64(w), w)
		}
		e.resVec = isa.VecFrom(w, lanes)
	case isa.OpVLoadG:
		lanes := make([]uint64, len(e.laneAddrs))
		for i, a := range e.laneAddrs {
			lanes[i] = c.hier.Mem.Read(a, w)
		}
		e.resVec = isa.VecFrom(w, lanes)
	}
	e.execDoneAt = now + 1
}

// complete retires execution results into the physical registers, resolves
// branches (squashing on mispredicts), and feeds output-stream data to the
// engine.
func (c *Core) complete() {
	for idx := 0; idx < len(c.rob); idx++ {
		e := c.rob[idx]
		if e.squashed || e.done || !e.issued {
			continue
		}
		if e.execDoneAt == 0 || e.execDoneAt > c.cycle {
			continue
		}
		if e.cfgTok != nil && !c.eng.ConfigProcessed(e.cfgTok) {
			continue // configuration still queued in the SCROB
		}
		e.done = true
		c.activity++
		if e.dstClass != isa.ClassNone {
			c.writePhys(e.dstClass, e.newPhys, e.resVal, e.resVec, e.resPred)
		}
		if e.produce != nil && e.produce.consumed && c.eng != nil {
			c.eng.WriteStoreData(e.produce.slot, e.produce.seq, e.resVec)
		}
		if e.isBranch && !e.brResolved {
			e.brResolved = true
			c.Stats.BranchesResolved++
			if e.inst.Op != isa.OpJ {
				c.trainPredictor(e.pc, e.actTaken)
			}
			e.actTarget = e.pc + 1
			if e.actTaken {
				e.actTarget = e.inst.Target
			}
			predTarget := e.pc + 1
			if e.predTaken {
				predTarget = e.inst.Target
			}
			if e.actTarget != predTarget {
				c.Stats.Mispredicts++
				c.squashAfter(idx)
				c.redirect(e.actTarget, c.cfg.MispredictPenalty)
				return // younger entries are gone
			}
		}
	}
}

// drainStores issues committed (senior) store lines to the memory system.
func (c *Core) drainStores() {
	for n := 0; n < c.cfg.StorePorts && len(c.drainQ) > 0; n++ {
		line := c.drainQ[0]
		req := &mem.Req{Line: line, Write: true}
		ok := c.hier.Access(c.cycle, req)
		c.activity++ // both outcomes mutate: a drained line, or a reject tally
		if !ok {
			return
		}
		c.drainQ = c.drainQ[1:]
	}
}
