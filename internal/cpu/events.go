package cpu

import "repro/internal/mem"

// Event-driven cycle skipping (Config.EventSkip).
//
// Every pipeline stage is greedy: anything it can do in a cycle, it does in
// that cycle. So a Step in which nothing changed (stepQuiet: no activity
// counter moved — core, engine or memory hierarchy) proves the machine is
// in a fixed point — re-running the same Step on the same state does the same
// nothing — until some unit's clock-driven event fires: an execution result
// maturing (execDoneAt), a redirect hold expiring (fetchHoldTo), an engine
// pause or NACK backoff ending, a cache fill or DRAM access completing.
//
// maybeSkip collects those events and advances the clock directly to the
// earliest one. Soundness needs two more ingredients:
//
//  1. Per-cycle stall tallies. Some stalled states mutate statistics every
//     cycle without making progress (rename-block causes, fetch stalls, ROB
//     occupancy sums; engine FIFO-full/origin-stall/config-sync tallies;
//     cache/DRAM reject counters on retries). Either the state is reported
//     as busy by the unit's NextEventAt (engine and memory retries — no
//     skip happens), or the tally is a pure function of the frozen state
//     and maybeSkip adds exactly k more of it (core-side tallies below).
//  2. Watchdog equivalence. The skip target is capped at the cycles where
//     the no-commit watchdog and MaxCycles bound would abort, so a wedged
//     machine panics at the identical cycle with identical stats.
//
// The result: cycle counts, every statistic, and every architectural output
// are bit-identical with skipping on or off. TestEventSkipEquivalence
// enforces this across all kernels and variants.

// skipHook, when non-nil, observes every skip decision (testing only): the
// cycle skipped from, the target cycle, and the per-unit event bounds that
// justified it.
var skipHook func(from, to, coreEv, engEv, hierEv int64)

// maybeSkip advances the clock past provably-dead cycles. Called after each
// Step by Run; never during Step-driven unit tests (skipOK is set by Run).
func (c *Core) maybeSkip() {
	if !c.skipOK || !c.stepQuiet {
		return
	}
	// States that would act — or mutate a reject/stall counter — next cycle.
	if len(c.drainQ) > 0 || c.memPhaseBusy() {
		return
	}
	coreEv := c.nextEventAt()
	engEv := mem.NoEvent
	if c.eng != nil {
		engEv = c.eng.NextEventAt(c.cycle)
	}
	hierEv := c.hier.NextEventAt(c.cycle)
	t := coreEv
	if engEv < t {
		t = engEv
	}
	if hierEv < t {
		t = hierEv
	}
	if !c.halted {
		// The watchdog aborts at the first cycle with cycle-lastCommit >
		// Watchdog; never skip past it so a wedge panics identically.
		if bound := c.lastCommit + c.cfg.Watchdog + 1; t > bound {
			t = bound
		}
	}
	if c.cfg.MaxCycles > 0 && t > c.cfg.MaxCycles {
		t = c.cfg.MaxCycles
	}
	if t >= mem.NoEvent || t <= c.cycle+1 {
		return
	}
	k := t - 1 - c.cycle // dead cycles elided; the next Step lands on t

	// Compensate the per-cycle tallies the elided Steps would have made.
	// Each is a pure function of the frozen state, so "k more of what the
	// last Step did" is exact.
	c.Stats.ROBOccupancySum += k * int64(len(c.rob))
	if c.lastBlock != BlockNone {
		c.Stats.RenameBlockCause[c.lastBlock] += k
		if c.lastBlock == BlockStreamData || c.lastBlock == BlockStreamStore {
			c.Stats.StreamWait += k
		} else {
			c.Stats.RenameBlocked += k
		}
		if c.lastBlock == BlockSCROB {
			// tryRename consumes a sequence number before discovering the
			// SCROB is full; the elided cycles would have done the same.
			c.seq += k
		}
	}
	if c.fetchWouldStall() {
		c.Stats.FetchStallCycles += k
	}
	if c.eng != nil {
		// Engine-side tally-only frozen states (full FIFOs / full MRQ)
		// charge per cycle too; the engine knows which.
		c.eng.SkipStallTallies(c.cycle, k)
	}

	if skipHook != nil {
		skipHook(c.cycle, t, coreEv, engEv, hierEv)
	}
	c.skipped += k
	c.cycle += k
	c.Stats.Cycles = c.cycle
}

// nextEventAt returns the earliest core-side clock event: the next maturing
// execution result, or the fetch redirect hold expiring. Loads waiting on
// memory (execDoneAt 0) wake via cache callbacks, which the hierarchy's own
// events bound.
func (c *Core) nextEventAt() int64 {
	next := mem.NoEvent
	for _, e := range c.rob {
		if e.squashed || e.done || !e.issued {
			continue
		}
		if e.execDoneAt > c.cycle && e.execDoneAt < next {
			next = e.execDoneAt
		}
	}
	if !c.fetchHalted && c.fetchHoldTo > c.cycle && c.fetchHoldTo < next {
		next = c.fetchHoldTo
	}
	return next
}

// memPhaseBusy reports whether memPhase would make progress — or retry a
// rejected line request, mutating reject counters — next cycle. It runs the
// same dependence/overlap scans as memPhase on the frozen state;
// conflict-blocked and stream-overlap-blocked loads are pure waits whose
// unblocking is driven by other entries' events.
func (c *Core) memPhaseBusy() bool {
	for _, e := range c.rob {
		if !loadEligible(e) {
			continue
		}
		conflict, fwd := c.loadConflict(e)
		if conflict {
			continue
		}
		if fwd != nil {
			return true // would forward next cycle
		}
		if c.loadStreamBlocked(e) {
			continue
		}
		if e.linesIssued < len(e.lines) {
			return true // would translate and issue line requests
		}
	}
	return false
}

// fetchWouldStall reports whether the elided cycles would each charge one
// FetchStallCycles tally: fetch active, decode has room, the line is neither
// buffered nor resident, and the fill request is already in flight (the
// only front-end state that stalls without mutating anything else).
func (c *Core) fetchWouldStall() bool {
	if c.fetchHalted || c.cycle < c.fetchHoldTo || len(c.decodeQ) >= c.cfg.DecodeQueue {
		return false
	}
	line := instLine(c.fetchPC)
	if c.ifetchHaveLine && c.ifetchReadyLine == line {
		return false
	}
	if c.hier.L1I.Contains(line) {
		return false
	}
	return c.ifetchBusy
}

// SkippedCycles returns how many dead cycles event-driven skipping elided
// (0 when disabled). Purely wall-clock accounting: skipped cycles are still
// counted in Stats.Cycles and every per-cycle statistic.
func (c *Core) SkippedCycles() int64 { return c.skipped }

// SkipDisabledReason returns why event skipping was forced off for this run
// ("" when it ran enabled, or was off by configuration).
func (c *Core) SkipDisabledReason() string { return c.skipReason }

// SetSkipLogger installs a sink for the skip-disabled notice (Run calls it
// once, before the first cycle, when Config.EventSkip is set but a tracing
// recorder forces skipping off).
func (c *Core) SetSkipLogger(fn func(string)) { c.skipLog = fn }
