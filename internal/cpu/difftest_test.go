package cpu

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// refInterp executes a program sequentially with plain functional
// semantics — the oracle for differential testing of the out-of-order core.
type refInterp struct {
	x   [isa.NumIntRegs]uint64
	f   [isa.NumFPRegs]uint64
	m   *mem.Memory
	p   *program.Program
	pc  int
	ran int
}

func (r *refInterp) run(maxSteps int) bool {
	for r.ran = 0; r.ran < maxSteps; r.ran++ {
		in := r.p.At(r.pc)
		next := r.pc + 1
		op := in.Op
		switch {
		case op == isa.OpHalt:
			return true
		case op == isa.OpNop:
		case op.Kind() == isa.KindIntALU:
			v := isa.EvalInt(op, r.x[in.Src1.N], r.x[in.Src2.N], in.Imm)
			if in.Dst.N != 0 {
				r.x[in.Dst.N] = v
			}
		case op.Kind() == isa.KindFPALU:
			a, b, c := r.f[in.Src1.N], r.f[in.Src2.N], r.f[in.Src3.N]
			r.f[in.Dst.N] = isa.EvalFP(op, in.W, a, b, c, in.Imm)
		case op == isa.OpLoad:
			if in.Dst.N != 0 {
				r.x[in.Dst.N] = r.m.Read(r.x[in.Src1.N]+uint64(in.Imm), in.W)
			}
		case op == isa.OpFLoad:
			r.f[in.Dst.N] = r.m.Read(r.x[in.Src1.N]+uint64(in.Imm), in.W)
		case op == isa.OpStore:
			r.m.Write(r.x[in.Src1.N]+uint64(in.Imm), in.W, r.x[in.Src3.N])
		case op == isa.OpFStore:
			r.m.Write(r.x[in.Src1.N]+uint64(in.Imm), in.W, r.f[in.Src3.N])
		case op == isa.OpJ:
			next = in.Target
		case op.IsBranch():
			if isa.EvalCondBranch(op, r.x[in.Src1.N], r.x[in.Src2.N]) {
				next = in.Target
			}
		default:
			panic("refInterp: unsupported op " + op.Name())
		}
		r.pc = next
	}
	return false
}

// genProgram builds a random but always-terminating program: a prologue of
// random ALU/memory ops, a counted loop whose body mixes data-dependent
// branches, ALU ops and memory traffic, and an epilogue.
func genProgram(rng *rand.Rand, memBase uint64) *program.Program {
	b := program.NewBuilder("fuzz")
	// x20 = memory base; x21 = loop counter; x22 = loop bound.
	b.I(isa.Li(isa.X(20), int64(memBase)))
	b.I(isa.Li(isa.X(21), 0))
	b.I(isa.Li(isa.X(22), int64(8+rng.Intn(60))))

	randReg := func() isa.Reg { return isa.X(1 + rng.Intn(15)) }
	randF := func() isa.Reg { return isa.F(1 + rng.Intn(10)) }
	emitRandom := func(allowSkip bool, tag string) {
		switch rng.Intn(13) {
		case 0:
			b.I(isa.Li(randReg(), int64(rng.Intn(1000))-500))
		case 1:
			b.I(isa.Add(randReg(), randReg(), randReg()))
		case 2:
			b.I(isa.Sub(randReg(), randReg(), randReg()))
		case 3:
			b.I(isa.Mul(randReg(), randReg(), randReg()))
		case 4:
			b.I(isa.AndI(randReg(), randReg(), int64(rng.Intn(255))))
		case 5:
			b.I(isa.AddI(randReg(), randReg(), int64(rng.Intn(64))-32))
		case 6:
			// Store then load within a small window: exercises forwarding.
			off := int64(8 * rng.Intn(16))
			b.I(isa.Store(arch.W8, isa.X(20), off, randReg()))
			b.I(isa.Load(arch.W8, randReg(), isa.X(20), off))
		case 7:
			off := int64(8 * rng.Intn(16))
			b.I(isa.Load(arch.W8, randReg(), isa.X(20), off))
		case 8:
			if allowSkip {
				// Data-dependent forward branch (mispredict generator).
				skip := tag
				b.I(isa.AndI(isa.X(19), randReg(), 3))
				b.I(isa.Bne(isa.X(19), isa.X(0), skip))
				b.I(isa.AddI(randReg(), randReg(), 7))
				b.Label(skip)
			} else {
				b.I(isa.SllI(randReg(), randReg(), int64(rng.Intn(8))))
			}
		case 9:
			b.I(isa.Slt(randReg(), randReg(), randReg()))
		case 10:
			// FP chain: load-immediate, arithmetic, occasional store+load.
			b.I(isa.FLi(arch.W8, randF(), float64(rng.Intn(100))-50))
			b.I(isa.FAdd(arch.W8, randF(), randF(), randF()))
		case 11:
			b.I(isa.FMul(arch.W8, randF(), randF(), randF()))
			b.I(isa.FMadd(arch.W8, randF(), randF(), randF(), randF()))
		case 12:
			off := int64(8 * (16 + rng.Intn(8)))
			b.I(isa.FStore(arch.W8, isa.X(20), off, randF()))
			b.I(isa.FLoad(arch.W8, randF(), isa.X(20), off))
		}
	}
	for i := 0; i < 4+rng.Intn(8); i++ {
		emitRandom(false, "")
	}
	b.Label("loop")
	for i := 0; i < 3+rng.Intn(10); i++ {
		emitRandom(true, "skip"+string(rune('a'+i))+"x")
	}
	b.I(isa.AddI(isa.X(21), isa.X(21), 1))
	b.I(isa.Blt(isa.X(21), isa.X(22), "loop"))
	for i := 0; i < 3; i++ {
		emitRandom(false, "")
	}
	b.I(isa.Halt())
	return b.MustBuild()
}

// TestDifferentialRandomPrograms runs random programs on both the
// out-of-order core and the sequential oracle and requires identical
// architectural state: registers and memory.
func TestDifferentialRandomPrograms(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))

		hc := mem.DefaultHierarchyConfig()
		h := mem.NewHierarchy(hc)
		memBase := h.Mem.Alloc(256, 64)
		p := genProgram(rng, memBase)

		cfg := DefaultConfig()
		cfg.Watchdog = 500_000
		core := New(cfg, p, h, nil)
		// Same initial register noise for both.
		var init [16]uint64
		for i := 1; i < 16; i++ {
			init[i] = uint64(rng.Int63n(1 << 20))
			core.SetIntReg(i, init[i])
		}
		core.Run()

		ref := &refInterp{m: mem.NewMemory(), p: p}
		refBase := ref.m.Alloc(256, 64)
		if refBase != memBase {
			t.Fatalf("allocator divergence: %#x vs %#x", refBase, memBase)
		}
		for i := 1; i < 16; i++ {
			ref.x[i] = init[i]
		}
		if !ref.run(1_000_000) {
			t.Fatalf("trial %d: oracle did not terminate", trial)
		}

		for i := 1; i < 23; i++ {
			if got, want := core.IntReg(i), ref.x[i]; got != want {
				t.Fatalf("trial %d: x%d = %#x, want %#x\nprogram:\n%s", trial, i, got, want, p)
			}
		}
		for i := 1; i < 11; i++ {
			got := isa.FloatBits(arch.W8, core.FPReg(i, arch.W8))
			if got != ref.f[i] {
				t.Fatalf("trial %d: f%d = %#x, want %#x\nprogram:\n%s", trial, i, got, ref.f[i], p)
			}
		}
		for off := 0; off < 256; off += 8 {
			a := memBase + uint64(off)
			if got, want := h.Mem.Read(a, arch.W8), ref.m.Read(a, arch.W8); got != want {
				t.Fatalf("trial %d: mem[%#x] = %#x, want %#x\nprogram:\n%s", trial, a, got, want, p)
			}
		}
	}
}
