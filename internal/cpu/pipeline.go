package cpu

import (
	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// --- fetch with branch prediction ---

// bpUnset marks a branch-predictor slot that has never been consulted
// (2-bit counters only reach 0..3, so 0xFF is free as a sentinel).
const bpUnset = 0xFF

// predict returns the taken/not-taken prediction for a branch at pc, using
// 2-bit counters initialized backward-taken / forward-not-taken.
func (c *Core) predict(pc int, in isa.Inst) bool {
	if in.Op == isa.OpJ {
		return true
	}
	if pc < 0 || pc >= len(c.bp) {
		// Wrong-path fetch outside the program: static prediction only.
		return in.Target <= pc
	}
	ctr := c.bp[pc]
	if ctr == bpUnset {
		if in.Target <= pc {
			ctr = 2 // backward: loop branch, weakly taken
		} else {
			ctr = 1
		}
		c.bp[pc] = ctr
	}
	return ctr >= 2
}

func (c *Core) trainPredictor(pc int, taken bool) {
	if pc < 0 || pc >= len(c.bp) {
		return
	}
	ctr := c.bp[pc]
	if ctr == bpUnset {
		ctr = 0
	}
	if taken {
		if ctr < 3 {
			ctr++
		}
	} else if ctr > 0 {
		ctr--
	}
	c.bp[pc] = ctr
}

// instLine maps a program counter to its instruction-cache line (4-byte
// encodings, as in the base RISC ISA).
func instLine(pc int) uint64 { return arch.LineOf(uint64(pc) * 4) }

// fetchLineReady drives instruction fetch through the L1-I. Hits are fully
// pipelined (no stall); the front end stalls only while a missing line is
// being filled from the L2.
func (c *Core) fetchLineReady(pc int) bool {
	line := instLine(pc)
	if c.ifetchHaveLine && c.ifetchReadyLine == line {
		return true
	}
	if c.hier.L1I.Contains(line) {
		c.ifetchHaveLine = true
		c.ifetchReadyLine = line
		c.activity++
		return true
	}
	if c.ifetchBusy {
		// Pure stall: nothing changes until the fill's Done fires. maybeSkip
		// compensates this tally for skipped cycles (fetchWouldStall).
		c.Stats.FetchStallCycles++
		if c.tracing {
			c.rec.Emit(trace.Event{Cycle: c.cycle, Kind: trace.EvFetchStall})
		}
		return false
	}
	c.ifetchBusy = true
	c.activity++ // request issue (or the reject tally it triggers below)
	req := &mem.Req{Line: line, Done: func(int64) {
		c.activity++
		c.ifetchBusy = false
		c.ifetchHaveLine = true
		c.ifetchReadyLine = line
	}}
	if !c.hier.FetchInst(c.cycle, req) {
		c.ifetchBusy = false
	}
	c.Stats.FetchStallCycles++
	if c.tracing {
		c.rec.Emit(trace.Event{Cycle: c.cycle, Kind: trace.EvFetchStall})
	}
	return false
}

func (c *Core) fetch() {
	if c.fetchHalted || c.cycle < c.fetchHoldTo {
		return
	}
	for i := 0; i < c.cfg.FetchWidth && len(c.decodeQ) < c.cfg.DecodeQueue; i++ {
		if !c.fetchLineReady(c.fetchPC) {
			return
		}
		in := c.prog.At(c.fetchPC)
		pred := false
		next := c.fetchPC + 1
		if in.Op.IsBranch() {
			pred = c.predict(c.fetchPC, in)
			if pred {
				next = in.Target
			}
		}
		c.decodeQ = append(c.decodeQ, fetchedInst{pc: c.fetchPC, predTaken: pred})
		c.fetchPC = next
		c.activity++
		if in.Op == isa.OpHalt {
			// Stop fetching past a (possibly speculative) halt; a squash
			// clears this when the halt was on the wrong path.
			c.fetchHalted = true
			break
		}
	}
}

// redirect points fetch at pc after a mispredict or exception.
func (c *Core) redirect(pc int, penalty int) {
	c.activity++
	c.fetchPC = pc
	c.fetchHoldTo = c.cycle + int64(penalty)
	c.fetchHalted = false
	c.decodeQ = c.decodeQ[:0]
	c.Stats.FetchRedirects++
	if c.tracing {
		c.rec.Emit(trace.Event{Cycle: c.cycle, Kind: trace.EvFetchRedirect, Arg0: int64(pc)})
	}
}

// --- rename/dispatch (where UVE streams meet the pipeline, paper §IV-A) ---

// regOperands reports whether the instruction's register fields are real
// data operands. Stream configuration/control and stream branches name
// streams, not register values.
func regOperands(op isa.Op) bool {
	switch op {
	case isa.OpSCfg, isa.OpSSuspend, isa.OpSResume, isa.OpSStop, isa.OpSForce,
		isa.OpSBNotEnd, isa.OpSBEnd, isa.OpSBDimNotEnd, isa.OpSBDimEnd:
		return false
	}
	return true
}

func (c *Core) rename() {
	blocked := BlockNone
	for n := 0; n < c.cfg.FetchWidth && len(c.decodeQ) > 0; n++ {
		f := c.decodeQ[0]
		in := c.prog.At(f.pc)
		cause := c.tryRename(f, in)
		if cause != BlockNone {
			blocked = cause
			break
		}
		c.decodeQ = c.decodeQ[1:]
		c.Stats.Renamed++
		c.activity++
	}
	if blocked != BlockNone {
		c.Stats.RenameBlockCause[blocked]++
		if blocked == BlockStreamData || blocked == BlockStreamStore {
			c.Stats.StreamWait++
		} else {
			c.Stats.RenameBlocked++
		}
		c.lastBlock = blocked
		if c.tracing {
			c.rec.Emit(trace.Event{
				Cycle: c.cycle, Kind: trace.EvRenameBlock,
				Arg0: int64(blocked.stallClass()),
			})
		}
	}
}

// tryRename attempts to rename and dispatch one instruction; it returns the
// blocking cause on a resource stall.
func (c *Core) tryRename(f fetchedInst, in isa.Inst) BlockCause {
	if len(c.rob) >= c.cfg.ROBSize {
		return BlockROB
	}
	// ss.setvl serializes: it renames alone (after the window drains) and
	// nothing younger renames until it commits, so the new vector length
	// applies to every subsequent instruction.
	if c.serializeInROB {
		return BlockROB
	}
	if in.Op == isa.OpSSetVL && len(c.rob) > 0 {
		return BlockROB
	}
	if c.iqCount >= c.cfg.IQSize {
		return BlockIQ
	}
	group := groupOf(in.Op)
	if c.schedCnt[group] >= c.cfg.SchedSize {
		return BlockScheduler
	}
	isMem := in.Op.IsMem()
	isLoad := isMem && !in.Op.IsStore()
	if isLoad && c.lqCount >= c.cfg.LQSize {
		return BlockLQ
	}
	if isMem && !isLoad && len(c.sq) >= c.cfg.SQSize {
		return BlockSQ
	}

	// Stream interactions: identify stream sources (consumes) and a stream
	// destination (reservation) before allocating anything.
	type consumePlan struct {
		u    int
		slot int
	}
	var consumes []consumePlan
	produceSlot := -1
	if c.eng != nil && regOperands(in.Op) {
		seen := map[uint8]bool{}
		for _, r := range [...]isa.Reg{in.Src1, in.Src2, in.Src3} {
			if r.Class != isa.ClassVec || seen[r.N] {
				continue
			}
			// The destructive read of the old destination in fmla-style ops
			// is a regular register read, not a stream consume, when the
			// destination is an output stream.
			if slot, ok := c.eng.StreamFor(int(r.N)); ok && c.eng.IsLoad(slot) {
				seen[r.N] = true
				consumes = append(consumes, consumePlan{u: int(r.N), slot: slot})
			}
		}
		if in.Dst.Class == isa.ClassVec {
			if slot, ok := c.eng.StreamFor(int(in.Dst.N)); ok && !c.eng.IsLoad(slot) {
				produceSlot = slot
			}
		}
	}

	// Readiness checks before any allocation.
	for _, cp := range consumes {
		if !c.eng.CanConsume(cp.slot) {
			return BlockStreamData
		}
	}
	if produceSlot >= 0 && !c.eng.CanReserve(produceSlot) {
		return BlockStreamStore
	}
	needVec := len(consumes)
	if in.Dst.Class == isa.ClassVec {
		needVec++
	}
	if needVec > len(c.vecFree) {
		return BlockPRF
	}
	if in.HasDst() && regOperands(in.Op) {
		switch in.Dst.Class {
		case isa.ClassInt:
			if !in.Dst.IsZero() && len(c.intFree) == 0 {
				return BlockPRF
			}
		case isa.ClassFP:
			if len(c.fpFree) == 0 {
				return BlockPRF
			}
		case isa.ClassPred:
			if in.Dst.N != 0 && len(c.prFree) == 0 {
				return BlockPRF
			}
		}
	}

	e := &robEntry{
		seq:       c.seq,
		pc:        f.pc,
		inst:      in,
		predTaken: f.predTaken,
		group:     group,
		isBranch:  in.Op.IsBranch(),
		isMem:     isMem,
		isLoad:    isLoad,
		memW:      in.W,
		sqIdx:     -1,
	}
	c.seq++

	// Stream configuration µOps enter the SCROB at rename.
	if in.Op == isa.OpSCfg {
		tok, ok := c.eng.RenameConfigPart(in.Cfg)
		if !ok {
			return BlockSCROB
		}
		e.cfgTok = tok
	}

	// Resolve sources through the RAT (or through stream consumes).
	if regOperands(in.Op) {
		srcs := [...]isa.Reg{in.Src1, in.Src2, in.Src3, in.Pred}
		for i, r := range srcs {
			e.srcClass[i] = r.Class
			if r.Class == isa.ClassNone {
				continue
			}
			e.srcPhys[i] = *c.ratOf(r.Class, r.N)
		}
		// Perform the stream consumes: data is read into fresh physical
		// registers at rename (paper A1: minimal load-to-use latency).
		for _, cp := range consumes {
			view, ok := c.eng.ConsumeChunk(cp.slot)
			if !ok {
				panic("cpu: CanConsume/ConsumeChunk disagree")
			}
			phys, _ := c.allocPhys(isa.ClassVec)
			c.writePhys(isa.ClassVec, phys, 0, view.Data, isa.PredVal{})
			rec := streamRec{
				slot: cp.slot, seq: view.Seq,
				prevEnd: view.PrevEnd, prevLast: view.PrevLast,
				consumed: view.Consumed, n: view.N,
			}
			rec.phys = phys
			e.consumes = append(e.consumes, rec)
			if view.Fault {
				e.fault = true
				e.faultAddr = view.FaultAddr
			}
			for i, r := range srcs {
				if r.Class == isa.ClassVec && int(r.N) == cp.u {
					e.srcPhys[i] = phys
					e.srcClass[i] = isa.ClassVec
				}
			}
		}
		if produceSlot >= 0 {
			view, ok := c.eng.ReserveStore(produceSlot)
			if !ok {
				panic("cpu: CanReserve/ReserveStore disagree")
			}
			rec := streamRec{
				slot: produceSlot, seq: view.Seq,
				prevEnd: view.PrevEnd, prevLast: view.PrevLast,
				consumed: view.Consumed, n: view.N,
			}
			e.produce = &rec
			if view.Fault {
				e.fault = true
				e.faultAddr = view.FaultAddr
			}
		}
		// Destination rename.
		if in.HasDst() && !(in.Dst.Class == isa.ClassInt && in.Dst.IsZero()) {
			phys, ok := c.allocPhys(in.Dst.Class)
			if !ok {
				panic("cpu: PRF availability checked but allocation failed")
			}
			e.dstClass = in.Dst.Class
			e.dstArch = in.Dst.N
			e.newPhys = phys
			rat := c.ratOf(in.Dst.Class, in.Dst.N)
			e.oldPhys = *rat
			*rat = phys
		}
	}

	// Stream-conditional branches snapshot the rename-time stream flags
	// (exact in program order, paper §IV-A "Stream Iteration").
	if in.Op.IsStreamBranch() && c.eng != nil {
		u := int(in.Src1.N)
		if slot, ok := c.eng.StreamFor(u); ok {
			e.sbEnd, e.sbLast = c.eng.SpecFlags(slot)
		} else {
			e.sbEnd, e.sbLast = c.eng.LastFlags(u)
		}
	}

	// Stream control takes effect at rename (younger instructions see the
	// new association in program order); squash restores, ss.stop releases
	// at commit.
	if c.eng != nil {
		switch in.Op {
		case isa.OpSSuspend:
			e.ctl = true
			e.ctlUndo = c.eng.RenameSuspend(int(in.Dst.N))
		case isa.OpSResume:
			e.ctl = true
			e.ctlUndo = c.eng.RenameResume(int(in.Dst.N))
		case isa.OpSStop:
			e.ctl = true
			e.ctlUndo = c.eng.RenameStop(int(in.Dst.N))
		case isa.OpSForce:
			e.ctl = true
		}
	}
	if in.Op == isa.OpSSetVL {
		c.serializeInROB = true
	}

	if isLoad {
		c.lqCount++
		e.lqHeld = true
		if c.eng != nil {
			e.storeStamp = c.eng.ReserveStamp()
		}
	}
	if isMem && !isLoad {
		sqe := &sqEntry{seq: e.seq, live: true}
		c.sq = append(c.sq, sqe)
		e.sqIdx = len(c.sq) - 1
		e.sqHeld = true
	}
	c.iqCount++
	c.schedCnt[group]++
	c.rob = append(c.rob, e)
	return BlockNone
}

// sqEntryFor finds the live SQ entry of a store by sequence number.
func (c *Core) sqEntryFor(seq int64) *sqEntry {
	for _, s := range c.sq {
		if s.seq == seq {
			return s
		}
	}
	return nil
}
