package cpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/trace"
)

// slowLoadProgram builds a pointer-walk over uncached memory: each load
// misses to DRAM, leaving long dead windows the event scheduler should
// elide.
func slowLoadProgram(t *testing.T) (*program.Program, func(h *mem.Hierarchy)) {
	t.Helper()
	const n = 64
	const base = 0x1_0000
	const stride = 4096 // one line per page: misses all the way down
	p := program.NewBuilder("slowloads").
		I(isa.Li(isa.X(1), base)).
		I(isa.Li(isa.X(2), 0)). // sum
		I(isa.Li(isa.X(3), 0)). // i
		I(isa.Li(isa.X(4), n)).
		Label("loop").
		I(isa.Load(arch.W8, isa.X(5), isa.X(1), 0)).
		I(isa.Add(isa.X(2), isa.X(2), isa.X(5))).
		I(isa.AddI(isa.X(1), isa.X(1), stride)).
		I(isa.AddI(isa.X(3), isa.X(3), 1)).
		I(isa.Blt(isa.X(3), isa.X(4), "loop")).
		I(isa.Halt()).
		MustBuild()
	init := func(h *mem.Hierarchy) {
		for i := 0; i < n; i++ {
			h.Mem.Write(uint64(base+i*stride), 8, uint64(i+1))
		}
	}
	return p, init
}

// TestEventSkipSoundnessHook runs a miss-heavy workload with the skip hook
// installed and asserts, for every skip taken: the target never passes any
// unit's reported next event (no unit misses a wake-up), and the skip
// actually elided at least one cycle. It also requires that skipping fired
// at all — the equivalence sweep would be vacuous against a scheduler that
// never skips.
func TestEventSkipSoundnessHook(t *testing.T) {
	p, init := slowLoadProgram(t)
	m := newMachine(t, p, false)
	init(m.hier)

	type skip struct{ from, to, coreEv, engEv, hierEv int64 }
	var skips []skip
	skipHook = func(from, to, coreEv, engEv, hierEv int64) {
		skips = append(skips, skip{from, to, coreEv, engEv, hierEv})
	}
	defer func() { skipHook = nil }()

	m.core.Run()
	if got := m.core.IntReg(2); got != 64*65/2 {
		t.Fatalf("sum = %d, want %d", got, 64*65/2)
	}
	if m.core.SkippedCycles() == 0 {
		t.Fatal("miss-heavy run skipped no cycles; the event scheduler never fired")
	}
	for _, s := range skips {
		if s.to <= s.from+1 {
			t.Fatalf("skip from %d to %d elides nothing", s.from, s.to)
		}
		for _, ev := range []int64{s.coreEv, s.engEv, s.hierEv} {
			if s.to > ev {
				t.Fatalf("skip from %d to %d passes a unit event at %d (bounds core=%d eng=%d hier=%d)",
					s.from, s.to, ev, s.coreEv, s.engEv, s.hierEv)
			}
		}
	}
	t.Logf("skips=%d cycles-elided=%d of %d total", len(skips), m.core.SkippedCycles(), m.core.Cycle())
}

// TestEventSkipUVEFires: the skip path must also engage on a streaming
// machine, where the engine's NextEventAt gates every decision.
func TestEventSkipUVEFires(t *testing.T) {
	const n = 1 << 12
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	xb := h.Mem.Alloc(4*n, 64)
	yb := h.Mem.Alloc(4*n, 64)
	for i := 0; i < n; i++ {
		h.Mem.WriteFloat(xb+uint64(4*i), arch.W4, float64(i))
		h.Mem.WriteFloat(yb+uint64(4*i), arch.W4, float64(2*i))
	}
	p := saxpyUVE(arch.W4, n, xb, yb)
	e := engine.New(engine.DefaultConfig(), h)
	cfg := DefaultConfig()
	cfg.Watchdog = 200_000
	core := New(cfg, p, h, e)
	core.SetFPReg(1, arch.W4, 1.5)
	core.Run()
	if core.SkippedCycles() == 0 {
		t.Fatal("UVE run skipped no cycles")
	}
	t.Logf("UVE saxpy: elided %d of %d cycles", core.SkippedCycles(), core.Cycle())
}

// TestTracingDisablesEventSkip: a per-cycle trace recorder observes every
// cycle, so skipping must force itself off — with a logged reason — and
// elide nothing.
func TestTracingDisablesEventSkip(t *testing.T) {
	p, init := slowLoadProgram(t)
	m := newMachine(t, p, false)
	init(m.hier)
	m.core.SetRecorder(trace.NewCollector(256, 0))
	var logged string
	m.core.SetSkipLogger(func(s string) { logged = s })
	m.core.Run()
	if m.core.SkippedCycles() != 0 {
		t.Fatalf("traced run skipped %d cycles; skipping must be disabled under tracing", m.core.SkippedCycles())
	}
	if m.core.SkipDisabledReason() == "" {
		t.Fatal("SkipDisabledReason empty for a traced run")
	}
	if logged == "" {
		t.Fatal("skip logger not invoked for a traced run")
	}
}

// TestEventSkipOffByConfig: EventSkip=false elides nothing and reports no
// disabled-reason (off by choice is not a forced disable).
func TestEventSkipOffByConfig(t *testing.T) {
	p, init := slowLoadProgram(t)
	m := newMachine(t, p, false)
	init(m.hier)
	m.core.cfg.EventSkip = false
	m.core.Run()
	if m.core.SkippedCycles() != 0 {
		t.Fatalf("EventSkip=false run skipped %d cycles", m.core.SkippedCycles())
	}
	if m.core.SkipDisabledReason() != "" {
		t.Fatalf("unexpected disabled reason %q", m.core.SkipDisabledReason())
	}
}
