package cpu

import (
	"fmt"
	"strings"
)

// WatchdogError is the structured diagnostic the core panics with when a
// run stops making progress: the forward-progress counter expired, the
// hard cycle bound (Config.MaxCycles) was exceeded, or the post-halt store
// drain wedged. It converts a livelock/deadlock — which under fault
// injection would otherwise hang the process — into an inspectable error:
// internal/sim recovers it and surfaces it through the normal error path.
type WatchdogError struct {
	Reason     string // which bound tripped
	Cycle      int64  // cycle at abort
	LastCommit int64  // cycle of the last committed instruction
	PC         int    // approximate fetch PC
	ROBHead    string // state of the oldest in-flight instruction
	StreamDump string // engine stream-table state (UVE machines)
}

func (w *WatchdogError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cpu: watchdog (%s): cycle %d, last commit at cycle %d, pc≈%d, rob head %s",
		w.Reason, w.Cycle, w.LastCommit, w.PC, w.ROBHead)
	if w.StreamDump != "" {
		b.WriteString("\nstream table at abort:\n")
		b.WriteString(strings.TrimRight(w.StreamDump, "\n"))
	}
	return b.String()
}

// watchdogError snapshots the core (and, on UVE machines, the engine's
// stream table) into the diagnostic.
func (c *Core) watchdogError(reason string) *WatchdogError {
	w := &WatchdogError{
		Reason:     reason,
		Cycle:      c.cycle,
		LastCommit: c.lastCommit,
		PC:         c.fetchPC,
		ROBHead:    c.robHeadDesc(),
	}
	if c.eng != nil {
		var b strings.Builder
		c.eng.DumpStreams(&b)
		w.StreamDump = b.String()
	}
	return w
}
