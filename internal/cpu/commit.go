package cpu

import (
	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/trace"
)

// commit retires up to CommitWidth finished instructions in order, applying
// the architectural side effects: store writes become visible, stream
// consumes/produces/configs commit to the engine, stream control executes,
// and precise exceptions are taken.
func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && len(c.rob) > 0; n++ {
		e := c.rob[0]
		if !e.done {
			return
		}
		if e.fault {
			c.takeFault(e)
			return
		}
		in := &e.inst

		for i := range e.consumes {
			rec := &e.consumes[i]
			if rec.consumed {
				c.eng.CommitConsume(rec.slot, rec.seq)
			}
			c.freePhys(isa.ClassVec, rec.phys)
		}
		if e.produce != nil && e.produce.consumed {
			c.eng.CommitStore(e.produce.slot, e.produce.seq, c.cycle)
		}
		if e.cfgTok != nil {
			c.eng.CommitConfigPart(e.cfgTok)
		}
		if e.ctl && in.Op == isa.OpSStop {
			c.eng.CommitStop(int(in.Dst.N), e.ctlUndo)
		}
		if e.isMem && !e.isLoad {
			c.commitStore(e)
		}
		if e.isLoad && e.lqHeld {
			c.lqCount--
			e.lqHeld = false
		}
		if e.dstClass != isa.ClassNone {
			c.freePhys(e.dstClass, e.oldPhys)
		}
		if in.Op == isa.OpSSetVL {
			c.effVecBytes = int(e.resVal) * int(in.W)
			c.serializeInROB = false
			if c.eng != nil {
				c.eng.SetVL(c.effVecBytes)
			}
		}

		c.rob = c.rob[1:]
		c.activity++
		c.Stats.Committed++
		c.Stats.CommittedByKind[in.Op.Kind()]++
		c.lastCommit = c.cycle
		if c.tracing {
			c.rec.Emit(trace.Event{Cycle: c.cycle, Kind: trace.EvCommit, Arg0: int64(e.pc), Arg1: e.seq})
		}
		if in.Op == isa.OpHalt {
			c.halted = true
			c.haltCycle = c.cycle
			return
		}
	}
}

// commitStore makes a scalar/vector store architecturally visible and
// queues its lines for timing drain.
func (c *Core) commitStore(e *robEntry) {
	sq := c.sqEntryFor(e.seq)
	if sq == nil || !sq.resolved {
		panic("cpu: committing unresolved store")
	}
	for i, lane := range sq.lanes {
		c.hier.Mem.Write(sq.addr+uint64(i)*uint64(sq.w), sq.w, lane)
	}
	if c.eng != nil {
		c.eng.NoteScalarStore(e.pc, sq.addr, len(sq.lanes)*int(sq.w))
	}
	if sq.bytes > 0 {
		for _, line := range lineSpan(sq.addr, sq.bytes) {
			c.drainQ = append(c.drainQ, line)
		}
	}
	sq.live = false
	c.removeSQ(e.seq)
	e.sqHeld = false
	c.Stats.StoresCommitted++
}

func (c *Core) removeSQ(seq int64) {
	for i, s := range c.sq {
		if s.seq == seq {
			c.sq = append(c.sq[:i], c.sq[i+1:]...)
			return
		}
	}
}

// takeFault implements precise page-fault handling at commit (paper §IV-A
// "Exception Handling"): squash everything, run the OS model (map the page,
// flush the TLB), rewind streams to their commit point, and re-execute from
// the faulting instruction.
func (c *Core) takeFault(e *robEntry) {
	c.Stats.PageFaults++
	faultPC := e.pc
	faultAddr := e.faultAddr
	if c.tracing {
		c.rec.Emit(trace.Event{
			Cycle: c.cycle, Kind: trace.EvPageFault,
			Arg0: int64(faultPC), Arg1: int64(faultAddr),
		})
	}
	c.squashAfter(-1) // squash the whole window including the faulting entry
	c.hier.Mem.MapPage(faultAddr)
	c.hier.TLB.Flush()
	if c.eng != nil {
		c.eng.ReloadAllFromCommit()
	}
	c.redirect(faultPC, c.cfg.FaultPenalty)
	c.lastCommit = c.cycle
}

// squashAfter removes all ROB entries younger than index keep (exclusive),
// walking youngest-first and undoing rename, LSQ and stream effects — the
// paper's ROB-walk recovery with stream-pointer reversal (§IV-A
// "Miss-Speculation").
func (c *Core) squashAfter(keep int) {
	if c.tracing && len(c.rob)-1 > keep {
		c.rec.Emit(trace.Event{
			Cycle: c.cycle, Kind: trace.EvSquash, Arg0: int64(len(c.rob) - 1 - keep),
		})
	}
	for i := len(c.rob) - 1; i > keep; i-- {
		e := c.rob[i]
		e.squashed = true
		c.Stats.Squashed++

		if !e.issued {
			c.iqCount--
			c.schedCnt[e.group]--
		}
		if e.lqHeld {
			c.lqCount--
			e.lqHeld = false
		}
		if e.sqHeld {
			c.removeSQ(e.seq)
			e.sqHeld = false
		}
		if e.produce != nil && e.produce.consumed {
			c.eng.Unconsume(e.produce.slot, e.produce.prevEnd, e.produce.prevLast)
		}
		for j := len(e.consumes) - 1; j >= 0; j-- {
			rec := &e.consumes[j]
			if rec.consumed {
				c.eng.Unconsume(rec.slot, rec.prevEnd, rec.prevLast)
			}
			c.freePhys(isa.ClassVec, rec.phys)
		}
		if e.cfgTok != nil {
			c.eng.SquashConfigPart(e.cfgTok)
		}
		if e.ctl && e.inst.Op != isa.OpSForce {
			c.eng.SquashCtl(e.ctlUndo)
		}
		if e.dstClass != isa.ClassNone {
			*c.ratOf(e.dstClass, e.dstArch) = e.oldPhys
			c.freePhys(e.dstClass, e.newPhys)
		}
		if e.inst.Op == isa.OpSSetVL {
			c.serializeInROB = false
		}
	}
	c.rob = c.rob[:keep+1]
}

// DrainedStoreLines exposes pending senior-store lines (tests).
func (c *Core) DrainedStoreLines() int { return len(c.drainQ) }

// VecReg reads an architectural vector register (after Run), for tests.
func (c *Core) VecReg(n int) isa.VecVal { return c.vecVal[c.ratVec[n]] }

// PredReg reads an architectural predicate register, for tests.
func (c *Core) PredReg(n int) isa.PredVal { return c.prVal[c.ratPred[n]] }

// ReadMem exposes the functional memory for result validation.
func (c *Core) ReadMem(addr uint64, w arch.ElemWidth) uint64 { return c.hier.Mem.Read(addr, w) }
