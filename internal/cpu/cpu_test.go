package cpu

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

type machine struct {
	core *Core
	hier *mem.Hierarchy
	eng  *engine.Engine
}

func newMachine(t *testing.T, p *program.Program, uve bool) *machine {
	t.Helper()
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = !uve
	h := mem.NewHierarchy(hc)
	var e *engine.Engine
	if uve {
		e = engine.New(engine.DefaultConfig(), h)
	}
	cfg := DefaultConfig()
	cfg.Watchdog = 200_000
	return &machine{core: New(cfg, p, h, e), hier: h, eng: e}
}

func TestScalarArithmetic(t *testing.T) {
	p := program.NewBuilder("arith").
		I(isa.Li(isa.X(1), 6)).
		I(isa.Li(isa.X(2), 7)).
		I(isa.Mul(isa.X(3), isa.X(1), isa.X(2))).
		I(isa.AddI(isa.X(3), isa.X(3), 58)).
		I(isa.Halt()).
		MustBuild()
	m := newMachine(t, p, false)
	m.core.Run()
	if got := m.core.IntReg(3); got != 100 {
		t.Fatalf("x3 = %d, want 100", got)
	}
	if m.core.Stats.Committed != 5 {
		t.Fatalf("committed %d, want 5", m.core.Stats.Committed)
	}
}

func TestScalarLoop(t *testing.T) {
	// Sum 1..100 with a backward branch.
	p := program.NewBuilder("loop").
		I(isa.Li(isa.X(1), 0)).   // sum
		I(isa.Li(isa.X(2), 1)).   // i
		I(isa.Li(isa.X(3), 101)). // bound
		Label("loop").
		I(isa.Add(isa.X(1), isa.X(1), isa.X(2))).
		I(isa.AddI(isa.X(2), isa.X(2), 1)).
		I(isa.Blt(isa.X(2), isa.X(3), "loop")).
		I(isa.Halt()).
		MustBuild()
	m := newMachine(t, p, false)
	m.core.Run()
	if got := m.core.IntReg(1); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	if m.core.Stats.Mispredicts == 0 {
		t.Log("note: loop exit usually mispredicts once")
	}
}

func TestX0IsZero(t *testing.T) {
	p := program.NewBuilder("x0").
		I(isa.Li(isa.X(0), 42)). // write to x0 is discarded
		I(isa.Add(isa.X(1), isa.X(0), isa.X(0))).
		I(isa.Halt()).
		MustBuild()
	m := newMachine(t, p, false)
	m.core.Run()
	if got := m.core.IntReg(1); got != 0 {
		t.Fatalf("x1 = %d, want 0 (x0 hardwired)", got)
	}
}

func TestScalarMemoryRoundTrip(t *testing.T) {
	p := program.NewBuilder("mem").
		I(isa.Store(arch.W8, isa.X(1), 0, isa.X(2))).
		I(isa.Load(arch.W8, isa.X(3), isa.X(1), 0)).
		I(isa.AddI(isa.X(3), isa.X(3), 1)).
		I(isa.Halt()).
		MustBuild()
	m := newMachine(t, p, false)
	addr := m.hier.Mem.Alloc(64, 64)
	m.core.SetIntReg(1, addr)
	m.core.SetIntReg(2, 999)
	m.core.Run()
	if got := m.core.IntReg(3); got != 1000 {
		t.Fatalf("x3 = %d, want 1000 (store-to-load forwarding)", got)
	}
	if got := m.hier.Mem.Read(addr, arch.W8); got != 999 {
		t.Fatalf("memory = %d, want 999", got)
	}
}

func TestScalarFP(t *testing.T) {
	p := program.NewBuilder("fp").
		I(isa.FLi(arch.W8, isa.F(1), 2.5)).
		I(isa.FLi(arch.W8, isa.F(2), 4.0)).
		I(isa.FMul(arch.W8, isa.F(3), isa.F(1), isa.F(2))).
		I(isa.FSqrt(arch.W8, isa.F(4), isa.F(3))).
		I(isa.Halt()).
		MustBuild()
	m := newMachine(t, p, false)
	m.core.Run()
	if got := m.core.FPReg(3, arch.W8); got != 10 {
		t.Fatalf("f3 = %v, want 10", got)
	}
	if got := m.core.FPReg(4, arch.W8); got < 3.16 || got > 3.17 {
		t.Fatalf("f4 = %v, want sqrt(10)", got)
	}
}

// referenceSaxpyProgramSVE builds the paper's Fig 1.B loop shape.
func saxpySVE(w arch.ElemWidth) *program.Program {
	// x1=n, x2=&x, x3=&y, f1=a
	return program.NewBuilder("saxpy-sve").
		I(isa.Li(isa.X(4), 0)).
		I(isa.Whilelt(w, isa.P(1), isa.X(4), isa.X(1))).
		I(isa.VDup(w, isa.V(0), isa.F(1))).
		Label("loop").
		I(isa.VLoad(w, isa.V(1), isa.X(2), isa.X(4), 0, isa.P(1))).
		I(isa.VLoad(w, isa.V(2), isa.X(3), isa.X(4), 0, isa.P(1))).
		I(isa.VFMla(w, isa.V(2), isa.V(0), isa.V(1), isa.P(1))).
		I(isa.VStore(w, isa.X(3), isa.X(4), 0, isa.V(2), isa.P(1))).
		I(isa.IncVL(w, isa.X(4), isa.X(4))).
		I(isa.Whilelt(w, isa.P(1), isa.X(4), isa.X(1))).
		I(isa.BFirst(isa.P(1), "loop")).
		I(isa.Halt()).
		MustBuild()
}

func TestSVEStyleSaxpy(t *testing.T) {
	const n = 100
	const a = 2.5
	p := saxpySVE(arch.W4)
	m := newMachine(t, p, false)
	xb := m.hier.Mem.Alloc(4*n, 64)
	yb := m.hier.Mem.Alloc(4*n, 64)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i)
		y := float64(2 * i)
		m.hier.Mem.WriteFloat(xb+uint64(4*i), arch.W4, x)
		m.hier.Mem.WriteFloat(yb+uint64(4*i), arch.W4, y)
		want[i] = float64(float32(a)*float32(x) + float32(y))
	}
	m.core.SetIntReg(1, n)
	m.core.SetIntReg(2, xb)
	m.core.SetIntReg(3, yb)
	m.core.SetFPReg(1, arch.W4, a)
	cycles := m.core.Run()
	for i := 0; i < n; i++ {
		if got := m.hier.Mem.ReadFloat(yb+uint64(4*i), arch.W4); got != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, got, want[i])
		}
	}
	if cycles <= 0 {
		t.Fatal("no cycles recorded")
	}
}

// saxpyUVE is the paper's Fig 4 kernel: three streams, a broadcast, a
// multiply and add per chunk, and a single stream-conditional branch.
func saxpyUVE(w arch.ElemWidth, n int64, xb, yb uint64) *program.Program {
	dx := descriptor.New(xb, w, descriptor.Load).Linear(n, 1).MustBuild()
	dyIn := descriptor.New(yb, w, descriptor.Load).Linear(n, 1).MustBuild()
	dyOut := descriptor.New(yb, w, descriptor.Store).Linear(n, 1).MustBuild()
	return program.NewBuilder("saxpy-uve").
		ConfigStream(0, dx).
		ConfigStream(1, dyIn).
		ConfigStream(2, dyOut).
		I(isa.VDup(w, isa.V(3), isa.F(1))).
		Label("loop").
		I(isa.VFMul(w, isa.V(4), isa.V(3), isa.V(0), isa.None)).
		I(isa.VFAdd(w, isa.V(2), isa.V(4), isa.V(1), isa.None)).
		I(isa.SBNotEnd(0, "loop")).
		I(isa.Halt()).
		MustBuild()
}

func TestUVESaxpy(t *testing.T) {
	const n = 200
	const a = 1.5
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	xb := h.Mem.Alloc(4*n, 64)
	yb := h.Mem.Alloc(4*n, 64)
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		x := float64(i) * 0.5
		y := float64(i) * 0.25
		h.Mem.WriteFloat(xb+uint64(4*i), arch.W4, x)
		h.Mem.WriteFloat(yb+uint64(4*i), arch.W4, y)
		want[i] = float64(float32(a)*float32(x) + float32(y))
	}
	p := saxpyUVE(arch.W4, n, xb, yb)
	e := engine.New(engine.DefaultConfig(), h)
	cfg := DefaultConfig()
	cfg.Watchdog = 200_000
	core := New(cfg, p, h, e)
	core.SetFPReg(1, arch.W4, a)
	cycles := core.Run()
	for i := 0; i < n; i++ {
		if got := h.Mem.ReadFloat(yb+uint64(4*i), arch.W4); got != want[i] {
			t.Fatalf("y[%d] = %v, want %v", i, got, want[i])
		}
	}
	t.Logf("UVE saxpy: %d cycles, %d committed", cycles, core.Stats.Committed)
	// The loop is 3 instructions per 16-lane chunk + preamble; the whole
	// kernel must commit far fewer instructions than an element-wise loop.
	if core.Stats.Committed > 100 {
		t.Fatalf("committed %d instructions; UVE loop should be ~3 per chunk", core.Stats.Committed)
	}
}

func TestUVEvsSVESaxpyCyclesAndInstructions(t *testing.T) {
	const n = 1 << 12
	runSVE := func() (int64, uint64) {
		p := saxpySVE(arch.W4)
		m := newMachine(t, p, false)
		xb := m.hier.Mem.Alloc(4*n, 64)
		yb := m.hier.Mem.Alloc(4*n, 64)
		m.core.SetIntReg(1, n)
		m.core.SetIntReg(2, xb)
		m.core.SetIntReg(3, yb)
		m.core.SetFPReg(1, arch.W4, 2.0)
		cyc := m.core.Run()
		return cyc, m.core.Stats.Committed
	}
	runUVE := func() (int64, uint64) {
		hc := mem.DefaultHierarchyConfig()
		hc.Prefetchers = false
		h := mem.NewHierarchy(hc)
		xb := h.Mem.Alloc(4*n, 64)
		yb := h.Mem.Alloc(4*n, 64)
		p := saxpyUVE(arch.W4, n, xb, yb)
		e := engine.New(engine.DefaultConfig(), h)
		cfg := DefaultConfig()
		cfg.Watchdog = 200_000
		core := New(cfg, p, h, e)
		core.SetFPReg(1, arch.W4, 2.0)
		cyc := core.Run()
		return cyc, core.Stats.Committed
	}
	sveCyc, sveInst := runSVE()
	uveCyc, uveInst := runUVE()
	t.Logf("SVE: %d cycles %d inst; UVE: %d cycles %d inst (speedup %.2fx, inst reduction %.1f%%)",
		sveCyc, sveInst, uveCyc, uveInst,
		float64(sveCyc)/float64(uveCyc), 100*(1-float64(uveInst)/float64(sveInst)))
	if uveInst*2 >= sveInst {
		t.Fatalf("UVE committed %d vs SVE %d; expected large reduction", uveInst, sveInst)
	}
	if uveCyc >= sveCyc {
		t.Fatalf("UVE %d cycles vs SVE %d; expected speedup", uveCyc, sveCyc)
	}
}

func TestUVEPageFaultRecovery(t *testing.T) {
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	n := int64(arch.PageSize/4 + 64)
	xb := h.Mem.Alloc(int(4*n), arch.PageSize)
	yb := h.Mem.Alloc(int(4*n), arch.PageSize)
	for i := int64(0); i < n; i++ {
		h.Mem.WriteFloat(xb+uint64(4*i), arch.W4, 1)
		h.Mem.WriteFloat(yb+uint64(4*i), arch.W4, 2)
	}
	// Fault in the middle of the x stream.
	h.Mem.UnmapPage(xb + arch.PageSize)
	p := saxpyUVE(arch.W4, n, xb, yb)
	e := engine.New(engine.DefaultConfig(), h)
	cfg := DefaultConfig()
	cfg.Watchdog = 500_000
	core := New(cfg, p, h, e)
	core.SetFPReg(1, arch.W4, 3)
	core.Run()
	if core.Stats.PageFaults == 0 {
		t.Fatal("expected a page fault")
	}
	for i := int64(0); i < n; i++ {
		if got := h.Mem.ReadFloat(yb+uint64(4*i), arch.W4); got != 5 {
			t.Fatalf("y[%d] = %v, want 5 (fault recovery must be transparent)", i, got)
		}
	}
}

func TestUVERowReductionMAMRShape(t *testing.T) {
	// Fig 2 kernel: per-row maximum of a matrix via dim-0 chunking,
	// horizontal max, and dimension-conditional branches.
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	const rows, cols = 5, 37
	ab := h.Mem.Alloc(4*rows*cols, 64)
	cb := h.Mem.Alloc(4*rows, 64)
	want := make([]float64, rows)
	for i := 0; i < rows; i++ {
		best := -1e30
		for j := 0; j < cols; j++ {
			v := float64((i*31+j*17)%101) - 50
			h.Mem.WriteFloat(ab+uint64(4*(i*cols+j)), arch.W4, v)
			if v > best {
				best = v
			}
		}
		want[i] = best
	}
	da := descriptor.New(ab, arch.W4, descriptor.Load).Dim(0, cols, 1).Dim(0, rows, cols).MustBuild()
	// One scalar result per row: shape the output as rows of one element so
	// every horizontal-max write is its own chunk.
	dc := descriptor.New(cb, arch.W4, descriptor.Store).Dim(0, 1, 1).Dim(0, rows, 1).MustBuild()
	p := program.NewBuilder("mamr").
		ConfigStream(0, da).
		ConfigStream(1, dc).
		Label("next").
		I(isa.VMove(arch.W4, isa.V(5), isa.V(0))).
		I(isa.SBDimEnd(0, 0, "hmax")).
		Label("loop").
		I(isa.VFMax(arch.W4, isa.V(5), isa.V(5), isa.V(0), isa.None)).
		I(isa.SBDimNotEnd(0, 0, "loop")).
		Label("hmax").
		I(isa.VFMaxV(arch.W4, isa.V(1), isa.V(5))).
		I(isa.SBNotEnd(0, "next")).
		I(isa.Halt()).
		MustBuild()
	e := engine.New(engine.DefaultConfig(), h)
	cfg := DefaultConfig()
	cfg.Watchdog = 200_000
	core := New(cfg, p, h, e)
	core.Run()
	for i := 0; i < rows; i++ {
		if got := h.Mem.ReadFloat(cb+uint64(4*i), arch.W4); got != want[i] {
			t.Fatalf("C[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestRenameBlocksTrackedUnderPRFPressure(t *testing.T) {
	// A long dependent FP chain with many renames on a tiny FP PRF.
	b := program.NewBuilder("prf")
	b.I(isa.Li(isa.X(1), 0), isa.Li(isa.X(2), 400))
	b.Label("loop")
	for i := 1; i < 9; i++ {
		b.I(isa.FAdd(arch.W8, isa.F(i), isa.F(i), isa.F(i)))
	}
	b.I(isa.AddI(isa.X(1), isa.X(1), 1))
	b.I(isa.Blt(isa.X(1), isa.X(2), "loop"))
	b.I(isa.Halt())
	p := b.MustBuild()
	hc := mem.DefaultHierarchyConfig()
	h := mem.NewHierarchy(hc)
	cfg := DefaultConfig()
	cfg.FPPRF = 40
	cfg.Watchdog = 200_000
	core := New(cfg, p, h, nil)
	core.Run()
	if core.Stats.RenameBlocked == 0 {
		t.Fatal("expected rename blocks under PRF pressure")
	}
	if core.Stats.RenameBlockCause[BlockPRF] == 0 {
		t.Fatal("expected PRF-cause blocks")
	}
}

func TestMispredictRecoveryCorrectness(t *testing.T) {
	// Data-dependent branches on pseudo-random values force mispredicts;
	// architectural state must stay exact.
	b := program.NewBuilder("br")
	b.I(isa.Li(isa.X(1), 0))   // i
	b.I(isa.Li(isa.X(2), 200)) // n
	b.I(isa.Li(isa.X(3), 0))   // acc
	b.I(isa.Li(isa.X(5), 0))   // lcg state
	b.Label("loop")
	b.I(isa.Mul(isa.X(5), isa.X(5), isa.X(0))) // x5 = 0 (keep it simple but data-dependent-looking)
	b.I(isa.Add(isa.X(5), isa.X(5), isa.X(1)))
	b.I(isa.AndI(isa.X(6), isa.X(5), 3))
	b.I(isa.Beq(isa.X(6), isa.X(0), "skip"))
	b.I(isa.AddI(isa.X(3), isa.X(3), 1))
	b.Label("skip")
	b.I(isa.AddI(isa.X(1), isa.X(1), 1))
	b.I(isa.Blt(isa.X(1), isa.X(2), "loop"))
	b.I(isa.Halt())
	p := b.MustBuild()
	m := newMachine(t, p, false)
	m.core.Run()
	want := uint64(0)
	for i := 0; i < 200; i++ {
		if i&3 != 0 {
			want++
		}
	}
	if got := m.core.IntReg(3); got != want {
		t.Fatalf("acc = %d, want %d", got, want)
	}
	if m.core.Stats.Mispredicts == 0 {
		t.Fatal("expected mispredicts on the pattern")
	}
}

func TestAndIOp(t *testing.T) {
	p := program.NewBuilder("andi").
		I(isa.Li(isa.X(1), 0b1101)).
		I(isa.Inst{Op: isa.OpAndI, Dst: isa.X(2), Src1: isa.X(1), Imm: 0b0110}).
		I(isa.Halt()).MustBuild()
	m := newMachine(t, p, false)
	m.core.Run()
	if got := m.core.IntReg(2); got != 0b0100 {
		t.Fatalf("andi = %#b", got)
	}
}

// TestSetVLNarrowsVectorLength exercises ss.setvl (paper §III-B "Advanced
// control"): narrowing the effective vector length changes both the
// engine's chunk sizes and the core's lane counts, with results unchanged.
func TestSetVLNarrowsVectorLength(t *testing.T) {
	const n = 128
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	xb := h.Mem.Alloc(4*n, 64)
	yb := h.Mem.Alloc(4*n, 64)
	for i := 0; i < n; i++ {
		h.Mem.WriteFloat(xb+uint64(4*i), arch.W4, float64(i))
	}
	// setvl to 4 lanes of W4 (128-bit emulation), then stream-copy.
	b := program.NewBuilder("setvl")
	b.I(isa.Li(isa.X(5), 4))
	b.I(isa.SetVL(arch.W4, isa.X(6), isa.X(5)))
	b.ConfigStream(0, descriptor.New(xb, arch.W4, descriptor.Load).Linear(n, 1).MustBuild())
	b.ConfigStream(1, descriptor.New(yb, arch.W4, descriptor.Store).Linear(n, 1).MustBuild())
	b.Label("loop")
	b.I(isa.VMove(arch.W4, isa.V(1), isa.V(0)))
	b.I(isa.SBNotEnd(0, "loop"))
	b.I(isa.Halt())
	e := engine.New(engine.DefaultConfig(), h)
	cfg := DefaultConfig()
	cfg.Watchdog = 200_000
	core := New(cfg, b.MustBuild(), h, e)
	core.Run()
	if got := core.IntReg(6); got != 4 {
		t.Fatalf("granted VL = %d lanes, want 4", got)
	}
	if core.EffVecBytes() != 16 {
		t.Fatalf("effective vector bytes = %d, want 16", core.EffVecBytes())
	}
	for i := 0; i < n; i++ {
		if got := h.Mem.ReadFloat(yb+uint64(4*i), arch.W4); got != float64(i) {
			t.Fatalf("y[%d] = %v", i, got)
		}
	}
	// 128 elements at 4 lanes → 32 chunks per stream.
	if e.Stats.ChunksLoaded != 32 {
		t.Fatalf("chunks loaded = %d, want 32 (narrowed VL)", e.Stats.ChunksLoaded)
	}
}

// TestSetVLGrantClamps checks an oversized request is clamped to the
// physical width.
func TestSetVLGrantClamps(t *testing.T) {
	p := program.NewBuilder("clamp").
		I(isa.Li(isa.X(5), 999)).
		I(isa.SetVL(arch.W4, isa.X(6), isa.X(5))).
		I(isa.GetVL(arch.W4, isa.X(7))).
		I(isa.Halt()).
		MustBuild()
	m := newMachine(t, p, false)
	m.core.Run()
	if got := m.core.IntReg(6); got != 16 {
		t.Fatalf("granted = %d, want 16 (clamped)", got)
	}
	if got := m.core.IntReg(7); got != 16 {
		t.Fatalf("getvl = %d, want 16", got)
	}
}

// TestInstructionFetchTiming checks that cold instruction lines stall the
// front end (L1-I misses) while steady-state loops run from the cache.
func TestInstructionFetchTiming(t *testing.T) {
	b := program.NewBuilder("ifetch")
	b.I(isa.Li(isa.X(1), 0), isa.Li(isa.X(2), 2000))
	b.Label("loop")
	b.I(isa.AddI(isa.X(1), isa.X(1), 1))
	b.I(isa.Blt(isa.X(1), isa.X(2), "loop"))
	b.I(isa.Halt())
	m := newMachine(t, b.MustBuild(), false)
	m.core.Run()
	if m.core.Stats.FetchStallCycles == 0 {
		t.Fatal("cold-start fetch must stall on the L1-I")
	}
	if m.hier.L1I.Stats.Misses == 0 {
		t.Fatal("no L1-I misses recorded")
	}
	// Steady state: the 2000-iteration loop must not miss per iteration.
	if m.hier.L1I.Stats.Misses > 4 {
		t.Fatalf("L1-I misses = %d; loop should be cache-resident", m.hier.L1I.Stats.Misses)
	}
}

// TestStreamSuspendResumeInstructions drives ss.suspend/ss.resume through
// the pipeline: while suspended the register reads as a normal vector
// register; after resume the stream continues from where it stopped.
func TestStreamSuspendResumeInstructions(t *testing.T) {
	const n = 64
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	xb := h.Mem.Alloc(4*n, 64)
	yb := h.Mem.Alloc(4*n, 64)
	for i := 0; i < n; i++ {
		h.Mem.WriteFloat(xb+uint64(4*i), arch.W4, float64(i+1))
	}
	b := program.NewBuilder("suspend")
	b.ConfigStream(0, descriptor.New(xb, arch.W4, descriptor.Load).Linear(n, 1).MustBuild())
	b.ConfigStream(1, descriptor.New(yb, arch.W4, descriptor.Store).Linear(n, 1).MustBuild())
	// Consume two chunks, suspend, do unrelated work using u0 as a PLAIN
	// register, resume, and drain the rest.
	b.I(isa.VMove(arch.W4, isa.V(1), isa.V(0)))
	b.I(isa.VMove(arch.W4, isa.V(1), isa.V(0)))
	b.I(isa.SSuspend(0))
	b.I(isa.VDupX(arch.W4, isa.V(0), isa.X(0))) // plain write, not a stream op
	b.I(isa.VMove(arch.W4, isa.V(5), isa.V(0))) // plain read
	b.I(isa.SResume(0))
	b.Label("drain")
	b.I(isa.VMove(arch.W4, isa.V(1), isa.V(0)))
	b.I(isa.SBNotEnd(0, "drain"))
	b.I(isa.Halt())
	e := engine.New(engine.DefaultConfig(), h)
	cfg := DefaultConfig()
	cfg.Watchdog = 200_000
	core := New(cfg, b.MustBuild(), h, e)
	core.Run()
	for i := 0; i < n; i++ {
		if got := h.Mem.ReadFloat(yb+uint64(4*i), arch.W4); got != float64(i+1) {
			t.Fatalf("y[%d] = %v, want %v", i, got, float64(i+1))
		}
	}
}
