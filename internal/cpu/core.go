package cpu

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/trace"
)

// portGroup classifies instructions by the functional-unit port they issue
// through.
type portGroup int

const (
	pgInt portGroup = iota
	pgVec
	pgLoad
	pgStore
	pgCount
)

func groupOf(op isa.Op) portGroup {
	switch op.Kind() {
	case isa.KindIntALU, isa.KindBranch, isa.KindNop, isa.KindStreamCfg, isa.KindStreamCtl:
		return pgInt
	case isa.KindFPALU, isa.KindVecALU:
		return pgVec
	case isa.KindLoad:
		return pgLoad
	case isa.KindStore:
		return pgStore
	}
	return pgInt
}

// streamRec records one stream consume/reserve performed at rename, for
// commit and ROB-walk undo.
type streamRec struct {
	slot     int
	seq      int64
	prevEnd  uint16
	prevLast bool
	consumed bool
	n        int
	phys     int // temporary vector physical register holding consumed data
}

type robEntry struct {
	seq      int64
	pc       int
	inst     isa.Inst
	squashed bool

	dstClass isa.RegClass
	dstArch  uint8
	newPhys  int
	oldPhys  int

	srcPhys  [4]int
	srcClass [4]isa.RegClass

	issued     bool
	done       bool
	execDoneAt int64
	group      portGroup

	predTaken  bool
	actTaken   bool
	actTarget  int
	isBranch   bool
	brResolved bool

	isMem       bool
	isLoad      bool
	agDone      bool
	addr        uint64
	laneAddrs   []uint64 // gather element addresses
	memW        arch.ElemWidth
	memLanes    int
	memBytes    int
	lines       []uint64
	linesIssued int
	linesPend   int
	memDone     bool
	fwdLatency  bool
	sqIdx       int
	lqHeld      bool
	sqHeld      bool

	resVal     uint64
	resVec     isa.VecVal
	resPred    isa.PredVal
	storeStamp int64 // engine reservation stamp at rename (load ordering)

	consumes []streamRec
	produce  *streamRec
	cfgTok   *engine.ConfigToken
	ctl      bool // stream-control µOp (suspend/resume/stop/force)
	ctlUndo  engine.CtlUndo

	sbEnd  uint16
	sbLast bool

	fault     bool
	faultAddr uint64
}

type sqEntry struct {
	seq      int64
	addr     uint64
	bytes    int
	w        arch.ElemWidth
	lanes    []uint64
	resolved bool
	live     bool
}

type fetchedInst struct {
	pc        int
	predTaken bool
}

// Core is one simulated out-of-order core.
type Core struct {
	cfg  Config
	prog *program.Program
	hier *mem.Hierarchy
	eng  *engine.Engine // nil for non-UVE baselines

	cycle int64
	seq   int64

	fetchPC     int
	fetchHoldTo int64
	fetchHalted bool
	decodeQ     []fetchedInst
	// Instruction-fetch timing through the L1-I: the front end stalls when
	// the current fetch line is not resident.
	ifetchReadyLine uint64
	ifetchHaveLine  bool
	ifetchBusy      bool

	// Branch predictor: 2-bit counters, lazily initialized
	// backward-taken/forward-not-taken. Dense per-PC table (PCs are
	// instruction indices); bpUnset marks never-predicted slots.
	bp []uint8

	ratInt  [isa.NumIntRegs]int
	ratFP   [isa.NumFPRegs]int
	ratVec  [isa.NumVecRegs]int
	ratPred [isa.NumPredRegs]int

	intVal   []uint64
	intReady []bool
	intFree  []int
	fpVal    []uint64
	fpReady  []bool
	fpFree   []int
	vecVal   []isa.VecVal
	vecReady []bool
	vecFree  []int
	prVal    []isa.PredVal
	prReady  []bool
	prFree   []int

	rob      []*robEntry
	iqCount  int
	schedCnt [pgCount]int
	lqCount  int

	sq     []*sqEntry
	drainQ []uint64 // committed store lines awaiting issue

	halted     bool
	haltCycle  int64
	lastCommit int64

	// effVecBytes is the effective vector length set by ss.setvl, capped by
	// the physical width; it applies to instructions renamed after the
	// setvl commits (the instruction serializes the pipeline).
	effVecBytes    int
	serializeInROB bool

	// rec receives instrumentation events; tracing caches rec.Enabled() so
	// hot paths pay a single bool test when tracing is off. lastBlock is the
	// rename stage's blocking cause this cycle, feeding the stall
	// classification.
	rec       trace.Recorder
	tracing   bool
	lastBlock BlockCause

	// Event-driven cycle skipping (Config.EventSkip): activity counts every
	// state-changing step the core takes; stepQuiet records whether the last
	// Step changed anything (core, engine or memory hierarchy). When a quiet
	// step leaves only future events behind, Run advances the clock directly to the earliest
	// one (see maybeSkip). None of this state is in Stats: skipping must be
	// invisible in every reported number.
	activity   uint64
	stepQuiet  bool
	skipOK     bool
	skipReason string
	skipLog    func(string)
	skipped    int64

	// cancelCheck, when set, is polled every cancelBatch cycles during Run
	// (and the post-halt drain). The check aborts the run by panicking with
	// a caller-owned typed error; the core itself attaches no meaning to
	// it. Batched polling keeps the hot loop free of per-cycle overhead and
	// composes with event skipping, which can advance the clock past many
	// check points at once (the next poll fires on the first iteration at
	// or beyond the threshold).
	cancelCheck func(cycle int64)
	nextCancel  int64

	Stats Stats
}

// cancelBatch is the cancellation polling granularity in cycles: coarse
// enough to be free next to the per-cycle pipeline work, fine enough that
// a context deadline stops a multi-million-cycle run promptly.
const cancelBatch = 4096

// New builds a core executing prog over the given memory hierarchy. eng may
// be nil (baseline cores without streaming support).
func New(cfg Config, prog *program.Program, h *mem.Hierarchy, eng *engine.Engine) *Core {
	c := &Core{cfg: cfg, prog: prog, hier: h, eng: eng, bp: make([]uint8, prog.Len()), rec: trace.Nop}
	for i := range c.bp {
		c.bp[i] = bpUnset
	}
	c.effVecBytes = cfg.VecBytes

	alloc := func(n, archN int) (free []int) {
		for i := archN; i < n; i++ {
			free = append(free, i)
		}
		return free
	}
	c.intVal = make([]uint64, cfg.IntPRF)
	c.intReady = make([]bool, cfg.IntPRF)
	c.intFree = alloc(cfg.IntPRF, isa.NumIntRegs)
	c.fpVal = make([]uint64, cfg.FPPRF)
	c.fpReady = make([]bool, cfg.FPPRF)
	c.fpFree = alloc(cfg.FPPRF, isa.NumFPRegs)
	c.vecVal = make([]isa.VecVal, cfg.VecPRF)
	c.vecReady = make([]bool, cfg.VecPRF)
	c.vecFree = alloc(cfg.VecPRF, isa.NumVecRegs)
	c.prVal = make([]isa.PredVal, cfg.PredPRF)
	c.prReady = make([]bool, cfg.PredPRF)
	c.prFree = alloc(cfg.PredPRF, isa.NumPredRegs)

	for i := range c.ratInt {
		c.ratInt[i] = i
		c.intReady[i] = true
	}
	for i := range c.ratFP {
		c.ratFP[i] = i
		c.fpReady[i] = true
	}
	for i := range c.ratVec {
		c.ratVec[i] = i
		c.vecReady[i] = true
	}
	for i := range c.ratPred {
		c.ratPred[i] = i
		c.prReady[i] = true
	}
	c.prVal[0] = isa.AllLanes // p0 hardwired to all-true

	if eng != nil {
		eng.SyncStoresPending = func() bool {
			return len(c.sq) > 0 || len(c.drainQ) > 0
		}
	}
	return c
}

// SetIntReg initializes an architectural integer register before Run (the
// ABI by which the harness passes kernel arguments).
func (c *Core) SetIntReg(n int, v uint64) {
	if n == 0 {
		return
	}
	c.intVal[c.ratInt[n]] = v
}

// SetFPReg initializes an architectural FP register before Run.
func (c *Core) SetFPReg(n int, w arch.ElemWidth, f float64) {
	c.fpVal[c.ratFP[n]] = isa.FloatBits(w, f)
}

// IntReg reads an architectural integer register (after Run).
func (c *Core) IntReg(n int) uint64 { return c.intVal[c.ratInt[n]] }

// FPReg reads an architectural FP register as a float of width w.
func (c *Core) FPReg(n int, w arch.ElemWidth) float64 {
	return isa.BitsFloat(w, c.fpVal[c.ratFP[n]])
}

// SetRecorder directs instrumentation events at r (nil restores the no-op
// recorder). Call before Run; tracing must not change mid-execution.
func (c *Core) SetRecorder(r trace.Recorder) {
	if r == nil {
		r = trace.Nop
	}
	c.rec = r
	c.tracing = r.Enabled()
}

// SetCancel installs a cancellation check polled at cycle-batch
// granularity during Run. The check receives the current cycle; to abort
// the run it panics with a typed error the caller recovers (the sim layer
// uses *sim.CanceledError). Call before Run; nil clears the check.
func (c *Core) SetCancel(check func(cycle int64)) {
	c.cancelCheck = check
	c.nextCancel = 0
}

// pollCancel runs the installed cancellation check when the batched
// threshold has passed.
func (c *Core) pollCancel() {
	if c.cancelCheck != nil && c.cycle >= c.nextCancel {
		c.nextCancel = c.cycle + cancelBatch
		c.cancelCheck(c.cycle)
	}
}

// Cycle returns the current cycle.
func (c *Core) Cycle() int64 { return c.cycle }

// Halted reports whether the program has committed its halt.
func (c *Core) Halted() bool { return c.halted }

// Run executes the program to completion (halt committed and all stores
// drained) and returns the cycle count at halt commit — the performance
// figure used throughout §VI.
func (c *Core) Run() int64 {
	c.skipOK = c.cfg.EventSkip && !c.tracing
	if c.cfg.EventSkip && c.tracing {
		c.skipReason = "event skipping disabled: per-cycle trace recorder attached"
		if c.skipLog != nil {
			c.skipLog(c.skipReason)
		}
	}
	for !c.halted {
		c.Step()
		c.maybeSkip()
		c.pollCancel()
	}
	// Drain timing: outstanding stores and stream stores flow to memory.
	drained := false
	for i := 0; i < 1_000_000; i++ {
		pending := len(c.drainQ) > 0 || !c.hier.Quiesce()
		if c.eng != nil && c.eng.StoresPending() {
			pending = true
		}
		if !pending {
			drained = true
			break
		}
		c.Step()
		c.maybeSkip()
		c.pollCancel()
	}
	if !drained {
		panic(c.watchdogError("post-halt store drain stalled"))
	}
	return c.haltCycle
}

// Step advances the machine one cycle.
func (c *Core) Step() {
	c.cycle++
	c.Stats.Cycles = c.cycle
	c.Stats.ROBOccupancySum += int64(len(c.rob))

	// Snapshot for the stall classification: cycles in the post-halt store
	// drain are a class of their own, and "busy" means something retired
	// this cycle.
	wasHalted := c.halted
	committedBefore := c.Stats.Committed
	c.lastBlock = BlockNone
	actBefore := c.activity + c.hier.Activity()
	if c.eng != nil {
		actBefore += c.eng.Activity()
	}
	if c.tracing && c.eng != nil {
		// Engine methods called from rename (ConsumeChunk/ReserveStore) run
		// before the engine's own Tick; keep its event clock current.
		c.eng.SetNow(c.cycle)
	}

	c.commit()
	c.complete()
	c.memPhase()
	c.issue()
	c.rename()
	c.fetch()
	c.drainStores()

	if c.eng != nil {
		c.eng.Tick(c.cycle)
	}
	c.hier.Tick(c.cycle)

	actAfter := c.activity + c.hier.Activity()
	if c.eng != nil {
		actAfter += c.eng.Activity()
	}
	c.stepQuiet = actAfter == actBefore

	if c.tracing {
		c.rec.Emit(trace.Event{
			Cycle: c.cycle, Kind: trace.EvCycleClass,
			Arg0: int64(c.classifyCycle(wasHalted, c.Stats.Committed-committedBefore)),
		})
	}

	if !c.halted && c.cycle-c.lastCommit > c.cfg.Watchdog {
		panic(c.watchdogError(fmt.Sprintf("no commit for %d cycles", c.cfg.Watchdog)))
	}
	if c.cfg.MaxCycles > 0 && c.cycle >= c.cfg.MaxCycles {
		panic(c.watchdogError(fmt.Sprintf("cycle bound %d exceeded", c.cfg.MaxCycles)))
	}
}

// classifyCycle attributes the cycle that just finished to exactly one
// StallClass. Priority: post-halt drain, then useful work, then the rename
// stage's structural/stream cause, then the ROB head's state (memory-bound
// vs. still executing), and an empty ROB means the front end starved the
// backend. Because every pre-halt cycle lands in a non-drain class, the
// non-drain total equals the halt cycle — the Result.Cycles reconciliation
// the bench tests enforce.
func (c *Core) classifyCycle(wasHalted bool, committed uint64) trace.StallClass {
	switch {
	case wasHalted:
		return trace.ClassDrain
	case committed > 0:
		return trace.ClassBusy
	case c.lastBlock != BlockNone:
		return c.lastBlock.stallClass()
	case len(c.rob) > 0:
		if h := c.rob[0]; h.isMem && h.issued && !h.memDone && !h.done {
			return trace.ClassMemory
		}
		return trace.ClassExec
	}
	return trace.ClassFrontend
}

func (c *Core) robHeadDesc() string {
	if len(c.rob) == 0 {
		return "<empty>"
	}
	e := c.rob[0]
	return fmt.Sprintf("seq=%d pc=%d %s issued=%v done=%v", e.seq, e.pc, e.inst.Op.Name(), e.issued, e.done)
}

// lanes returns the effective vector lane count for width w (ss.setvl can
// narrow it below the physical width).
func (c *Core) lanes(w arch.ElemWidth) int { return arch.LanesFor(c.effVecBytes, w) }

// EffVecBytes returns the current effective vector length in bytes.
func (c *Core) EffVecBytes() int { return c.effVecBytes }

// --- physical register helpers ---

func (c *Core) readVal(class isa.RegClass, phys int) uint64 {
	switch class {
	case isa.ClassInt:
		return c.intVal[phys]
	case isa.ClassFP:
		return c.fpVal[phys]
	}
	return 0
}

func (c *Core) physReady(class isa.RegClass, phys int) bool {
	switch class {
	case isa.ClassInt:
		return c.intReady[phys]
	case isa.ClassFP:
		return c.fpReady[phys]
	case isa.ClassVec:
		return c.vecReady[phys]
	case isa.ClassPred:
		return c.prReady[phys]
	}
	return true
}

func (c *Core) writePhys(class isa.RegClass, phys int, v uint64, vec isa.VecVal, pr isa.PredVal) {
	switch class {
	case isa.ClassInt:
		if phys != 0 {
			c.intVal[phys] = v
		}
		c.intReady[phys] = true
	case isa.ClassFP:
		c.fpVal[phys] = v
		c.fpReady[phys] = true
	case isa.ClassVec:
		c.vecVal[phys] = vec
		c.vecReady[phys] = true
	case isa.ClassPred:
		if phys != 0 {
			c.prVal[phys] = pr
		}
		c.prReady[phys] = true
	}
}

func (c *Core) freeListOf(class isa.RegClass) *[]int {
	switch class {
	case isa.ClassInt:
		return &c.intFree
	case isa.ClassFP:
		return &c.fpFree
	case isa.ClassVec:
		return &c.vecFree
	case isa.ClassPred:
		return &c.prFree
	}
	return nil
}

func (c *Core) ratOf(class isa.RegClass, n uint8) *int {
	switch class {
	case isa.ClassInt:
		return &c.ratInt[n]
	case isa.ClassFP:
		return &c.ratFP[n]
	case isa.ClassVec:
		return &c.ratVec[n]
	case isa.ClassPred:
		return &c.ratPred[n]
	}
	return nil
}

func (c *Core) allocPhys(class isa.RegClass) (int, bool) {
	fl := c.freeListOf(class)
	if len(*fl) == 0 {
		return 0, false
	}
	p := (*fl)[len(*fl)-1]
	*fl = (*fl)[:len(*fl)-1]
	switch class {
	case isa.ClassInt:
		c.intReady[p] = false
	case isa.ClassFP:
		c.fpReady[p] = false
	case isa.ClassVec:
		c.vecReady[p] = false
	case isa.ClassPred:
		c.prReady[p] = false
	}
	return p, true
}

func (c *Core) freePhys(class isa.RegClass, p int) {
	if p < 0 {
		return
	}
	// Never recycle the hardwired zero registers.
	if (class == isa.ClassInt || class == isa.ClassPred) && p == 0 {
		return
	}
	fl := c.freeListOf(class)
	*fl = append(*fl, p)
}
