package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteText emits a compact human-readable timeline: one row per
// attribution interval with the per-class cycle counts, followed by the
// retained point events (oldest first) one per line. It is the quick-look
// companion to the Chrome export.
func WriteText(w io.Writer, c *Collector) error {
	bw := bufio.NewWriter(w)

	att := c.Attribution()
	fmt.Fprintf(bw, "# stall attribution (interval=%d cycles)\n", att.Interval)
	fmt.Fprintf(bw, "%-12s", "cycle")
	for cl := StallClass(0); cl < ClassCount; cl++ {
		fmt.Fprintf(bw, " %10s", cl)
	}
	fmt.Fprintln(bw)
	for _, iv := range att.Intervals() {
		fmt.Fprintf(bw, "%-12d", iv.Start)
		for _, n := range iv.Counts {
			fmt.Fprintf(bw, " %10d", n)
		}
		fmt.Fprintln(bw)
	}
	tot := att.Totals()
	fmt.Fprintf(bw, "%-12s", "total")
	for _, n := range tot {
		fmt.Fprintf(bw, " %10d", n)
	}
	fmt.Fprintln(bw)

	events := c.Events()
	fmt.Fprintf(bw, "\n# events (%d retained, %d dropped)\n", len(events), c.Dropped())
	for _, e := range events {
		fmt.Fprintf(bw, "%-12d %-14s", e.Cycle, e.Kind)
		args := chromeArgs(e)
		keys := make([]string, 0, len(args))
		for k := range args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, " %s=%d", k, args[k])
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}
