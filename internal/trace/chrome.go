package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event export (the JSON array format chrome://tracing and
// Perfetto load). Layout: one process (pid 0) with a thread lane per
// pipeline stage, one lane per stream-table slot, and a set of "C" counter
// series carrying the per-interval stall attribution. Timestamps are
// simulated cycles (the viewer displays them as microseconds; the scale is
// arbitrary but ordering and widths are exact).

const (
	laneAttr   = 0 // counter series attach here
	laneFetch  = 1
	laneRename = 2
	laneIssue  = 3
	laneCommit = 4
	laneEngine = 5  // engine-global events (MRQ, line requests)
	laneSlot0  = 16 // + stream-table slot
)

// chromeLane maps an event to its display lane.
func chromeLane(e Event) int {
	switch e.Kind {
	case EvFetchStall, EvFetchRedirect:
		return laneFetch
	case EvRenameBlock:
		return laneRename
	case EvIssue:
		return laneIssue
	case EvCommit, EvSquash, EvPageFault:
		return laneCommit
	case EvMRQFull, EvLineRequest:
		return laneEngine
	case EvStreamConfig, EvStreamSuspend, EvStreamResume, EvStreamEnd,
		EvChunkProduced, EvChunkConsumed, EvFIFOFull, EvOriginStall, EvDimSwitch:
		return laneSlot0 + int(e.Arg0)
	}
	return laneEngine
}

// chromeArgs builds the human-readable args payload for an event.
func chromeArgs(e Event) map[string]int64 {
	switch e.Kind {
	case EvFetchRedirect:
		return map[string]int64{"pc": e.Arg0}
	case EvRenameBlock:
		return map[string]int64{"cause": e.Arg0}
	case EvIssue, EvCommit:
		return map[string]int64{"pc": e.Arg0, "seq": e.Arg1}
	case EvSquash:
		return map[string]int64{"squashed": e.Arg0}
	case EvPageFault:
		return map[string]int64{"pc": e.Arg0, "addr": e.Arg1}
	case EvStreamConfig, EvStreamSuspend, EvStreamResume, EvStreamEnd:
		return map[string]int64{"slot": e.Arg0, "u": e.Arg1}
	case EvChunkProduced:
		return map[string]int64{"slot": e.Arg0, "chunk": e.Arg1, "elems": e.Arg2}
	case EvChunkConsumed:
		return map[string]int64{"slot": e.Arg0, "chunk": e.Arg1}
	case EvLineRequest:
		return map[string]int64{"slot": e.Arg0, "line": e.Arg1}
	case EvInject:
		return map[string]int64{"type": e.Arg0, "slot": e.Arg1, "arg": e.Arg2}
	}
	return nil
}

type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
	Meta map[string]any   `json:"-"`
}

// WriteChrome emits the collector's contents as a Chrome trace_event JSON
// array: thread-name metadata for each lane in use, the ring's point events
// as instants, and the stall attribution as counter series sampled at each
// interval boundary.
func WriteChrome(w io.Writer, c *Collector) error {
	bw := bufio.NewWriter(w)
	first := true
	emit := func(v any) error {
		if first {
			if _, err := bw.WriteString("[\n"); err != nil {
				return err
			}
			first = false
		} else {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	events := c.Events()
	lanes := map[int]string{laneAttr: "stall attribution"}
	for _, e := range events {
		id := chromeLane(e)
		if _, ok := lanes[id]; ok {
			continue
		}
		switch {
		case id == laneFetch:
			lanes[id] = "fetch"
		case id == laneRename:
			lanes[id] = "rename"
		case id == laneIssue:
			lanes[id] = "issue"
		case id == laneCommit:
			lanes[id] = "commit"
		case id == laneEngine:
			lanes[id] = "engine"
		default:
			lanes[id] = fmt.Sprintf("stream slot %d", id-laneSlot0)
		}
	}
	for _, l := range sortedLanes(lanes) {
		ev := map[string]any{
			"name": "thread_name", "ph": "M", "pid": 0, "tid": l.id,
			"args": map[string]string{"name": l.name},
		}
		if err := emit(ev); err != nil {
			return err
		}
	}

	// Counter series: one sample per attribution interval, at its start
	// cycle, carrying every class so the viewer stacks them.
	for _, iv := range c.Attribution().Intervals() {
		args := make(map[string]int64, ClassCount)
		for cl := StallClass(0); cl < ClassCount; cl++ {
			args[cl.String()] = iv.Counts[cl]
		}
		if err := emit(chromeEvent{
			Name: "stalls", Ph: "C", Ts: iv.Start, Pid: 0, Tid: laneAttr, Args: args,
		}); err != nil {
			return err
		}
	}

	for _, e := range events {
		if err := emit(chromeEvent{
			Name: e.Kind.String(), Ph: "i", Ts: e.Cycle, Pid: 0,
			Tid: chromeLane(e), S: "t", Args: chromeArgs(e),
		}); err != nil {
			return err
		}
	}

	if first {
		if _, err := bw.WriteString("["); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

type lane struct {
	id   int
	name string
}

// sortedLanes flattens the lane map into tid order so the metadata block is
// deterministic (Go map iteration is not).
func sortedLanes(lanes map[int]string) []lane {
	out := make([]lane, 0, len(lanes))
	for id, name := range lanes {
		out = append(out, lane{id, name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
