package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The Nop recorder sits on the per-instruction commit path; it must add
// zero allocations (ISSUE 4 satellite).
func TestNopRecorderZeroAllocs(t *testing.T) {
	rec := Nop
	allocs := testing.AllocsPerRun(1000, func() {
		if rec.Enabled() {
			rec.Emit(Event{Cycle: 1, Kind: EvCommit, Arg0: 42, Arg1: 7})
		}
		rec.Emit(Event{Cycle: 1, Kind: EvCycleClass, Arg0: int64(ClassBusy)})
	})
	if allocs != 0 {
		t.Fatalf("Nop recorder: %v allocs per commit, want 0", allocs)
	}
}

// Steady-state Collector emission must also be allocation-free: the ring is
// preallocated and cycle-class events only bump interval counters.
func TestCollectorSteadyStateZeroAllocs(t *testing.T) {
	c := NewCollector(64, 0)
	// Warm up: fill the ring and create the single interval.
	for i := int64(1); i <= 128; i++ {
		c.Emit(Event{Cycle: i, Kind: EvCommit, Arg0: i})
		c.Emit(Event{Cycle: i, Kind: EvCycleClass, Arg0: int64(ClassBusy)})
	}
	cyc := int64(129)
	allocs := testing.AllocsPerRun(1000, func() {
		c.Emit(Event{Cycle: cyc, Kind: EvCommit, Arg0: cyc})
		c.Emit(Event{Cycle: cyc, Kind: EvCycleClass, Arg0: int64(ClassBusy)})
		cyc++
	})
	if allocs != 0 {
		t.Fatalf("Collector steady state: %v allocs per emit pair, want 0", allocs)
	}
}

func TestCollectorRing(t *testing.T) {
	c := NewCollector(4, 0)
	for i := int64(1); i <= 6; i++ {
		c.Emit(Event{Cycle: i, Kind: EvIssue, Arg0: i})
	}
	ev := c.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d events, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(i + 3); e.Cycle != want {
			t.Errorf("event %d: cycle %d, want %d (oldest-first)", i, e.Cycle, want)
		}
	}
	if c.Dropped() != 2 {
		t.Errorf("Dropped() = %d, want 2", c.Dropped())
	}

	// Attribution-only collector keeps no point events but counts drops.
	c0 := NewCollector(0, 0)
	c0.Emit(Event{Cycle: 1, Kind: EvIssue})
	if len(c0.Events()) != 0 || c0.Dropped() != 1 {
		t.Errorf("ring-less collector: events=%d dropped=%d, want 0/1",
			len(c0.Events()), c0.Dropped())
	}
}

func TestAttributionIntervals(t *testing.T) {
	c := NewCollector(0, 10)
	classes := []StallClass{ClassBusy, ClassFrontend, ClassMemory, ClassStreamData, ClassDrain}
	for i := int64(1); i <= 25; i++ {
		c.Emit(Event{Cycle: i, Kind: EvCycleClass, Arg0: int64(classes[i%int64(len(classes))])})
	}
	att := c.Attribution()
	ivs := att.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("%d intervals for 25 cycles at interval 10, want 3", len(ivs))
	}
	if ivs[0].Start != 0 || ivs[1].Start != 10 || ivs[2].Start != 20 {
		t.Errorf("interval starts %d/%d/%d, want 0/10/20", ivs[0].Start, ivs[1].Start, ivs[2].Start)
	}
	if ivs[0].Sum() != 10 || ivs[1].Sum() != 10 || ivs[2].Sum() != 5 {
		t.Errorf("interval sums %d/%d/%d, want 10/10/5", ivs[0].Sum(), ivs[1].Sum(), ivs[2].Sum())
	}
	if got := att.Attributed(); got != 25 {
		t.Errorf("Attributed() = %d, want 25", got)
	}
	tot := att.Totals()
	if got := att.AttributedExcludingDrain(); got != 25-tot[ClassDrain] {
		t.Errorf("AttributedExcludingDrain() = %d, want %d", got, 25-tot[ClassDrain])
	}
	if tot[ClassDrain] == 0 {
		t.Error("expected some drain cycles in the test pattern")
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	c := NewCollector(16, 8)
	emitSample(c)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, c); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("WriteChrome emitted invalid JSON:\n%s", buf.String())
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("unmarshal trace array: %v", err)
	}
	var metas, counters, instants int
	for _, e := range events {
		switch e["ph"] {
		case "M":
			metas++
		case "C":
			counters++
		case "i":
			instants++
		default:
			t.Errorf("unexpected phase %v", e["ph"])
		}
	}
	if metas == 0 || counters == 0 || instants == 0 {
		t.Errorf("metas=%d counters=%d instants=%d, want all > 0", metas, counters, instants)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, NewCollector(0, 0)); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	// An empty collector still carries the attribution lane metadata, and
	// the output must stay a valid (possibly near-empty) JSON array.
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("empty trace is invalid JSON:\n%s", buf.String())
	}
}

func TestWriteText(t *testing.T) {
	c := NewCollector(16, 8)
	emitSample(c)
	var buf bytes.Buffer
	if err := WriteText(&buf, c); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"stall attribution", "busy", "fifo-data", "stream-config", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("text timeline missing %q:\n%s", want, out)
		}
	}
}

// emitSample drives a collector with a representative mix of events.
func emitSample(c *Collector) {
	c.Emit(Event{Cycle: 1, Kind: EvStreamConfig, Arg0: 0, Arg1: 1})
	c.Emit(Event{Cycle: 2, Kind: EvFetchStall})
	c.Emit(Event{Cycle: 3, Kind: EvRenameBlock, Arg0: int64(ClassStreamData)})
	c.Emit(Event{Cycle: 4, Kind: EvChunkProduced, Arg0: 0, Arg1: 0, Arg2: 16})
	c.Emit(Event{Cycle: 5, Kind: EvChunkConsumed, Arg0: 0, Arg1: 0})
	c.Emit(Event{Cycle: 6, Kind: EvIssue, Arg0: 12, Arg1: 3})
	c.Emit(Event{Cycle: 7, Kind: EvCommit, Arg0: 12, Arg1: 3})
	c.Emit(Event{Cycle: 8, Kind: EvFIFOFull, Arg0: 0})
	c.Emit(Event{Cycle: 9, Kind: EvMRQFull})
	c.Emit(Event{Cycle: 10, Kind: EvStreamEnd, Arg0: 0, Arg1: 1})
	for i := int64(1); i <= 10; i++ {
		cl := ClassBusy
		if i%3 == 0 {
			cl = ClassStreamData
		}
		c.Emit(Event{Cycle: i, Kind: EvCycleClass, Arg0: int64(cl)})
	}
}

func TestEventKindAndClassStrings(t *testing.T) {
	for k := EventKind(0); k < EventKindCount; k++ {
		if k.String() == "?" {
			t.Errorf("EventKind %d has no name", k)
		}
	}
	for cl := StallClass(0); cl < ClassCount; cl++ {
		if cl.String() == "?" {
			t.Errorf("StallClass %d has no name", cl)
		}
	}
	if EventKindCount.String() != "?" || ClassCount.String() != "?" {
		t.Error("out-of-range String() should return ?")
	}
}
