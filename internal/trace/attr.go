package trace

// Interval is one attribution bucket: per-class cycle counts for the
// [Start, Start+len) window.
type Interval struct {
	Start  int64
	Counts [ClassCount]int64
}

// Sum returns the total cycles attributed in the interval.
func (iv *Interval) Sum() int64 {
	var s int64
	for _, c := range iv.Counts {
		s += c
	}
	return s
}

// Attribution folds per-cycle class events into fixed-width intervals.
// Interval <= 0 collapses the whole run into a single bucket. Cycles are
// 1-based (the core's first Step reports cycle 1), so cycle c lands in
// bucket (c-1)/Interval.
type Attribution struct {
	Interval  int64
	intervals []Interval
}

func (a *Attribution) add(cycle int64, class StallClass) {
	if class >= ClassCount {
		class = ClassExec
	}
	idx := 0
	if a.Interval > 0 {
		if cycle < 1 {
			cycle = 1
		}
		idx = int((cycle - 1) / a.Interval)
	}
	for len(a.intervals) <= idx {
		a.intervals = append(a.intervals, Interval{Start: int64(len(a.intervals)) * a.Interval})
	}
	a.intervals[idx].Counts[class]++
}

// Intervals returns the attribution buckets in time order. Empty trailing
// buckets are never created; a gap (an interval with no cycles, impossible
// in practice since the core emits one class per Step) would appear as an
// all-zero bucket.
func (a *Attribution) Intervals() []Interval { return a.intervals }

// Totals sums the per-class counts across all intervals.
func (a *Attribution) Totals() [ClassCount]int64 {
	var t [ClassCount]int64
	for i := range a.intervals {
		for c, n := range a.intervals[i].Counts {
			t[c] += n
		}
	}
	return t
}

// Attributed returns the total cycles attributed across all classes.
func (a *Attribution) Attributed() int64 {
	var s int64
	for _, n := range a.Totals() {
		s += n
	}
	return s
}

// AttributedExcludingDrain returns attributed cycles minus the post-halt
// store-drain class. The core halts at Result.Cycles but keeps stepping to
// drain its store queue; those extra steps are classified ClassDrain, so
// this quantity equals Result.Cycles exactly (the conservative-completeness
// invariant the bench tests enforce).
func (a *Attribution) AttributedExcludingDrain() int64 {
	t := a.Totals()
	return a.Attributed() - t[ClassDrain]
}
