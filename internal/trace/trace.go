// Package trace is the simulator's cycle-level event-tracing and
// stall-attribution layer. The core and the streaming engine emit typed
// Events into a Recorder; the ring-buffered Collector keeps a recent window
// of point events and folds the per-cycle stall classification into a
// per-interval attribution that explains every simulated cycle (the Fig 8.C
// methodology, extended from a single rename-block rate to a complete
// breakdown). The Nop recorder makes instrumentation free when tracing is
// off: emission sites are guarded by a cached bool and the recorder itself
// performs no allocations, so the Fig 8 pipeline is byte-identical either
// way.
package trace

// EventKind is the type of one instrumentation event.
type EventKind uint8

const (
	// EvCycleClass attributes one cycle to a StallClass (Arg0). The core
	// emits exactly one per Step; Collectors fold these into the
	// Attribution instead of the ring.
	EvCycleClass EventKind = iota

	// Core events.
	EvFetchStall    // front end waited on an L1-I fill
	EvFetchRedirect // Arg0 = new pc (mispredict or fault re-steer)
	EvRenameBlock   // Arg0 = StallClass of the blocking cause
	EvIssue         // Arg0 = pc, Arg1 = seq
	EvCommit        // Arg0 = pc, Arg1 = seq
	EvSquash        // Arg0 = entries squashed in the ROB walk
	EvPageFault     // Arg0 = pc, Arg1 = faulting address

	// Engine events. Arg0 is the stream-table slot unless noted.
	EvStreamConfig  // Arg1 = logical stream register
	EvStreamSuspend // Arg1 = logical stream register
	EvStreamResume  // Arg1 = logical stream register
	EvStreamEnd     // Arg1 = logical stream register (slot released)
	EvChunkProduced // Arg1 = chunk seq, Arg2 = elements
	EvChunkConsumed // Arg1 = chunk seq (speculative consume/reserve at rename)
	EvFIFOFull      // generation stalled: FIFO has no free chunk slot
	EvMRQFull       // generation stalled: memory request queue full
	EvOriginStall   // head chunk ready but origin stream data not delivered
	EvDimSwitch     // one-cycle dimension-switch penalty taken
	EvLineRequest   // Arg1 = cache-line address requested

	// EvInject marks one injected fault (internal/fault). Arg0 is the
	// injection type (Inj* constants); Arg1/Arg2 depend on the type.
	EvInject

	EventKindCount
)

// Injection types carried in EvInject's Arg0.
const (
	InjNack    int64 = iota // Arg1 = stream slot, Arg2 = line address
	InjSuspend              // Arg1 = stream slot, Arg2 = pause cycles
)

var eventKindNames = [EventKindCount]string{
	EvCycleClass:    "cycle",
	EvFetchStall:    "fetch-stall",
	EvFetchRedirect: "redirect",
	EvRenameBlock:   "rename-block",
	EvIssue:         "issue",
	EvCommit:        "commit",
	EvSquash:        "squash",
	EvPageFault:     "page-fault",
	EvStreamConfig:  "stream-config",
	EvStreamSuspend: "stream-suspend",
	EvStreamResume:  "stream-resume",
	EvStreamEnd:     "stream-end",
	EvChunkProduced: "chunk-produced",
	EvChunkConsumed: "chunk-consumed",
	EvFIFOFull:      "fifo-full",
	EvMRQFull:       "mrq-full",
	EvOriginStall:   "origin-stall",
	EvDimSwitch:     "dim-switch",
	EvLineRequest:   "line-request",
	EvInject:        "inject",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "?"
}

// Event is one instrumentation record. It is a flat value type so that
// emitting through the Recorder interface never allocates.
type Event struct {
	Cycle int64
	Kind  EventKind
	Arg0  int64
	Arg1  int64
	Arg2  int64
}

// StallClass is the canonical attribution of one simulated cycle. Every
// cycle belongs to exactly one class, so the per-class counts always sum to
// the cycle count (test-enforced across the 19-kernel sweep).
type StallClass uint8

const (
	ClassBusy     StallClass = iota // at least one instruction committed
	ClassFrontend                   // ROB empty: fetch/decode starved the backend
	// Rename-stage structural stalls, by cause (the Fig 8.C breakdown).
	ClassRenameROB
	ClassRenameIQ
	ClassRenameSched
	ClassRenamePRF
	ClassRenameLQ
	ClassRenameSQ
	ClassRenameSCROB
	// Engine-FIFO pacing: rename waited on stream data (input FIFO empty)
	// or on an addressed output-FIFO slot.
	ClassStreamData
	ClassStreamStore
	ClassMemory // ROB head is a memory instruction waiting on the hierarchy
	ClassExec   // ROB head still executing (FU latency, branch resolution)
	ClassDrain  // post-halt cycles draining stores to memory
	ClassCount
)

var stallClassNames = [ClassCount]string{
	ClassBusy:        "busy",
	ClassFrontend:    "frontend",
	ClassRenameROB:   "rob",
	ClassRenameIQ:    "iq",
	ClassRenameSched: "sched",
	ClassRenamePRF:   "prf",
	ClassRenameLQ:    "lq",
	ClassRenameSQ:    "sq",
	ClassRenameSCROB: "scrob",
	ClassStreamData:  "fifo-data",
	ClassStreamStore: "fifo-store",
	ClassMemory:      "memory",
	ClassExec:        "exec",
	ClassDrain:       "drain",
}

func (c StallClass) String() string {
	if int(c) < len(stallClassNames) {
		return stallClassNames[c]
	}
	return "?"
}

// Recorder receives the instrumentation stream. Implementations must be
// allocation-free on Emit: it sits on the commit path of every simulated
// instruction when tracing is enabled.
type Recorder interface {
	// Emit records one event.
	Emit(e Event)
	// Enabled reports whether emission sites should bother constructing
	// events; the Nop recorder returns false so hot paths skip entirely.
	Enabled() bool
}

type nopRecorder struct{}

func (nopRecorder) Emit(Event)    {}
func (nopRecorder) Enabled() bool { return false }

// Nop is the default recorder: it drops everything and reports disabled.
var Nop Recorder = nopRecorder{}

// Collector is the standard Recorder: a fixed-capacity ring of recent point
// events plus a complete per-interval stall attribution. The ring keeps the
// most recent window (old events are overwritten); the attribution is never
// dropped, so its totals account for every cycle regardless of ring size.
type Collector struct {
	ring []Event
	head int   // next write position
	n    int64 // total point events ever recorded
	att  Attribution
}

// NewCollector builds a collector with the given ring capacity (0 keeps no
// point events — attribution only) and attribution interval in cycles
// (<= 0 folds the whole run into a single interval).
func NewCollector(ringSize int, interval int64) *Collector {
	c := &Collector{att: Attribution{Interval: interval}}
	if ringSize > 0 {
		c.ring = make([]Event, ringSize)
	}
	return c
}

// Enabled implements Recorder.
func (c *Collector) Enabled() bool { return true }

// Emit implements Recorder. Cycle-class events feed the attribution; all
// other events enter the ring. Steady-state emission performs no
// allocations (the ring is preallocated; attribution intervals amortize).
func (c *Collector) Emit(e Event) {
	if e.Kind == EvCycleClass {
		c.att.add(e.Cycle, StallClass(e.Arg0))
		return
	}
	c.n++
	if len(c.ring) == 0 {
		return
	}
	c.ring[c.head] = e
	c.head++
	if c.head == len(c.ring) {
		c.head = 0
	}
}

// Events returns the retained point events, oldest first.
func (c *Collector) Events() []Event {
	if c.n >= int64(len(c.ring)) && len(c.ring) > 0 {
		out := make([]Event, 0, len(c.ring))
		out = append(out, c.ring[c.head:]...)
		out = append(out, c.ring[:c.head]...)
		return out
	}
	return append([]Event(nil), c.ring[:c.head]...)
}

// Dropped returns how many point events fell out of the ring window.
func (c *Collector) Dropped() int64 {
	if int64(len(c.ring)) >= c.n {
		return 0
	}
	return c.n - int64(len(c.ring))
}

// Attribution returns the collector's stall attribution.
func (c *Collector) Attribution() *Attribution { return &c.att }
