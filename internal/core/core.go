// Package core ties together the paper's primary contribution — the UVE
// streaming model. The two halves live in sibling packages and are
// re-exported here as the canonical internal entry point:
//
//   - repro/internal/descriptor: the §II memory-access pattern model
//     (hierarchical {Offset,Size,Stride} dimensions with static and
//     indirect modifiers, and exact incremental address generation);
//   - repro/internal/engine: the §IV-B Streaming Engine that executes those
//     descriptors inside an out-of-order core (SCROB, stream table and
//     renaming, processing modules, speculative/committed FIFOs).
//
// The supporting substrates (ISA, memory hierarchy, out-of-order pipeline)
// are deliberately not part of this package: they exist so the contribution
// can be evaluated, as in the paper.
package core

import (
	"repro/internal/descriptor"
	"repro/internal/engine"
)

// Descriptor is a fully configured stream pattern (paper §II).
type Descriptor = descriptor.Descriptor

// Dim is one {Offset, Size, Stride} tuple.
type Dim = descriptor.Dim

// StaticMod and IndirectMod are the two descriptor modifier families.
type (
	StaticMod   = descriptor.StaticMod
	IndirectMod = descriptor.IndirectMod
)

// Iterator generates a descriptor's exact element sequence incrementally,
// as a Stream Processing Module does.
type Iterator = descriptor.Iterator

// Engine is the Streaming Engine (paper §IV-B).
type Engine = engine.Engine

// EngineConfig sizes the Streaming Engine (paper Table I).
type EngineConfig = engine.Config

// ChunkView is a vector-register-sized slice of a stream handed to the
// pipeline at rename.
type ChunkView = engine.ChunkView

// NewStream starts a descriptor builder (see descriptor.New for the full
// builder surface).
var NewStream = descriptor.New

// NewIterator builds a standalone iterator over a descriptor.
var NewIterator = descriptor.NewIterator

// NewEngine attaches a Streaming Engine to a memory hierarchy.
var NewEngine = engine.New

// DefaultEngineConfig is the Table I engine.
var DefaultEngineConfig = engine.DefaultConfig
