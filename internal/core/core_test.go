package core_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/mem"
)

// TestContributionEndToEnd exercises the contribution through the core
// façade: describe a 2-D pattern, iterate it standalone, then stream it
// through an engine attached to a real hierarchy and check the data.
func TestContributionEndToEnd(t *testing.T) {
	hc := mem.DefaultHierarchyConfig()
	hc.Prefetchers = false
	h := mem.NewHierarchy(hc)
	const rows, cols = 6, 20
	base := h.Mem.Alloc(4*rows*cols, arch.LineSize)
	for i := 0; i < rows*cols; i++ {
		h.Mem.Write(base+uint64(4*i), arch.W4, uint64(i))
	}

	d := core.NewStream(base, arch.W4, descriptor.Load).
		Dim(0, cols, 1).
		Dim(0, rows, cols).
		MustBuild()

	// Standalone iteration yields exactly rows×cols elements.
	it := core.NewIterator(d, nil)
	count := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		count++
	}
	if count != rows*cols {
		t.Fatalf("iterator produced %d elements, want %d", count, rows*cols)
	}

	// The engine delivers the same elements as chunks.
	eng := core.NewEngine(core.DefaultEngineConfig(), h)
	streamTo(t, eng, h, d)
}

// streamTo drives one load descriptor through the engine and validates
// every delivered lane against memory.
func streamTo(t *testing.T, eng *core.Engine, h *mem.Hierarchy, d *core.Descriptor) {
	t.Helper()
	want := descriptor.Sequence(d, nil)
	for _, in := range isa.SCfgParts(0, d) {
		if _, ok := eng.RenameConfigPart(in.Cfg); !ok {
			t.Fatal("SCROB full")
		}
	}
	var now int64
	tick := func() {
		now++
		h.Tick(now)
		eng.Tick(now)
	}
	var slot int
	for i := 0; ; i++ {
		var ok bool
		if slot, ok = eng.StreamFor(0); ok && !eng.Configuring(slot) {
			break
		}
		tick()
		if i > 100 {
			t.Fatal("stream never configured")
		}
	}
	consumed := int64(0)
	for {
		v, ok := eng.ConsumeChunk(slot)
		if !ok {
			tick()
			continue
		}
		if !v.Consumed {
			break
		}
		for l := 0; l < v.N; l++ {
			e := want[consumed+int64(l)]
			if got := v.Data.Lane(l); got != h.Mem.Read(e.Addr, arch.W4) {
				t.Fatalf("lane mismatch at element %d", consumed+int64(l))
			}
		}
		consumed += int64(v.N)
		eng.CommitConsume(slot, v.Seq)
		if v.Last {
			break
		}
	}
	if consumed != int64(len(want)) {
		t.Fatalf("streamed %d elements, want %d", consumed, len(want))
	}
}
