package mem

import "math"

// NoEvent is the NextEventAt sentinel for "fully quiescent: no future state
// change unless new work arrives". It compares greater than every real cycle
// number, so min-reductions across units need no special casing.
const NoEvent int64 = math.MaxInt64

// NextEventAt returns a lower bound on the cycle of the DRAM's next state
// change, assuming no new requests arrive. A channel with an unstarted head
// request acts when its data bus frees (never before now+1); started
// requests retire at their doneAt. Requests queued behind an unstarted head
// are served in order, so the head bounds them all.
func (d *DRAM) NextEventAt(now int64) int64 {
	next := NoEvent
	for i := range d.chans {
		ch := &d.chans[i]
		for e := ch.queue.Front(); e != nil; e = e.Next() {
			dr := e.Value.(*dramReq)
			if !dr.started {
				t := ch.freeAt
				if t <= now {
					t = now + 1
				}
				if t < next {
					next = t
				}
				break // in-order: later unstarted requests wait behind this one
			}
			if dr.doneAt < next {
				next = dr.doneAt
			}
		}
	}
	return next
}

// NextEventAt returns the earliest next-event bound across the whole
// hierarchy (both caches, the shared L2, and DRAM).
func (h *Hierarchy) NextEventAt(now int64) int64 {
	next := h.DRAM.NextEventAt(now)
	if t := h.L2.NextEventAt(now); t < next {
		next = t
	}
	if t := h.L1D.NextEventAt(now); t < next {
		next = t
	}
	if t := h.L1I.NextEventAt(now); t < next {
		next = t
	}
	return next
}

// Activity returns a monotonic count of state-changing steps this cache has
// taken: accesses (including rejects, which tally), fill/writeback/prefetch
// issue attempts (which issue or tally a reject below) and matured
// completions. The event-driven scheduler snapshots it around a cycle; an
// unchanged count means the cycle provably left this cache's state alone.
func (c *Cache) Activity() uint64 { return c.activity }

// Activity is the DRAM counterpart of Cache.Activity: accesses (enqueue or
// queue-full tally), request starts and retirements.
func (d *DRAM) Activity() uint64 { return d.activity }

// Activity sums the per-unit activity counters — the hierarchy-wide
// quiescence witness the core's event scheduler folds into its own.
func (h *Hierarchy) Activity() uint64 {
	return h.L1D.Activity() + h.L1I.Activity() + h.L2.Activity() + h.DRAM.Activity()
}
