package mem

import "repro/internal/arch"

// HierarchyConfig sizes the full memory system (paper Table I).
type HierarchyConfig struct {
	L1   CacheConfig
	L1I  CacheConfig
	L2   CacheConfig
	DRAM DRAMConfig
	// Prefetchers enables the baseline's stride (L1) and AMPM (L2)
	// prefetchers; the UVE configuration streams exact patterns instead.
	Prefetchers bool
	StrideDepth int
	TLBEntries  int
}

// DefaultHierarchyConfig returns the Table I memory system.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: CacheConfig{
			Name: "L1-D", Level: arch.LevelL1,
			SizeBytes: 64 << 10, Ways: 4,
			// 4 MSHRs is the gem5 classic-cache default the paper's
			// baseline inherits; it caps the baseline's memory-level
			// parallelism, which is a big part of why exact streams win on
			// bandwidth-bound kernels (Fig 8.D).
			HitLatency: 4, MSHRs: 4, AcceptsPerCycle: 4, PrefetchQueue: 16,
		},
		L1I: CacheConfig{
			Name: "L1-I", Level: arch.LevelL1,
			SizeBytes: 64 << 10, Ways: 4,
			HitLatency: 1, MSHRs: 4, AcceptsPerCycle: 2,
		},
		L2: CacheConfig{
			Name: "L2", Level: arch.LevelL2,
			SizeBytes: 256 << 10, Ways: 8,
			HitLatency: 12, MSHRs: 20, AcceptsPerCycle: 4, PrefetchQueue: 32,
		},
		DRAM:        DefaultDRAMConfig(),
		Prefetchers: true,
		StrideDepth: 16,
		TLBEntries:  48,
	}
}

// Hierarchy wires backing store, TLB, caches and DRAM together. The core's
// LSQ and the streaming engine access it through the L1 port (demand
// traffic) or with MinLevel set to bypass levels (stream traffic).
type Hierarchy struct {
	Mem  *Memory
	TLB  *TLB
	L1D  *Cache
	L1I  *Cache
	L2   *Cache
	DRAM *DRAM
}

// NewHierarchy builds the memory system.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	m := NewMemory()
	dram := NewDRAM(cfg.DRAM)
	l2 := NewCache(cfg.L2, dram)
	l1 := NewCache(cfg.L1, l2)
	if cfg.L1I.SizeBytes == 0 {
		cfg.L1I = DefaultHierarchyConfig().L1I
	}
	l1i := NewCache(cfg.L1I, l2)
	l2.SetUpper(l1)
	if cfg.Prefetchers {
		l1.SetPrefetcher(NewStridePrefetcher(cfg.StrideDepth))
		l2.SetPrefetcher(NewAMPMPrefetcher())
	}
	entries := cfg.TLBEntries
	if entries == 0 {
		entries = 48
	}
	return &Hierarchy{Mem: m, TLB: NewTLB(m, entries), L1D: l1, L1I: l1i, L2: l2, DRAM: dram}
}

// Access submits a demand request at the L1 (requests with MinLevel above L1
// flow through without allocating, as stream requests do).
func (h *Hierarchy) Access(now int64, r *Req) bool { return h.L1D.Access(now, r) }

// FetchInst submits an instruction-fetch line request to the L1-I.
func (h *Hierarchy) FetchInst(now int64, r *Req) bool { return h.L1I.Access(now, r) }

// Tick advances all levels one cycle. DRAM ticks first so responses climb
// at most one level per cycle.
func (h *Hierarchy) Tick(now int64) {
	h.DRAM.Tick(now)
	h.L2.Tick(now)
	h.L1D.Tick(now)
	h.L1I.Tick(now)
}

// Quiesce reports whether no timing activity is outstanding anywhere.
func (h *Hierarchy) Quiesce() bool {
	return h.L1D.PendingOps() == 0 && h.L1I.PendingOps() == 0 &&
		h.L2.PendingOps() == 0 && h.DRAM.Pending() == 0
}
