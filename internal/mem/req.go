package mem

import "repro/internal/arch"

// Req is one line-granular timing request flowing through the hierarchy.
// Functional data is not carried: it lives in the Memory backing store.
type Req struct {
	// Line is the line-aligned byte address.
	Line uint64
	// Write marks a store-side request (dirty allocation).
	Write bool
	// MinLevel is the first cache level allowed to allocate the line.
	// Levels above it treat the request as non-cacheable and forward it
	// (the paper's stream cache-level selection, §IV-A "Cache Access").
	MinLevel arch.CacheLevel
	// Prefetch marks prefetcher-generated requests: they allocate but do
	// not receive completion callbacks and are dropped under pressure.
	Prefetch bool
	// PC tags the requesting instruction for the stride prefetcher.
	PC int
	// Done, when non-nil, is invoked once the request completes (data
	// available for loads, line owned for stores).
	Done func(now int64)
}

// Port is anything that accepts timing requests: a cache level or DRAM.
type Port interface {
	// Access submits a request. It returns false when the component cannot
	// accept it this cycle (ports busy, MSHRs or queues full); the caller
	// must retry on a later cycle.
	Access(now int64, r *Req) bool
	// Tick advances internal state by one cycle.
	Tick(now int64)
}
