package mem

import "repro/internal/arch"

// StridePrefetcher is the per-PC stride prefetcher attached to the
// baseline's L1-D (Table I: "Stride Prefetcher with depth 16"). On a
// confirmed stride it prefetches up to Depth strides ahead, ramping the
// distance as confidence grows.
type StridePrefetcher struct {
	Depth  int
	Degree int // prefetches issued per triggering access

	table map[int]*strideEntry
}

type strideEntry struct {
	lastLine uint64
	stride   int64
	conf     int
	dist     int64
}

// NewStridePrefetcher builds a stride prefetcher of the given depth.
func NewStridePrefetcher(depth int) *StridePrefetcher {
	return &StridePrefetcher{Depth: depth, Degree: 2, table: make(map[int]*strideEntry)}
}

// OnAccess implements Prefetcher.
func (p *StridePrefetcher) OnAccess(now int64, line uint64, pc int, hit bool) []uint64 {
	e, ok := p.table[pc]
	if !ok {
		if len(p.table) > 256 {
			p.table = make(map[int]*strideEntry) // crude capacity bound
		}
		p.table[pc] = &strideEntry{lastLine: line}
		return nil
	}
	stride := int64(line) - int64(e.lastLine)
	if line == e.lastLine {
		return nil // same-line re-reference carries no stride signal
	}
	if stride == e.stride && stride != 0 {
		if e.conf < 4 {
			e.conf++
		}
	} else {
		e.conf = 0
		e.stride = stride
		e.dist = 0
	}
	e.lastLine = line
	if e.conf < 2 {
		return nil
	}
	// Ramp the prefetch distance up to Depth strides ahead.
	out := make([]uint64, 0, p.Degree)
	for i := 0; i < p.Degree; i++ {
		if e.dist < int64(p.Depth) {
			e.dist++
		}
		target := int64(line) + e.stride*e.dist
		if target > 0 {
			out = append(out, uint64(target))
		}
	}
	return out
}

// AMPMPrefetcher approximates the Access Map Pattern Matching prefetcher of
// Ishii et al. attached to the baseline's L2 (Table I). Memory is divided
// into zones; each zone keeps a bitmap of demand-accessed lines, and on each
// access candidate strides k are tested: if lines -k and -2k were accessed,
// line +k matches the pattern and is prefetched.
type AMPMPrefetcher struct {
	ZoneLines int // lines per access map zone
	MaxStride int
	Degree    int
	zones     map[uint64][]bool
	zoneOrder []uint64
	maxZones  int
}

// NewAMPMPrefetcher builds an AMPM prefetcher with 4 KB zones.
func NewAMPMPrefetcher() *AMPMPrefetcher {
	return &AMPMPrefetcher{
		ZoneLines: arch.PageSize / arch.LineSize,
		MaxStride: 16,
		Degree:    2,
		zones:     make(map[uint64][]bool),
		maxZones:  64,
	}
}

// OnAccess implements Prefetcher.
func (p *AMPMPrefetcher) OnAccess(now int64, line uint64, pc int, hit bool) []uint64 {
	lineNo := line / arch.LineSize
	zone := lineNo / uint64(p.ZoneLines)
	idx := int(lineNo % uint64(p.ZoneLines))
	zm, ok := p.zones[zone]
	if !ok {
		if len(p.zoneOrder) >= p.maxZones {
			oldest := p.zoneOrder[0]
			p.zoneOrder = p.zoneOrder[1:]
			delete(p.zones, oldest)
		}
		zm = make([]bool, p.ZoneLines)
		p.zones[zone] = zm
		p.zoneOrder = append(p.zoneOrder, zone)
	}
	zm[idx] = true

	var out []uint64
	emit := func(k int) bool {
		t := idx + k
		if t < 0 || t >= p.ZoneLines || zm[t] {
			return false
		}
		out = append(out, (zone*uint64(p.ZoneLines)+uint64(t))*arch.LineSize)
		return len(out) >= p.Degree
	}
	test := func(k int) bool {
		a, b := idx-k, idx-2*k
		return a >= 0 && a < p.ZoneLines && b >= 0 && b < p.ZoneLines && zm[a] && zm[b]
	}
	for k := 1; k <= p.MaxStride; k++ {
		if test(k) && emit(k) {
			return out
		}
		if test(-k) && emit(-k) {
			return out
		}
	}
	return out
}
