package mem

import (
	"testing"

	"repro/internal/arch"
)

// The NextEventAt contract: with no new Access calls, every Tick strictly
// before the reported cycle is a no-op — no Done callback fires and no
// statistic changes anywhere in the hierarchy. The event scheduler in the
// core relies on exactly this to elide dead cycles, so the property is
// tested here directly against the memory stack: drive a mixed workload
// (demand reads and writes, L2-bypass stream traffic, MSHR-merging repeats),
// and whenever the hierarchy reports its next event more than one cycle out,
// tick through the dead window and require bit-identical state at every
// intermediate cycle.

type hierSnap struct {
	l1d, l1i, l2 CacheStats
	dram         DRAMStats
	p1d, p1i, p2 int
	dpend        int
}

func snapHier(h *Hierarchy) hierSnap {
	return hierSnap{
		l1d: h.L1D.Stats, l1i: h.L1I.Stats, l2: h.L2.Stats,
		dram: h.DRAM.Stats,
		p1d:  h.L1D.PendingOps(), p1i: h.L1I.PendingOps(), p2: h.L2.PendingOps(),
		dpend: h.DRAM.Pending(),
	}
}

func TestNextEventAtDeadWindowsAreNoOps(t *testing.T) {
	for _, pf := range []bool{false, true} {
		name := "prefetchers-off"
		if pf {
			name = "prefetchers-on"
		}
		t.Run(name, func(t *testing.T) {
			cfg := DefaultHierarchyConfig()
			cfg.Prefetchers = pf
			h := NewHierarchy(cfg)

			// A workload with distinct-line misses (full DRAM round trips),
			// same-line repeats (MSHR merges), writes (dirty allocation +
			// eventual writeback pressure), and L2-bypass stream requests.
			const base = 0x40_0000
			type job struct {
				at  int64
				req *Req
			}
			done := 0
			var jobs []job
			mk := func(at int64, line uint64, write bool, lvl arch.CacheLevel) {
				jobs = append(jobs, job{at, &Req{
					Line: line, Write: write, MinLevel: lvl,
					Done: func(int64) { done++ },
				}})
			}
			for i := 0; i < 24; i++ {
				line := uint64(base + i*4096)
				mk(int64(i*3), line, i%4 == 3, arch.LevelL1)
				if i%5 == 0 {
					mk(int64(i*3+1), line, false, arch.LevelL1) // MSHR merge
				}
				if i%3 == 0 {
					mk(int64(i*3+2), uint64(base+0x10_0000+i*4096), false, arch.LevelL2)
				}
			}
			total := len(jobs)

			now := int64(0)
			issued := 0
			windows := 0
			const limit = 2_000_000
			for now < limit {
				// Issue everything due this cycle (retrying rejects next
				// cycle), then tick — the same order a core Step uses.
				for issued < len(jobs) && jobs[issued].at <= now {
					if !h.Access(now, jobs[issued].req) {
						break
					}
					issued++
				}
				h.Tick(now)
				if issued < len(jobs) {
					now++ // external driver still active; no dead windows yet
					continue
				}
				next := h.NextEventAt(now)
				if next >= NoEvent {
					if !h.Quiesce() {
						t.Fatalf("cycle %d: NextEventAt reports NoEvent with pending ops (l1d=%d l1i=%d l2=%d dram=%d)",
							now, h.L1D.PendingOps(), h.L1I.PendingOps(), h.L2.PendingOps(), h.DRAM.Pending())
					}
					break
				}
				if next <= now+1 {
					now++
					continue
				}
				// Dead window (now, next): every tick must change nothing.
				before := snapHier(h)
				doneBefore := done
				for c := now + 1; c < next; c++ {
					h.Tick(c)
					if done != doneBefore {
						t.Fatalf("Done fired at cycle %d, before reported next event %d", c, next)
					}
					if got := snapHier(h); got != before {
						t.Fatalf("hierarchy state changed at cycle %d, before reported next event %d:\nbefore %+v\n after %+v",
							c, next, before, got)
					}
				}
				windows++
				now = next
			}
			if now >= limit {
				t.Fatalf("workload did not quiesce within %d cycles (done %d/%d)", limit, done, total)
			}
			if done != total {
				t.Fatalf("completed %d of %d requests", done, total)
			}
			if windows == 0 {
				t.Fatal("workload produced no multi-cycle dead windows; property vacuous")
			}
			t.Logf("%s: %d requests, %d dead windows checked, quiesced at cycle %d", name, total, windows, now)
		})
	}
}
