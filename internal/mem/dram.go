package mem

import (
	"container/list"
	"fmt"

	"repro/internal/arch"
)

// DRAMConfig sizes the DRAM model. The defaults approximate the paper's
// dual-channel DDR3-1600 8x8 11-11-11 at a 1.5 GHz core clock: each channel
// sustains 12.8 GB/s ≈ 8.5 B per core cycle, i.e. one 64 B line per ~8
// cycles, with an access latency of roughly 60 core cycles.
type DRAMConfig struct {
	Channels      int
	AccessLatency int // cycles from service start to data
	LineService   int // cycles a channel is occupied per line (bandwidth)
	QueueDepth    int // per-channel request queue
}

// DefaultDRAMConfig matches Table I.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{Channels: 2, AccessLatency: 60, LineService: 8, QueueDepth: 32}
}

// DRAMStats aggregates traffic for the Fig 8.D bus-utilization metric.
type DRAMStats struct {
	Reads, Writes   uint64 // lines transferred
	ReadBytes       uint64
	WriteBytes      uint64
	BusyCycles      uint64 // channel-cycles spent transferring
	QueueFullStalls uint64
}

// DRAM is the dual-channel memory model.
type DRAM struct {
	cfg      DRAMConfig
	chans    []dramChannel
	activity uint64
	Stats    DRAMStats

	// Inject, when non-nil, returns extra service latency for a request
	// starting at now (deterministic transient-spike injection, modeling
	// refresh/bank conflicts). Timing only: data and ordering are
	// unaffected.
	Inject func(now int64) int64
}

type dramChannel struct {
	queue  *list.List // of *dramReq
	freeAt int64      // cycle the data bus becomes free
}

type dramReq struct {
	req     *Req
	doneAt  int64
	started bool
}

// NewDRAM builds the DRAM model.
func NewDRAM(cfg DRAMConfig) *DRAM {
	d := &DRAM{cfg: cfg, chans: make([]dramChannel, cfg.Channels)}
	for i := range d.chans {
		d.chans[i].queue = list.New()
	}
	return d
}

func (d *DRAM) channelOf(line uint64) int {
	return int(line/arch.LineSize) % d.cfg.Channels
}

// Access implements Port.
func (d *DRAM) Access(now int64, r *Req) bool {
	d.activity++ // enqueue, or the queue-full tally
	ch := &d.chans[d.channelOf(r.Line)]
	if ch.queue.Len() >= d.cfg.QueueDepth {
		d.Stats.QueueFullStalls++
		return false
	}
	ch.queue.PushBack(&dramReq{req: r})
	return true
}

// Tick implements Port: each channel starts at most one queued request per
// cycle, serializing on the data bus, and completes requests whose latency
// has elapsed.
func (d *DRAM) Tick(now int64) {
	for i := range d.chans {
		ch := &d.chans[i]
		// Start the oldest unstarted request if the bus is free.
		for e := ch.queue.Front(); e != nil; e = e.Next() {
			dr := e.Value.(*dramReq)
			if dr.started {
				continue
			}
			if ch.freeAt > now {
				break // in-order service per channel
			}
			dr.started = true
			lat := int64(d.cfg.AccessLatency)
			if d.Inject != nil {
				lat += d.Inject(now)
			}
			d.activity++
			dr.doneAt = now + lat
			ch.freeAt = now + int64(d.cfg.LineService)
			d.Stats.BusyCycles += uint64(d.cfg.LineService)
			if dr.req.Write {
				d.Stats.Writes++
				d.Stats.WriteBytes += arch.LineSize
			} else {
				d.Stats.Reads++
				d.Stats.ReadBytes += arch.LineSize
			}
			break
		}
		// Retire finished requests.
		for e := ch.queue.Front(); e != nil; {
			next := e.Next()
			dr := e.Value.(*dramReq)
			if dr.started && dr.doneAt <= now {
				d.activity++
				ch.queue.Remove(e)
				if dr.req.Done != nil {
					dr.req.Done(now)
				}
			}
			e = next
		}
	}
}

// PeakBytesPerCycle is the aggregate data-bus capacity used as the
// denominator of the utilization metric.
func (d *DRAM) PeakBytesPerCycle() float64 {
	return float64(d.cfg.Channels) * arch.LineSize / float64(d.cfg.LineService)
}

// Utilization returns (ReadBW+WriteBW)/PeakBW over the elapsed cycles,
// exactly the Fig 8.D metric.
func (d *DRAM) Utilization(cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	total := float64(d.Stats.ReadBytes + d.Stats.WriteBytes)
	return total / (float64(cycles) * d.PeakBytesPerCycle())
}

// Pending reports the number of in-flight requests across channels.
func (d *DRAM) Pending() int {
	n := 0
	for i := range d.chans {
		n += d.chans[i].queue.Len()
	}
	return n
}

func (d *DRAM) String() string {
	return fmt.Sprintf("DRAM{%dch, %d reads, %d writes}", d.cfg.Channels, d.Stats.Reads, d.Stats.Writes)
}
