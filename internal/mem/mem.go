// Package mem implements the simulated memory system: the functional
// backing store with virtual-memory bookkeeping, a two-level MOESI cache
// hierarchy with MSHRs, the baseline's stride and AMPM hardware prefetchers
// (paper Table I), and a dual-channel DDR3-1600-class DRAM model whose bus
// utilization statistic feeds Fig 8.D.
//
// Timing and function are decoupled: the caches and DRAM model track tags,
// states and latencies only, while data lives in the flat backing store.
// This keeps the single-core model exact while making every structural
// limit (MSHRs, queues, bandwidth) explicit.
package mem

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
)

// Memory is the functional backing store. Addresses are identity-mapped
// (virtual == physical) for mapped pages; accesses to unmapped pages still
// return data (zero-filled growth) so that wrong-path speculative accesses
// are harmless, but translation through the TLB reports the fault.
type Memory struct {
	base    uint64
	data    []byte
	mapped  map[uint64]bool // page number → mapped
	brk     uint64          // allocation cursor
	extents []Extent        // Alloc history, in address order
}

// Extent records one allocated region: [Base, Base+Size).
type Extent struct {
	Base uint64
	Size int64
}

// Contains reports whether [addr, addr+n) lies inside the extent.
func (e Extent) Contains(addr uint64, n int64) bool {
	return addr >= e.Base && addr+uint64(n) <= e.Base+uint64(e.Size)
}

// NewMemory creates a backing store; allocations start at a fixed base so
// address 0 stays invalid.
func NewMemory() *Memory {
	const base = 0x10000
	return &Memory{base: base, brk: base, mapped: make(map[uint64]bool)}
}

func (m *Memory) ensure(addr uint64, size int) {
	end := addr + uint64(size)
	if end < m.base {
		return
	}
	need := end - m.base
	if uint64(len(m.data)) < need {
		grown := make([]byte, need+(need>>2)+arch.PageSize)
		copy(grown, m.data)
		m.data = grown
	}
}

// Alloc reserves size bytes aligned to align, maps the covered pages, and
// returns the base address.
func (m *Memory) Alloc(size, align int) uint64 {
	if align < int(arch.W8) {
		align = int(arch.W8)
	}
	a := uint64(align)
	addr := (m.brk + a - 1) / a * a
	m.brk = addr + uint64(size)
	m.ensure(addr, size)
	for p := addr / arch.PageSize; p <= (addr+uint64(size)-1)/arch.PageSize; p++ {
		m.mapped[p] = true
	}
	m.extents = append(m.extents, Extent{Base: addr, Size: int64(size)})
	return addr
}

// Extents returns the allocation history in address order — the declared
// buffer footprint a static verifier checks stream descriptors against.
func (m *Memory) Extents() []Extent {
	return append([]Extent(nil), m.extents...)
}

// HashExtents fingerprints the content of every allocated extent with
// FNV-1a — the architectural-state digest the resilience oracle compares
// between faulted and fault-free runs.
func (m *Memory) HashExtents() uint64 {
	const prime = 0x100000001b3
	h := uint64(0xcbf29ce484222325)
	for _, e := range m.extents {
		for i := int64(0); i < e.Size; i++ {
			var b byte
			if a := e.Base + uint64(i); a >= m.base && a-m.base < uint64(len(m.data)) {
				b = m.data[a-m.base]
			}
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}

// MapPage marks the page containing addr as mapped (used by the page-fault
// handler path in tests and by the OS model).
func (m *Memory) MapPage(addr uint64) { m.mapped[addr/arch.PageSize] = true }

// UnmapPage removes the mapping of the page containing addr.
func (m *Memory) UnmapPage(addr uint64) { delete(m.mapped, addr/arch.PageSize) }

// Mapped reports whether the page containing addr is mapped.
func (m *Memory) Mapped(addr uint64) bool { return m.mapped[addr/arch.PageSize] }

// Read returns the w-byte value at addr, zero-extended.
func (m *Memory) Read(addr uint64, w arch.ElemWidth) uint64 {
	m.ensure(addr, int(w))
	if addr < m.base {
		return 0
	}
	off := addr - m.base
	switch w {
	case arch.W1:
		return uint64(m.data[off])
	case arch.W2:
		return uint64(binary.LittleEndian.Uint16(m.data[off:]))
	case arch.W4:
		return uint64(binary.LittleEndian.Uint32(m.data[off:]))
	default:
		return binary.LittleEndian.Uint64(m.data[off:])
	}
}

// Write stores the low 8·w bits of v at addr.
func (m *Memory) Write(addr uint64, w arch.ElemWidth, v uint64) {
	m.ensure(addr, int(w))
	if addr < m.base {
		return
	}
	off := addr - m.base
	switch w {
	case arch.W1:
		m.data[off] = byte(v)
	case arch.W2:
		binary.LittleEndian.PutUint16(m.data[off:], uint16(v))
	case arch.W4:
		binary.LittleEndian.PutUint32(m.data[off:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(m.data[off:], v)
	}
}

// ReadFloat reads a float of width w from addr.
func (m *Memory) ReadFloat(addr uint64, w arch.ElemWidth) float64 {
	bits := m.Read(addr, w)
	if w == arch.W4 {
		return float64(f32FromBits(uint32(bits)))
	}
	return f64FromBits(bits)
}

// WriteFloat stores a float of width w at addr.
func (m *Memory) WriteFloat(addr uint64, w arch.ElemWidth, f float64) {
	if w == arch.W4 {
		m.Write(addr, w, uint64(f32Bits(float32(f))))
		return
	}
	m.Write(addr, w, f64Bits(f))
}

// TLB models address translation. Mapped pages translate identity; unmapped
// pages fault. A small fully-associative buffer caches translations, and
// misses cost a fixed page-walk penalty charged to the requesting access.
type TLB struct {
	mem     *Memory
	entries map[uint64]bool // cached page numbers
	order   []uint64        // FIFO replacement
	size    int

	WalkPenalty int // cycles added on a TLB miss

	// Inject, when non-nil, is consulted on every translation; returning
	// true forces the access to report a page fault regardless of the page
	// table (deterministic fault injection). The forced fault takes the
	// real recovery path — precise squash at commit, page mapping, TLB
	// flush — so architectural state is unaffected.
	Inject func(addr uint64) bool

	Hits, Misses, Faults uint64
}

// NewTLB builds a TLB of the given entry count over m's page table.
func NewTLB(m *Memory, size int) *TLB {
	return &TLB{mem: m, entries: make(map[uint64]bool), size: size, WalkPenalty: 20}
}

// Translate resolves addr. It returns the extra latency in cycles (0 on a
// TLB hit) and whether the page is mapped; fault=true means a page fault
// that must surface as a precise exception at commit (paper §IV-A).
func (t *TLB) Translate(addr uint64) (extraLat int, fault bool) {
	if t.Inject != nil && t.Inject(addr) {
		t.Misses++
		t.Faults++
		return t.WalkPenalty, true
	}
	page := addr / arch.PageSize
	if t.entries[page] {
		t.Hits++
		return 0, false
	}
	t.Misses++
	if !t.mem.Mapped(addr) {
		t.Faults++
		return t.WalkPenalty, true
	}
	if len(t.order) >= t.size {
		oldest := t.order[0]
		t.order = t.order[1:]
		delete(t.entries, oldest)
	}
	t.entries[page] = true
	t.order = append(t.order, page)
	return t.WalkPenalty, false
}

// Flush empties the TLB (context switches, new mappings).
func (t *TLB) Flush() {
	t.entries = make(map[uint64]bool)
	t.order = nil
}

func (t *TLB) String() string {
	return fmt.Sprintf("TLB{%d entries, %d hits, %d misses, %d faults}", len(t.entries), t.Hits, t.Misses, t.Faults)
}
