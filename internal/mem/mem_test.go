package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
)

func TestMemoryReadWriteWidths(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(64, 8)
	m.Write(a, arch.W8, 0x1122334455667788)
	if got := m.Read(a, arch.W8); got != 0x1122334455667788 {
		t.Fatalf("W8 roundtrip: %#x", got)
	}
	if got := m.Read(a, arch.W4); got != 0x55667788 {
		t.Fatalf("W4 little-endian read: %#x", got)
	}
	if got := m.Read(a, arch.W2); got != 0x7788 {
		t.Fatalf("W2 read: %#x", got)
	}
	if got := m.Read(a, arch.W1); got != 0x88 {
		t.Fatalf("W1 read: %#x", got)
	}
	m.Write(a+4, arch.W2, 0xBEEF)
	if got := m.Read(a+4, arch.W2); got != 0xBEEF {
		t.Fatalf("W2 write: %#x", got)
	}
}

func TestMemoryFloatRoundTrip(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(16, 8)
	m.WriteFloat(a, arch.W8, 3.25)
	if got := m.ReadFloat(a, arch.W8); got != 3.25 {
		t.Fatalf("f64: %v", got)
	}
	m.WriteFloat(a+8, arch.W4, 1.5)
	if got := m.ReadFloat(a+8, arch.W4); got != 1.5 {
		t.Fatalf("f32: %v", got)
	}
}

func TestMemoryAllocAlignmentAndMapping(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(100, 64)
	if a%64 != 0 {
		t.Fatalf("alloc not aligned: %#x", a)
	}
	b := m.Alloc(8, 8)
	if b < a+100 {
		t.Fatalf("allocations overlap: %#x after %#x+100", b, a)
	}
	if !m.Mapped(a) || !m.Mapped(a+99) {
		t.Fatal("allocated range not mapped")
	}
	if m.Mapped(0) {
		t.Fatal("address 0 must be unmapped")
	}
}

func TestQuickMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	base := m.Alloc(1<<16, 8)
	f := func(off uint16, v uint64, wsel uint8) bool {
		w := []arch.ElemWidth{arch.W1, arch.W2, arch.W4, arch.W8}[wsel%4]
		addr := base + uint64(off)
		m.Write(addr, w, v)
		want := v
		if w != arch.W8 {
			want = v & (1<<(8*uint(w)) - 1)
		}
		return m.Read(addr, w) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTLB(t *testing.T) {
	m := NewMemory()
	a := m.Alloc(arch.PageSize*4, arch.PageSize)
	tlb := NewTLB(m, 2)
	lat, fault := tlb.Translate(a)
	if fault || lat != tlb.WalkPenalty {
		t.Fatalf("first access: lat=%d fault=%v", lat, fault)
	}
	lat, fault = tlb.Translate(a + 8)
	if fault || lat != 0 {
		t.Fatalf("TLB hit expected: lat=%d fault=%v", lat, fault)
	}
	// Fill beyond capacity and verify the first entry was evicted.
	tlb.Translate(a + arch.PageSize)
	tlb.Translate(a + 2*arch.PageSize)
	if lat, _ = tlb.Translate(a); lat == 0 {
		t.Fatal("expected eviction of oldest translation")
	}
	// Unmapped page faults and is not cached.
	_, fault = tlb.Translate(0x10)
	if !fault {
		t.Fatal("unmapped page must fault")
	}
	if tlb.Faults != 1 {
		t.Fatalf("faults=%d want 1", tlb.Faults)
	}
	tlb.Flush()
	if lat, _ = tlb.Translate(a); lat == 0 {
		t.Fatal("flush must empty the TLB")
	}
}

// runUntil ticks p until done returns true, failing after limit cycles.
func runUntil(t *testing.T, p Port, start int64, limit int64, done func() bool) int64 {
	t.Helper()
	for c := start; c < start+limit; c++ {
		p.Tick(c)
		if done() {
			return c
		}
	}
	t.Fatalf("condition not reached within %d cycles", limit)
	return 0
}

func TestDRAMLatencyAndBandwidth(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 1, AccessLatency: 50, LineService: 8, QueueDepth: 8})
	var doneAt []int64
	for i := 0; i < 3; i++ {
		r := &Req{Line: uint64(i * 2 * arch.LineSize), Done: func(now int64) { doneAt = append(doneAt, now) }}
		if !d.Access(0, r) {
			t.Fatal("access rejected")
		}
	}
	runUntil(t, d, 1, 200, func() bool { return len(doneAt) == 3 })
	// Serialized on one channel: starts at 1, 9, 17 → done ≈ 51, 59, 67.
	if doneAt[1]-doneAt[0] != 8 || doneAt[2]-doneAt[1] != 8 {
		t.Fatalf("line service spacing wrong: %v", doneAt)
	}
	if d.Stats.Reads != 3 || d.Stats.ReadBytes != 3*arch.LineSize {
		t.Fatalf("stats wrong: %+v", d.Stats)
	}
}

func TestDRAMChannelsInterleave(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 2, AccessLatency: 50, LineService: 8, QueueDepth: 8})
	var doneAt []int64
	for i := 0; i < 2; i++ {
		r := &Req{Line: uint64(i * arch.LineSize), Done: func(now int64) { doneAt = append(doneAt, now) }}
		d.Access(0, r)
	}
	runUntil(t, d, 1, 200, func() bool { return len(doneAt) == 2 })
	if doneAt[1] != doneAt[0] {
		t.Fatalf("adjacent lines should ride parallel channels: %v", doneAt)
	}
}

func TestDRAMQueueFull(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 1, AccessLatency: 50, LineService: 8, QueueDepth: 2})
	if !d.Access(0, &Req{Line: 0}) || !d.Access(0, &Req{Line: 64}) {
		t.Fatal("first two must be accepted")
	}
	if d.Access(0, &Req{Line: 128}) {
		t.Fatal("queue overflow accepted")
	}
	if d.Stats.QueueFullStalls != 1 {
		t.Fatalf("stall count %d", d.Stats.QueueFullStalls)
	}
}

func TestDRAMUtilization(t *testing.T) {
	d := NewDRAM(DRAMConfig{Channels: 2, AccessLatency: 10, LineService: 8, QueueDepth: 32})
	n := 0
	for i := 0; i < 16; i++ {
		d.Access(0, &Req{Line: uint64(i * arch.LineSize), Done: func(int64) { n++ }})
	}
	end := runUntil(t, d, 1, 500, func() bool { return n == 16 })
	u := d.Utilization(end)
	if u <= 0.5 || u > 1.0 {
		t.Fatalf("utilization %v out of plausible range (16 back-to-back lines)", u)
	}
}

// instantPort completes requests synchronously, for isolated cache tests.
type instantPort struct {
	seen []uint64
}

func (p *instantPort) Access(now int64, r *Req) bool {
	p.seen = append(p.seen, r.Line)
	if r.Done != nil {
		r.Done(now)
	}
	return true
}

func (p *instantPort) Tick(now int64) {}

func testCacheCfg(sizeKB, ways, hitLat int) CacheConfig {
	return CacheConfig{
		Name: "test", Level: arch.LevelL1,
		SizeBytes: sizeKB << 10, Ways: ways,
		HitLatency: hitLat, MSHRs: 4, AcceptsPerCycle: 4,
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	lower := &instantPort{}
	c := NewCache(testCacheCfg(4, 2, 3), lower)
	var missDone, hitDone int64
	c.Tick(0)
	if !c.Access(0, &Req{Line: 0x1000, Done: func(n int64) { missDone = n }}) {
		t.Fatal("rejected")
	}
	runUntil(t, c, 1, 50, func() bool { return missDone != 0 })
	if c.Stats.Misses != 1 {
		t.Fatalf("misses=%d", c.Stats.Misses)
	}
	if !c.Contains(0x1000) || c.StateOf(0x1000) != Exclusive {
		t.Fatalf("state %v, want E", c.StateOf(0x1000))
	}
	start := missDone + 1
	c.Tick(start)
	if !c.Access(start, &Req{Line: 0x1000, Done: func(n int64) { hitDone = n }}) {
		t.Fatal("hit rejected")
	}
	runUntil(t, c, start+1, 10, func() bool { return hitDone != 0 })
	if hitDone-start != 3 {
		t.Fatalf("hit latency = %d, want 3", hitDone-start)
	}
}

func TestCacheWriteMakesModified(t *testing.T) {
	c := NewCache(testCacheCfg(4, 2, 1), &instantPort{})
	done := false
	c.Tick(0)
	c.Access(0, &Req{Line: 0x40, Write: true, Done: func(int64) { done = true }})
	runUntil(t, c, 1, 20, func() bool { return done })
	if c.StateOf(0x40) != Modified {
		t.Fatalf("state %v, want M", c.StateOf(0x40))
	}
}

func TestCacheMSHRMerge(t *testing.T) {
	lower := &instantPort{}
	c := NewCache(testCacheCfg(4, 2, 1), lower)
	count := 0
	c.Tick(0)
	c.Access(0, &Req{Line: 0x80, Done: func(int64) { count++ }})
	c.Access(0, &Req{Line: 0x80, Done: func(int64) { count++ }})
	runUntil(t, c, 1, 20, func() bool { return count == 2 })
	if len(lower.seen) != 1 {
		t.Fatalf("lower saw %d fills, want 1 (merged)", len(lower.seen))
	}
	if c.Stats.Misses != 1 {
		t.Fatalf("misses=%d, want 1 (secondary merged)", c.Stats.Misses)
	}
}

func TestCacheMSHRFullRejects(t *testing.T) {
	// Lower port that never responds, pinning MSHRs.
	c := NewCache(testCacheCfg(4, 2, 1), &blackholePort{})
	c.Tick(0)
	for i := 0; i < 4; i++ {
		if !c.Access(0, &Req{Line: uint64(i) * arch.LineSize}) {
			t.Fatalf("access %d rejected early", i)
		}
	}
	if c.Access(0, &Req{Line: 5 * arch.LineSize}) {
		t.Fatal("access beyond MSHR capacity accepted")
	}
}

type blackholePort struct{}

func (blackholePort) Access(int64, *Req) bool { return true }
func (blackholePort) Tick(int64)              {}

func TestCacheEvictionWritesBack(t *testing.T) {
	lower := &instantPort{}
	// 2 sets × 1 way × 64B = 128B cache: two same-set lines conflict.
	cfg := CacheConfig{Name: "tiny", Level: arch.LevelL1, SizeBytes: 128, Ways: 1,
		HitLatency: 1, MSHRs: 2, AcceptsPerCycle: 4}
	c := NewCache(cfg, lower)
	done := 0
	c.Tick(0)
	c.Access(0, &Req{Line: 0x000, Write: true, Done: func(int64) { done++ }})
	runUntil(t, c, 1, 20, func() bool { return done == 1 })
	// Same set (stride = 128B): evicts the dirty line.
	now := int64(10)
	c.Tick(now)
	c.Access(now, &Req{Line: 0x100, Done: func(int64) { done++ }})
	runUntil(t, c, now+1, 20, func() bool { return done == 2 })
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks=%d, want 1", c.Stats.Writebacks)
	}
	var sawWB bool
	for _, r := range lower.seen {
		if r == 0x000 {
			sawWB = true
		}
	}
	if !sawWB {
		t.Fatal("lower level never saw the writeback")
	}
	if c.Contains(0x000) {
		t.Fatal("victim still present")
	}
}

func TestCacheLRU(t *testing.T) {
	lower := &instantPort{}
	// 1 set × 2 ways.
	cfg := CacheConfig{Name: "lru", Level: arch.LevelL1, SizeBytes: 128, Ways: 2,
		HitLatency: 1, MSHRs: 4, AcceptsPerCycle: 4}
	c := NewCache(cfg, lower)
	fill := func(now int64, line uint64) int64 {
		ok := false
		c.Tick(now)
		c.Access(now, &Req{Line: line, Done: func(int64) { ok = true }})
		return runUntil(t, c, now+1, 30, func() bool { return ok })
	}
	now := fill(0, 0x000)
	now = fill(now+1, 0x080)
	// Touch 0x000 so 0x080 becomes LRU.
	now = fill(now+1, 0x000)
	now = fill(now+1, 0x100)
	if !c.Contains(0x000) || c.Contains(0x080) {
		t.Fatal("LRU victim selection wrong")
	}
	_ = now
}

func TestCacheBypassForwards(t *testing.T) {
	lower := &instantPort{}
	c := NewCache(testCacheCfg(4, 2, 1), lower)
	done := false
	c.Tick(0)
	c.Access(0, &Req{Line: 0x200, MinLevel: arch.LevelL2, Done: func(int64) { done = true }})
	lower.Tick(1)
	if !done {
		t.Fatal("bypass request not forwarded")
	}
	if c.Contains(0x200) {
		t.Fatal("bypass request must not allocate")
	}
	if c.Stats.BypassReqs != 1 {
		t.Fatalf("bypass stat %d", c.Stats.BypassReqs)
	}
}

func TestCacheSnoopMOESI(t *testing.T) {
	c := NewCache(testCacheCfg(4, 2, 1), &instantPort{})
	fill := func(line uint64, write bool) {
		ok := false
		c.Tick(0)
		c.Access(0, &Req{Line: line, Write: write, Done: func(int64) { ok = true }})
		runUntil(t, c, 1, 20, func() bool { return ok })
	}
	fill(0x000, false) // E
	if got := c.Snoop(2, 0x000, false); got != Shared {
		t.Fatalf("read snoop on E → %v, want S", got)
	}
	fill(0x040, true) // M
	if got := c.Snoop(2, 0x040, false); got != Owned {
		t.Fatalf("read snoop on M → %v, want O", got)
	}
	if got := c.Snoop(3, 0x040, true); got != Invalid {
		t.Fatalf("write snoop → %v, want I", got)
	}
	if c.Contains(0x040) {
		t.Fatal("write snoop must invalidate")
	}
	// Owned line written back on invalidation.
	if c.Stats.Writebacks == 0 {
		t.Fatal("invalidating an owned line must write back")
	}
	if got := c.Snoop(4, 0xdead0, false); got != Invalid {
		t.Fatalf("snoop on absent line → %v, want I", got)
	}
}

func TestBackInvalidation(t *testing.T) {
	h := NewHierarchy(HierarchyConfig{
		L1: CacheConfig{Name: "L1", Level: arch.LevelL1, SizeBytes: 1 << 10, Ways: 2,
			HitLatency: 1, MSHRs: 4, AcceptsPerCycle: 4},
		L2: CacheConfig{Name: "L2", Level: arch.LevelL2, SizeBytes: 2 << 10, Ways: 2,
			HitLatency: 4, MSHRs: 4, AcceptsPerCycle: 4},
		DRAM: DRAMConfig{Channels: 1, AccessLatency: 10, LineService: 4, QueueDepth: 16},
	})
	done := false
	var cycle int64
	load := func(line uint64) {
		done = false
		h.Access(cycle, &Req{Line: line, Done: func(int64) { done = true }})
		for !done {
			cycle++
			h.Tick(cycle)
			if cycle > 100000 {
				t.Fatal("timeout")
			}
		}
		cycle++
		h.Tick(cycle)
		cycle++
	}
	load(0x0000)
	if !h.L1D.Contains(0x0000) || !h.L2.Contains(0x0000) {
		t.Fatal("line must be in both levels")
	}
	// Fill enough conflicting L2 lines to evict 0x0000 from L2.
	// L2: 2KB, 2-way, 16 sets → same set every 16 lines (0x400 stride).
	for i := 1; i <= 2; i++ {
		load(uint64(i) * 0x400)
	}
	if h.L2.Contains(0x0000) {
		t.Fatal("L2 should have evicted the line")
	}
	if h.L1D.Contains(0x0000) {
		t.Fatal("back-invalidation did not remove the line from L1")
	}
	if h.L1D.Stats.Invalidations == 0 {
		t.Fatal("invalidation not counted")
	}
}

func TestStridePrefetcherDetects(t *testing.T) {
	p := NewStridePrefetcher(16)
	var got []uint64
	// Same PC, stride of 2 lines.
	for i := 0; i < 6; i++ {
		got = p.OnAccess(int64(i), uint64(i*2*arch.LineSize), 42, false)
	}
	if len(got) == 0 {
		t.Fatal("no prefetches after confident stride")
	}
	for _, l := range got {
		if (l-uint64(5*2*arch.LineSize))%(2*arch.LineSize) != 0 {
			t.Fatalf("prefetch %#x not on detected stride", l)
		}
	}
	// A different PC must not be confident yet.
	if out := p.OnAccess(10, 0x100000, 43, false); out != nil {
		t.Fatal("fresh PC should not prefetch")
	}
}

func TestStridePrefetcherResetsOnStrideChange(t *testing.T) {
	p := NewStridePrefetcher(16)
	for i := 0; i < 4; i++ {
		p.OnAccess(int64(i), uint64(i*arch.LineSize), 1, false)
	}
	if got := p.OnAccess(5, 0x800000, 1, false); got != nil {
		t.Fatal("stride break must reset confidence")
	}
}

func TestAMPMPrefetcher(t *testing.T) {
	p := NewAMPMPrefetcher()
	base := uint64(1 << 20)
	var got []uint64
	for i := 0; i < 4; i++ {
		got = p.OnAccess(int64(i), base+uint64(i*arch.LineSize), 0, false)
	}
	found := false
	for _, l := range got {
		if l == base+4*arch.LineSize {
			found = true
		}
	}
	if !found {
		t.Fatalf("AMPM missed the +1 pattern: %v", got)
	}
	// Already-accessed lines are not re-prefetched.
	for _, l := range got {
		if l <= base+3*arch.LineSize {
			t.Fatalf("AMPM prefetched an already-accessed line %#x", l)
		}
	}
}

func TestAMPMNegativeStride(t *testing.T) {
	p := NewAMPMPrefetcher()
	base := uint64(1 << 21)
	var got []uint64
	for i := 10; i >= 7; i-- {
		got = p.OnAccess(0, base+uint64(i*arch.LineSize), 0, false)
	}
	found := false
	for _, l := range got {
		if l == base+6*arch.LineSize {
			found = true
		}
	}
	if !found {
		t.Fatalf("AMPM missed the -1 pattern: %v", got)
	}
}

func TestHierarchyPrefetchingHelpsSequential(t *testing.T) {
	run := func(pf bool) (misses uint64, cycles int64) {
		cfg := DefaultHierarchyConfig()
		cfg.Prefetchers = pf
		h := NewHierarchy(cfg)
		var cycle int64
		for i := 0; i < 256; i++ {
			done := false
			req := &Req{Line: uint64(i * arch.LineSize), PC: 7, Done: func(int64) { done = true }}
			for !h.Access(cycle, req) {
				cycle++
				h.Tick(cycle)
			}
			for !done {
				cycle++
				h.Tick(cycle)
				if cycle > 1_000_000 {
					t.Fatal("timeout")
				}
			}
		}
		return h.L1D.Stats.Misses, cycle
	}
	withoutMisses, withoutCycles := run(false)
	withMisses, withCycles := run(true)
	if withMisses >= withoutMisses {
		t.Fatalf("prefetching did not reduce L1 misses: %d vs %d", withMisses, withoutMisses)
	}
	if withCycles >= withoutCycles {
		t.Fatalf("prefetching did not reduce cycles: %d vs %d", withCycles, withoutCycles)
	}
}

func TestHierarchyQuiesce(t *testing.T) {
	h := NewHierarchy(DefaultHierarchyConfig())
	if !h.Quiesce() {
		t.Fatal("fresh hierarchy must be quiescent")
	}
	done := false
	h.Access(0, &Req{Line: 0x40, Done: func(int64) { done = true }})
	if h.Quiesce() {
		t.Fatal("in-flight request must block quiescence")
	}
	var cycle int64
	for !done || !h.Quiesce() {
		cycle++
		h.Tick(cycle)
		if cycle > 100000 {
			t.Fatal("never quiesced")
		}
	}
}
