package mem

import (
	"fmt"

	"repro/internal/arch"
)

// LineState is a MOESI coherence state (paper: snoop-based MOESI between
// cache levels, Table I).
type LineState uint8

const (
	Invalid LineState = iota
	Shared
	Exclusive
	Owned
	Modified
)

func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	}
	return "?"
}

// Dirty reports whether the state holds data newer than the level below.
func (s LineState) Dirty() bool { return s == Modified || s == Owned }

// Prefetcher reacts to demand accesses and proposes lines to prefetch.
type Prefetcher interface {
	// OnAccess observes a demand access and returns line addresses to
	// prefetch into the observing cache.
	OnAccess(now int64, line uint64, pc int, hit bool) []uint64
}

// CacheConfig sizes one cache level.
type CacheConfig struct {
	Name            string
	Level           arch.CacheLevel
	SizeBytes       int
	Ways            int
	HitLatency      int
	MSHRs           int
	AcceptsPerCycle int
	PrefetchQueue   int
}

// CacheStats counts cache-level events.
type CacheStats struct {
	Hits, Misses       uint64
	BypassReqs         uint64
	Evictions          uint64
	Writebacks         uint64
	Rejects            uint64
	PrefetchIssued     uint64
	PrefetchFills      uint64
	PrefetchUsefulHits uint64
	Invalidations      uint64
}

type wayEntry struct {
	tag        uint64
	state      LineState
	lastUsed   int64
	prefetched bool
}

type mshr struct {
	line   uint64
	write  bool
	dones  []func(int64)
	issued bool
	demand bool
}

type timedDone struct {
	at int64
	fn func(int64)
}

// Cache is one set-associative write-back, write-allocate cache level.
type Cache struct {
	cfg   CacheConfig
	lower Port
	upper *Cache // next level toward the core, for back-invalidation
	pf    Prefetcher

	sets     [][]wayEntry
	numSets  uint64
	mshrs    map[uint64]*mshr
	wbQueue  []*Req
	pfQueue  []uint64
	pending  []timedDone
	accepted int
	lastTick int64
	activity uint64

	Stats CacheStats
}

// NewCache builds a cache level over the given lower port.
func NewCache(cfg CacheConfig, lower Port) *Cache {
	numSets := cfg.SizeBytes / (arch.LineSize * cfg.Ways)
	if numSets < 1 {
		numSets = 1
	}
	sets := make([][]wayEntry, numSets)
	for i := range sets {
		sets[i] = make([]wayEntry, cfg.Ways)
	}
	if cfg.PrefetchQueue == 0 {
		cfg.PrefetchQueue = 16
	}
	return &Cache{
		cfg:     cfg,
		lower:   lower,
		sets:    sets,
		numSets: uint64(numSets),
		mshrs:   make(map[uint64]*mshr),
	}
}

// SetUpper links the cache level closer to the core (for back-invalidation
// when this level evicts a line the upper one holds).
func (c *Cache) SetUpper(u *Cache) { c.upper = u }

// SetPrefetcher attaches a hardware prefetcher to this level.
func (c *Cache) SetPrefetcher(p Prefetcher) { c.pf = p }

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

func (c *Cache) setOf(line uint64) []wayEntry {
	return c.sets[(line/arch.LineSize)%c.numSets]
}

func (c *Cache) lookup(line uint64) *wayEntry {
	set := c.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			return &set[i]
		}
	}
	return nil
}

// Contains reports whether the line is present (any valid state).
func (c *Cache) Contains(line uint64) bool { return c.lookup(line) != nil }

// StateOf returns the MOESI state of the line.
func (c *Cache) StateOf(line uint64) LineState {
	if e := c.lookup(line); e != nil {
		return e.state
	}
	return Invalid
}

// Access implements Port.
func (c *Cache) Access(now int64, r *Req) bool {
	c.activity++ // every outcome mutates: an allocation, a hit update, or a reject tally
	if now != c.lastTick {
		// Defensive: budget is normally reset in Tick; handle out-of-order
		// first use within a cycle.
		c.accepted = 0
		c.lastTick = now
	}
	if c.accepted >= c.cfg.AcceptsPerCycle {
		c.Stats.Rejects++
		return false
	}

	// Non-cacheable at this level: forward to the level below (the paper's
	// stream cache-level bypass issues the request as non-cacheable on all
	// levels above the configured one, §IV-A).
	if r.MinLevel > c.cfg.Level {
		if !c.lower.Access(now, r) {
			c.Stats.Rejects++
			return false
		}
		c.accepted++
		c.Stats.BypassReqs++
		return true
	}

	line := r.Line & arch.LineMask
	if e := c.lookup(line); e != nil {
		c.accepted++
		c.Stats.Hits++
		e.lastUsed = now
		if e.prefetched {
			e.prefetched = false
			c.Stats.PrefetchUsefulHits++
		}
		if r.Write && e.state != Modified {
			e.state = Modified
		}
		if r.Done != nil {
			c.schedule(now+int64(c.cfg.HitLatency), r.Done)
		}
		c.observe(now, line, r.PC, true)
		return true
	}

	// Miss: merge into an existing MSHR if one is outstanding.
	if ms, ok := c.mshrs[line]; ok {
		c.accepted++
		c.Stats.Hits++ // secondary miss, already in flight
		if r.Write {
			ms.write = true
		}
		if !r.Prefetch {
			ms.demand = true
		}
		if r.Done != nil {
			ms.dones = append(ms.dones, r.Done)
		}
		c.observe(now, line, r.PC, false)
		return true
	}
	if len(c.mshrs) >= c.cfg.MSHRs {
		c.Stats.Rejects++
		return false
	}
	c.accepted++
	c.Stats.Misses++
	ms := &mshr{line: line, write: r.Write, demand: !r.Prefetch}
	if r.Done != nil {
		ms.dones = append(ms.dones, r.Done)
	}
	c.mshrs[line] = ms
	c.issueFill(now, ms)
	c.observe(now, line, r.PC, false)
	return true
}

func (c *Cache) observe(now int64, line uint64, pc int, hit bool) {
	if c.pf == nil {
		return
	}
	for _, l := range c.pf.OnAccess(now, line, pc, hit) {
		if len(c.pfQueue) >= c.cfg.PrefetchQueue {
			break
		}
		l &= arch.LineMask
		if c.lookup(l) != nil {
			continue
		}
		if _, inflight := c.mshrs[l]; inflight {
			continue
		}
		c.pfQueue = append(c.pfQueue, l)
	}
}

func (c *Cache) issueFill(now int64, ms *mshr) {
	if ms.issued {
		return
	}
	fill := &Req{Line: ms.line, Done: func(done int64) { c.fill(done, ms.line) }}
	if c.lower.Access(now, fill) {
		ms.issued = true
	}
}

// fill installs a line when the lower level responds.
func (c *Cache) fill(now int64, line uint64) {
	ms, ok := c.mshrs[line]
	if !ok {
		return
	}
	delete(c.mshrs, line)
	set := c.setOf(line)
	victim := &set[0]
	for i := range set {
		if set[i].state == Invalid {
			victim = &set[i]
			break
		}
		if set[i].lastUsed < victim.lastUsed {
			victim = &set[i]
		}
	}
	if victim.state != Invalid {
		c.evict(now, victim)
	}
	victim.tag = line
	victim.lastUsed = now
	victim.prefetched = !ms.demand
	if !ms.demand {
		c.Stats.PrefetchFills++
	}
	if ms.write {
		victim.state = Modified
	} else {
		victim.state = Exclusive
	}
	for _, done := range ms.dones {
		c.schedule(now+int64(c.cfg.HitLatency), done)
	}
}

func (c *Cache) evict(now int64, e *wayEntry) {
	c.Stats.Evictions++
	if e.state.Dirty() {
		c.Stats.Writebacks++
		wb := &Req{Line: e.tag, Write: true}
		if !c.lower.Access(now, wb) {
			c.wbQueue = append(c.wbQueue, wb)
		}
	}
	if c.upper != nil {
		c.upper.Invalidate(now, e.tag)
	}
	e.state = Invalid
	e.prefetched = false
}

// Invalidate removes the line (back-invalidation from the level below or a
// write snoop). A dirty copy is written back directly to memory, bypassing
// the level that initiated the invalidation.
func (c *Cache) Invalidate(now int64, line uint64) {
	e := c.lookup(line)
	if e == nil {
		return
	}
	c.Stats.Invalidations++
	if e.state.Dirty() {
		c.Stats.Writebacks++
		wb := &Req{Line: e.tag, Write: true, MinLevel: arch.LevelMem}
		if !c.lower.Access(now, wb) {
			c.wbQueue = append(c.wbQueue, wb)
		}
	}
	if c.upper != nil {
		c.upper.Invalidate(now, line)
	}
	e.state = Invalid
	e.prefetched = false
}

// Snoop applies a MOESI bus snoop to the line: a read snoop demotes
// Exclusive→Shared and Modified→Owned (this cache supplies the data); a
// write snoop invalidates. It returns the state after the snoop.
func (c *Cache) Snoop(now int64, line uint64, write bool) LineState {
	e := c.lookup(line)
	if e == nil {
		return Invalid
	}
	if write {
		c.Invalidate(now, line)
		return Invalid
	}
	switch e.state {
	case Exclusive:
		e.state = Shared
	case Modified:
		e.state = Owned
	}
	return e.state
}

func (c *Cache) schedule(at int64, fn func(int64)) {
	c.pending = append(c.pending, timedDone{at: at, fn: fn})
}

// Tick implements Port.
func (c *Cache) Tick(now int64) {
	c.accepted = 0
	c.lastTick = now

	// Retry unissued fills and queued writebacks.
	for _, ms := range c.mshrs {
		if !ms.issued {
			c.activity++ // issue, or the lower level's reject tally
			c.issueFill(now, ms)
		}
	}
	for len(c.wbQueue) > 0 {
		c.activity++
		if !c.lower.Access(now, c.wbQueue[0]) {
			break
		}
		c.wbQueue = c.wbQueue[1:]
	}
	// Issue queued prefetches with leftover capacity.
	for len(c.pfQueue) > 0 && c.accepted < c.cfg.AcceptsPerCycle && len(c.mshrs) < c.cfg.MSHRs {
		c.activity++
		line := c.pfQueue[0]
		if c.lookup(line) != nil {
			c.pfQueue = c.pfQueue[1:]
			continue
		}
		if _, inflight := c.mshrs[line]; inflight {
			c.pfQueue = c.pfQueue[1:]
			continue
		}
		ms := &mshr{line: line}
		c.mshrs[line] = ms
		c.issueFill(now, ms)
		if !ms.issued {
			delete(c.mshrs, line)
			break
		}
		c.Stats.PrefetchIssued++
		c.accepted++
		c.pfQueue = c.pfQueue[1:]
	}
	// Fire matured completions.
	kept := c.pending[:0]
	for _, p := range c.pending {
		if p.at <= now {
			c.activity++
			p.fn(now)
		} else {
			kept = append(kept, p)
		}
	}
	c.pending = kept
}

// PendingOps reports outstanding internal work (for drain detection).
func (c *Cache) PendingOps() int {
	return len(c.mshrs) + len(c.wbQueue) + len(c.pending)
}

// NextEventAt returns a lower bound on the cycle of this cache's next state
// change, assuming no new requests arrive: now+1 while any retry work could
// run in the next Tick (unissued fills, queued writebacks or prefetches —
// those retries also mutate reject counters below, so they are never
// skippable), the earliest matured completion otherwise, or NoEvent when
// the cache is fully quiescent. The event-driven scheduler may advance time
// directly to the minimum such bound; Ticks before it are provable no-ops.
func (c *Cache) NextEventAt(now int64) int64 {
	for _, ms := range c.mshrs {
		if !ms.issued {
			return now + 1
		}
	}
	if len(c.wbQueue) > 0 || len(c.pfQueue) > 0 {
		return now + 1
	}
	next := int64(NoEvent)
	for _, p := range c.pending {
		if p.at < next {
			next = p.at
		}
	}
	return next
}

func (c *Cache) String() string {
	return fmt.Sprintf("%s{%dKB %d-way, hits=%d misses=%d}",
		c.cfg.Name, c.cfg.SizeBytes/1024, c.cfg.Ways, c.Stats.Hits, c.Stats.Misses)
}
