package mem

import "math"

func f32Bits(f float32) uint32     { return math.Float32bits(f) }
func f32FromBits(b uint32) float32 { return math.Float32frombits(b) }
func f64Bits(f float64) uint64     { return math.Float64bits(f) }
func f64FromBits(b uint64) float64 { return math.Float64frombits(b) }
