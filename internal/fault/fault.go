// Package fault implements the simulator's deterministic fault-injection
// layer: seeded injectors that perturb a run at configurable points — NACKed
// cache-line requests with bounded retry/backoff in the engine's request
// path, TLB/page faults raised mid-stream (exercising the precise
// squash-and-replay recovery of paper §IV-A "Exception Handling"), transient
// DRAM latency spikes, and forced stream generation pauses at descriptor
// dimension boundaries.
//
// Every decision comes from one splitmix64 stream seeded by Plan.Seed, and
// each simulation is single-goroutine, so a given (plan, kernel, variant,
// size, machine config) tuple injects the exact same faults at the exact
// same points on every run: campaigns are byte-reproducible. Injection only
// perturbs *timing* and recovery paths — architectural results must match
// the fault-free run, which the resilience oracle in internal/sim enforces.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Plan configures one deterministic fault campaign. The zero value injects
// nothing; all fields are plain integers so plans compare (and memoize) by
// value. Rates are per-mille (0..1000) per decision point.
type Plan struct {
	// Seed selects the injection sequence. Two runs with equal plans (and
	// equal machines) observe identical faults.
	Seed uint64

	// NackPerMille is the chance an unissued engine line request is NACKed
	// in a cycle; a NACKed request backs off NackBackoff cycles before the
	// arbiter retries it, and each request is NACKed at most NackRetries
	// times (bounded retry — forward progress is guaranteed).
	NackPerMille int
	NackRetries  int
	NackBackoff  int64

	// PageFaultEvery forces every Nth TLB translation to report a page
	// fault (0 disables), capped at MaxPageFaults injections per run. The
	// fault takes the real recovery path: precise squash at commit, OS page
	// mapping, TLB flush, stream replay from the commit point.
	PageFaultEvery int
	MaxPageFaults  int

	// DRAMSpikePerMille is the chance a DRAM request's service incurs an
	// extra DRAMSpikeCycles of latency (a transient bank/refresh conflict).
	DRAMSpikePerMille int
	DRAMSpikeCycles   int64

	// SuspendEvery pauses a stream's address generation for SuspendCycles
	// at every Nth descriptor dimension boundary (0 disables) — adversarial
	// suspend/resume at exactly the points where dimension-switch state is
	// in flight.
	SuspendEvery  int
	SuspendCycles int64
}

// DefaultPlan returns a moderate plan exercising all four injection
// channels, parameterized only by the seed.
func DefaultPlan(seed uint64) Plan {
	return Plan{
		Seed:              seed,
		NackPerMille:      30,
		NackRetries:       3,
		NackBackoff:       6,
		PageFaultEvery:    150,
		MaxPageFaults:     4,
		DRAMSpikePerMille: 20,
		DRAMSpikeCycles:   40,
		SuspendEvery:      7,
		SuspendCycles:     12,
	}
}

// Enabled reports whether the plan injects anything at all.
func (p Plan) Enabled() bool {
	return p.NackPerMille > 0 || p.PageFaultEvery > 0 || p.DRAMSpikePerMille > 0 || p.SuspendEvery > 0
}

func (p Plan) String() string {
	return fmt.Sprintf("seed=%#x nack=%d‰(≤%d, +%d cyc) pf=1/%d(≤%d) dram=%d‰(+%d cyc) suspend=1/%d(%d cyc)",
		p.Seed, p.NackPerMille, p.NackRetries, p.NackBackoff,
		p.PageFaultEvery, p.MaxPageFaults,
		p.DRAMSpikePerMille, p.DRAMSpikeCycles,
		p.SuspendEvery, p.SuspendCycles)
}

// ParsePlan builds a plan from a comma-separated key=value spec, starting
// from DefaultPlan(1) so a bare "seed=7" yields a full campaign. Recognized
// keys: seed, nack, nack-retries, nack-backoff, pf, max-pf, dram,
// dram-cycles, suspend, suspend-cycles. Unknown keys and malformed values
// are hard errors — a typo must not silently run a different campaign.
func ParsePlan(spec string) (Plan, error) {
	p := DefaultPlan(1)
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Plan{}, fmt.Errorf("fault: bad plan entry %q: want key=value", kv)
		}
		n, err := strconv.ParseUint(strings.TrimPrefix(val, "0x"), base(val), 64)
		if err != nil {
			return Plan{}, fmt.Errorf("fault: bad %s value %q", key, val)
		}
		switch key {
		case "seed":
			p.Seed = n
		case "nack":
			p.NackPerMille = int(n)
		case "nack-retries":
			p.NackRetries = int(n)
		case "nack-backoff":
			p.NackBackoff = int64(n)
		case "pf":
			p.PageFaultEvery = int(n)
		case "max-pf":
			p.MaxPageFaults = int(n)
		case "dram":
			p.DRAMSpikePerMille = int(n)
		case "dram-cycles":
			p.DRAMSpikeCycles = int64(n)
		case "suspend":
			p.SuspendEvery = int(n)
		case "suspend-cycles":
			p.SuspendCycles = int64(n)
		default:
			return Plan{}, fmt.Errorf("fault: unknown plan key %q (known: %s)", key, strings.Join(planKeys(), ", "))
		}
	}
	if p.NackPerMille > 1000 || p.DRAMSpikePerMille > 1000 {
		return Plan{}, fmt.Errorf("fault: per-mille rates must be ≤ 1000")
	}
	return p, nil
}

func planKeys() []string {
	ks := []string{"seed", "nack", "nack-retries", "nack-backoff", "pf", "max-pf", "dram", "dram-cycles", "suspend", "suspend-cycles"}
	sort.Strings(ks)
	return ks
}

func base(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

// Stats counts the injections one run actually observed.
type Stats struct {
	Nacks      uint64 // line requests NACKed in the engine MRQ
	PageFaults uint64 // TLB translations forced to fault
	DRAMSpikes uint64 // DRAM services with an injected latency spike
	Suspends   uint64 // generation pauses at dimension boundaries
}

// Total returns the total number of injected events.
func (s Stats) Total() uint64 { return s.Nacks + s.PageFaults + s.DRAMSpikes + s.Suspends }

func (s Stats) String() string {
	return fmt.Sprintf("%d nacks, %d page faults, %d dram spikes, %d suspends",
		s.Nacks, s.PageFaults, s.DRAMSpikes, s.Suspends)
}

// Injector draws injection decisions for one run. Not safe for concurrent
// use — each simulation owns exactly one injector (internal/sim constructs
// it per run from the plan, so memoized sibling runs never share state).
type Injector struct {
	plan         Plan
	rng          uint64
	translations uint64
	boundaries   uint64

	Stats Stats
}

// NewInjector builds an injector for the plan, normalizing zero bounds to
// safe defaults (a plan enabling NACKs without a retry cap would otherwise
// livelock the request path).
func NewInjector(p Plan) *Injector {
	if p.NackPerMille > 0 {
		if p.NackRetries <= 0 {
			p.NackRetries = 3
		}
		if p.NackBackoff <= 0 {
			p.NackBackoff = 4
		}
	}
	if p.PageFaultEvery > 0 && p.MaxPageFaults <= 0 {
		p.MaxPageFaults = 8
	}
	if p.DRAMSpikePerMille > 0 && p.DRAMSpikeCycles <= 0 {
		p.DRAMSpikeCycles = 32
	}
	if p.SuspendEvery > 0 && p.SuspendCycles <= 0 {
		p.SuspendCycles = 8
	}
	return &Injector{plan: p, rng: p.Seed ^ 0x9e3779b97f4a7c15}
}

// Plan returns the injector's normalized plan.
func (in *Injector) Plan() Plan { return in.plan }

// next is splitmix64: tiny, fast, and fully deterministic from the seed.
func (in *Injector) next() uint64 {
	in.rng += 0x9e3779b97f4a7c15
	z := in.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (in *Injector) chance(perMille int) bool {
	if perMille <= 0 {
		return false
	}
	return in.next()%1000 < uint64(perMille)
}

// NackLine decides whether an unissued line request (already NACKed nacks
// times) is NACKed again this cycle; on true, the request must back off the
// returned number of cycles. The per-request retry bound guarantees forward
// progress.
func (in *Injector) NackLine(nacks int) (backoff int64, nack bool) {
	if in.plan.NackPerMille <= 0 || nacks >= in.plan.NackRetries {
		return 0, false
	}
	if !in.chance(in.plan.NackPerMille) {
		return 0, false
	}
	in.Stats.Nacks++
	return in.plan.NackBackoff, true
}

// PageFault decides whether this TLB translation is forced to fault. The
// signature matches mem.TLB's injection hook. Injection is capped, and the
// recovery path maps the page, so a forced fault can never recur forever on
// the same access.
func (in *Injector) PageFault(addr uint64) bool {
	if in.plan.PageFaultEvery <= 0 || in.Stats.PageFaults >= uint64(in.plan.MaxPageFaults) {
		return false
	}
	in.translations++
	if in.translations%uint64(in.plan.PageFaultEvery) != 0 {
		return false
	}
	in.Stats.PageFaults++
	return true
}

// DRAMDelay returns extra service latency for a DRAM request starting now.
// The signature matches mem.DRAM's injection hook.
func (in *Injector) DRAMDelay(now int64) int64 {
	if !in.chance(in.plan.DRAMSpikePerMille) {
		return 0
	}
	in.Stats.DRAMSpikes++
	return in.plan.DRAMSpikeCycles
}

// SuspendAtDimBoundary decides whether a stream crossing a descriptor
// dimension boundary pauses generation, and for how long.
func (in *Injector) SuspendAtDimBoundary() (cycles int64, pause bool) {
	if in.plan.SuspendEvery <= 0 {
		return 0, false
	}
	in.boundaries++
	if in.boundaries%uint64(in.plan.SuspendEvery) != 0 {
		return 0, false
	}
	in.Stats.Suspends++
	return in.plan.SuspendCycles, true
}
