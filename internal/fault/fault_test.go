package fault

import (
	"strings"
	"testing"
)

// The injector must be a pure function of its Plan: two injectors built
// from the same plan make identical decisions in identical order. This is
// the property the whole resilience harness rests on.
func TestInjectorDeterminism(t *testing.T) {
	p := DefaultPlan(0xdeadbeef)
	a, b := NewInjector(p), NewInjector(p)
	for i := 0; i < 10_000; i++ {
		ba, na := a.NackLine(i % 5)
		bb, nb := b.NackLine(i % 5)
		if ba != bb || na != nb {
			t.Fatalf("NackLine diverged at step %d: (%d,%v) vs (%d,%v)", i, ba, na, bb, nb)
		}
		if a.PageFault(uint64(i)*64) != b.PageFault(uint64(i)*64) {
			t.Fatalf("PageFault diverged at step %d", i)
		}
		if a.DRAMDelay(int64(i)) != b.DRAMDelay(int64(i)) {
			t.Fatalf("DRAMDelay diverged at step %d", i)
		}
		ca, oa := a.SuspendAtDimBoundary()
		cb, ob := b.SuspendAtDimBoundary()
		if ca != cb || oa != ob {
			t.Fatalf("SuspendAtDimBoundary diverged at step %d", i)
		}
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if a.Stats.Total() == 0 {
		t.Fatal("default plan injected nothing over 10k opportunities")
	}
}

func TestSeedChangesStream(t *testing.T) {
	a, b := NewInjector(DefaultPlan(1)), NewInjector(DefaultPlan(2))
	same := true
	for i := 0; i < 1000; i++ {
		_, na := a.NackLine(0)
		_, nb := b.NackLine(0)
		if na != nb {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical NACK streams")
	}
}

func TestInjectorBounds(t *testing.T) {
	p := Plan{Seed: 9, NackPerMille: 1000, NackRetries: 3, NackBackoff: 5}
	in := NewInjector(p)
	// At the retry bound the injector must stop NACKing so the fetch
	// eventually issues.
	if _, nack := in.NackLine(3); nack {
		t.Fatal("NackLine ignored the retry bound")
	}
	if _, nack := in.NackLine(0); !nack {
		t.Fatal("certain NACK (1000‰) did not fire below the bound")
	}

	p = Plan{Seed: 9, PageFaultEvery: 1, MaxPageFaults: 2}
	in = NewInjector(p)
	n := 0
	for i := 0; i < 100; i++ {
		if in.PageFault(uint64(i) * 4096) {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("page-fault cap: got %d injections, want 2", n)
	}

	in = NewInjector(Plan{Seed: 9, DRAMSpikePerMille: 0})
	for i := 0; i < 100; i++ {
		if d := in.DRAMDelay(int64(i)); d != 0 {
			t.Fatalf("disabled DRAM channel returned delay %d", d)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("seed=0x2a,nack=100,pf=50,max-pf=2,dram=5,suspend=3,suspend-cycles=9")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 0x2a || p.NackPerMille != 100 || p.PageFaultEvery != 50 ||
		p.MaxPageFaults != 2 || p.DRAMSpikePerMille != 5 || p.SuspendEvery != 3 || p.SuspendCycles != 9 {
		t.Fatalf("ParsePlan mismatch: %+v", p)
	}

	if _, err := ParsePlan("bogus=1"); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown key not rejected: %v", err)
	}
	if _, err := ParsePlan("nack=1001"); err == nil {
		t.Fatal("per-mille > 1000 not rejected")
	}
	if _, err := ParsePlan("seed=xyz"); err == nil {
		t.Fatal("bad value not rejected")
	}

	// The empty spec is the default campaign plan.
	p, err = ParsePlan("")
	if err != nil {
		t.Fatal(err)
	}
	if p != DefaultPlan(1) {
		t.Fatalf("empty spec: got %+v, want DefaultPlan(1)", p)
	}
	if !p.Enabled() {
		t.Fatal("default plan reports disabled")
	}
	if (Plan{}).Enabled() {
		t.Fatal("zero plan reports enabled")
	}
}

func TestPlanString(t *testing.T) {
	s := DefaultPlan(7).String()
	for _, want := range []string{"seed=0x7", "nack=", "pf=", "dram=", "suspend="} {
		if !strings.Contains(s, want) {
			t.Fatalf("Plan.String() %q missing %q", s, want)
		}
	}
	st := Stats{Nacks: 1, PageFaults: 2, DRAMSpikes: 3, Suspends: 4}
	if st.Total() != 10 {
		t.Fatalf("Stats.Total() = %d, want 10", st.Total())
	}
	if got := st.String(); !strings.Contains(got, "1 nacks") || !strings.Contains(got, "4 suspends") {
		t.Fatalf("Stats.String() = %q", got)
	}
}
