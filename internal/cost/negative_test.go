package cost_test

// The negative corpus: programs whose exact costs are statically
// unavailable (data-dependent descriptor sizes, value-dependent control
// flow, value-dependent vector length). The analyzer must degrade to an
// explicit interval plus a diagnostic — never a wrong point estimate — and
// the interval must contain the ground truth measured on the functional
// tier.

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/descriptor"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

const negVecBytes = 64

// analyzeAndRun analyzes p and runs it on the functional tier with the same
// memory image and integer arguments, returning the estimate and the true
// committed-instruction count.
func analyzeAndRun(t *testing.T, p *program.Program, h *mem.Hierarchy, intArgs map[int]uint64) (*cost.Estimate, uint64) {
	t.Helper()
	params := cost.DefaultParams(negVecBytes)
	params.IntArgs = intArgs
	est, err := cost.Analyze(p, params)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	m := funcsim.New(funcsim.Config{VecBytes: negVecBytes}, p, h.Mem)
	for r, v := range intArgs {
		m.SetIntReg(r, v)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("functional run: %v", err)
	}
	return est, m.Committed()
}

// requireSoundInterval asserts q is an explicit interval containing truth.
func requireSoundInterval(t *testing.T, what string, q cost.Quantity, truth uint64) {
	t.Helper()
	if q.IsExact() {
		t.Fatalf("%s: got point estimate %s for a data-dependent quantity", what, q)
	}
	if truth < q.Lo || truth > q.Hi {
		t.Fatalf("%s: interval %s does not contain the measured value %d", what, q, truth)
	}
}

func streamCostFor(t *testing.T, est *cost.Estimate, u int) *cost.StreamCost {
	t.Helper()
	for i := range est.Streams {
		if est.Streams[i].U == u {
			return &est.Streams[i]
		}
	}
	t.Fatalf("no stream cost record for u%d", u)
	return nil
}

// TestNegativeIndirectSize: an indirect modifier retargeting a dimension
// size makes the element count depend on origin data. Everything the count
// taints — stream work, committed instructions — must become intervals.
func TestNegativeIndirectSize(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	const n = 6
	sizesB := h.Mem.Alloc(8*n, arch.LineSize)
	for i := 0; i < n; i++ {
		h.Mem.Write(sizesB+uint64(8*i), arch.W8, 1+uint64(i%4))
	}
	aB := h.Mem.Alloc(4*64, arch.LineSize)

	b := program.NewBuilder("neg-indirect-size")
	b.ConfigStream(2, descriptor.New(sizesB, arch.W8, descriptor.Load).
		Linear(n, 1).MustBuild())
	b.ConfigStream(0, descriptor.New(aB, arch.W4, descriptor.Load).
		Dim(0, 1, 1).
		IndirectOuter(descriptor.TargetSize, descriptor.SetValue, 2).MustBuild())
	b.Label("loop")
	b.I(isa.VMove(arch.W4, isa.V(5), isa.V(0)))
	b.I(isa.SBNotEnd(0, "loop"))
	b.I(isa.Halt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	est, truth := analyzeAndRun(t, p, h, nil)
	if est.Exact {
		t.Fatal("estimate claims exactness for a data-dependent program")
	}
	if len(est.Diags) == 0 {
		t.Fatal("degraded estimate carries no diagnostic")
	}
	requireSoundInterval(t, "committed", est.Committed, truth)
	sc := streamCostFor(t, est, 0)
	if sc.Elems.IsExact() {
		t.Fatalf("u0 element count is a point estimate (%s) despite a size-target indirection", sc.Elems)
	}
	if sc.Note == "" {
		t.Fatal("degraded stream record carries no note")
	}
}

// TestNegativeDataDependentBranch: a loop bound loaded from memory is
// invisible to the static analyzer; the committed count must degrade to an
// interval whose low end is the exactly resolved prefix.
func TestNegativeDataDependentBranch(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	base := h.Mem.Alloc(arch.LineSize, arch.LineSize)
	h.Mem.Write(base, arch.W8, 5)

	b := program.NewBuilder("neg-branch")
	b.I(isa.Li(isa.X(6), 0))
	b.I(isa.Load(arch.W8, isa.X(5), isa.X(1), 0))
	b.Label("loop")
	b.I(isa.AddI(isa.X(6), isa.X(6), 1))
	b.I(isa.Blt(isa.X(6), isa.X(5), "loop"))
	b.I(isa.Halt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	args := map[int]uint64{1: base}
	est, truth := analyzeAndRun(t, p, h, args)
	if est.Exact {
		t.Fatal("estimate claims exactness despite a data-dependent branch")
	}
	if len(est.Diags) == 0 {
		t.Fatal("degraded estimate carries no diagnostic")
	}
	requireSoundInterval(t, "committed", est.Committed, truth)
	// The exactly resolved prefix (li, load) must survive as the low end.
	if est.Committed.Lo < 2 {
		t.Fatalf("committed low end %d loses the resolved prefix", est.Committed.Lo)
	}
}

// TestNegativeGatherCountsExact: an offset-target indirection leaves the
// element count exact (the chunk structure is value-independent) but the
// addresses data-dependent: counts stay points and match the functional
// tier, line quantities become intervals with a note.
func TestNegativeGatherCountsExact(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	const n = 16
	idxB := h.Mem.Alloc(8*n, arch.LineSize)
	for i := 0; i < n; i++ {
		h.Mem.Write(idxB+uint64(8*i), arch.W8, uint64((i*7)%n)*8)
	}
	aB := h.Mem.Alloc(8*n, arch.LineSize)

	b := program.NewBuilder("neg-gather")
	b.ConfigStream(2, descriptor.New(idxB, arch.W8, descriptor.Load).
		Linear(n, 1).MustBuild())
	b.ConfigStream(0, descriptor.New(aB, arch.W8, descriptor.Load).
		Dim(0, 1, 0).
		IndirectOuter(descriptor.TargetOffset, descriptor.SetAdd, 2).MustBuild())
	b.Label("loop")
	b.I(isa.VMove(arch.W8, isa.V(5), isa.V(0)))
	b.I(isa.SBNotEnd(0, "loop"))
	b.I(isa.Halt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	est, truth := analyzeAndRun(t, p, h, nil)
	if !est.Committed.IsExact() || est.Committed.Value() != truth {
		t.Fatalf("committed %s, functional tier measured %d", est.Committed, truth)
	}
	sc := streamCostFor(t, est, 0)
	if !sc.Elems.IsExact() || sc.Elems.Value() != n {
		t.Fatalf("u0 elems %s, want exactly %d", sc.Elems, n)
	}
	if sc.LineRequests.IsExact() {
		t.Fatalf("u0 line requests are a point estimate (%s) despite data-dependent addresses", sc.LineRequests)
	}
	if sc.Note == "" {
		t.Fatal("address-degraded stream record carries no note")
	}
	if est.Exact {
		t.Fatal("estimate claims full exactness despite data-dependent addresses")
	}
}

// TestNegativeSetVLFromLoad: a vector length taken from memory serializes
// everything after it behind an unknown lane count; the analyzer must bail
// with a diagnostic rather than assume the physical width.
func TestNegativeSetVLFromLoad(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	base := h.Mem.Alloc(arch.LineSize, arch.LineSize)
	h.Mem.Write(base, arch.W8, 3)

	b := program.NewBuilder("neg-setvl")
	b.I(isa.Load(arch.W8, isa.X(5), isa.X(1), 0))
	b.I(isa.SetVL(arch.W4, isa.X(6), isa.X(5)))
	b.I(isa.Halt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	args := map[int]uint64{1: base}
	est, truth := analyzeAndRun(t, p, h, args)
	if est.Exact {
		t.Fatal("estimate claims exactness despite a value-dependent vector length")
	}
	if len(est.Diags) == 0 {
		t.Fatal("degraded estimate carries no diagnostic")
	}
	requireSoundInterval(t, "committed", est.Committed, truth)
}
