package cost

// White-box property tests for the shape algebra: the closed-form affine
// path and the budgeted walk must agree with each other and with a direct
// enumeration of descriptor.Iterator under the functional tier's chunking
// rule. The fuzz target reuses the descriptor fuzz corpus shape (same
// 13-argument encoding and seeds) so crashers found there replay here.

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
)

// oracleWork independently re-derives a stream's work by enumerating the
// iterator once: chunk metas under the close-at-lane-full-or-EndsDim(0)
// rule, plus the generator's line quantities from the address sequence.
type oracleChunk struct {
	n    int64
	end  uint16
	last bool
}

type oracle struct {
	elems, dimBounds int64
	metas            []oracleChunk
	lineReqs, segs   int64
	storeLines       int64
	lines            map[uint64]bool
}

func oracleWork(d *descriptor.Descriptor, lanes int) *oracle {
	o := &oracle{lines: map[uint64]bool{}}
	var cur int64
	var lastLine, chunkLine uint64
	haveLast := false
	chunkSeen := map[uint64]bool{}
	for _, el := range descriptor.Sequence(d, nil) {
		o.elems++
		line := arch.LineOf(el.Addr)
		o.lines[line] = true
		if !haveLast || line != lastLine {
			o.lineReqs++
			lastLine, haveLast = line, true
		}
		if cur == 0 || line != chunkLine {
			o.segs++
			chunkLine = line
		}
		if !chunkSeen[line] {
			chunkSeen[line] = true
			o.storeLines++
		}
		cur++
		if cur >= int64(lanes) || el.EndsDim(0) {
			o.metas = append(o.metas, oracleChunk{n: cur, end: el.End, last: el.Last})
			if el.End != 0 && !el.Last {
				o.dimBounds++
			}
			cur = 0
			chunkSeen = map[uint64]bool{}
		}
	}
	return o
}

// checkAgainstOracle compares one streamWork against the oracle: every
// count, every chunk's flags and lane count, every prefix, and every line
// quantity.
func checkAgainstOracle(t *testing.T, tag string, w *streamWork, o *oracle) {
	t.Helper()
	if w == nil {
		t.Fatalf("%s: nil work", tag)
	}
	if !w.exact {
		t.Fatalf("%s: degraded to interval (%s) on a statically known pattern", tag, w.note)
	}
	if w.elems != o.elems || w.chunks != int64(len(o.metas)) || w.dimBounds != o.dimBounds {
		t.Fatalf("%s: elems/chunks/dims %d/%d/%d, oracle %d/%d/%d",
			tag, w.elems, w.chunks, w.dimBounds, o.elems, len(o.metas), o.dimBounds)
	}
	if w.hi != uint64(o.elems) {
		t.Fatalf("%s: hi %d, oracle elems %d", tag, w.hi, o.elems)
	}
	var runEl, runDb int64
	for i := int64(0); i < w.chunks; i++ {
		end, last := w.flagAt(i)
		m := o.metas[i]
		if end != m.end || last != m.last {
			t.Fatalf("%s: chunk %d flags end=%#x last=%v, oracle end=%#x last=%v",
				tag, i, end, last, m.end, m.last)
		}
		if n := w.nAt(i); n != m.n {
			t.Fatalf("%s: chunk %d has %d lanes, oracle %d", tag, i, n, m.n)
		}
		el, db := w.prefix(i)
		if el != runEl || db != runDb {
			t.Fatalf("%s: prefix(%d) = %d/%d, oracle %d/%d", tag, i, el, db, runEl, runDb)
		}
		runEl += m.n
		if m.end != 0 && !m.last {
			runDb++
		}
	}
	// Full and past-the-end prefixes saturate at the totals.
	for _, c := range []int64{w.chunks, w.chunks + 7} {
		if el, db := w.prefix(c); el != o.elems || db != o.dimBounds {
			t.Fatalf("%s: prefix(%d) = %d/%d, want totals %d/%d", tag, c, el, db, o.elems, o.dimBounds)
		}
	}
	if !w.addrExact {
		t.Fatalf("%s: address quantities degraded (%s) on a statically known pattern", tag, w.addrNote)
	}
	if w.lineReqs != o.lineReqs || w.segs != o.segs || w.storeLines != o.storeLines {
		t.Fatalf("%s: lineReqs/segs/storeLines %d/%d/%d, oracle %d/%d/%d",
			tag, w.lineReqs, w.segs, w.storeLines, o.lineReqs, o.segs, o.storeLines)
	}
	if len(w.lines) != len(o.lines) {
		t.Fatalf("%s: %d unique lines, oracle %d", tag, len(w.lines), len(o.lines))
	}
	for _, l := range w.lines {
		if !o.lines[l] {
			t.Fatalf("%s: line %#x not in oracle set", tag, l)
		}
	}
}

// checkShape cross-checks the walk (and, for pure affine descriptors, the
// closed form) against the oracle for one descriptor and lane count.
func checkShape(t *testing.T, d *descriptor.Descriptor, lanes int) {
	t.Helper()
	o := oracleWork(d, lanes)
	ww := walkWork(d, lanes, nil, DefaultWalkElems)
	checkAgainstOracle(t, "walk", ww, o)
	if len(d.Static) == 0 && !d.HasIndirect() {
		aw := affineWork(d, lanes)
		if aw == nil {
			t.Fatal("closed form refused an in-budget affine descriptor")
		}
		walkLines(aw, d, nil, DefaultWalkElems)
		checkAgainstOracle(t, "closed-form", aw, o)
	}
	// computeWork must route to an exact answer either way.
	cw := computeWork(d, lanes, nil, DefaultWalkElems)
	checkAgainstOracle(t, "computeWork", cw, o)
}

var shapeLanes = []int{1, 2, 3, 4, 8, 16}

// TestClosedFormMatchesWalk sweeps a deterministic grid of affine and
// static-modifier descriptors across lane counts.
func TestClosedFormMatchesWalk(t *testing.T) {
	descs := []*descriptor.Descriptor{
		descriptor.New(1<<20, arch.W8, descriptor.Load).Linear(1, 1).MustBuild(),
		descriptor.New(1<<20, arch.W8, descriptor.Load).Linear(17, 1).MustBuild(),
		descriptor.New(1<<20, arch.W4, descriptor.Load).Linear(64, 3).MustBuild(),
		descriptor.New(1<<20, arch.W4, descriptor.Store).
			Dim(0, 7, 1).Dim(0, 5, 7).MustBuild(),
		descriptor.New(1<<20, arch.W8, descriptor.Load).
			Dim(2, 8, 1).Dim(1, 4, 9).Dim(3, 3, 40).MustBuild(),
		descriptor.New(1<<20, arch.W4, descriptor.Load).
			Dim(0, 16, -1).Dim(0, 4, -16).MustBuild(), // negative strides
		descriptor.New(1<<20, arch.W4, descriptor.Load).
			Dim(0, 1, 0).Dim(0, 9, 16).MustBuild(), // size-1 inner dim: every chunk ends dim 0
		descriptor.New(1<<20, arch.W4, descriptor.Load).
			Dim(0, 5, 1).Dim(0, 6, 5).
			Mod(descriptor.TargetSize, descriptor.Add, 1, 5).MustBuild(), // triangular
		descriptor.New(1<<20, arch.W8, descriptor.Load).
			Dim(0, 8, 1).Dim(0, 4, 8).
			Mod(descriptor.TargetOffset, descriptor.Add, 2, 3).MustBuild(),
		descriptor.New(1<<20, arch.W4, descriptor.Load).
			Dim(0, 6, 2).Dim(0, 5, 12).
			Mod(descriptor.TargetStride, descriptor.Sub, 1, 4).MustBuild(),
	}
	for di, d := range descs {
		for _, lanes := range shapeLanes {
			t.Run(fmt.Sprintf("d%d/l%d", di, lanes), func(t *testing.T) {
				checkShape(t, d, lanes)
			})
		}
	}
}

// fuzzShapeDescriptor mirrors the descriptor package's fuzz decoder byte
// for byte, so the two corpora stay interchangeable.
func fuzzShapeDescriptor(o0, s0 int8, e0 uint8, o1, s1 int8, e1 uint8, o2, s2 int8, e2 uint8,
	modTarget, modBehav, modDisp, modCount uint8) (*descriptor.Descriptor, bool) {
	w := arch.W4
	if e0%2 == 1 {
		w = arch.W8
	}
	b := descriptor.New(1<<20, w, descriptor.Load)
	b.Dim(int64(o0%8), 1+int64(e0%12), int64(s0%8))
	ndims := 1
	if e1 > 0 {
		b.Dim(int64(o1%8), 1+int64(e1%8), int64(s1%8))
		ndims++
	}
	if e1 > 0 && e2 > 0 {
		b.Dim(int64(o2%8), 1+int64(e2%6), int64(s2%8))
		ndims++
	}
	if ndims >= 2 && modCount > 0 {
		targets := []descriptor.Target{descriptor.TargetOffset, descriptor.TargetSize, descriptor.TargetStride}
		behavs := []descriptor.Behavior{descriptor.Add, descriptor.Sub}
		b.Mod(targets[modTarget%3], behavs[modBehav%2], 1+int64(modDisp%4), int64(modCount%8))
	}
	d, err := b.Build()
	return d, err == nil
}

func shapeSeedCorpus(f *testing.F) {
	f.Add(int8(0), int8(1), uint8(8), int8(0), int8(1), uint8(0), int8(0), int8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int8(0), int8(1), uint8(8), int8(0), int8(4), uint8(8), int8(0), int8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int8(2), int8(1), uint8(6), int8(1), int8(4), uint8(5), int8(3), int8(2), uint8(4), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int8(0), int8(1), uint8(0), int8(0), int8(4), uint8(8), int8(0), int8(0), uint8(0), uint8(1), uint8(0), uint8(1), uint8(7))
	f.Add(int8(0), int8(2), uint8(1), int8(0), int8(4), uint8(8), int8(0), int8(0), uint8(0), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(int8(0), int8(-1), uint8(8), int8(0), int8(-4), uint8(4), int8(0), int8(0), uint8(0), uint8(2), uint8(1), uint8(2), uint8(3))
	f.Add(int8(-4), int8(3), uint8(11), int8(-2), int8(-5), uint8(7), int8(1), int8(6), uint8(5), uint8(1), uint8(1), uint8(3), uint8(5))
}

// FuzzClosedFormWalk checks walk-vs-oracle (and closed-form-vs-oracle when
// affine) agreement over arbitrary bounded descriptors; the lane count is
// derived from the inputs so chunking edge cases (lanes 1, lanes ≥ size0)
// get exercised too.
func FuzzClosedFormWalk(f *testing.F) {
	shapeSeedCorpus(f)
	f.Fuzz(func(t *testing.T, o0, s0 int8, e0 uint8, o1, s1 int8, e1 uint8, o2, s2 int8, e2 uint8,
		modTarget, modBehav, modDisp, modCount uint8) {
		d, ok := fuzzShapeDescriptor(o0, s0, e0, o1, s1, e1, o2, s2, e2, modTarget, modBehav, modDisp, modCount)
		if !ok {
			t.Skip()
		}
		lanes := shapeLanes[int(o0^s0^int8(modDisp))&7%len(shapeLanes)]
		checkShape(t, d, lanes)
	})
}
