// Package cost is the static descriptor cost model: given a verified
// program and a machine configuration, it derives — without running the
// simulator — exact per-stream work (elements, bytes, chunks, dimension
// boundaries, line requests, store lines), unique cache-line footprints,
// exact committed instruction counts, and a set of roofline-style cycle
// lower bounds (commit/issue width, per-port-group throughput, per-channel
// DRAM bandwidth, stream-engine generator throughput).
//
// Everything the analyzer reports is either exact or an explicit interval:
// pure affine descriptors are solved in closed form, modifier and indirect
// patterns fall back to a budgeted symbolic walk of the descriptor
// iterator, and anything data-dependent (Size-target indirection,
// data-dependent branches) degrades to an interval plus a diagnostic —
// never a wrong point estimate. The differential tests in this package and
// internal/sim enforce both halves: exact quantities equal the simulator's
// counters, and every bound is ≤ the measured cycle count.
package cost

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/descriptor"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// Params configures an estimate: the machine the program would run on plus
// the entry register arguments (sizes, base addresses) the analysis
// resolves control flow and addresses from.
type Params struct {
	Core cpu.Config
	Eng  engine.Config
	Hier mem.HierarchyConfig

	// IntArgs presets integer registers, exactly as sim presets them from
	// kernels.Instance.IntArgs.
	IntArgs map[int]uint64

	// WalkBudget caps the symbolic per-stream walk in elements
	// (DefaultWalkElems when zero). MaxSteps caps interpreted instructions
	// (2^26 when zero).
	WalkBudget int64
	MaxSteps   int64
}

// DefaultParams returns Table I machine parameters for the given vector
// width.
func DefaultParams(vecBytes int) Params {
	p := Params{
		Core: cpu.DefaultConfig(),
		Eng:  engine.DefaultConfig(),
		Hier: mem.DefaultHierarchyConfig(),
	}
	p.Core.VecBytes = vecBytes
	p.Eng.VecBytes = vecBytes
	return p
}

// StreamCost is the statically derived work of one stream instance, in the
// units the engine's committed StreamTraffic records use.
type StreamCost struct {
	U     int    `json:"u"`
	Kind  string `json:"kind"`
	Width int    `json:"width"`
	Level string `json:"level"`
	Desc  string `json:"desc"`
	// Complete reports whether the program consumes the whole pattern; the
	// gen-side LineRequests figure is exact only then.
	Complete bool `json:"complete"`

	Elems         Quantity `json:"elems"`
	Bytes         Quantity `json:"bytes"`
	Chunks        Quantity `json:"chunks"`
	DimBoundaries Quantity `json:"dimBoundaries"`
	LineRequests  Quantity `json:"lineRequests"`
	StoreLines    Quantity `json:"storeLines"`
	UniqueLines   Quantity `json:"uniqueLines"`

	Note string `json:"note,omitempty"`
}

// Bounds are cycle lower bounds: the simulated Result.Cycles can never be
// below any of them (the differential tests enforce it).
type Bounds struct {
	Commit       int64            `json:"commit"`
	Issue        int64            `json:"issue"`
	Ports        map[string]int64 `json:"ports"`
	DRAM         int64            `json:"dram"`
	EngineStream int64            `json:"engineStream"`
	EngineTotal  int64            `json:"engineTotal"`
	EngineStore  int64            `json:"engineStore"`
	EngineMRQ    int64            `json:"engineMRQ"`
	// Best is the tightest (largest) of the bounds above.
	Best int64 `json:"best"`
	// BestName names the binding constraint.
	BestName string `json:"bestName"`
}

// Estimate is the full static model of one program run.
type Estimate struct {
	// Exact reports whether every quantity is a point value. When false,
	// Diags explains what degraded and the committed counts are the exact
	// prefix the analysis resolved (still sound as lower bounds).
	Exact bool `json:"exact"`

	Committed Quantity            `json:"committed"`
	ByKind    map[string]Quantity `json:"byKind"`
	Streams   []StreamCost        `json:"streams,omitempty"`

	// ReadOnlyLines / WrittenLines are the statically proven unique line
	// footprints (reads may be under-approximated, writes over-approximated
	// — the directions that keep the DRAM bound sound).
	ReadOnlyLines uint64 `json:"readOnlyLines"`
	WrittenLines  uint64 `json:"writtenLines"`

	Bounds Bounds `json:"bounds"`

	// PredictedBusUtil estimates Fig 8.D bus utilization as mandatory line
	// traffic over the best bound's cycles — an estimate, not a bound.
	PredictedBusUtil float64 `json:"predictedBusUtil"`

	Diags []string `json:"diags,omitempty"`
}

// Analyze runs the static cost model over a verified program.
func Analyze(p *program.Program, params Params) (*Estimate, error) {
	if p == nil {
		return nil, fmt.Errorf("cost: nil program")
	}
	walk := params.WalkBudget
	if walk <= 0 {
		walk = DefaultWalkElems
	}
	steps := params.MaxSteps
	if steps <= 0 {
		steps = 1 << 26
	}
	if params.Core.VecBytes <= 0 {
		return nil, fmt.Errorf("cost: Core.VecBytes must be positive")
	}
	in := newInterp(p, params.Core.VecBytes, walk, steps)
	for r, v := range params.IntArgs {
		in.setIntReg(r, v)
	}
	in.run()

	est := &Estimate{Exact: !in.bailed, Diags: in.diags}
	if in.bailed {
		est.Diags = append(est.Diags, in.bailMsg)
		est.Committed = Interval(in.committed, Unbounded)
	} else {
		est.Committed = Exact(in.committed)
	}
	est.ByKind = map[string]Quantity{}
	for k := isa.Kind(0); k < isa.KindCount; k++ {
		if in.byKind[k] == 0 {
			continue
		}
		if in.bailed {
			est.ByKind[k.String()] = Interval(in.byKind[k], Unbounded)
		} else {
			est.ByKind[k.String()] = Exact(in.byKind[k])
		}
	}
	if in.bailed {
		tightenBailed(est, p, params)
	}

	if in.unknownLoads > 0 {
		in.diags = append(in.diags,
			fmt.Sprintf("%d load(s) with data-dependent addresses: read footprint under-approximated", in.unknownLoads))
		est.Diags = in.diags
	}
	est.Streams = streamCosts(in)
	for _, sc := range est.Streams {
		if !sc.Elems.IsExact() || !sc.LineRequests.IsExact() {
			est.Exact = false
		}
	}
	buildBounds(est, in, &params)
	return est, nil
}

// streamCosts assembles the per-instance cost records, mirroring how the
// engine's committed StreamTraffic snapshots count: committed chunks for
// core-consumed streams, settled-prefix chunks for engine-consumed origins.
func streamCosts(in *interp) []StreamCost {
	var out []StreamCost
	for _, s := range in.all {
		if s.configuring || s.work == nil {
			continue
		}
		w := s.work
		sc := StreamCost{
			U:     s.u,
			Kind:  s.kind.String(),
			Width: int(s.w),
			Level: s.level.String(),
			Desc:  w.desc.String(),
			Note:  strings.TrimSpace(strings.Join([]string{w.note, w.addrNote}, "; ")),
		}
		sc.Note = strings.Trim(sc.Note, "; ")
		if !w.exact || s.posUnknown || in.bailed {
			sc.Elems = Interval(0, w.hi)
			sc.Bytes = sc.Elems.scale(uint64(s.w))
			sc.Chunks = Interval(0, Unbounded)
			sc.DimBoundaries = Interval(0, Unbounded)
			sc.LineRequests = Interval(0, Unbounded)
			sc.StoreLines = Interval(0, Unbounded)
			sc.UniqueLines = Interval(0, Unbounded)
			if sc.Note == "" {
				sc.Note = "analysis degraded before this stream settled"
			}
			out = append(out, sc)
			continue
		}
		chunks := s.pos
		if s.drained > 0 {
			var cum, c int64
			for c < w.chunks && cum+w.nAt(c) <= s.drained {
				cum += w.nAt(c)
				c++
			}
			if c > chunks {
				chunks = c
			}
		}
		elems, dimBounds := w.prefix(chunks)
		sc.Complete = s.released && chunks == w.chunks
		sc.Elems = Exact(uint64(elems))
		sc.Bytes = Exact(uint64(elems) * uint64(s.w))
		sc.Chunks = Exact(uint64(chunks))
		sc.DimBoundaries = Exact(uint64(dimBounds))
		switch {
		case s.kind == descriptor.Load && w.addrExact && sc.Complete:
			sc.LineRequests = Exact(uint64(w.lineReqs))
		case s.kind == descriptor.Load && w.addrExact:
			sc.LineRequests = Interval(0, uint64(w.lineReqs))
		case s.kind == descriptor.Load:
			sc.LineRequests = Interval(0, uint64(w.elems))
		default:
			sc.LineRequests = Exact(0)
		}
		switch {
		case s.kind == descriptor.Store && w.addrExact && sc.Complete:
			sc.StoreLines = Exact(uint64(w.storeLines))
		case s.kind == descriptor.Store && w.addrExact:
			sc.StoreLines = Interval(0, uint64(w.storeLines))
		case s.kind == descriptor.Store:
			sc.StoreLines = Interval(0, uint64(w.elems))
		default:
			sc.StoreLines = Exact(0)
		}
		if w.addrExact {
			sc.UniqueLines = Exact(uint64(len(w.lines)))
		} else {
			sc.UniqueLines = Interval(0, uint64(w.elems))
		}
		out = append(out, sc)
	}
	return out
}

func ceilDiv(n uint64, d int) int64 {
	if d <= 0 || n == 0 {
		return 0
	}
	return int64((n + uint64(d) - 1) / uint64(d))
}

// buildBounds composes the cycle lower bounds from the exact-prefix tallies
// (sound even after a bail: the real run commits at least the resolved
// prefix) and the settled stream works.
func buildBounds(est *Estimate, in *interp, params *Params) {
	b := &est.Bounds
	b.Commit = ceilDiv(in.committed, params.Core.CommitWidth)
	b.Issue = ceilDiv(in.committed, params.Core.IssueWidth)

	// Per-port-group issue throughput, mirroring cpu.groupOf.
	groups := map[string]struct {
		n   uint64
		cap int
	}{
		"int": {in.byKind[isa.KindIntALU] + in.byKind[isa.KindBranch] + in.byKind[isa.KindNop] +
			in.byKind[isa.KindStreamCfg] + in.byKind[isa.KindStreamCtl], params.Core.IntALUs},
		"vecfp": {in.byKind[isa.KindFPALU] + in.byKind[isa.KindVecALU], params.Core.VecFPUs},
		"load":  {in.byKind[isa.KindLoad], params.Core.LoadPorts},
		"store": {in.byKind[isa.KindStore], params.Core.StorePorts},
	}
	b.Ports = map[string]int64{}
	for name, g := range groups {
		b.Ports[name] = ceilDiv(g.n, g.cap)
	}

	// Streaming-engine generator throughput: each settled, fully consumed
	// stream needs its generator steps (serialized per stream, shared across
	// NumModules), every committed store line drains at one line per cycle,
	// and every coalesced line request passes the engine's load-port budget.
	var sumSteps, storeLines, lineReqs int64
	for _, s := range in.all {
		if s.configuring || s.work == nil || !s.work.exact || s.posUnknown || in.bailed {
			continue
		}
		if !(s.released && (s.pos == s.work.chunks || s.drained >= s.work.elems)) {
			continue
		}
		steps := s.work.genSteps()
		if steps > b.EngineStream {
			b.EngineStream = steps
		}
		sumSteps += steps
		if s.work.addrExact {
			if s.kind == descriptor.Store {
				storeLines += s.work.storeLines
			} else {
				lineReqs += s.work.lineReqs
			}
		}
	}
	b.EngineTotal = ceilDiv(uint64(sumSteps), params.Eng.NumModules)
	b.EngineStore = storeLines
	b.EngineMRQ = ceilDiv(uint64(lineReqs), params.Eng.LoadPorts)

	// DRAM bandwidth: every line that is read and provably never written
	// must be fetched from a cold memory system exactly through its DRAM
	// channel, which serializes one line per LineService cycles. Reads are
	// under-approximated and writes over-approximated, so the bound stays
	// sound; if any store's lines are unknown — or the interpretation
	// bailed, leaving unanalyzed code that could store anywhere — no line
	// is provably read-only and the bound is dropped.
	writesUnknown := in.writesUnknown || in.bailed
	read := map[uint64]struct{}{}
	written := map[uint64]struct{}{}
	for l := range in.readLines {
		read[l] = struct{}{}
	}
	for l := range in.writeLines {
		written[l] = struct{}{}
	}
	for _, s := range in.all {
		if s.configuring || s.work == nil {
			continue
		}
		if s.kind == descriptor.Store {
			if s.work.addrExact {
				for _, l := range s.work.lines {
					written[l] = struct{}{}
				}
			} else {
				writesUnknown = true
			}
			continue
		}
		if s.work.addrExact && s.work.exact && !s.posUnknown && !in.bailed &&
			s.released && (s.pos == s.work.chunks || s.drained >= s.work.elems) {
			for _, l := range s.work.lines {
				read[l] = struct{}{}
			}
		}
	}
	perChan := make([]uint64, params.Hier.DRAM.Channels)
	var readOnly uint64
	if !writesUnknown {
		for l := range read {
			if _, w := written[l]; w {
				continue
			}
			readOnly++
			perChan[int(l/arch.LineSize)%len(perChan)]++
		}
		ls := int64(params.Hier.DRAM.LineService)
		al := int64(params.Hier.DRAM.AccessLatency)
		for _, k := range perChan {
			if k == 0 {
				continue
			}
			if bd := (int64(k)-1)*ls + al + 1; bd > b.DRAM {
				b.DRAM = bd
			}
		}
	} else {
		est.Diags = append(est.Diags, "store footprint not statically bounded: DRAM bandwidth bound dropped")
	}
	est.ReadOnlyLines = readOnly
	est.WrittenLines = uint64(len(written))

	named := []struct {
		name string
		v    int64
	}{
		{"commit", b.Commit}, {"issue", b.Issue},
		{"dram", b.DRAM},
		{"engine-stream", b.EngineStream}, {"engine-total", b.EngineTotal},
		{"engine-store", b.EngineStore}, {"engine-mrq", b.EngineMRQ},
	}
	var ports []string
	for name := range b.Ports {
		ports = append(ports, name)
	}
	sort.Strings(ports)
	for _, name := range ports {
		named = append(named, struct {
			name string
			v    int64
		}{"port-" + name, b.Ports[name]})
	}
	for _, c := range named {
		if c.v > b.Best {
			b.Best, b.BestName = c.v, c.name
		}
	}

	if b.Best > 0 {
		peak := float64(params.Hier.DRAM.Channels) * arch.LineSize / float64(params.Hier.DRAM.LineService)
		bytes := float64((readOnly + est.WrittenLines) * arch.LineSize)
		est.PredictedBusUtil = bytes / (float64(b.Best) * peak)
	}
}

// Render formats the estimate as the human-readable table uvelint -cost
// prints.
func (e *Estimate) Render() string {
	var sb strings.Builder
	status := "exact"
	if !e.Exact {
		status = "degraded (intervals)"
	}
	fmt.Fprintf(&sb, "committed %s (%s)\n", e.Committed, status)
	var kinds []string
	for k := range e.ByKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&sb, "  %-10s %s\n", k, e.ByKind[k])
	}
	if len(e.Streams) > 0 {
		fmt.Fprintf(&sb, "streams:\n")
		fmt.Fprintf(&sb, "  %-3s %-5s %-4s %-9s %-11s %-8s %-8s %-9s %-9s %s\n",
			"u", "kind", "lvl", "elems", "bytes", "chunks", "dims", "linereq", "stlines", "lines")
		for _, s := range e.Streams {
			fmt.Fprintf(&sb, "  %-3d %-5s %-4s %-9s %-11s %-8s %-8s %-9s %-9s %s",
				s.U, s.Kind, s.Level, s.Elems, s.Bytes, s.Chunks, s.DimBoundaries,
				s.LineRequests, s.StoreLines, s.UniqueLines)
			if s.Note != "" {
				fmt.Fprintf(&sb, "  ! %s", s.Note)
			}
			sb.WriteByte('\n')
		}
	}
	fmt.Fprintf(&sb, "cycle lower bounds: best %d (%s)\n", e.Bounds.Best, e.Bounds.BestName)
	fmt.Fprintf(&sb, "  commit %d  issue %d  dram %d\n", e.Bounds.Commit, e.Bounds.Issue, e.Bounds.DRAM)
	var ports []string
	for p := range e.Bounds.Ports {
		ports = append(ports, p)
	}
	sort.Strings(ports)
	sb.WriteString("  ports:")
	for _, p := range ports {
		fmt.Fprintf(&sb, " %s %d", p, e.Bounds.Ports[p])
	}
	sb.WriteByte('\n')
	if e.Bounds.EngineStream > 0 || e.Bounds.EngineTotal > 0 {
		fmt.Fprintf(&sb, "  engine: stream %d  total %d  store %d  mrq %d\n",
			e.Bounds.EngineStream, e.Bounds.EngineTotal, e.Bounds.EngineStore, e.Bounds.EngineMRQ)
	}
	fmt.Fprintf(&sb, "predicted bus utilization ≤ %.3f (lines: %d read-only, %d written)\n",
		e.PredictedBusUtil, e.ReadOnlyLines, e.WrittenLines)
	for _, d := range e.Diags {
		fmt.Fprintf(&sb, "note: %s\n", d)
	}
	return sb.String()
}
