package cost

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/program"
)

// absVal is an abstract integer register: a concrete value, or unknown
// (loaded from data memory, or derived from such a value).
type absVal struct {
	known bool
	v     uint64
}

// absPred is an abstract predicate register.
type absPred struct {
	known bool
	p     isa.PredVal
}

// absFlags is an abstract end-of-dimension flag snapshot.
type absFlags struct {
	known bool
	end   uint16
	last  bool
}

// astream is the static analogue of a funcsim stream instance: the same
// lifecycle (configure, consume/produce, release) driven by the statically
// derived chunk structure instead of materialized chunks.
type astream struct {
	u     int
	kind  descriptor.Kind
	w     arch.ElemWidth
	level arch.CacheLevel

	configuring bool
	parts       []*isa.StreamCfgPart
	suspended   bool
	released    bool

	work *streamWork
	pos  int64
	// posUnknown marks instances whose consumption position cannot be
	// tracked (inexact chunk count): their flags and traffic degrade to
	// intervals, never to a guess.
	posUnknown bool
	flags      absFlags
	// drained counts origin elements consumed by dependent generations (the
	// engine commits origin chunks as the dependent walk settles them).
	drained int64
}

// interp interprets the program over abstract values, mirroring the
// functional tier's step semantics instruction for instruction — but with
// no data memory, so loads produce unknowns and control flow must be
// resolvable from register arguments and descriptor structure alone.
type interp struct {
	prog       *program.Program
	vecBytes   int // physical vector width (clamps ss.setvl)
	walkBudget int64
	maxSteps   int64

	intR  [isa.NumIntRegs]absVal
	preds [isa.NumPredRegs]absPred

	effVecBytes int

	sat       [isa.NumVecRegs]*astream
	lastFlags [isa.NumVecRegs]absFlags
	all       []*astream

	committed uint64
	byKind    [isa.KindCount]uint64

	readLines  map[uint64]struct{}
	writeLines map[uint64]struct{}
	// writesUnknown poisons the read-only line classification: some store's
	// target lines could not be bounded, so no line can be proven read-only.
	writesUnknown bool
	unknownLoads  int // loads whose lines were skipped (footprint under-approximated)

	bailed  bool
	bailMsg string
	diags   []string
}

func newInterp(p *program.Program, vecBytes int, walkBudget, maxSteps int64) *interp {
	in := &interp{
		prog:        p,
		vecBytes:    vecBytes,
		walkBudget:  walkBudget,
		maxSteps:    maxSteps,
		effVecBytes: vecBytes,
		readLines:   map[uint64]struct{}{},
		writeLines:  map[uint64]struct{}{},
	}
	for i := range in.intR {
		in.intR[i] = absVal{known: true}
	}
	for i := range in.preds {
		in.preds[i] = absPred{known: true}
	}
	in.preds[0] = absPred{known: true, p: isa.AllLanes}
	for i := range in.lastFlags {
		in.lastFlags[i] = absFlags{known: true}
	}
	return in
}

func (in *interp) setIntReg(n int, v uint64) {
	if n != 0 {
		in.intR[n] = absVal{known: true, v: v}
	}
}

func (in *interp) lanes(w arch.ElemWidth) int { return arch.LanesFor(in.effVecBytes, w) }

func (in *interp) bail(pc int, format string, args ...any) {
	if in.bailed {
		return
	}
	in.bailed = true
	in.bailMsg = fmt.Sprintf("pc %d: %s", pc, fmt.Sprintf(format, args...))
}

func (in *interp) diag(format string, args ...any) {
	in.diags = append(in.diags, fmt.Sprintf(format, args...))
}

// readInt reads an abstract scalar operand (funcsim's operandU64 for the
// classes the analyzer tracks; FP bit patterns are untracked — they never
// reach control flow).
func (in *interp) readInt(r isa.Reg) absVal {
	switch r.Class {
	case isa.ClassInt:
		return in.intR[r.N]
	case isa.ClassFP:
		return absVal{}
	}
	return absVal{known: true}
}

func (in *interp) writeScalar(r isa.Reg, v absVal) {
	if r.Class == isa.ClassInt && r.N != 0 {
		in.intR[r.N] = v
	}
}

func (in *interp) operandPred(i *isa.Inst) absPred {
	if i.Pred.Class != isa.ClassPred {
		return absPred{known: true, p: isa.AllLanes}
	}
	return in.preds[i.Pred.N]
}

func (in *interp) readPredSrc(i *isa.Inst) absPred {
	if i.Src1.Class != isa.ClassPred {
		return absPred{known: true, p: isa.AllLanes}
	}
	return in.preds[i.Src1.N]
}

// run interprets from pc 0 until halt, bail, or the step budget.
func (in *interp) run() {
	pc := 0
	for n := int64(0); ; n++ {
		if in.bailed {
			return
		}
		if n >= in.maxSteps {
			in.bail(pc, "interpreter step budget (%d) exhausted", in.maxSteps)
			return
		}
		if pc < 0 || pc >= in.prog.Len() {
			in.bail(pc, "control left the program")
			return
		}
		next, halt := in.step(pc)
		if halt || in.bailed {
			return
		}
		pc = next
	}
}

// step mirrors funcsim's program-order step over abstract values. The
// committed/by-kind tallies advance only for instructions whose execution
// is fully resolved, so the tallies are exact on success and an exact
// prefix (hence a sound lower bound) on bail.
func (in *interp) step(pc int) (next int, halt bool) {
	inst := in.prog.At(pc)
	op := inst.Op
	next = pc + 1

	var prod *astream
	if regOperands(op) {
		seen := [3]int{-1, -1, -1}
		for _, r := range [...]isa.Reg{inst.Src1, inst.Src2, inst.Src3} {
			if r.Class != isa.ClassVec {
				continue
			}
			s := in.sat[r.N]
			if s == nil || s.suspended || s.kind != descriptor.Load {
				continue
			}
			if s.configuring {
				in.bail(pc, "u%d consumed while still configuring", r.N)
				return
			}
			dup := false
			for _, u := range seen {
				if u == int(r.N) {
					dup = true
				}
			}
			if dup {
				continue
			}
			seen[0], seen[1], seen[2] = seen[1], seen[2], int(r.N)
			in.consume(s)
		}
		if inst.Dst.Class == isa.ClassVec {
			if s := in.sat[inst.Dst.N]; s != nil && !s.suspended && s.kind == descriptor.Store {
				if s.configuring {
					in.bail(pc, "u%d produced while still configuring", inst.Dst.N)
					return
				}
				prod = s
			}
		}
	}
	produceDst := func() {
		if prod != nil {
			in.produce(prod)
		}
	}

	switch {
	case op == isa.OpSCfg:
		in.configPart(pc, inst.Cfg)
		if in.bailed {
			return
		}

	case op == isa.OpNop:
	case op == isa.OpHalt:
		halt = true

	case op == isa.OpSSuspend:
		if s := in.sat[inst.Dst.N]; s != nil {
			s.suspended = true
		}
	case op == isa.OpSResume:
		if s := in.sat[inst.Dst.N]; s != nil {
			s.suspended = false
		}
	case op == isa.OpSStop:
		if s := in.sat[inst.Dst.N]; s != nil {
			in.release(s)
		}
	case op == isa.OpSForce:
		// Timing-only hint; architecturally a no-op.

	case op.IsStreamBranch():
		f := in.streamFlags(int(inst.Src1.N))
		if !f.known {
			in.bail(pc, "stream branch on u%d: flags are data-dependent", inst.Src1.N)
			return
		}
		taken := false
		switch op {
		case isa.OpSBNotEnd:
			taken = !f.last
		case isa.OpSBEnd:
			taken = f.last
		case isa.OpSBDimNotEnd:
			taken = f.end&(1<<uint(inst.Imm)) == 0
		case isa.OpSBDimEnd:
			taken = f.end&(1<<uint(inst.Imm)) != 0
		}
		if taken {
			next = inst.Target
		}

	case op == isa.OpJ:
		next = inst.Target
	case op == isa.OpBeq || op == isa.OpBne || op == isa.OpBlt || op == isa.OpBge:
		a, b := in.readInt(inst.Src1), in.readInt(inst.Src2)
		if !a.known || !b.known {
			in.bail(pc, "conditional branch on a data-dependent value")
			return
		}
		if isa.EvalCondBranch(op, a.v, b.v) {
			next = inst.Target
		}
	case op == isa.OpBFirst:
		p := in.readPredSrc(&inst)
		if !p.known {
			in.bail(pc, "predicate branch on a data-dependent predicate")
			return
		}
		if p.p.Any() {
			next = inst.Target
		}
	case op == isa.OpBNone:
		p := in.readPredSrc(&inst)
		if !p.known {
			in.bail(pc, "predicate branch on a data-dependent predicate")
			return
		}
		if !p.p.Any() {
			next = inst.Target
		}

	case op == isa.OpSSetVL:
		a := in.readInt(inst.Src1)
		if !a.known {
			in.bail(pc, "ss.setvl with a data-dependent request")
			return
		}
		req := int(a.v)
		max := arch.LanesFor(in.vecBytes, inst.W)
		if req <= 0 || req > max {
			req = max
		}
		in.effVecBytes = req * int(inst.W)
		in.writeScalar(inst.Dst, absVal{known: true, v: uint64(req)})

	case op == isa.OpWhilelt:
		a, b := in.readInt(inst.Src1), in.readInt(inst.Src2)
		if a.known && b.known {
			in.preds[inst.Dst.N] = absPred{known: true, p: isa.EvalWhilelt(a.v, b.v, in.lanes(inst.W))}
		} else {
			in.preds[inst.Dst.N] = absPred{}
		}
	case op == isa.OpPTrue:
		in.preds[inst.Dst.N] = absPred{known: true, p: isa.PredVal{Active: in.lanes(inst.W)}}
	case op == isa.OpPNot:
		p := in.readPredSrc(&inst)
		if p.known {
			n := in.lanes(inst.W)
			in.preds[inst.Dst.N] = absPred{known: true, p: isa.PredVal{Active: n - p.p.Limit(n)}}
		} else {
			in.preds[inst.Dst.N] = absPred{}
		}
	case op == isa.OpIncVL:
		a := in.readInt(inst.Src1)
		in.writeScalar(inst.Dst, absVal{known: a.known, v: a.v + uint64(in.lanes(inst.W))})
	case op == isa.OpGetVL:
		in.writeScalar(inst.Dst, absVal{known: true, v: uint64(in.lanes(inst.W))})

	case op.Kind() == isa.KindIntALU:
		a, b := in.readInt(inst.Src1), in.readInt(inst.Src2)
		if a.known && b.known {
			in.writeScalar(inst.Dst, absVal{known: true, v: isa.EvalInt(op, a.v, b.v, inst.Imm)})
		} else {
			in.writeScalar(inst.Dst, absVal{})
		}
	case op.Kind() == isa.KindFPALU:
		// FP values are untracked; an integer destination (none in the
		// current ISA) would simply become unknown.
		in.writeScalar(inst.Dst, absVal{})

	case op == isa.OpVFAddV || op == isa.OpVFMaxV || op == isa.OpVFMinV:
		produceDst()
	case op == isa.OpVFAddVF || op == isa.OpVFMaxVF || op == isa.OpVFMinVF:
		in.writeScalar(inst.Dst, absVal{})

	case op.Kind() == isa.KindVecALU:
		if inst.Dst.Class == isa.ClassVec {
			produceDst()
		} else {
			in.writeScalar(inst.Dst, absVal{})
		}

	case op == isa.OpLoad || op == isa.OpFLoad:
		a := in.readInt(inst.Src1)
		if a.known {
			in.readLines[arch.LineOf(a.v+uint64(inst.Imm))] = struct{}{}
		} else {
			in.unknownLoads++
		}
		in.writeScalar(inst.Dst, absVal{})

	case op == isa.OpVLoad:
		base, idx := in.readInt(inst.Src1), in.readInt(inst.Src2)
		p := in.operandPred(&inst)
		if base.known && idx.known && p.known {
			addr := base.v + (idx.v+uint64(inst.Imm))*uint64(inst.W)
			n := p.p.Limit(in.lanes(inst.W))
			for i := 0; i < n; i++ {
				in.readLines[arch.LineOf(addr+uint64(i)*uint64(inst.W))] = struct{}{}
			}
		} else {
			in.unknownLoads++
		}
		produceDst()

	case op == isa.OpVLoadG:
		// Gather indices come from vector data the analyzer does not track:
		// the read footprint is under-approximated, which keeps the DRAM
		// bound sound.
		in.unknownLoads++
		produceDst()

	case op == isa.OpStore || op == isa.OpFStore:
		a := in.readInt(inst.Src1)
		if a.known {
			in.noteWriteSpan(a.v+uint64(inst.Imm), int(inst.W))
		} else {
			in.writesUnknown = true
		}

	case op == isa.OpVStore:
		base, idx := in.readInt(inst.Src1), in.readInt(inst.Src2)
		if base.known && idx.known {
			n := in.lanes(inst.W)
			if p := in.operandPred(&inst); p.known {
				n = p.p.Limit(n)
			}
			addr := base.v + (idx.v+uint64(inst.Imm))*uint64(inst.W)
			in.noteWriteSpan(addr, n*int(inst.W))
		} else {
			in.writesUnknown = true
		}

	default:
		in.bail(pc, "unmodeled op %s", op.Name())
		return
	}

	in.committed++
	in.byKind[op.Kind()]++
	return next, halt
}

// noteWriteSpan over-approximates a store's touched lines (including a
// straddled final line), as the read-only classification requires.
func (in *interp) noteWriteSpan(addr uint64, bytes int) {
	if bytes <= 0 {
		return
	}
	first := arch.LineOf(addr)
	last := arch.LineOf(addr + uint64(bytes) - 1)
	for l := first; l <= last; l += arch.LineSize {
		in.writeLines[l] = struct{}{}
	}
}

// regOperands mirrors the core's rule: stream configuration/control and
// stream branches name streams, not register values.
func regOperands(op isa.Op) bool {
	switch op {
	case isa.OpSCfg, isa.OpSSuspend, isa.OpSResume, isa.OpSStop, isa.OpSForce,
		isa.OpSBNotEnd, isa.OpSBEnd, isa.OpSBDimNotEnd, isa.OpSBDimEnd:
		return false
	}
	return true
}

// configPart mirrors funcsim.configPart: the End part rebuilds the
// descriptor and derives the instance's work statically.
func (in *interp) configPart(pc int, p *isa.StreamCfgPart) {
	u := p.Stream
	if p.Start {
		s := &astream{u: u, configuring: true, kind: p.Kind, flags: absFlags{known: true}}
		in.sat[u] = s
		in.all = append(in.all, s)
	}
	s := in.sat[u]
	if s == nil || !s.configuring {
		in.bail(pc, "stream config part for u%d without an open configuration", u)
		return
	}
	s.parts = append(s.parts, p)
	if !p.End {
		return
	}
	d, err := isa.RebuildDescriptor(s.parts)
	if err != nil {
		in.bail(pc, "u%d: %v", u, err)
		return
	}
	s.parts = nil
	s.configuring = false
	s.kind = d.Kind
	s.w = d.Width
	s.level = d.Level
	in.generate(pc, s, d)
}

// generate derives the instance's statically known work, mirroring the
// functional tier's eager generation: origin streams supply element counts
// (their values are irrelevant without Size-target indirection), and
// origins a full generation drains release here.
func (in *interp) generate(pc int, s *astream, d *descriptor.Descriptor) {
	originElems := map[int]int64{}
	var origins []*astream
	if d.HasIndirect() {
		for _, ou := range d.Origins() {
			os := in.sat[ou]
			if os == nil || os.configuring {
				in.bail(pc, "u%d: indirect origin u%d not configured", s.u, ou)
				return
			}
			origins = append(origins, os)
			if os.work != nil && os.work.exact {
				originElems[ou] = os.work.elems
			}
		}
	}
	s.work = computeWork(d, in.lanes(d.Width), originElems, in.walkBudget)
	if !s.work.exact {
		s.posUnknown = true
		s.flags = absFlags{}
		in.diag("u%d: %s", s.u, s.work.note)
		// Origins partially drained by an unbounded generation lose their
		// position too.
		for _, os := range origins {
			os.posUnknown = true
			os.flags = absFlags{}
		}
		return
	}
	for _, os := range origins {
		used := s.work.originUsed[os.u]
		if used > os.drained {
			os.drained = used
		}
		if os.released || os.work == nil || !os.work.exact || os.work.chunks == 0 {
			continue
		}
		if used >= os.work.elems {
			os.pos = os.work.chunks
			end, last := os.work.flagAt(os.work.chunks - 1)
			os.flags = absFlags{known: true, end: end, last: last}
			in.release(os)
		}
	}
}

// consume mirrors funcsim.consume: advance the position, snapshot the
// chunk's flags, release on the final chunk. Past the end nothing changes.
func (in *interp) consume(s *astream) {
	if s.posUnknown {
		s.flags = absFlags{}
		return
	}
	if s.pos >= s.work.chunks {
		return
	}
	s.pos++
	end, last := s.work.flagAt(s.pos - 1)
	s.flags = absFlags{known: true, end: end, last: last}
	if s.pos == s.work.chunks {
		in.release(s)
	}
}

// produce mirrors funcsim.produce; store values are irrelevant statically,
// but the position/flag/release bookkeeping is identical to consume's.
func (in *interp) produce(s *astream) { in.consume(s) }

func (in *interp) release(s *astream) {
	if s.released {
		return
	}
	s.released = true
	in.lastFlags[s.u] = s.flags
	if in.sat[s.u] == s {
		in.sat[s.u] = nil
	}
}

func (in *interp) streamFlags(u int) absFlags {
	if s := in.sat[u]; s != nil && !s.suspended {
		return s.flags
	}
	return in.lastFlags[u]
}
