package cost

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/descriptor"
)

// Default budgets. The walk budget caps the symbolic enumeration per stream
// instance; the line budget caps the explicit unique-line set. Beyond them
// the analyzer degrades to intervals, never to a guess.
const (
	DefaultWalkElems = int64(1) << 22
	DefaultLineSet   = int64(1) << 21
)

// streamWork is the statically derived work of one stream instance: the
// chunk structure the core observes (counts and end-of-dimension flags) and
// the address-derived line quantities the engine's generator produces.
type streamWork struct {
	desc  *descriptor.Descriptor
	lanes int

	// Counts. Exact when exact is true; otherwise elems..dimBounds hold the
	// interval lower ends and hi the (possibly Unbounded) upper end.
	exact     bool
	elems     int64
	chunks    int64
	dimBounds int64 // committed chunks with End!=0 && !Last
	hi        uint64
	note      string

	// Chunk structure for the interpreter; nil when counts are inexact.
	flagAt func(i int64) (end uint16, last bool)
	nAt    func(i int64) int64
	// prefix returns elems and dim boundaries over the first c chunks.
	prefix func(c int64) (elems, dimBounds int64)

	// Address-derived quantities, valid when addrExact is true.
	addrExact  bool
	lineReqs   int64 // loads: maximal consecutive same-line segments, whole sequence
	segs       int64 // loads: within-chunk same-line segments (generator steps sans dim switches)
	storeLines int64 // stores: per-chunk unique line count
	lines      []uint64
	addrNote   string

	// originUsed maps origin stream -> values one full generation consumes.
	originUsed map[int]int64
}

// zeroSource feeds zero origin values, bounded by each origin stream's
// statically known element count. With no Size-target indirection the chunk
// structure is independent of origin values, so the walk's counts are exact.
type zeroSource struct {
	avail map[int]int64
	used  map[int]int64
}

func (z *zeroSource) NextOrigin(u int) (uint64, bool) {
	if z.avail[u] <= 0 {
		return 0, false
	}
	z.avail[u]--
	z.used[u]++
	return 0, true
}

func opaqueWork(d *descriptor.Descriptor, lanes int, note string) *streamWork {
	return &streamWork{desc: d, lanes: lanes, hi: Unbounded, note: note}
}

// computeWork derives a stream instance's work from its descriptor: pure
// affine patterns in closed form (no enumeration), modifier/indirect
// patterns via a budgeted symbolic walk of the descriptor iterator — the
// same split descriptor.Footprint uses. originElems carries each origin
// stream's exact element count; a missing entry means the origin's count is
// itself inexact.
func computeWork(d *descriptor.Descriptor, lanes int, originElems map[int]int64, walkBudget int64) *streamWork {
	if lanes <= 0 {
		return opaqueWork(d, lanes, "non-positive lane count")
	}
	for _, m := range d.Indirect {
		if m.Target == descriptor.TargetSize {
			return opaqueWork(d, lanes, "indirect modifier retargets a dimension size: element count depends on origin data")
		}
	}
	if d.HasIndirect() {
		for _, ou := range d.Origins() {
			if _, ok := originElems[ou]; !ok {
				return opaqueWork(d, lanes, fmt.Sprintf("origin stream u%d has a data-dependent element count", ou))
			}
		}
	}
	if len(d.Static) == 0 && !d.HasIndirect() {
		w := affineWork(d, lanes)
		if w != nil {
			walkLines(w, d, nil, walkBudget)
			return w
		}
	}
	return walkWork(d, lanes, originElems, walkBudget)
}

// affineWork computes a pure affine descriptor's counts and chunk structure
// in closed form: elems = Π sizes, one run per outer odometer position,
// boundaries at run ends. Returns nil when the products overflow the budget
// arithmetic (callers fall back to the walk, which will degrade cleanly).
func affineWork(d *descriptor.Descriptor, lanes int) *streamWork {
	w := &streamWork{desc: d, lanes: lanes, exact: true}
	sizes := make([]int64, len(d.Dims))
	for i, dim := range d.Dims {
		if dim.Size <= 0 {
			// Any empty dimension empties the whole sequence (the iterator
			// skips empty runs and immediately exhausts the enclosing level).
			w.flagAt = func(int64) (uint16, bool) { return 0, false }
			w.nAt = func(int64) int64 { return 0 }
			w.prefix = func(int64) (int64, int64) { return 0, 0 }
			w.addrExact = true
			return w
		}
		sizes[i] = dim.Size
	}
	size0 := sizes[0]
	cpr := (size0 + int64(lanes) - 1) / int64(lanes) // chunks per run
	lastN := size0 - (cpr-1)*int64(lanes)
	runs := int64(1)
	for _, s := range sizes[1:] {
		if runs > (int64(1)<<56)/s {
			return nil
		}
		runs *= s
	}
	if runs > (int64(1)<<56)/size0 {
		return nil
	}
	w.elems = runs * size0
	w.chunks = runs * cpr
	w.dimBounds = runs - 1
	w.hi = uint64(w.elems)
	chunks := w.chunks
	w.nAt = func(i int64) int64 {
		if i%cpr == cpr-1 {
			return lastN
		}
		return int64(lanes)
	}
	w.flagAt = func(i int64) (uint16, bool) {
		if i%cpr != cpr-1 {
			return 0, false
		}
		r := i / cpr
		end := uint16(1)
		for k := 1; k < len(sizes); k++ {
			if r%sizes[k] != sizes[k]-1 {
				break
			}
			end |= 1 << uint(k)
			r /= sizes[k]
		}
		return end, i == chunks-1
	}
	w.prefix = func(c int64) (int64, int64) {
		if c > chunks {
			c = chunks
		}
		full, rem := c/cpr, c%cpr
		el := full*size0 + rem*int64(lanes)
		db := full
		if db > runs-1 {
			db = runs - 1
		}
		return el, db
	}
	return w
}

// walkWork enumerates the descriptor under the walk budget, reproducing the
// engine generator's chunking rule (close at lane-full or end-of-dim-0).
func walkWork(d *descriptor.Descriptor, lanes int, originElems map[int]int64, walkBudget int64) *streamWork {
	w := &streamWork{desc: d, lanes: lanes}
	var src descriptor.OriginSource
	var zs *zeroSource
	if d.HasIndirect() {
		zs = &zeroSource{avail: map[int]int64{}, used: map[int]int64{}}
		for _, ou := range d.Origins() {
			zs.avail[ou] = originElems[ou]
		}
		src = zs
	}
	it := descriptor.NewIterator(d, src)
	type chunkMeta struct {
		n    int64
		end  uint16
		last bool
	}
	var metas []chunkMeta
	var cur int64
	for {
		el, ok := it.Next()
		if !ok {
			break
		}
		if it.Emitted() > walkBudget {
			return opaqueWork(d, lanes, fmt.Sprintf("pattern exceeds the %d-element walk budget", walkBudget))
		}
		w.elems++
		cur++
		if cur >= int64(lanes) || el.EndsDim(0) {
			metas = append(metas, chunkMeta{n: cur, end: el.End, last: el.Last})
			if el.End != 0 && !el.Last {
				w.dimBounds++
			}
			cur = 0
		}
	}
	if cur > 0 {
		// Degenerate tail guard, mirroring the functional tier: the final
		// element always closes a chunk, but keep the engine's safety net.
		metas = append(metas, chunkMeta{n: cur, end: ^uint16(0), last: true})
	}
	w.exact = true
	w.chunks = int64(len(metas))
	w.hi = uint64(w.elems)
	if zs != nil {
		w.originUsed = zs.used
	}
	w.flagAt = func(i int64) (uint16, bool) {
		if i < 0 || i >= int64(len(metas)) {
			return 0, false
		}
		return metas[i].end, metas[i].last
	}
	w.nAt = func(i int64) int64 {
		if i < 0 || i >= int64(len(metas)) {
			return 0
		}
		return metas[i].n
	}
	w.prefix = func(c int64) (int64, int64) {
		if c > int64(len(metas)) {
			c = int64(len(metas))
		}
		var el, db int64
		for i := int64(0); i < c; i++ {
			el += metas[i].n
			if metas[i].end != 0 && !metas[i].last {
				db++
			}
		}
		return el, db
	}
	if !d.HasIndirect() {
		walkLines(w, d, nil, walkBudget)
	} else {
		w.addrNote = "indirect addresses depend on origin data"
	}
	return w
}

// walkLines re-enumerates the address sequence of an affine descriptor to
// derive the generator's line quantities: coalesced line requests (a new
// request only when the element's line differs from the previous element's,
// persisting across chunks, as the engine's generator coalesces), per-chunk
// store line counts, within-chunk segments, and the unique line set.
func walkLines(w *streamWork, d *descriptor.Descriptor, src descriptor.OriginSource, walkBudget int64) {
	it := descriptor.NewIterator(d, src)
	set := map[uint64]struct{}{}
	var lastLine uint64
	haveLast := false
	var chunkLen int64
	var chunkLine uint64
	chunkSeen := map[uint64]struct{}{}
	for {
		el, ok := it.Next()
		if !ok {
			break
		}
		if it.Emitted() > walkBudget {
			w.addrNote = fmt.Sprintf("address walk exceeds the %d-element budget", walkBudget)
			return
		}
		line := arch.LineOf(el.Addr)
		if !haveLast || line != lastLine {
			w.lineReqs++
			lastLine, haveLast = line, true
		}
		if chunkLen == 0 || line != chunkLine {
			w.segs++
			chunkLine = line
		}
		if _, dup := chunkSeen[line]; !dup {
			chunkSeen[line] = struct{}{}
			w.storeLines++
		}
		if int64(len(set)) <= DefaultLineSet {
			set[line] = struct{}{}
		}
		chunkLen++
		if chunkLen >= int64(w.lanes) || el.EndsDim(0) {
			chunkLen = 0
			chunkSeen = map[uint64]struct{}{}
		}
	}
	if int64(len(set)) > DefaultLineSet {
		w.addrNote = fmt.Sprintf("unique-line set exceeds the %d-line budget", DefaultLineSet)
		return
	}
	w.addrExact = true
	w.lines = make([]uint64, 0, len(set))
	for l := range set {
		w.lines = append(w.lines, l)
	}
	sort.Slice(w.lines, func(i, j int) bool { return w.lines[i] < w.lines[j] })
}

// genSteps lower-bounds the generator steps a stream instance needs: one per
// within-chunk line segment for loads (the generator pops one line per
// step), one per chunk for stores, plus one per dimension-boundary stall.
func (w *streamWork) genSteps() int64 {
	if !w.exact {
		return 0
	}
	if w.desc.Kind == descriptor.Load && w.addrExact {
		return w.segs + w.dimBounds
	}
	return w.chunks + w.dimBounds
}
