package cost

import (
	"fmt"

	"repro/internal/absint"
	"repro/internal/isa"
	"repro/internal/program"
)

// tightenBailed replaces the unbounded upper ends of a bailed estimate's
// committed counts with bounds from the abstract interpreter: when every
// reachable instruction has a finite per-pc execution bound (loop trip
// counts proved from stream descriptors, counted-branch bounds, induction
// clamps — see internal/absint), the sum of those bounds caps the total the
// concrete walk could not finish. The low ends (the exactly resolved
// prefix) are untouched, so the interval still contains the truth.
func tightenBailed(est *Estimate, p *program.Program, params Params) {
	r := absint.Analyze(p, absint.Options{Entry: params.IntArgs, VecBytes: params.Core.VecBytes})
	var total uint64
	byKind := make(map[isa.Kind]uint64)
	for pc := 0; pc < p.Len(); pc++ {
		if !r.Reachable(pc) {
			continue
		}
		n, ok := r.MaxExec(pc)
		if !ok {
			return // one instruction unbounded: nothing sound to report
		}
		if total+n < total {
			return // bound overflows; keep Unbounded
		}
		total += n
		byKind[p.Insts[pc].Op.Kind()] += n
	}
	if total < est.Committed.Lo {
		// The resolved prefix already exceeds the proved bound — impossible
		// unless one analysis is wrong; surface nothing rather than a lie.
		return
	}
	est.Committed.Hi = total
	for k, q := range est.ByKind {
		if q.Hi != Unbounded {
			continue
		}
		var hi uint64
		for kind, n := range byKind {
			if kind.String() == k {
				hi = n
			}
		}
		if hi >= q.Lo {
			q.Hi = hi
			est.ByKind[k] = q
		}
	}
	est.Diags = append(est.Diags, fmt.Sprintf(
		"committed upper bound %d proved by value-range loop analysis (walk bailed before finishing)", total))
}
