package cost_test

// The cost model's acceptance properties, differential against both
// execution tiers: (1) exact committed/per-kind counts equal the functional
// tier's, over every kernel × variant × size grid; (2) on the cycle tier,
// every static cycle lower bound is ≤ the measured cycle count, and the
// per-stream work quantities equal the engine's committed traffic records.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

func analyzeKernel(t *testing.T, k *kernels.Kernel, v kernels.Variant, size int) *cost.Estimate {
	t.Helper()
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	inst := k.Build(h, v, size)
	if inst.Err != nil {
		t.Fatalf("%s/%s n=%d: build: %v", k.ID, v, size, inst.Err)
	}
	p := cost.DefaultParams(v.VecBytes())
	p.IntArgs = inst.IntArgs
	est, err := cost.Analyze(inst.Prog, p)
	if err != nil {
		t.Fatalf("%s/%s n=%d: analyze: %v", k.ID, v, size, err)
	}
	return est
}

func sizeGrid(k *kernels.Kernel, scales []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, sc := range scales {
		n := bench.SizeFor(k, &bench.Options{Scale: sc})
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

// TestModelExactCounts: the analyzer's committed and per-kind counts are
// exact and equal the functional tier's over the full grid.
func TestModelExactCounts(t *testing.T) {
	scales := []int{16, 64}
	if testing.Short() {
		scales = []int{64}
	}
	cells := 0
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			for _, size := range sizeGrid(k, scales) {
				est := analyzeKernel(t, k, v, size)
				o := sim.DefaultOptions(v)
				o.Fidelity = sim.Functional
				res, err := sim.Run(k, v, size, &o)
				if err != nil {
					t.Fatalf("%s/%s n=%d: functional run: %v", k.ID, v, size, err)
				}
				if !est.Committed.IsExact() {
					t.Errorf("%s/%s n=%d: committed count degraded to %s (diags %v)",
						k.ID, v, size, est.Committed, est.Diags)
					continue
				}
				if est.Committed.Value() != res.Committed {
					t.Errorf("%s/%s n=%d: committed: static %d, simulated %d",
						k.ID, v, size, est.Committed.Value(), res.Committed)
				}
				for kind := isa.Kind(0); kind < isa.KindCount; kind++ {
					want := res.Core.CommittedByKind[kind]
					got := est.ByKind[kind.String()]
					if got.Value() != want || !got.IsExact() {
						t.Errorf("%s/%s n=%d: kind %s: static %s, simulated %d",
							k.ID, v, size, kind, got, want)
					}
				}
				cells++
			}
		}
	}
	if cells == 0 {
		t.Fatal("exact-count sweep covered no cells")
	}
}

// TestModelCycleBounds: on the cycle tier, every static lower bound is ≤
// the measured cycle count, and the per-stream work equals the engine's
// committed traffic.
func TestModelCycleBounds(t *testing.T) {
	scales := []int{64}
	if !testing.Short() {
		scales = []int{16, 64}
	}
	cells, exactUs := 0, 0
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			for _, size := range sizeGrid(k, scales) {
				est := analyzeKernel(t, k, v, size)
				o := sim.DefaultOptions(v)
				res, err := sim.Run(k, v, size, &o)
				if err != nil {
					t.Fatalf("%s/%s n=%d: cycle run: %v", k.ID, v, size, err)
				}
				checkBounds(t, k.ID, v, size, est, res)
				if v == kernels.UVE {
					exactUs += checkTraffic(t, k.ID, v, size, est, res)
				}
				cells++
			}
		}
	}
	if cells == 0 {
		t.Fatal("bound sweep covered no cells")
	}
	if exactUs == 0 {
		t.Fatal("traffic check compared no exact stream records — the equality invariant silently disengaged")
	}
}

func checkBounds(t *testing.T, id string, v kernels.Variant, size int, est *cost.Estimate, res *sim.Result) {
	t.Helper()
	b := est.Bounds
	checks := map[string]int64{
		"commit": b.Commit, "issue": b.Issue, "dram": b.DRAM,
		"engine-stream": b.EngineStream, "engine-total": b.EngineTotal,
		"engine-store": b.EngineStore, "engine-mrq": b.EngineMRQ, "best": b.Best,
	}
	for name, p := range b.Ports {
		checks["port-"+name] = p
	}
	for name, bound := range checks {
		if bound > res.Cycles {
			t.Errorf("%s/%s n=%d: %s bound %d exceeds measured cycles %d",
				id, v, size, name, bound, res.Cycles)
		}
	}
}

// trafficSum aggregates per-stream-register work totals.
type trafficSum struct {
	records, elems, bytes, chunks, dims, lineReqs, storeLines uint64
	exact, complete                                           bool
}

func checkTraffic(t *testing.T, id string, v kernels.Variant, size int, est *cost.Estimate, res *sim.Result) (exactUs int) {
	t.Helper()
	want := map[int]*trafficSum{}
	for _, tr := range res.Traffic {
		s := want[tr.U]
		if s == nil {
			s = &trafficSum{complete: true}
			want[tr.U] = s
		}
		s.records++
		s.elems += tr.Elems
		s.bytes += tr.Bytes
		s.chunks += tr.Chunks
		s.dims += tr.DimBoundaries
		s.lineReqs += tr.LineRequests
		s.storeLines += tr.StoreLines
		s.complete = s.complete && tr.Complete
	}
	got := map[int]*trafficSum{}
	for _, sc := range est.Streams {
		s := got[sc.U]
		if s == nil {
			s = &trafficSum{exact: true, complete: true}
			got[sc.U] = s
		}
		s.records++
		s.exact = s.exact && sc.Elems.IsExact() && sc.Chunks.IsExact() && sc.DimBoundaries.IsExact() &&
			sc.LineRequests.IsExact() && sc.StoreLines.IsExact()
		s.complete = s.complete && sc.Complete
		s.elems += sc.Elems.Value()
		s.bytes += sc.Bytes.Value()
		s.chunks += sc.Chunks.Value()
		s.dims += sc.DimBoundaries.Value()
		s.lineReqs += sc.LineRequests.Value()
		s.storeLines += sc.StoreLines.Value()
	}
	for u, w := range want {
		g := got[u]
		if g == nil {
			t.Errorf("%s/%s n=%d: u%d has engine traffic but no static stream cost", id, v, size, u)
			continue
		}
		if g.records != w.records {
			t.Errorf("%s/%s n=%d: u%d: static %d instances, engine %d", id, v, size, u, g.records, w.records)
			continue
		}
		if !g.exact {
			continue // intervals are checked by the negative corpus, not here
		}
		exactUs++
		if g.elems != w.elems || g.bytes != w.bytes || g.chunks != w.chunks || g.dims != w.dims {
			t.Errorf("%s/%s n=%d: u%d: static elems/bytes/chunks/dims %d/%d/%d/%d != engine %d/%d/%d/%d",
				id, v, size, u, g.elems, g.bytes, g.chunks, g.dims, w.elems, w.bytes, w.chunks, w.dims)
		}
		if g.complete && w.complete && (g.lineReqs != w.lineReqs || g.storeLines != w.storeLines) {
			t.Errorf("%s/%s n=%d: u%d: static lineReqs/storeLines %d/%d != engine %d/%d",
				id, v, size, u, g.lineReqs, g.storeLines, w.lineReqs, w.storeLines)
		}
	}
	for u := range got {
		if want[u] == nil {
			t.Errorf("%s/%s n=%d: u%d has static stream cost but no engine traffic", id, v, size, u)
		}
	}
	return exactUs
}
