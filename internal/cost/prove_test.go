package cost_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/descriptor"
	"repro/internal/funcsim"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// funcRun measures the true committed-instruction count on the functional
// tier (the oracle the proved upper bounds must contain).
func funcRun(t *testing.T, p *program.Program, h *mem.Hierarchy, args map[int]uint64) uint64 {
	t.Helper()
	m := funcsim.New(funcsim.Config{VecBytes: negVecBytes}, p, h.Mem)
	for r, v := range args {
		m.SetIntReg(r, v)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("functional run: %v", err)
	}
	return m.Committed()
}

// TestTightenBailedCountedLoop: the interpreter's step budget forces a bail
// mid-loop, but the loop bound is a compile-time constant the abstract
// interpreter can prove a trip count for — the committed interval's upper
// end must become finite and still contain the truth.
func TestTightenBailedCountedLoop(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	const n = 100
	b := program.NewBuilder("tighten-counted")
	b.I(isa.Li(isa.X(5), 0))
	b.I(isa.Li(isa.X(6), n))
	b.Label("loop")
	b.I(isa.AddI(isa.X(5), isa.X(5), 1))
	b.I(isa.Blt(isa.X(5), isa.X(6), "loop"))
	b.I(isa.Halt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	params := cost.DefaultParams(negVecBytes)
	params.MaxSteps = 10 // bail long before the 2n-instruction loop finishes
	est, err := cost.Analyze(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if est.Exact {
		t.Fatal("estimate claims exactness after a forced bail")
	}
	truth := uint64(3 + 2*n) // li, li, n×(addi+blt), halt
	if est.Committed.IsExact() {
		t.Fatalf("committed %s is a point estimate after a bail", est.Committed)
	}
	if est.Committed.Hi == cost.Unbounded {
		t.Fatalf("committed %s not tightened despite a provable trip count", est.Committed)
	}
	if truth < est.Committed.Lo || truth > est.Committed.Hi {
		t.Fatalf("committed %s does not contain the truth %d", est.Committed, truth)
	}
	m := funcRun(t, p, h, nil)
	if m != truth {
		t.Fatalf("truth model wrong: functional tier committed %d, expected %d", m, truth)
	}
}

// TestTightenBailedStreamLoop: the bail happens inside a stream-terminated
// loop whose trip count is derivable from the descriptor; the proved bound
// must cover the functional tier's measured count.
func TestTightenBailedStreamLoop(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	const n = 64
	aB := h.Mem.Alloc(4*n, arch.LineSize)

	b := program.NewBuilder("tighten-stream")
	b.ConfigStream(0, descriptor.New(aB, arch.W4, descriptor.Load).
		Linear(n, 1).MustBuild())
	b.Label("loop")
	b.I(isa.VMove(arch.W4, isa.V(5), isa.V(0)))
	b.I(isa.SBNotEnd(0, "loop"))
	b.I(isa.Halt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	params := cost.DefaultParams(negVecBytes)
	params.MaxSteps = 4
	est, err := cost.Analyze(p, params)
	if err != nil {
		t.Fatal(err)
	}
	truth := funcRun(t, p, h, nil)
	if est.Committed.IsExact() {
		t.Fatalf("committed %s is a point estimate after a bail", est.Committed)
	}
	if est.Committed.Hi == cost.Unbounded {
		t.Fatalf("committed %s not tightened despite a stream-derived trip count", est.Committed)
	}
	if truth < est.Committed.Lo || truth > est.Committed.Hi {
		t.Fatalf("committed %s does not contain the truth %d", est.Committed, truth)
	}
}

// TestTightenBailedDataDependent: a memory-loaded loop bound is beyond both
// the walk and the prover — the upper end must stay Unbounded rather than
// become a guess.
func TestTightenBailedDataDependent(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	base := h.Mem.Alloc(arch.LineSize, arch.LineSize)
	h.Mem.Write(base, arch.W8, 5)

	b := program.NewBuilder("tighten-datadep")
	b.I(isa.Li(isa.X(6), 0))
	b.I(isa.Load(arch.W8, isa.X(5), isa.X(1), 0))
	b.Label("loop")
	b.I(isa.AddI(isa.X(6), isa.X(6), 1))
	b.I(isa.Blt(isa.X(6), isa.X(5), "loop"))
	b.I(isa.Halt())
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	params := cost.DefaultParams(negVecBytes)
	params.IntArgs = map[int]uint64{1: base}
	est, err := cost.Analyze(p, params)
	if err != nil {
		t.Fatal(err)
	}
	if est.Committed.Hi != cost.Unbounded {
		t.Fatalf("committed %s claims a bound for a data-dependent loop", est.Committed)
	}
}
