package cost

import "fmt"

// Unbounded is the Hi value of a Quantity whose upper bound is statically
// unknown (data-dependent descriptor sizes).
const Unbounded = ^uint64(0)

// Quantity is a statically derived count: an exact value when Lo == Hi, an
// explicit interval otherwise. The analyzer never reports a wrong point
// estimate — anything it cannot pin becomes an interval plus a diagnostic.
type Quantity struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"`
}

// Exact builds a point quantity.
func Exact(v uint64) Quantity { return Quantity{Lo: v, Hi: v} }

// Interval builds an interval quantity.
func Interval(lo, hi uint64) Quantity { return Quantity{Lo: lo, Hi: hi} }

// IsExact reports whether the quantity is a point value.
func (q Quantity) IsExact() bool { return q.Lo == q.Hi }

// Value returns the point value of an exact quantity (Lo otherwise).
func (q Quantity) Value() uint64 { return q.Lo }

func (q Quantity) String() string {
	if q.IsExact() {
		return fmt.Sprintf("%d", q.Lo)
	}
	if q.Hi == Unbounded {
		return fmt.Sprintf("[%d,∞)", q.Lo)
	}
	return fmt.Sprintf("[%d,%d]", q.Lo, q.Hi)
}

// scale multiplies both ends (saturating at Unbounded).
func (q Quantity) scale(f uint64) Quantity {
	mul := func(a uint64) uint64 {
		if a == Unbounded || (a != 0 && f > Unbounded/a) {
			return Unbounded
		}
		return a * f
	}
	return Quantity{Lo: mul(q.Lo), Hi: mul(q.Hi)}
}
