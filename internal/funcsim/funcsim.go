// Package funcsim is the functional execution tier: a program-order
// interpreter for the simulated ISA that produces final memory, committed
// instruction counts and sanitizer-visible stream accesses — but no cycle
// counts. It exists for the runs where only architectural results matter
// (lint sweeps, fault-oracle baselines, fuzz corpora, correctness CI), at a
// fraction of the detailed model's cost.
//
// Stream descriptors are iterated through internal/descriptor's Iterator —
// the same address-generation logic the cycle engine's Descriptor Iterator
// uses — so pattern semantics cannot drift between tiers, and stream
// accesses are shadow-tracked through the engine's sanitizer (engine.Shadow)
// so collision semantics cannot drift either. The remaining semantics
// (operand selection, stream consume/produce rules, branch-flag snapshots,
// predication, effective vector length) transliterate the out-of-order
// core's rename/execute/commit rules into program order; the differential
// oracle in internal/sim compares the two tiers over every kernel, variant
// and size grid.
package funcsim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/program"
)

// Config parameterizes a functional run.
type Config struct {
	// VecBytes is the physical vector register width in bytes.
	VecBytes int
	// Sanitize enables byte-granular shadow tracking of stream accesses;
	// collisions accumulate in Collisions.
	Sanitize bool
	// MaxInsts bounds the run (0 = a practically unlimited default). The
	// functional tier has no cycles, so forward progress is bounded in
	// committed instructions instead.
	MaxInsts int64
	// Cancel, when non-nil, is polled every cancelBatch interpreted
	// instructions; a non-nil return aborts the run with that error
	// verbatim (the sim layer passes a check returning its typed
	// *sim.CanceledError).
	Cancel func(insts int64) error
}

// cancelBatch is the cancellation polling granularity in interpreted
// instructions, mirroring the detailed core's cycle-batch polling.
const cancelBatch = 4096

// chunk is one generated vector chunk: its element addresses plus the
// end-of-dimension flags of its closing element, exactly as the cycle
// engine's FIFO chunks carry them.
type chunk struct {
	addrs []uint64
	end   uint16
	last  bool
}

// stream is one configured stream instance (the functional analogue of an
// engine stream-table slot).
type stream struct {
	u    int
	slot int // unique per instance, for shadow bookkeeping
	desc *descriptor.Descriptor
	kind descriptor.Kind
	w    arch.ElemWidth

	configuring bool
	parts       []*isa.StreamCfgPart
	suspended   bool
	released    bool

	chunks []chunk
	elems  int64
	pos    int // next chunk to consume (loads) or fill (stores)

	// Flags of the most recently delivered chunk — what the engine's
	// SpecFlags reports for a live slot.
	lastEnd  uint16
	lastLast bool
}

// flagPair is the per-register flag memory surviving a release (the
// engine's LastFlags table).
type flagPair struct {
	end  uint16
	last bool
}

// Machine interprets one program against a backing store.
type Machine struct {
	cfg  Config
	prog *program.Program
	mem  *mem.Memory

	intR [isa.NumIntRegs]uint64
	fpR  [isa.NumFPRegs]uint64
	vecR [isa.NumVecRegs]isa.VecVal
	prR  [isa.NumPredRegs]isa.PredVal

	effVecBytes int

	sat       [isa.NumVecRegs]*stream
	lastFlags [isa.NumVecRegs]flagPair
	nextSlot  int

	// Origin shadow iterators (the engine's shadowSource): a dependent
	// stream's indirect modifiers consume origin values through a separate
	// walk of the origin's descriptor, reading memory directly.
	originIts [isa.NumVecRegs]*descriptor.Iterator
	originWs  [isa.NumVecRegs]arch.ElemWidth
	originCum [isa.NumVecRegs]int64

	shadow *engine.Shadow

	committed uint64
	byKind    [isa.KindCount]uint64

	stepHook func(pc int)
}

// New builds a functional machine over the program and backing store.
func New(cfg Config, p *program.Program, m *mem.Memory) *Machine {
	fm := &Machine{cfg: cfg, prog: p, mem: m, effVecBytes: cfg.VecBytes}
	fm.prR[0] = isa.AllLanes
	if cfg.Sanitize {
		fm.shadow = engine.NewShadow()
	}
	return fm
}

// SetIntReg presets integer register n (x0 stays hardwired to zero).
func (m *Machine) SetIntReg(n int, v uint64) {
	if n == 0 {
		return
	}
	m.intR[n] = v
}

// SetFPReg presets FP register n with a float of width w.
func (m *Machine) SetFPReg(n int, w arch.ElemWidth, v float64) {
	m.fpR[n] = isa.FloatBits(w, v)
}

// IntReg reads integer register n's current value.
func (m *Machine) IntReg(n int) uint64 {
	if n < 0 || n >= isa.NumIntRegs {
		return 0
	}
	return m.intR[n]
}

// SetStepHook installs fn to run immediately before each instruction
// executes, with the register file in its pre-execution state — the probe
// differential oracles (e.g. the absint soundness fuzzer) observe through.
func (m *Machine) SetStepHook(fn func(pc int)) { m.stepHook = fn }

// Committed returns the committed instruction count.
func (m *Machine) Committed() uint64 { return m.committed }

// CommittedByKind returns the per-kind commit counts.
func (m *Machine) CommittedByKind() [isa.KindCount]uint64 { return m.byKind }

// Collisions returns the shadow tracker's observations (Config.Sanitize).
func (m *Machine) Collisions() []engine.Collision {
	if m.shadow == nil {
		return nil
	}
	return m.shadow.Collisions()
}

// Run interprets the program to its halt.
func (m *Machine) Run() error {
	bound := m.cfg.MaxInsts
	if bound <= 0 {
		bound = 1 << 62
	}
	pc := 0
	for n := int64(0); ; n++ {
		if n >= bound {
			return fmt.Errorf("funcsim: instruction budget (%d) exhausted at pc %d — livelocked program?", bound, pc)
		}
		if m.cfg.Cancel != nil && n%cancelBatch == 0 {
			if err := m.cfg.Cancel(n); err != nil {
				return err
			}
		}
		if m.stepHook != nil {
			m.stepHook(pc)
		}
		next, halt, err := m.step(pc)
		if err != nil {
			return err
		}
		if halt {
			return nil
		}
		pc = next
	}
}

func (m *Machine) lanes(w arch.ElemWidth) int { return arch.LanesFor(m.effVecBytes, w) }

// regOperands mirrors the core's rule: stream configuration/control and
// stream branches name streams, not register values.
func regOperands(op isa.Op) bool {
	switch op {
	case isa.OpSCfg, isa.OpSSuspend, isa.OpSResume, isa.OpSStop, isa.OpSForce,
		isa.OpSBNotEnd, isa.OpSBEnd, isa.OpSBDimNotEnd, isa.OpSBDimEnd:
		return false
	}
	return true
}

// consumedVal is one stream chunk consumed by the current instruction,
// substituted for every source occurrence of its register.
type consumedVal struct {
	u uint8
	v isa.VecVal
}

func (m *Machine) operandU64(r isa.Reg) uint64 {
	switch r.Class {
	case isa.ClassInt:
		return m.intR[r.N]
	case isa.ClassFP:
		return m.fpR[r.N]
	}
	return 0
}

func (m *Machine) operandVec(r isa.Reg, cons []consumedVal) isa.VecVal {
	if r.Class != isa.ClassVec {
		return isa.VecVal{}
	}
	for _, c := range cons {
		if c.u == r.N {
			return c.v
		}
	}
	return m.vecR[r.N]
}

func (m *Machine) operandPred(in *isa.Inst) isa.PredVal {
	if in.Pred.Class != isa.ClassPred {
		return isa.AllLanes
	}
	return m.prR[in.Pred.N]
}

func (m *Machine) readPredSrc(in *isa.Inst) isa.PredVal {
	if in.Src1.Class != isa.ClassPred {
		return isa.AllLanes
	}
	return m.prR[in.Src1.N]
}

func (m *Machine) writeScalar(r isa.Reg, v uint64) {
	switch r.Class {
	case isa.ClassInt:
		if r.N != 0 {
			m.intR[r.N] = v
		}
	case isa.ClassFP:
		m.fpR[r.N] = v
	}
}

// step interprets the instruction at pc: operand reads (with stream-consume
// substitution), evaluation, and the commit-time effects, all collapsed
// into one program-order step.
func (m *Machine) step(pc int) (next int, halt bool, err error) {
	in := m.prog.At(pc)
	op := in.Op
	next = pc + 1

	// Stream consumes: one chunk per distinct live input-stream source,
	// substituted for all matching occurrences (the rename-stage rule).
	var consBuf [3]consumedVal
	cons := consBuf[:0]
	var prod *stream
	if regOperands(op) {
		for _, r := range [...]isa.Reg{in.Src1, in.Src2, in.Src3} {
			if r.Class != isa.ClassVec {
				continue
			}
			s := m.sat[r.N]
			if s == nil || s.suspended || s.kind != descriptor.Load {
				continue
			}
			if s.configuring {
				return 0, false, fmt.Errorf("funcsim: pc %d: u%d consumed while still configuring", pc, r.N)
			}
			dup := false
			for _, c := range cons {
				if c.u == r.N {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			cons = append(cons, consumedVal{u: r.N, v: m.consume(s)})
		}
		if in.Dst.Class == isa.ClassVec {
			if s := m.sat[in.Dst.N]; s != nil && !s.suspended && s.kind == descriptor.Store {
				if s.configuring {
					return 0, false, fmt.Errorf("funcsim: pc %d: u%d produced while still configuring", pc, in.Dst.N)
				}
				prod = s
			}
		}
	}
	// writeVecDst routes a vector result to the output stream when the
	// destination is one, to the architectural register otherwise.
	writeVecDst := func(v isa.VecVal) {
		if prod != nil {
			m.produce(prod, v)
			return
		}
		m.vecR[in.Dst.N] = v
	}

	switch {
	case op == isa.OpSCfg:
		if err := m.configPart(in.Cfg); err != nil {
			return 0, false, fmt.Errorf("funcsim: pc %d: %w", pc, err)
		}

	case op == isa.OpNop:
	case op == isa.OpHalt:
		halt = true

	case op == isa.OpSSuspend:
		if s := m.sat[in.Dst.N]; s != nil {
			s.suspended = true
		}
	case op == isa.OpSResume:
		if s := m.sat[in.Dst.N]; s != nil {
			s.suspended = false
		}
	case op == isa.OpSStop:
		if s := m.sat[in.Dst.N]; s != nil {
			m.release(s)
		}
	case op == isa.OpSForce:
		// Timing-only hint in the detailed model; architecturally a no-op.

	case op.IsStreamBranch():
		end, last := m.streamFlags(int(in.Src1.N))
		dim := int(in.Imm)
		taken := false
		switch op {
		case isa.OpSBNotEnd:
			taken = !last
		case isa.OpSBEnd:
			taken = last
		case isa.OpSBDimNotEnd:
			taken = end&(1<<uint(dim)) == 0
		case isa.OpSBDimEnd:
			taken = end&(1<<uint(dim)) != 0
		}
		if taken {
			next = in.Target
		}

	case op == isa.OpJ:
		next = in.Target
	case op == isa.OpBeq || op == isa.OpBne || op == isa.OpBlt || op == isa.OpBge:
		if isa.EvalCondBranch(op, m.operandU64(in.Src1), m.operandU64(in.Src2)) {
			next = in.Target
		}
	case op == isa.OpBFirst:
		if m.readPredSrc(&in).Any() {
			next = in.Target
		}
	case op == isa.OpBNone:
		if !m.readPredSrc(&in).Any() {
			next = in.Target
		}

	case op == isa.OpSSetVL:
		req := int(m.operandU64(in.Src1))
		max := arch.LanesFor(m.cfg.VecBytes, in.W)
		if req <= 0 || req > max {
			req = max
		}
		m.effVecBytes = req * int(in.W)
		m.writeScalar(in.Dst, uint64(req))

	case op == isa.OpWhilelt:
		m.prR[in.Dst.N] = isa.EvalWhilelt(m.operandU64(in.Src1), m.operandU64(in.Src2), m.lanes(in.W))
	case op == isa.OpPTrue:
		m.prR[in.Dst.N] = isa.PredVal{Active: m.lanes(in.W)}
	case op == isa.OpPNot:
		p := m.readPredSrc(&in)
		m.prR[in.Dst.N] = isa.PredVal{Active: m.lanes(in.W) - p.Limit(m.lanes(in.W))}
	case op == isa.OpIncVL:
		m.writeScalar(in.Dst, m.operandU64(in.Src1)+uint64(m.lanes(in.W)))
	case op == isa.OpGetVL:
		m.writeScalar(in.Dst, uint64(m.lanes(in.W)))

	case op.Kind() == isa.KindIntALU:
		m.writeScalar(in.Dst, isa.EvalInt(op, m.operandU64(in.Src1), m.operandU64(in.Src2), in.Imm))
	case op.Kind() == isa.KindFPALU:
		m.writeScalar(in.Dst, isa.EvalFP(op, in.W,
			m.operandU64(in.Src1), m.operandU64(in.Src2), m.operandU64(in.Src3), in.Imm))

	case op == isa.OpVFAddV || op == isa.OpVFMaxV || op == isa.OpVFMinV:
		bits := isa.EvalVecHoriz(op, in.W, m.operandVec(in.Src1, cons))
		writeVecDst(isa.VecFrom(in.W, []uint64{bits}))
	case op == isa.OpVFAddVF || op == isa.OpVFMaxVF || op == isa.OpVFMinVF:
		m.writeScalar(in.Dst, isa.EvalVecHoriz(op, in.W, m.operandVec(in.Src1, cons)))

	case op.Kind() == isa.KindVecALU:
		args := isa.VecArgs{
			A: m.operandVec(in.Src1, cons), B: m.operandVec(in.Src2, cons), C: m.operandVec(in.Src3, cons),
			Pred: m.operandPred(&in), Lanes: m.lanes(in.W), W: in.W,
		}
		switch op {
		case isa.OpVDup, isa.OpVDupX:
			args.Scalar = m.operandU64(in.Src1)
		case isa.OpVExtract:
			args.Scalar = uint64(in.Imm)
		}
		if in.Dst.Class == isa.ClassVec {
			for i, r := range [...]isa.Reg{in.Src1, in.Src2, in.Src3} {
				if r.Class == isa.ClassVec && r.N == in.Dst.N {
					mv := [...]isa.VecVal{args.A, args.B, args.C}[i]
					args.Merge = &mv
					break
				}
			}
		}
		res := isa.EvalVecALU(op, args)
		if in.Dst.Class == isa.ClassVec {
			writeVecDst(res)
		}

	case op == isa.OpLoad || op == isa.OpFLoad:
		addr := m.operandU64(in.Src1) + uint64(in.Imm)
		m.writeScalar(in.Dst, m.mem.Read(addr, in.W))

	case op == isa.OpVLoad:
		lanes := m.operandPred(&in).Limit(m.lanes(in.W))
		addr := m.operandU64(in.Src1) + (m.operandU64(in.Src2)+uint64(in.Imm))*uint64(in.W)
		if lanes == 0 {
			writeVecDst(isa.VecVal{W: in.W})
			break
		}
		out := isa.VecVal{W: in.W, N: lanes, L: make([]uint64, lanes)}
		for i := 0; i < lanes; i++ {
			out.L[i] = m.mem.Read(addr+uint64(i)*uint64(in.W), in.W)
		}
		writeVecDst(out)

	case op == isa.OpVLoadG:
		idx := m.operandVec(in.Src2, cons)
		lanes := m.operandPred(&in).Limit(idx.N)
		base := m.operandU64(in.Src1)
		if lanes == 0 {
			writeVecDst(isa.VecVal{W: in.W})
			break
		}
		out := isa.VecVal{W: in.W, N: lanes, L: make([]uint64, lanes)}
		for l := 0; l < lanes; l++ {
			out.L[l] = m.mem.Read(base+idx.Lane(l)*uint64(in.W), in.W)
		}
		writeVecDst(out)

	case op == isa.OpStore || op == isa.OpFStore:
		addr := m.operandU64(in.Src1) + uint64(in.Imm)
		m.mem.Write(addr, in.W, isa.Truncate(in.W, m.operandU64(in.Src3)))
		if m.shadow != nil {
			m.shadow.NoteScalarStore(pc, addr, int(in.W))
		}

	case op == isa.OpVStore:
		data := m.operandVec(in.Src3, cons)
		lanes := m.operandPred(&in).Limit(data.N)
		addr := m.operandU64(in.Src1) + (m.operandU64(in.Src2)+uint64(in.Imm))*uint64(in.W)
		for i := 0; i < lanes; i++ {
			m.mem.Write(addr+uint64(i)*uint64(in.W), in.W, data.Lane(i))
		}
		if m.shadow != nil {
			m.shadow.NoteScalarStore(pc, addr, lanes*int(in.W))
		}

	default:
		return 0, false, fmt.Errorf("funcsim: pc %d: unimplemented op %s", pc, op.Name())
	}

	m.committed++
	m.byKind[op.Kind()]++
	return next, halt, nil
}

// --- streams ---

// configPart applies one OpSCfg µOp; the End part rebuilds the descriptor
// and eagerly generates the whole chunk sequence.
func (m *Machine) configPart(p *isa.StreamCfgPart) error {
	u := p.Stream
	if p.Start {
		s := &stream{u: u, slot: m.nextSlot, configuring: true, kind: p.Kind}
		m.nextSlot++
		// A live predecessor instance is simply shadowed (stream renaming):
		// its shadow bytes stay recorded, as the engine keeps them until the
		// old slot releases.
		m.sat[u] = s
	}
	s := m.sat[u]
	if s == nil || !s.configuring {
		return fmt.Errorf("stream config part for u%d without an open configuration", u)
	}
	s.parts = append(s.parts, p)
	if !p.End {
		return nil
	}
	d, err := isa.RebuildDescriptor(s.parts)
	if err != nil {
		return fmt.Errorf("u%d: %w", u, err)
	}
	s.parts = nil
	s.configuring = false
	s.desc = d
	s.kind = d.Kind
	s.w = d.Width
	return m.generate(s)
}

// originSource adapts the machine's origin iterators to the descriptor
// iterator's OriginSource, mirroring the engine's shadowSource: one value
// per NextOrigin, read directly from memory.
type originSource struct{ m *Machine }

func (o originSource) NextOrigin(u int) (uint64, bool) {
	it := o.m.originIts[u]
	if it == nil {
		return 0, false
	}
	el, ok := it.Next()
	if !ok {
		return 0, false
	}
	o.m.originCum[u]++
	return o.m.mem.Read(el.Addr, o.m.originWs[u]), true
}

// generate walks the descriptor eagerly, packing elements into chunks under
// the engine's rule (close when the chunk is lane-full or the element ends
// dimension 0) and recording every element in the shadow tracker.
func (m *Machine) generate(s *stream) error {
	var src descriptor.OriginSource
	if s.desc.HasIndirect() {
		for _, ou := range s.desc.Origins() {
			os := m.sat[ou]
			if os == nil || os.configuring {
				return fmt.Errorf("u%d: indirect origin u%d not configured", s.u, ou)
			}
			m.originIts[ou] = descriptor.NewIterator(os.desc, nil)
			m.originWs[ou] = os.w
			m.originCum[ou] = 0
		}
		src = originSource{m}
	}
	lanes := arch.LanesFor(m.effVecBytes, s.desc.Width)
	it := descriptor.NewIterator(s.desc, src)
	writes := s.kind == descriptor.Store
	var cur chunk
	for {
		el, ok := it.Next()
		if !ok {
			break
		}
		cur.addrs = append(cur.addrs, el.Addr)
		s.elems++
		if m.shadow != nil {
			m.shadow.Touch(s.u, s.slot, el.Addr, int64(s.w), writes)
		}
		if len(cur.addrs) >= lanes || el.EndsDim(0) {
			cur.end, cur.last = el.End, el.Last
			s.chunks = append(s.chunks, cur)
			cur = chunk{}
		}
	}
	if len(cur.addrs) > 0 {
		// Degenerate tail: the iterator's final element always closes a
		// chunk, but keep the engine's guard for safety.
		cur.end, cur.last = ^uint16(0), true
		s.chunks = append(s.chunks, cur)
	}
	// Origins the generation drained release now, as the engine's
	// engine-consumed advance does once the last origin chunk is popped.
	for _, ou := range s.desc.Origins() {
		os := m.sat[ou]
		if os == nil || os.released || len(os.chunks) == 0 {
			continue
		}
		if m.originCum[ou] >= os.elems {
			last := os.chunks[len(os.chunks)-1]
			os.pos = len(os.chunks)
			os.lastEnd, os.lastLast = last.end, last.last
			m.release(os)
		}
	}
	return nil
}

// consume pops the next chunk of a load stream, reading its element data
// from memory. Past the end it returns the synthetic-end view: zero data,
// flags unchanged. Consuming the final chunk releases the instance (the
// consume and its commit collapse onto the same program-order step).
func (m *Machine) consume(s *stream) isa.VecVal {
	if s.pos >= len(s.chunks) {
		return isa.VecVal{}
	}
	c := s.chunks[s.pos]
	s.pos++
	out := isa.VecVal{W: s.w, N: len(c.addrs), L: make([]uint64, len(c.addrs))}
	for i, a := range c.addrs {
		out.L[i] = m.mem.Read(a, s.w)
	}
	s.lastEnd, s.lastLast = c.end, c.last
	if s.pos == len(s.chunks) {
		m.release(s)
	}
	return out
}

// produce fills the next chunk of a store stream and writes it to memory
// (the producing instruction's writeback and the chunk's commit collapse
// onto the same step). Lanes the producer did not supply store zero, as the
// engine's chunk buffers do.
func (m *Machine) produce(s *stream, v isa.VecVal) {
	if s.pos >= len(s.chunks) {
		return
	}
	c := s.chunks[s.pos]
	s.pos++
	for i, a := range c.addrs {
		var val uint64
		if i < v.N {
			val = v.Lane(i)
		}
		m.mem.Write(a, s.w, val)
	}
	s.lastEnd, s.lastLast = c.end, c.last
	if s.pos == len(s.chunks) {
		m.release(s)
	}
}

// release retires a stream instance: its final flags survive in the
// per-register table and its shadow bytes stop colliding with later
// touches.
func (m *Machine) release(s *stream) {
	if s.released {
		return
	}
	s.released = true
	m.lastFlags[s.u] = flagPair{end: s.lastEnd, last: s.lastLast}
	if m.shadow != nil {
		m.shadow.End(s.slot, s.u)
	}
	if m.sat[s.u] == s {
		m.sat[s.u] = nil
	}
}

// streamFlags reports the end-of-dimension flags a stream branch on u
// observes: the live instance's latest chunk flags, or the released
// predecessor's saved flags (the engine's SpecFlags/LastFlags pair).
func (m *Machine) streamFlags(u int) (uint16, bool) {
	if s := m.sat[u]; s != nil && !s.suspended {
		return s.lastEnd, s.lastLast
	}
	f := m.lastFlags[u]
	return f.end, f.last
}
