package isa

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
)

// VecVal is the value of a vector register. Lane i of L holds the raw bits
// of element i, zero-extended to 64 bits. Only the first N lanes are valid:
// UVE's streaming engine delivers chunks whose N reflects automatic
// out-of-bounds lane disabling (paper F5), and predicated baseline loads
// produce N equal to the active-prefix length.
type VecVal struct {
	W arch.ElemWidth
	N int
	L []uint64
}

// NewVec returns an all-zero vector of n lanes of width w.
func NewVec(w arch.ElemWidth, n int) VecVal {
	return VecVal{W: w, N: n, L: make([]uint64, n)}
}

// VecFrom builds a vector from raw element bits.
func VecFrom(w arch.ElemWidth, lanes []uint64) VecVal {
	return VecVal{W: w, N: len(lanes), L: append([]uint64(nil), lanes...)}
}

// Clone returns an independent copy.
func (v VecVal) Clone() VecVal {
	c := v
	c.L = append([]uint64(nil), v.L...)
	return c
}

// Lane returns lane i, or 0 when i is out of the valid range.
func (v VecVal) Lane(i int) uint64 {
	if i < 0 || i >= v.N || i >= len(v.L) {
		return 0
	}
	return v.L[i]
}

// F returns lane i interpreted as a float of the vector's width.
func (v VecVal) F(i int) float64 { return bitsToFloat(v.W, v.Lane(i)) }

func (v VecVal) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "v.%s[%d]{", v.W, v.N)
	for i := 0; i < v.N && i < 8; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", v.F(i))
	}
	if v.N > 8 {
		b.WriteString(" …")
	}
	b.WriteByte('}')
	return b.String()
}

// PredVal is the value of a predicate register. All predicates produced by
// this ISA subset are prefix predicates (the first Active lanes are true),
// which matches whilelt-style loop control and UVE's automatic padding.
type PredVal struct {
	// Active is the number of leading true lanes. A negative value denotes
	// "all lanes", whatever the consuming instruction's lane count is; the
	// hardwired p0 register holds this value.
	Active int
}

// AllLanes is the p0 value: every lane active.
var AllLanes = PredVal{Active: -1}

// Limit returns the active lane count clamped to lanes.
func (p PredVal) Limit(lanes int) int {
	if p.Active < 0 || p.Active > lanes {
		return lanes
	}
	return p.Active
}

// Any reports whether at least one lane is active.
func (p PredVal) Any() bool { return p.Active != 0 }

func (p PredVal) String() string {
	if p.Active < 0 {
		return "p{all}"
	}
	return fmt.Sprintf("p{%d}", p.Active)
}

// --- float bit helpers ---

func bitsToFloat(w arch.ElemWidth, bits uint64) float64 {
	if w == arch.W4 {
		return float64(math.Float32frombits(uint32(bits)))
	}
	return math.Float64frombits(bits)
}

func floatToBits(w arch.ElemWidth, f float64) uint64 {
	if w == arch.W4 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

// FloatBits converts a float to raw bits of width w (exported for kernels
// and the memory image builder).
func FloatBits(w arch.ElemWidth, f float64) uint64 { return floatToBits(w, f) }

// BitsFloat converts raw bits of width w to a float.
func BitsFloat(w arch.ElemWidth, bits uint64) float64 { return bitsToFloat(w, bits) }

// SignExtend interprets the low 8·w bits of v as a signed integer.
func SignExtend(w arch.ElemWidth, v uint64) int64 {
	shift := 64 - 8*uint(w)
	return int64(v<<shift) >> shift
}

// Truncate masks v to the low 8·w bits.
func Truncate(w arch.ElemWidth, v uint64) uint64 {
	if w == arch.W8 {
		return v
	}
	return v & (1<<(8*uint(w)) - 1)
}
