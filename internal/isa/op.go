package isa

import "fmt"

// Op is an operation code. The set covers the scalar base ISA, the generic
// SIMD subset used for the SVE/NEON baselines, and the UVE streaming
// extension.
type Op uint16

const (
	OpInvalid Op = iota

	// --- scalar integer ---
	OpNop
	OpHalt // terminate the simulated program
	OpLi   // dst ← imm
	OpMv   // dst ← src1
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAddI
	OpSllI
	OpSrlI
	OpAndI
	OpAnd
	OpOr
	OpXor
	OpSlt  // dst ← (src1 < src2) signed
	OpSltI // dst ← (src1 < imm) signed

	// --- scalar control flow ---
	OpJ   // unconditional jump
	OpBeq // branch if src1 == src2
	OpBne
	OpBlt // signed
	OpBge // signed

	// --- scalar memory (width via Inst.W) ---
	OpLoad   // dst ← mem[src1 + imm]
	OpStore  // mem[src1 + imm] ← src3
	OpFLoad  // FP dst ← mem[src1 + imm]
	OpFStore // mem[src1 + imm] ← FP src3

	// --- scalar floating point (precision via Inst.W: W4 or W8) ---
	OpFLi // dst ← float imm (bits in Inst.Imm)
	OpFMv
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFSqrt
	OpFMadd // dst ← src1*src2 + src3
	OpFMax
	OpFMin
	OpFAbs
	OpFNeg
	OpFLt  // int dst ← (src1 < src2)
	OpFLe  // int dst ← (src1 <= src2)
	OpItoF // FP dst ← float(int src1)
	OpFtoI // int dst ← int(FP src1), truncating

	// --- vector (shared by SVE/NEON baselines and UVE compute) ---
	OpVLoad   // dst ← mem[src1 + (src2+imm)·W ...], predicated, unit stride
	OpVStore  // mem[src1 + (src2+imm)·W ...] ← src3, predicated
	OpVLoadG  // gather: dst[l] ← mem[src1 + src2[l]·W], predicated
	OpVStoreG // scatter: mem[src1 + src2[l]·W] ← src3[l], predicated
	OpVDup    // dst lanes ← FP scalar src1
	OpVDupX   // dst lanes ← int scalar src1
	OpVMove   // dst ← src1 (consumes/produces streams under UVE)
	OpVFAdd
	OpVFSub
	OpVFMul
	OpVFDiv
	OpVFSqrt
	OpVFMax
	OpVFMin
	OpVFMla    // dst ← dst + src1*src2 (destructive, SVE style)
	OpVFMulAdd // dst ← src1*src2 + src3 (4-operand, UVE vectormad)
	OpVAdd     // integer lanes
	OpVSub
	OpVMul
	OpVMax // signed integer max
	OpVMin
	OpVAnd
	OpVOr
	OpVXor
	OpVFAddV   // horizontal FP add → vector dst with a single valid lane
	OpVFMaxV   // horizontal FP max → vector dst with a single valid lane
	OpVFMinV   // horizontal FP min → vector dst with a single valid lane
	OpVFAddVF  // horizontal FP add → scalar FP dst
	OpVFMaxVF  // horizontal FP max → scalar FP dst
	OpVFMinVF  // horizontal FP min → scalar FP dst
	OpVExtract // FP dst ← lane Imm of src1
	OpVBcast   // dst lanes ← lane 0 of src1 (scalar-stream broadcast)

	// --- predication (SVE-style) ---
	OpWhilelt // pred dst ← lanes l where src1 + l < src2
	OpPTrue   // pred dst ← all lanes active
	OpPNot    // pred dst ← ¬src1 (within lane count)
	OpBFirst  // branch if lane 0 of pred src1 is active
	OpBNone   // branch if no lane of pred src1 is active
	OpIncVL   // dst ← src1 + vector lane count for width W
	OpGetVL   // dst ← vector lane count for width W

	// --- UVE stream configuration and control (paper §III-B) ---
	OpSCfg     // one configuration µOp (ss.ld/ss.st/.sta/.app/.end[.mod|.ind])
	OpSSetVL   // int dst ← granted lanes for width W, requested in src1 (serializing)
	OpSSuspend // suspend stream Dst
	OpSResume  // resume stream Dst
	OpSStop    // stop stream Dst and release its resources
	OpSForce   // force one element load/store on suspended stream Dst

	// --- UVE stream-conditional branches (paper §III-B "Loop control") ---
	OpSBNotEnd    // branch while stream Src1 has not ended
	OpSBEnd       // branch when stream Src1 has ended
	OpSBDimNotEnd // branch while dimension Imm of stream Src1 has not completed
	OpSBDimEnd    // branch when dimension Imm of stream Src1 has completed

	opMax
)

// Kind groups opcodes by the pipeline resources they use.
type Kind uint8

const (
	KindNop Kind = iota
	KindIntALU
	KindFPALU  // scalar FP unit (shared with vector FUs in the A76 model)
	KindVecALU // vector/FP functional unit
	KindLoad   // scalar load port
	KindStore  // scalar store port
	KindBranch
	KindStreamCfg // streaming engine configuration
	KindStreamCtl // stream suspend/resume/stop

	// KindCount is the number of instruction kinds, for dense per-kind
	// tables (e.g. cpu.Stats.CommittedByKind).
	KindCount
)

func (k Kind) String() string {
	switch k {
	case KindNop:
		return "nop"
	case KindIntALU:
		return "int"
	case KindFPALU:
		return "fp"
	case KindVecALU:
		return "vec"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindBranch:
		return "branch"
	case KindStreamCfg:
		return "scfg"
	case KindStreamCtl:
		return "sctl"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// opInfo is static metadata for one opcode.
type opInfo struct {
	name    string
	kind    Kind
	latency int // execution latency in cycles (without memory time)
}

var opTable = [opMax]opInfo{
	OpInvalid: {"invalid", KindNop, 1},
	OpNop:     {"nop", KindNop, 1},
	OpHalt:    {"halt", KindNop, 1},
	OpLi:      {"li", KindIntALU, 1},
	OpMv:      {"mv", KindIntALU, 1},
	OpAdd:     {"add", KindIntALU, 1},
	OpSub:     {"sub", KindIntALU, 1},
	OpMul:     {"mul", KindIntALU, 3},
	OpDiv:     {"div", KindIntALU, 12},
	OpRem:     {"rem", KindIntALU, 12},
	OpAddI:    {"addi", KindIntALU, 1},
	OpSllI:    {"slli", KindIntALU, 1},
	OpSrlI:    {"srli", KindIntALU, 1},
	OpAndI:    {"andi", KindIntALU, 1},
	OpAnd:     {"and", KindIntALU, 1},
	OpOr:      {"or", KindIntALU, 1},
	OpXor:     {"xor", KindIntALU, 1},
	OpSlt:     {"slt", KindIntALU, 1},
	OpSltI:    {"slti", KindIntALU, 1},

	OpJ:   {"j", KindBranch, 1},
	OpBeq: {"beq", KindBranch, 1},
	OpBne: {"bne", KindBranch, 1},
	OpBlt: {"blt", KindBranch, 1},
	OpBge: {"bge", KindBranch, 1},

	OpLoad:   {"load", KindLoad, 1},
	OpStore:  {"store", KindStore, 1},
	OpFLoad:  {"fload", KindLoad, 1},
	OpFStore: {"fstore", KindStore, 1},

	OpFLi:   {"fli", KindFPALU, 1},
	OpFMv:   {"fmv", KindFPALU, 1},
	OpFAdd:  {"fadd", KindFPALU, 2},
	OpFSub:  {"fsub", KindFPALU, 2},
	OpFMul:  {"fmul", KindFPALU, 3},
	OpFDiv:  {"fdiv", KindFPALU, 11},
	OpFSqrt: {"fsqrt", KindFPALU, 12},
	OpFMadd: {"fmadd", KindFPALU, 4},
	OpFMax:  {"fmax", KindFPALU, 2},
	OpFMin:  {"fmin", KindFPALU, 2},
	OpFAbs:  {"fabs", KindFPALU, 1},
	OpFNeg:  {"fneg", KindFPALU, 1},
	OpFLt:   {"flt", KindFPALU, 2},
	OpFLe:   {"fle", KindFPALU, 2},
	OpItoF:  {"itof", KindFPALU, 2},
	OpFtoI:  {"ftoi", KindFPALU, 2},

	OpVLoad:    {"vload", KindLoad, 1},
	OpVStore:   {"vstore", KindStore, 1},
	OpVLoadG:   {"vloadg", KindLoad, 2},
	OpVStoreG:  {"vstoreg", KindStore, 2},
	OpVDup:     {"vdup", KindVecALU, 1},
	OpVDupX:    {"vdupx", KindVecALU, 1},
	OpVMove:    {"vmove", KindVecALU, 1},
	OpVFAdd:    {"vfadd", KindVecALU, 2},
	OpVFSub:    {"vfsub", KindVecALU, 2},
	OpVFMul:    {"vfmul", KindVecALU, 3},
	OpVFDiv:    {"vfdiv", KindVecALU, 11},
	OpVFSqrt:   {"vfsqrt", KindVecALU, 12},
	OpVFMax:    {"vfmax", KindVecALU, 2},
	OpVFMin:    {"vfmin", KindVecALU, 2},
	OpVFMla:    {"vfmla", KindVecALU, 4},
	OpVFMulAdd: {"vfmuladd", KindVecALU, 4},
	OpVAdd:     {"vadd", KindVecALU, 1},
	OpVSub:     {"vsub", KindVecALU, 1},
	OpVMul:     {"vmul", KindVecALU, 3},
	OpVMax:     {"vmax", KindVecALU, 1},
	OpVMin:     {"vmin", KindVecALU, 1},
	OpVAnd:     {"vand", KindVecALU, 1},
	OpVOr:      {"vor", KindVecALU, 1},
	OpVXor:     {"vxor", KindVecALU, 1},
	OpVFAddV:   {"vfaddv", KindVecALU, 4},
	OpVFMaxV:   {"vfmaxv", KindVecALU, 3},
	OpVFMinV:   {"vfminv", KindVecALU, 3},
	OpVFAddVF:  {"vfaddvf", KindVecALU, 4},
	OpVFMaxVF:  {"vfmaxvf", KindVecALU, 3},
	OpVFMinVF:  {"vfminvf", KindVecALU, 3},
	OpVExtract: {"vextract", KindVecALU, 2},
	OpVBcast:   {"vbcast", KindVecALU, 1},

	OpWhilelt: {"whilelt", KindVecALU, 1},
	OpPTrue:   {"ptrue", KindVecALU, 1},
	OpPNot:    {"pnot", KindVecALU, 1},
	OpBFirst:  {"b.first", KindBranch, 1},
	OpBNone:   {"b.none", KindBranch, 1},
	OpIncVL:   {"incvl", KindIntALU, 1},
	OpGetVL:   {"getvl", KindIntALU, 1},

	OpSCfg:     {"ss.cfg", KindStreamCfg, 1},
	OpSSetVL:   {"ss.setvl", KindIntALU, 1},
	OpSSuspend: {"ss.suspend", KindStreamCtl, 1},
	OpSResume:  {"ss.resume", KindStreamCtl, 1},
	OpSStop:    {"ss.stop", KindStreamCtl, 1},
	OpSForce:   {"ss.force", KindStreamCtl, 1},

	OpSBNotEnd:    {"so.b.nend", KindBranch, 1},
	OpSBEnd:       {"so.b.end", KindBranch, 1},
	OpSBDimNotEnd: {"so.b.ndc", KindBranch, 1},
	OpSBDimEnd:    {"so.b.dc", KindBranch, 1},
}

// NumOps is the number of defined opcodes, OpInvalid included. The wire
// format validates decoded opcodes against it, and the stable-numbering
// test pins every opcode's numeric value so the on-disk encoding cannot
// drift silently when the table grows.
const NumOps = int(opMax)

// Valid reports whether o is a defined, encodable opcode.
func (o Op) Valid() bool { return o > OpInvalid && o < opMax }

// Name returns the assembly mnemonic of the opcode.
func (o Op) Name() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op%d", uint16(o))
}

// Kind returns the pipeline resource class of the opcode.
func (o Op) Kind() Kind {
	if int(o) < len(opTable) {
		return opTable[o].kind
	}
	return KindNop
}

// Latency returns the execution latency in cycles, excluding memory time.
func (o Op) Latency() int {
	if int(o) < len(opTable) && opTable[o].latency > 0 {
		return opTable[o].latency
	}
	return 1
}

// IsBranch reports whether the opcode redirects control flow.
func (o Op) IsBranch() bool { return o.Kind() == KindBranch }

// IsConditionalBranch reports whether the branch outcome depends on state.
func (o Op) IsConditionalBranch() bool { return o.IsBranch() && o != OpJ }

// IsMem reports whether the opcode accesses memory through the LSQ.
func (o Op) IsMem() bool {
	k := o.Kind()
	return k == KindLoad || k == KindStore
}

// IsStore reports whether the opcode is a store-side memory operation.
func (o Op) IsStore() bool { return o.Kind() == KindStore }

// IsStreamBranch reports whether the branch outcome depends on stream state.
func (o Op) IsStreamBranch() bool {
	switch o {
	case OpSBNotEnd, OpSBEnd, OpSBDimNotEnd, OpSBDimEnd:
		return true
	}
	return false
}

// IsVector reports whether the opcode produces or consumes vector registers.
func (o Op) IsVector() bool {
	switch o.Kind() {
	case KindVecALU:
		return true
	}
	switch o {
	case OpVLoad, OpVStore, OpVLoadG, OpVStoreG:
		return true
	}
	return false
}
