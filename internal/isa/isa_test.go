package isa

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/descriptor"
)

func TestEvalIntBasics(t *testing.T) {
	cases := []struct {
		op   Op
		a, b uint64
		imm  int64
		want uint64
	}{
		{OpLi, 0, 0, 42, 42},
		{OpMv, 7, 0, 0, 7},
		{OpAdd, 3, 4, 0, 7},
		{OpSub, 3, 4, 0, ^uint64(0)},
		{OpMul, 6, 7, 0, 42},
		{OpDiv, 42, 6, 0, 7},
		{OpDiv, 42, 0, 0, ^uint64(0)},
		{OpRem, 43, 6, 0, 1},
		{OpAddI, 10, 0, -3, 7},
		{OpSllI, 1, 0, 4, 16},
		{OpSrlI, 16, 0, 4, 1},
		{OpAnd, 0b1100, 0b1010, 0, 0b1000},
		{OpOr, 0b1100, 0b1010, 0, 0b1110},
		{OpXor, 0b1100, 0b1010, 0, 0b0110},
		{OpSlt, uint64(^uint64(0)), 1, 0, 1}, // -1 < 1
		{OpSltI, 5, 0, 3, 0},
	}
	for _, c := range cases {
		if got := EvalInt(c.op, c.a, c.b, c.imm); got != c.want {
			t.Errorf("%s(%d,%d,imm=%d) = %d, want %d", c.op.Name(), c.a, c.b, c.imm, got, c.want)
		}
	}
}

func TestEvalCondBranch(t *testing.T) {
	if !EvalCondBranch(OpBeq, 3, 3) || EvalCondBranch(OpBeq, 3, 4) {
		t.Error("beq wrong")
	}
	if !EvalCondBranch(OpBne, 3, 4) || EvalCondBranch(OpBne, 3, 3) {
		t.Error("bne wrong")
	}
	neg1 := ^uint64(0)
	if !EvalCondBranch(OpBlt, neg1, 0) {
		t.Error("blt must be signed")
	}
	if !EvalCondBranch(OpBge, 0, neg1) {
		t.Error("bge must be signed")
	}
	if !EvalCondBranch(OpJ, 0, 0) {
		t.Error("j must always be taken")
	}
}

func TestEvalFPBothWidths(t *testing.T) {
	for _, w := range []arch.ElemWidth{arch.W4, arch.W8} {
		a := FloatBits(w, 1.5)
		b := FloatBits(w, 2.5)
		c := FloatBits(w, 10)
		if got := BitsFloat(w, EvalFP(OpFAdd, w, a, b, 0, 0)); got != 4 {
			t.Errorf("w=%v fadd = %v, want 4", w, got)
		}
		if got := BitsFloat(w, EvalFP(OpFMadd, w, a, b, c, 0)); got != 13.75 {
			t.Errorf("w=%v fmadd = %v, want 13.75", w, got)
		}
		if got := BitsFloat(w, EvalFP(OpFSqrt, w, FloatBits(w, 9), 0, 0, 0)); got != 3 {
			t.Errorf("w=%v fsqrt = %v, want 3", w, got)
		}
		if got := EvalFP(OpFLt, w, a, b, 0, 0); got != 1 {
			t.Errorf("w=%v flt = %d, want 1", w, got)
		}
		if got := BitsFloat(w, EvalFP(OpItoF, w, 7, 0, 0, 0)); got != 7 {
			t.Errorf("w=%v itof = %v, want 7", w, got)
		}
	}
}

func TestEvalFPSinglePrecisionRounds(t *testing.T) {
	// 1/3 in float32 differs from float64; W4 math must round to float32.
	third64 := 1.0 / 3.0
	got := BitsFloat(arch.W4, EvalFP(OpFDiv, arch.W4, FloatBits(arch.W4, 1), FloatBits(arch.W4, 3), 0, 0))
	if got == third64 {
		t.Fatal("W4 division produced float64 precision")
	}
	if float32(got) != float32(1.0)/float32(3.0) {
		t.Fatalf("W4 division = %v, want float32 1/3", got)
	}
}

func vec(w arch.ElemWidth, fs ...float64) VecVal {
	l := make([]uint64, len(fs))
	for i, f := range fs {
		l[i] = FloatBits(w, f)
	}
	return VecFrom(w, l)
}

func TestEvalVecALUFloat(t *testing.T) {
	w := arch.W8
	args := VecArgs{
		A: vec(w, 1, 2, 3, 4), B: vec(w, 10, 20, 30, 40),
		Pred: AllLanes, Lanes: 8, W: w,
	}
	out := EvalVecALU(OpVFAdd, args)
	if out.N != 4 {
		t.Fatalf("lane count %d, want 4 (min of operands)", out.N)
	}
	for i, want := range []float64{11, 22, 33, 44} {
		if out.F(i) != want {
			t.Errorf("lane %d = %v, want %v", i, out.F(i), want)
		}
	}
}

func TestEvalVecALUPredicateLimits(t *testing.T) {
	w := arch.W4
	args := VecArgs{
		A: vec(w, 1, 2, 3, 4), B: vec(w, 1, 1, 1, 1),
		Pred: PredVal{Active: 2}, Lanes: 16, W: w,
	}
	out := EvalVecALU(OpVFMul, args)
	if out.N != 2 {
		t.Fatalf("predicated lane count %d, want 2", out.N)
	}
}

func TestEvalVecMulAdd(t *testing.T) {
	w := arch.W8
	args := VecArgs{
		A: vec(w, 1, 2), B: vec(w, 3, 4), C: vec(w, 10, 10),
		Pred: AllLanes, Lanes: 8, W: w,
	}
	out := EvalVecALU(OpVFMulAdd, args)
	if out.F(0) != 13 || out.F(1) != 18 {
		t.Fatalf("vfmuladd = %v,%v want 13,18", out.F(0), out.F(1))
	}
}

func TestEvalVecIntSignedness(t *testing.T) {
	w := arch.W4
	a := VecFrom(w, []uint64{Truncate(w, uint64(int64(-5)&0xffffffff)), 3})
	b := VecFrom(w, []uint64{2, 2})
	args := VecArgs{A: a, B: b, Pred: AllLanes, Lanes: 16, W: w}
	out := EvalVecALU(OpVMax, args)
	if SignExtend(w, out.Lane(0)) != 2 {
		t.Errorf("vmax lane0 = %d, want 2 (signed compare)", SignExtend(w, out.Lane(0)))
	}
	out = EvalVecALU(OpVMin, args)
	if SignExtend(w, out.Lane(0)) != -5 {
		t.Errorf("vmin lane0 = %d, want -5", SignExtend(w, out.Lane(0)))
	}
}

func TestEvalVecDup(t *testing.T) {
	args := VecArgs{Scalar: FloatBits(arch.W8, 3.5), Pred: AllLanes, Lanes: 8, W: arch.W8}
	out := EvalVecALU(OpVDup, args)
	if out.N != 8 {
		t.Fatalf("dup lanes %d, want 8", out.N)
	}
	for i := 0; i < 8; i++ {
		if out.F(i) != 3.5 {
			t.Fatalf("dup lane %d = %v", i, out.F(i))
		}
	}
}

func TestEvalVecMoveClips(t *testing.T) {
	args := VecArgs{A: vec(arch.W8, 1, 2, 3, 4), Pred: PredVal{Active: 3}, Lanes: 8, W: arch.W8}
	out := EvalVecALU(OpVMove, args)
	if out.N != 3 {
		t.Fatalf("vmove lanes %d, want 3", out.N)
	}
}

func TestEvalVecHoriz(t *testing.T) {
	w := arch.W8
	v := vec(w, 4, -1, 7, 2)
	if got := BitsFloat(w, EvalVecHoriz(OpVFAddV, w, v)); got != 12 {
		t.Errorf("addv = %v, want 12", got)
	}
	if got := BitsFloat(w, EvalVecHoriz(OpVFMaxV, w, v)); got != 7 {
		t.Errorf("maxv = %v, want 7", got)
	}
	if got := BitsFloat(w, EvalVecHoriz(OpVFMinV, w, v)); got != -1 {
		t.Errorf("minv = %v, want -1", got)
	}
	empty := VecVal{W: w}
	if got := EvalVecHoriz(OpVFMaxV, w, empty); got != 0 {
		t.Errorf("maxv of empty = %#x, want 0", got)
	}
}

func TestEvalVecHorizSinglePrecisionOrder(t *testing.T) {
	// float32 accumulation must not be done in float64.
	w := arch.W4
	v := vec(w, 1e8, 1, -1e8)
	got := float32(BitsFloat(w, EvalVecHoriz(OpVFAddV, w, v)))
	want := (float32(1e8) + 1) - 1e8
	if got != want {
		t.Errorf("W4 addv = %v, want %v (float32 order)", got, want)
	}
}

func TestEvalWhilelt(t *testing.T) {
	if p := EvalWhilelt(0, 100, 16); p.Active != 16 {
		t.Errorf("full: %d, want 16", p.Active)
	}
	if p := EvalWhilelt(96, 100, 16); p.Active != 4 {
		t.Errorf("tail: %d, want 4", p.Active)
	}
	if p := EvalWhilelt(100, 100, 16); p.Active != 0 || p.Any() {
		t.Errorf("done: %v, want 0 inactive", p)
	}
}

func TestPredLimit(t *testing.T) {
	if AllLanes.Limit(16) != 16 {
		t.Error("AllLanes must cover any lane count")
	}
	if (PredVal{Active: 3}).Limit(2) != 2 {
		t.Error("limit must clamp to lanes")
	}
}

func TestQuickWhileltMatchesScalarLoop(t *testing.T) {
	f := func(idx, n uint16, lanesSel uint8) bool {
		lanes := []int{4, 8, 16}[lanesSel%3]
		p := EvalWhilelt(uint64(idx), uint64(n), lanes)
		count := 0
		for l := 0; l < lanes; l++ {
			if int(idx)+l < int(n) {
				count++
			}
		}
		return p.Active == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSignExtendTruncate(t *testing.T) {
	if SignExtend(arch.W1, 0xff) != -1 {
		t.Error("W1 sign extend")
	}
	if SignExtend(arch.W4, 0x7fffffff) != math.MaxInt32 {
		t.Error("W4 positive")
	}
	if Truncate(arch.W2, 0x12345) != 0x2345 {
		t.Error("W2 truncate")
	}
	if Truncate(arch.W8, ^uint64(0)) != ^uint64(0) {
		t.Error("W8 truncate must be identity")
	}
}

func TestSCfgPartsRoundTrip(t *testing.T) {
	cases := []*descriptor.Descriptor{
		descriptor.New(0x1000, arch.W4, descriptor.Load).Linear(64, 1).MustBuild(),
		descriptor.New(0x2000, arch.W8, descriptor.Store).Dim(0, 8, 1).Dim(0, 4, 8).MustBuild(),
		descriptor.New(0x3000, arch.W4, descriptor.Load).
			Dim(0, 0, 1).Dim(0, 6, 9).Mod(descriptor.TargetSize, descriptor.Add, 1, 6).MustBuild(),
		descriptor.New(0x4000, arch.W8, descriptor.Load).
			Dim(0, 1, 0).IndirectOuter(descriptor.TargetOffset, descriptor.SetAdd, 5).MustBuild(),
		descriptor.New(0x5000, arch.W4, descriptor.Load).
			Dim(0, 4, 1).Dim(0, 3, 0).Indirect(descriptor.TargetOffset, descriptor.SetValue, 2).MustBuild(),
	}
	for _, d := range cases {
		insts := SCfgParts(7, d)
		wantLen := len(d.Dims) + len(d.Static) + len(d.Indirect)
		if len(insts) != wantLen {
			t.Errorf("%s: %d config µOps, want %d", d, len(insts), wantLen)
		}
		if !insts[0].Cfg.Start || !insts[len(insts)-1].Cfg.End {
			t.Errorf("%s: start/end flags wrong", d)
		}
		var parts []*StreamCfgPart
		for _, in := range insts {
			if in.Op != OpSCfg || in.Cfg.Stream != 7 {
				t.Fatalf("%s: bad config µOp %v", d, in)
			}
			parts = append(parts, in.Cfg)
		}
		got, err := RebuildDescriptor(parts)
		if err != nil {
			t.Fatalf("%s: rebuild: %v", d, err)
		}
		a := descriptor.Addresses(d, dummyOrigin{})
		b := descriptor.Addresses(got, dummyOrigin{})
		if len(a) != len(b) {
			t.Fatalf("%s: rebuilt descriptor sequence length %d, want %d", d, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: rebuilt sequence diverges at %d: %#x vs %#x", d, i, b[i], a[i])
			}
		}
	}
}

// dummyOrigin supplies a short synthetic index sequence for round-trip tests.
type dummyOrigin struct{}

func (dummyOrigin) NextOrigin(int) (uint64, bool) { return 0, false }

func TestRebuildDescriptorErrors(t *testing.T) {
	if _, err := RebuildDescriptor(nil); err == nil {
		t.Error("empty parts accepted")
	}
	if _, err := RebuildDescriptor([]*StreamCfgPart{{Dim: descriptor.Dim{Size: 1}}}); err == nil {
		t.Error("missing start accepted")
	}
}

func TestOpMetadata(t *testing.T) {
	for op := OpNop; op < opMax; op++ {
		if op.Name() == "" {
			t.Errorf("op %d has no name", op)
		}
		if op.Latency() < 1 {
			t.Errorf("op %s latency %d", op.Name(), op.Latency())
		}
	}
	if !OpBne.IsConditionalBranch() || OpJ.IsConditionalBranch() {
		t.Error("conditional branch classification wrong")
	}
	if !OpSBNotEnd.IsStreamBranch() || OpBne.IsStreamBranch() {
		t.Error("stream branch classification wrong")
	}
	if !OpVLoad.IsMem() || !OpVStore.IsStore() || OpVFAdd.IsMem() {
		t.Error("memory classification wrong")
	}
	if !OpVFMla.IsVector() || OpAdd.IsVector() {
		t.Error("vector classification wrong")
	}
}

func TestRegHelpers(t *testing.T) {
	if !X(0).IsZero() || X(1).IsZero() || F(0).IsZero() {
		t.Error("IsZero wrong")
	}
	if !X(31).Valid() || X(32).Valid() || !P(15).Valid() || P(16).Valid() {
		t.Error("Valid wrong")
	}
	if V(3).String() != "u3" || P(2).String() != "p2" {
		t.Error("String wrong")
	}
}

func TestInstSrcs(t *testing.T) {
	in := VFMla(arch.W8, V(1), V(2), V(3), P(1))
	var srcs []Reg
	srcs = in.Srcs(srcs)
	if len(srcs) != 4 { // a, b, old dst, pred
		t.Fatalf("fmla srcs = %v", srcs)
	}
	in2 := Li(X(1), 5)
	if got := in2.Srcs(nil); len(got) != 0 {
		t.Fatalf("li srcs = %v", got)
	}
}
