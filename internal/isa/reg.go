// Package isa defines the instruction set simulated by this reproduction:
// a RISC-V-like scalar base, a generic vector-length-agnostic SIMD subset
// used to model the ARM SVE and NEON baselines, and the UVE streaming
// extension (stream configuration, control and stream-conditional branches,
// paper §III). Instruction semantics are pure value functions so the
// out-of-order core can evaluate them on renamed physical registers.
package isa

import "fmt"

// RegClass identifies an architectural register file.
type RegClass uint8

const (
	// ClassNone marks an unused operand slot.
	ClassNone RegClass = iota
	// ClassInt is the scalar integer register file (x0..x31, x0 ≡ 0).
	ClassInt
	// ClassFP is the scalar floating-point register file (f0..f31).
	ClassFP
	// ClassVec is the vector register file (u0..u31); UVE associates
	// streams with these registers.
	ClassVec
	// ClassPred is the predicate register file (p0..p15, p0 hardwired to
	// all-true as in the paper §III-A1).
	ClassPred
)

func (c RegClass) String() string {
	switch c {
	case ClassNone:
		return "-"
	case ClassInt:
		return "x"
	case ClassFP:
		return "f"
	case ClassVec:
		return "u"
	case ClassPred:
		return "p"
	}
	return fmt.Sprintf("RegClass(%d)", uint8(c))
}

// Counts of architectural registers per class.
const (
	NumIntRegs  = 32
	NumFPRegs   = 32
	NumVecRegs  = 32
	NumPredRegs = 16
)

// Reg names one architectural register.
type Reg struct {
	Class RegClass
	N     uint8
}

// None is the absent-operand register.
var None = Reg{}

// X returns integer register n.
func X(n int) Reg { return Reg{Class: ClassInt, N: uint8(n)} }

// F returns floating-point register n.
func F(n int) Reg { return Reg{Class: ClassFP, N: uint8(n)} }

// V returns vector register n (written "u" in UVE assembly).
func V(n int) Reg { return Reg{Class: ClassVec, N: uint8(n)} }

// P returns predicate register n.
func P(n int) Reg { return Reg{Class: ClassPred, N: uint8(n)} }

// Valid reports whether the register exists in its class.
func (r Reg) Valid() bool {
	switch r.Class {
	case ClassInt:
		return r.N < NumIntRegs
	case ClassFP:
		return r.N < NumFPRegs
	case ClassVec:
		return r.N < NumVecRegs
	case ClassPred:
		return r.N < NumPredRegs
	}
	return false
}

// IsZero reports whether the register reads as constant zero (x0).
func (r Reg) IsZero() bool { return r.Class == ClassInt && r.N == 0 }

func (r Reg) String() string {
	if r.Class == ClassNone {
		return "-"
	}
	return fmt.Sprintf("%s%d", r.Class, r.N)
}
