package isa

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/descriptor"
)

// StreamCfgPart is the payload of one OpSCfg µOp. A full stream
// configuration is a sequence of parts: the start part (ss.ld.sta/ss.st.sta,
// carrying base address, width, kind and the innermost dimension), zero or
// more appended dimensions or modifiers (ss.app[.mod|.ind]), and a final
// part flagged End (ss.end). Simple 1-D patterns are a single part with both
// Start and End set (plain ss.ld/ss.st, paper Fig 4).
type StreamCfgPart struct {
	Stream int // u register being configured
	Start  bool
	End    bool

	// Start-only fields.
	Kind  descriptor.Kind
	Width arch.ElemWidth
	Level arch.CacheLevel
	Base  uint64 // byte base address of the pattern

	// Dimension payload (valid unless Mod or Ind is set).
	Dim descriptor.Dim

	// Modifier payloads (at most one non-nil; bound to the dimension
	// appended immediately before this part).
	Mod *descriptor.StaticMod
	Ind *descriptor.IndirectMod
}

// Inst is one decoded instruction. Every instruction corresponds to a
// single µOp, per the paper's RISC-style design principle (§III).
type Inst struct {
	Op   Op
	Dst  Reg
	Src1 Reg
	Src2 Reg
	Src3 Reg
	Pred Reg // predicate operand; None means p0 (all lanes active)

	Imm int64
	W   arch.ElemWidth // element width / FP precision

	// Target is the branch destination as an instruction index; the program
	// builder resolves labels into it.
	Target int
	// Label is the unresolved branch destination used during building.
	Label string

	// Cfg is the OpSCfg payload.
	Cfg *StreamCfgPart
}

// Srcs appends the valid source registers of the instruction to dst.
func (i *Inst) Srcs(dst []Reg) []Reg {
	for _, r := range [...]Reg{i.Src1, i.Src2, i.Src3, i.Pred} {
		if r.Class != ClassNone {
			dst = append(dst, r)
		}
	}
	return dst
}

// HasDst reports whether the instruction writes a destination register.
func (i *Inst) HasDst() bool { return i.Dst.Class != ClassNone }

func (i *Inst) String() string {
	var b strings.Builder
	b.WriteString(i.Op.Name())
	if i.W != 0 {
		fmt.Fprintf(&b, ".%s", i.W)
	}
	sep := " "
	for _, r := range [...]Reg{i.Dst, i.Src1, i.Src2, i.Src3} {
		if r.Class != ClassNone {
			b.WriteString(sep)
			b.WriteString(r.String())
			sep = ","
		}
	}
	if i.Op.IsBranch() {
		if i.Label != "" {
			fmt.Fprintf(&b, "%s.%s", sep, i.Label)
		} else {
			fmt.Fprintf(&b, "%s@%d", sep, i.Target)
		}
	} else if i.Imm != 0 {
		fmt.Fprintf(&b, "%s%d", sep, i.Imm)
	}
	if i.Pred.Class != ClassNone {
		fmt.Fprintf(&b, " [%s]", i.Pred)
	}
	if i.Cfg != nil {
		fmt.Fprintf(&b, " {u%d start=%v end=%v}", i.Cfg.Stream, i.Cfg.Start, i.Cfg.End)
	}
	return b.String()
}

// --- constructors: scalar ---

// Nop returns a no-operation instruction.
func Nop() Inst { return Inst{Op: OpNop} }

// Halt terminates the simulated program.
func Halt() Inst { return Inst{Op: OpHalt} }

// Li loads an immediate into an integer register.
func Li(rd Reg, imm int64) Inst { return Inst{Op: OpLi, Dst: rd, Imm: imm} }

// Mv copies an integer register.
func Mv(rd, rs Reg) Inst { return Inst{Op: OpMv, Dst: rd, Src1: rs} }

// Add, Sub, Mul, Div are three-register integer ALU operations.
func Add(rd, rs1, rs2 Reg) Inst { return Inst{Op: OpAdd, Dst: rd, Src1: rs1, Src2: rs2} }
func Sub(rd, rs1, rs2 Reg) Inst { return Inst{Op: OpSub, Dst: rd, Src1: rs1, Src2: rs2} }
func Mul(rd, rs1, rs2 Reg) Inst { return Inst{Op: OpMul, Dst: rd, Src1: rs1, Src2: rs2} }
func Div(rd, rs1, rs2 Reg) Inst { return Inst{Op: OpDiv, Dst: rd, Src1: rs1, Src2: rs2} }

// AddI adds an immediate to an integer register.
func AddI(rd, rs Reg, imm int64) Inst { return Inst{Op: OpAddI, Dst: rd, Src1: rs, Imm: imm} }

// AndI ands an immediate into an integer register.
func AndI(rd, rs Reg, imm int64) Inst { return Inst{Op: OpAndI, Dst: rd, Src1: rs, Imm: imm} }

// SllI and SrlI shift by an immediate.
func SllI(rd, rs Reg, imm int64) Inst { return Inst{Op: OpSllI, Dst: rd, Src1: rs, Imm: imm} }
func SrlI(rd, rs Reg, imm int64) Inst { return Inst{Op: OpSrlI, Dst: rd, Src1: rs, Imm: imm} }

// Slt sets rd to 1 when rs1 < rs2 (signed).
func Slt(rd, rs1, rs2 Reg) Inst { return Inst{Op: OpSlt, Dst: rd, Src1: rs1, Src2: rs2} }

// Branches. The label is resolved by the program builder.
func J(label string) Inst             { return Inst{Op: OpJ, Label: label} }
func Beq(a, b Reg, label string) Inst { return Inst{Op: OpBeq, Src1: a, Src2: b, Label: label} }
func Bne(a, b Reg, label string) Inst { return Inst{Op: OpBne, Src1: a, Src2: b, Label: label} }
func Blt(a, b Reg, label string) Inst { return Inst{Op: OpBlt, Src1: a, Src2: b, Label: label} }
func Bge(a, b Reg, label string) Inst { return Inst{Op: OpBge, Src1: a, Src2: b, Label: label} }

// Load reads mem[rs1+imm] into an integer register (width w, zero-extended).
func Load(w arch.ElemWidth, rd, rs1 Reg, imm int64) Inst {
	return Inst{Op: OpLoad, Dst: rd, Src1: rs1, Imm: imm, W: w}
}

// Store writes integer register data to mem[rs1+imm].
func Store(w arch.ElemWidth, rs1 Reg, imm int64, data Reg) Inst {
	return Inst{Op: OpStore, Src1: rs1, Src3: data, Imm: imm, W: w}
}

// FLoad and FStore are the FP flavors of Load and Store.
func FLoad(w arch.ElemWidth, rd, rs1 Reg, imm int64) Inst {
	return Inst{Op: OpFLoad, Dst: rd, Src1: rs1, Imm: imm, W: w}
}
func FStore(w arch.ElemWidth, rs1 Reg, imm int64, data Reg) Inst {
	return Inst{Op: OpFStore, Src1: rs1, Src3: data, Imm: imm, W: w}
}

// --- constructors: scalar FP ---

// FLi loads an FP immediate.
func FLi(w arch.ElemWidth, rd Reg, v float64) Inst {
	var bits int64
	if w == arch.W4 {
		bits = int64(math.Float32bits(float32(v)))
	} else {
		bits = int64(math.Float64bits(v))
	}
	return Inst{Op: OpFLi, Dst: rd, Imm: bits, W: w}
}

func FMv(w arch.ElemWidth, rd, rs Reg) Inst { return Inst{Op: OpFMv, Dst: rd, Src1: rs, W: w} }
func FAdd(w arch.ElemWidth, rd, a, b Reg) Inst {
	return Inst{Op: OpFAdd, Dst: rd, Src1: a, Src2: b, W: w}
}
func FSub(w arch.ElemWidth, rd, a, b Reg) Inst {
	return Inst{Op: OpFSub, Dst: rd, Src1: a, Src2: b, W: w}
}
func FMul(w arch.ElemWidth, rd, a, b Reg) Inst {
	return Inst{Op: OpFMul, Dst: rd, Src1: a, Src2: b, W: w}
}
func FDiv(w arch.ElemWidth, rd, a, b Reg) Inst {
	return Inst{Op: OpFDiv, Dst: rd, Src1: a, Src2: b, W: w}
}
func FSqrt(w arch.ElemWidth, rd, a Reg) Inst { return Inst{Op: OpFSqrt, Dst: rd, Src1: a, W: w} }
func FMadd(w arch.ElemWidth, rd, a, b, c Reg) Inst {
	return Inst{Op: OpFMadd, Dst: rd, Src1: a, Src2: b, Src3: c, W: w}
}
func FMax(w arch.ElemWidth, rd, a, b Reg) Inst {
	return Inst{Op: OpFMax, Dst: rd, Src1: a, Src2: b, W: w}
}
func FMin(w arch.ElemWidth, rd, a, b Reg) Inst {
	return Inst{Op: OpFMin, Dst: rd, Src1: a, Src2: b, W: w}
}
func FLt(w arch.ElemWidth, rd, a, b Reg) Inst {
	return Inst{Op: OpFLt, Dst: rd, Src1: a, Src2: b, W: w}
}
func ItoF(w arch.ElemWidth, rd, rs Reg) Inst { return Inst{Op: OpItoF, Dst: rd, Src1: rs, W: w} }

// --- constructors: vector ---

// VLoad reads a vector from mem[base + (idx+imm)·w] with unit stride.
func VLoad(w arch.ElemWidth, vd, base, idx Reg, imm int64, pred Reg) Inst {
	return Inst{Op: OpVLoad, Dst: vd, Src1: base, Src2: idx, Imm: imm, W: w, Pred: pred}
}

// VStore writes vector data to mem[base + (idx+imm)·w] with unit stride.
func VStore(w arch.ElemWidth, base, idx Reg, imm int64, data, pred Reg) Inst {
	return Inst{Op: OpVStore, Src1: base, Src2: idx, Src3: data, Imm: imm, W: w, Pred: pred}
}

// VLoadG gathers dst[l] ← mem[base + vidx[l]·w].
func VLoadG(w arch.ElemWidth, vd, base, vidx Reg, pred Reg) Inst {
	return Inst{Op: OpVLoadG, Dst: vd, Src1: base, Src2: vidx, W: w, Pred: pred}
}

// VDup broadcasts an FP scalar to all lanes; VDupX broadcasts an integer.
func VDup(w arch.ElemWidth, vd, fs Reg) Inst  { return Inst{Op: OpVDup, Dst: vd, Src1: fs, W: w} }
func VDupX(w arch.ElemWidth, vd, xs Reg) Inst { return Inst{Op: OpVDupX, Dst: vd, Src1: xs, W: w} }

// VBcast broadcasts lane 0 of a vector register to all lanes — the UVE
// idiom for using a one-element stream chunk as a scalar operand.
func VBcast(w arch.ElemWidth, vd, vs Reg) Inst { return Inst{Op: OpVBcast, Dst: vd, Src1: vs, W: w} }

// VMove copies a vector register (a stream iteration under UVE).
func VMove(w arch.ElemWidth, vd, vs Reg) Inst { return Inst{Op: OpVMove, Dst: vd, Src1: vs, W: w} }

// Vector arithmetic constructors. pred None means all lanes.
func VFAdd(w arch.ElemWidth, vd, a, b, pred Reg) Inst {
	return Inst{Op: OpVFAdd, Dst: vd, Src1: a, Src2: b, W: w, Pred: pred}
}
func VFSub(w arch.ElemWidth, vd, a, b, pred Reg) Inst {
	return Inst{Op: OpVFSub, Dst: vd, Src1: a, Src2: b, W: w, Pred: pred}
}
func VFMul(w arch.ElemWidth, vd, a, b, pred Reg) Inst {
	return Inst{Op: OpVFMul, Dst: vd, Src1: a, Src2: b, W: w, Pred: pred}
}
func VFDiv(w arch.ElemWidth, vd, a, b, pred Reg) Inst {
	return Inst{Op: OpVFDiv, Dst: vd, Src1: a, Src2: b, W: w, Pred: pred}
}
func VFSqrt(w arch.ElemWidth, vd, a Reg) Inst {
	return Inst{Op: OpVFSqrt, Dst: vd, Src1: a, W: w}
}
func VFMax(w arch.ElemWidth, vd, a, b, pred Reg) Inst {
	return Inst{Op: OpVFMax, Dst: vd, Src1: a, Src2: b, W: w, Pred: pred}
}
func VFMin(w arch.ElemWidth, vd, a, b, pred Reg) Inst {
	return Inst{Op: OpVFMin, Dst: vd, Src1: a, Src2: b, W: w, Pred: pred}
}

// VFMla computes vd ← vd + a·b (destructive accumulate, SVE fmla).
func VFMla(w arch.ElemWidth, vd, a, b, pred Reg) Inst {
	return Inst{Op: OpVFMla, Dst: vd, Src1: a, Src2: b, Src3: vd, W: w, Pred: pred}
}

// VFMulAdd computes vd ← a·b + c (non-destructive, UVE vectormad).
func VFMulAdd(w arch.ElemWidth, vd, a, b, c Reg) Inst {
	return Inst{Op: OpVFMulAdd, Dst: vd, Src1: a, Src2: b, Src3: c, W: w}
}

// Horizontal reductions into a single-lane vector destination (UVE style,
// writable to an output stream) or a scalar FP destination (SVE style).
func VFAddV(w arch.ElemWidth, vd, vs Reg) Inst  { return Inst{Op: OpVFAddV, Dst: vd, Src1: vs, W: w} }
func VFMaxV(w arch.ElemWidth, vd, vs Reg) Inst  { return Inst{Op: OpVFMaxV, Dst: vd, Src1: vs, W: w} }
func VFMinV(w arch.ElemWidth, vd, vs Reg) Inst  { return Inst{Op: OpVFMinV, Dst: vd, Src1: vs, W: w} }
func VFAddVF(w arch.ElemWidth, fd, vs Reg) Inst { return Inst{Op: OpVFAddVF, Dst: fd, Src1: vs, W: w} }
func VFMaxVF(w arch.ElemWidth, fd, vs Reg) Inst { return Inst{Op: OpVFMaxVF, Dst: fd, Src1: vs, W: w} }

// --- constructors: predication ---

// Whilelt sets pd lanes l where idx + l < n (SVE whilelt).
func Whilelt(w arch.ElemWidth, pd, idx, n Reg) Inst {
	return Inst{Op: OpWhilelt, Dst: pd, Src1: idx, Src2: n, W: w}
}

// BFirst branches when lane 0 of the predicate is active.
func BFirst(p Reg, label string) Inst { return Inst{Op: OpBFirst, Src1: p, Label: label} }

// IncVL advances a loop index by the lane count for width w (SVE incw).
func IncVL(w arch.ElemWidth, rd, rs Reg) Inst { return Inst{Op: OpIncVL, Dst: rd, Src1: rs, W: w} }

// GetVL reads the lane count for width w.
func GetVL(w arch.ElemWidth, rd Reg) Inst { return Inst{Op: OpGetVL, Dst: rd, W: w} }

// --- constructors: UVE streaming ---

// SCfgParts expands a descriptor into its configuration µOp sequence, one
// instruction per dimension and per modifier, exactly as the UVE assembly
// would (ss.ld.sta / ss.app[.mod|.ind] / ss.end, paper §III-B).
func SCfgParts(stream int, d *descriptor.Descriptor) []Inst {
	if err := d.Validate(); err != nil {
		panic(fmt.Sprintf("SCfgParts u%d: %v", stream, err))
	}
	var parts []*StreamCfgPart
	for i, dim := range d.Dims {
		p := &StreamCfgPart{Stream: stream, Dim: dim}
		if i == 0 {
			p.Start = true
			p.Kind = d.Kind
			p.Width = d.Width
			p.Level = d.Level
			p.Base = d.Base
		}
		parts = append(parts, p)
		for _, m := range d.Static {
			if m.Bound == i {
				mc := m
				parts = append(parts, &StreamCfgPart{Stream: stream, Mod: &mc})
			}
		}
		for _, m := range d.Indirect {
			if m.Bound == i {
				mc := m
				parts = append(parts, &StreamCfgPart{Stream: stream, Ind: &mc})
			}
		}
	}
	// Modifiers bound at or beyond the level count (virtual levels).
	for _, m := range d.Static {
		if m.Bound >= len(d.Dims) {
			mc := m
			parts = append(parts, &StreamCfgPart{Stream: stream, Mod: &mc})
		}
	}
	for _, m := range d.Indirect {
		if m.Bound >= len(d.Dims) {
			mc := m
			parts = append(parts, &StreamCfgPart{Stream: stream, Ind: &mc})
		}
	}
	parts[len(parts)-1].End = true
	out := make([]Inst, len(parts))
	for i, p := range parts {
		out[i] = Inst{Op: OpSCfg, Dst: V(stream), Cfg: p}
	}
	return out
}

// RebuildDescriptor reassembles a descriptor from a configuration part
// sequence; the streaming engine uses it when a stream's final ss.end part
// arrives. Modifier bounds are re-derived from part order.
func RebuildDescriptor(parts []*StreamCfgPart) (*descriptor.Descriptor, error) {
	if len(parts) == 0 || !parts[0].Start {
		return nil, fmt.Errorf("stream config: missing start part")
	}
	d := &descriptor.Descriptor{
		Base:  parts[0].Base,
		Width: parts[0].Width,
		Kind:  parts[0].Kind,
		Level: parts[0].Level,
	}
	for _, p := range parts {
		switch {
		case p.Mod != nil:
			// Static modifiers bind to the most recently appended dimension.
			m := *p.Mod
			m.Bound = len(d.Dims) - 1
			if m.Bound < 1 {
				return nil, fmt.Errorf("stream config: static modifier before second dimension")
			}
			d.Static = append(d.Static, m)
		case p.Ind != nil:
			// Indirect modifiers carry their bound verbatim: bound 0 is a
			// per-element gather, bound == #dims a virtual outer level;
			// part order alone cannot distinguish the two.
			d.Indirect = append(d.Indirect, *p.Ind)
		default:
			d.Dims = append(d.Dims, p.Dim)
		}
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// SetVL requests an effective vector length of rs lanes (width w); the
// granted lane count (clamped to the physical width) lands in rd. The
// instruction serializes the pipeline (ss.setvl, §III-B Advanced control).
func SetVL(w arch.ElemWidth, rd, rs Reg) Inst {
	return Inst{Op: OpSSetVL, Dst: rd, Src1: rs, W: w}
}

// SSuspend, SResume, SStop control stream u.
func SSuspend(u int) Inst { return Inst{Op: OpSSuspend, Dst: V(u)} }
func SResume(u int) Inst  { return Inst{Op: OpSResume, Dst: V(u)} }
func SStop(u int) Inst    { return Inst{Op: OpSStop, Dst: V(u)} }

// Stream-conditional branches (paper §III-B "Loop control").
func SBNotEnd(u int, label string) Inst { return Inst{Op: OpSBNotEnd, Src1: V(u), Label: label} }
func SBEnd(u int, label string) Inst    { return Inst{Op: OpSBEnd, Src1: V(u), Label: label} }
func SBDimNotEnd(u, dim int, label string) Inst {
	return Inst{Op: OpSBDimNotEnd, Src1: V(u), Imm: int64(dim), Label: label}
}
func SBDimEnd(u, dim int, label string) Inst {
	return Inst{Op: OpSBDimEnd, Src1: V(u), Imm: int64(dim), Label: label}
}
