package isa

import (
	"testing"

	"repro/internal/arch"
)

// TestConstructorWiring checks that every instruction constructor places
// its operands in the fields the executor reads — transposed operands here
// would silently corrupt kernels.
func TestConstructorWiring(t *testing.T) {
	w := arch.W4
	rd, a, b, c := X(1), X(2), X(3), X(4)
	fd, fa, fb, fc := F(1), F(2), F(3), F(4)
	vd, va, vb, vc := V(1), V(2), V(3), V(4)
	p1 := P(1)

	cases := []struct {
		name string
		in   Inst
		want Inst
	}{
		{"Mv", Mv(rd, a), Inst{Op: OpMv, Dst: rd, Src1: a}},
		{"Add", Add(rd, a, b), Inst{Op: OpAdd, Dst: rd, Src1: a, Src2: b}},
		{"Sub", Sub(rd, a, b), Inst{Op: OpSub, Dst: rd, Src1: a, Src2: b}},
		{"Mul", Mul(rd, a, b), Inst{Op: OpMul, Dst: rd, Src1: a, Src2: b}},
		{"Div", Div(rd, a, b), Inst{Op: OpDiv, Dst: rd, Src1: a, Src2: b}},
		{"AddI", AddI(rd, a, 7), Inst{Op: OpAddI, Dst: rd, Src1: a, Imm: 7}},
		{"AndI", AndI(rd, a, 7), Inst{Op: OpAndI, Dst: rd, Src1: a, Imm: 7}},
		{"SllI", SllI(rd, a, 3), Inst{Op: OpSllI, Dst: rd, Src1: a, Imm: 3}},
		{"SrlI", SrlI(rd, a, 3), Inst{Op: OpSrlI, Dst: rd, Src1: a, Imm: 3}},
		{"Slt", Slt(rd, a, b), Inst{Op: OpSlt, Dst: rd, Src1: a, Src2: b}},
		{"Beq", Beq(a, b, "l"), Inst{Op: OpBeq, Src1: a, Src2: b, Label: "l"}},
		{"Bne", Bne(a, b, "l"), Inst{Op: OpBne, Src1: a, Src2: b, Label: "l"}},
		{"Blt", Blt(a, b, "l"), Inst{Op: OpBlt, Src1: a, Src2: b, Label: "l"}},
		{"Bge", Bge(a, b, "l"), Inst{Op: OpBge, Src1: a, Src2: b, Label: "l"}},
		{"J", J("l"), Inst{Op: OpJ, Label: "l"}},
		{"Load", Load(w, rd, a, 8), Inst{Op: OpLoad, Dst: rd, Src1: a, Imm: 8, W: w}},
		{"Store", Store(w, a, 8, c), Inst{Op: OpStore, Src1: a, Src3: c, Imm: 8, W: w}},
		{"FLoad", FLoad(w, fd, a, 8), Inst{Op: OpFLoad, Dst: fd, Src1: a, Imm: 8, W: w}},
		{"FStore", FStore(w, a, 8, fc), Inst{Op: OpFStore, Src1: a, Src3: fc, Imm: 8, W: w}},
		{"FMv", FMv(w, fd, fa), Inst{Op: OpFMv, Dst: fd, Src1: fa, W: w}},
		{"FAdd", FAdd(w, fd, fa, fb), Inst{Op: OpFAdd, Dst: fd, Src1: fa, Src2: fb, W: w}},
		{"FSub", FSub(w, fd, fa, fb), Inst{Op: OpFSub, Dst: fd, Src1: fa, Src2: fb, W: w}},
		{"FMul", FMul(w, fd, fa, fb), Inst{Op: OpFMul, Dst: fd, Src1: fa, Src2: fb, W: w}},
		{"FDiv", FDiv(w, fd, fa, fb), Inst{Op: OpFDiv, Dst: fd, Src1: fa, Src2: fb, W: w}},
		{"FSqrt", FSqrt(w, fd, fa), Inst{Op: OpFSqrt, Dst: fd, Src1: fa, W: w}},
		{"FMadd", FMadd(w, fd, fa, fb, fc), Inst{Op: OpFMadd, Dst: fd, Src1: fa, Src2: fb, Src3: fc, W: w}},
		{"FMax", FMax(w, fd, fa, fb), Inst{Op: OpFMax, Dst: fd, Src1: fa, Src2: fb, W: w}},
		{"FMin", FMin(w, fd, fa, fb), Inst{Op: OpFMin, Dst: fd, Src1: fa, Src2: fb, W: w}},
		{"FLt", FLt(w, rd, fa, fb), Inst{Op: OpFLt, Dst: rd, Src1: fa, Src2: fb, W: w}},
		{"ItoF", ItoF(w, fd, a), Inst{Op: OpItoF, Dst: fd, Src1: a, W: w}},
		{"VLoad", VLoad(w, vd, a, b, 2, p1), Inst{Op: OpVLoad, Dst: vd, Src1: a, Src2: b, Imm: 2, W: w, Pred: p1}},
		{"VStore", VStore(w, a, b, 2, vc, p1), Inst{Op: OpVStore, Src1: a, Src2: b, Src3: vc, Imm: 2, W: w, Pred: p1}},
		{"VLoadG", VLoadG(w, vd, a, vb, p1), Inst{Op: OpVLoadG, Dst: vd, Src1: a, Src2: vb, W: w, Pred: p1}},
		{"VDup", VDup(w, vd, fa), Inst{Op: OpVDup, Dst: vd, Src1: fa, W: w}},
		{"VDupX", VDupX(w, vd, a), Inst{Op: OpVDupX, Dst: vd, Src1: a, W: w}},
		{"VBcast", VBcast(w, vd, va), Inst{Op: OpVBcast, Dst: vd, Src1: va, W: w}},
		{"VMove", VMove(w, vd, va), Inst{Op: OpVMove, Dst: vd, Src1: va, W: w}},
		{"VFAdd", VFAdd(w, vd, va, vb, p1), Inst{Op: OpVFAdd, Dst: vd, Src1: va, Src2: vb, W: w, Pred: p1}},
		{"VFSub", VFSub(w, vd, va, vb, p1), Inst{Op: OpVFSub, Dst: vd, Src1: va, Src2: vb, W: w, Pred: p1}},
		{"VFMul", VFMul(w, vd, va, vb, p1), Inst{Op: OpVFMul, Dst: vd, Src1: va, Src2: vb, W: w, Pred: p1}},
		{"VFDiv", VFDiv(w, vd, va, vb, p1), Inst{Op: OpVFDiv, Dst: vd, Src1: va, Src2: vb, W: w, Pred: p1}},
		{"VFMax", VFMax(w, vd, va, vb, p1), Inst{Op: OpVFMax, Dst: vd, Src1: va, Src2: vb, W: w, Pred: p1}},
		{"VFMin", VFMin(w, vd, va, vb, p1), Inst{Op: OpVFMin, Dst: vd, Src1: va, Src2: vb, W: w, Pred: p1}},
		{"VFSqrt", VFSqrt(w, vd, va), Inst{Op: OpVFSqrt, Dst: vd, Src1: va, W: w}},
		// VFMla's old destination rides in Src3: the renamed read.
		{"VFMla", VFMla(w, vd, va, vb, p1), Inst{Op: OpVFMla, Dst: vd, Src1: va, Src2: vb, Src3: vd, W: w, Pred: p1}},
		{"VFMulAdd", VFMulAdd(w, vd, va, vb, vc), Inst{Op: OpVFMulAdd, Dst: vd, Src1: va, Src2: vb, Src3: vc, W: w}},
		{"VFAddV", VFAddV(w, vd, va), Inst{Op: OpVFAddV, Dst: vd, Src1: va, W: w}},
		{"VFMaxV", VFMaxV(w, vd, va), Inst{Op: OpVFMaxV, Dst: vd, Src1: va, W: w}},
		{"VFMinV", VFMinV(w, vd, va), Inst{Op: OpVFMinV, Dst: vd, Src1: va, W: w}},
		{"VFAddVF", VFAddVF(w, fd, va), Inst{Op: OpVFAddVF, Dst: fd, Src1: va, W: w}},
		{"VFMaxVF", VFMaxVF(w, fd, va), Inst{Op: OpVFMaxVF, Dst: fd, Src1: va, W: w}},
		{"Whilelt", Whilelt(w, p1, a, b), Inst{Op: OpWhilelt, Dst: p1, Src1: a, Src2: b, W: w}},
		{"BFirst", BFirst(p1, "l"), Inst{Op: OpBFirst, Src1: p1, Label: "l"}},
		{"IncVL", IncVL(w, rd, a), Inst{Op: OpIncVL, Dst: rd, Src1: a, W: w}},
		{"GetVL", GetVL(w, rd), Inst{Op: OpGetVL, Dst: rd, W: w}},
		{"SetVL", SetVL(w, rd, a), Inst{Op: OpSSetVL, Dst: rd, Src1: a, W: w}},
		{"SSuspend", SSuspend(5), Inst{Op: OpSSuspend, Dst: V(5)}},
		{"SResume", SResume(5), Inst{Op: OpSResume, Dst: V(5)}},
		{"SStop", SStop(5), Inst{Op: OpSStop, Dst: V(5)}},
		{"SBNotEnd", SBNotEnd(5, "l"), Inst{Op: OpSBNotEnd, Src1: V(5), Label: "l"}},
		{"SBEnd", SBEnd(5, "l"), Inst{Op: OpSBEnd, Src1: V(5), Label: "l"}},
		{"SBDimNotEnd", SBDimNotEnd(5, 2, "l"), Inst{Op: OpSBDimNotEnd, Src1: V(5), Imm: 2, Label: "l"}},
		{"SBDimEnd", SBDimEnd(5, 2, "l"), Inst{Op: OpSBDimEnd, Src1: V(5), Imm: 2, Label: "l"}},
	}
	for _, tc := range cases {
		if tc.in != tc.want {
			t.Errorf("%s: got %+v, want %+v", tc.name, tc.in, tc.want)
		}
	}
}

func TestFLiEncodesByWidth(t *testing.T) {
	in32 := FLi(arch.W4, F(1), 1.5)
	if uint32(in32.Imm) != 0x3fc00000 {
		t.Errorf("FLi W4 bits = %#x", uint32(in32.Imm))
	}
	in64 := FLi(arch.W8, F(1), 1.5)
	if uint64(in64.Imm) != 0x3ff8000000000000 {
		t.Errorf("FLi W8 bits = %#x", uint64(in64.Imm))
	}
}

func TestInstStringForms(t *testing.T) {
	in1 := Add(X(1), X(2), X(3))
	if s := in1.String(); s != "add x1,x2,x3" {
		t.Errorf("Add string = %q", s)
	}
	in2 := Blt(X(1), X(2), "top")
	if s := in2.String(); s != "blt x1,x2,.top" {
		t.Errorf("Blt string = %q", s)
	}
	in3 := VFMla(arch.W4, V(1), V(2), V(3), P(1))
	s := in3.String()
	if s == "" || s[:7] != "vfmla.w" {
		t.Errorf("VFMla string = %q", s)
	}
}
