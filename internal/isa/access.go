package isa

// Operand introspection for static analysis. The distinction these helpers
// draw is between *data* operands — registers whose value the instruction
// reads or writes — and *stream* operands: vector registers named only to
// select the stream they are bound to (configuration, control and
// stream-conditional branches). A stream-control instruction carries the
// stream register in Dst or Src1 but neither reads nor writes register data.

// IsStreamCtl reports whether the opcode is a stream configuration or
// control instruction whose Dst names a stream rather than a written
// register (ss.cfg, ss.suspend, ss.resume, ss.stop, ss.force).
func (o Op) IsStreamCtl() bool {
	switch o {
	case OpSCfg, OpSSuspend, OpSResume, OpSStop, OpSForce:
		return true
	}
	return false
}

// DataDst returns the register the instruction writes as data, or None when
// it has no destination or its Dst is a stream-control pseudo-operand.
func (i *Inst) DataDst() Reg {
	if i.Op.IsStreamCtl() {
		return None
	}
	return i.Dst
}

// DataSrcs appends the registers whose *values* the instruction reads to
// dst. The stream-status operand of a stream-conditional branch is excluded
// (use StreamOperand for it); predicate operands are included.
func (i *Inst) DataSrcs(dst []Reg) []Reg {
	if i.Op.IsStreamCtl() {
		return dst
	}
	if i.Op.IsStreamBranch() {
		// Src1 selects the stream whose end state is tested; no registers
		// are read as data.
		return dst
	}
	return i.Srcs(dst)
}

// StreamOperand returns the stream register number an instruction names as
// a non-data operand: the Dst of a configuration or control instruction, or
// the Src1 of a stream-conditional branch. ok is false for every other
// instruction.
func (i *Inst) StreamOperand() (u int, ok bool) {
	switch {
	case i.Op.IsStreamCtl():
		return int(i.Dst.N), true
	case i.Op.IsStreamBranch():
		return int(i.Src1.N), true
	}
	return 0, false
}

// SForce forces one element transfer on suspended stream u (ss.force,
// paper §III-B Advanced control).
func SForce(u int) Inst { return Inst{Op: OpSForce, Dst: V(u)} }
