package isa

import (
	"fmt"
	"math"

	"repro/internal/arch"
)

// EvalInt computes a scalar integer ALU result.
func EvalInt(op Op, a, b uint64, imm int64) uint64 {
	switch op {
	case OpNop, OpHalt:
		return 0
	case OpLi:
		return uint64(imm)
	case OpMv:
		return a
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return ^uint64(0)
		}
		return uint64(int64(a) / int64(b))
	case OpRem:
		if b == 0 {
			return a
		}
		return uint64(int64(a) % int64(b))
	case OpAddI:
		return a + uint64(imm)
	case OpSllI:
		return a << uint(imm&63)
	case OpSrlI:
		return a >> uint(imm&63)
	case OpAndI:
		return a & uint64(imm)
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpSlt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSltI:
		if int64(a) < imm {
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("EvalInt: not an integer op: %s", op.Name()))
}

// EvalCondBranch decides a scalar conditional branch.
func EvalCondBranch(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int64(a) < int64(b)
	case OpBge:
		return int64(a) >= int64(b)
	case OpJ:
		return true
	}
	panic(fmt.Sprintf("EvalCondBranch: not a scalar branch: %s", op.Name()))
}

// EvalFP computes a scalar floating-point result (bits in, bits out; the
// precision is selected by w).
func EvalFP(op Op, w arch.ElemWidth, a, b, c uint64, imm int64) uint64 {
	fa, fb, fc := bitsToFloat(w, a), bitsToFloat(w, b), bitsToFloat(w, c)
	switch op {
	case OpFLi:
		return uint64(imm)
	case OpFMv:
		return a
	case OpFAdd:
		return floatToBits(w, fa+fb)
	case OpFSub:
		return floatToBits(w, fa-fb)
	case OpFMul:
		return floatToBits(w, fa*fb)
	case OpFDiv:
		return floatToBits(w, fa/fb)
	case OpFSqrt:
		return floatToBits(w, math.Sqrt(fa))
	case OpFMadd:
		if w == arch.W4 {
			return floatToBits(w, float64(float32(fa)*float32(fb)+float32(fc)))
		}
		return floatToBits(w, fa*fb+fc)
	case OpFMax:
		return floatToBits(w, math.Max(fa, fb))
	case OpFMin:
		return floatToBits(w, math.Min(fa, fb))
	case OpFAbs:
		return floatToBits(w, math.Abs(fa))
	case OpFNeg:
		return floatToBits(w, -fa)
	case OpFLt:
		if fa < fb {
			return 1
		}
		return 0
	case OpFLe:
		if fa <= fb {
			return 1
		}
		return 0
	case OpItoF:
		return floatToBits(w, float64(int64(a)))
	case OpFtoI:
		return uint64(int64(fa))
	}
	panic(fmt.Sprintf("EvalFP: not an FP op: %s", op.Name()))
}

// VecArgs carries the operand values of a vector ALU operation.
type VecArgs struct {
	A, B, C VecVal
	Scalar  uint64 // FP or integer scalar operand bits (dup)
	Pred    PredVal
	Lanes   int // architected lane count for the operating width
	W       arch.ElemWidth
	// Merge, when non-nil, supplies the old destination value for
	// destructive operations: result lanes beyond the active count keep its
	// lanes (predicate-merging semantics; this is what makes UVE's
	// automatic out-of-bounds lane disabling act as an identity in
	// accumulator patterns like vectormax u5,u5,u0 — paper F5).
	Merge *VecVal
}

// laneCount determines the number of result lanes: the predicate limit
// intersected with every vector operand's valid lane count.
func (a *VecArgs) laneCount(ops ...VecVal) int {
	n := a.Pred.Limit(a.Lanes)
	for _, v := range ops {
		if v.L != nil && v.N < n {
			n = v.N
		}
	}
	if n < 0 {
		n = 0
	}
	return n
}

// EvalVecALU computes a vector ALU result. Lanes beyond the computed count
// are absent (zeroing predication; the baselines' predicated stores use the
// same predicate so trimmed lanes are never observable, and UVE chunks carry
// their own lane counts).
func EvalVecALU(op Op, args VecArgs) VecVal {
	w := args.W
	switch op {
	case OpVDup, OpVDupX:
		out := NewVec(w, args.Pred.Limit(args.Lanes))
		for i := range out.L {
			out.L[i] = args.Scalar
		}
		return out
	case OpVMove:
		out := args.A.Clone()
		if n := args.Pred.Limit(args.Lanes); out.N > n {
			out.N, out.L = n, out.L[:n]
		}
		return out
	case OpVExtract:
		return VecFrom(w, []uint64{args.A.Lane(int(args.Scalar))})
	case OpVBcast:
		out := NewVec(w, args.Pred.Limit(args.Lanes))
		for i := range out.L {
			out.L[i] = args.A.Lane(0)
		}
		return out
	}

	// frame prepares the output vector: active lanes are computed, lanes
	// beyond them merge the old destination when one is supplied.
	frame := func(n int) VecVal {
		if args.Merge == nil || args.Merge.N <= n {
			return NewVec(w, n)
		}
		out := args.Merge.Clone()
		return out
	}
	fbin := func(f func(x, y float64) float64, a, b VecVal) VecVal {
		n := args.laneCount(a, b)
		out := frame(n)
		for i := 0; i < n; i++ {
			out.L[i] = floatToBits(w, f(a.F(i), b.F(i)))
		}
		return out
	}
	ibin := func(f func(x, y int64) int64, a, b VecVal) VecVal {
		n := args.laneCount(a, b)
		out := frame(n)
		for i := 0; i < n; i++ {
			out.L[i] = Truncate(w, uint64(f(SignExtend(w, a.Lane(i)), SignExtend(w, b.Lane(i)))))
		}
		return out
	}

	switch op {
	case OpVFAdd:
		return fbin(func(x, y float64) float64 { return x + y }, args.A, args.B)
	case OpVFSub:
		return fbin(func(x, y float64) float64 { return x - y }, args.A, args.B)
	case OpVFMul:
		return fbin(func(x, y float64) float64 { return x * y }, args.A, args.B)
	case OpVFDiv:
		return fbin(func(x, y float64) float64 { return x / y }, args.A, args.B)
	case OpVFMax:
		return fbin(math.Max, args.A, args.B)
	case OpVFMin:
		return fbin(math.Min, args.A, args.B)
	case OpVFSqrt:
		n := args.laneCount(args.A)
		out := frame(n)
		for i := 0; i < n; i++ {
			out.L[i] = floatToBits(w, math.Sqrt(args.A.F(i)))
		}
		return out
	case OpVFMla, OpVFMulAdd:
		// OpVFMla: dst = C + A·B (C is the old dst); OpVFMulAdd: dst = A·B + C.
		n := args.laneCount(args.A, args.B, args.C)
		out := frame(n)
		for i := 0; i < n; i++ {
			if w == arch.W4 {
				out.L[i] = floatToBits(w, float64(float32(args.A.F(i))*float32(args.B.F(i))+float32(args.C.F(i))))
			} else {
				out.L[i] = floatToBits(w, args.A.F(i)*args.B.F(i)+args.C.F(i))
			}
		}
		return out
	case OpVAdd:
		return ibin(func(x, y int64) int64 { return x + y }, args.A, args.B)
	case OpVSub:
		return ibin(func(x, y int64) int64 { return x - y }, args.A, args.B)
	case OpVMul:
		return ibin(func(x, y int64) int64 { return x * y }, args.A, args.B)
	case OpVMax:
		return ibin(func(x, y int64) int64 {
			if x > y {
				return x
			}
			return y
		}, args.A, args.B)
	case OpVMin:
		return ibin(func(x, y int64) int64 {
			if x < y {
				return x
			}
			return y
		}, args.A, args.B)
	case OpVAnd:
		return ibin(func(x, y int64) int64 { return x & y }, args.A, args.B)
	case OpVOr:
		return ibin(func(x, y int64) int64 { return x | y }, args.A, args.B)
	case OpVXor:
		return ibin(func(x, y int64) int64 { return x ^ y }, args.A, args.B)
	}
	panic(fmt.Sprintf("EvalVecALU: not a vector ALU op: %s", op.Name()))
}

// EvalVecHoriz reduces a vector's valid lanes to a single value (raw bits).
// Reducing zero lanes yields the operation's identity (0 for add, and the
// first-lane default of 0 for max/min, matching hardware's behavior on an
// all-false predicate).
func EvalVecHoriz(op Op, w arch.ElemWidth, v VecVal) uint64 {
	switch op {
	case OpVFAddV, OpVFAddVF:
		acc := 0.0
		if w == arch.W4 {
			acc32 := float32(0)
			for i := 0; i < v.N; i++ {
				acc32 += float32(v.F(i))
			}
			return floatToBits(w, float64(acc32))
		}
		for i := 0; i < v.N; i++ {
			acc += v.F(i)
		}
		return floatToBits(w, acc)
	case OpVFMaxV, OpVFMaxVF:
		if v.N == 0 {
			return 0
		}
		acc := v.F(0)
		for i := 1; i < v.N; i++ {
			acc = math.Max(acc, v.F(i))
		}
		return floatToBits(w, acc)
	case OpVFMinV, OpVFMinVF:
		if v.N == 0 {
			return 0
		}
		acc := v.F(0)
		for i := 1; i < v.N; i++ {
			acc = math.Min(acc, v.F(i))
		}
		return floatToBits(w, acc)
	}
	panic(fmt.Sprintf("EvalVecHoriz: not a horizontal op: %s", op.Name()))
}

// EvalWhilelt computes the whilelt predicate: active lanes l where
// idx + l < n, clamped to the architected lane count.
func EvalWhilelt(idx, n uint64, lanes int) PredVal {
	remaining := int64(n) - int64(idx)
	switch {
	case remaining <= 0:
		return PredVal{Active: 0}
	case remaining >= int64(lanes):
		return PredVal{Active: lanes}
	default:
		return PredVal{Active: int(remaining)}
	}
}
