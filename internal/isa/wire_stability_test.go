package isa

import "testing"

// opNames pins every opcode's numeric value by position: opNames[i] is the
// mnemonic of Op(i). The wire format (internal/wire) stores opcodes as raw
// numbers, so inserting an opcode mid-table — instead of before opMax —
// would silently re-interpret every existing blob. This test turns that
// mistake into a diff: new opcodes append here, never splice.
var opNames = []string{
	"invalid",
	"nop", "halt", "li", "mv", "add", "sub", "mul", "div", "rem",
	"addi", "slli", "srli", "andi", "and", "or", "xor", "slt", "slti",
	"j", "beq", "bne", "blt", "bge",
	"load", "store", "fload", "fstore",
	"fli", "fmv", "fadd", "fsub", "fmul", "fdiv", "fsqrt", "fmadd",
	"fmax", "fmin", "fabs", "fneg", "flt", "fle", "itof", "ftoi",
	"vload", "vstore", "vloadg", "vstoreg", "vdup", "vdupx", "vmove",
	"vfadd", "vfsub", "vfmul", "vfdiv", "vfsqrt", "vfmax", "vfmin",
	"vfmla", "vfmuladd",
	"vadd", "vsub", "vmul", "vmax", "vmin", "vand", "vor", "vxor",
	"vfaddv", "vfmaxv", "vfminv", "vfaddvf", "vfmaxvf", "vfminvf",
	"vextract", "vbcast",
	"whilelt", "ptrue", "pnot", "b.first", "b.none", "incvl", "getvl",
	"ss.cfg", "ss.setvl", "ss.suspend", "ss.resume", "ss.stop", "ss.force",
	"so.b.nend", "so.b.end", "so.b.ndc", "so.b.dc",
}

func TestOpcodeNumberingStable(t *testing.T) {
	if NumOps != len(opNames) {
		t.Fatalf("NumOps = %d, golden table has %d: opcodes must be appended to both, never spliced", NumOps, len(opNames))
	}
	for i, want := range opNames {
		if got := Op(i).Name(); got != want {
			t.Errorf("Op(%d).Name() = %q, want %q: opcode numbering shifted", i, got, want)
		}
	}
}

func TestOpValid(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid must not be valid")
	}
	if Op(NumOps).Valid() || Op(NumOps+100).Valid() {
		t.Error("opcodes past the table must not be valid")
	}
	for i := 1; i < NumOps; i++ {
		if !Op(i).Valid() {
			t.Errorf("Op(%d) (%s) must be valid", i, Op(i).Name())
		}
	}
}

// TestKindNumberingStable pins the pipeline-kind values that size dense
// per-kind stats tables.
func TestKindNumberingStable(t *testing.T) {
	kinds := map[Kind]uint8{
		KindNop: 0, KindIntALU: 1, KindFPALU: 2, KindVecALU: 3,
		KindLoad: 4, KindStore: 5, KindBranch: 6, KindStreamCfg: 7,
		KindStreamCtl: 8, KindCount: 9,
	}
	for k, want := range kinds {
		if uint8(k) != want {
			t.Errorf("kind %s = %d, want %d", k, uint8(k), want)
		}
	}
}

// TestRegClassNumberingStable pins the register-class values the wire
// format packs into its class<<5|n register bytes.
func TestRegClassNumberingStable(t *testing.T) {
	classes := map[RegClass]uint8{
		ClassNone: 0, ClassInt: 1, ClassFP: 2, ClassVec: 3, ClassPred: 4,
	}
	for c, want := range classes {
		if uint8(c) != want {
			t.Errorf("register class %s = %d, want %d", c, uint8(c), want)
		}
	}
	if NumIntRegs != 32 || NumFPRegs != 32 || NumVecRegs != 32 || NumPredRegs != 16 {
		t.Error("register file sizes changed: the 5-bit register packing no longer fits")
	}
}
