package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs                submit one spec or {"jobs": [...]}; ?wait=1
//	                             blocks until settled, ?cancel_on_disconnect=1
//	                             cancels execution if the waiting client goes
//	                             away
//	GET  /v1/jobs/{id}           job status (+ report when done)
//	GET  /v1/jobs/{id}/report    raw report document bytes (the exact stored
//	                             payload — byte-identical across clients)
//	GET  /v1/jobs/{id}/stream    NDJSON progress snapshots, then the final
//	                             status line
//	POST /v1/jobs/{id}/cancel    abort the job's execution
//	GET  /v1/stats               store/runner/limiter counters
//	GET  /v1/healthz             {"status": "ok" | "draining"}
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	return mux
}

// apiError is the JSON error body. Retriable errors (drain, full queue,
// rate limit) tell the client the same request can succeed later.
type apiError struct {
	Error     string `json:"error"`
	Retriable bool   `json:"retriable,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, retriable bool, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...), Retriable: retriable})
}

// clientKey identifies the caller for rate limiting: the X-UVE-Client
// header when present (lets multiplexed test clients separate), else the
// remote host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-UVE-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// jobJSON is the wire shape of one job's status. Report embeds the stored
// payload verbatim (json.RawMessage round-trips byte-exactly).
type jobJSON struct {
	ID        string          `json:"id"`
	State     JobState        `json:"state"`
	FromStore bool            `json:"from_store,omitempty"`
	Error     string          `json:"error,omitempty"`
	Retriable bool            `json:"retriable,omitempty"`
	Report    json.RawMessage `json:"report,omitempty"`
}

func toJSON(st JobStatus) jobJSON {
	return jobJSON{
		ID: st.ID, State: st.State, FromStore: st.FromStore,
		Error: st.Error, Retriable: st.Retriable, Report: st.Payload,
	}
}

// submitBody accepts either a single JobSpec or a {"jobs": [...]} batch.
type submitBody struct {
	Jobs []JobSpec `json:"jobs"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.limit.allow(clientKey(r), time.Now()) {
		writeErr(w, http.StatusTooManyRequests, true, "rate limit exceeded")
		return
	}
	if s.Draining() {
		writeErr(w, http.StatusServiceUnavailable, true, "server draining")
		return
	}
	var raw json.RawMessage
	if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
		writeErr(w, http.StatusBadRequest, false, "bad request body: %v", err)
		return
	}
	var body submitBody
	if err := json.Unmarshal(raw, &body); err != nil || body.Jobs == nil {
		// Not a batch envelope: try a single spec.
		var spec JobSpec
		if err := json.Unmarshal(raw, &spec); err != nil || spec.Kernel == "" {
			writeErr(w, http.StatusBadRequest, false, "body must be a job spec or {\"jobs\": [...]}")
			return
		}
		body.Jobs = []JobSpec{spec}
	}
	if len(body.Jobs) == 0 {
		writeErr(w, http.StatusBadRequest, false, "empty job list")
		return
	}

	ids := make([]string, 0, len(body.Jobs))
	for i, spec := range body.Jobs {
		id, err := s.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusBadRequest, false, "job %d: %v", i, err)
			return
		}
		ids = append(ids, id)
	}

	wait := r.URL.Query().Get("wait") != ""
	cancelOnDisconnect := r.URL.Query().Get("cancel_on_disconnect") != ""
	out := make([]jobJSON, 0, len(ids))
	for _, id := range ids {
		var st JobStatus
		if wait {
			st, _ = s.Wait(r.Context(), id)
			if r.Context().Err() != nil && cancelOnDisconnect &&
				st.State != StateDone && st.State != StateFailed {
				// The waiting client is gone and asked for its jobs to die
				// with it: cancel and report the final state.
				s.Cancel(id)
				st, _ = s.Wait(context.Background(), id)
			}
		} else {
			st, _ = s.Status(id)
		}
		out = append(out, toJSON(st))
	}
	writeJSON(w, http.StatusOK, struct {
		Jobs []jobJSON `json:"jobs"`
	}{out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, false, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, toJSON(st))
}

// handleReport serves the raw stored payload — the byte-identity surface.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	st, ok := s.Status(r.PathValue("id"))
	if !ok {
		writeErr(w, http.StatusNotFound, false, "unknown job %q", r.PathValue("id"))
		return
	}
	if st.State != StateDone {
		writeErr(w, http.StatusConflict, st.State == StateQueued || st.State == StateRunning,
			"job %s is %s, not done", st.ID, st.State)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(st.Payload)
}

// handleStream emits NDJSON: progress snapshots at the polling interval
// (traced jobs only — untraced jobs go straight to the final line), then
// one final line with the settled status and report.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var e *execution
	if ok {
		e = j.exec
	}
	s.mu.Unlock()
	if !ok {
		writeErr(w, http.StatusNotFound, false, "unknown job %q", id)
		return
	}

	interval := 50 * time.Millisecond
	if ms := r.URL.Query().Get("interval_ms"); ms != "" {
		var v int64
		if _, err := fmt.Sscanf(ms, "%d", &v); err == nil && v > 0 {
			interval = time.Duration(v) * time.Millisecond
		}
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	type streamLine struct {
		Progress *Snapshot `json:"progress,omitempty"`
		Final    *jobJSON  `json:"final,omitempty"`
	}
	emit := func(l streamLine) {
		_ = enc.Encode(l)
		if flusher != nil {
			flusher.Flush()
		}
	}

	if e != nil {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
	poll:
		for {
			select {
			case <-e.done:
				break poll
			case <-r.Context().Done():
				if r.URL.Query().Get("cancel_on_disconnect") != "" {
					s.Cancel(id)
				}
				return
			case <-ticker.C:
				if e.progress != nil {
					snap := e.progress.snapshot()
					emit(streamLine{Progress: &snap})
				}
			}
		}
	}
	st, _ := s.Status(id)
	fin := toJSON(st)
	emit(streamLine{Final: &fin})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.Cancel(id) {
		writeErr(w, http.StatusNotFound, false, "unknown job %q", id)
		return
	}
	st, _ := s.Status(id)
	writeJSON(w, http.StatusOK, toJSON(st))
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.Draining() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{status})
}
