package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// newServer opens a store over dir and starts a server plus its HTTP
// front-end. Both are torn down with the test.
func newServer(t *testing.T, dir string, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cfg.Store = st
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

type jobResp struct {
	ID        string          `json:"id"`
	State     string          `json:"state"`
	FromStore bool            `json:"from_store"`
	Error     string          `json:"error"`
	Retriable bool            `json:"retriable"`
	Report    json.RawMessage `json:"report"`
}

type submitResp struct {
	Jobs []jobResp `json:"jobs"`
}

// postJobs submits a batch as one client and decodes the response.
func postJobs(t *testing.T, url, client string, specs []serve.JobSpec, query string) (int, submitResp, []byte) {
	t.Helper()
	body, err := json.Marshal(struct {
		Jobs []serve.JobSpec `json:"jobs"`
	}{specs})
	if err != nil {
		t.Fatalf("marshal specs: %v", err)
	}
	req, err := http.NewRequest("POST", url+"/v1/jobs"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	req.Header.Set("X-UVE-Client", client)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	var sr submitResp
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(buf.Bytes(), &sr); err != nil {
			t.Fatalf("decode response: %v\n%s", err, buf.Bytes())
		}
	}
	return resp.StatusCode, sr, buf.Bytes()
}

// getReport fetches the raw report payload for a done job.
func getReport(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read report: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report %s: status %d: %s", id, resp.StatusCode, buf.Bytes())
	}
	return buf.Bytes()
}

func getStats(t *testing.T, url string) serve.Stats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

// matrix is the shared kernel×variant×size job set the headline and
// restart tests submit.
func matrix() []serve.JobSpec {
	return []serve.JobSpec{
		{Kernel: "C", Variant: "uve", Size: 4096},
		{Kernel: "C", Variant: "sve", Size: 4096},
		{Kernel: "A", Variant: "uve", Size: 4096},
		{Kernel: "C", Variant: "uve", Size: 8192},
	}
}

// TestConcurrentClientsByteIdentical is the headline: N concurrent
// clients submit the same kernel×variant×size matrix and every client
// receives byte-identical report documents for each matrix cell, while
// the server simulates each unique cell exactly once. A follow-up wave
// is then served entirely from the store.
func TestConcurrentClientsByteIdentical(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), serve.Config{Workers: 4})
	specs := matrix()

	const clients = 4
	reports := make([][][]byte, clients) // [client][matrix cell]
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			status, sr, raw := postJobs(t, ts.URL, fmt.Sprintf("client-%d", c), specs, "?wait=1")
			if status != http.StatusOK {
				errs <- fmt.Errorf("client %d: status %d: %s", c, status, raw)
				return
			}
			if len(sr.Jobs) != len(specs) {
				errs <- fmt.Errorf("client %d: %d jobs, want %d", c, len(sr.Jobs), len(specs))
				return
			}
			got := make([][]byte, len(specs))
			for i, j := range sr.Jobs {
				if j.State != "done" {
					errs <- fmt.Errorf("client %d job %s: state %s (%s)", c, j.ID, j.State, j.Error)
					return
				}
				got[i] = getReport(t, ts.URL, j.ID)
			}
			reports[c] = got
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	for i := range specs {
		for c := 1; c < clients; c++ {
			if !bytes.Equal(reports[0][i], reports[c][i]) {
				t.Errorf("matrix cell %d: client %d report differs from client 0:\n%s\nvs\n%s",
					i, c, reports[c][i], reports[0][i])
			}
		}
		for j := i + 1; j < len(specs); j++ {
			if bytes.Equal(reports[0][i], reports[0][j]) {
				t.Errorf("matrix cells %d and %d produced identical reports", i, j)
			}
		}
		if !bytes.Contains(reports[0][i], []byte(`"schema_version"`)) {
			t.Errorf("cell %d report missing schema_version:\n%s", i, reports[0][i])
		}
	}

	stats := getStats(t, ts.URL)
	if stats.Runner.Simulated != len(specs) {
		t.Errorf("Simulated = %d, want %d (one per unique matrix cell)",
			stats.Runner.Simulated, len(specs))
	}

	// A second wave after everything settled must come from the store.
	_, sr, _ := postJobs(t, ts.URL, "late-client", specs, "?wait=1")
	for i, j := range sr.Jobs {
		if j.State != "done" || !j.FromStore {
			t.Errorf("wave-2 job %d: state=%s from_store=%v, want done from store", i, j.State, j.FromStore)
		}
		if got := getReport(t, ts.URL, j.ID); !bytes.Equal(got, reports[0][i]) {
			t.Errorf("wave-2 cell %d report differs from wave 1", i)
		}
	}
	stats = getStats(t, ts.URL)
	if stats.StoreHits < len(specs) {
		t.Errorf("store hits = %d after wave 2, want >= %d", stats.StoreHits, len(specs))
	}
	if stats.Runner.Simulated != len(specs) {
		t.Errorf("Simulated = %d after wave 2, want still %d", stats.Runner.Simulated, len(specs))
	}
}

// TestRestartServesFromStore restarts the daemon (new Server, new Store
// handle, same directory) and asserts the full matrix is served from
// disk, byte-identical, with a positive hit rate.
func TestRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	specs := matrix()

	_, ts1 := newServer(t, dir, serve.Config{Workers: 4})
	_, sr, raw := postJobs(t, ts1.URL, "gen", specs, "?wait=1")
	if len(sr.Jobs) != len(specs) {
		t.Fatalf("wave 1: %d jobs, want %d: %s", len(sr.Jobs), len(specs), raw)
	}
	first := make([][]byte, len(specs))
	for i, j := range sr.Jobs {
		if j.State != "done" {
			t.Fatalf("wave 1 job %s: state %s (%s)", j.ID, j.State, j.Error)
		}
		first[i] = getReport(t, ts1.URL, j.ID)
	}
	ts1.Close()

	// "Restart": a fresh server over the same directory.
	_, ts2 := newServer(t, dir, serve.Config{Workers: 4})
	_, sr2, _ := postJobs(t, ts2.URL, "gen", specs, "?wait=1")
	for i, j := range sr2.Jobs {
		if j.State != "done" {
			t.Fatalf("restart job %s: state %s (%s)", j.ID, j.State, j.Error)
		}
		if !j.FromStore {
			t.Errorf("restart job %d not served from store", i)
		}
		if got := getReport(t, ts2.URL, j.ID); !bytes.Equal(got, first[i]) {
			t.Errorf("restart cell %d: report differs across restart:\n%s\nvs\n%s", i, got, first[i])
		}
	}
	stats := getStats(t, ts2.URL)
	if stats.StoreHits <= 0 {
		t.Errorf("restart store hit rate = %d, want > 0", stats.StoreHits)
	}
	if stats.Runner.Simulated != 0 {
		t.Errorf("restart Simulated = %d, want 0", stats.Runner.Simulated)
	}
}

// waitState polls a job until it reaches any of the wanted states.
func waitState(t *testing.T, s *serve.Server, id string, want ...serve.JobState) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st, ok := s.Status(id)
		if !ok {
			// Submission may still be in flight (async HTTP clients).
			time.Sleep(time.Millisecond)
			continue
		}
		for _, w := range want {
			if st.State == w {
				return st
			}
		}
		time.Sleep(time.Millisecond)
	}
	st, _ := s.Status(id)
	t.Fatalf("job %s stuck in %s, wanted one of %v", id, st.State, want)
	return serve.JobStatus{}
}

// TestDrainFinishesInflightRejectsQueued: with one worker, the running
// job completes during drain while queued jobs are rejected with a
// retriable status, and post-drain submissions are rejected too.
func TestDrainFinishesInflightRejectsQueued(t *testing.T) {
	s, _ := newServer(t, t.TempDir(), serve.Config{Workers: 1, QueueLen: 8})

	running, err := s.Submit(serve.JobSpec{Kernel: "C", Variant: "uve", Size: 1 << 17})
	if err != nil {
		t.Fatalf("submit running job: %v", err)
	}
	waitState(t, s, running, serve.StateRunning)

	// The single worker is busy, so these stay queued.
	var queued []string
	for _, spec := range []serve.JobSpec{
		{Kernel: "A", Variant: "uve", Size: 2048},
		{Kernel: "C", Variant: "sve", Size: 2048},
	} {
		id, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit queued job: %v", err)
		}
		queued = append(queued, id)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	s.Drain(ctx)

	st, _ := s.Status(running)
	if st.State != serve.StateDone {
		t.Errorf("in-flight job: state %s (%s), want done", st.State, st.Error)
	}
	if len(st.Payload) == 0 {
		t.Errorf("in-flight job finished without a payload")
	}
	for _, id := range queued {
		st, _ := s.Status(id)
		if st.State != serve.StateRejected {
			t.Errorf("queued job %s: state %s, want rejected", id, st.State)
		}
		if !st.Retriable {
			t.Errorf("queued job %s rejection not marked retriable", id)
		}
	}

	id, err := s.Submit(serve.JobSpec{Kernel: "C", Variant: "uve", Size: 1024})
	if err != nil {
		t.Fatalf("post-drain submit: %v", err)
	}
	st, _ = s.Status(id)
	if st.State != serve.StateRejected || !st.Retriable {
		t.Errorf("post-drain job: state=%s retriable=%v, want rejected retriable", st.State, st.Retriable)
	}
}

// TestCancelOnDisconnect: a waiting client that goes away with
// cancel_on_disconnect set kills its job, and the runner evicts the
// canceled memo entry so a resubmission re-executes.
func TestCancelOnDisconnect(t *testing.T) {
	s, ts := newServer(t, t.TempDir(), serve.Config{Workers: 1})

	spec := serve.JobSpec{Kernel: "C", Variant: "uve", Size: 1 << 19}
	body, _ := json.Marshal(spec)
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST",
		ts.URL+"/v1/jobs?wait=1&cancel_on_disconnect=1", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Deterministic first-job ID on a fresh server.
	const id = "job-1"
	waitState(t, s, id, serve.StateRunning, serve.StateDone)
	if st, _ := s.Status(id); st.State == serve.StateDone {
		t.Skip("simulation finished before the client could disconnect")
	}
	cancel()
	<-done

	st := waitState(t, s, id, serve.StateCanceled, serve.StateDone)
	if st.State != serve.StateCanceled {
		t.Skipf("job settled %s before cancellation took effect", st.State)
	}
	if !strings.Contains(st.Error, "canceled") {
		t.Errorf("canceled job error = %q, want mention of cancellation", st.Error)
	}
	if got := getStats(t, ts.URL); got.Runner.CancelEvicted < 1 {
		t.Errorf("CancelEvicted = %d, want >= 1", got.Runner.CancelEvicted)
	}
}

// TestRateLimit: a fixed per-client allowance (rate 0, burst 2) rejects
// the third submission from one client with 429/retriable while other
// clients are unaffected.
func TestRateLimit(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), serve.Config{Workers: 1, Burst: 2})

	spec := []serve.JobSpec{{Kernel: "C", Variant: "uve", Size: 1024, Fidelity: "functional"}}
	for i := 0; i < 2; i++ {
		if status, _, raw := postJobs(t, ts.URL, "greedy", spec, ""); status != http.StatusOK {
			t.Fatalf("submission %d: status %d: %s", i, status, raw)
		}
	}
	status, _, raw := postJobs(t, ts.URL, "greedy", spec, "")
	if status != http.StatusTooManyRequests {
		t.Fatalf("third submission: status %d, want 429: %s", status, raw)
	}
	var apiErr struct {
		Error     string `json:"error"`
		Retriable bool   `json:"retriable"`
	}
	if err := json.Unmarshal(raw, &apiErr); err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if !apiErr.Retriable {
		t.Errorf("rate-limit rejection not marked retriable: %s", raw)
	}

	if status, _, raw := postJobs(t, ts.URL, "modest", spec, ""); status != http.StatusOK {
		t.Errorf("other client: status %d, want 200: %s", status, raw)
	}
	if got := getStats(t, ts.URL); got.RateLimited != 1 {
		t.Errorf("rate_limited = %d, want 1", got.RateLimited)
	}
}

// TestStreamProgress: a traced job streams NDJSON progress snapshots
// with nondecreasing cycles, then a final line carrying the settled
// status and the report document (with the stall section).
func TestStreamProgress(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), serve.Config{Workers: 1})

	specs := []serve.JobSpec{{Kernel: "C", Variant: "uve", Size: 1 << 18, Trace: true}}
	status, sr, raw := postJobs(t, ts.URL, "streamer", specs, "")
	if status != http.StatusOK || len(sr.Jobs) != 1 {
		t.Fatalf("submit: status %d: %s", status, raw)
	}
	id := sr.Jobs[0].ID

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/stream?interval_ms=2")
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}

	type streamLine struct {
		Progress *struct {
			Cycle     int64 `json:"cycle"`
			Committed int64 `json:"committed"`
		} `json:"progress"`
		Final *jobResp `json:"final"`
	}
	var (
		progressLines int
		lastCycle     int64
		final         *jobResp
	)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var l streamLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		switch {
		case l.Progress != nil:
			progressLines++
			if l.Progress.Cycle < lastCycle {
				t.Errorf("progress cycle went backwards: %d after %d", l.Progress.Cycle, lastCycle)
			}
			lastCycle = l.Progress.Cycle
		case l.Final != nil:
			final = l.Final
		default:
			t.Errorf("stream line with neither progress nor final: %s", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if final == nil {
		t.Fatal("stream ended without a final line")
	}
	if final.State != "done" {
		t.Fatalf("final state = %s (%s), want done", final.State, final.Error)
	}
	if progressLines == 0 {
		t.Error("no progress lines before the final line")
	}
	if !bytes.Contains(final.Report, []byte(`"uveserve"`)) ||
		!bytes.Contains(final.Report, []byte(`"stalls"`)) {
		t.Errorf("final report missing tool/stall section:\n%s", final.Report)
	}
}

// TestSubmitValidation rejects malformed specs with 400 and a
// non-retriable error body.
func TestSubmitValidation(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), serve.Config{Workers: 1})

	cases := []struct {
		name string
		spec serve.JobSpec
	}{
		{"unknown kernel", serve.JobSpec{Kernel: "ZZZ", Variant: "uve"}},
		{"unknown variant", serve.JobSpec{Kernel: "C", Variant: "avx512"}},
		{"negative size", serve.JobSpec{Kernel: "C", Variant: "uve", Size: -1}},
		{"functional trace", serve.JobSpec{Kernel: "C", Variant: "uve", Fidelity: "functional", Trace: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, raw := postJobs(t, ts.URL, "bad", []serve.JobSpec{tc.spec}, "")
			if status != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", status, raw)
			}
			var apiErr struct {
				Retriable bool `json:"retriable"`
			}
			if err := json.Unmarshal(raw, &apiErr); err == nil && apiErr.Retriable {
				t.Errorf("validation error marked retriable: %s", raw)
			}
		})
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("not json"))
	if err != nil {
		t.Fatalf("POST garbage: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatalf("GET unknown job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestSingleSpecSubmitAndHealthz covers the non-batch body shape and the
// health endpoint.
func TestSingleSpecSubmitAndHealthz(t *testing.T) {
	_, ts := newServer(t, t.TempDir(), serve.Config{Workers: 1})

	body, _ := json.Marshal(serve.JobSpec{Kernel: "C", Variant: "uve", Size: 1024})
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST single spec: %v", err)
	}
	var sr submitResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	resp.Body.Close()
	if len(sr.Jobs) != 1 || sr.Jobs[0].State != "done" {
		t.Fatalf("single-spec submit: %+v", sr)
	}

	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatalf("GET healthz: %v", err)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	resp.Body.Close()
	if hz.Status != "ok" {
		t.Errorf("healthz = %q, want ok", hz.Status)
	}
}
