package serve

import (
	"sync"

	"repro/internal/trace"
)

// progress is a thread-safe trace.Recorder for streamed job progress: it
// wraps a stall-attribution Collector (which is single-goroutine by
// design) in a mutex so the simulating worker can emit while HTTP stream
// handlers snapshot. Point events are not retained (ring size 0) — the
// stream wants "how far along and why", not the event firehose.
type progress struct {
	mu    sync.Mutex
	col   *trace.Collector
	cycle int64
	insts int64
}

func newProgress() *progress {
	return &progress{col: trace.NewCollector(0, 0)}
}

// Enabled implements trace.Recorder.
func (p *progress) Enabled() bool { return true }

// Emit implements trace.Recorder.
func (p *progress) Emit(e trace.Event) {
	p.mu.Lock()
	p.col.Emit(e)
	if e.Cycle > p.cycle {
		p.cycle = e.Cycle
	}
	if e.Kind == trace.EvCommit {
		p.insts++
	}
	p.mu.Unlock()
}

// Snapshot is one streamed progress sample.
type Snapshot struct {
	Cycle     int64 `json:"cycle"`
	Committed int64 `json:"committed"`
}

// snapshot samples the current cycle/commit counts.
func (p *progress) snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Snapshot{Cycle: p.cycle, Committed: p.insts}
}

// breakdown folds the attribution into the payload's stall section:
// per-class cycle counts (zero classes and the post-halt drain class
// omitted, matching uvebench -stalls) plus the drain count.
func (p *progress) breakdown() (map[string]int64, int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	tot := p.col.Attribution().Totals()
	out := make(map[string]int64)
	for cl := trace.StallClass(0); cl < trace.ClassCount; cl++ {
		if cl == trace.ClassDrain || tot[cl] == 0 {
			continue
		}
		out[cl.String()] = tot[cl]
	}
	return out, tot[trace.ClassDrain]
}
