package serve

import (
	"sync"
	"time"
)

// limiter is a per-client token bucket: each client key (X-UVE-Client
// header, falling back to the remote host) gets burst tokens refilled at
// rate per second. Submission endpoints spend one token per request; an
// empty bucket is a 429 with a retriable body. Rate 0 with a positive
// burst is a fixed, non-refilling allowance (deterministic tests use it);
// rate and burst both <= 0 disables limiting entirely.
type limiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
	rejects int
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newLimiter(rate, burst float64) *limiter {
	if burst <= 0 && rate > 0 {
		burst = rate
		if burst < 1 {
			burst = 1
		}
	}
	return &limiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

func (l *limiter) enabled() bool { return l.rate > 0 || l.burst > 0 }

// allow spends one token from the client's bucket, reporting whether the
// request may proceed.
func (l *limiter) allow(client string, now time.Time) bool {
	if !l.enabled() {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[client]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	}
	if l.rate > 0 {
		elapsed := now.Sub(b.last).Seconds()
		if elapsed > 0 {
			b.tokens += elapsed * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
		}
	}
	b.last = now
	if b.tokens < 1 {
		l.rejects++
		return false
	}
	b.tokens--
	return true
}

// rejected returns how many requests the limiter has refused.
func (l *limiter) rejected() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rejects
}
