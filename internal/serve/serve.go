// Package serve implements uveserve: a content-addressed simulation
// service. Clients submit (kernel, variant, size, config) jobs over
// HTTP/JSON; the server fingerprints each job (bench.FingerprintJob — the
// SHA-256 of the built program's canonical wire encoding plus the
// canonical config hash), consults the persistent result store, and only
// simulates what the store has never seen. Completed payloads are
// versioned report.Documents whose bytes are a pure function of the job's
// content — no job IDs, no timestamps — so N clients submitting the same
// matrix receive byte-identical reports, across workers, processes and
// daemon restarts.
//
// Execution is a bounded worker pool over bench.Runner (in-process memo)
// with per-client token-bucket rate limits, per-job timeouts and
// cancellation via uve-style contexts, streamed NDJSON progress for
// traced jobs, and graceful drain: in-flight jobs finish, queued and new
// jobs are rejected with a retriable status.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/cliflags"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/store"
	"repro/internal/wire"
)

// Config sizes the server.
type Config struct {
	// Store persists completed payloads; required.
	Store *store.Store
	// Workers bounds concurrent simulations (<= 0: 2).
	Workers int
	// QueueLen bounds the submitted-but-not-running backlog (<= 0: 64).
	// A full queue rejects submissions with a retriable status.
	QueueLen int
	// JobTimeout bounds each simulation (0 = unbounded). Individual jobs
	// may request a tighter bound via JobSpec.TimeoutMS.
	JobTimeout time.Duration
	// Rate and Burst configure the per-client token bucket (requests/sec
	// and bucket depth). Rate 0 with a positive Burst is a fixed
	// non-refilling allowance; both <= 0 disables limiting.
	Rate  float64
	Burst float64
}

// JobSpec is the client-facing description of one simulation.
type JobSpec struct {
	Kernel   string `json:"kernel"`             // kernel ID or name
	Variant  string `json:"variant"`            // uve, sve, neon
	Size     int    `json:"size,omitempty"`     // 0 = kernel default
	Fidelity string `json:"fidelity,omitempty"` // cycle (default) or functional
	Sanitize string `json:"sanitize,omitempty"` // off (default), on, auto
	// Trace runs the job with a stall-attribution collector: the payload
	// gains the per-class cycle breakdown and the job's progress can be
	// streamed. Traced and untraced runs are distinct store entries.
	Trace bool `json:"trace,omitempty"`
	// TimeoutMS bounds this job's execution (capped by the server's
	// JobTimeout when both are set).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// JobState is a job's lifecycle phase.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
	// StateRejected marks jobs refused before execution (drain, full
	// queue); always retriable.
	StateRejected JobState = "rejected"
)

// Stats is the /v1/stats payload.
type Stats struct {
	Store  store.Stats       `json:"store"`
	Runner bench.RunnerStats `json:"runner"`
	// StoreHits/StoreMisses duplicate the store section at the top level —
	// the serve-smoke greps for these exact names.
	StoreHits   int  `json:"store_hits"`
	StoreMisses int  `json:"store_misses"`
	Jobs        int  `json:"jobs"`
	Draining    bool `json:"draining"`
	RateLimited int  `json:"rate_limited"`
}

// execution is one unique simulation in flight or completed: jobs with
// equal fingerprints share one execution (server-level singleflight on
// top of the runner's memo). done is closed after payload/err are final.
type execution struct {
	key      wire.Hash
	done     chan struct{}
	run      func() // set before enqueue; invoked by one worker
	running  atomic.Bool
	payload  []byte // marshaled report.Document; nil on error
	err      error
	canceled bool
	progress *progress // non-nil for traced jobs
	cancel   context.CancelFunc
}

// job is one client submission.
type job struct {
	id    string
	spec  JobSpec
	state JobState
	exec  *execution // nil for rejected jobs
	// fromStore marks jobs satisfied without simulating.
	fromStore bool
	errMsg    string
}

// Server is the service core, independent of HTTP (http.go adapts it).
type Server struct {
	cfg   Config
	runr  *bench.Runner
	queue chan *execution
	wg    sync.WaitGroup // worker goroutines
	limit *limiter

	mu       sync.Mutex
	jobs     map[string]*job
	execs    map[wire.Hash]*execution
	nextID   int
	draining bool
	inflight sync.WaitGroup // executions accepted into the queue
}

// New builds and starts a server (workers begin draining the queue
// immediately). Close or Drain stops it.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 64
	}
	s := &Server{
		cfg:   cfg,
		runr:  bench.NewRunner(cfg.Workers),
		queue: make(chan *execution, cfg.QueueLen),
		limit: newLimiter(cfg.Rate, cfg.Burst),
		jobs:  make(map[string]*job),
		execs: make(map[wire.Hash]*execution),
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	jobs := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	st := s.cfg.Store.Stats()
	return Stats{
		Store: st, Runner: s.runr.Stats(),
		StoreHits: st.Hits, StoreMisses: st.Misses,
		Jobs: jobs, Draining: draining,
		RateLimited: s.limit.rejected(),
	}
}

// errRetriable marks submission-time refusals the client should retry
// against a healthy (or restarted) daemon.
var errRetriable = errors.New("retriable")

// Submit registers one job. The returned job ID is immediately pollable;
// execution proceeds asynchronously. A store hit completes the job
// without queueing anything. Submission fails with an error wrapping
// errRetriable when the server is draining or the queue is full.
func (s *Server) Submit(spec JobSpec) (string, error) {
	bj, err := s.benchJob(spec)
	if err != nil {
		return "", err
	}
	// A traced job carries its progress recorder in the options BEFORE
	// fingerprinting, so the fingerprint's Traced axis (and the payload's
	// stall section) match what actually runs.
	var prog *progress
	if spec.Trace {
		prog = newProgress()
		bj.Opts.Trace = prog
	}
	key, err := bench.FingerprintJob(bj)
	if err != nil {
		return "", err
	}

	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("job-%d", s.nextID)
	j := &job{id: id, spec: spec}
	s.jobs[id] = j

	if s.draining {
		j.state = StateRejected
		j.errMsg = "server draining"
		s.mu.Unlock()
		return id, nil
	}
	if e, ok := s.execs[key]; ok {
		// Singleflight: join the in-flight (or completed) execution.
		j.exec = e
		j.state = StateQueued
		s.mu.Unlock()
		return id, nil
	}
	s.mu.Unlock()

	// Store lookup outside the server lock (it does disk I/O).
	payload, hit, err := s.cfg.Store.Get(key)
	if err != nil {
		s.mu.Lock()
		j.state = StateFailed
		j.errMsg = err.Error()
		s.mu.Unlock()
		return id, nil
	}
	if hit {
		e := &execution{key: key, done: make(chan struct{}), payload: payload}
		close(e.done)
		s.mu.Lock()
		j.exec = e
		j.state = StateDone
		j.fromStore = true
		s.mu.Unlock()
		return id, nil
	}

	e := &execution{key: key, done: make(chan struct{}), progress: prog}
	ctx, cancel := context.WithCancel(context.Background())
	e.cancel = cancel

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.reject(j, "server draining")
		return id, nil
	}
	if prev, ok := s.execs[key]; ok {
		// Lost a submit race for the same fingerprint; join the winner.
		s.mu.Unlock()
		cancel()
		s.mu.Lock()
		j.exec = prev
		j.state = StateQueued
		s.mu.Unlock()
		return id, nil
	}
	s.execs[key] = e
	j.exec = e
	j.state = StateQueued
	s.inflight.Add(1)
	s.mu.Unlock()

	// Arm the job's execution context now that it is committed.
	e.run = func() { s.execute(ctx, e, bj, spec) }
	select {
	case s.queue <- e:
	default:
		// Queue full: back the registration out and reject retriably.
		s.mu.Lock()
		delete(s.execs, key)
		s.mu.Unlock()
		s.inflight.Done()
		cancel()
		s.reject(j, "queue full")
	}
	return id, nil
}

func (s *Server) reject(j *job, msg string) {
	s.mu.Lock()
	j.state = StateRejected
	j.errMsg = msg
	j.exec = nil
	s.mu.Unlock()
}

// worker drains the execution queue.
func (s *Server) worker() {
	defer s.wg.Done()
	for e := range s.queue {
		e.run()
		s.inflight.Done()
	}
}

// execute runs one unique simulation and finalizes its execution record.
func (s *Server) execute(ctx context.Context, e *execution, bj bench.Job, spec JobSpec) {
	timeout := s.cfg.JobTimeout
	if spec.TimeoutMS > 0 {
		d := time.Duration(spec.TimeoutMS) * time.Millisecond
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	bj.Ctx = ctx
	e.running.Store(true)

	res, err := s.runr.Run(bj)
	s.mu.Lock()
	delete(s.execs, e.key)
	s.mu.Unlock()
	if err != nil {
		var ce *sim.CanceledError
		e.canceled = errors.As(err, &ce)
		e.err = err
		close(e.done)
		return
	}

	doc := report.New("uveserve")
	doc.Serve = &report.Serve{Result: report.FromResult(res, bj.Opts.Fidelity)}
	if e.progress != nil {
		stalls, drain := e.progress.breakdown()
		doc.Serve.Result.Stalls = stalls
		doc.Serve.Result.Drain = drain
	}
	payload, err := doc.Marshal()
	if err != nil {
		e.err = err
		close(e.done)
		return
	}
	// Persisting is best-effort: a full disk costs future hit-rate, not
	// this job's result.
	_ = s.cfg.Store.Put(e.key, payload)
	e.payload = payload
	close(e.done)
}

// benchJob translates a spec into a bench.Job, validating every field.
func (s *Server) benchJob(spec JobSpec) (bench.Job, error) {
	k := kernels.ByID(spec.Kernel)
	if k == nil {
		for _, cand := range kernels.All {
			if cand.Name == spec.Kernel {
				k = cand
				break
			}
		}
	}
	if k == nil {
		return bench.Job{}, fmt.Errorf("unknown kernel %q", spec.Kernel)
	}
	v, err := cliflags.Variant(spec.Variant)
	if err != nil {
		return bench.Job{}, err
	}
	if spec.Size < 0 {
		return bench.Job{}, fmt.Errorf("invalid size %d", spec.Size)
	}
	o := sim.DefaultOptions(v)
	if spec.Fidelity != "" {
		if o.Fidelity, err = sim.ParseFidelity(spec.Fidelity); err != nil {
			return bench.Job{}, err
		}
	}
	if spec.Sanitize != "" {
		if o.Sanitize, err = sim.ParseSanitizeMode(spec.Sanitize); err != nil {
			return bench.Job{}, err
		}
	}
	if spec.Trace {
		if o.Fidelity == sim.Functional {
			return bench.Job{}, fmt.Errorf("functional fidelity cannot record traces")
		}
	}
	return bench.Job{Kernel: k, Variant: v, Size: spec.Size, Opts: &o}, nil
}

// JobStatus is a snapshot of one job for the status API.
type JobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	FromStore bool     `json:"from_store,omitempty"`
	Error     string   `json:"error,omitempty"`
	Retriable bool     `json:"retriable,omitempty"`
	// Payload is the completed report document (done jobs only).
	Payload []byte `json:"-"`
}

// Status snapshots a job, resolving its execution's current state.
func (s *Server) Status(id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return JobStatus{}, false
	}
	st := JobStatus{ID: j.id, State: j.state, FromStore: j.fromStore, Error: j.errMsg}
	e := j.exec
	s.mu.Unlock()

	if st.State == StateRejected {
		st.Retriable = true
		return st, true
	}
	if e == nil {
		return st, true
	}
	select {
	case <-e.done:
		switch {
		case e.canceled:
			st.State = StateCanceled
			st.Error = e.err.Error()
		case e.err != nil:
			st.State = StateFailed
			st.Error = e.err.Error()
		default:
			st.State = StateDone
			st.Payload = e.payload
		}
	default:
		if e.running.Load() {
			st.State = StateRunning
		} else {
			st.State = StateQueued
		}
	}
	return st, true
}

// Wait blocks until the job settles (or ctx is done) and returns its
// final status.
func (s *Server) Wait(ctx context.Context, id string) (JobStatus, bool) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var e *execution
	if ok {
		e = j.exec
	}
	s.mu.Unlock()
	if !ok {
		return JobStatus{}, false
	}
	if e != nil {
		select {
		case <-e.done:
		case <-ctx.Done():
		}
	}
	return s.Status(id)
}

// Cancel aborts a job's execution (all jobs sharing the fingerprint see
// the cancellation; the runner evicts the memo entry so a resubmission
// re-executes).
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	j, ok := s.jobs[id]
	var e *execution
	if ok {
		e = j.exec
	}
	s.mu.Unlock()
	if !ok || e == nil || e.cancel == nil {
		return ok
	}
	e.cancel()
	return true
}

// Progress returns the progress tracker for a traced, executing job
// (nil when the job is untraced, unknown, or already complete-from-store).
func (s *Server) Progress(id string) *progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok && j.exec != nil {
		return j.exec.progress
	}
	return nil
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully stops the server: new submissions are rejected
// retriably, queued-but-unstarted executions are canceled and their jobs
// rejected, in-flight simulations run to completion (bounded by ctx —
// when it expires their contexts are canceled too). Returns when every
// worker has exited.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.draining = true
	s.mu.Unlock()

	// Reject everything still sitting in the queue: its jobs flip to
	// rejected/retriable and their executions end canceled.
	for {
		select {
		case e := <-s.queue:
			s.mu.Lock()
			delete(s.execs, e.key)
			e.err = fmt.Errorf("serve: %w: server draining before execution", errRetriable)
			e.canceled = true
			for _, j := range s.jobs {
				if j.exec == e {
					j.state = StateRejected
					j.errMsg = "server draining"
					j.exec = nil
				}
			}
			s.mu.Unlock()
			close(e.done)
			s.inflight.Done()
		default:
			goto drained
		}
	}
drained:
	// In-flight executions finish on their own — unless the drain context
	// expires first, in which case they are canceled.
	waitDone := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-ctx.Done():
		s.mu.Lock()
		for _, e := range s.execs {
			if e.cancel != nil {
				e.cancel()
			}
		}
		s.mu.Unlock()
		<-waitDone
	}
	close(s.queue)
	s.wg.Wait()
}

// Close is an immediate Drain.
func (s *Server) Close() { s.Drain(context.Background()) }
