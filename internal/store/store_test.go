package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/wire"
)

func key(s string) wire.Hash { return wire.Hash(sha256.Sum256([]byte(s))) }

// TestRoundTrip: Put then Get returns the exact payload; missing keys are
// misses, not errors.
func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	payload := []byte(`{"cycles": 123}`)
	if err := s.Put(k, payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(k)
	if err != nil || !ok {
		t.Fatalf("Get = (%v, %v, %v), want hit", got, ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %q, want %q", got, payload)
	}
	if _, ok, err := s.Get(key("missing")); ok || err != nil {
		t.Fatalf("missing key: ok=%v err=%v, want clean miss", ok, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 0 corrupt", st)
	}
}

// TestRestartPersistence: a second store over the same directory serves
// the first store's entries — the disk is the source of truth.
func TestRestartPersistence(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := s1.Put(key(fmt.Sprint(i)), []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		got, ok, err := s2.Get(key(fmt.Sprint(i)))
		if err != nil || !ok {
			t.Fatalf("entry %d lost across restart (ok=%v err=%v)", i, ok, err)
		}
		if want := fmt.Sprintf("payload-%d", i); string(got) != want {
			t.Fatalf("entry %d: got %q want %q", i, got, want)
		}
	}
	if n, err := s2.Len(); err != nil || n != 8 {
		t.Fatalf("Len = (%d, %v), want 8", n, err)
	}
}

// corruptEntry mutilates the on-disk file for key k in the given way.
func corruptEntry(t *testing.T, s *Store, k wire.Hash, mutate func([]byte) []byte) {
	t.Helper()
	p := s.path(k)
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, mutate(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCrashSafety is the store's headline property: after a simulated
// crash leaves one entry torn, a restarted store rejects and quarantines
// exactly that entry (re-executing it is a Put away) while every other
// entry still hits.
func TestCrashSafety(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bit-flip-payload", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)-sha256.Size-2] ^= 0x40 // inside the payload
			return c
		}},
		{"bad-magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
		{"empty", func([]byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s1, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			torn, intact := key("torn-"+tc.name), key("intact-"+tc.name)
			if err := s1.Put(torn, []byte("torn payload")); err != nil {
				t.Fatal(err)
			}
			if err := s1.Put(intact, []byte("intact payload")); err != nil {
				t.Fatal(err)
			}
			corruptEntry(t, s1, torn, tc.mutate)

			// "Restart": a fresh store over the same directory.
			s2, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok, err := s2.Get(torn); ok || err != nil {
				t.Fatalf("torn entry: ok=%v err=%v, want clean miss", ok, err)
			}
			if st := s2.Stats(); st.Corrupt != 1 {
				t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
			}
			// The torn file is quarantined, not still in place.
			if _, err := os.Stat(s2.path(torn)); !os.IsNotExist(err) {
				t.Fatalf("torn entry still at its committed path (err=%v)", err)
			}
			if _, err := os.Stat(s2.path(torn) + corruptSuffix); err != nil {
				t.Fatalf("quarantined copy missing: %v", err)
			}
			// Re-execution re-commits under the same key and hits again.
			if err := s2.Put(torn, []byte("torn payload")); err != nil {
				t.Fatal(err)
			}
			got, ok, err := s2.Get(torn)
			if err != nil || !ok || string(got) != "torn payload" {
				t.Fatalf("re-put entry: (%q, %v, %v)", got, ok, err)
			}
			// The neighbour was never disturbed.
			got, ok, err = s2.Get(intact)
			if err != nil || !ok || string(got) != "intact payload" {
				t.Fatalf("intact entry: (%q, %v, %v)", got, ok, err)
			}
		})
	}
}

// TestWrongKeyFile: an entry copied under another key's file name fails
// the embedded-key check — content addressing is verified, not assumed.
func TestWrongKeyFile(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ka, kb := key("a"), key("b")
	if err := s.Put(ka, []byte("payload a")); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(s.path(kb)), 0o755); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(s.path(ka))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(kb), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get(kb); ok {
		t.Fatal("entry with mismatched embedded key served as a hit")
	}
	if st := s.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
}

// TestConcurrentPutGet: racing writers and readers over a shared key set
// never observe torn state (run under -race in CI).
func TestConcurrentPutGet(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 8
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				k := key(fmt.Sprint(i % keys))
				want := []byte(fmt.Sprintf("payload-%d", i%keys))
				if err := s.Put(k, want); err != nil {
					t.Error(err)
					return
				}
				got, ok, err := s.Get(k)
				if err != nil || !ok || !bytes.Equal(got, want) {
					t.Errorf("worker %d: Get(%d) = (%q, %v, %v)", w, i%keys, got, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := s.Stats(); st.Corrupt != 0 {
		t.Fatalf("concurrent access produced %d corrupt rejections", st.Corrupt)
	}
}
