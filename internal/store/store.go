// Package store is the persistent, content-addressed result store behind
// uveserve. Entries are keyed by wire.Hash — the SHA-256 of a job's
// canonical program encoding plus its canonical machine/sim configuration
// (bench.FingerprintJob) — so a key names a simulation's *content*, never
// a kernel's name or a process's pointers, and results written by one
// daemon are valid for every future one.
//
// On disk, an entry lives at <root>/<hh>/<hex64>.uvesr (hh = the key's
// first hex byte, sharding directories the way git's object store does):
//
//	magic "UVES" | version uvarint | key 32B | payload-len uvarint |
//	payload | SHA-256(payload) 32B
//
// Entries are written to a temp file in the same directory and atomically
// renamed into place, so a crash can leave a torn temp file but never a
// torn entry under its final name. Reads re-verify everything anyway —
// magic, version, embedded key, length, payload digest — and a file that
// fails any check is quarantined (renamed aside with a .corrupt suffix)
// and reported as a miss, so one torn or bit-rotted entry re-executes
// exactly one simulation and can never poison its neighbours.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/wire"
)

const (
	magic   = "UVES"
	version = 1
	// entrySuffix names committed entries; quarantined files get
	// corruptSuffix appended so they are never read as entries again.
	entrySuffix   = ".uvesr"
	corruptSuffix = ".corrupt"
)

// Stats counts store traffic since Open.
type Stats struct {
	Hits    int `json:"hits"`    // Get found a valid entry
	Misses  int `json:"misses"`  // Get found nothing
	Puts    int `json:"puts"`    // entries committed
	Corrupt int `json:"corrupt"` // entries rejected and quarantined on Get
}

// Store is a content-addressed entry store rooted at one directory.
// All methods are safe for concurrent use; on-disk atomicity comes from
// write-then-rename, in-memory consistency from a counter mutex.
type Store struct {
	root string

	mu    sync.Mutex
	stats Stats
}

// Open roots a store at dir, creating it if needed. Existing entries are
// not scanned — validation happens per-entry on Get, which is what lets a
// store with one torn entry open instantly and heal lazily.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's on-disk root directory.
func (s *Store) Root() string { return s.root }

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// path returns an entry's final on-disk location.
func (s *Store) path(key wire.Hash) string {
	hex := key.String()
	return filepath.Join(s.root, hex[:2], hex+entrySuffix)
}

// encodeEntry renders the versioned on-disk form.
func encodeEntry(key wire.Hash, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+1+len(key)+binary.MaxVarintLen64+len(payload)+sha256.Size)
	out = append(out, magic...)
	out = binary.AppendUvarint(out, version)
	out = append(out, key[:]...)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

// decodeEntry validates every field of an on-disk entry and returns its
// payload. Any deviation — short file, wrong magic or version, embedded
// key mismatch, length mismatch, digest mismatch, trailing bytes — is an
// error; the caller treats all of them as corruption.
func decodeEntry(key wire.Hash, b []byte) ([]byte, error) {
	if len(b) < len(magic) || string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("bad magic")
	}
	b = b[len(magic):]
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("truncated version")
	}
	if v != version {
		return nil, fmt.Errorf("unsupported version %d", v)
	}
	b = b[n:]
	if len(b) < len(key) {
		return nil, fmt.Errorf("truncated key")
	}
	var k wire.Hash
	copy(k[:], b)
	if k != key {
		return nil, fmt.Errorf("embedded key %s does not match file name", k)
	}
	b = b[len(key):]
	plen, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, fmt.Errorf("truncated payload length")
	}
	b = b[n:]
	if uint64(len(b)) != plen+sha256.Size {
		return nil, fmt.Errorf("payload length %d does not match file size", plen)
	}
	payload := b[:plen]
	var want [sha256.Size]byte
	copy(want[:], b[plen:])
	if sha256.Sum256(payload) != want {
		return nil, fmt.Errorf("payload digest mismatch")
	}
	return payload, nil
}

// Get returns the payload stored under key. A missing entry is
// (nil, false, nil); a corrupt one is quarantined, counted, and reported
// as a miss so the caller simply re-executes. Only environmental failures
// (permissions, I/O errors) surface as errors.
func (s *Store) Get(key wire.Hash) ([]byte, bool, error) {
	p := s.path(key)
	b, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: get %s: %w", key, err)
	}
	payload, derr := decodeEntry(key, b)
	if derr != nil {
		// Quarantine, never delete: the bytes stay around for post-mortem,
		// but under a name Get will not read again.
		_ = os.Rename(p, p+corruptSuffix)
		s.count(func(st *Stats) { st.Corrupt++; st.Misses++ })
		return nil, false, nil
	}
	s.count(func(st *Stats) { st.Hits++ })
	return payload, true, nil
}

// Put commits payload under key: temp file in the entry's own shard
// directory, then atomic rename. Re-putting an existing key rewrites it
// (the content-addressed invariant makes both bodies identical anyway).
func (s *Store) Put(key wire.Hash, payload []byte) error {
	p := s.path(key)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(encodeEntry(key, payload)); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	s.count(func(st *Stats) { st.Puts++ })
	return nil
}

// Len walks the store and counts committed entries (quarantined and temp
// files excluded). It is an audit helper, not a hot path.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == entrySuffix {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("store: len: %w", err)
	}
	return n, nil
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	f(&s.stats)
	s.mu.Unlock()
}
