package bench

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// The fault-campaign experiment (`uvebench -exp faults`): every kernel on
// the UVE machine and the SVE baseline runs a grid of seeded deterministic
// fault campaigns, and each campaign's final memory image is checked
// byte-for-byte (FNV-1a digest) against the fault-free run. Injection may
// only change timing; StateOK == false is a resilience bug. The experiment
// is addressable by id but deliberately not part of `-exp all`, whose
// output is byte-stable across releases.

// faultSeeds is the campaign grid: three seeds exercise different
// interleavings of the four injection channels.
var faultSeeds = []uint64{0x11, 0x22, 0x33}

// campaignMaxCycles converts an injection-induced livelock into a
// structured watchdog diagnostic instead of a wedged harness.
const campaignMaxCycles = 100_000_000

// FaultRow is one seeded campaign's measurement.
type FaultRow struct {
	ID      string          `json:"id"`
	Name    string          `json:"name"`
	Variant kernels.Variant `json:"variant"`
	Size    int             `json:"size"`
	Seed    uint64          `json:"seed"`
	// BaseCycles is the fault-free run; Cycles the faulted run.
	BaseCycles int64 `json:"base_cycles"`
	Cycles     int64 `json:"cycles"`
	// Injected counts the faults that actually fired.
	Injected fault.Stats `json:"injected"`
	// StateOK reports the oracle: final memory image identical to the
	// fault-free run.
	StateOK bool   `json:"state_ok"`
	Err     string `json:"err,omitempty"`
}

// Slowdown is the timing cost of the campaign's perturbations.
func (r *FaultRow) Slowdown() float64 {
	return safeDiv(float64(r.Cycles), float64(r.BaseCycles))
}

// FaultCampaign runs the seeded grid. Options.Faults, when set, replaces
// the default plan as the campaign template (its seed is overridden per
// grid point); Options.Watchdog tightens the forward-progress bound.
func FaultCampaign(o *Options) []FaultRow {
	type group struct {
		k    *kernels.Kernel
		v    kernels.Variant
		size int
	}
	var groups []group
	var jobs []Job
	for _, k := range kernels.All {
		size := SizeFor(k, o)
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE} {
			groups = append(groups, group{k, v, size})
			base := sim.DefaultOptions(v)
			base.HashMem = true
			jobs = append(jobs, Job{Kernel: k, Variant: v, Size: size, Opts: &base})
			for _, seed := range faultSeeds {
				fo := sim.DefaultOptions(v)
				fo.HashMem = true
				plan := fault.DefaultPlan(seed)
				if o != nil && o.Faults != nil {
					plan = *o.Faults
					plan.Seed = seed
				}
				fo.Faults = &plan
				fo.MaxCycles = campaignMaxCycles
				if o != nil && o.Watchdog > 0 {
					fo.Watchdog = o.Watchdog
				}
				jobs = append(jobs, Job{Kernel: k, Variant: v, Size: size, Opts: &fo})
			}
		}
	}
	// Job errors land in the affected rows, not a panic: a watchdog trip
	// is a reportable campaign outcome.
	rs, err := o.Runner().RunAll(jobs)

	perGroup := 1 + len(faultSeeds)
	var rows []FaultRow
	for gi, g := range groups {
		base := rs[gi*perGroup]
		for si, seed := range faultSeeds {
			r := rs[gi*perGroup+1+si]
			row := FaultRow{
				ID: g.k.ID, Name: g.k.Name, Variant: g.v, Size: g.size, Seed: seed,
			}
			if base != nil {
				row.BaseCycles = base.Cycles
			}
			if r != nil {
				row.Cycles = r.Cycles
				row.Injected = r.Faults
				row.StateOK = base != nil && r.MemHash == base.MemHash
			} else {
				row.Err = "simulation failed"
				if err != nil {
					row.Err = err.Error()
				}
			}
			rows = append(rows, row)
		}
	}
	return rows
}

// FormatFaultCampaign renders the campaign table.
func FormatFaultCampaign(rows []FaultRow) string {
	var b strings.Builder
	b.WriteString("Fault campaigns — seeded deterministic injection, state oracle vs fault-free run\n")
	fmt.Fprintf(&b, "%-3s %-16s %-5s %6s %6s %12s %10s %9s %7s %6s %6s %6s %7s\n",
		"ID", "name", "var", "size", "seed", "base-cycles", "cycles", "slowdown",
		"nacks", "pf", "dram", "susp", "state")
	for i := range rows {
		r := &rows[i]
		state := "OK"
		if !r.StateOK {
			state = "FAIL"
		}
		if r.Err != "" {
			state = "ERR"
		}
		fmt.Fprintf(&b, "%-3s %-16s %-5s %6d %6s %12d %10d %8.3fx %7d %6d %6d %6d %7s\n",
			r.ID, r.Name, r.Variant, r.Size, fmt.Sprintf("%#x", r.Seed), r.BaseCycles, r.Cycles, r.Slowdown(),
			r.Injected.Nacks, r.Injected.PageFaults, r.Injected.DRAMSpikes, r.Injected.Suspends, state)
		if r.Err != "" {
			fmt.Fprintf(&b, "    error: %s\n", r.Err)
		}
	}
	return b.String()
}
