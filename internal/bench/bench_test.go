package bench

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/kernels"
)

// smallOpts shrinks everything to its structural minimum so the whole
// harness is exercised quickly in tests.
func smallOpts() *Options { return &Options{Scale: 1000} }

func TestFig8ShapesHold(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	rows := Fig8(smallOpts())
	if len(rows) != len(kernels.All) {
		t.Fatalf("%d rows, want %d", len(rows), len(kernels.All))
	}
	for _, r := range rows {
		// Direction of the headline claims at any size: UVE commits fewer
		// instructions than both baselines.
		if r.InstReductionVs(kernels.SVE) <= 0 {
			t.Errorf("%s: UVE committed more instructions than SVE", r.Name)
		}
		if r.InstReductionVs(kernels.NEON) <= 0 {
			t.Errorf("%s: UVE committed more instructions than NEON", r.Name)
		}
		if r.Cycles[kernels.UVE] <= 0 {
			t.Errorf("%s: no cycles measured", r.Name)
		}
	}
	if g := GeoMeanSpeedup(rows, kernels.NEON, false); g <= 1 {
		t.Errorf("geomean vs NEON = %.2f, want > 1", g)
	}
	out := FormatFig8(rows)
	for _, frag := range []string{"SAXPY", "geomean", "paper: 2.4x"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatFig8 missing %q", frag)
		}
	}
}

func TestFig10DepthMonotoneAtLowDepths(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	pts := Fig10(&Options{Scale: 16})
	// Shallower FIFOs can never help, and at these sizes at least one
	// kernel must be measurably hurt by depth 2 (the Fig 10 shape).
	hurt := false
	for _, p := range pts {
		if p.Param != "depth=2" {
			continue
		}
		if p.Speedup > 1.001 {
			t.Errorf("%s: depth=2 speedup %.3f > 1", p.Kernel, p.Speedup)
		}
		if p.Speedup < 0.95 {
			hurt = true
		}
	}
	if !hurt {
		t.Error("no kernel showed FIFO-depth sensitivity")
	}
}

func TestSweepFormatting(t *testing.T) {
	pts := []SweepPoint{
		{Kernel: "GEMM", Variant: kernels.UVE, Param: "a", Cycles: 10, Speedup: 1},
		{Kernel: "GEMM", Variant: kernels.UVE, Param: "b", Cycles: 5, Speedup: 2},
	}
	out := FormatSweep("title", pts)
	for _, frag := range []string{"title", "GEMM/UVE", "a:", "b:"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatSweep missing %q in %q", frag, out)
		}
	}
}

func TestStaticReports(t *testing.T) {
	tbl := FormatFig8Table()
	if !strings.Contains(tbl, "MAMR-Ind") || !strings.Contains(tbl, "indirect") {
		t.Error("Fig 8 table incomplete")
	}
	t1 := FormatTable1()
	for _, frag := range []string{"ROB 128", "512-bit", "AMPM"} {
		if !strings.Contains(t1, frag) {
			t.Errorf("Table 1 missing %q", frag)
		}
	}
	hw := FormatHW()
	if !strings.Contains(hw, "14080") || !strings.Contains(hw, "160") {
		t.Errorf("storage accounting unexpected: %s", hw)
	}
}

func TestSizeForRespectsConstraints(t *testing.T) {
	o := &Options{Scale: 1 << 20}
	for _, k := range kernels.All {
		n := SizeFor(k, o)
		switch k.ID {
		case "D", "E", "N", "F", "G":
			if n%16 != 0 || n < 32 {
				t.Errorf("%s: size %d violates lane blocking", k.ID, n)
			}
		case "L":
			if n%4 != 0 {
				t.Errorf("%s: size %d violates NEON width", k.ID, n)
			}
		}
		if n <= 0 {
			t.Errorf("%s: non-positive size", k.ID)
		}
	}
}

func TestStorageFootprintScales(t *testing.T) {
	small := engine.DefaultConfig()
	small.LogStreams = 8
	st, _, sf := engine.StorageFootprint(small)
	bt, _, bf := engine.StorageFootprint(engine.DefaultConfig())
	if st >= bt || sf >= bf {
		t.Error("reduced configuration must shrink the footprint")
	}
}
