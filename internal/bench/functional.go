package bench

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
	"repro/internal/sim"
)

// The functional sweep (`uvebench -fidelity functional`): every kernel on
// every variant executed by the program-order tier — output checks, committed
// counts and final-memory digests, but no cycles and no figure tables. This
// is the correctness half of `-exp all` at a fraction of the wall-clock,
// for tight edit-run loops and CI smokes; timing figures always come from
// the cycle tier.

// FuncRow is one kernel×variant cell of the functional sweep.
type FuncRow struct {
	ID        string          `json:"id"`
	Name      string          `json:"name"`
	Variant   kernels.Variant `json:"variant"`
	Size      int             `json:"size"`
	Committed uint64          `json:"committed"`
	MemHash   uint64          `json:"mem_hash"`
	Err       string          `json:"err,omitempty"`
}

// FunctionalSweep runs the full kernel×variant matrix on the functional
// tier. Output checks run inside each job; a failure lands in the row's Err.
func FunctionalSweep(o *Options) []FuncRow {
	type cell struct {
		k *kernels.Kernel
		v kernels.Variant
	}
	var cells []cell
	var jobs []Job
	for _, k := range kernels.All {
		size := SizeFor(k, o)
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			cells = append(cells, cell{k, v})
			fo := sim.DefaultOptions(v)
			fo.Fidelity = sim.Functional
			fo.HashMem = true
			jobs = append(jobs, Job{Kernel: k, Variant: v, Size: size, Opts: &fo})
		}
	}
	// Execute the whole matrix in parallel first, then re-fetch each cell
	// from the memo (instant) so every row carries its own error, not just
	// RunAll's first one.
	runner := o.Runner()
	runner.RunAll(jobs)

	rows := make([]FuncRow, len(cells))
	for i, c := range cells {
		rows[i] = FuncRow{ID: c.k.ID, Name: c.k.Name, Variant: c.v, Size: SizeFor(c.k, o)}
		r, err := runner.Run(jobs[i])
		if r != nil {
			rows[i].Committed = r.Committed
			rows[i].MemHash = r.MemHash
		}
		if err != nil {
			rows[i].Err = err.Error()
		} else if r == nil {
			rows[i].Err = "simulation failed"
		}
	}
	return rows
}

// FormatFunctionalSweep renders the sweep table.
func FormatFunctionalSweep(rows []FuncRow) string {
	var b strings.Builder
	b.WriteString("Functional sweep — program-order tier, output checks only (no timing)\n")
	fmt.Fprintf(&b, "%-3s %-16s %-5s %8s %10s %18s %6s\n",
		"ID", "name", "var", "size", "committed", "mem-hash", "check")
	for i := range rows {
		r := &rows[i]
		check := "ok"
		if r.Err != "" {
			check = "FAIL"
		}
		fmt.Fprintf(&b, "%-3s %-16s %-5s %8d %10d %#18x %6s\n",
			r.ID, r.Name, r.Variant, r.Size, r.Committed, r.MemHash, check)
		if r.Err != "" {
			fmt.Fprintf(&b, "    error: %s\n", r.Err)
		}
	}
	return b.String()
}
