package bench

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/isa"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/program"
	"repro/internal/sim"
)

// TestParallelMatchesSequential asserts the acceptance criterion that the
// parallel runner's output — cycle counts, committed instructions, derived
// stats, and the formatted figures — is byte-identical to a sequential
// run, over a sampled kernel/variant/sweep matrix. Run under -race (the
// Makefile's `race` target) this also exercises the pool for data races.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep")
	}
	seq := &Options{Scale: 1000, Workers: 1}
	par := &Options{Scale: 1000, Workers: 8}

	seqRows, parRows := Fig8(seq), Fig8(par)
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Error("Fig8 rows differ between sequential and parallel runs")
	}
	if s, p := FormatFig8(seqRows), FormatFig8(parRows); s != p {
		t.Errorf("FormatFig8 output differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
	}

	if s, p := Fig9(seq), Fig9(par); !reflect.DeepEqual(s, p) {
		t.Error("Fig9 sweep differs between sequential and parallel runs")
	}
	if s, p := Fig8E(seq), Fig8E(par); !reflect.DeepEqual(s, p) {
		t.Error("Fig8E sweep differs between sequential and parallel runs")
	}
}

// TestRunnerDeterministicOrder checks results come back in submission
// order even when jobs complete out of order across workers.
func TestRunnerDeterministicOrder(t *testing.T) {
	k := kernels.ByID("C")
	jobs := []Job{
		{Kernel: k, Variant: kernels.NEON, Size: 64},
		{Kernel: k, Variant: kernels.SVE, Size: 16},
		{Kernel: k, Variant: kernels.UVE, Size: 32},
	}
	rs := mustAll(NewRunner(3).RunAll(jobs))
	for i, j := range jobs {
		if rs[i].Variant != j.Variant || rs[i].Size != j.Size {
			t.Errorf("result %d is %s n=%d, want %s n=%d", i, rs[i].Variant, rs[i].Size, j.Variant, j.Size)
		}
	}
}

// TestRunnerMemoizesExactlyOnce asserts each unique (kernel, variant,
// size, config) simulation executes once, including configs that differ
// only by pointer identity (the Fig 11 ForceLevel override).
func TestRunnerMemoizesExactlyOnce(t *testing.T) {
	k := kernels.ByID("C")
	r := NewRunner(4)

	lvlA, lvlB := arch.LevelL2, arch.LevelL2
	forcedA := sim.DefaultOptions(kernels.UVE)
	forcedA.Eng.ForceLevel = &lvlA
	forcedB := sim.DefaultOptions(kernels.UVE)
	forcedB.Eng.ForceLevel = &lvlB
	explicitDefault := sim.DefaultOptions(kernels.UVE)

	jobs := []Job{
		{Kernel: k, Variant: kernels.UVE, Size: 16},
		{Kernel: k, Variant: kernels.UVE, Size: 16},                         // duplicate
		{Kernel: k, Variant: kernels.UVE, Size: 16, Opts: &explicitDefault}, // nil-opts canonical form
		{Kernel: k, Variant: kernels.UVE, Size: 16, Opts: &forcedA},
		{Kernel: k, Variant: kernels.UVE, Size: 16, Opts: &forcedB}, // same level, distinct pointer
		{Kernel: k, Variant: kernels.SVE, Size: 16},                 // genuinely new
	}
	rs := mustAll(r.RunAll(jobs))
	st := r.Stats()
	if st.Submitted != 6 || st.Simulated != 3 || st.MemoHits != 3 {
		t.Errorf("stats = %+v, want 6 submitted / 3 simulated / 3 hits", st)
	}
	if rs[0] != rs[1] || rs[0] != rs[2] {
		t.Error("equal-config jobs must share the memoized result")
	}
	if rs[3] != rs[4] {
		t.Error("ForceLevel pointers to equal levels must memo-share")
	}
	if rs[0] == rs[3] {
		t.Error("forced-L2 config must not collide with the default config")
	}

	// A second submission of the same matrix is served fully from memo.
	mustAll(r.RunAll(jobs[:3]))
	if st = r.Stats(); st.Simulated != 3 {
		t.Errorf("resubmission ran %d sims, want 3 (all memoized)", st.Simulated)
	}
}

// failingInstance builds a trivially-halting instance whose output check
// always fails.
func failingInstance(h *mem.Hierarchy) *kernels.Instance {
	p := program.NewBuilder("failing").I(isa.Halt()).MustBuild()
	return &kernels.Instance{Prog: p, Check: func() error { return errors.New("synthetic mismatch") }}
}

func TestRunnerPropagatesErrors(t *testing.T) {
	r := NewRunner(2)
	_, err := r.Run(Job{
		Variant: kernels.SVE, Size: 8,
		Key:   "failing-check",
		Build: failingInstance,
	})
	if err == nil || !strings.Contains(err.Error(), "output mismatch") {
		t.Fatalf("err = %v, want output-mismatch error", err)
	}

	// A panicking build must surface as an error, not kill the pool.
	_, err = r.Run(Job{
		Variant: kernels.SVE, Size: 8,
		Key:   "panicking-build",
		Build: func(h *mem.Hierarchy) *kernels.Instance { panic("boom") },
	})
	if err == nil || !strings.Contains(err.Error(), "simulation panic") {
		t.Fatalf("err = %v, want simulation-panic error", err)
	}
}

// TestScaleExtremes covers every kernel-ID branch of SizeFor at scales far
// beyond DefaultSize: the intermediate size must never reach zero, and the
// structural clamps must still hold.
func TestScaleExtremes(t *testing.T) {
	scales := []int{2, 7, 1 << 20, math.MaxInt / 2, math.MaxInt, -3, 0}
	for _, s := range scales {
		o := &Options{Scale: s}
		for _, k := range kernels.All {
			n := SizeFor(k, o)
			if n <= 0 {
				t.Fatalf("scale %d, kernel %s: non-positive size %d", s, k.ID, n)
			}
			switch k.ID {
			case "D", "E", "N", "F", "G":
				if n%16 != 0 || n < 32 {
					t.Errorf("scale %d, %s: size %d violates lane blocking", s, k.ID, n)
				}
			case "K":
				if n < 8 {
					t.Errorf("scale %d, %s: size %d below 3-D grid minimum", s, k.ID, n)
				}
			case "L":
				if n%4 != 0 || n < 16 {
					t.Errorf("scale %d, %s: size %d violates NEON width", s, k.ID, n)
				}
			default:
				if n < 16 {
					t.Errorf("scale %d, %s: size %d below scalar minimum", s, k.ID, n)
				}
			}
			if s <= 1 && n != k.DefaultSize {
				t.Errorf("scale %d, %s: size %d, want DefaultSize %d", s, k.ID, n, k.DefaultSize)
			}
		}
	}
}

// TestRunnerNoCrossTierMemoSharing: the same (kernel, variant, size) matrix
// submitted at both fidelities must simulate every cell twice — a
// functional result (no timing) can never satisfy a cycle-tier lookup, and
// resubmitting either tier hits only its own entry.
func TestRunnerNoCrossTierMemoSharing(t *testing.T) {
	r := NewRunner(2)
	matrix := []struct {
		id   string
		v    kernels.Variant
		size int
	}{
		{"C", kernels.UVE, 64},
		{"C", kernels.SVE, 64},
		{"A", kernels.UVE, 64},
	}
	mkJobs := func(f sim.Fidelity) []Job {
		var jobs []Job
		for _, m := range matrix {
			o := sim.DefaultOptions(m.v)
			o.Fidelity = f
			o.HashMem = true
			jobs = append(jobs, Job{Kernel: kernels.ByID(m.id), Variant: m.v, Size: m.size, Opts: &o})
		}
		return jobs
	}

	cyc, err := r.RunAll(mkJobs(sim.Cycle))
	if err != nil {
		t.Fatal(err)
	}
	fun, err := r.RunAll(mkJobs(sim.Functional))
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Simulated != 2*len(matrix) || st.MemoHits != 0 {
		t.Fatalf("cross-tier memo sharing: %+v (want %d simulated, 0 hits)", st, 2*len(matrix))
	}
	for i := range matrix {
		if cyc[i].Cycles == 0 {
			t.Errorf("cell %d: cycle-tier result has no cycles", i)
		}
		if fun[i].Cycles != 0 {
			t.Errorf("cell %d: functional result reports %d cycles", i, fun[i].Cycles)
		}
		if cyc[i].MemHash != fun[i].MemHash {
			t.Errorf("cell %d: tiers disagree on final memory (%#x vs %#x)", i, cyc[i].MemHash, fun[i].MemHash)
		}
	}

	// Resubmission at each tier hits only its own memo entries.
	if _, err := r.RunAll(mkJobs(sim.Functional)); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Simulated != 2*len(matrix) || st.MemoHits != len(matrix) {
		t.Fatalf("functional resubmission missed its own memo: %+v", st)
	}
}
