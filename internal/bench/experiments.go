package bench

import (
	"fmt"
	"math"
	"sort"
)

// ExperimentIDs lists every experiment `uvebench -exp` accepts, in the
// order `-exp all` runs them. The "faults" resilience campaign and the
// "model" cost-model validation sweep are also accepted by id but excluded
// here: `-exp all` output stays byte-stable, and both are correctness
// gates, not evaluation figures.
var ExperimentIDs = []string{
	"table1", "fig8table", "hw", "fig8", "fig8e",
	"fig9", "fig10", "fig11", "spm", "ablate", "stalls",
}

// RunExperiment executes one experiment by id, returning both the text
// rendering and the machine-readable report. It is the single dispatch
// shared by cmd/uvebench and the report-validity tests. An unknown id is an
// error, not an exit — the CLI decides the process outcome.
func RunExperiment(id string, o *Options) (string, Report, error) {
	switch id {
	case "table1":
		t := FormatTable1()
		return t, Report{Experiment: id, Text: t}, nil
	case "fig8table":
		t := FormatFig8Table()
		return t, Report{Experiment: id, Text: t}, nil
	case "fig8":
		rows := Fig8(o)
		return FormatFig8(rows), Report{Experiment: id, Fig8: rows, Summary: Fig8Summary(rows)}, nil
	case "fig8e":
		pts := Fig8E(o)
		return FormatSweep("Fig 8.E — UVE GEMM loop unrolling (speedup vs no unrolling)", pts),
			Report{Experiment: id, Sweep: pts}, nil
	case "fig9":
		pts := Fig9(o)
		return FormatSweep("Fig 9 — sensitivity to vector physical registers (speedup vs 48 PRs)", pts),
			Report{Experiment: id, Sweep: pts}, nil
	case "fig10":
		pts := Fig10(o)
		return FormatSweep("Fig 10 — sensitivity to FIFO depth (speedup vs depth 8)", pts),
			Report{Experiment: id, Sweep: pts}, nil
	case "fig11":
		pts := Fig11(o)
		return FormatSweep("Fig 11 — sensitivity to streaming cache level (speedup vs L2)", pts),
			Report{Experiment: id, Sweep: pts}, nil
	case "spm":
		pts := SPMSweep(o)
		return FormatSweep("§VI-B — stream processing modules (speedup vs 2 modules)", pts),
			Report{Experiment: id, Sweep: pts}, nil
	case "hw":
		t := FormatHW()
		return t, Report{Experiment: id, Text: t}, nil
	case "ablate":
		pts := Ablations(o)
		return FormatSweep("Ablations — baseline prefetchers off; engine restricted to 1 load port (speedup vs default)", pts),
			Report{Experiment: id, Sweep: pts}, nil
	case "stalls":
		rows := Stalls(o)
		return FormatStalls(rows), Report{Experiment: id, Stalls: rows}, nil
	case "faults":
		rows := FaultCampaign(o)
		return FormatFaultCampaign(rows), Report{Experiment: id, Faults: rows}, nil
	case "model":
		rows := Model(o)
		return FormatModel(rows), Report{Experiment: id, Model: rows, Summary: ModelSummary(rows)}, nil
	}
	return "", Report{}, fmt.Errorf("unknown experiment %q", id)
}

// Degenerate describes the measurements in the reports that carry no
// information: zero-cycle runs (whose ratios were forced to 0 by safeDiv)
// and any float that is still non-finite. uvebench -json prints these to
// stderr and exits non-zero so a silent bad run can't masquerade as data.
func Degenerate(reports []Report) []string {
	var out []string
	add := func(format string, args ...any) {
		out = append(out, fmt.Sprintf(format, args...))
	}
	for _, rep := range reports {
		for _, r := range rep.Fig8 {
			if r.Degenerate() {
				add("%s: fig8 row %s/%s has a zero cycle count", rep.Experiment, r.ID, r.Name)
			}
		}
		for _, p := range rep.Sweep {
			if p.Cycles == 0 {
				add("%s: sweep point %s/%s %s has zero cycles", rep.Experiment, p.Kernel, p.Variant, p.Param)
			}
			if math.IsNaN(p.Speedup) || math.IsInf(p.Speedup, 0) {
				add("%s: sweep point %s/%s %s has non-finite speedup", rep.Experiment, p.Kernel, p.Variant, p.Param)
			}
		}
		for _, r := range rep.Stalls {
			if r.Cycles == 0 {
				add("%s: stall row %s/%s has zero cycles", rep.Experiment, r.ID, r.Variant)
			}
		}
		for _, r := range rep.Faults {
			if r.Err != "" {
				add("%s: fault campaign %s/%s seed=%#x failed: %s", rep.Experiment, r.ID, r.Variant, r.Seed, r.Err)
			} else if !r.StateOK {
				add("%s: fault campaign %s/%s seed=%#x diverged architectural state", rep.Experiment, r.ID, r.Variant, r.Seed)
			}
			if r.Cycles == 0 || r.BaseCycles == 0 {
				add("%s: fault campaign %s/%s seed=%#x has a zero cycle count", rep.Experiment, r.ID, r.Variant, r.Seed)
			}
		}
		for _, r := range rep.Model {
			if r.Cycles == 0 {
				add("%s: model row %s/%s has a zero cycle count", rep.Experiment, r.ID, r.Variant)
			}
			if r.Bound > r.Cycles {
				add("%s: model row %s/%s bound %d exceeds measured cycles %d",
					rep.Experiment, r.ID, r.Variant, r.Bound, r.Cycles)
			}
			if r.PredCommitted.IsExact() && r.PredCommitted.Value() != r.Committed {
				add("%s: model row %s/%s predicted %d committed, simulator measured %d",
					rep.Experiment, r.ID, r.Variant, r.PredCommitted.Value(), r.Committed)
			}
		}
		// Summary keys in sorted order: map iteration order must never
		// leak into the report text.
		keys := make([]string, 0, len(rep.Summary))
		for k := range rep.Summary {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if v := rep.Summary[k]; math.IsNaN(v) || math.IsInf(v, 0) {
				add("%s: summary %q is non-finite", rep.Experiment, k)
			}
		}
	}
	return out
}
