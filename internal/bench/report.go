package bench

import "repro/internal/kernels"

// Report is the machine-readable form of one experiment's output
// (`uvebench -json`), consumed by BENCH_*.json trajectory tracking.
// Exactly one of Fig8 / Sweep / Stalls / Text is populated, per experiment
// kind.
type Report struct {
	Experiment string             `json:"experiment"`
	Fig8       []Fig8Row          `json:"fig8,omitempty"`
	Sweep      []SweepPoint       `json:"sweep,omitempty"`
	Stalls     []StallRow         `json:"stalls,omitempty"`
	Faults     []FaultRow         `json:"faults,omitempty"`
	Model      []ModelRow         `json:"model,omitempty"`
	Summary    map[string]float64 `json:"summary,omitempty"`
	Text       string             `json:"text,omitempty"`
}

// Fig8Summary computes the headline aggregates the paper reports alongside
// Fig 8 (geomean speedups and mean reductions).
func Fig8Summary(rows []Fig8Row) map[string]float64 {
	return map[string]float64{
		"geomean_speedup_vs_sve_vectorized": GeoMeanSpeedup(rows, kernels.SVE, true),
		"geomean_speedup_vs_neon":           GeoMeanSpeedup(rows, kernels.NEON, false),
		"mean_inst_reduction_vs_sve":        MeanInstReduction(rows, kernels.SVE, true),
		"mean_inst_reduction_vs_neon":       MeanInstReduction(rows, kernels.NEON, false),
		"mean_rename_reduction_vs_sve":      MeanRenameReduction(rows, kernels.SVE, true),
	}
}
