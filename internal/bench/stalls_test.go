package bench

import (
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// The conservative-complete property: every cycle of every run lands in
// exactly one stall class, so the attributed total equals the measured
// cycle count for all 19 kernels on both machines — no unexplained cycles,
// no double counting.
func TestStallsConservativeComplete(t *testing.T) {
	rows := Stalls(&Options{Scale: 1 << 20})
	if want := len(kernels.All) * len(stallVariants); len(rows) != want {
		t.Fatalf("%d rows, want %d", len(rows), want)
	}
	for _, r := range rows {
		if r.Cycles <= 0 {
			t.Errorf("%s/%s: no cycles measured", r.ID, r.Variant)
			continue
		}
		if r.Attributed != r.Cycles {
			t.Errorf("%s/%s: attributed %d cycles, measured %d",
				r.ID, r.Variant, r.Attributed, r.Cycles)
		}
		var sum int64
		for _, v := range r.Breakdown {
			sum += v
		}
		if sum != r.Attributed {
			t.Errorf("%s/%s: breakdown sums to %d, attributed %d",
				r.ID, r.Variant, sum, r.Attributed)
		}
	}
}

// Attaching a trace collector must not perturb the simulation: the traced
// run's cycle count (and committed instruction count) must equal the
// untraced run's exactly.
func TestTraceDoesNotPerturbTiming(t *testing.T) {
	for _, kid := range []string{"C", "D"} {
		k := kernels.ByID(kid)
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE} {
			size := SizeFor(k, &Options{Scale: 1 << 20})
			plain, err := sim.Run(k, v, size, nil)
			if err != nil {
				t.Fatalf("%s/%s: %v", kid, v, err)
			}
			o := sim.DefaultOptions(v)
			o.Trace = trace.NewCollector(1024, 100)
			traced, err := sim.Run(k, v, size, &o)
			if err != nil {
				t.Fatalf("%s/%s traced: %v", kid, v, err)
			}
			if plain.Cycles != traced.Cycles || plain.Committed != traced.Committed {
				t.Errorf("%s/%s: traced run diverged: %d/%d cycles, %d/%d insts",
					kid, v, plain.Cycles, traced.Cycles, plain.Committed, traced.Committed)
			}
		}
	}
}

func TestFormatStalls(t *testing.T) {
	rows := []StallRow{{
		ID: "C", Name: "saxpy", Variant: kernels.UVE, Size: 64,
		Cycles: 100, Attributed: 100, Drain: 3,
		Breakdown: map[string]int64{"busy": 60, "fifo-data": 30, "memory": 10},
	}}
	out := FormatStalls(rows)
	for _, frag := range []string{"Stall attribution", "saxpy", "busy", "fifo-data", "memory", "Fig 8.C"} {
		if !strings.Contains(out, frag) {
			t.Errorf("FormatStalls missing %q", frag)
		}
	}
}
