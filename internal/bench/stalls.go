package bench

import (
	"fmt"
	"strings"

	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// StallRow is one kernel's complete cycle attribution on one machine
// (`uvebench -stalls`): every cycle up to halt lands in exactly one class,
// so Attributed always equals Cycles (test-enforced across the 19-kernel
// sweep — the "conservative-complete" property). Drain counts the post-halt
// store-drain steps separately; they are outside Result.Cycles.
type StallRow struct {
	ID      string          `json:"id"`
	Name    string          `json:"name"`
	Variant kernels.Variant `json:"variant"`
	Size    int             `json:"size"`

	Cycles     int64            `json:"cycles"`
	Attributed int64            `json:"attributed"` // sum of Breakdown == Cycles
	Drain      int64            `json:"drain"`
	Breakdown  map[string]int64 `json:"breakdown"` // class name → cycles
}

// stallVariants are the machines the stall breakdown compares (Fig 8.C
// contrasts UVE's rename behavior with SVE's).
var stallVariants = []kernels.Variant{kernels.UVE, kernels.SVE}

// Stalls runs every kernel on the UVE and SVE machines with an
// attribution-only trace collector attached and folds each run's per-cycle
// classification into a StallRow. Each job gets its own collector, so these
// runs never memo-share with untraced experiments (or each other).
func Stalls(o *Options) []StallRow {
	type traced struct {
		job Job
		col *trace.Collector
	}
	var ts []traced
	for _, k := range kernels.All {
		size := SizeFor(k, o)
		for _, v := range stallVariants {
			col := trace.NewCollector(0, 0) // attribution only, single interval
			opts := sim.DefaultOptions(v)
			opts.Trace = col
			ts = append(ts, traced{Job{Kernel: k, Variant: v, Size: size, Opts: &opts}, col})
		}
	}
	jobs := make([]Job, len(ts))
	for i, t := range ts {
		jobs[i] = t.job
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var rows []StallRow
	for i, t := range ts {
		res := results[i]
		att := t.col.Attribution()
		tot := att.Totals()
		row := StallRow{
			ID: t.job.Kernel.ID, Name: t.job.Kernel.Name,
			Variant: t.job.Variant, Size: t.job.Size,
			Cycles:     res.Cycles,
			Attributed: att.AttributedExcludingDrain(),
			Drain:      tot[trace.ClassDrain],
			Breakdown:  make(map[string]int64),
		}
		for cl := trace.StallClass(0); cl < trace.ClassCount; cl++ {
			if cl == trace.ClassDrain || tot[cl] == 0 {
				continue
			}
			row.Breakdown[cl.String()] = tot[cl]
		}
		rows = append(rows, row)
		if o != nil && o.Verbose {
			fmt.Printf("  %s/%s n=%d: %d cycles attributed\n",
				t.job.Kernel.Name, t.job.Variant, t.job.Size, row.Attributed)
		}
	}
	return rows
}

// FormatStalls renders the per-kernel stall breakdown as a percentage
// table, one column per class that appears anywhere in the rows.
func FormatStalls(rows []StallRow) string {
	present := map[string]bool{}
	for _, r := range rows {
		for cl := range r.Breakdown {
			present[cl] = true
		}
	}
	// Columns in canonical class order, restricted to classes that occur.
	var cols []string
	for cl := trace.StallClass(0); cl < trace.ClassCount; cl++ {
		if present[cl.String()] {
			cols = append(cols, cl.String())
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Stall attribution — %% of cycles per class (sum = 100%%)\n")
	fmt.Fprintf(&b, "%-2s %-15s %-4s %9s", "ID", "kernel", "mach", "cycles")
	for _, cl := range cols {
		fmt.Fprintf(&b, " %9s", cl)
	}
	fmt.Fprintln(&b)
	for _, r := range rows {
		fmt.Fprintf(&b, "%-2s %-15s %-4s %9d", r.ID, r.Name, r.Variant, r.Cycles)
		for _, cl := range cols {
			pct := 0.0
			if r.Cycles > 0 {
				pct = 100 * float64(r.Breakdown[cl]) / float64(r.Cycles)
			}
			fmt.Fprintf(&b, " %8.1f%%", pct)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "\n(read against Fig 8.C: UVE converts rename-stage structural stalls into\nfifo-data pacing of a saturated backend; drain cycles fall outside the\ncycle count and are omitted)\n")
	return b.String()
}
