package bench

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/wire"
)

// jobConfigFP is the cross-process-stable projection of configFP: the same
// field coverage discipline (every sim.Options field that changes what a
// simulation computes or measures), but with the in-process trace recorder
// identity reduced to presence — a pointer is meaningless across processes,
// while "was this run traced" still separates result payloads that carry
// stall summaries from ones that do not. TestFingerprintCoversConfigFP
// cross-checks this struct's coverage against configFP field by field.
type jobConfigFP struct {
	Variant   string // resolved variant spelling (defensive: also implied by the program bytes)
	Size      int    // resolved problem size (likewise)
	Core      cpu.Config
	Hier      mem.HierarchyConfig
	Eng       engine.Config // ForceLevel hashes as nil-flag + pointee
	SkipCheck bool
	Sanitize  int
	HashMem   bool
	Watchdog  int64
	MaxCycles int64
	HasFaults bool
	Faults    fault.Plan
	Traced    bool
	Fidelity  int
}

// FingerprintJob returns the job's content-addressed identity: the SHA-256
// digest of the built program's canonical wire encoding (instructions,
// argument registers, buffer extents) concatenated with the canonical hash
// of the machine/sim configuration. The kernel's *name* is not an input —
// two jobs that build byte-identical programs under equal configurations
// fingerprint equal, which is exactly the key the persistent result store
// wants: results survive kernel renames and deduplicate aliases.
//
// Building the program is required to hash it; the build is hermetic
// (fresh hierarchy) and discarded, so FingerprintJob never perturbs the
// runner's memo table. A size of 0 resolves to the kernel's DefaultSize,
// matching what execution would run.
func FingerprintJob(j Job) (wire.Hash, error) {
	var o sim.Options
	if j.Opts != nil {
		o = j.Opts.Clone()
	} else {
		o = sim.DefaultOptions(j.Variant)
	}

	size := j.Size
	if size == 0 && j.Kernel != nil {
		size = j.Kernel.DefaultSize
	}
	h := mem.NewHierarchy(o.Hier)
	var inst *kernels.Instance
	if j.Build != nil {
		inst = j.Build(h)
	} else if j.Kernel != nil {
		inst = j.Kernel.Build(h, j.Variant, size)
	} else {
		return wire.Hash{}, fmt.Errorf("bench: fingerprint: job has neither Kernel nor Build")
	}
	if inst.Err != nil {
		return wire.Hash{}, fmt.Errorf("bench: fingerprint: %s/%s n=%d: %w", j.id(), j.Variant, size, inst.Err)
	}
	unitBytes, err := wire.EncodeUnit(kernels.UnitOf(inst, h.Mem.Extents()))
	if err != nil {
		return wire.Hash{}, fmt.Errorf("bench: fingerprint: %s/%s n=%d: %w", j.id(), j.Variant, size, err)
	}

	fp := jobConfigFP{
		Variant: j.Variant.String(), Size: size,
		Core: o.Core, Hier: o.Hier, Eng: o.Eng,
		SkipCheck: o.SkipCheck, Sanitize: int(o.Sanitize), HashMem: o.HashMem,
		Watchdog: o.Watchdog, MaxCycles: o.MaxCycles,
		Traced: o.Trace != nil, Fidelity: int(o.Fidelity),
	}
	if o.Faults != nil {
		fp.HasFaults = true
		fp.Faults = *o.Faults
	}
	cfgHash, err := wire.HashConfig("bench.job", fp)
	if err != nil {
		return wire.Hash{}, fmt.Errorf("bench: fingerprint: %s/%s n=%d: %w", j.id(), j.Variant, size, err)
	}

	d := sha256.New()
	d.Write(unitBytes)
	d.Write(cfgHash[:])
	var out wire.Hash
	d.Sum(out[:0])
	return out, nil
}
