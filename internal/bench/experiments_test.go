package bench

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/kernels"
)

// Every experiment's -json report must marshal (encoding/json rejects
// NaN/Inf, so a nil error proves every float is finite) and the bytes must
// be valid JSON, at both -scale extremes: maximal shrink (sizes clamp to
// their structural minimums) and the ordinary small-test scale.
func TestRunExperimentReportsValidJSON(t *testing.T) {
	scales := []int{1 << 20}
	if !testing.Short() {
		scales = append(scales, 1000)
	}
	for _, scale := range scales {
		o := &Options{Scale: scale}
		for _, id := range ExperimentIDs {
			text, rep, err := RunExperiment(id, o)
			if err != nil {
				t.Fatalf("scale=%d %s: %v", scale, id, err)
			}
			if text == "" {
				t.Errorf("scale=%d %s: empty text rendering", scale, id)
			}
			b, err := json.Marshal(rep)
			if err != nil {
				t.Fatalf("scale=%d %s: report does not marshal: %v", scale, id, err)
			}
			if !json.Valid(b) {
				t.Errorf("scale=%d %s: marshaled report is not valid JSON", scale, id)
			}
		}
	}
}

func TestRunExperimentUnknownID(t *testing.T) {
	if _, _, err := RunExperiment("fig99", &Options{Scale: 1 << 20}); err == nil {
		t.Fatal("unknown experiment id accepted")
	}
}

func TestDegenerateFlagsBadMeasurements(t *testing.T) {
	bad := []Report{
		{Experiment: "fig8", Fig8: []Fig8Row{{ID: "C", Name: "saxpy"}}},
		{Experiment: "fig9", Sweep: []SweepPoint{
			{Kernel: "gemm", Variant: kernels.UVE, Param: "x", Cycles: 0, Speedup: 1},
			{Kernel: "gemm", Variant: kernels.UVE, Param: "y", Cycles: 5, Speedup: math.Inf(1)},
		}},
		{Experiment: "stalls", Stalls: []StallRow{{ID: "C", Variant: kernels.UVE}}},
		{Experiment: "fig8", Summary: map[string]float64{"geomean": math.NaN()}},
	}
	degs := Degenerate(bad)
	if len(degs) != 5 {
		t.Fatalf("want 5 degenerate findings, got %d: %v", len(degs), degs)
	}
	for _, want := range []string{"zero cycle", "zero cycles", "non-finite speedup", "non-finite"} {
		found := false
		for _, d := range degs {
			if strings.Contains(d, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentions %q: %v", want, degs)
		}
	}

	good := []Report{{Experiment: "fig8", Fig8: []Fig8Row{{
		Cycles: map[kernels.Variant]int64{kernels.UVE: 1, kernels.SVE: 1, kernels.NEON: 1},
	}}, Summary: map[string]float64{"geomean": 1.5}}}
	if degs := Degenerate(good); len(degs) != 0 {
		t.Errorf("clean reports flagged: %v", degs)
	}
}

func TestSafeDiv(t *testing.T) {
	if got := safeDiv(1, 0); got != 0 {
		t.Errorf("safeDiv(1,0) = %v, want 0", got)
	}
	if got := safeDiv(math.Inf(1), 2); got != 0 {
		t.Errorf("safeDiv(+Inf,2) = %v, want 0", got)
	}
	if got := safeDiv(0, 0); got != 0 {
		t.Errorf("safeDiv(0,0) = %v, want 0", got)
	}
	if got := safeDiv(6, 3); got != 2 {
		t.Errorf("safeDiv(6,3) = %v, want 2", got)
	}
}
