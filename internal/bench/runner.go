package bench

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Job identifies one simulation: a kernel (or a custom instance factory),
// the machine variant, the problem size and the machine configuration.
// Every simulation is hermetic — it builds its own memory hierarchy, core
// and engine — so jobs can run on any worker in any order.
type Job struct {
	Kernel  *kernels.Kernel
	Variant kernels.Variant
	Size    int
	Opts    *sim.Options // nil = sim.DefaultOptions(Variant)

	// Ctx, when non-nil, bounds the job's execution: a done context aborts
	// the simulation with a *sim.CanceledError. Ctx is execution policy,
	// not simulation identity — it is excluded from the memo key, so jobs
	// that differ only in Ctx memo-share one execution (and that shared
	// execution runs under whichever job's context got there first; the
	// entry is evicted afterwards, so a later resubmission re-executes
	// rather than replaying the cancellation).
	Ctx context.Context

	// Build, when non-nil, replaces the Kernel's standard build with a
	// custom instance factory (e.g. the Fig 8.E unrolled GEMMs). Key must
	// then uniquely name the instance for memoization and labeling.
	Key   string
	Build func(h *mem.Hierarchy) *kernels.Instance
}

func (j *Job) id() string {
	if j.Build != nil {
		return j.Key
	}
	return j.Kernel.ID
}

// configFP is the canonical, comparable fingerprint of a machine
// configuration. engine.Config carries a *CacheLevel (Fig 11 override)
// whose pointer identity would defeat memoization, so the pointee is
// hoisted into value fields and the pointer zeroed. A trace recorder is
// part of the fingerprint by identity: traced jobs use per-job collectors,
// so they never memo-share with untraced (or other traced) runs.
// Every Options field that changes what a simulation computes or measures
// must appear here, or two different runs would memo-share; sim's
// TestBenchMemoKeyCoversOptions cross-checks the field coverage.
type configFP struct {
	core       cpu.Config
	hier       mem.HierarchyConfig
	eng        engine.Config
	forceLevel arch.CacheLevel
	hasForce   bool
	skipCheck  bool
	sanitize   sim.SanitizeMode // modes never memo-share: auto may elide tracking
	hashMem    bool
	watchdog   int64
	maxCycles  int64
	faults     fault.Plan
	hasFaults  bool
	rec        trace.Recorder
	// fidelity separates the execution tiers: a functional result carries
	// no timing, so it must never satisfy a cycle-tier lookup (and vice
	// versa — a cycle result is a valid answer but the memo stays
	// tier-exact so hit accounting and result shapes are predictable).
	fidelity sim.Fidelity
}

// memoKey canonically identifies a (kernel, variant, size, config)
// simulation. Two jobs with equal keys are the same simulation.
type memoKey struct {
	kernel  string
	variant kernels.Variant
	size    int
	cfg     configFP
}

func keyOf(j Job) memoKey {
	var o sim.Options
	if j.Opts != nil {
		o = *j.Opts
	} else {
		o = sim.DefaultOptions(j.Variant)
	}
	fp := configFP{
		core: o.Core, hier: o.Hier, eng: o.Eng,
		skipCheck: o.SkipCheck, sanitize: o.Sanitize, hashMem: o.HashMem,
		watchdog: o.Watchdog, maxCycles: o.MaxCycles, rec: o.Trace,
		fidelity: o.Fidelity,
	}
	if o.Eng.ForceLevel != nil {
		fp.hasForce = true
		fp.forceLevel = *o.Eng.ForceLevel
		fp.eng.ForceLevel = nil
	}
	if o.Faults != nil {
		fp.hasFaults = true
		fp.faults = *o.Faults
	}
	return memoKey{kernel: j.id(), variant: j.Variant, size: j.Size, cfg: fp}
}

// memoEntry is one memoized simulation. done is closed exactly once, after
// res/err are written by the single worker that executed the job.
type memoEntry struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// RunnerStats reports the memoization effectiveness of a Runner.
type RunnerStats struct {
	Submitted int `json:"submitted"` // jobs submitted across all RunAll calls
	Simulated int `json:"simulated"` // unique simulations actually executed
	MemoHits  int `json:"memo_hits"` // jobs satisfied from the memo table
	// CancelEvicted counts memo entries dropped because their execution
	// was aborted by context cancellation (see Job.Ctx).
	CancelEvicted int `json:"cancel_evicted,omitempty"`
}

// Runner executes simulation jobs on a fixed-size worker pool and
// memoizes results by canonical (kernel, variant, size, config) key, so
// the default-configuration baseline shared by every sensitivity sweep is
// simulated exactly once per process-wide Runner. Results are returned in
// submission order regardless of completion order, making parallel output
// byte-identical to sequential output.
type Runner struct {
	workers int

	mu    sync.Mutex
	memo  map[memoKey]*memoEntry
	stats RunnerStats
}

// NewRunner builds a runner with the given worker count; workers <= 0
// means GOMAXPROCS.
func NewRunner(workers int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{workers: workers, memo: make(map[memoKey]*memoEntry)}
}

// Workers returns the pool size.
func (r *Runner) Workers() int { return r.workers }

// Stats returns a snapshot of the memoization counters.
func (r *Runner) Stats() RunnerStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// execJob runs one simulation, converting panics (watchdog aborts, kernel
// build failures) into errors so a dying worker can never wedge the pool.
func execJob(j Job) (res *sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("%s/%s n=%d: simulation panic: %v", j.id(), j.Variant, j.Size, p)
		}
	}()
	ctx := j.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if j.Build != nil {
		res, err = sim.RunBuiltContext(ctx, j.Key, j.Variant, j.Size, j.Opts, j.Build)
		if err != nil {
			err = fmt.Errorf("%s/%s n=%d: %w", j.Key, j.Variant, j.Size, err)
		}
		return res, err
	}
	return sim.RunContext(ctx, j.Kernel, j.Variant, j.Size, j.Opts)
}

// RunAll executes the jobs concurrently (bounded by the worker pool),
// deduplicating against the memo table, and returns one result per job in
// submission order. Memoized results are shared — callers must treat them
// as read-only. The returned error is the first job error in submission
// order; results for the other jobs are still returned.
func (r *Runner) RunAll(jobs []Job) ([]*sim.Result, error) {
	entries := make([]*memoEntry, len(jobs))
	type work struct {
		entry *memoEntry
		job   Job
		key   memoKey
	}
	var pending []work

	r.mu.Lock()
	r.stats.Submitted += len(jobs)
	for i, j := range jobs {
		if j.Opts != nil {
			// Snapshot at submit: the memo key and the eventual execution
			// must see the same configuration even if the caller mutates
			// its Options (or a pointee like Eng.ForceLevel or Faults)
			// after RunAll returns the shared memo entry.
			c := j.Opts.Clone()
			j.Opts = &c
		}
		k := keyOf(j)
		e := r.memo[k]
		if e == nil {
			e = &memoEntry{done: make(chan struct{})}
			r.memo[k] = e
			pending = append(pending, work{e, j, k})
			r.stats.Simulated++
		} else {
			r.stats.MemoHits++
		}
		entries[i] = e
	}
	r.mu.Unlock()

	if len(pending) > 0 {
		n := r.workers
		if n > len(pending) {
			n = len(pending)
		}
		ch := make(chan work)
		var wg sync.WaitGroup
		for w := 0; w < n; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for wk := range ch {
					wk.entry.res, wk.entry.err = execJob(wk.job)
					close(wk.entry.done)
					r.evictCanceled(wk.key, wk.entry)
				}
			}()
		}
		for _, wk := range pending {
			ch <- wk
		}
		close(ch)
		wg.Wait()
	}

	results := make([]*sim.Result, len(jobs))
	var firstErr error
	for i, e := range entries {
		// Entries owned by a concurrent RunAll may still be in flight.
		<-e.done
		results[i] = e.res
		if e.err != nil && firstErr == nil {
			firstErr = e.err
		}
	}
	return results, firstErr
}

// evictCanceled drops a memo entry whose execution was aborted by context
// cancellation. A canceled run says nothing about the simulation — only
// about one caller's patience — so it must not satisfy future lookups.
// Jobs already waiting on the entry still observe the cancellation error
// (they shared the aborted execution); the next submission re-executes.
func (r *Runner) evictCanceled(k memoKey, e *memoEntry) {
	var ce *sim.CanceledError
	if e.err == nil || !errors.As(e.err, &ce) {
		return
	}
	r.mu.Lock()
	if r.memo[k] == e {
		delete(r.memo, k)
		r.stats.CancelEvicted++
	}
	r.mu.Unlock()
}

// Run executes a single job through the pool and memo table.
func (r *Runner) Run(j Job) (*sim.Result, error) {
	rs, err := r.RunAll([]Job{j})
	return rs[0], err
}

// mustAll panics on a job error, matching the historical sim.MustRun
// behavior of the figure drivers.
func mustAll(rs []*sim.Result, err error) []*sim.Result {
	if err != nil {
		panic(err)
	}
	return rs
}
