package bench

// The cost-model validation experiment (`uvebench -exp model`): every
// kernel × machine runs once on the cycle tier while the static analyzer
// predicts its committed-instruction count and cycle lower bound from the
// program text alone. The experiment reports prediction exactness and
// per-kernel bound tightness (bound/measured); a bound exceeding the
// measured cycle count or an exact prediction that disagrees with the
// simulator is a model bug and surfaces through Degenerate. Like the fault
// campaign, the experiment is addressable by id but excluded from
// `-exp all`, whose output stays byte-stable.

import (
	"fmt"
	"strings"

	"repro/internal/cost"
	"repro/internal/kernels"
	"repro/internal/mem"
)

// ModelRow is one kernel/variant cell of the validation table.
type ModelRow struct {
	ID      string          `json:"id"`
	Name    string          `json:"name"`
	Variant kernels.Variant `json:"variant"`
	Size    int             `json:"size"`

	// Exact reports whether every predicted quantity is a point value.
	Exact bool `json:"exact"`
	// PredCommitted is the statically predicted committed-instruction
	// count; Committed is the simulator's.
	PredCommitted cost.Quantity `json:"pred_committed"`
	Committed     uint64        `json:"committed"`

	// Bound is the best (largest) static cycle lower bound, BoundName its
	// source, Cycles the measured count and Tightness Bound/Cycles.
	Bound     int64   `json:"bound"`
	BoundName string  `json:"bound_name"`
	Cycles    int64   `json:"cycles"`
	Tightness float64 `json:"tightness"`

	// PredBusUtil is the bus utilization implied by the predicted traffic
	// at the bound; BusUtil the measured one.
	PredBusUtil float64 `json:"pred_bus_util"`
	BusUtil     float64 `json:"bus_util"`
}

// modelVariants: the model is validated on all three machines — the bounds
// only use committed-instruction structure and memory traffic, which every
// variant has.
var modelVariants = []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON}

// Model runs the validation sweep.
func Model(o *Options) []ModelRow {
	type cell struct {
		k *kernels.Kernel
		v kernels.Variant
		n int
	}
	var cells []cell
	var jobs []Job
	for _, k := range kernels.All {
		size := SizeFor(k, o)
		for _, v := range modelVariants {
			cells = append(cells, cell{k, v, size})
			jobs = append(jobs, Job{Kernel: k, Variant: v, Size: size})
		}
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var rows []ModelRow
	for i, c := range cells {
		res := results[i]
		// Analysis runs against a fresh build: allocation is deterministic,
		// so the analyzed addresses match the simulated ones.
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		inst := c.k.Build(h, c.v, c.n)
		if inst.Err != nil {
			panic(fmt.Sprintf("%s/%s n=%d: build: %v", c.k.ID, c.v, c.n, inst.Err))
		}
		params := cost.DefaultParams(c.v.VecBytes())
		params.IntArgs = inst.IntArgs
		est, err := cost.Analyze(inst.Prog, params)
		if err != nil {
			panic(fmt.Sprintf("%s/%s n=%d: analyze: %v", c.k.ID, c.v, c.n, err))
		}
		row := ModelRow{
			ID: c.k.ID, Name: c.k.Name, Variant: c.v, Size: c.n,
			Exact:         est.Exact,
			PredCommitted: est.Committed,
			Committed:     res.Committed,
			Bound:         est.Bounds.Best,
			BoundName:     est.Bounds.BestName,
			Cycles:        res.Cycles,
			Tightness:     safeDiv(float64(est.Bounds.Best), float64(res.Cycles)),
			PredBusUtil:   est.PredictedBusUtil,
			BusUtil:       res.BusUtil,
		}
		rows = append(rows, row)
		if o != nil && o.Verbose {
			fmt.Printf("  %s/%s n=%d: bound %d (%s) vs %d cycles\n",
				c.k.Name, c.v, c.n, row.Bound, row.BoundName, row.Cycles)
		}
	}
	return rows
}

// ModelSummary aggregates the tightness ratios the sweep is judged by.
func ModelSummary(rows []ModelRow) map[string]float64 {
	sum := map[string]float64{}
	cnt := map[string]int{}
	exact := 0
	for _, r := range rows {
		key := "mean_tightness_" + strings.ToLower(r.Variant.String())
		sum[key] += r.Tightness
		cnt[key]++
		sum["mean_tightness"] += r.Tightness
		cnt["mean_tightness"]++
		if r.Exact {
			exact++
		}
	}
	out := map[string]float64{}
	for k, s := range sum {
		out[k] = s / float64(cnt[k])
	}
	if len(rows) > 0 {
		out["exact_fraction"] = float64(exact) / float64(len(rows))
	}
	return out
}

// FormatModel renders the validation table.
func FormatModel(rows []ModelRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cost model validation — static lower bounds vs measured cycles\n")
	fmt.Fprintf(&b, "%-2s %-15s %-4s %7s %12s %9s %9s %-13s %6s %6s %6s\n",
		"ID", "kernel", "mach", "n", "committed", "cycles", "bound", "binding", "tight", "pbus", "bus")
	for _, r := range rows {
		com := r.PredCommitted.String()
		if r.PredCommitted.IsExact() && r.PredCommitted.Value() == r.Committed {
			com += "="
		} else if r.PredCommitted.IsExact() {
			com += "!"
		}
		fmt.Fprintf(&b, "%-2s %-15s %-4s %7d %12s %9d %9d %-13s %5.0f%% %5.1f%% %5.1f%%\n",
			r.ID, r.Name, r.Variant, r.Size, com, r.Cycles, r.Bound, r.BoundName,
			100*r.Tightness, 100*r.PredBusUtil, 100*r.BusUtil)
	}
	s := ModelSummary(rows)
	fmt.Fprintf(&b, "\nmean tightness %.0f%% (uve %.0f%%, sve %.0f%%, neon %.0f%%), exact predictions %.0f%%\n",
		100*s["mean_tightness"], 100*s["mean_tightness_uve"],
		100*s["mean_tightness_sve"], 100*s["mean_tightness_neon"],
		100*s["exact_fraction"])
	fmt.Fprintf(&b, "(every bound is a proved lower bound: `=` marks committed counts the\nsimulator confirmed; bounds are loose on stall-dominated kernels, whose\ncycles are latency, not throughput)\n")
	return b.String()
}
