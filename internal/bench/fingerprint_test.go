package bench

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestFingerprintJobStable: the fingerprint is a pure function of the
// job's content — equal jobs hash equal across calls.
func TestFingerprintJobStable(t *testing.T) {
	j := Job{Kernel: kernels.ByID("A"), Variant: kernels.UVE, Size: 96}
	h1, err := FingerprintJob(j)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := FingerprintJob(j)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("same job fingerprinted differently across calls")
	}
}

// TestFingerprintJobSeparates: kernel, variant, size and every
// result-shaping config axis move the fingerprint.
func TestFingerprintJobSeparates(t *testing.T) {
	base := Job{Kernel: kernels.ByID("A"), Variant: kernels.UVE, Size: 96}
	h0, err := FingerprintJob(base)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Job{
		"kernel":  {Kernel: kernels.ByID("C"), Variant: kernels.UVE, Size: 96},
		"variant": {Kernel: kernels.ByID("A"), Variant: kernels.SVE, Size: 96},
		"size":    {Kernel: kernels.ByID("A"), Variant: kernels.UVE, Size: 128},
	}
	opt := func(mut func(o *sim.Options)) Job {
		o := sim.DefaultOptions(kernels.UVE)
		mut(&o)
		return Job{Kernel: kernels.ByID("A"), Variant: kernels.UVE, Size: 96, Opts: &o}
	}
	variants["fidelity"] = opt(func(o *sim.Options) { o.Fidelity = sim.Functional })
	variants["sanitize"] = opt(func(o *sim.Options) { o.Sanitize = sim.SanitizeOn })
	variants["faults"] = opt(func(o *sim.Options) { p := fault.DefaultPlan(1); o.Faults = &p })
	variants["traced"] = opt(func(o *sim.Options) { o.Trace = trace.NewCollector(16, 0) })
	variants["hashmem"] = opt(func(o *sim.Options) { o.HashMem = true })
	for name, j := range variants {
		h, err := FingerprintJob(j)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if h == h0 {
			t.Errorf("%s change did not move the fingerprint", name)
		}
	}

	// Trace identity reduces to presence: two different collectors are the
	// same fingerprint (unlike the in-process memo key, which must keep
	// per-collector runs separate).
	ta, err := FingerprintJob(opt(func(o *sim.Options) { o.Trace = trace.NewCollector(16, 0) }))
	if err != nil {
		t.Fatal(err)
	}
	tb, err := FingerprintJob(opt(func(o *sim.Options) { o.Trace = trace.NewCollector(32, 0) }))
	if err != nil {
		t.Fatal(err)
	}
	if ta != tb {
		t.Error("trace recorder identity leaked into the fingerprint")
	}
}

// TestFingerprintJobDefaultSize: Size 0 fingerprints identically to the
// kernel's DefaultSize, matching what execution would run.
func TestFingerprintJobDefaultSize(t *testing.T) {
	k := kernels.ByID("A")
	h0, err := FingerprintJob(Job{Kernel: k, Variant: kernels.UVE})
	if err != nil {
		t.Fatal(err)
	}
	hd, err := FingerprintJob(Job{Kernel: k, Variant: kernels.UVE, Size: k.DefaultSize})
	if err != nil {
		t.Fatal(err)
	}
	if h0 != hd {
		t.Fatal("Size 0 and DefaultSize fingerprint differently")
	}
}

// TestFingerprintCoversConfigFP: every field of the in-process memo
// fingerprint (configFP) must have a declared counterpart in the
// cross-process fingerprint (jobConfigFP), so a result-shaping Options
// axis can never be added to one and forgotten in the other.
func TestFingerprintCoversConfigFP(t *testing.T) {
	covered := map[string]string{
		"core":       "Core",
		"hier":       "Hier",
		"eng":        "Eng",
		"forceLevel": "Eng", // HashConfig hashes the pointee through Eng.ForceLevel
		"hasForce":   "Eng",
		"skipCheck":  "SkipCheck",
		"sanitize":   "Sanitize",
		"hashMem":    "HashMem",
		"watchdog":   "Watchdog",
		"maxCycles":  "MaxCycles",
		"faults":     "Faults",
		"hasFaults":  "HasFaults",
		"rec":        "Traced", // identity reduced to presence across processes
		"fidelity":   "Fidelity",
	}
	fpType := reflect.TypeOf(configFP{})
	jobType := reflect.TypeOf(jobConfigFP{})
	for i := 0; i < fpType.NumField(); i++ {
		name := fpType.Field(i).Name
		target, ok := covered[name]
		if !ok {
			t.Errorf("configFP field %q has no jobConfigFP counterpart: update jobConfigFP and this map", name)
			continue
		}
		if _, ok := jobType.FieldByName(target); !ok {
			t.Errorf("configFP field %q maps to missing jobConfigFP field %q", name, target)
		}
	}
}

// TestJobCtxCancelEvicts: a canceled execution must not poison the memo
// table — the next submission of the same simulation re-executes and
// succeeds.
func TestJobCtxCancelEvicts(t *testing.T) {
	r := NewRunner(1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := Job{Kernel: kernels.ByID("A"), Variant: kernels.UVE, Size: 96, Ctx: ctx}
	_, err := r.Run(j)
	if err == nil {
		t.Fatal("pre-canceled job did not fail")
	}
	var ce *sim.CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("error is %T (%v), want *sim.CanceledError", err, err)
	}
	if s := r.Stats(); s.CancelEvicted != 1 {
		t.Fatalf("CancelEvicted = %d, want 1", s.CancelEvicted)
	}

	j.Ctx = nil
	res, err := r.Run(j)
	if err != nil {
		t.Fatalf("resubmission after eviction failed: %v", err)
	}
	if res == nil || res.Cycles <= 0 {
		t.Fatal("resubmission did not produce a real result")
	}
	s := r.Stats()
	if s.Simulated != 2 {
		t.Fatalf("Simulated = %d, want 2 (canceled run + re-execution)", s.Simulated)
	}
	if s.MemoHits != 0 {
		t.Fatalf("MemoHits = %d, want 0 (canceled entry must not satisfy lookups)", s.MemoHits)
	}
}
