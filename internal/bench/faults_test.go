package bench

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestBenchMemoKeyCoversOptions asserts every sim.Options field that
// changes what a simulation computes or measures separates memo keys. A
// field missing from configFP would let two different runs share a result
// (the pre-existing bug this PR fixes for Sanitize, and guards for the new
// fault/watchdog/hash options).
func TestBenchMemoKeyCoversOptions(t *testing.T) {
	k := kernels.ByID("C")
	base := func() *sim.Options {
		o := sim.DefaultOptions(kernels.UVE)
		return &o
	}
	job := func(o *sim.Options) Job { return Job{Kernel: k, Variant: kernels.UVE, Size: 32, Opts: o} }
	ref := keyOf(job(base()))

	plan := fault.DefaultPlan(3)
	mutations := map[string]func(o *sim.Options){
		"SkipCheck":    func(o *sim.Options) { o.SkipCheck = true },
		"Sanitize":     func(o *sim.Options) { o.Sanitize = sim.SanitizeOn },
		"SanitizeAuto": func(o *sim.Options) { o.Sanitize = sim.SanitizeAuto },
		"HashMem":      func(o *sim.Options) { o.HashMem = true },
		"Watchdog":     func(o *sim.Options) { o.Watchdog = 12345 },
		"MaxCycles":    func(o *sim.Options) { o.MaxCycles = 99999 },
		"Faults":       func(o *sim.Options) { o.Faults = &plan },
		"Trace":        func(o *sim.Options) { o.Trace = trace.NewCollector(8, 0) },
		"Core":         func(o *sim.Options) { o.Core.ROBSize++ },
		"Eng":          func(o *sim.Options) { o.Eng.FIFODepth++ },
		"Fidelity":     func(o *sim.Options) { o.Fidelity = sim.Functional },
	}
	for name, mut := range mutations {
		o := base()
		mut(o)
		if keyOf(job(o)) == ref {
			t.Errorf("Options.%s does not separate memo keys", name)
		}
	}

	// Equal fault plans behind distinct pointers must share a key.
	pa, pb := fault.DefaultPlan(3), fault.DefaultPlan(3)
	oa, ob := base(), base()
	oa.Faults, ob.Faults = &pa, &pb
	if keyOf(job(oa)) != keyOf(job(ob)) {
		t.Error("equal fault plans behind different pointers got different keys")
	}
}

// TestRunnerSnapshotsOptionsAtSubmit: mutating a caller-owned plan after
// RunAll must neither corrupt the memoized result nor let a re-submission
// with the old value miss the memo.
func TestRunnerSnapshotsOptionsAtSubmit(t *testing.T) {
	k := kernels.ByID("C")
	r := NewRunner(2)
	plan := fault.DefaultPlan(1)
	o := sim.DefaultOptions(kernels.UVE)
	o.Faults = &plan
	o.HashMem = true

	first, err := r.Run(Job{Kernel: k, Variant: kernels.UVE, Size: 64, Opts: &o})
	if err != nil {
		t.Fatal(err)
	}
	plan.Seed = 2 // caller mutates the shared pointee after submission

	fresh := fault.DefaultPlan(1)
	o2 := sim.DefaultOptions(kernels.UVE)
	o2.Faults = &fresh
	o2.HashMem = true
	second, err := r.Run(Job{Kernel: k, Variant: kernels.UVE, Size: 64, Opts: &o2})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Simulated != 1 || st.MemoHits != 1 {
		t.Fatalf("seed-1 resubmission missed the memo: %+v", st)
	}
	if first.Cycles != second.Cycles || first.MemHash != second.MemHash {
		t.Fatal("memoized result changed under caller mutation")
	}

	// The mutated plan is a different simulation.
	third, err := r.Run(Job{Kernel: k, Variant: kernels.UVE, Size: 64, Opts: &o})
	if err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Simulated != 2 {
		t.Fatalf("seed-2 plan memo-shared with seed-1: %+v", st)
	}
	if third.MemHash != first.MemHash {
		t.Fatal("fault seeds changed architectural state")
	}
}

// TestFaultCampaignSmall runs the campaign grid at tiny sizes: every row
// must pass the state oracle, and the rendering must be deterministic
// across independent Options (the check.sh fault-smoke gate relies on it).
func TestFaultCampaignSmall(t *testing.T) {
	rows := FaultCampaign(&Options{Scale: 1000})
	if len(rows) != len(kernels.All)*2*len(faultSeeds) {
		t.Fatalf("campaign produced %d rows", len(rows))
	}
	var injected uint64
	for i := range rows {
		r := &rows[i]
		if r.Err != "" {
			t.Errorf("%s/%s seed=%#x: %s", r.ID, r.Variant, r.Seed, r.Err)
		} else if !r.StateOK {
			t.Errorf("%s/%s seed=%#x: state oracle failed", r.ID, r.Variant, r.Seed)
		}
		injected += r.Injected.Total()
	}
	if injected == 0 {
		t.Error("campaign injected nothing")
	}

	again := FormatFaultCampaign(FaultCampaign(&Options{Scale: 1000}))
	if got := FormatFaultCampaign(rows); got != again {
		t.Error("campaign output not deterministic across runs")
	}
	if !strings.Contains(again, "state") {
		t.Error("campaign table missing header")
	}
}
