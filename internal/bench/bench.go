// Package bench regenerates every table and figure of the paper's
// evaluation (§VI): Fig 8 A–E (instruction reduction, speedup, rename
// blocks, bus utilization, GEMM unrolling), Fig 9 (vector physical
// registers), Fig 10 (FIFO depth), Fig 11 (streaming cache level), the
// stream-processing-module sweep, and the §VI-C storage accounting.
package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/arch"
	"repro/internal/cpu"
	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Scale shrinks problem sizes for quick runs: the harness uses
// max(MinSize, DefaultSize/Scale) elements.
type Options struct {
	Scale   int  // 1 = paper-scale defaults
	Verbose bool // print each run as it completes
	// Workers sizes the parallel runner's worker pool: 0 = GOMAXPROCS,
	// 1 = fully sequential.
	Workers int
	// Faults, when set, replaces the default plan as the fault-campaign
	// template (`-exp faults`); its seed is overridden per grid point.
	// Other experiments ignore it — the evaluation figures are fault-free.
	Faults *fault.Plan
	// Watchdog, when positive, tightens the campaign's forward-progress
	// bound (cycles without a commit before a structured abort).
	Watchdog int64

	mu sync.Mutex
	r  *Runner
}

// Runner returns the options' shared parallel runner, creating it on first
// use. Sharing one runner across every experiment of an invocation is what
// lets the memo table simulate the common default-configuration baseline
// exactly once for `uvebench -exp all`.
func (o *Options) Runner() *Runner {
	if o == nil {
		return NewRunner(0)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.r == nil {
		o.r = NewRunner(o.Workers)
	}
	return o.r
}

func (o *Options) scale(size int) int {
	if o == nil || o.Scale <= 1 {
		return size
	}
	s := size / o.Scale
	if s < 1 {
		// Scales beyond DefaultSize must not zero (or, with negative
		// sizes upstream, invert) the intermediate size before SizeFor's
		// per-kernel structural clamps apply.
		s = 1
	}
	return s
}

// SizeFor shrinks a kernel's default size while respecting each kernel's
// structural constraints (multiples of the 512-bit lane count for the
// blocked kernels).
func SizeFor(k *kernels.Kernel, o *Options) int {
	return QuantizeSize(k, o.scale(k.DefaultSize))
}

// QuantizeSize snaps an arbitrary problem size onto the kernel's
// structural grid — the builders reject sizes off it (GEMM's lane
// blocking, HACCmk's NEON unroll) rather than silently rounding, so any
// caller generating sizes (scaled sweeps, fuzz harnesses) quantizes here
// first.
func QuantizeSize(k *kernels.Kernel, n int) int {
	switch k.ID {
	case "D", "E", "N", "F", "G": // lane-blocked matrices
		if n < 32 {
			n = 32
		}
		n = n / 16 * 16
	case "K": // 3-D grid edge
		if n < 8 {
			n = 8
		}
	case "L": // NEON main loop needs a multiple of 4
		if n < 16 {
			n = 16
		}
		n = n / 4 * 4
	default:
		if n < 16 {
			n = 16
		}
	}
	return n
}

// Fig8Row carries one benchmark's measurements across the three machines.
type Fig8Row struct {
	ID, Name      string
	SVEVectorized bool
	Size          int

	Cycles map[kernels.Variant]int64
	Inst   map[kernels.Variant]uint64
	Rename map[kernels.Variant]float64
	BusU   map[kernels.Variant]float64
}

// safeDiv divides, mapping a zero denominator (or a non-finite quotient)
// to 0 instead of NaN/Inf — a zero-cycle run is a degenerate measurement,
// not a meaningful ratio, and non-finite floats would make the -json
// report unmarshalable. Degenerate rows are surfaced explicitly through
// Degenerate.
func safeDiv(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	q := num / den
	if math.IsNaN(q) || math.IsInf(q, 0) {
		return 0
	}
	return q
}

// SpeedupVs returns UVE speedup over the given baseline (0 when either
// measurement is degenerate).
func (r *Fig8Row) SpeedupVs(v kernels.Variant) float64 {
	return safeDiv(float64(r.Cycles[v]), float64(r.Cycles[kernels.UVE]))
}

// InstReductionVs returns 1 − Inst(UVE)/Inst(baseline), the Fig 8.A metric
// (0 when the baseline committed nothing).
func (r *Fig8Row) InstReductionVs(v kernels.Variant) float64 {
	if r.Inst[v] == 0 {
		return 0
	}
	return 1 - float64(r.Inst[kernels.UVE])/float64(r.Inst[v])
}

// Degenerate reports whether any of the row's cycle counts is zero (its
// ratios are then meaningless and forced to 0).
func (r *Fig8Row) Degenerate() bool {
	for _, v := range fig8Variants {
		if r.Cycles[v] == 0 {
			return true
		}
	}
	return false
}

// fig8Variants are the three Table I machines, in Fig 8 column order.
var fig8Variants = []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON}

// Fig8 runs all benchmarks on all three machines with the Table I
// configuration and collects the Fig 8 A–D metrics. The 19×3 matrix fans
// out over the options' runner; rows come back in Fig 8 order regardless
// of which worker finished first.
func Fig8(o *Options) []Fig8Row {
	var jobs []Job
	for _, k := range kernels.All {
		size := SizeFor(k, o)
		for _, v := range fig8Variants {
			jobs = append(jobs, Job{Kernel: k, Variant: v, Size: size})
		}
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var rows []Fig8Row
	i := 0
	for _, k := range kernels.All {
		size := SizeFor(k, o)
		row := Fig8Row{
			ID: k.ID, Name: k.Name, SVEVectorized: k.SVEVectorized, Size: size,
			Cycles: map[kernels.Variant]int64{},
			Inst:   map[kernels.Variant]uint64{},
			Rename: map[kernels.Variant]float64{},
			BusU:   map[kernels.Variant]float64{},
		}
		for _, v := range fig8Variants {
			res := results[i]
			i++
			row.Cycles[v] = res.Cycles
			row.Inst[v] = res.Committed
			row.Rename[v] = res.Core.RenameBlocksPerCycle()
			row.BusU[v] = res.BusUtil
			if o != nil && o.Verbose {
				fmt.Printf("  %s/%s n=%d: %d cycles, %d inst, IPC %.2f\n",
					k.Name, v, size, res.Cycles, res.Committed, res.IPC())
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// GeoMeanSpeedup aggregates UVE-vs-baseline speedups over the kernels the
// paper includes in its average (only compiler-vectorized ones for SVE).
func GeoMeanSpeedup(rows []Fig8Row, base kernels.Variant, vectorizedOnly bool) float64 {
	logSum, n := 0.0, 0
	for _, r := range rows {
		if vectorizedOnly && !r.SVEVectorized {
			continue
		}
		s := r.SpeedupVs(base)
		if s <= 0 {
			continue // degenerate row: excluded rather than poisoning the mean
		}
		logSum += math.Log(s)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// MeanInstReduction averages the Fig 8.A metric.
func MeanInstReduction(rows []Fig8Row, base kernels.Variant, vectorizedOnly bool) float64 {
	sum, n := 0.0, 0
	for _, r := range rows {
		if vectorizedOnly && !r.SVEVectorized {
			continue
		}
		sum += r.InstReductionVs(base)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanRenameReduction compares the average rename-blocks/cycle across the
// kernel set: 1 − mean(UVE)/mean(baseline) (Fig 8.C). Averaging the rates
// first keeps kernels whose baseline barely stalls from dominating.
func MeanRenameReduction(rows []Fig8Row, base kernels.Variant, vectorizedOnly bool) float64 {
	var uveSum, baseSum float64
	for _, r := range rows {
		if vectorizedOnly && !r.SVEVectorized {
			continue
		}
		uveSum += r.Rename[kernels.UVE]
		baseSum += r.Rename[base]
	}
	if baseSum <= 0 {
		return 0
	}
	return 1 - uveSum/baseSum
}

// FormatFig8 renders the A–D panels as a text table.
func FormatFig8(rows []Fig8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 — per-benchmark evaluation (Table I machines)\n")
	fmt.Fprintf(&b, "%-2s %-15s %6s | %9s %9s | %7s %7s | %7s %7s | %7s %7s %7s\n",
		"ID", "kernel", "size", "inst-red", "inst-red", "speedup", "speedup",
		"renameB", "renameB", "busU", "busU", "busU")
	fmt.Fprintf(&b, "%-2s %-15s %6s | %9s %9s | %7s %7s | %7s %7s | %7s %7s %7s\n",
		"", "", "", "vs SVE", "vs NEON", "vs SVE", "vs NEON", "UVE", "SVE", "UVE", "SVE", "NEON")
	for _, r := range rows {
		star := ""
		if !r.SVEVectorized {
			star = "*"
		}
		fmt.Fprintf(&b, "%-2s %-15s %6d | %8.1f%% %8.1f%% | %6.2fx %6.2fx | %7.3f %7.3f | %6.1f%% %6.1f%% %6.1f%%\n",
			r.ID, r.Name+star, r.Size,
			100*r.InstReductionVs(kernels.SVE), 100*r.InstReductionVs(kernels.NEON),
			r.SpeedupVs(kernels.SVE), r.SpeedupVs(kernels.NEON),
			r.Rename[kernels.UVE], r.Rename[kernels.SVE],
			100*r.BusU[kernels.UVE], 100*r.BusU[kernels.SVE], 100*r.BusU[kernels.NEON])
	}
	fmt.Fprintf(&b, "\n(*) not vectorized by the paper's ARM SVE compiler: baselines run scalar code\n")
	fmt.Fprintf(&b, "geomean speedup vs SVE (vectorized only): %.2fx   (paper: 2.4x)\n",
		GeoMeanSpeedup(rows, kernels.SVE, true))
	fmt.Fprintf(&b, "geomean speedup vs NEON (all):            %.2fx\n",
		GeoMeanSpeedup(rows, kernels.NEON, false))
	fmt.Fprintf(&b, "mean committed-inst reduction vs SVE:     %.1f%%  (paper: 60.9%%)\n",
		100*MeanInstReduction(rows, kernels.SVE, true))
	fmt.Fprintf(&b, "mean committed-inst reduction vs NEON:    %.1f%%  (paper: 93.2%%)\n",
		100*MeanInstReduction(rows, kernels.NEON, false))
	fmt.Fprintf(&b, "mean rename-block reduction vs SVE:       %.1f%%  (paper: 33.4%%)\n",
		100*MeanRenameReduction(rows, kernels.SVE, true))
	return b.String()
}

// SweepPoint is one (kernel, parameter) measurement of a sensitivity sweep,
// normalized against the kernel's reference configuration.
type SweepPoint struct {
	Kernel  string
	Variant kernels.Variant
	Param   string
	Cycles  int64
	Speedup float64 // reference cycles / cycles
}

// sensitivityKernels is the Fig 9–11 subset.
var sensitivityKernels = []string{"D", "J", "B", "O"}

// fig9Variants are the two machines Fig 9 compares.
var fig9Variants = []kernels.Variant{kernels.UVE, kernels.SVE}

// Fig9 sweeps the number of vector physical registers {48, 64, 96} for UVE
// and SVE (paper Fig 9: UVE flat, SVE rising). The 48-PR point is the
// Table I default, so it memo-shares with the Fig 8 baseline run.
func Fig9(o *Options) []SweepPoint {
	prs := []int{48, 64, 96}
	var jobs []Job
	for _, id := range sensitivityKernels {
		k := kernels.ByID(id)
		size := SizeFor(k, o)
		for _, v := range fig9Variants {
			for _, pr := range prs {
				opts := sim.DefaultOptions(v)
				opts.Core.VecPRF = pr
				jobs = append(jobs, Job{Kernel: k, Variant: v, Size: size, Opts: &opts})
			}
		}
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var out []SweepPoint
	i := 0
	for _, id := range sensitivityKernels {
		k := kernels.ByID(id)
		for _, v := range fig9Variants {
			ref := int64(0)
			for _, pr := range prs {
				res := results[i]
				i++
				if pr == 48 {
					ref = res.Cycles
				}
				out = append(out, SweepPoint{
					Kernel: k.Name, Variant: v, Param: fmt.Sprintf("%dPR", pr),
					Cycles: res.Cycles, Speedup: safeDiv(float64(ref), float64(res.Cycles)),
				})
			}
		}
	}
	return out
}

// Fig10 sweeps the Load/Store FIFO depth {2, 4, 8, 12} on the UVE machine
// (paper Fig 10: ≥4 needed, 8 slightly better, saturating; MAMR most
// sensitive). Results are normalized to depth 8.
func Fig10(o *Options) []SweepPoint {
	depths := []int{2, 4, 8, 12}
	ks := append([]string{"E"}, sensitivityKernels...)
	var jobs []Job
	for _, id := range ks {
		k := kernels.ByID(id)
		size := SizeFor(k, o)
		for _, d := range depths {
			opts := sim.DefaultOptions(kernels.UVE)
			opts.Eng.FIFODepth = d
			jobs = append(jobs, Job{Kernel: k, Variant: kernels.UVE, Size: size, Opts: &opts})
		}
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var out []SweepPoint
	i := 0
	for _, id := range ks {
		k := kernels.ByID(id)
		cycles := map[int]int64{}
		for _, d := range depths {
			cycles[d] = results[i].Cycles
			i++
		}
		for _, d := range depths {
			out = append(out, SweepPoint{
				Kernel: k.Name, Variant: kernels.UVE, Param: fmt.Sprintf("depth=%d", d),
				Cycles: cycles[d], Speedup: safeDiv(float64(cycles[8]), float64(cycles[d])),
			})
		}
	}
	return out
}

// Fig11 sweeps the memory level streams operate over {L1, L2, DRAM}
// (paper Fig 11: L2 generally best). Normalized to L2.
func Fig11(o *Options) []SweepPoint {
	levels := []arch.CacheLevel{arch.LevelL1, arch.LevelL2, arch.LevelMem}
	var jobs []Job
	for _, id := range sensitivityKernels {
		k := kernels.ByID(id)
		size := SizeFor(k, o)
		for _, lvl := range levels {
			lvl := lvl
			opts := sim.DefaultOptions(kernels.UVE)
			opts.Eng.ForceLevel = &lvl
			jobs = append(jobs, Job{Kernel: k, Variant: kernels.UVE, Size: size, Opts: &opts})
		}
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var out []SweepPoint
	i := 0
	for _, id := range sensitivityKernels {
		k := kernels.ByID(id)
		cycles := map[arch.CacheLevel]int64{}
		for _, lvl := range levels {
			cycles[lvl] = results[i].Cycles
			i++
		}
		for _, lvl := range levels {
			out = append(out, SweepPoint{
				Kernel: k.Name, Variant: kernels.UVE, Param: lvl.String(),
				Cycles: cycles[lvl], Speedup: safeDiv(float64(cycles[arch.LevelL2]), float64(cycles[lvl])),
			})
		}
	}
	return out
}

// SPMSweep varies the number of Stream Processing Modules from 2 to 8
// (paper §VI-B: less than 0.1% variation). Normalized to 2 modules.
func SPMSweep(o *Options) []SweepPoint {
	mods := []int{2, 4, 8}
	var jobs []Job
	for _, id := range sensitivityKernels {
		k := kernels.ByID(id)
		size := SizeFor(k, o)
		for _, m := range mods {
			opts := sim.DefaultOptions(kernels.UVE)
			opts.Eng.NumModules = m
			jobs = append(jobs, Job{Kernel: k, Variant: kernels.UVE, Size: size, Opts: &opts})
		}
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var out []SweepPoint
	i := 0
	for _, id := range sensitivityKernels {
		k := kernels.ByID(id)
		cycles := map[int]int64{}
		for _, m := range mods {
			cycles[m] = results[i].Cycles
			i++
		}
		for _, m := range mods {
			out = append(out, SweepPoint{
				Kernel: k.Name, Variant: kernels.UVE, Param: fmt.Sprintf("%dSPM", m),
				Cycles: cycles[m], Speedup: safeDiv(float64(cycles[2]), float64(cycles[m])),
			})
		}
	}
	return out
}

// Fig8E measures the UVE GEMM with inner-loop unrolling 1/2/4/8 (paper
// Fig 8.E). Normalized to no unrolling.
func Fig8E(o *Options) []SweepPoint {
	factors := []int{1, 2, 4, 8}
	k := kernels.ByID("D")
	size := SizeFor(k, o)
	var jobs []Job
	for _, f := range factors {
		f := f
		jobs = append(jobs, Job{
			Variant: kernels.UVE, Size: size,
			Key: fmt.Sprintf("fig8e-gemm-unroll%d", f),
			Build: func(h *mem.Hierarchy) *kernels.Instance {
				return kernels.UnrolledGemmUVE(h, size, f)
			},
		})
	}
	results := mustAll(o.Runner().RunAll(jobs))

	cycles := map[int]int64{}
	for i, f := range factors {
		cycles[f] = results[i].Cycles
	}
	var out []SweepPoint
	for _, f := range factors {
		out = append(out, SweepPoint{
			Kernel: "GEMM", Variant: kernels.UVE, Param: fmt.Sprintf("unroll=%d", f),
			Cycles: cycles[f], Speedup: safeDiv(float64(cycles[1]), float64(cycles[f])),
		})
	}
	return out
}

// FormatSweep renders sweep points grouped by kernel.
func FormatSweep(title string, pts []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	byKernel := map[string][]SweepPoint{}
	var order []string
	for _, p := range pts {
		key := p.Kernel + "/" + p.Variant.String()
		if _, ok := byKernel[key]; !ok {
			order = append(order, key)
		}
		byKernel[key] = append(byKernel[key], p)
	}
	sort.Strings(order)
	for _, key := range order {
		fmt.Fprintf(&b, "  %-18s", key)
		for _, p := range byKernel[key] {
			fmt.Fprintf(&b, "  %s:%6.3f (%d cyc)", p.Param, p.Speedup, p.Cycles)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatFig8Table renders the Fig 8 left metadata table from the registry.
func FormatFig8Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 8 benchmark table\n%-2s %-15s %-14s %8s %8s  %s\n",
		"ID", "kernel", "domain", "#streams", "#loops", "pattern")
	for _, k := range kernels.All {
		star := " "
		if !k.SVEVectorized {
			star = "*"
		}
		fmt.Fprintf(&b, "%-2s %-15s %-14s %8d %8d  %s%s\n",
			k.ID, k.Name, k.Domain, k.Streams, k.Loops, k.Pattern, star)
	}
	return b.String()
}

// FormatTable1 renders the machine configuration (Table I).
func FormatTable1() string {
	c := cpu.DefaultConfig()
	hc := mem.DefaultHierarchyConfig()
	ec := engine.DefaultConfig()
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — CPU model configuration\n")
	fmt.Fprintf(&b, "  core:    %d-wide fetch/commit, %d-wide issue; ROB %d, IQ %d (%d/port), LQ %d, SQ %d\n",
		c.FetchWidth, c.IssueWidth, c.ROBSize, c.IQSize, c.SchedSize, c.LQSize, c.SQSize)
	fmt.Fprintf(&b, "  PRFs:    %d int, %d FP, %d x %d-bit vector, %d predicate\n",
		c.IntPRF, c.FPPRF, c.VecPRF, c.VecBytes*8, c.PredPRF)
	fmt.Fprintf(&b, "  FUs:     %d int ALUs, %d vector/FP, %d load + %d store ports\n",
		c.IntALUs, c.VecFPUs, c.LoadPorts, c.StorePorts)
	fmt.Fprintf(&b, "  engine:  %d SPMs, %d-entry FIFOs, %d streams (%d physical), MRQ %d\n",
		ec.NumModules, ec.FIFODepth, ec.LogStreams, ec.PhysStreams, ec.MRQSize)
	fmt.Fprintf(&b, "  L1-D:    %d KB %d-way, %d-cycle hit, stride prefetcher depth %d (baseline)\n",
		hc.L1.SizeBytes>>10, hc.L1.Ways, hc.L1.HitLatency, hc.StrideDepth)
	fmt.Fprintf(&b, "  L2:      %d KB %d-way, %d-cycle hit, AMPM prefetcher (baseline)\n",
		hc.L2.SizeBytes>>10, hc.L2.Ways, hc.L2.HitLatency)
	fmt.Fprintf(&b, "  DRAM:    %d channels, %d-cycle access, %d cycles/line per channel (DDR3-1600-class)\n",
		hc.DRAM.Channels, hc.DRAM.AccessLatency, hc.DRAM.LineService)
	return b.String()
}

// FormatHW renders the §VI-C storage accounting.
func FormatHW() string {
	table, mrq, fifos := engine.StorageFootprint(engine.DefaultConfig())
	small := engine.DefaultConfig()
	small.LogStreams = 8
	st, sm, sf := engine.StorageFootprint(small)
	var b strings.Builder
	fmt.Fprintf(&b, "§VI-C — Streaming Engine storage accounting\n")
	fmt.Fprintf(&b, "  Stream Table + SCROB: %6d B  (paper: ≈14 KB)\n", table)
	fmt.Fprintf(&b, "  Memory Request Queue: %6d B  (paper: 160 B)\n", mrq)
	fmt.Fprintf(&b, "  Load/Store FIFOs:     %6d B  (paper: ≈17 KB)\n", fifos)
	fmt.Fprintf(&b, "  total:                %6d B\n", table+mrq+fifos)
	fmt.Fprintf(&b, "  reduced (8 streams):  %6d B  (paper: ≈6 KB + FIFOs)\n", st+sm+sf)
	return b.String()
}

// Ablations quantifies the design choices DESIGN.md calls out, beyond the
// paper's own sweeps: the baseline without its hardware prefetchers, and
// the engine restricted to a single load port.
func Ablations(o *Options) []SweepPoint {
	ids := []string{"C", "D", "B", "F"}
	var jobs []Job
	for _, id := range ids {
		k := kernels.ByID(id)
		size := SizeFor(k, o)
		// Baseline prefetchers on/off. The default-config reference runs
		// memo-share with Fig 8 under `-exp all`.
		noPf := sim.DefaultOptions(kernels.SVE)
		noPf.Hier.Prefetchers = false
		// Engine load ports 2 → 1.
		onePort := sim.DefaultOptions(kernels.UVE)
		onePort.Eng.LoadPorts = 1
		jobs = append(jobs,
			Job{Kernel: k, Variant: kernels.SVE, Size: size},
			Job{Kernel: k, Variant: kernels.SVE, Size: size, Opts: &noPf},
			Job{Kernel: k, Variant: kernels.UVE, Size: size},
			Job{Kernel: k, Variant: kernels.UVE, Size: size, Opts: &onePort},
		)
	}
	results := mustAll(o.Runner().RunAll(jobs))

	var out []SweepPoint
	for i, id := range ids {
		k := kernels.ByID(id)
		ref, noPf, uveRef, onePort := results[4*i], results[4*i+1], results[4*i+2], results[4*i+3]
		out = append(out, SweepPoint{
			Kernel: k.Name, Variant: kernels.SVE, Param: "no-prefetch",
			Cycles: noPf.Cycles, Speedup: safeDiv(float64(ref.Cycles), float64(noPf.Cycles)),
		}, SweepPoint{
			Kernel: k.Name, Variant: kernels.UVE, Param: "1-load-port",
			Cycles: onePort.Cycles, Speedup: safeDiv(float64(uveRef.Cycles), float64(onePort.Cycles)),
		})
	}
	return out
}
