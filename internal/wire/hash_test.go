// Hashing property tests. External test package like corpus_test.go, so
// the unit-hash properties can range over the full kernel corpus.
package wire_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/wire"
)

// TestHashUnitMatchesEncoding: HashUnit is exactly SHA-256 over EncodeUnit.
func TestHashUnitMatchesEncoding(t *testing.T) {
	u := corpus(t)[0].Unit()
	b, err := wire.EncodeUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	h, err := wire.HashUnit(u)
	if err != nil {
		t.Fatal(err)
	}
	if h != wire.HashBytes(b) {
		t.Fatalf("HashUnit = %s, want HashBytes(EncodeUnit) = %s", h, wire.HashBytes(b))
	}
	if len(h.String()) != 64 {
		t.Fatalf("hex digest length %d, want 64", len(h.String()))
	}
}

// TestHashConfigDeterministic: equal values hash equal; the domain string
// namespaces otherwise-identical values; field changes change the hash.
func TestHashConfigDeterministic(t *testing.T) {
	type cfg struct {
		A int
		B string
		M map[string]int
		P *arch.CacheLevel
	}
	mk := func() cfg {
		return cfg{A: 7, B: "x", M: map[string]int{"k1": 1, "k2": 2, "k3": 3}}
	}
	h1, err := wire.HashConfig("d", mk())
	if err != nil {
		t.Fatal(err)
	}
	h2, err := wire.HashConfig("d", mk())
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("equal values hashed differently")
	}
	if hd, _ := wire.HashConfig("other", mk()); hd == h1 {
		t.Fatal("domain string did not separate digests")
	}
	c := mk()
	c.A = 8
	if hc, _ := wire.HashConfig("d", c); hc == h1 {
		t.Fatal("field change did not change the hash")
	}
	lv := arch.LevelL2
	c = mk()
	c.P = &lv
	hp, err := wire.HashConfig("d", c)
	if err != nil {
		t.Fatal(err)
	}
	if hp == h1 {
		t.Fatal("nil pointer and set pointer hashed equal")
	}
	lv2 := arch.LevelL2
	c2 := mk()
	c2.P = &lv2
	if hp2, _ := wire.HashConfig("d", c2); hp2 != hp {
		t.Fatal("pointer identity leaked into the hash: equal pointees hashed differently")
	}
}

// TestHashConfigRejectsFuncs: values that cannot be canonically encoded
// are an error, not a silent pointer hash.
func TestHashConfigRejectsFuncs(t *testing.T) {
	type bad struct{ F func() }
	if _, err := wire.HashConfig("d", bad{F: func() {}}); err == nil {
		t.Fatal("func-valued field hashed without error")
	}
	type iface struct{ I any }
	if _, err := wire.HashConfig("d", iface{I: 3}); err == nil {
		t.Fatal("non-nil interface field hashed without error")
	}
	if _, err := wire.HashConfig("d", iface{}); err != nil {
		t.Fatalf("nil interface field should hash as nil: %v", err)
	}
}

// TestHashUnitDistinguishesCorpus: every corpus entry hashes to a distinct
// digest — programs, argument registers and extents all participate.
func TestHashUnitDistinguishesCorpus(t *testing.T) {
	seen := make(map[wire.Hash]string)
	for _, e := range corpus(t) {
		h, err := wire.HashUnit(e.Unit())
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if prev, dup := seen[h]; dup {
			t.Fatalf("%s and %s hash equal", prev, e.Name())
		}
		seen[h] = e.Name()
	}
}
