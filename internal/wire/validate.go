package wire

import (
	"math"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
)

// The checks in this file define the set of encodable values. Encode runs
// them before emitting a single byte, and Decode runs the same checks after
// parsing, so both directions agree exactly on what is valid — the
// structural half of the canonical-form guarantee (the byte-level half is
// enforced by the reader: minimal varints, ordered sections, exact
// lengths).
//
// instPos localizes an error to one instruction. Encode passes offset -1
// (the blob does not exist yet); Decode passes the byte offset where the
// instruction starts.
type instPos func(pc int) int

func encodePos(int) int { return -1 }

// validateUnit checks a unit for encodability. pos maps an instruction
// index to its blob offset for error anchoring.
func validateUnit(u *Unit, pos instPos) error {
	if u == nil || u.Prog == nil {
		return &Error{Offset: -1, PC: -1, Msg: "nil program"}
	}
	p := u.Prog
	n := len(p.Insts)
	for pc := range p.Insts {
		if err := validateInst(&p.Insts[pc], pc, n, p.Labels, pos); err != nil {
			return err
		}
	}
	for _, name := range sortedLabelNames(p.Labels) {
		if name == "" {
			return &Error{Offset: -1, PC: -1, Msg: "empty label name"}
		}
		if lpc := p.Labels[name]; lpc < 0 || lpc > n {
			return &Error{Offset: -1, PC: -1,
				Msg: sprintf("label %q bound to pc %d, outside the %d-inst program", name, lpc, n)}
		}
	}
	prev := -1
	for _, a := range u.IntArgs {
		if a.Reg < 0 || a.Reg >= isa.NumIntRegs {
			return &Error{Offset: -1, PC: -1, Msg: sprintf("int arg register x%d out of range", a.Reg)}
		}
		if a.Reg <= prev {
			return &Error{Offset: -1, PC: -1, Msg: "int args not sorted by register"}
		}
		prev = a.Reg
	}
	prev = -1
	for _, a := range u.FPArgs {
		if a.Reg < 0 || a.Reg >= isa.NumFPRegs {
			return &Error{Offset: -1, PC: -1, Msg: sprintf("fp arg register f%d out of range", a.Reg)}
		}
		if a.Reg <= prev {
			return &Error{Offset: -1, PC: -1, Msg: "fp args not sorted by register"}
		}
		prev = a.Reg
		if !a.Width.Valid() {
			return &Error{Offset: -1, PC: -1, Msg: sprintf("fp arg f%d has invalid width %d", a.Reg, int(a.Width))}
		}
		if math.IsNaN(a.Val) {
			return &Error{Offset: -1, PC: -1, Msg: sprintf("fp arg f%d is NaN", a.Reg)}
		}
	}
	for i, e := range u.Extents {
		if e.Size < 0 {
			return &Error{Offset: -1, PC: -1, Msg: sprintf("extent %d has negative size %d", i, e.Size)}
		}
	}
	return nil
}

// validateInst checks one instruction. The branch-target range check is the
// decode-side counterpart of Program.At's silent halt masking: wrong-path
// fetch past the end may halt, but a *decoded* program whose branch aims
// outside [0, len] is corrupt and must be a positioned error.
func validateInst(in *isa.Inst, pc, n int, labels map[string]int, pos instPos) error {
	fail := func(msg string) error {
		return &Error{Offset: pos(pc), PC: pc, Op: in.Op.Name(), Msg: msg}
	}
	if !in.Op.Valid() {
		return &Error{Offset: pos(pc), PC: pc, Msg: sprintf("invalid opcode %d", uint16(in.Op))}
	}
	for _, r := range [...]isa.Reg{in.Dst, in.Src1, in.Src2, in.Src3, in.Pred} {
		if r.Class == isa.ClassNone {
			if r.N != 0 {
				return fail(sprintf("absent operand with nonzero register number %d", r.N))
			}
			continue
		}
		if !r.Valid() {
			return fail(sprintf("invalid register %s", r))
		}
	}
	if in.W != 0 && !in.W.Valid() {
		return fail(sprintf("invalid element width %d", int(in.W)))
	}
	if in.Target < 0 {
		return fail(sprintf("negative branch target %d", in.Target))
	}
	if in.Op.IsBranch() {
		// Target n is the implicit halt at program end (lint's CFG treats
		// it as exit); anything beyond is out of range.
		if in.Target > n {
			return fail(sprintf("branch target %d past the end of the %d-inst program", in.Target, n))
		}
		if in.Label != "" {
			lpc, ok := labels[in.Label]
			if !ok {
				return fail(sprintf("branch label %q not in the label table", in.Label))
			}
			if lpc != in.Target {
				return fail(sprintf("branch label %q resolves to pc %d but target is %d", in.Label, lpc, in.Target))
			}
		}
	} else if in.Label != "" {
		return fail(sprintf("label %q on a non-branch instruction", in.Label))
	}
	if (in.Op == isa.OpSCfg) != (in.Cfg != nil) {
		if in.Cfg == nil {
			return fail("stream configuration instruction without a payload")
		}
		return fail("configuration payload on a non-configuration instruction")
	}
	if in.Cfg != nil {
		if err := validateCfgPart(in.Cfg); err != nil {
			return fail(err.Error())
		}
	}
	return nil
}

type partError string

func (e partError) Error() string { return string(e) }

func partErrorf(format string, args ...any) error { return partError(sprintf(format, args...)) }

// validateCfgPart checks one stream-configuration µOp payload. Fields that
// the wire format omits for non-start parts must be zero-valued, or the
// part cannot round-trip.
func validateCfgPart(c *isa.StreamCfgPart) error {
	if c.Stream < 0 || c.Stream >= isa.NumVecRegs {
		return partErrorf("stream number u%d out of range", c.Stream)
	}
	if !c.Start {
		if c.Kind != descriptor.Load || c.Width != 0 || c.Level != arch.LevelL1 || c.Base != 0 {
			return partErrorf("non-start part carries start-only fields")
		}
	} else {
		if c.Kind != descriptor.Load && c.Kind != descriptor.Store {
			return partErrorf("invalid stream kind %d", int(c.Kind))
		}
		if !c.Width.Valid() {
			return partErrorf("invalid element width %d", int(c.Width))
		}
		if c.Level < arch.LevelL1 || c.Level > arch.LevelMem {
			return partErrorf("invalid cache level %d", int(c.Level))
		}
	}
	switch {
	case c.Mod != nil && c.Ind != nil:
		return partErrorf("part carries both a static and an indirect modifier")
	case c.Mod != nil:
		if c.Dim != (descriptor.Dim{}) {
			return partErrorf("modifier part carries a dimension payload")
		}
		return validateStaticMod(c.Mod)
	case c.Ind != nil:
		if c.Dim != (descriptor.Dim{}) {
			return partErrorf("modifier part carries a dimension payload")
		}
		return validateIndirectMod(c.Ind)
	}
	return nil
}

func validateStaticMod(m *descriptor.StaticMod) error {
	if m.Bound < 0 || m.Bound > descriptor.MaxDims {
		return partErrorf("static modifier bound %d out of range", m.Bound)
	}
	if m.Target < descriptor.TargetOffset || m.Target > descriptor.TargetStride {
		return partErrorf("invalid modifier target %d", int(m.Target))
	}
	if m.Behav != descriptor.Add && m.Behav != descriptor.Sub {
		return partErrorf("static modifier with non-static behavior %d", int(m.Behav))
	}
	return nil
}

func validateIndirectMod(m *descriptor.IndirectMod) error {
	if m.Bound < 0 || m.Bound > descriptor.MaxDims {
		return partErrorf("indirect modifier bound %d out of range", m.Bound)
	}
	if m.Target < descriptor.TargetOffset || m.Target > descriptor.TargetStride {
		return partErrorf("invalid modifier target %d", int(m.Target))
	}
	switch m.Behav {
	case descriptor.SetAdd, descriptor.SetSub, descriptor.SetValue:
	default:
		return partErrorf("indirect modifier with non-indirect behavior %d", int(m.Behav))
	}
	if m.Origin < 0 || m.Origin >= isa.NumVecRegs {
		return partErrorf("indirect origin stream u%d out of range", m.Origin)
	}
	return nil
}

// validateDescriptor checks a standalone descriptor: the architected rules
// plus the enum ranges Validate leaves to the configuration path.
func validateDescriptor(d *descriptor.Descriptor) error {
	if d == nil {
		return &Error{Offset: -1, PC: -1, Msg: "nil descriptor"}
	}
	if d.Kind != descriptor.Load && d.Kind != descriptor.Store {
		return &Error{Offset: -1, PC: -1, Msg: sprintf("invalid stream kind %d", int(d.Kind))}
	}
	if d.Level < arch.LevelL1 || d.Level > arch.LevelMem {
		return &Error{Offset: -1, PC: -1, Msg: sprintf("invalid cache level %d", int(d.Level))}
	}
	for i := range d.Static {
		if err := validateStaticMod(&d.Static[i]); err != nil {
			return &Error{Offset: -1, PC: -1, Msg: err.Error()}
		}
	}
	for i := range d.Indirect {
		if err := validateIndirectMod(&d.Indirect[i]); err != nil {
			return &Error{Offset: -1, PC: -1, Msg: err.Error()}
		}
	}
	if err := d.Validate(); err != nil {
		return &Error{Offset: -1, PC: -1, Msg: err.Error()}
	}
	return nil
}
