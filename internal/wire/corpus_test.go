// Property tests of the wire format over the full kernel corpus: every
// benchmark (19 kernels × UVE/SVE/NEON) must round-trip value-exactly and
// byte-exactly, truncations must always be positioned errors, and a decoded
// program must earn lint verdicts identical to the Builder-built original.
//
// This file is an external test package: internal/kernels imports
// internal/wire (for CorpusEntry.Unit), so the corpus tests cannot live in
// package wire itself.
package wire_test

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/wire"
)

// Building all 57 corpus programs (with the full verifier pass each) takes
// a few seconds; build once and share across the property tests.
var corpusOnce = sync.OnceValues(kernels.Corpus)

func corpus(t *testing.T) []kernels.CorpusEntry {
	t.Helper()
	entries, err := corpusOnce()
	if err != nil {
		t.Fatalf("corpus: %v", err)
	}
	if len(entries) != 3*len(kernels.All) {
		t.Fatalf("corpus has %d entries, want %d", len(entries), 3*len(kernels.All))
	}
	return entries
}

// TestCorpusRoundTrip is the format's central property: for every corpus
// program, Decode(Encode(u)) is deeply equal to u, encoding is stable
// across calls, and Encode(Decode(b)) reproduces b byte for byte.
func TestCorpusRoundTrip(t *testing.T) {
	for _, e := range corpus(t) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			u := e.Unit()
			b, err := wire.EncodeUnit(u)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			b2, err := wire.EncodeUnit(u)
			if err != nil || !bytes.Equal(b, b2) {
				t.Fatalf("encoding not stable across calls (err %v)", err)
			}
			got, err := wire.DecodeUnit(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !reflect.DeepEqual(got, u) {
				t.Fatalf("decoded unit differs from original:\ngot  %+v\nwant %+v", got, u)
			}
			b3, err := wire.EncodeUnit(got)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(b, b3) {
				t.Fatal("Encode(Decode(b)) is not byte-identical to b")
			}
		})
	}
}

// TestCorpusTruncation sweeps every strict prefix of every corpus blob:
// each must be rejected with an error (a *wire.Error, never a panic) —
// possible only because the header carries the section count, so a blob
// cut before an optional section is still detectably incomplete.
func TestCorpusTruncation(t *testing.T) {
	for _, e := range corpus(t) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			b, err := wire.EncodeUnit(e.Unit())
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			for i := 0; i < len(b); i++ {
				if _, err := wire.DecodeUnit(b[:i]); err == nil {
					t.Fatalf("%d-byte prefix of the %d-byte blob decoded without error", i, len(b))
				}
			}
		})
	}
}

// TestCorpusLintVerdictIdentity re-runs the static verifier over each
// decoded program with the original's recorded options: diagnostics,
// dependence verdicts and the safety certificate must match exactly.
func TestCorpusLintVerdictIdentity(t *testing.T) {
	for _, e := range corpus(t) {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			b, err := wire.EncodeUnit(e.Unit())
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			u, err := wire.DecodeUnit(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			diags, deps := e.Inst.Relint(u.Prog)
			if !reflect.DeepEqual(diags, e.Inst.Diags) {
				t.Fatalf("diagnostics differ:\ngot  %v\nwant %v", diags, e.Inst.Diags)
			}
			if !reflect.DeepEqual(deps, e.Inst.Deps) {
				t.Fatalf("dependence verdicts differ:\ngot  %v\nwant %v", deps, e.Inst.Deps)
			}
			got, want := lint.Certify(diags, deps), lint.Certify(e.Inst.Diags, e.Inst.Deps)
			if got != want {
				t.Fatalf("certificates differ:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestCorpusBlobsDistinct guards the corpus's use as a content-addressed
// store: no two programs may share an encoding.
func TestCorpusBlobsDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, e := range corpus(t) {
		b, err := wire.EncodeUnit(e.Unit())
		if err != nil {
			t.Fatalf("%s: encode: %v", e.Name(), err)
		}
		if prev, dup := seen[string(b)]; dup {
			t.Fatalf("%s and %s encode to identical bytes", prev, e.Name())
		}
		seen[string(b)] = e.Name()
	}
}
