package wire

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/program"
)

// testUnit builds a unit exercising every wire feature at once: labels
// (two on one pc), branches, a multi-part stream configuration with a
// static and an indirect modifier, and all three context sections.
func testUnit(t *testing.T) *Unit {
	t.Helper()
	d := descriptor.New(0x1000, arch.W4, descriptor.Load).
		Dim(0, 8, 1).
		Dim(2, 4, 8).
		Mod(descriptor.TargetOffset, descriptor.Add, 3, 5).
		Indirect(descriptor.TargetSize, descriptor.SetValue, 2).
		MustBuild()
	p, err := program.NewBuilder("wire-test").
		Label("top").
		Label("also-top").
		ConfigStream(1, d).
		I(isa.Li(isa.X(1), -42)).
		Label("loop").
		I(isa.AddI(isa.X(1), isa.X(1), 1)).
		I(isa.Blt(isa.X(1), isa.X(2), "loop")).
		I(isa.Halt()).
		Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return &Unit{
		Prog:    p,
		IntArgs: []IntArg{{Reg: 2, Val: 96}, {Reg: 10, Val: 0x2000}},
		FPArgs:  []FPArg{{Reg: 0, Width: arch.W4, Val: 2.5}, {Reg: 3, Width: arch.W8, Val: -1.0}},
		Extents: []Extent{{Base: 0x1000, Size: 4096}, {Base: 0x2000, Size: 64}},
	}
}

func mustEncode(t *testing.T, u *Unit) []byte {
	t.Helper()
	b, err := EncodeUnit(u)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

func TestUnitRoundTrip(t *testing.T) {
	u := testUnit(t)
	b := mustEncode(t, u)
	b2 := mustEncode(t, u)
	if !bytes.Equal(b, b2) {
		t.Fatal("two encodings of the same unit differ")
	}
	got, err := DecodeUnit(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, u) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, u)
	}
	b3, err := EncodeUnit(got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(b, b3) {
		t.Fatal("Encode(Decode(b)) differs from b")
	}
}

func TestProgramRoundTripBare(t *testing.T) {
	u := testUnit(t)
	b, err := EncodeProgram(u.Prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	p, err := DecodeProgram(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(p, u.Prog) {
		t.Fatalf("program mismatch:\ngot  %+v\nwant %+v", p, u.Prog)
	}
	if p.String() != u.Prog.String() {
		t.Fatal("decoded program renders differently")
	}
}

// TestBranchTargetAtEndAccepted pins the boundary of the branch-target
// range check: target == len(insts) is the implicit halt at program end
// (lint's CFG treats it as exit) and must decode.
func TestBranchTargetAtEndAccepted(t *testing.T) {
	p := &program.Program{
		Name:   "end-branch",
		Insts:  []isa.Inst{{Op: isa.OpJ, Target: 1}},
		Labels: map[string]int{},
	}
	b, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := DecodeProgram(b); err != nil {
		t.Fatalf("target == len must be accepted (implicit halt): %v", err)
	}
}

// TestBranchTargetPastEndRejected is the negative-corpus case for the
// decode-time branch-range check: Program.At would silently mask a corrupt
// target as a halt, so the decoder must catch it with a positioned error.
func TestBranchTargetPastEndRejected(t *testing.T) {
	p := &program.Program{
		Name:   "t",
		Insts:  []isa.Inst{{Op: isa.OpJ, Target: 1}},
		Labels: map[string]int{},
	}
	b, err := EncodeProgram(p)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	// The j instruction's tail is target, label length, cfg flag — one byte
	// each — followed by the labels section (id, length 1, count 0).
	ti := len(b) - 6
	if b[ti] != 1 {
		t.Fatalf("blob layout changed: byte %d = %#x, want the target byte 0x01", ti, b[ti])
	}
	b[ti] = 9
	_, err = DecodeProgram(b)
	if err == nil {
		t.Fatal("corrupt branch target decoded without error")
	}
	var werr *Error
	if !errors.As(err, &werr) {
		t.Fatalf("error type %T, want *wire.Error", err)
	}
	if werr.PC != 0 || werr.Op != "j" || werr.Offset < 0 {
		t.Fatalf("error not anchored to the branch: %+v", werr)
	}
	if want := "branch target 9 past the end of the 1-inst program"; !strings.Contains(werr.Msg, want) {
		t.Fatalf("message %q missing %q", werr.Msg, want)
	}
}

// --- hand-assembled blobs for byte-level negative cases ---

func sec(id byte, payload []byte) []byte {
	out := []byte{id}
	out = appendUvarint(out, uint64(len(payload)))
	return append(out, payload...)
}

func rawBlob(secs ...[]byte) []byte {
	out := append([]byte(nil), MagicProgram...)
	out = appendUvarint(out, Version)
	out = appendUvarint(out, uint64(len(secs)))
	for _, s := range secs {
		out = append(out, s...)
	}
	return out
}

func instsPayload(insts ...isa.Inst) []byte {
	var b []byte
	b = appendUvarint(b, uint64(len(insts)))
	for i := range insts {
		b = appendInst(b, &insts[i])
	}
	return b
}

func labelsPayload(pairs ...any) []byte {
	b := appendUvarint(nil, uint64(len(pairs)/2))
	for i := 0; i < len(pairs); i += 2 {
		b = appendString(b, pairs[i].(string))
		b = appendUvarint(b, uint64(pairs[i+1].(int)))
	}
	return b
}

func minimalSecs() (name, insts, labels []byte) {
	return []byte("t"), instsPayload(isa.Halt()), appendUvarint(nil, 0)
}

func TestDecodeRejects(t *testing.T) {
	name, insts, labels := minimalSecs()
	valid := rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels))
	if _, err := DecodeUnit(valid); err != nil {
		t.Fatalf("baseline blob must decode: %v", err)
	}

	scfg := isa.SCfgParts(1, descriptor.New(0x100, arch.W4, descriptor.Load).Dim(0, 8, 1).MustBuild())

	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"empty blob", nil, `shorter than the "UVEW" magic`},
		{"short blob", []byte("UV"), "shorter than"},
		{"bad magic", append([]byte("XXXX"), valid[4:]...), `bad magic "XXXX"`},
		{"descriptor magic on a program", append([]byte(MagicDescriptor), valid[4:]...), "bad magic"},
		{"future version", append(append([]byte(MagicProgram), 2), valid[5:]...), "unsupported format version 2"},
		{"padded version varint", append(append([]byte(MagicProgram), 0x81, 0x00), valid[5:]...), "non-minimal version varint"},
		{"trailing garbage", append(append([]byte(nil), valid...), 0), "trailing garbage"},
		{"unknown section id", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(7, nil)), "unknown section id 7"},
		{"duplicate section id", rawBlob(sec(secName, name), sec(secName, name)), "not after section 1"},
		{"decreasing section ids", rawBlob(sec(secInsts, insts), sec(secName, name)), "ids must strictly increase"},
		{"missing mandatory section", rawBlob(sec(secName, name), sec(secInsts, insts)), "missing mandatory section 3"},
		{"section length overrun", append(append([]byte(nil), valid[:len(valid)-len(labels)-2]...), secLabels, 100), "exceeds the"},
		{"section payload underread", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, append(appendUvarint(nil, 0), 0xff))), "unread bytes"},
		{"inst count over capacity", rawBlob(sec(secName, name), sec(secInsts, appendUvarint(nil, 1000)), sec(secLabels, labels)), "count 1000 exceeds section capacity"},
		{"invalid opcode", rawBlob(sec(secName, name), sec(secInsts, append(appendUvarint(nil, 1), make([]byte, 11)...)), sec(secLabels, labels)), "invalid opcode 0"},
		{"label on non-branch", rawBlob(sec(secName, name), sec(secInsts, instsPayload(isa.Inst{Op: isa.OpHalt, Label: "x"})), sec(secLabels, labelsPayload("x", 0))), `label "x" on a non-branch instruction`},
		{"branch label unresolved", rawBlob(sec(secName, name), sec(secInsts, instsPayload(isa.Inst{Op: isa.OpJ, Label: "gone"})), sec(secLabels, labels)), `branch label "gone" not in the label table`},
		{"branch label/target mismatch", rawBlob(sec(secName, name), sec(secInsts, instsPayload(isa.Inst{Op: isa.OpJ, Label: "l", Target: 0})), sec(secLabels, labelsPayload("l", 1))), `resolves to pc 1 but target is 0`},
		{"scfg without payload", rawBlob(sec(secName, name), sec(secInsts, instsPayload(isa.Inst{Op: isa.OpSCfg})), sec(secLabels, labels)), "without a payload"},
		{"cfg on non-scfg", rawBlob(sec(secName, name), sec(secInsts, instsPayload(isa.Inst{Op: isa.OpNop, Cfg: scfg[0].Cfg})), sec(secLabels, labels)), "payload on a non-configuration instruction"},
		{"unsorted labels", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labelsPayload("b", 0, "a", 0))), `label "a" not sorted after "b"`},
		{"duplicate labels", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labelsPayload("a", 0, "a", 0))), `not sorted after`},
		{"empty label name", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labelsPayload("", 0, "ab", 0))), "empty label name"},
		{"label pc out of range", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labelsPayload("a", 9))), `label "a" bound to pc 9, outside the 1-inst program`},
		{"empty optional int args", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(secIntArgs, appendUvarint(nil, 0))), "empty optional section"},
		{"empty optional fp args", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(secFPArgs, appendUvarint(nil, 0))), "empty optional section"},
		{"empty optional extents", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(secExtents, appendUvarint(nil, 0))), "empty optional section"},
		{"unsorted int args", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(secIntArgs, append(appendUvarint(append(appendUvarint(appendUvarint(nil, 2), 5), 0), 5), 0))), "not sorted by register"},
		{"int arg register out of range", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(secIntArgs, appendUvarint(appendUvarint(appendUvarint(nil, 1), 40), 0))), "x40 out of range"},
		{"NaN fp arg", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(secFPArgs, appendUvarint(appendUvarint(appendUvarint(appendUvarint(nil, 1), 0), 4), math.Float64bits(math.NaN())))), "is NaN"},
		{"negative extent size", rawBlob(sec(secName, name), sec(secInsts, insts), sec(secLabels, labels), sec(secExtents, appendVarint(appendUvarint(appendUvarint(nil, 1), 0x100), -1))), "negative size -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeUnit(tc.blob)
			if err == nil {
				t.Fatal("invalid blob decoded without error")
			}
			var werr *Error
			if !errors.As(err, &werr) {
				t.Fatalf("error type %T, want *wire.Error (%v)", err, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q missing %q", err, tc.want)
			}
		})
	}
}

// TestDecodeRejectsCorruptCfgPart patches single bytes inside an encoded
// stream-configuration µOp: a bad presence flag, stray part-flag bits and
// unknown payload kinds must all be positioned errors.
func TestDecodeRejectsCorruptCfgPart(t *testing.T) {
	d := descriptor.New(0x100, arch.W4, descriptor.Load).Dim(0, 8, 1).MustBuild()
	in := isa.SCfgParts(1, d)[0]
	name := []byte("t")
	labels := appendUvarint(nil, 0)

	// Encode the instruction head and the cfg payload separately so the
	// bytes to corrupt have known indices.
	var head []byte
	head = appendUvarint(head, uint64(in.Op))
	for _, r := range [...]isa.Reg{in.Dst, in.Src1, in.Src2, in.Src3, in.Pred} {
		head = appendReg(head, r)
	}
	head = appendVarint(head, in.Imm)
	head = appendUvarint(head, uint64(in.W))
	head = appendUvarint(head, uint64(in.Target))
	head = appendString(head, in.Label)
	cfgBytes := appendCfgPart(nil, in.Cfg)

	assemble := func(presence byte, mutate func(cfg []byte)) []byte {
		cfg := append([]byte(nil), cfgBytes...)
		if mutate != nil {
			mutate(cfg)
		}
		payload := appendUvarint(nil, 1)
		payload = append(payload, head...)
		payload = append(payload, presence)
		payload = append(payload, cfg...)
		return rawBlob(sec(secName, name), sec(secInsts, payload), sec(secLabels, labels))
	}

	if _, err := DecodeUnit(assemble(1, nil)); err != nil {
		t.Fatalf("baseline scfg blob must decode: %v", err)
	}

	// cfg layout: stream varint (1 byte here), flags byte, start fields
	// (kind, width, level, base), payload kind byte, dim (3 varints, 1 byte
	// each for this descriptor).
	flagsIdx := 1
	kindIdx := len(cfgBytes) - 4

	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"presence flag 2", assemble(2, nil), "neither 0 nor 1"},
		{"part flags beyond start/end", assemble(1, func(c []byte) { c[flagsIdx] = 7 }), "bits beyond start/end"},
		{"unknown payload kind", assemble(1, func(c []byte) { c[kindIdx] = 3 }), "unknown part payload kind 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeUnit(tc.blob)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %v, want %q", err, tc.want)
			}
		})
	}
}

func TestEncodeRejectsInvalidUnits(t *testing.T) {
	cases := []struct {
		name string
		unit *Unit
		want string
	}{
		{"nil unit", nil, "nil program"},
		{"nil program", &Unit{}, "nil program"},
		{"branch past end", &Unit{Prog: &program.Program{Name: "t", Insts: []isa.Inst{{Op: isa.OpJ, Target: 7}}, Labels: map[string]int{}}}, "branch target 7 past the end"},
		{"negative target", &Unit{Prog: &program.Program{Name: "t", Insts: []isa.Inst{{Op: isa.OpJ, Target: -1}}, Labels: map[string]int{}}}, "negative branch target"},
		{"unsorted fp args", &Unit{Prog: &program.Program{Name: "t", Labels: map[string]int{}}, FPArgs: []FPArg{{Reg: 3, Width: arch.W4}, {Reg: 1, Width: arch.W4}}}, "not sorted by register"},
		{"invalid fp width", &Unit{Prog: &program.Program{Name: "t", Labels: map[string]int{}}, FPArgs: []FPArg{{Reg: 1, Width: 3}}}, "invalid width 3"},
		{"absent operand with number", &Unit{Prog: &program.Program{Name: "t", Insts: []isa.Inst{{Op: isa.OpNop, Dst: isa.Reg{Class: isa.ClassNone, N: 4}}}, Labels: map[string]int{}}}, "absent operand with nonzero register number"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := EncodeUnit(tc.unit)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %v, want %q", err, tc.want)
			}
			var werr *Error
			if !errors.As(err, &werr) {
				t.Fatalf("error type %T, want *wire.Error", err)
			}
			if werr.Offset != -1 {
				t.Fatalf("encode-side error carries blob offset %d", werr.Offset)
			}
		})
	}
}

func TestVarintCanonical(t *testing.T) {
	for _, v := range []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<63 - 1, math.MaxUint64} {
		b := appendUvarint(nil, v)
		r := &reader{b: b}
		got, err := r.uvarint("test")
		if err != nil || got != v || r.pos != len(b) {
			t.Fatalf("uvarint(%d): got %d pos %d err %v", v, got, r.pos, err)
		}
	}
	for _, v := range []int64{0, 1, -1, 63, -64, 1 << 40, math.MinInt64, math.MaxInt64} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Fatalf("zigzag(%d) round-trips to %d", v, got)
		}
	}
	bad := map[string][]byte{
		"padded zero":        {0x80, 0x00},
		"padded value":       {0xff, 0x00},
		"overflow 64 bits":   {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"11-byte run":        {0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01},
		"truncated mid-cont": {0x80},
		"empty":              {},
	}
	for name, b := range bad {
		r := &reader{b: b}
		if _, err := r.uvarint("test"); err == nil {
			t.Errorf("%s: non-canonical varint % x accepted", name, b)
		}
	}
}

func TestDescriptorRoundTrip(t *testing.T) {
	descs := []*descriptor.Descriptor{
		descriptor.New(0x100, arch.W4, descriptor.Load).Dim(0, 8, 1).MustBuild(),
		descriptor.New(0x200, arch.W8, descriptor.Store).
			Dim(-4, 16, 2).Dim(0, 3, 32).
			Mod(descriptor.TargetSize, descriptor.Sub, 1, 0).
			MustBuild(),
		descriptor.New(0x300, arch.W4, descriptor.Load).
			Dim(0, 8, 1).
			Indirect(descriptor.TargetOffset, descriptor.SetAdd, 3).
			MustBuild(),
		descriptor.New(0x400, arch.W2, descriptor.Load).AtLevel(arch.LevelMem).
			Dim(0, 8, 1).Dim(0, 2, 8).
			IndirectOuter(descriptor.TargetOffset, descriptor.SetValue, 1).
			MustBuild(),
	}
	for _, d := range descs {
		b, err := EncodeDescriptor(d)
		if err != nil {
			t.Fatalf("%s: encode: %v", d, err)
		}
		got, err := DecodeDescriptor(b)
		if err != nil {
			t.Fatalf("%s: decode: %v", d, err)
		}
		if !reflect.DeepEqual(got, d) {
			t.Fatalf("descriptor mismatch:\ngot  %s\nwant %s", got, d)
		}
		b2, err := EncodeDescriptor(got)
		if err != nil || !bytes.Equal(b, b2) {
			t.Fatalf("%s: re-encode not byte-identical (err %v)", d, err)
		}
		// Every strict prefix must be rejected, never crash.
		for i := 0; i < len(b); i++ {
			if _, err := DecodeDescriptor(b[:i]); err == nil {
				t.Fatalf("%s: %d-byte prefix decoded without error", d, i)
			}
		}
		if _, err := DecodeDescriptor(append(append([]byte(nil), b...), 0)); err == nil ||
			!strings.Contains(err.Error(), "trailing garbage") {
			t.Fatalf("%s: trailing garbage accepted (err %v)", d, err)
		}
	}
}

func TestDescriptorDecodeRejects(t *testing.T) {
	body := func(fields ...uint64) []byte {
		out := append([]byte(nil), MagicDescriptor...)
		out = appendUvarint(out, Version)
		for _, f := range fields {
			out = appendUvarint(out, f)
		}
		return out
	}
	zz := func(v int64) uint64 { return zigzag(v) }
	cases := []struct {
		name string
		blob []byte
		want string
	}{
		{"bad magic", []byte("UVEWxxxx"), "bad magic"},
		{"program magic on a descriptor", append([]byte(MagicProgram), 1), "bad magic"},
		{"bad version", append([]byte(MagicDescriptor), 9), "unsupported format version 9"},
		{"invalid kind", body(7, 4, 0, 0, 1, zz(0), zz(8), zz(1), 0, 0), "invalid stream kind 7"},
		{"invalid width", body(0, 3, 0, 0, 1, zz(0), zz(8), zz(1), 0, 0), "invalid element width 3"},
		{"invalid level", body(0, 4, 5, 0, 1, zz(0), zz(8), zz(1), 0, 0), "invalid cache level 5"},
		{"no dims", body(0, 4, 0, 0, 0, 0, 0), "no dimensions"},
		{"static mod bad behavior", body(0, 4, 0, 0, 2, zz(0), zz(8), zz(1), zz(0), zz(2), zz(8), 1, 1, 0, 3, zz(1), zz(0), 0), "non-static behavior"},
		{"indirect mod bad behavior", body(0, 4, 0, 0, 1, zz(0), zz(8), zz(1), 0, 1, 0, 0, 1, 2), "non-indirect behavior"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeDescriptor(tc.blob)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %v, want %q", err, tc.want)
			}
		})
	}
}

func TestErrorRendering(t *testing.T) {
	cases := []struct {
		err  Error
		want string
	}{
		{Error{Offset: 0x2a, PC: 3, Op: "j", Msg: "boom"}, "wire: offset 0x2a: inst 3: error: boom [j]"},
		{Error{Offset: -1, PC: 3, Msg: "boom"}, "wire: inst 3: error: boom"},
		{Error{Offset: 7, PC: -1, Msg: "boom"}, "wire: offset 0x7: error: boom"},
		{Error{Offset: -1, PC: -1, Msg: "boom"}, "wire: error: boom"},
	}
	for _, tc := range cases {
		if got := tc.err.Error(); got != tc.want {
			t.Errorf("got %q, want %q", got, tc.want)
		}
	}
}
