package wire

import (
	"math"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/program"
)

// reader walks a blob with bounds-checked, canonical-form reads. Every
// failure is an *Error carrying the byte offset where decoding stopped;
// the reader never panics, whatever the input.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) errf(off int, format string, args ...any) error {
	return &Error{Offset: off, PC: -1, Msg: sprintf(format, args...)}
}

func (r *reader) remaining() int { return len(r.b) - r.pos }

func (r *reader) u8(what string) (byte, error) {
	if r.pos >= len(r.b) {
		return 0, r.errf(r.pos, "truncated %s", what)
	}
	b := r.b[r.pos]
	r.pos++
	return b, nil
}

// uvarint reads a minimal-length unsigned LEB128 value. Padded encodings
// (a redundant trailing zero group) and runs past 64 bits are rejected:
// each value has exactly one valid byte string.
func (r *reader) uvarint(what string) (uint64, error) {
	start := r.pos
	var x uint64
	var shift uint
	for i := 0; ; i++ {
		if r.pos >= len(r.b) {
			return 0, r.errf(start, "truncated %s varint", what)
		}
		b := r.b[r.pos]
		r.pos++
		if shift == 63 && b > 1 {
			return 0, r.errf(start, "%s varint overflows 64 bits", what)
		}
		x |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			if b == 0 && i > 0 {
				return 0, r.errf(start, "non-minimal %s varint", what)
			}
			return x, nil
		}
		shift += 7
		if shift > 63 {
			return 0, r.errf(start, "%s varint longer than 10 bytes", what)
		}
	}
}

// uvarintMax reads an unsigned varint and bounds it, so the value can be
// cast to a narrower type without silent truncation.
func (r *reader) uvarintMax(max uint64, what string) (uint64, error) {
	start := r.pos
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > max {
		return 0, r.errf(start, "%s %d out of range (max %d)", what, v, max)
	}
	return v, nil
}

func (r *reader) varint(what string) (int64, error) {
	u, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	return unzigzag(u), nil
}

func (r *reader) str(what string) (string, error) {
	start := r.pos
	n, err := r.uvarint(what + " length")
	if err != nil {
		return "", err
	}
	if n > uint64(r.remaining()) {
		return "", r.errf(start, "%s length %d exceeds the %d remaining bytes", what, n, r.remaining())
	}
	s := string(r.b[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// count reads an element count for entries of at least minEntry bytes and
// rejects counts the section cannot possibly hold, bounding allocations
// before any entry is parsed.
func (r *reader) count(minEntry int, what string) (int, error) {
	start := r.pos
	n, err := r.uvarint(what + " count")
	if err != nil {
		return 0, err
	}
	if n > uint64(r.remaining()/minEntry) {
		return 0, r.errf(start, "%s count %d exceeds section capacity", what, n)
	}
	return int(n), nil
}

// DecodeUnit parses a program blob, rejecting anything that is not the
// canonical encoding of a valid unit. On success,
// EncodeUnit(DecodeUnit(b)) reproduces b byte for byte.
func DecodeUnit(b []byte) (*Unit, error) {
	r := &reader{b: b}
	if err := expectMagic(r, MagicProgram); err != nil {
		return nil, err
	}
	verOff := r.pos
	ver, err := r.uvarint("version")
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, r.errf(verOff, "unsupported format version %d (this decoder reads %d)", ver, Version)
	}
	nsec, err := r.uvarintMax(6, "section count")
	if err != nil {
		return nil, err
	}

	u := &Unit{}
	var insts []isa.Inst
	var instOffs []int
	labels := map[string]int{}
	name := ""
	seen := map[byte]bool{}
	prevID := byte(0)
	for s := uint64(0); s < nsec; s++ {
		idOff := r.pos
		id, err := r.u8("section id")
		if err != nil {
			return nil, err
		}
		if id <= prevID {
			return nil, r.errf(idOff, "section id %d not after section %d (ids must strictly increase)", id, prevID)
		}
		if id > secExtents {
			return nil, r.errf(idOff, "unknown section id %d", id)
		}
		prevID = id
		seen[id] = true
		lenOff := r.pos
		length, err := r.uvarint("section length")
		if err != nil {
			return nil, err
		}
		if length > uint64(r.remaining()) {
			return nil, r.errf(lenOff, "section %d length %d exceeds the %d remaining bytes", id, length, r.remaining())
		}
		end := r.pos + int(length)
		sub := &reader{b: r.b[:end], pos: r.pos}
		switch id {
		case secName:
			name = string(sub.b[sub.pos:end])
			sub.pos = end
		case secInsts:
			insts, instOffs, err = decodeInsts(sub)
		case secLabels:
			labels, err = decodeLabels(sub)
		case secIntArgs:
			u.IntArgs, err = decodeIntArgs(sub)
		case secFPArgs:
			u.FPArgs, err = decodeFPArgs(sub)
		case secExtents:
			u.Extents, err = decodeExtents(sub)
		}
		if err != nil {
			return nil, err
		}
		if sub.pos != end {
			return nil, r.errf(sub.pos, "section %d payload has %d unread bytes", id, end-sub.pos)
		}
		r.pos = end
	}
	for _, id := range [...]byte{secName, secInsts, secLabels} {
		if !seen[id] {
			return nil, r.errf(r.pos, "missing mandatory section %d", id)
		}
	}
	if r.pos != len(r.b) {
		return nil, r.errf(r.pos, "%d bytes of trailing garbage after the last section", len(r.b)-r.pos)
	}

	u.Prog = &program.Program{Name: name, Insts: insts, Labels: labels}
	pos := func(pc int) int {
		if pc >= 0 && pc < len(instOffs) {
			return instOffs[pc]
		}
		return -1
	}
	if err := validateUnit(u, pos); err != nil {
		return nil, err
	}
	return u, nil
}

// DecodeProgram parses a program blob and returns the program alone.
func DecodeProgram(b []byte) (*program.Program, error) {
	u, err := DecodeUnit(b)
	if err != nil {
		return nil, err
	}
	return u.Prog, nil
}

func expectMagic(r *reader, magic string) error {
	if len(r.b) < len(magic) {
		return r.errf(0, "blob shorter than the %q magic", magic)
	}
	if string(r.b[:len(magic)]) != magic {
		return r.errf(0, "bad magic %q, want %q", r.b[:len(magic)], magic)
	}
	r.pos = len(magic)
	return nil
}

// decodeInsts parses the instruction section and records each
// instruction's start offset for positioned validation errors.
func decodeInsts(r *reader) ([]isa.Inst, []int, error) {
	// The smallest instruction encoding is 11 bytes: opcode, five
	// registers, immediate, width, target, empty label and the
	// configuration-absent flag, one byte each.
	n, err := r.count(11, "instruction")
	if err != nil {
		return nil, nil, err
	}
	insts := make([]isa.Inst, 0, n)
	offs := make([]int, 0, n)
	for pc := 0; pc < n; pc++ {
		offs = append(offs, r.pos)
		in, err := decodeInst(r)
		if err != nil {
			return nil, nil, err
		}
		insts = append(insts, in)
	}
	return insts, offs, nil
}

func decodeInst(r *reader) (isa.Inst, error) {
	var in isa.Inst
	op, err := r.uvarintMax(math.MaxUint16, "opcode")
	if err != nil {
		return in, err
	}
	in.Op = isa.Op(op)
	for _, dst := range [...]*isa.Reg{&in.Dst, &in.Src1, &in.Src2, &in.Src3, &in.Pred} {
		// class<<5 | n: five low bits of register number under the class.
		v, err := r.uvarintMax(uint64(isa.ClassPred)<<5|31, "register")
		if err != nil {
			return in, err
		}
		*dst = isa.Reg{Class: isa.RegClass(v >> 5), N: uint8(v & 31)}
	}
	if in.Imm, err = r.varint("immediate"); err != nil {
		return in, err
	}
	w, err := r.uvarintMax(math.MaxInt32, "element width")
	if err != nil {
		return in, err
	}
	in.W = archWidth(w)
	t, err := r.uvarintMax(math.MaxInt32, "branch target")
	if err != nil {
		return in, err
	}
	in.Target = int(t)
	if in.Label, err = r.str("label"); err != nil {
		return in, err
	}
	flagOff := r.pos
	flag, err := r.u8("configuration flag")
	if err != nil {
		return in, err
	}
	switch flag {
	case 0:
	case 1:
		cfg, err := decodeCfgPart(r)
		if err != nil {
			return in, err
		}
		in.Cfg = cfg
	default:
		return in, r.errf(flagOff, "configuration flag %d is neither 0 nor 1", flag)
	}
	return in, nil
}

func decodeCfgPart(r *reader) (*isa.StreamCfgPart, error) {
	c := &isa.StreamCfgPart{}
	stream, err := r.uvarintMax(math.MaxInt32, "stream number")
	if err != nil {
		return nil, err
	}
	c.Stream = int(stream)
	flagOff := r.pos
	flags, err := r.u8("part flags")
	if err != nil {
		return nil, err
	}
	if flags > 3 {
		return nil, r.errf(flagOff, "part flags %#x have bits beyond start/end set", flags)
	}
	c.Start = flags&1 != 0
	c.End = flags&2 != 0
	if c.Start {
		kind, err := r.uvarintMax(math.MaxInt32, "stream kind")
		if err != nil {
			return nil, err
		}
		c.Kind = descriptor.Kind(kind)
		w, err := r.uvarintMax(math.MaxInt32, "element width")
		if err != nil {
			return nil, err
		}
		c.Width = archWidth(w)
		level, err := r.uvarintMax(math.MaxInt32, "cache level")
		if err != nil {
			return nil, err
		}
		c.Level = archLevel(level)
		if c.Base, err = r.uvarint("base address"); err != nil {
			return nil, err
		}
	}
	kindOff := r.pos
	kind, err := r.u8("part payload kind")
	if err != nil {
		return nil, err
	}
	switch kind {
	case partDim:
		if c.Dim, err = decodeDim(r); err != nil {
			return nil, err
		}
	case partMod:
		m, err := decodeStaticMod(r)
		if err != nil {
			return nil, err
		}
		c.Mod = m
	case partIndirect:
		m, err := decodeIndirectMod(r)
		if err != nil {
			return nil, err
		}
		c.Ind = m
	default:
		return nil, r.errf(kindOff, "unknown part payload kind %d", kind)
	}
	return c, nil
}

func decodeDim(r *reader) (descriptor.Dim, error) {
	var d descriptor.Dim
	var err error
	if d.Offset, err = r.varint("dim offset"); err != nil {
		return d, err
	}
	if d.Size, err = r.varint("dim size"); err != nil {
		return d, err
	}
	if d.Stride, err = r.varint("dim stride"); err != nil {
		return d, err
	}
	return d, nil
}

func decodeStaticMod(r *reader) (*descriptor.StaticMod, error) {
	m := &descriptor.StaticMod{}
	bound, err := r.uvarintMax(math.MaxInt32, "modifier bound")
	if err != nil {
		return nil, err
	}
	m.Bound = int(bound)
	target, err := r.uvarintMax(math.MaxInt32, "modifier target")
	if err != nil {
		return nil, err
	}
	m.Target = descriptor.Target(target)
	behav, err := r.uvarintMax(math.MaxInt32, "modifier behavior")
	if err != nil {
		return nil, err
	}
	m.Behav = descriptor.Behavior(behav)
	if m.Disp, err = r.varint("modifier displacement"); err != nil {
		return nil, err
	}
	if m.Count, err = r.varint("modifier count"); err != nil {
		return nil, err
	}
	return m, nil
}

func decodeIndirectMod(r *reader) (*descriptor.IndirectMod, error) {
	m := &descriptor.IndirectMod{}
	bound, err := r.uvarintMax(math.MaxInt32, "modifier bound")
	if err != nil {
		return nil, err
	}
	m.Bound = int(bound)
	target, err := r.uvarintMax(math.MaxInt32, "modifier target")
	if err != nil {
		return nil, err
	}
	m.Target = descriptor.Target(target)
	behav, err := r.uvarintMax(math.MaxInt32, "modifier behavior")
	if err != nil {
		return nil, err
	}
	m.Behav = descriptor.Behavior(behav)
	origin, err := r.uvarintMax(math.MaxInt32, "origin stream")
	if err != nil {
		return nil, err
	}
	m.Origin = int(origin)
	return m, nil
}

// decodeLabels parses the label table, enforcing the canonical strict
// lexicographic order (which also rules out duplicates).
func decodeLabels(r *reader) (map[string]int, error) {
	// Smallest entry: one-byte name length, one name byte, one pc byte.
	n, err := r.count(3, "label")
	if err != nil {
		return nil, err
	}
	labels := make(map[string]int, n)
	prev := ""
	for i := 0; i < n; i++ {
		nameOff := r.pos
		name, err := r.str("label name")
		if err != nil {
			return nil, err
		}
		if i > 0 && name <= prev {
			return nil, r.errf(nameOff, "label %q not sorted after %q", name, prev)
		}
		prev = name
		pc, err := r.uvarintMax(math.MaxInt32, "label pc")
		if err != nil {
			return nil, err
		}
		labels[name] = int(pc)
	}
	return labels, nil
}

func decodeIntArgs(r *reader) ([]IntArg, error) {
	n, err := r.count(2, "int arg")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, r.errf(r.pos, "empty optional section (must be omitted)")
	}
	args := make([]IntArg, 0, n)
	for i := 0; i < n; i++ {
		reg, err := r.uvarintMax(math.MaxInt32, "int arg register")
		if err != nil {
			return nil, err
		}
		val, err := r.uvarint("int arg value")
		if err != nil {
			return nil, err
		}
		args = append(args, IntArg{Reg: int(reg), Val: val})
	}
	return args, nil
}

func decodeFPArgs(r *reader) ([]FPArg, error) {
	n, err := r.count(3, "fp arg")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, r.errf(r.pos, "empty optional section (must be omitted)")
	}
	args := make([]FPArg, 0, n)
	for i := 0; i < n; i++ {
		reg, err := r.uvarintMax(math.MaxInt32, "fp arg register")
		if err != nil {
			return nil, err
		}
		w, err := r.uvarintMax(math.MaxInt32, "fp arg width")
		if err != nil {
			return nil, err
		}
		bits, err := r.uvarint("fp arg value")
		if err != nil {
			return nil, err
		}
		args = append(args, FPArg{Reg: int(reg), Width: archWidth(w), Val: math.Float64frombits(bits)})
	}
	return args, nil
}

func decodeExtents(r *reader) ([]Extent, error) {
	n, err := r.count(2, "extent")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, r.errf(r.pos, "empty optional section (must be omitted)")
	}
	exts := make([]Extent, 0, n)
	for i := 0; i < n; i++ {
		var e Extent
		if e.Base, err = r.uvarint("extent base"); err != nil {
			return nil, err
		}
		if e.Size, err = r.varint("extent size"); err != nil {
			return nil, err
		}
		exts = append(exts, e)
	}
	return exts, nil
}

// DecodeDescriptor parses a standalone descriptor blob.
func DecodeDescriptor(b []byte) (*descriptor.Descriptor, error) {
	r := &reader{b: b}
	if err := expectMagic(r, MagicDescriptor); err != nil {
		return nil, err
	}
	verOff := r.pos
	ver, err := r.uvarint("version")
	if err != nil {
		return nil, err
	}
	if ver != Version {
		return nil, r.errf(verOff, "unsupported format version %d (this decoder reads %d)", ver, Version)
	}
	d := &descriptor.Descriptor{}
	kind, err := r.uvarintMax(math.MaxInt32, "stream kind")
	if err != nil {
		return nil, err
	}
	d.Kind = descriptor.Kind(kind)
	w, err := r.uvarintMax(math.MaxInt32, "element width")
	if err != nil {
		return nil, err
	}
	d.Width = archWidth(w)
	level, err := r.uvarintMax(math.MaxInt32, "cache level")
	if err != nil {
		return nil, err
	}
	d.Level = archLevel(level)
	if d.Base, err = r.uvarint("base address"); err != nil {
		return nil, err
	}
	ndims, err := r.count(3, "dimension")
	if err != nil {
		return nil, err
	}
	for i := 0; i < ndims; i++ {
		dim, err := decodeDim(r)
		if err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, dim)
	}
	nstatic, err := r.count(5, "static modifier")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nstatic; i++ {
		m, err := decodeStaticMod(r)
		if err != nil {
			return nil, err
		}
		d.Static = append(d.Static, *m)
	}
	nind, err := r.count(4, "indirect modifier")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nind; i++ {
		m, err := decodeIndirectMod(r)
		if err != nil {
			return nil, err
		}
		d.Indirect = append(d.Indirect, *m)
	}
	if r.pos != len(r.b) {
		return nil, r.errf(r.pos, "%d bytes of trailing garbage after the descriptor", len(r.b)-r.pos)
	}
	if err := validateDescriptor(d); err != nil {
		return nil, err
	}
	return d, nil
}

// archWidth and archLevel cast bounded varints into their arch enums;
// range validation happens in the validate pass.
func archWidth(v uint64) arch.ElemWidth { return arch.ElemWidth(v) }

func archLevel(v uint64) arch.CacheLevel { return arch.CacheLevel(v) }
