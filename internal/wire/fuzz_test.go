package wire_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/kernels"
	"repro/internal/mem"
	"repro/internal/wire"
)

// fuzzSeeds returns a spread of valid blobs (a few real kernels plus a
// standalone descriptor) and near-valid garbage, so the fuzzer starts on
// both sides of the accept/reject boundary. Only a handful of kernels are
// built — the full 57-program corpus takes tens of seconds under fuzz
// instrumentation, which would starve the actual fuzzing in timed smokes.
func fuzzSeeds(t interface {
	Helper()
	Fatalf(string, ...any)
}) [][]byte {
	t.Helper()
	var seeds [][]byte
	for _, s := range []struct {
		id string
		v  kernels.Variant
	}{{"A", kernels.UVE}, {"C", kernels.SVE}, {"N", kernels.UVE}, {"C", kernels.NEON}} {
		k := kernels.ByID(s.id)
		if k == nil {
			t.Fatalf("no kernel %q", s.id)
		}
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		inst := k.Build(h, s.v, kernels.CorpusSize)
		if inst.Err != nil {
			t.Fatalf("%s/%s: build: %v", s.id, s.v, inst.Err)
		}
		e := kernels.CorpusEntry{Kernel: k, Variant: s.v, Size: kernels.CorpusSize, Inst: inst, Extents: h.Mem.Extents()}
		b, err := wire.EncodeUnit(e.Unit())
		if err != nil {
			t.Fatalf("%s: encode: %v", e.Name(), err)
		}
		seeds = append(seeds, b)
	}
	d := descriptor.New(0x100, arch.W4, descriptor.Load).
		Dim(0, 8, 1).Dim(0, 4, 8).
		Mod(descriptor.TargetOffset, descriptor.Add, 1, 0).
		MustBuild()
	db, err := wire.EncodeDescriptor(d)
	if err != nil {
		t.Fatalf("encode descriptor: %v", err)
	}
	seeds = append(seeds, db,
		[]byte(wire.MagicProgram),
		[]byte(wire.MagicDescriptor),
		[]byte("UVEW\x01\x00"),
		[]byte("not a wire blob"),
		bytes.Repeat([]byte{0xff}, 64),
		nil,
	)
	return seeds
}

// FuzzWireDecode drives arbitrary bytes through both decoders: they must
// never panic, must reject garbage with a positioned *wire.Error, and on
// acceptance the re-encoding must reproduce the input byte for byte (the
// canonical-form guarantee over the whole input space).
func FuzzWireDecode(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		u, err := wire.DecodeUnit(b)
		if err != nil {
			var werr *wire.Error
			if !errors.As(err, &werr) {
				t.Fatalf("decode error type %T, want *wire.Error (%v)", err, err)
			}
		} else {
			out, err := wire.EncodeUnit(u)
			if err != nil {
				t.Fatalf("decoded unit does not re-encode: %v", err)
			}
			if !bytes.Equal(out, b) {
				t.Fatalf("accepted a non-canonical blob:\nin  % x\nout % x", b, out)
			}
		}
		d, err := wire.DecodeDescriptor(b)
		if err != nil {
			var werr *wire.Error
			if !errors.As(err, &werr) {
				t.Fatalf("descriptor decode error type %T, want *wire.Error (%v)", err, err)
			}
		} else {
			out, err := wire.EncodeDescriptor(d)
			if err != nil {
				t.Fatalf("decoded descriptor does not re-encode: %v", err)
			}
			if !bytes.Equal(out, b) {
				t.Fatalf("accepted a non-canonical descriptor blob:\nin  % x\nout % x", b, out)
			}
		}
	})
}

// FuzzWireRoundTrip checks value-level stability on every accepted input:
// decode → encode → decode must yield a deeply equal unit.
func FuzzWireRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		u, err := wire.DecodeUnit(b)
		if err != nil {
			return
		}
		out, err := wire.EncodeUnit(u)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		u2, err := wire.DecodeUnit(out)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(u, u2) {
			t.Fatalf("units diverge across a round trip:\nfirst  %+v\nsecond %+v", u, u2)
		}
	})
}
