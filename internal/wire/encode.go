package wire

import (
	"math"

	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/program"
)

// EncodeUnit renders a unit into its canonical byte form. The input is
// validated first; an unencodable unit (invalid opcode, dangling branch
// label, unsorted argument table, ...) returns an *Error and no bytes.
// Encoding is a pure function of the unit's value: two calls over equal
// units produce identical bytes.
func EncodeUnit(u *Unit) ([]byte, error) {
	if err := validateUnit(u, encodePos); err != nil {
		return nil, err
	}
	p := u.Prog

	sections := make([][]byte, 0, 6)
	ids := make([]byte, 0, 6)
	add := func(id byte, payload []byte) {
		ids = append(ids, id)
		sections = append(sections, payload)
	}

	add(secName, []byte(p.Name))

	var insts []byte
	insts = appendUvarint(insts, uint64(len(p.Insts)))
	for i := range p.Insts {
		insts = appendInst(insts, &p.Insts[i])
	}
	add(secInsts, insts)

	names := sortedLabelNames(p.Labels)
	var labels []byte
	labels = appendUvarint(labels, uint64(len(names)))
	for _, name := range names {
		labels = appendString(labels, name)
		labels = appendUvarint(labels, uint64(p.Labels[name]))
	}
	add(secLabels, labels)

	// Optional context sections are omitted when empty: an empty section
	// and an absent one would be two encodings of the same value.
	if len(u.IntArgs) > 0 {
		var b []byte
		b = appendUvarint(b, uint64(len(u.IntArgs)))
		for _, a := range u.IntArgs {
			b = appendUvarint(b, uint64(a.Reg))
			b = appendUvarint(b, a.Val)
		}
		add(secIntArgs, b)
	}
	if len(u.FPArgs) > 0 {
		var b []byte
		b = appendUvarint(b, uint64(len(u.FPArgs)))
		for _, a := range u.FPArgs {
			b = appendUvarint(b, uint64(a.Reg))
			b = appendUvarint(b, uint64(a.Width))
			b = appendUvarint(b, math.Float64bits(a.Val))
		}
		add(secFPArgs, b)
	}
	if len(u.Extents) > 0 {
		var b []byte
		b = appendUvarint(b, uint64(len(u.Extents)))
		for _, e := range u.Extents {
			b = appendUvarint(b, e.Base)
			b = appendVarint(b, e.Size)
		}
		add(secExtents, b)
	}

	out := append([]byte(nil), MagicProgram...)
	out = appendUvarint(out, Version)
	out = appendUvarint(out, uint64(len(ids)))
	for i, id := range ids {
		out = append(out, id)
		out = appendUvarint(out, uint64(len(sections[i])))
		out = append(out, sections[i]...)
	}
	return out, nil
}

// EncodeProgram encodes a bare program (a unit with no build context).
func EncodeProgram(p *program.Program) ([]byte, error) {
	return EncodeUnit(&Unit{Prog: p})
}

// EncodeDescriptor renders a standalone stream descriptor under the
// "UVED" magic, with the same canonical-form rules as programs.
func EncodeDescriptor(d *descriptor.Descriptor) ([]byte, error) {
	if err := validateDescriptor(d); err != nil {
		return nil, err
	}
	out := append([]byte(nil), MagicDescriptor...)
	out = appendUvarint(out, Version)
	return appendDescriptorBody(out, d), nil
}

// appendDescriptorBody emits kind/width/level/base, then the dimension and
// modifier tables in configuration order.
func appendDescriptorBody(dst []byte, d *descriptor.Descriptor) []byte {
	dst = appendUvarint(dst, uint64(d.Kind))
	dst = appendUvarint(dst, uint64(d.Width))
	dst = appendUvarint(dst, uint64(d.Level))
	dst = appendUvarint(dst, d.Base)
	dst = appendUvarint(dst, uint64(len(d.Dims)))
	for _, dim := range d.Dims {
		dst = appendDim(dst, dim)
	}
	dst = appendUvarint(dst, uint64(len(d.Static)))
	for i := range d.Static {
		dst = appendStaticMod(dst, &d.Static[i])
	}
	dst = appendUvarint(dst, uint64(len(d.Indirect)))
	for i := range d.Indirect {
		dst = appendIndirectMod(dst, &d.Indirect[i])
	}
	return dst
}

func appendDim(dst []byte, dim descriptor.Dim) []byte {
	dst = appendVarint(dst, dim.Offset)
	dst = appendVarint(dst, dim.Size)
	return appendVarint(dst, dim.Stride)
}

func appendStaticMod(dst []byte, m *descriptor.StaticMod) []byte {
	dst = appendUvarint(dst, uint64(m.Bound))
	dst = appendUvarint(dst, uint64(m.Target))
	dst = appendUvarint(dst, uint64(m.Behav))
	dst = appendVarint(dst, m.Disp)
	return appendVarint(dst, m.Count)
}

func appendIndirectMod(dst []byte, m *descriptor.IndirectMod) []byte {
	dst = appendUvarint(dst, uint64(m.Bound))
	dst = appendUvarint(dst, uint64(m.Target))
	dst = appendUvarint(dst, uint64(m.Behav))
	return appendUvarint(dst, uint64(m.Origin))
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// appendReg packs a register into one varint: class in the high bits, the
// register number in the low five (every file has at most 32 registers).
func appendReg(dst []byte, r isa.Reg) []byte {
	return appendUvarint(dst, uint64(r.Class)<<5|uint64(r.N))
}

// appendInst emits one instruction: opcode, the five operand registers,
// immediate, width, branch target, label and — for configuration µOps —
// the stream-configuration payload.
func appendInst(dst []byte, in *isa.Inst) []byte {
	dst = appendUvarint(dst, uint64(in.Op))
	for _, r := range [...]isa.Reg{in.Dst, in.Src1, in.Src2, in.Src3, in.Pred} {
		dst = appendReg(dst, r)
	}
	dst = appendVarint(dst, in.Imm)
	dst = appendUvarint(dst, uint64(in.W))
	dst = appendUvarint(dst, uint64(in.Target))
	dst = appendString(dst, in.Label)
	if in.Cfg == nil {
		return append(dst, 0)
	}
	dst = append(dst, 1)
	return appendCfgPart(dst, in.Cfg)
}

// Stream-configuration payload kinds.
const (
	partDim      = 0
	partMod      = 1
	partIndirect = 2
)

func appendCfgPart(dst []byte, c *isa.StreamCfgPart) []byte {
	dst = appendUvarint(dst, uint64(c.Stream))
	var flags byte
	if c.Start {
		flags |= 1
	}
	if c.End {
		flags |= 2
	}
	dst = append(dst, flags)
	if c.Start {
		dst = appendUvarint(dst, uint64(c.Kind))
		dst = appendUvarint(dst, uint64(c.Width))
		dst = appendUvarint(dst, uint64(c.Level))
		dst = appendUvarint(dst, c.Base)
	}
	switch {
	case c.Mod != nil:
		dst = append(dst, partMod)
		return appendStaticMod(dst, c.Mod)
	case c.Ind != nil:
		dst = append(dst, partIndirect)
		return appendIndirectMod(dst, c.Ind)
	}
	dst = append(dst, partDim)
	return appendDim(dst, c.Dim)
}
