package wire

// LEB128 varints, minimal-length only. The encoder emits the shortest
// encoding; the decoder rejects any other (padded groups, overlong runs,
// bits beyond 64) so that a varint has exactly one valid byte string —
// the foundation of the format's canonical-form guarantee.

// appendUvarint appends the minimal unsigned LEB128 encoding of v.
func appendUvarint(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// appendVarint appends a signed value, zigzag-folded then LEB128-encoded.
func appendVarint(dst []byte, v int64) []byte {
	return appendUvarint(dst, zigzag(v))
}

// zigzag folds a signed value into an unsigned one with small magnitudes
// staying small (..., -2→3, -1→1, 0→0, 1→2, 2→4, ...).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// unzigzag is the inverse of zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }
