package wire

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"reflect"
	"sort"
)

// Hash is a 32-byte SHA-256 content digest. The content-addressed result
// store keys on these: equal hashes mean byte-identical canonical
// encodings, which (by the canonical-form guarantee) mean equal values.
type Hash [32]byte

// String renders the digest as lowercase hex, the store's on-disk spelling.
func (h Hash) String() string { return hex.EncodeToString(h[:]) }

// HashBytes digests raw bytes (already-canonical material such as
// EncodeUnit output).
func HashBytes(b []byte) Hash { return sha256.Sum256(b) }

// HashUnit digests a unit's canonical wire encoding. Two units hash equal
// iff they are the same program with the same build context.
func HashUnit(u *Unit) (Hash, error) {
	b, err := EncodeUnit(u)
	if err != nil {
		return Hash{}, err
	}
	return sha256.Sum256(b), nil
}

// Config-hash framing: a magic so config digests can never collide with
// digests of raw wire blobs, and a version bumped whenever the canonical
// value encoding below changes shape.
const (
	hashMagic   = "UVEH"
	hashVersion = 1
)

// HashConfig canonically digests an arbitrary configuration value by
// reflection: struct fields are written in declaration order with their
// names, pointers as a nil flag plus the pointee, maps with keys sorted by
// their encoded bytes, floats as IEEE-754 bits. The domain string
// namespaces independent hash users (two subsystems hashing structurally
// equal values still get distinct digests). Values containing funcs,
// channels or non-nil interfaces are not canonically encodable and return
// an *Error — configuration meant for hashing must be plain data.
func HashConfig(domain string, v any) (Hash, error) {
	out := append([]byte(nil), hashMagic...)
	out = appendUvarint(out, hashVersion)
	out = appendString(out, domain)
	out, err := appendCanonical(out, reflect.ValueOf(v))
	if err != nil {
		return Hash{}, err
	}
	return sha256.Sum256(out), nil
}

// Canonical value tags. Every encoded value is one tag byte plus a
// tag-specific payload; the tag covers the reflect.Kind so values of
// different kinds can never alias.
const (
	tagBool   = 'b'
	tagInt    = 'i'
	tagUint   = 'u'
	tagFloat  = 'f'
	tagString = 's'
	tagNil    = 'N' // nil pointer, map or slice
	tagPtr    = 'p'
	tagStruct = 'S'
	tagList   = 'L' // slice or array
	tagMap    = 'M'
)

func appendCanonical(dst []byte, rv reflect.Value) ([]byte, error) {
	switch rv.Kind() {
	case reflect.Bool:
		dst = append(dst, tagBool)
		if rv.Bool() {
			return append(dst, 1), nil
		}
		return append(dst, 0), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		dst = append(dst, tagInt)
		return appendVarint(dst, rv.Int()), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		dst = append(dst, tagUint)
		return appendUvarint(dst, rv.Uint()), nil
	case reflect.Float32, reflect.Float64:
		dst = append(dst, tagFloat)
		return appendUvarint(dst, math.Float64bits(rv.Float())), nil
	case reflect.String:
		dst = append(dst, tagString)
		return appendString(dst, rv.String()), nil
	case reflect.Pointer:
		if rv.IsNil() {
			return append(dst, tagNil), nil
		}
		dst = append(dst, tagPtr)
		return appendCanonical(dst, rv.Elem())
	case reflect.Struct:
		t := rv.Type()
		dst = append(dst, tagStruct)
		dst = appendUvarint(dst, uint64(t.NumField()))
		for i := 0; i < t.NumField(); i++ {
			dst = appendString(dst, t.Field(i).Name)
			var err error
			dst, err = appendCanonical(dst, rv.Field(i))
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	case reflect.Slice:
		if rv.IsNil() {
			return append(dst, tagNil), nil
		}
		fallthrough
	case reflect.Array:
		dst = append(dst, tagList)
		dst = appendUvarint(dst, uint64(rv.Len()))
		for i := 0; i < rv.Len(); i++ {
			var err error
			dst, err = appendCanonical(dst, rv.Index(i))
			if err != nil {
				return nil, err
			}
		}
		return dst, nil
	case reflect.Map:
		if rv.IsNil() {
			return append(dst, tagNil), nil
		}
		type pair struct{ k, v []byte }
		pairs := make([]pair, 0, rv.Len())
		it := rv.MapRange()
		for it.Next() {
			kb, err := appendCanonical(nil, it.Key())
			if err != nil {
				return nil, err
			}
			vb, err := appendCanonical(nil, it.Value())
			if err != nil {
				return nil, err
			}
			pairs = append(pairs, pair{kb, vb})
		}
		sort.Slice(pairs, func(i, j int) bool {
			return string(pairs[i].k) < string(pairs[j].k)
		})
		dst = append(dst, tagMap)
		dst = appendUvarint(dst, uint64(len(pairs)))
		for _, p := range pairs {
			dst = append(dst, p.k...)
			dst = append(dst, p.v...)
		}
		return dst, nil
	case reflect.Interface:
		if rv.IsNil() {
			return append(dst, tagNil), nil
		}
		return nil, &Error{Offset: -1, PC: -1, Msg: sprintf("cannot canonically hash non-nil interface value of type %s", rv.Elem().Type())}
	default:
		return nil, &Error{Offset: -1, PC: -1, Msg: sprintf("cannot canonically hash %s value", rv.Kind())}
	}
}
