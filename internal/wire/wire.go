// Package wire defines the canonical binary encoding of programs and
// stream descriptors. The paper's premise (§III) is that a stream's whole
// memory behaviour is captured by a compact configuration descriptor; this
// package gives those descriptors — and the programs that configure them —
// a stable on-disk form, so kernels can be saved, diffed, fuzzed and hashed
// across processes (the content-addressed result store keys on these bytes).
//
// Layout (version 1):
//
//	magic "UVEW" | version uvarint | section count uvarint | sections
//
// Each section is id byte | payload length uvarint | payload. Sections
// appear in strictly increasing id order; Name (1), Insts (2) and Labels
// (3) are mandatory, IntArgs (4), FPArgs (5) and Extents (6) are optional
// build context and are omitted when empty. All integers are LEB128
// varints (signed values zigzag-folded first), as in the WebAssembly
// binary format.
//
// The encoding is canonical: there is exactly one valid byte string per
// value. Decode enforces minimal varints, ordered sections, sorted label
// tables, exact section lengths and zero-valued absent fields, and rejects
// everything else with a positioned error — so
//
//	Decode(Encode(p)) is deeply equal to p, and
//	Encode(Decode(b)) is byte-identical to b for every valid b.
//
// Standalone descriptors use the same rules under magic "UVED".
package wire

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/program"
)

// Magic numbers and the current format version. Version bumps are reserved
// for incompatible layout changes; adding a new optional section is also a
// version bump, because version-1 decoders must be able to reject any byte
// they cannot reproduce (the canonical-form guarantee).
const (
	MagicProgram    = "UVEW"
	MagicDescriptor = "UVED"
	Version         = 1
)

// Section IDs, in the mandatory encoding order.
const (
	secName    = 1 // program name bytes
	secInsts   = 2 // instruction sequence
	secLabels  = 3 // label table, sorted by name
	secIntArgs = 4 // entry integer-register values, sorted by register
	secFPArgs  = 5 // entry FP-register values, sorted by register
	secExtents = 6 // legal buffer extents, in declaration order
)

// Unit is the decoded form of one program blob: the program itself plus
// the optional build context (argument registers and buffer extents) that
// lets a consumer lint or execute it exactly as the builder-built original.
type Unit struct {
	Prog    *program.Program
	IntArgs []IntArg // sorted by Reg, no duplicates
	FPArgs  []FPArg  // sorted by Reg, no duplicates
	Extents []Extent // declaration order (allocation order is meaningful)
}

// IntArg is one entry-defined integer register value.
type IntArg struct {
	Reg int
	Val uint64
}

// FPArg is one entry-defined floating-point register value.
type FPArg struct {
	Reg   int
	Width arch.ElemWidth
	Val   float64
}

// Extent declares one legal buffer: [Base, Base+Size) in byte addresses.
type Extent struct {
	Base uint64
	Size int64
}

// Error is a positioned encode/decode failure, rendered in the lint
// diagnostic style (pc: error: message [op]) with the byte offset where
// the decoder stopped.
type Error struct {
	Offset int    // byte offset into the blob; -1 for encode-side failures
	PC     int    // instruction index when anchored to one, else -1
	Op     string // mnemonic when PC-anchored
	Msg    string
}

// sprintf keeps the validation/error paths terse.
func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// sortedLabelNames returns the label table's keys in the canonical
// (lexicographic) order every deterministic walk over it must use.
func sortedLabelNames(labels map[string]int) []string {
	names := make([]string, 0, len(labels))
	for name := range labels {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (e *Error) Error() string {
	pos := ""
	if e.Offset >= 0 {
		pos = fmt.Sprintf("offset %#x: ", e.Offset)
	}
	switch {
	case e.PC >= 0 && e.Op != "":
		return fmt.Sprintf("wire: %sinst %d: error: %s [%s]", pos, e.PC, e.Msg, e.Op)
	case e.PC >= 0:
		return fmt.Sprintf("wire: %sinst %d: error: %s", pos, e.PC, e.Msg)
	}
	return fmt.Sprintf("wire: %serror: %s", pos, e.Msg)
}
