package lint_test

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/mem"
)

// TestAllKernelsLintClean builds every registered kernel in every variant at
// its default size and requires verification to pass with zero errors — the
// same gate cmd/uvelint -all enforces in CI.
func TestAllKernelsLintClean(t *testing.T) {
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			t.Run(k.Name+"/"+v.String(), func(t *testing.T) {
				h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
				inst := k.Build(h, v, k.DefaultSize)
				if inst.Err != nil {
					t.Fatalf("build/verify failed: %v", inst.Err)
				}
				if lint.HasErrors(inst.Diags) {
					t.Fatalf("lint errors: %v", inst.Diags)
				}
				for _, d := range inst.Diags {
					t.Logf("warning: %s", d)
				}
			})
		}
	}
}

// TestUnrolledGemmLintClean covers the Fig 8.E ablation programs, which do
// not go through the kernel registry.
func TestUnrolledGemmLintClean(t *testing.T) {
	for _, unroll := range []int{1, 2, 4, 8} {
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		inst := kernels.UnrolledGemmUVE(h, 96, unroll)
		if inst.Err != nil {
			t.Fatalf("unroll=%d: %v", unroll, inst.Err)
		}
	}
}

// TestBadSizeSurfacesError checks that a size precondition violation comes
// back as a build error, not a panic (the pre-verifier behaviour).
func TestBadSizeSurfacesError(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	inst := kernels.ByID("N").Build(h, kernels.UVE, 13) // not a lane multiple
	if inst.Err == nil {
		t.Fatal("covariance with n=13 must fail verification")
	}
	h = mem.NewHierarchy(mem.DefaultHierarchyConfig())
	inst = kernels.UnrolledGemmUVE(h, 96, 5)
	if inst.Err == nil {
		t.Fatal("unrolled gemm with unroll=5 must fail")
	}
}
