package lint_test

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/lint"
	"repro/internal/mem"
)

// TestAllKernelsLintClean builds every registered kernel in every variant at
// its default size and requires verification to pass with zero errors — the
// same gate cmd/uvelint -all enforces in CI.
func TestAllKernelsLintClean(t *testing.T) {
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			t.Run(k.Name+"/"+v.String(), func(t *testing.T) {
				h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
				inst := k.Build(h, v, k.DefaultSize)
				if inst.Err != nil {
					t.Fatalf("build/verify failed: %v", inst.Err)
				}
				if lint.HasErrors(inst.Diags) {
					t.Fatalf("lint errors: %v", inst.Diags)
				}
				for _, d := range inst.Diags {
					t.Logf("warning: %s", d)
				}
			})
		}
	}
}

// TestDependenceSweep runs the dependence analyzer over every kernel ×
// variant at default size: no pair may classify as a hazard (the kernels are
// all correct, so any hazard is an analyzer false positive), and the
// in-place lockstep idioms must be recognized as ordered overlaps rather
// than warned about.
func TestDependenceSweep(t *testing.T) {
	lockstep := map[string]bool{"K": true, "S": true} // IRSmk, Floyd-Warshall
	for _, k := range kernels.All {
		for _, v := range []kernels.Variant{kernels.UVE, kernels.SVE, kernels.NEON} {
			t.Run(k.Name+"/"+v.String(), func(t *testing.T) {
				h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
				inst := k.Build(h, v, k.DefaultSize)
				if inst.Err != nil {
					t.Fatalf("build/verify failed: %v", inst.Err)
				}
				ordered := 0
				for _, d := range inst.Deps {
					if d.Verdict == lint.DepHazard {
						t.Errorf("false-positive hazard: %s", d)
					}
					if d.Verdict == lint.DepOrdered {
						ordered++
						t.Logf("ordered: %s", d)
					}
				}
				if v == kernels.UVE && lockstep[k.ID] && ordered == 0 {
					t.Errorf("lockstep kernel %s has no ordered pair: %v", k.Name, inst.Deps)
				}
			})
		}
	}
}

// TestUnrolledGemmLintClean covers the Fig 8.E ablation programs, which do
// not go through the kernel registry.
func TestUnrolledGemmLintClean(t *testing.T) {
	for _, unroll := range []int{1, 2, 4, 8} {
		h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
		inst := kernels.UnrolledGemmUVE(h, 96, unroll)
		if inst.Err != nil {
			t.Fatalf("unroll=%d: %v", unroll, inst.Err)
		}
	}
}

// TestBadSizeSurfacesError checks that a size precondition violation comes
// back as a build error, not a panic (the pre-verifier behaviour).
func TestBadSizeSurfacesError(t *testing.T) {
	h := mem.NewHierarchy(mem.DefaultHierarchyConfig())
	inst := kernels.ByID("N").Build(h, kernels.UVE, 13) // not a lane multiple
	if inst.Err == nil {
		t.Fatal("covariance with n=13 must fail verification")
	}
	h = mem.NewHierarchy(mem.DefaultHierarchyConfig())
	inst = kernels.UnrolledGemmUVE(h, 96, 5)
	if inst.Err == nil {
		t.Fatal("unrolled gemm with unroll=5 must fail")
	}
}
