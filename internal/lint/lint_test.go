package lint_test

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/lint"
	"repro/internal/program"
)

// findDiag returns the first diagnostic whose message contains want.
func findDiag(diags []lint.Diagnostic, want string) *lint.Diagnostic {
	for i := range diags {
		if strings.Contains(diags[i].Message, want) {
			return &diags[i]
		}
	}
	return nil
}

func mustBuild(t *testing.T, b *program.Builder) *program.Program {
	t.Helper()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return p
}

func ld(base uint64, n int) *descriptor.Descriptor {
	return descriptor.New(base, arch.W4, descriptor.Load).Linear(int64(n), 1).MustBuild()
}

func st(base uint64, n int) *descriptor.Descriptor {
	return descriptor.New(base, arch.W4, descriptor.Store).Linear(int64(n), 1).MustBuild()
}

const w = arch.W4

// TestNegativeCorpus runs small broken programs through the checker and
// asserts each one's exact diagnostic (by severity and message substring).
func TestNegativeCorpus(t *testing.T) {
	buf := lint.Extent{Base: 0x10000, Size: 4 * 64}
	cases := []struct {
		name  string
		build func() *program.Program
		opts  *lint.Options
		sev   lint.Severity
		want  string
	}{
		{
			name: "read unconfigured stream",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.Label("loop")
				b.I(isa.VFAdd(w, isa.V(5), isa.V(0), isa.V(0), isa.None))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "u0 may be used before it is defined",
		},
		{
			name: "restart before end part",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				d2 := descriptor.New(buf.Base, arch.W4, descriptor.Load).
					Dim(0, 8, 1).Dim(0, 8, 8).MustBuild()
				parts := isa.SCfgParts(0, d2)
				// Drop the end part, then start over: the first configuration
				// is structurally unterminated.
				b.I(parts[:len(parts)-1]...)
				b.I(isa.SCfgParts(0, ld(buf.Base, 64))...)
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "configuration of u0 restarted before its ss.end part",
		},
		{
			name: "descriptor walks out of its buffer",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.ConfigStream(0, ld(buf.Base, 65)) // buffer holds 64 elems
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			opts: &lint.Options{Extents: []lint.Extent{buf}},
			sev:  lint.Error,
			want: "outside any allocated buffer",
		},
		{
			name: "undefined scalar",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Add(isa.X(3), isa.X(1), isa.X(2)))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "x1 may be used before it is defined",
		},
		{
			name: "infinite loop",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(1), 1))
				b.Label("loop")
				b.I(isa.Add(isa.X(1), isa.X(1), isa.X(1)))
				b.I(isa.J("loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "loop starting here has no exit",
		},
		{
			name: "predicate width mismatch",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(9), 0))
				b.I(isa.Li(isa.X(1), 64))
				b.I(isa.Whilelt(arch.W8, isa.P(1), isa.X(9), isa.X(1)))
				b.I(isa.VLoad(arch.W4, isa.V(5), isa.X(1), isa.X(9), 0, isa.P(1)))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "predicate p1 was produced for 8-byte lanes",
		},
		{
			name: "resume without suspend",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.ConfigStream(0, ld(buf.Base, 64))
				b.I(isa.SResume(0))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "ss.resume on u0, which is not suspended",
		},
		{
			name: "read while suspended",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.ConfigStream(0, ld(buf.Base, 64))
				b.I(isa.SSuspend(0))
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.SResume(0))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(6), isa.V(0)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "u0 read while its stream may be suspended",
		},
		{
			name: "configured but never used",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.ConfigStream(0, ld(buf.Base, 64))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "u0 is configured but never used",
		},
		{
			name: "reconfigured before use",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.ConfigStream(0, ld(buf.Base, 64))
				b.ConfigStream(0, ld(buf.Base, 32))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "u0 reconfigured before its previous configuration was ever used",
		},
		{
			name: "write to load stream",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(1), 1))
				b.ConfigStream(0, ld(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VDupX(w, isa.V(0), isa.X(1)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "writes u0, which is bound to a load stream",
		},
		{
			name: "read from store stream",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.ConfigStream(0, st(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "u0 reads a store (output) stream",
		},
		{
			name: "fall off the end",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(1), 1))
				return mustBuild(t, b)
			},
			sev:  lint.Warn,
			want: "control can fall off the end of the program",
		},
		{
			name: "unreachable code",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.J("end"))
				b.I(isa.Li(isa.X(1), 1))
				b.I(isa.Li(isa.X(2), 2))
				b.Label("end")
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Warn,
			want: "instructions 1..2 are unreachable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := lint.Check(tc.build(), tc.opts)
			d := findDiag(diags, tc.want)
			if d == nil {
				t.Fatalf("no diagnostic matching %q; got %v", tc.want, diags)
			}
			if d.Severity != tc.sev {
				t.Errorf("severity = %v, want %v (%s)", d.Severity, tc.sev, d.Message)
			}
		})
	}
}

// TestCleanPrograms checks that canonical correct shapes produce no
// diagnostics at all.
func TestCleanPrograms(t *testing.T) {
	src := lint.Extent{Base: 0x10000, Size: 4 * 64}
	dst := lint.Extent{Base: 0x20000, Size: 4 * 64}
	opts := &lint.Options{Extents: []lint.Extent{src, dst}}

	t.Run("stream copy loop", func(t *testing.T) {
		b := program.NewBuilder("ok")
		b.ConfigStream(0, ld(src.Base, 64))
		b.ConfigStream(1, st(dst.Base, 64))
		b.Label("loop")
		b.I(isa.VMove(w, isa.V(1), isa.V(0)))
		b.I(isa.SBNotEnd(0, "loop"))
		b.I(isa.Halt())
		if diags := lint.Check(mustBuild(t, b), opts); len(diags) != 0 {
			t.Fatalf("unexpected diagnostics: %v", diags)
		}
	})

	t.Run("suspend resume", func(t *testing.T) {
		b := program.NewBuilder("ok")
		b.ConfigStream(0, ld(src.Base, 64))
		b.ConfigStream(1, st(dst.Base, 64))
		b.Label("loop")
		b.I(isa.VMove(w, isa.V(1), isa.V(0)))
		b.I(isa.SSuspend(0))
		b.I(isa.SResume(0))
		b.I(isa.SBNotEnd(0, "loop"))
		b.I(isa.Halt())
		if diags := lint.Check(mustBuild(t, b), opts); len(diags) != 0 {
			t.Fatalf("unexpected diagnostics: %v", diags)
		}
	})

	t.Run("reconfigure after use", func(t *testing.T) {
		// The Floyd-Warshall idiom: a second configuration of the same
		// register after the first was consumed is a rename, not an error.
		b := program.NewBuilder("ok")
		b.ConfigStream(0, ld(src.Base, 64))
		b.ConfigStream(1, st(dst.Base, 64))
		b.Label("l1")
		b.I(isa.VMove(w, isa.V(1), isa.V(0)))
		b.I(isa.SBNotEnd(0, "l1"))
		b.ConfigStream(0, ld(dst.Base, 64))
		b.ConfigStream(1, st(src.Base, 64))
		b.Label("l2")
		b.I(isa.VMove(w, isa.V(1), isa.V(0)))
		b.I(isa.SBNotEnd(0, "l2"))
		b.I(isa.Halt())
		if diags := lint.Check(mustBuild(t, b), opts); len(diags) != 0 {
			t.Fatalf("unexpected diagnostics: %v", diags)
		}
	})
}

// TestToError checks the error folding used by BuildVerified.
func TestToError(t *testing.T) {
	if err := lint.ToError(nil); err != nil {
		t.Fatalf("ToError(nil) = %v", err)
	}
	warnOnly := []lint.Diagnostic{{PC: 0, Severity: lint.Warn, Message: "meh"}}
	if err := lint.ToError(warnOnly); err != nil {
		t.Fatalf("warnings must not fail the build: %v", err)
	}
	withErr := append(warnOnly, lint.Diagnostic{PC: 3, Severity: lint.Error, Message: "boom"})
	err := lint.ToError(withErr)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("ToError = %v, want boom", err)
	}
	if strings.Contains(err.Error(), "meh") {
		t.Fatalf("warning leaked into error: %v", err)
	}
}
