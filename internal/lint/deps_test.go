package lint_test

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/lint"
	"repro/internal/program"
)

// TestDepNegativeCorpus runs aliasing programs through the dependence
// analyzer and asserts each one's diagnostic, mirroring TestNegativeCorpus.
func TestDepNegativeCorpus(t *testing.T) {
	buf := lint.Extent{Base: 0x10000, Size: 4 * 64}
	buf2 := lint.Extent{Base: 0x20000, Size: 4 * 64}
	idx := lint.Extent{Base: 0x30000, Size: 8 * 64}
	opts := func() *lint.Options {
		return &lint.Options{Extents: []lint.Extent{buf, buf2, idx}}
	}
	cases := []struct {
		name  string
		build func() *program.Program
		opts  *lint.Options
		sev   lint.Severity
		want  string
	}{
		{
			name: "two store streams alias (WAW)",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(1), 7))
				b.ConfigStream(0, st(buf.Base, 64))
				b.ConfigStream(1, st(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VDupX(w, isa.V(0), isa.X(1)))
				b.I(isa.VDupX(w, isa.V(1), isa.X(1)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "store streams u0 and u1 both write",
		},
		{
			name: "store sweeps against the load (WAR)",
			build: func() *program.Program {
				// The load walks the buffer forward, the store backward: the
				// last element the load prefetches was already overwritten at
				// the store's first position.
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(1), 7))
				b.ConfigStream(0, ld(buf.Base, 64))
				b.ConfigStream(1, descriptor.New(buf.Base, arch.W4, descriptor.Store).
					Dim(63, 64, -1).MustBuild())
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.VDupX(w, isa.V(1), isa.X(1)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "the prefetch may return the stale pre-store value (WAR)",
		},
		{
			name: "scalar store into a live load stream",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(2), int64(buf.Base)+16))
				b.I(isa.Li(isa.X(3), 7))
				b.ConfigStream(0, ld(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.Store(w, isa.X(2), 0, isa.X(3)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "lands inside live load stream u0's footprint",
		},
		{
			name: "scalar store races a live store stream",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(2), int64(buf.Base)+16))
				b.I(isa.Li(isa.X(3), 7))
				b.ConfigStream(0, st(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VDupX(w, isa.V(0), isa.X(3)))
				b.I(isa.Store(w, isa.X(2), 0, isa.X(3)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "races live store stream u0's commits",
		},
		{
			name: "scalar store to an unknown address",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(3), 7))
				b.ConfigStream(0, ld(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.Store(w, isa.X(2), 0, isa.X(3)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			opts: &lint.Options{EntryInt: []int{2}, Extents: []lint.Extent{buf}},
			sev:  lint.Warn,
			want: "store address is statically unknown (base x2 holds an entry value)",
		},
		{
			name: "unknown store address names its producing instruction",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(3), 7))
				b.I(isa.Load(arch.W8, isa.X(2), isa.X(4), 0)) // pc 1: x2 ← mem
				b.ConfigStream(0, ld(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.Store(w, isa.X(2), 0, isa.X(3)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			opts: &lint.Options{EntryInt: []int{4}, Extents: []lint.Extent{buf}},
			sev:  lint.Warn,
			want: "store address is statically unknown (base x2 produced at 1)",
		},
		{
			name: "indirect stream defeats the footprint",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(1), 7))
				b.ConfigStream(1, descriptor.New(idx.Base, arch.W8, descriptor.Load).
					Linear(64, 1).MustBuild())
				b.ConfigStream(0, descriptor.New(buf.Base, arch.W4, descriptor.Load).
					Linear(64, 1).Indirect(descriptor.TargetOffset, descriptor.SetValue, 1).
					MustBuild())
				b.ConfigStream(2, st(buf.Base, 64))
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.VDupX(w, isa.V(2), isa.X(1)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Warn,
			want: "cannot prove streams u0 and u2 disjoint",
		},
		{
			name: "ambiguous reaching configuration",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(1), 7))
				b.I(isa.Beq(isa.X(2), isa.X(0), "alt"))
				b.I(isa.SCfgParts(0, ld(buf.Base, 64))...)
				b.I(isa.J("join"))
				b.Label("alt")
				b.I(isa.SCfgParts(0, ld(buf2.Base, 64))...)
				b.Label("join")
				b.I(isa.SCfgParts(1, st(buf.Base, 64))...)
				b.Label("loop")
				b.I(isa.VMove(w, isa.V(5), isa.V(0)))
				b.I(isa.VDupX(w, isa.V(1), isa.X(1)))
				b.I(isa.SBNotEnd(0, "loop"))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			opts: &lint.Options{EntryInt: []int{2}, Extents: []lint.Extent{buf, buf2}},
			sev:  lint.Warn,
			want: "different configurations of u0 may be live here",
		},
		{
			name: "conflicting predicate widths name their producers",
			build: func() *program.Program {
				b := program.NewBuilder("bad")
				b.I(isa.Li(isa.X(9), 0))
				b.I(isa.Li(isa.X(1), 64))
				b.I(isa.Beq(isa.X(9), isa.X(0), "alt"))
				b.I(isa.Whilelt(arch.W8, isa.P(1), isa.X(9), isa.X(1)))
				b.I(isa.J("join"))
				b.Label("alt")
				b.I(isa.Whilelt(arch.W4, isa.P(1), isa.X(9), isa.X(1)))
				b.Label("join")
				b.I(isa.VLoad(arch.W4, isa.V(5), isa.X(1), isa.X(9), 0, isa.P(1)))
				b.I(isa.Halt())
				return mustBuild(t, b)
			},
			sev:  lint.Error,
			want: "conflicting element widths (produced for 8-byte lanes at 3, 4-byte lanes at 5)",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.opts
			if o == nil {
				o = opts()
			}
			diags := lint.Check(tc.build(), o)
			d := findDiag(diags, tc.want)
			if d == nil {
				t.Fatalf("no diagnostic matching %q; got %v", tc.want, diags)
			}
			if d.Severity != tc.sev {
				t.Errorf("severity = %v, want %v (%s)", d.Severity, tc.sev, d.Message)
			}
		})
	}
}

// findDep returns the first pair between streams a and b (either order;
// b = -1 matches scalar-store pairs).
func findDep(deps []lint.DepPair, a, b int) *lint.DepPair {
	for i := range deps {
		d := &deps[i]
		if (d.First == a && d.Second == b) || (d.First == b && d.Second == a) {
			return d
		}
	}
	return nil
}

// TestDepVerdicts checks the safe-overlap classifications the analyzer must
// prove silently: lockstep WAR, RAW behind the config drain stall, disjoint
// copies, and the retired cross-phase WAR.
func TestDepVerdicts(t *testing.T) {
	src := lint.Extent{Base: 0x10000, Size: 4 * 64}
	dst := lint.Extent{Base: 0x20000, Size: 4 * 64}
	opts := &lint.Options{Extents: []lint.Extent{src, dst}}

	run := func(t *testing.T, b *program.Builder) []lint.DepPair {
		t.Helper()
		diags, deps := lint.Analyze(mustBuild(t, b), opts)
		if len(diags) != 0 {
			t.Fatalf("unexpected diagnostics: %v", diags)
		}
		return deps
	}

	t.Run("lockstep WAR is ordered", func(t *testing.T) {
		// The in-place update idiom (Floyd-Warshall, irsmk): identical load
		// and store sequences over one buffer.
		b := program.NewBuilder("ok")
		b.ConfigStream(0, ld(src.Base, 64))
		b.ConfigStream(1, st(src.Base, 64))
		b.Label("loop")
		b.I(isa.VMove(w, isa.V(1), isa.V(0)))
		b.I(isa.SBNotEnd(0, "loop"))
		b.I(isa.Halt())
		deps := run(t, b)
		d := findDep(deps, 0, 1)
		if d == nil || d.Verdict != lint.DepOrdered || !strings.Contains(d.Detail, "lockstep") {
			t.Fatalf("want ordered lockstep pair, got %v (all: %v)", d, deps)
		}
	})

	t.Run("RAW is ordered by the config stall", func(t *testing.T) {
		b := program.NewBuilder("ok")
		b.ConfigStream(0, st(dst.Base, 64))
		b.ConfigStream(1, ld(dst.Base, 64))
		b.I(isa.Li(isa.X(1), 7))
		b.Label("loop")
		b.I(isa.VDupX(w, isa.V(0), isa.X(1)))
		b.I(isa.VMove(w, isa.V(5), isa.V(1)))
		b.I(isa.SBNotEnd(0, "loop"))
		b.I(isa.Halt())
		deps := run(t, b)
		d := findDep(deps, 0, 1)
		if d == nil || d.Kind != "RAW" || d.Verdict != lint.DepOrdered {
			t.Fatalf("want ordered RAW pair, got %v (all: %v)", d, deps)
		}
	})

	t.Run("copy streams are disjoint", func(t *testing.T) {
		b := program.NewBuilder("ok")
		b.ConfigStream(0, ld(src.Base, 64))
		b.ConfigStream(1, st(dst.Base, 64))
		b.Label("loop")
		b.I(isa.VMove(w, isa.V(1), isa.V(0)))
		b.I(isa.SBNotEnd(0, "loop"))
		b.I(isa.Halt())
		deps := run(t, b)
		d := findDep(deps, 0, 1)
		if d == nil || d.Verdict != lint.DepDisjoint {
			t.Fatalf("want disjoint pair, got %v (all: %v)", d, deps)
		}
	})

	t.Run("retired cross-phase WAR is ordered", func(t *testing.T) {
		// The Jacobi two-sweep idiom: sweep 1 reads src into dst, sweep 2
		// (on other registers) writes src back. Only u0 is branch-tested, so
		// u1 stays may-live at u3's configuration — the retired-access rule
		// must order the pair instead of flagging it.
		b := program.NewBuilder("ok")
		b.ConfigStream(0, ld(src.Base, 64))
		b.ConfigStream(1, ld(src.Base+4, 63))
		b.ConfigStream(2, st(dst.Base, 64))
		b.I(isa.Li(isa.X(1), 7))
		b.Label("l1")
		b.I(isa.VMove(w, isa.V(2), isa.V(0)))
		b.I(isa.VMove(w, isa.V(5), isa.V(1)))
		b.I(isa.SBNotEnd(0, "l1"))
		b.ConfigStream(4, ld(dst.Base, 64))
		b.ConfigStream(3, st(src.Base, 64))
		b.Label("l2")
		b.I(isa.VMove(w, isa.V(3), isa.V(4)))
		b.I(isa.SBNotEnd(4, "l2"))
		b.I(isa.Halt())
		deps := run(t, b)
		d := findDep(deps, 1, 3)
		if d == nil || d.Kind != "WAR" || d.Verdict != lint.DepOrdered ||
			!strings.Contains(d.Detail, "no consumer after") {
			t.Fatalf("want retired ordered WAR pair, got %v (all: %v)", d, deps)
		}
	})
}
