package lint

import (
	"repro/internal/absint"
	"repro/internal/arch"
	"repro/internal/isa"
)

// This file bridges the dependence analyzer to the abstract interpreter
// (internal/absint). The constant-propagation lattice in dataflow.go resolves
// a scalar store's address only when it is a single known value; the prover
// bounds register values as intervals, so loop-carried addresses (an induction
// variable clamped by a stream-derived trip count) still yield a finite byte
// range that footprints can be checked against. Interval ranges are used only
// to *prove disjointness* — an overlapping interval range never produces a
// hazard, because the true store address is one point somewhere in the range.

// proveResult lazily runs the abstract interpreter over the program, seeded
// with the known entry-register values. The result is cached: checkDeps may
// consult it once per scalar store.
func (c *checker) proveResult() *absint.Result {
	if !c.proveRan {
		c.proveRan = true
		c.prove = absint.Analyze(c.p, absint.Options{
			Entry:    c.opts.EntryIntVals,
			VecBytes: c.opts.VecBytes,
		})
	}
	return c.prove
}

// proveAddrMax bounds interval store addresses: ranges reaching this high are
// treated as unresolved so the int64 byte-range arithmetic below cannot wrap.
const proveAddrMax = uint64(1) << 62

// intervalStoreRange bounds the byte range a store instruction can write
// using the abstract interpreter's value ranges, for stores the constant
// lattice could not resolve. ok is false when the prover has no finite bound.
func (c *checker) intervalStoreRange(pc int, in *isa.Inst) (lo, hi int64, ok bool) {
	r := c.proveResult()
	if r == nil || !r.Reachable(pc) || in.Src1.Class != isa.ClassInt {
		return 0, 0, false
	}
	base := r.At(pc, int(in.Src1.N))
	if base.Hi >= proveAddrMax {
		return 0, 0, false
	}
	switch in.Op {
	case isa.OpStore, isa.OpFStore:
		return int64(base.Lo) + in.Imm, int64(base.Hi) + in.Imm + int64(in.W), true
	case isa.OpVStore:
		if in.Src2.Class != isa.ClassInt {
			return 0, 0, false
		}
		idx := r.At(pc, int(in.Src2.N))
		if idx.Hi >= proveAddrMax {
			return 0, 0, false
		}
		lo = int64(base.Lo) + (int64(idx.Lo)+in.Imm)*int64(in.W)
		hi = int64(base.Hi) + (int64(idx.Hi)+in.Imm)*int64(in.W) + int64(arch.MaxVecBytes)
		return lo, hi, true
	}
	return 0, 0, false
}
