package lint

import (
	"fmt"

	"repro/internal/absint"
	"repro/internal/descriptor"
	"repro/internal/isa"
	"repro/internal/program"
)

// cfgSite is one completed stream configuration: the µOp run [startPC,
// endPC] and the descriptor it assembles.
type cfgSite struct {
	idx     int // index into checker.sites
	stream  int
	startPC int
	endPC   int
	desc    *descriptor.Descriptor // nil when reassembly failed
}

type checker struct {
	p     *program.Program
	opts  *Options
	insts []isa.Inst
	diags []Diagnostic
	deps  []DepPair

	succs [][]int // CFG successors per pc
	reach []bool

	sites      []*cfgSite
	siteAt     map[int]*cfgSite // end-part pc → site
	configured uint32           // streams with at least one config site
	originUse  map[int][]int    // stream → end-part pcs of indirect consumers

	in []state // dataflow fixpoint result

	prove    *absint.Result // lazy value-range analysis (opts.Prove)
	proveRan bool
}

func newChecker(p *program.Program, opts *Options) *checker {
	return &checker{
		p:      p,
		opts:   opts,
		insts:  p.Insts,
		siteAt: make(map[int]*cfgSite),
	}
}

func (c *checker) errorf(pc int, format string, args ...any) {
	c.diag(pc, Error, format, args...)
}

func (c *checker) warnf(pc int, format string, args ...any) {
	c.diag(pc, Warn, format, args...)
}

func (c *checker) diag(pc int, sev Severity, format string, args ...any) {
	op := ""
	if pc >= 0 && pc < len(c.insts) {
		op = c.insts[pc].Op.Name()
	}
	c.diags = append(c.diags, Diagnostic{PC: pc, Op: op, Severity: sev, Message: fmt.Sprintf(format, args...)})
}

func (c *checker) run() {
	if len(c.insts) == 0 {
		return
	}
	c.checkRegisters()
	c.collectConfigs()
	c.buildCFG()
	c.checkCFG()
	c.runDataflow()
	c.checkStreamUses()
	c.checkFootprints()
	c.checkDeps()
}

// checkRegisters validates operand register numbers against their class
// sizes before any other analysis indexes by them.
func (c *checker) checkRegisters() {
	var srcs []isa.Reg
	for pc := range c.insts {
		in := &c.insts[pc]
		srcs = srcs[:0]
		srcs = in.Srcs(srcs)
		if in.HasDst() {
			srcs = append(srcs, in.Dst)
		}
		for _, r := range srcs {
			if !r.Valid() {
				c.errorf(pc, "register %s does not exist", r)
			}
		}
	}
}

// collectConfigs scans the program linearly, assembling every stream
// configuration µOp run into a descriptor and flagging structural sequencing
// errors (a restarted configuration, a continuation without a start, a
// start that never reaches its ss.end part).
func (c *checker) collectConfigs() {
	pending := make(map[int][]*isa.StreamCfgPart)
	pendingStart := make(map[int]int)
	for pc := range c.insts {
		in := &c.insts[pc]
		if in.Op != isa.OpSCfg || in.Cfg == nil {
			continue
		}
		part := in.Cfg
		u := part.Stream
		if u < 0 || u >= isa.NumVecRegs {
			c.errorf(pc, "configuration of non-existent stream u%d", u)
			continue
		}
		if part.Start {
			if len(pending[u]) > 0 {
				c.errorf(pc, "configuration of u%d restarted before its ss.end part", u)
			}
			pending[u] = pending[u][:0]
			pendingStart[u] = pc
		} else if len(pending[u]) == 0 {
			c.errorf(pc, "configuration part for u%d without a preceding start part", u)
			continue
		}
		pending[u] = append(pending[u], part)
		if part.End {
			site := &cfgSite{idx: len(c.sites), stream: u, startPC: pendingStart[u], endPC: pc}
			if d, err := isa.RebuildDescriptor(pending[u]); err != nil {
				c.errorf(pc, "invalid configuration of u%d: %v", u, err)
			} else {
				site.desc = d
			}
			c.sites = append(c.sites, site)
			c.siteAt[pc] = site
			c.configured |= 1 << uint(u)
			pending[u] = nil
		}
	}
	for u, parts := range pending {
		if len(parts) > 0 {
			c.errorf(pendingStart[u], "configuration of u%d never completed (missing ss.end part)", u)
		}
	}
}

// buildCFG derives per-instruction successor lists and reachability from
// entry. A fallthrough past the last instruction has no successor; checkCFG
// reports it.
func (c *checker) buildCFG() {
	n := len(c.insts)
	c.succs = make([][]int, n)
	for pc := range c.insts {
		in := &c.insts[pc]
		switch {
		case in.Op == isa.OpHalt:
		case in.Op == isa.OpJ:
			c.addSucc(pc, in.Target)
		case in.Op.IsBranch():
			c.addSucc(pc, in.Target)
			c.addSucc(pc, pc+1)
		default:
			c.addSucc(pc, pc+1)
		}
	}
	c.reach = make([]bool, n)
	stack := []int{0}
	c.reach[0] = true
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range c.succs[pc] {
			if !c.reach[s] {
				c.reach[s] = true
				stack = append(stack, s)
			}
		}
	}
}

func (c *checker) addSucc(pc, to int) {
	if to < 0 || to >= len(c.insts) {
		// Fallthrough past the end (or a corrupt target); no successor.
		if to != len(c.insts) {
			c.errorf(pc, "branch target %d is outside the program", to)
		}
		return
	}
	c.succs[pc] = append(c.succs[pc], to)
}

// checkCFG reports unreachable code, control falling off the end of the
// program, branches into the middle of a configuration run, and loops with
// no exit (an SCC no edge leaves).
func (c *checker) checkCFG() {
	n := len(c.insts)
	// Unreachable instructions, reported once per run.
	for pc := 0; pc < n; {
		if c.reach[pc] {
			pc++
			continue
		}
		end := pc
		for end+1 < n && !c.reach[end+1] {
			end++
		}
		if end > pc {
			c.warnf(pc, "instructions %d..%d are unreachable", pc, end)
		} else {
			c.warnf(pc, "instruction is unreachable")
		}
		pc = end + 1
	}
	// Falling off the end: a reachable instruction whose fallthrough leaves
	// the program without a halt.
	for pc := range c.insts {
		if !c.reach[pc] {
			continue
		}
		in := &c.insts[pc]
		fallsOff := false
		switch {
		case in.Op == isa.OpHalt || in.Op == isa.OpJ:
		case pc+1 >= n:
			fallsOff = true
		}
		if fallsOff {
			c.warnf(pc, "control can fall off the end of the program without a halt")
		}
	}
	// Branches into the middle of a configuration run would deliver
	// continuation parts without their start.
	inConfig := make(map[int]*cfgSite)
	for _, s := range c.sites {
		for pc := s.startPC + 1; pc <= s.endPC; pc++ {
			inConfig[pc] = s
		}
	}
	for pc := range c.insts {
		in := &c.insts[pc]
		if !c.reach[pc] || !in.Op.IsBranch() {
			continue
		}
		if s := inConfig[in.Target]; s != nil {
			c.errorf(pc, "branch into the middle of u%d's configuration (instructions %d..%d)",
				s.stream, s.startPC, s.endPC)
		}
	}
	c.checkInfiniteLoops()
}

// checkInfiniteLoops finds strongly connected components of the reachable
// CFG that contain a cycle but have no edge leaving them: control that
// enters can never reach a halt.
func (c *checker) checkInfiniteLoops() {
	n := len(c.insts)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	// Iterative Tarjan.
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	next := 0
	ncomp := 0
	type frame struct{ pc, si int }
	for start := 0; start < n; start++ {
		if !c.reach[start] || index[start] != -1 {
			continue
		}
		frames := []frame{{start, 0}}
		index[start], low[start] = next, next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.si < len(c.succs[f.pc]) {
				s := c.succs[f.pc][f.si]
				f.si++
				if index[s] == -1 {
					index[s], low[s] = next, next
					next++
					stack = append(stack, s)
					onStack[s] = true
					frames = append(frames, frame{s, 0})
				} else if onStack[s] && low[f.pc] > index[s] {
					low[f.pc] = index[s]
				}
				continue
			}
			if low[f.pc] == index[f.pc] {
				for {
					v := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[v] = false
					comp[v] = ncomp
					if v == f.pc {
						break
					}
				}
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				g := &frames[len(frames)-1]
				if low[g.pc] > low[f.pc] {
					low[g.pc] = low[f.pc]
				}
			}
		}
	}
	// A component is a trap when it has an internal edge (a cycle) and no
	// edge to another component.
	hasCycle := make([]bool, ncomp)
	hasExit := make([]bool, ncomp)
	first := make([]int, ncomp)
	for i := range first {
		first[i] = -1
	}
	for pc := n - 1; pc >= 0; pc-- {
		if comp[pc] >= 0 {
			first[comp[pc]] = pc
		}
	}
	for pc := 0; pc < n; pc++ {
		if comp[pc] < 0 {
			continue
		}
		for _, s := range c.succs[pc] {
			if comp[s] == comp[pc] {
				hasCycle[comp[pc]] = true
			} else {
				hasExit[comp[pc]] = true
			}
		}
	}
	for i := 0; i < ncomp; i++ {
		if hasCycle[i] && !hasExit[i] {
			c.errorf(first[i], "loop starting here has no exit: no stream, predicate or scalar condition ever leaves it")
		}
	}
}
