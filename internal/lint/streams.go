package lint

import (
	"sort"

	"repro/internal/descriptor"
	"repro/internal/isa"
)

// checkStreamUses flags configurations whose stream is never consumed: a
// reconfiguration that clobbers an unused stream, or a configuration the
// program ends without ever touching. "Use" means a core read or write of the
// vector register, an ss.force, or another configuration naming the stream as
// an indirect origin; stream branches alone do not count — testing whether a
// stream ended without ever consuming it does no work.
func (c *checker) checkStreamUses() {
	// Config sites whose descriptors consume stream s as an indirect origin.
	originUse := make(map[int][]int) // stream → end-part pcs of consuming sites
	for _, site := range c.sites {
		if site.desc == nil {
			continue
		}
		for _, o := range site.desc.Origins() {
			originUse[o] = append(originUse[o], site.endPC)
		}
	}
	for _, site := range c.sites {
		if !c.reach[site.endPC] {
			continue
		}
		used, clobbered := c.traceUse(site, originUse[site.stream])
		if used {
			continue
		}
		if clobbered {
			c.errorf(site.endPC, "u%d reconfigured before its previous configuration was ever used", site.stream)
		} else {
			c.errorf(site.endPC, "u%d is configured but never used", site.stream)
		}
	}
}

// traceUse walks forward from a configuration's end part, looking for a use
// of the stream before it is clobbered by another configuration start or an
// ss.stop. It reports whether a use was found and, if not, whether any path
// reached a clobber (vs simply running off the program).
func (c *checker) traceUse(site *cfgSite, originSites []int) (used, clobbered bool) {
	u := site.stream
	seen := make([]bool, len(c.insts))
	stack := append([]int(nil), c.succs[site.endPC]...)
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[pc] {
			continue
		}
		seen[pc] = true
		in := &c.insts[pc]
		if d := in.DataDst(); d.Class == isa.ClassVec && int(d.N) == u {
			return true, clobbered
		}
		var srcs [4]isa.Reg
		for _, r := range in.DataSrcs(srcs[:0]) {
			if r.Class == isa.ClassVec && int(r.N) == u {
				return true, clobbered
			}
		}
		if in.Op == isa.OpSForce && int(in.Dst.N) == u {
			return true, clobbered
		}
		for _, endPC := range originSites {
			if pc == endPC {
				return true, clobbered
			}
		}
		kill := false
		if in.Op == isa.OpSCfg && in.Cfg != nil && in.Cfg.Stream == u && in.Cfg.Start {
			kill, clobbered = true, true
		}
		if in.Op == isa.OpSStop && int(in.Dst.N) == u {
			kill, clobbered = true, true
		}
		if kill {
			continue
		}
		stack = append(stack, c.succs[pc]...)
	}
	return false, clobbered
}

// checkFootprints enumerates the exact address sequence of every reachable
// non-indirect configuration and checks each element against the declared
// buffer extents. Indirect descriptors are skipped — their addresses depend
// on runtime data. Enumeration is capped so linting stays cheap relative to
// simulation.
func (c *checker) checkFootprints() {
	if len(c.opts.Extents) == 0 {
		return
	}
	extents := append([]Extent(nil), c.opts.Extents...)
	sort.Slice(extents, func(i, j int) bool { return extents[i].Base < extents[j].Base })
	contains := func(addr uint64, n int64) bool {
		// Rightmost extent starting at or below addr; Alloc never overlaps.
		i := sort.Search(len(extents), func(i int) bool { return extents[i].Base > addr })
		if i == 0 {
			return false
		}
		e := extents[i-1]
		return addr >= e.Base && addr+uint64(n) <= e.Base+uint64(e.Size)
	}
	cap := c.opts.MaxFootprintElems
	if cap <= 0 {
		cap = DefaultMaxFootprintElems
	}
	for _, site := range c.sites {
		if site.desc == nil || site.desc.HasIndirect() || !c.reach[site.endPC] {
			continue
		}
		it := descriptor.NewIterator(site.desc, nil)
		w := int64(site.desc.Width)
		for n := int64(0); n < cap; n++ {
			e, ok := it.Next()
			if !ok {
				break
			}
			if !contains(e.Addr, w) {
				c.errorf(site.endPC, "stream u%d accesses 0x%x (element %d), outside any allocated buffer",
					site.stream, e.Addr, n)
				break
			}
			if e.Last {
				break
			}
		}
	}
}
