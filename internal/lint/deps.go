package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
)

// This file implements the inter-stream dependence analyzer. At every
// program point where a stream configuration completes (its ss.end µOp) or a
// scalar/legacy store executes while streams are live, each live pair is
// classified over the verdict lattice
//
//	DepDisjoint  — byte footprints proven to never intersect (silent)
//	DepOrdered   — footprints intersect but an engine ordering guarantee
//	               makes the overlap safe (silent)
//	DepHazard    — footprints intersect with no ordering guarantee (error)
//	DepUnknown   — could not be decided: ⊤ footprints, imprecise hulls,
//	               unresolved scalar addresses, or budget exhaustion (warning)
//
// The ordering guarantees mirror internal/engine:
//
//   - RAW (store configured first, load second): processSCROB defers a load
//     stream's activation while any store stream still has uncommitted
//     chunks, so a later-configured load always observes the stores' data.
//   - WAR (load first, store second): safe when the two sequences are
//     identical (lockstep read-then-write renaming, the Floyd-Warshall and
//     irsmk idiom), or more generally when every commonly-touched address is
//     first read at a sequence position no later than it is first written —
//     the store's commit of element q waits for the core to commit the
//     producing instruction, which consumes load elements at equal pace, so
//     the load's prefetch of position p ≤ q wins the race. Position
//     comparison across the two streams assumes equal pace, a documented
//     imprecision (DESIGN.md).
//   - Retired access: when the earlier stream has no reachable use after the
//     later access's program point, every value the program will ever observe
//     from it was delivered to an instruction that the in-order core committed
//     before the later access's first write — and elements the engine may
//     still prefetch into a never-drained FIFO are unobservable. The
//     cross-phase idiom (Jacobi's two sweeps) is safe this way: the first
//     sweep's streams are fully consumed before the second sweep's store
//     configures, even though the may-liveness analysis cannot prove they
//     ended (only the branch-tested sibling is refined at the loop exit).
//   - Scalar loads are never checked: the core's LSQ holds them while
//     StoreMayOverlap reports a conflicting store-stream chunk, which makes
//     them coherent by construction.
//
// WAW overlaps between different store streams have no ordering guarantee
// and are hazards. Two configurations of the *same* register are never
// paired: slot renaming plus the in-order SCROB serializes them (and data
// production of the later one transitively waits on the earlier).

// DepVerdict is the analyzer's classification of one dependence pair.
type DepVerdict int

const (
	// DepUnknown means the pair could not be classified; reported as a
	// warning.
	DepUnknown DepVerdict = iota
	// DepDisjoint means the footprints provably never intersect.
	DepDisjoint
	// DepOrdered means the footprints intersect but an engine ordering
	// guarantee makes the overlap safe.
	DepOrdered
	// DepHazard means the footprints intersect with no ordering guarantee;
	// reported as an error.
	DepHazard
)

func (v DepVerdict) String() string {
	switch v {
	case DepDisjoint:
		return "disjoint"
	case DepOrdered:
		return "ordered"
	case DepHazard:
		return "hazard"
	}
	return "unknown"
}

// DepPair is one analyzed dependence between two simultaneously-live
// accesses. First is the stream whose configuration is live when the second
// access appears; Second is -1 when the second access is a scalar store
// (SecondPC then points at the store instruction).
type DepPair struct {
	First    int
	Second   int
	FirstPC  int // ss.end of First's configuration
	SecondPC int // ss.end of Second's configuration, or the scalar store pc
	Kind     string
	Verdict  DepVerdict
	Detail   string
}

func (p DepPair) String() string {
	second := fmt.Sprintf("u%d@%d", p.Second, p.SecondPC)
	if p.Second < 0 {
		second = fmt.Sprintf("store@%d", p.SecondPC)
	}
	return fmt.Sprintf("%s u%d@%d vs %s: %s (%s)", p.Kind, p.First, p.FirstPC, second, p.Verdict, p.Detail)
}

// Analysis budgets. Exceeding one degrades a verdict to DepUnknown.
const (
	depRelateBudget   = 1 << 22
	depPositionBudget = 1 << 20
)

// checkDeps walks every reachable program point with the dataflow fixpoint's
// in-states and classifies stream/stream and scalar-store/stream pairs.
func (c *checker) checkDeps() {
	if c.in == nil || len(c.sites) == 0 {
		return
	}
	maxElems := c.opts.MaxFootprintElems
	if maxElems <= 0 {
		maxElems = DefaultMaxFootprintElems
	}
	c.originUse = make(map[int][]int)
	for _, site := range c.sites {
		if site.desc == nil {
			continue
		}
		for _, o := range site.desc.Origins() {
			c.originUse[o] = append(c.originUse[o], site.endPC)
		}
	}
	fps := make([]*descriptor.Footprint, len(c.sites))
	fp := func(i int) *descriptor.Footprint {
		if fps[i] == nil {
			if c.sites[i].desc == nil {
				fps[i] = &descriptor.Footprint{Top: true, Reason: "configuration did not reassemble"}
			} else {
				fps[i] = descriptor.NewFootprint(c.sites[i].desc, maxElems)
			}
		}
		return fps[i]
	}
	seen := map[[2]int]bool{}
	for pc := range c.insts {
		if !c.reach[pc] {
			continue
		}
		in := &c.insts[pc]
		s := &c.in[pc]
		switch {
		case in.Op == isa.OpSCfg && in.Cfg != nil && in.Cfg.End:
			site := c.siteAt[pc]
			if site == nil {
				continue
			}
			for v := 0; v < isa.NumVecRegs; v++ {
				if v == site.stream || s.stream[v]&(stActive|stSuspended) == 0 {
					continue
				}
				si := s.site[v]
				if si == siteConflict {
					key := [2]int{^v, site.idx}
					if !seen[key] {
						seen[key] = true
						c.depRecord(pc, DepPair{
							First: v, Second: site.stream, FirstPC: -1, SecondPC: pc,
							Kind: "ambiguous", Verdict: DepUnknown,
							Detail: fmt.Sprintf("different configurations of u%d may be live here", v),
						})
					}
					continue
				}
				if si < 0 || int(si) >= len(c.sites) {
					continue
				}
				key := [2]int{int(si), site.idx}
				if seen[key] {
					continue
				}
				seen[key] = true
				c.classifyStreamPair(s, c.sites[si], site, fp(int(si)), fp(site.idx))
			}
		case in.Op.IsStore():
			c.checkScalarStore(pc, s, in, fp)
		}
	}
}

// depRecord stores a pair and emits its diagnostic (hazards are errors,
// unknowns warnings; disjoint and ordered pairs are silent).
func (c *checker) depRecord(pc int, p DepPair) {
	c.deps = append(c.deps, p)
	switch p.Verdict {
	case DepHazard:
		c.errorf(pc, "%s", p.Detail)
	case DepUnknown:
		c.warnf(pc, "%s", p.Detail)
	}
}

// certainlyLive reports whether stream u is live on every path reaching the
// state (its status may-set holds no unconfigured/ended/stopped element).
// Hazard verdicts require certainty: a may-set that also says "ended" is the
// cross-loop shape where a lockstep sibling already drained the stream, and
// the overlap is then governed by the next load configuration's drain stall
// rather than by pair ordering.
func certainlyLive(s *state, u int) bool {
	st := s.stream[u]
	return st&(stActive|stSuspended) != 0 &&
		st&(stUnconf|stConfiguring|stEnded|stStopped) == 0
}

// classifyStreamPair classifies (old, new): old's configuration precedes
// new's on every path where both are live.
func (c *checker) classifyStreamPair(s *state, old, new *cfgSite, fo, fn *descriptor.Footprint) {
	oldStore := old.desc != nil && old.desc.Kind == descriptor.Store
	newStore := new.desc != nil && new.desc.Kind == descriptor.Store
	if old.desc != nil && new.desc != nil && !oldStore && !newStore {
		return // read/read pairs are benign
	}
	kind := "WAR"
	switch {
	case oldStore && newStore:
		kind = "WAW"
	case oldStore:
		kind = "RAW"
	}
	p := DepPair{First: old.stream, Second: new.stream, FirstPC: old.endPC, SecondPC: new.endPC, Kind: kind}
	switch descriptor.Relate(fo, fn, depRelateBudget) {
	case descriptor.OverlapDisjoint:
		p.Verdict = DepDisjoint
		p.Detail = "footprints proven disjoint"
	case descriptor.OverlapUnknown:
		p.Verdict = DepUnknown
		p.Detail = fmt.Sprintf("cannot prove streams u%d and u%d disjoint: %s",
			old.stream, new.stream, depImprecision(fo, fn))
	case descriptor.OverlapYes:
		switch kind {
		case "RAW":
			p.Verdict = DepOrdered
			p.Detail = "engine defers the load configuration until prior store streams drain"
		case "WAW":
			if !c.streamUsedFrom(new.endPC, old.stream) {
				p.Verdict = DepOrdered
				p.Detail = fmt.Sprintf("u%d has no producer after this configuration; in-order commit retires its writes first", old.stream)
			} else if addr, ok := commonAddr(fo, fn); ok && certainlyLive(s, old.stream) {
				p.Verdict = DepHazard
				p.Detail = fmt.Sprintf("store streams u%d and u%d both write %#x with no ordering guarantee (WAW)",
					old.stream, new.stream, addr)
			} else {
				p.Verdict = DepUnknown
				p.Detail = fmt.Sprintf("store streams u%d and u%d overlap if u%d is still live here (WAW)",
					old.stream, new.stream, old.stream)
			}
		case "WAR":
			p.Verdict, p.Detail = c.classifyWAR(s, old, new, fo, fn)
		}
	}
	c.depRecord(new.endPC, p)
}

// classifyWAR decides a proven-overlap write-after-read pair: load stream
// old is live when store stream new configures.
func (c *checker) classifyWAR(s *state, old, new *cfgSite, fo, fn *descriptor.Footprint) (DepVerdict, string) {
	if fo.SameSequence(fn) {
		return DepOrdered, "identical sequences consumed in lockstep (read-then-write renaming)"
	}
	// Retired-access rule: no reachable consumer of the load after the
	// store's configuration means every delivered element was committed
	// before the store's first write (cross-phase sweeps).
	if !c.streamUsedFrom(new.endPC, old.stream) {
		return DepOrdered, fmt.Sprintf("u%d has no consumer after this configuration; in-order commit retires its delivered reads first", old.stream)
	}
	// Positional rule: for every address the store writes, the load's first
	// read position must not exceed the store's first write position.
	type viol struct {
		addr   int64
		rd, wr int64
	}
	var bad *viol
	budget := int64(depPositionBudget)
	firstWrite := make(map[int64]bool)
	complete := fn.EachElem(func(q, addr int64) bool {
		if budget--; budget < 0 {
			return false
		}
		if firstWrite[addr] {
			return true
		}
		firstWrite[addr] = true
		if p, ok := fo.FirstPos(addr-fo.Width, addr+fn.Width); ok && p > q {
			bad = &viol{addr: addr, rd: p, wr: q}
			return false
		}
		return true
	})
	switch {
	case !complete || budget < 0:
		return DepUnknown, fmt.Sprintf("cannot order overlapping streams u%d and u%d: %s",
			old.stream, new.stream, "positional check exceeded its budget")
	case bad == nil:
		return DepOrdered, "every overlapping address is read before it is written (read-leads-write)"
	case certainlyLive(s, old.stream):
		return DepHazard, fmt.Sprintf(
			"load u%d first reads %#x at element %d, after store u%d writes it at element %d — the prefetch may return the stale pre-store value (WAR)",
			old.stream, uint64(bad.addr), bad.rd, new.stream, bad.wr)
	default:
		return DepUnknown, fmt.Sprintf(
			"store u%d overwrites %#x before load u%d would read it (element %d vs %d) if u%d is still live here (WAR)",
			new.stream, uint64(bad.addr), old.stream, bad.wr, bad.rd, old.stream)
	}
}

// checkScalarStore classifies a scalar/vector store instruction against
// every live stream. Scalar loads need no check (the LSQ holds them against
// conflicting store-stream chunks); scalar stores can corrupt a load
// stream's already-prefetched data or race a store stream's commits.
func (c *checker) checkScalarStore(pc int, s *state, in *isa.Inst, fp func(int) *descriptor.Footprint) {
	lo, hi, resolved := scalarStoreRange(s, in)
	proved := false
	if !resolved && c.opts.Prove {
		// The constant lattice could not pin the address; ask the abstract
		// interpreter for a value-range bound. An interval range can prove
		// disjointness but never an overlap (the true address is one point
		// somewhere in it), so `exact` stays false on this path.
		lo, hi, proved = c.intervalStoreRange(pc, in)
	}
	exact := resolved && (in.Op == isa.OpStore || in.Op == isa.OpFStore)
	var unprovable []string
	for v := 0; v < isa.NumVecRegs; v++ {
		if s.stream[v]&(stActive|stSuspended) == 0 {
			continue
		}
		si := s.site[v]
		if si < 0 || int(si) >= len(c.sites) {
			if si == siteConflict {
				unprovable = append(unprovable, fmt.Sprintf("u%d", v))
			}
			continue
		}
		site := c.sites[si]
		isLoad := site.desc == nil || site.desc.Kind == descriptor.Load
		kind := "WAR(scalar)"
		if !isLoad {
			kind = "WAW(scalar)"
		}
		p := DepPair{First: v, Second: -1, FirstPC: site.endPC, SecondPC: pc, Kind: kind}
		rel := descriptor.OverlapUnknown
		if resolved || proved {
			rel = fp(int(si)).RelateRange(lo, hi)
		}
		switch {
		case rel != descriptor.OverlapDisjoint && !c.streamUsedFrom(pc, v):
			p.Verdict = DepOrdered
			p.Detail = fmt.Sprintf("u%d has no use after this store; in-order commit retires its accesses first", v)
			c.deps = append(c.deps, p)
			continue
		case rel == descriptor.OverlapDisjoint:
			p.Verdict = DepDisjoint
			if proved {
				p.Detail = fmt.Sprintf("store range [%#x,%#x) proven outside the stream footprint by value-range analysis",
					uint64(lo), uint64(hi))
			} else {
				p.Detail = "store range proven outside the stream footprint"
			}
			c.deps = append(c.deps, p)
			continue
		case rel == descriptor.OverlapYes && exact && certainlyLive(s, v):
			p.Verdict = DepHazard
			if isLoad {
				p.Detail = fmt.Sprintf("store to [%#x,%#x) lands inside live load stream u%d's footprint — the stream may already have prefetched the stale value",
					uint64(lo), uint64(hi), v)
			} else {
				p.Detail = fmt.Sprintf("store to [%#x,%#x) races live store stream u%d's commits to the same addresses",
					uint64(lo), uint64(hi), v)
			}
			c.depRecord(pc, p)
			continue
		default:
			p.Verdict = DepUnknown
			p.Detail = fmt.Sprintf("cannot prove the store disjoint from stream u%d", v)
			c.deps = append(c.deps, p)
			unprovable = append(unprovable, fmt.Sprintf("u%d", v))
		}
	}
	if len(unprovable) > 0 {
		sort.Strings(unprovable)
		var what string
		switch {
		case resolved:
			what = "stream footprint is imprecise"
		case proved:
			what = fmt.Sprintf("store address range [%#x,%#x) still overlaps", uint64(lo), uint64(hi))
		default:
			what = fmt.Sprintf("store address is statically unknown (%s)",
				c.intProducerList(in.Src1))
		}
		c.warnf(pc, "scalar store while streams %s may be live: %s, so disjointness is unprovable",
			strings.Join(unprovable, ", "), what)
	}
}

// streamUsedFrom reports whether any reachable path from pc's successors
// uses stream u's current configuration — a core read or write of the vector
// register, an ss.force, or an indirect-origin consumer — before it is
// clobbered by a reconfiguration or ss.stop. When it returns false, every
// observable effect of u precedes pc in commit order (see the retired-access
// rule in the package comment).
func (c *checker) streamUsedFrom(pc, u int) bool {
	seen := make([]bool, len(c.insts))
	stack := append([]int(nil), c.succs[pc]...)
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[p] {
			continue
		}
		seen[p] = true
		in := &c.insts[p]
		if d := in.DataDst(); d.Class == isa.ClassVec && int(d.N) == u {
			return true
		}
		var srcs [4]isa.Reg
		for _, r := range in.DataSrcs(srcs[:0]) {
			if r.Class == isa.ClassVec && int(r.N) == u {
				return true
			}
		}
		if in.Op == isa.OpSForce && int(in.Dst.N) == u {
			return true
		}
		for _, endPC := range c.originUse[u] {
			if p == endPC {
				return true
			}
		}
		if in.Op == isa.OpSCfg && in.Cfg != nil && in.Cfg.Stream == u && in.Cfg.Start {
			continue // reconfigured: later uses consume the new instance
		}
		if in.Op == isa.OpSStop && int(in.Dst.N) == u {
			continue
		}
		stack = append(stack, c.succs[p]...)
	}
	return false
}

// scalarStoreRange resolves the byte range a store instruction writes, using
// the constant-propagation lattice. Vector stores use the architected
// maximum extent (their effective length is runtime state), so they can be
// proven disjoint but never exactly overlapping.
func scalarStoreRange(s *state, in *isa.Inst) (lo, hi int64, ok bool) {
	base, known := constInt(s, in.Src1)
	if !known {
		return 0, 0, false
	}
	switch in.Op {
	case isa.OpStore, isa.OpFStore:
		lo = int64(base) + in.Imm
		return lo, lo + int64(in.W), true
	case isa.OpVStore:
		idx, known := constInt(s, in.Src2)
		if !known {
			return 0, 0, false
		}
		lo = int64(base) + (int64(idx)+in.Imm)*int64(in.W)
		return lo, lo + int64(arch.MaxVecBytes), true
	}
	return 0, 0, false // vstoreg and friends: per-lane addresses are data
}

// depImprecision names the source of an unknown stream/stream verdict: the
// imprecise footprint(s), or budget exhaustion when both are exact.
func depImprecision(a, b *descriptor.Footprint) string {
	var rs []string
	for _, f := range []*descriptor.Footprint{a, b} {
		if f.Top || (!f.Empty() && f.Spans == nil) {
			r := f.Reason
			if r == "" {
				r = "footprint is imprecise"
			}
			rs = append(rs, r)
		}
	}
	if len(rs) == 0 {
		return "overlap query exceeded its budget"
	}
	return strings.Join(rs, "; ")
}

// commonAddr finds one address two exact footprints both touch, for
// diagnostics. ok is false only if enumeration is cut short.
func commonAddr(a, b *descriptor.Footprint) (int64, bool) {
	var hit int64
	found := false
	budget := int64(depPositionBudget)
	b.EachElem(func(_, addr int64) bool {
		if budget--; budget < 0 {
			return false
		}
		if _, ok := a.FirstPos(addr-a.Width, addr+b.Width); ok {
			hit, found = addr, true
			return false
		}
		return true
	})
	return hit, found
}
