package lint

// SafetyCertificate summarizes what the static analyses proved about a
// program's memory behaviour, in a form the runtime can act on. It is
// derived purely from the verifier's outputs (Certify), so any consumer
// holding the same diagnostics and dependence pairs reconstructs the same
// certificate.
//
// Two grades matter:
//
//   - Safe: the program has no Error diagnostics and no dependence pair was
//     classified unknown or hazard — every simultaneously-live access pair
//     is proved disjoint or covered by an engine ordering guarantee.
//   - CollisionFree: strictly stronger — every pair is proved *disjoint*.
//     Ordered pairs (lockstep WAR renaming, deferred RAW activation) are
//     safe but do touch common bytes, so the runtime sanitizer would still
//     record collision events for them. Only CollisionFree programs may
//     elide shadow tracking and still be differentially indistinguishable
//     from a sanitized run.
type SafetyCertificate struct {
	// Safe: no errors, every pair proved disjoint or ordered.
	Safe bool `json:"safe"`
	// CollisionFree: every pair proved disjoint; the sanitizer would
	// observe zero collisions, so shadow tracking may be elided.
	CollisionFree bool `json:"collisionFree"`

	// Pair counts by verdict (Pairs is the total).
	Pairs    int `json:"pairs"`
	Disjoint int `json:"disjoint"`
	Ordered  int `json:"ordered"`
	Unknown  int `json:"unknown"`
	Hazard   int `json:"hazard"`
}

// Certify derives the safety certificate from a verification run's outputs
// (the diagnostics and dependence pairs returned by Analyze).
func Certify(diags []Diagnostic, deps []DepPair) SafetyCertificate {
	cert := SafetyCertificate{Pairs: len(deps)}
	for _, p := range deps {
		switch p.Verdict {
		case DepDisjoint:
			cert.Disjoint++
		case DepOrdered:
			cert.Ordered++
		case DepHazard:
			cert.Hazard++
		default:
			cert.Unknown++
		}
	}
	cert.Safe = !HasErrors(diags) && cert.Unknown == 0 && cert.Hazard == 0
	cert.CollisionFree = cert.Safe && cert.Ordered == 0
	return cert
}
