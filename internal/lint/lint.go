// Package lint statically verifies UVE, SVE and NEON programs before they
// reach the simulator. The paper's central claim (§II–§III) is that a
// stream's whole memory behaviour is described once, at the loop preamble,
// by its hierarchical descriptor — which makes stream lifecycle bugs,
// descriptor/buffer mismatches and predication errors statically decidable.
// The verifier walks the control-flow graph recovered from branch targets
// and runs four check families:
//
//   - stream lifecycle: configuration µOp sequencing, use-before-configure,
//     dead configurations, the suspend/resume/force state machine of §III-B,
//     and indirect-origin ordering;
//   - descriptor footprint: the exact address sequence of every non-indirect
//     descriptor (descriptor.Iterator) checked against the declared buffer
//     extents;
//   - register dataflow: must-defined scalar/vector/predicate def-before-use
//     along all CFG paths and element-width agreement between predicate
//     producers (whilelt/ptrue) and their consumers;
//   - CFG sanity: unreachable instructions, loops with no exit, and control
//     falling off the end of the program.
//
// Stream states are tracked as may-sets: streams that end in lockstep with a
// branch-tested sibling (the Floyd-Warshall and irsmk idiom) stay "active"
// rather than producing false positives, and reconfiguring a live stream is
// legal — the engine renames stream slots (§III-A2) — as long as the
// previous configuration was consumed.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/program"
)

// Severity grades a diagnostic.
type Severity int

const (
	// Warn marks findings that do not stop a program from running.
	Warn Severity = iota
	// Error marks findings that make the program wrong or non-terminating.
	Error
)

func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// Diagnostic is one verifier finding, anchored to an instruction.
type Diagnostic struct {
	PC       int // instruction index; -1 for whole-program findings
	Op       string
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	if d.PC < 0 {
		return fmt.Sprintf("%s: %s", d.Severity, d.Message)
	}
	return fmt.Sprintf("%d: %s: %s [%s]", d.PC, d.Severity, d.Message, d.Op)
}

// Extent declares one legal buffer: [Base, Base+Size) in byte addresses.
type Extent struct {
	Base uint64
	Size int64
}

// Options parameterizes a verification run.
type Options struct {
	// EntryInt and EntryFP list scalar registers holding kernel arguments at
	// entry (x0 is always defined; p0 is always the all-true predicate).
	EntryInt []int
	EntryFP  []int
	// EntryIntVals optionally supplies the known entry values of EntryInt
	// registers; they seed the constant propagation that resolves scalar
	// memory addresses for the dependence analyzer.
	EntryIntVals map[int]uint64
	// Extents are the program's declared buffers. Empty disables the
	// descriptor footprint check.
	Extents []Extent
	// MaxFootprintElems caps per-stream address enumeration (0 = default).
	// Streams longer than the cap are checked up to it.
	MaxFootprintElems int64
	// Prove enables the abstract-interpretation prover (internal/absint):
	// scalar-store addresses the constant lattice cannot resolve are bounded
	// by value-range analysis, upgrading unknown dependence verdicts to
	// proved classes when the bounded range clears every live footprint.
	Prove bool
	// VecBytes is the physical vector width the program will run with, when
	// known. It tightens the prover's lane-dependent bounds; zero assumes
	// the architected maximum (sound: effective widths only shrink).
	VecBytes int
}

// DefaultMaxFootprintElems bounds footprint enumeration so that verifying a
// paper-scale kernel stays a negligible fraction of simulating it.
const DefaultMaxFootprintElems = 1 << 21

// Check verifies p and returns its findings sorted by instruction index.
// opts may be nil.
func Check(p *program.Program, opts *Options) []Diagnostic {
	diags, _ := Analyze(p, opts)
	return diags
}

// Analyze verifies p like Check and additionally returns the inter-stream
// dependence pairs the analyzer classified (every program point where two
// streams — or a scalar store and a stream — are simultaneously live).
// opts may be nil.
func Analyze(p *program.Program, opts *Options) ([]Diagnostic, []DepPair) {
	if opts == nil {
		opts = &Options{}
	}
	c := newChecker(p, opts)
	c.run()
	sort.SliceStable(c.diags, func(i, j int) bool { return c.diags[i].PC < c.diags[j].PC })
	return c.diags, c.deps
}

// HasErrors reports whether any diagnostic has Error severity.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// ToError folds Error-severity diagnostics into a single error, or nil when
// the program is clean (warnings do not fail a build).
func ToError(diags []Diagnostic) error {
	var msgs []string
	for _, d := range diags {
		if d.Severity == Error {
			msgs = append(msgs, d.String())
		}
	}
	if len(msgs) == 0 {
		return nil
	}
	return fmt.Errorf("lint: %s", strings.Join(msgs, "; "))
}
