package lint

import (
	"fmt"
	"strings"

	"repro/internal/descriptor"
	"repro/internal/isa"
)

// Stream status bits. The per-register status is a may-set: merges at CFG
// joins union the statuses, and checks only fire when every status in the
// set is bad (so streams ending in lockstep with a branch-tested sibling —
// the Floyd-Warshall idiom — stay "active" instead of raising noise).
const (
	stUnconf uint8 = 1 << iota
	stConfiguring
	stActive
	stSuspended
	stEnded
	stStopped
)

// Reaching-descriptor kind bits per stream register.
const (
	kindLoad uint8 = 1 << iota
	kindStore
)

// widthConflict marks a predicate register whose reaching producers disagree
// on element width.
const widthConflict uint8 = 0xff

// Reaching-configuration-site markers (state.site values beside a site
// index): siteNone means no configuration reaches, siteConflict means
// different sites reach along different paths.
const (
	siteNone     int16 = -1
	siteConflict int16 = -2
)

// state is the abstract machine state at an instruction boundary: must-
// defined register bitmasks (merge: intersection), predicate element widths,
// per-vector-register stream status may-sets (merge: union), the reaching
// configuration site per stream register, and integer constant propagation
// (merge: values that disagree become non-constant). The struct is
// comparable, which the fixpoint loop uses for change detection.
type state struct {
	intDef  uint32
	fpDef   uint32
	vecDef  uint32
	predDef uint16
	predW   [isa.NumPredRegs]uint8
	stream  [isa.NumVecRegs]uint8
	kind    [isa.NumVecRegs]uint8
	site    [isa.NumVecRegs]int16
	cdef    uint32 // cint[i] holds a known constant
	cint    [isa.NumIntRegs]uint64
}

func (c *checker) entryState() state {
	var s state
	s.intDef = 1 // x0 reads as zero
	s.cdef = 1
	for _, r := range c.opts.EntryInt {
		if r >= 0 && r < isa.NumIntRegs {
			s.intDef |= 1 << uint(r)
		}
	}
	for r, v := range c.opts.EntryIntVals {
		if r > 0 && r < isa.NumIntRegs && s.intDef&(1<<uint(r)) != 0 {
			s.cdef |= 1 << uint(r)
			s.cint[r] = v
		}
	}
	for _, r := range c.opts.EntryFP {
		if r >= 0 && r < isa.NumFPRegs {
			s.fpDef |= 1 << uint(r)
		}
	}
	s.predDef = 1 // p0 is hardwired all-true
	for u := range s.stream {
		s.stream[u] = stUnconf
		s.site[u] = siteNone
	}
	return s
}

// merge folds b into a (meet at a CFG join) and reports whether a changed.
func merge(a *state, b *state) bool {
	old := *a
	a.intDef &= b.intDef
	a.fpDef &= b.fpDef
	a.vecDef &= b.vecDef
	a.predDef &= b.predDef
	for i := range a.predW {
		if a.predW[i] == 0 {
			a.predW[i] = b.predW[i]
		} else if b.predW[i] != 0 && b.predW[i] != a.predW[i] {
			a.predW[i] = widthConflict
		}
	}
	for u := range a.stream {
		a.stream[u] |= b.stream[u]
		a.kind[u] |= b.kind[u]
		switch {
		case a.site[u] == b.site[u]:
		case a.site[u] == siteNone:
			a.site[u] = b.site[u]
		case b.site[u] == siteNone:
		default:
			a.site[u] = siteConflict
		}
	}
	keep := a.cdef & b.cdef
	for i := 0; i < isa.NumIntRegs; i++ {
		if keep&(1<<uint(i)) != 0 && a.cint[i] != b.cint[i] {
			keep &^= 1 << uint(i)
		}
	}
	a.cdef = keep
	for i := range a.cint {
		if keep&(1<<uint(i)) == 0 {
			a.cint[i] = 0 // canonicalize so state comparison is meaningful
		}
	}
	return *a != old
}

// runDataflow computes the per-instruction in-states by forward fixpoint
// iteration, then replays every reachable instruction once against its final
// in-state to emit diagnostics.
func (c *checker) runDataflow() {
	n := len(c.insts)
	c.in = make([]state, n)
	visited := make([]bool, n)
	c.in[0] = c.entryState()
	visited[0] = true

	work := []int{0}
	inWork := make([]bool, n)
	inWork[0] = true
	for len(work) > 0 {
		pc := work[0]
		work = work[1:]
		inWork[pc] = false
		outs := c.transfer(pc, c.in[pc], nil)
		for i, s := range c.succs[pc] {
			changed := false
			if !visited[s] {
				c.in[s] = outs[i]
				visited[s] = true
				changed = true
			} else {
				changed = merge(&c.in[s], &outs[i])
			}
			if changed && !inWork[s] {
				work = append(work, s)
				inWork[s] = true
			}
		}
	}
	for pc := 0; pc < n; pc++ {
		if c.reach[pc] {
			c.transfer(pc, c.in[pc], c)
		}
	}
}

// transfer applies instruction pc to s, returning one out-state per CFG
// successor (in c.succs order: branch target first, then fallthrough). When
// rep is non-nil the checks run and report through it; the fixpoint pass
// passes nil so diagnostics are emitted exactly once, against final states.
func (c *checker) transfer(pc int, s state, rep *checker) []state {
	in := &c.insts[pc]
	op := in.Op

	// --- reads ---
	var srcs [4]isa.Reg
	for _, r := range in.DataSrcs(srcs[:0]) {
		if rep != nil {
			rep.checkRead(pc, &s, in, r)
		}
	}

	// --- stream lifecycle ---
	if u, ok := in.StreamOperand(); ok && u >= 0 && u < isa.NumVecRegs {
		st := s.stream[u]
		switch op {
		case isa.OpSCfg:
			part := in.Cfg
			if part != nil && part.Start {
				if rep != nil && st&stSuspended != 0 {
					rep.errorf(pc, "u%d reconfigured while its stream may be suspended (resume or stop it first)", u)
				}
				s.stream[u] = stConfiguring
			}
			if part != nil && part.End {
				s.stream[u] = stActive
				if site := c.siteAt[pc]; site != nil {
					s.site[u] = int16(site.idx)
				}
				if site := c.siteAt[pc]; site != nil && site.desc != nil {
					if site.desc.Kind == descriptor.Load {
						s.kind[u] = kindLoad
					} else {
						s.kind[u] = kindStore
					}
					if rep != nil {
						for _, o := range site.desc.Origins() {
							if o < 0 || o >= isa.NumVecRegs {
								continue // validated by RebuildDescriptor
							}
							if s.stream[o]&stActive == 0 {
								rep.errorf(pc, "u%d's indirect modifier consumes origin stream u%d, which is not active here", u, o)
							}
						}
					}
				}
			}
		case isa.OpSSuspend:
			if rep != nil && st&stActive == 0 {
				rep.errorf(pc, "ss.suspend on u%d, which is not an active stream", u)
			}
			s.stream[u] = stSuspended
		case isa.OpSResume:
			if rep != nil && st&stSuspended == 0 {
				rep.errorf(pc, "ss.resume on u%d, which is not suspended", u)
			}
			s.stream[u] = stActive
		case isa.OpSForce:
			if rep != nil && st&stSuspended == 0 {
				rep.errorf(pc, "ss.force on u%d, which is not suspended", u)
			}
		case isa.OpSStop:
			if rep != nil && st&(stActive|stSuspended|stEnded) == 0 {
				rep.errorf(pc, "ss.stop on u%d, which has no configured stream", u)
			}
			s.stream[u] = stStopped
		default: // stream-conditional branches
			if rep != nil && st&(stActive|stSuspended|stEnded) == 0 {
				rep.errorf(pc, "stream branch on u%d, which has no configured stream", u)
			}
		}
	}

	// --- predicate width consistency ---
	if rep != nil && in.Pred.Class == isa.ClassPred && in.Pred.N != 0 && in.W != 0 {
		p := int(in.Pred.N)
		if p < isa.NumPredRegs && s.predDef&(1<<uint(p)) != 0 {
			switch w := s.predW[p]; {
			case w == widthConflict:
				rep.errorf(pc, "predicate p%d reaches here with conflicting element widths (%s)",
					p, rep.predProducerList(p))
			case w != 0 && w != uint8(in.W):
				rep.errorf(pc, "predicate p%d was produced for %d-byte lanes but %s expects %d-byte lanes",
					p, w, op.Name(), int(in.W))
			}
		}
	}

	// --- defs ---
	if d := in.DataDst(); d.Class != isa.ClassNone && d.Valid() {
		switch d.Class {
		case isa.ClassInt:
			if d.N != 0 {
				s.intDef |= 1 << uint(d.N)
				if v, known := evalConstInt(in, &s); known {
					s.cdef |= 1 << uint(d.N)
					s.cint[d.N] = v
				} else {
					s.cdef &^= 1 << uint(d.N)
					s.cint[d.N] = 0
				}
			}
		case isa.ClassFP:
			s.fpDef |= 1 << uint(d.N)
		case isa.ClassPred:
			s.predDef |= 1 << uint(d.N)
			switch op {
			case isa.OpWhilelt, isa.OpPTrue:
				s.predW[d.N] = uint8(in.W)
			case isa.OpPNot:
				if in.Src1.Class == isa.ClassPred && int(in.Src1.N) < isa.NumPredRegs {
					s.predW[d.N] = s.predW[in.Src1.N]
				}
			default:
				s.predW[d.N] = uint8(in.W)
			}
		case isa.ClassVec:
			u := int(d.N)
			st := s.stream[u]
			if st&(stActive|stSuspended) != 0 && st&(stUnconf|stConfiguring|stStopped) == 0 {
				// The register is bound to a live stream on every path: the
				// write emits an element to it rather than defining the
				// register.
				if rep != nil && s.kind[u] == kindLoad {
					rep.errorf(pc, "%s writes u%d, which is bound to a load stream", op.Name(), u)
				}
			} else {
				s.vecDef |= 1 << uint(u)
			}
		}
	}

	// --- per-edge refinement for whole-stream end branches ---
	outs := make([]state, len(c.succs[pc]))
	for i := range outs {
		outs[i] = s
	}
	if (op == isa.OpSBNotEnd || op == isa.OpSBEnd) && len(outs) == 2 {
		u := int(in.Src1.N)
		if u >= 0 && u < isa.NumVecRegs && s.stream[u]&(stActive|stEnded) != 0 {
			st := s.stream[u]
			notEnded := (st &^ stEnded) | stActive
			ended := (st &^ stActive) | stEnded
			if op == isa.OpSBNotEnd {
				outs[0].stream[u] = notEnded // taken: stream continues
				outs[1].stream[u] = ended    // fallthrough: stream is done
			} else {
				outs[0].stream[u] = ended
				outs[1].stream[u] = notEnded
			}
		}
	}
	return outs
}

// evalConstInt evaluates an integer-destination instruction over the
// constant lattice: known when every needed operand is a known constant.
// Memory loads and vector-length queries are never constant.
func evalConstInt(in *isa.Inst, s *state) (uint64, bool) {
	get := func(r isa.Reg) (uint64, bool) {
		if r.Class != isa.ClassInt || int(r.N) >= isa.NumIntRegs {
			return 0, false
		}
		if r.N == 0 {
			return 0, true
		}
		if s.cdef&(1<<uint(r.N)) != 0 {
			return s.cint[r.N], true
		}
		return 0, false
	}
	switch in.Op {
	case isa.OpLi:
		return uint64(in.Imm), true
	case isa.OpMv, isa.OpAddI, isa.OpSllI, isa.OpSrlI, isa.OpAndI, isa.OpSltI:
		a, ok := get(in.Src1)
		if !ok {
			return 0, false
		}
		return isa.EvalInt(in.Op, a, 0, in.Imm), true
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpRem,
		isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpSlt:
		a, okA := get(in.Src1)
		b, okB := get(in.Src2)
		if !okA || !okB {
			return 0, false
		}
		return isa.EvalInt(in.Op, a, b, in.Imm), true
	}
	return 0, false
}

// constInt resolves a register's known constant value at a program point.
func constInt(s *state, r isa.Reg) (uint64, bool) {
	if r.Class != isa.ClassInt || int(r.N) >= isa.NumIntRegs {
		return 0, false
	}
	if r.N == 0 {
		return 0, true
	}
	if s.cdef&(1<<uint(r.N)) != 0 {
		return s.cint[r.N], true
	}
	return 0, false
}

// predProducerList names the instructions that define a predicate register
// with an element width, so a width-conflict diagnostic can say which
// producers disagree. pnot copies are reported as copies of their source.
func (c *checker) predProducerList(p int) string {
	type prod struct {
		pc int
		w  uint8
	}
	var prods []prod
	for pc := range c.insts {
		in := &c.insts[pc]
		d := in.DataDst()
		if d.Class != isa.ClassPred || int(d.N) != p || in.Op == isa.OpPNot {
			continue
		}
		prods = append(prods, prod{pc, uint8(in.W)})
	}
	if len(prods) == 0 {
		return "no width-defining producer found"
	}
	parts := make([]string, len(prods))
	for i, pr := range prods {
		parts[i] = fmt.Sprintf("%d-byte lanes at %d", pr.w, pr.pc)
	}
	return "produced for " + strings.Join(parts, ", ")
}

// intProducerList names the instructions that define an integer register, so
// an unresolved-address diagnostic can point at the producer(s) of a scalar
// store's base rather than only at the store itself.
func (c *checker) intProducerList(r isa.Reg) string {
	if r.Class != isa.ClassInt || int(r.N) >= isa.NumIntRegs {
		return "no address register"
	}
	var pcs []string
	for pc := range c.insts {
		in := &c.insts[pc]
		if d := in.DataDst(); d.Class == isa.ClassInt && d.N == r.N {
			pcs = append(pcs, fmt.Sprintf("%d", pc))
		}
	}
	if len(pcs) == 0 {
		return fmt.Sprintf("base x%d holds an entry value", r.N)
	}
	return fmt.Sprintf("base x%d produced at %s", r.N, strings.Join(pcs, ", "))
}

// checkRead validates one data-source register against the in-state.
func (c *checker) checkRead(pc int, s *state, in *isa.Inst, r isa.Reg) {
	if !r.Valid() {
		return // reported by checkRegisters
	}
	switch r.Class {
	case isa.ClassInt:
		if r.N != 0 && s.intDef&(1<<uint(r.N)) == 0 {
			c.errorf(pc, "x%d may be used before it is defined", r.N)
		}
	case isa.ClassFP:
		if s.fpDef&(1<<uint(r.N)) == 0 {
			c.errorf(pc, "f%d may be used before it is defined", r.N)
		}
	case isa.ClassPred:
		if r.N != 0 && s.predDef&(1<<uint(r.N)) == 0 {
			c.errorf(pc, "predicate p%d may be used before it is set", r.N)
		}
	case isa.ClassVec:
		u := int(r.N)
		if s.vecDef&(1<<uint(u)) != 0 {
			return
		}
		st := s.stream[u]
		switch {
		case st&stActive != 0:
			if s.kind[u] == kindStore {
				c.errorf(pc, "u%d reads a store (output) stream", u)
			}
		case c.configured&(1<<uint(u)) == 0:
			c.errorf(pc, "u%d may be used before it is defined", u)
		case st == stEnded:
			c.errorf(pc, "u%d read after its stream has ended", u)
		case st&stSuspended != 0:
			c.errorf(pc, "u%d read while its stream may be suspended", u)
		default:
			c.errorf(pc, "u%d may be read before its stream is configured", u)
		}
	}
}
