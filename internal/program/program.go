// Package program represents decoded instruction sequences and provides an
// assembler-style builder with labels, matching how the paper's benchmark
// kernels were hand-written in extended-GNU-assembler syntax (§V).
package program

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/descriptor"
	"repro/internal/isa"
)

// Program is a fully resolved instruction sequence. Instruction indices act
// as program counters; branch targets are indices.
type Program struct {
	Name   string
	Insts  []isa.Inst
	Labels map[string]int
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Insts) }

// At returns the instruction at pc. Out-of-range PCs (wrong-path fetch past
// the end) return a halt so speculation dies out naturally. This masking is
// a fetch-path convenience only: programs arriving from outside the Builder
// (the wire decoder) have their branch-target ranges validated up front, so
// a corrupt target is a positioned error there, never a silent halt here.
func (p *Program) At(pc int) isa.Inst {
	if pc < 0 || pc >= len(p.Insts) {
		return isa.Halt()
	}
	return p.Insts[pc]
}

func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (%d insts)\n", p.Name, len(p.Insts))
	// Build the pc→labels back-map from the sorted label names, so two
	// labels on one instruction always print in the same order (map
	// iteration order must never reach the rendered text).
	names := make([]string, 0, len(p.Labels))
	for l := range p.Labels {
		names = append(names, l)
	}
	sort.Strings(names)
	back := make(map[int][]string)
	for _, l := range names {
		back[p.Labels[l]] = append(back[p.Labels[l]], l)
	}
	for i, in := range p.Insts {
		for _, l := range back[i] {
			fmt.Fprintf(&b, "%s:\n", l)
		}
		fmt.Fprintf(&b, "  %3d  %s\n", i, in.String())
	}
	return b.String()
}

// Builder assembles a Program.
type Builder struct {
	name   string
	insts  []isa.Inst
	labels map[string]int
	errs   []error
}

// NewBuilder starts a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// Label binds a name to the next emitted instruction's index.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("duplicate label %q", name))
		return b
	}
	b.labels[name] = len(b.insts)
	return b
}

// I emits instructions.
func (b *Builder) I(insts ...isa.Inst) *Builder {
	b.insts = append(b.insts, insts...)
	return b
}

// ConfigStream emits the configuration µOp sequence for a stream: one
// instruction per dimension and modifier, as UVE assembly does.
func (b *Builder) ConfigStream(u int, d *descriptor.Descriptor) *Builder {
	return b.I(isa.SCfgParts(u, d)...)
}

// Errorf records a build error without aborting assembly; Build surfaces
// every accumulated error. Kernel emitters use it for size preconditions so
// that an invalid instance fails with a diagnostic instead of a panic.
func (b *Builder) Errorf(format string, args ...any) *Builder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// Build resolves labels and returns the program. All accumulated errors —
// emission-time errors and unresolved labels alike — are returned joined,
// prefixed with the builder's name.
func (b *Builder) Build() (*Program, error) {
	errs := append([]error(nil), b.errs...)
	insts := append([]isa.Inst(nil), b.insts...)
	for i := range insts {
		in := &insts[i]
		if !in.Op.IsBranch() {
			continue
		}
		if in.Label == "" {
			errs = append(errs, fmt.Errorf("inst %d (%s): branch without label", i, in.Op.Name()))
			continue
		}
		t, ok := b.labels[in.Label]
		if !ok {
			errs = append(errs, fmt.Errorf("inst %d (%s): undefined label %q", i, in.Op.Name(), in.Label))
			continue
		}
		in.Target = t
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("program %s: %w", b.name, errors.Join(errs...))
	}
	return &Program{Name: b.name, Insts: insts, Labels: b.labels}, nil
}

// BuildVerified is Build followed by a verification pass over the resolved
// program. The pass is supplied as a closure so that callers can plug in a
// static verifier (internal/lint) without this package depending on it; a
// non-nil error from verify fails the build the same way a label error does.
func (b *Builder) BuildVerified(verify func(*Program) error) (*Program, error) {
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	if verify != nil {
		if err := verify(p); err != nil {
			return nil, fmt.Errorf("program %s: %w", b.name, err)
		}
	}
	return p, nil
}

// MustBuild is Build that panics on error, for statically known kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
