package program

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/isa"
)

func TestBuilderResolvesLabels(t *testing.T) {
	p := NewBuilder("t").
		I(isa.Li(isa.X(1), 0)).
		Label("loop").
		I(isa.AddI(isa.X(1), isa.X(1), 1)).
		I(isa.Blt(isa.X(1), isa.X(2), "loop")).
		I(isa.Halt()).
		MustBuild()
	if p.Insts[2].Target != 1 {
		t.Fatalf("branch target = %d, want 1", p.Insts[2].Target)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	p := NewBuilder("t").
		I(isa.Beq(isa.X(1), isa.X(0), "done")).
		I(isa.Nop()).
		Label("done").
		I(isa.Halt()).
		MustBuild()
	if p.Insts[0].Target != 2 {
		t.Fatalf("forward target = %d, want 2", p.Insts[0].Target)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	_, err := NewBuilder("t").I(isa.J("nowhere")).Build()
	if err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Fatalf("err = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	_, err := NewBuilder("t").Label("a").I(isa.Nop()).Label("a").Build()
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v, want duplicate label", err)
	}
}

func TestAtOutOfRangeHalts(t *testing.T) {
	p := NewBuilder("t").I(isa.Nop()).MustBuild()
	if p.At(5).Op != isa.OpHalt || p.At(-1).Op != isa.OpHalt {
		t.Fatal("out-of-range fetch must return halt")
	}
	if p.At(0).Op != isa.OpNop {
		t.Fatal("in-range fetch wrong")
	}
}

func TestConfigStreamEmitsPartSequence(t *testing.T) {
	d := descriptor.New(0x100, arch.W4, descriptor.Load).
		Dim(0, 8, 1).Dim(0, 4, 8).MustBuild()
	p := NewBuilder("t").ConfigStream(3, d).I(isa.Halt()).MustBuild()
	if p.Len() != 3 {
		t.Fatalf("program length %d, want 3 (2 config + halt)", p.Len())
	}
	if p.Insts[0].Op != isa.OpSCfg || !p.Insts[0].Cfg.Start {
		t.Fatal("first µOp must be the start part")
	}
	if !p.Insts[1].Cfg.End {
		t.Fatal("last config µOp must be the end part")
	}
}

func TestProgramString(t *testing.T) {
	p := NewBuilder("demo").
		Label("top").
		I(isa.AddI(isa.X(1), isa.X(1), 1)).
		I(isa.J("top")).
		MustBuild()
	s := p.String()
	for _, want := range []string{"demo", "top:", "addi", "j"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q in %q", want, s)
		}
	}
}

// Regression test for the label-rendering determinism bug: String() used to
// build its pc→labels back-map by ranging over the Labels map, so two labels
// bound to the same instruction printed in whatever order map iteration
// happened to produce. Every rendering must be byte-identical, with co-bound
// labels in sorted order.
func TestProgramStringDeterministicLabels(t *testing.T) {
	p := NewBuilder("two-labels").
		Label("outer").
		Label("inner").
		I(isa.Nop()).
		I(isa.J("inner")).
		MustBuild()
	first := p.String()
	if i, o := strings.Index(first, "inner:"), strings.Index(first, "outer:"); i < 0 || o < 0 || i > o {
		t.Fatalf("co-bound labels not rendered in sorted order:\n%s", first)
	}
	for i := 0; i < 200; i++ {
		if s := p.String(); s != first {
			t.Fatalf("rendering %d differs:\n%s\nvs first:\n%s", i, s, first)
		}
	}
}

func TestBuildReturnsAllErrors(t *testing.T) {
	_, err := NewBuilder("multi").
		Errorf("size precondition: %d", 13).
		I(isa.J("nowhere")).
		I(isa.Beq(isa.X(1), isa.X(0), "")).
		Build()
	if err == nil {
		t.Fatal("want error")
	}
	for _, want := range []string{"program multi", "size precondition: 13", "nowhere", "branch without label"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q missing %q", err, want)
		}
	}
}

func TestBuildVerified(t *testing.T) {
	mk := func() *Builder {
		return NewBuilder("v").I(isa.Nop()).I(isa.Halt())
	}
	if _, err := mk().BuildVerified(nil); err != nil {
		t.Fatalf("nil verifier: %v", err)
	}
	var saw *Program
	p, err := mk().BuildVerified(func(p *Program) error { saw = p; return nil })
	if err != nil || saw != p {
		t.Fatalf("verifier not run on built program: %v", err)
	}
	_, err = mk().BuildVerified(func(*Program) error { return errBoom })
	if err == nil || !strings.Contains(err.Error(), "program v") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("verify failure not surfaced: %v", err)
	}
	// A build failure must short-circuit verification.
	called := false
	_, err = NewBuilder("b").I(isa.J("nowhere")).BuildVerified(func(*Program) error { called = true; return nil })
	if err == nil || called {
		t.Fatalf("verifier ran on failed build (err=%v)", err)
	}
}

var errBoom = errors.New("boom")
