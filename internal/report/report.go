// Package report defines the one versioned JSON schema every tool in the
// repo emits: uvebench -json, uvelint -json and the uveserve response
// bodies are all the same Document envelope, distinguished by Tool and by
// which section is populated. The envelope carries an explicit
// schema_version so downstream consumers can detect shape changes instead
// of inferring them; golden-file tests pin the rendering of each section.
//
// Versioning discipline: adding an optional field is allowed within a
// version (consumers must ignore unknown fields); renaming, removing or
// re-typing anything bumps SchemaVersion.
package report

import (
	"encoding/json"

	"repro/internal/bench"
	"repro/internal/cost"
	"repro/internal/lint"
	"repro/internal/sim"
)

// SchemaVersion is the current document shape. Bump on any incompatible
// change to this package's JSON structure.
const SchemaVersion = 1

// Document is the versioned envelope. Exactly one section is populated,
// matching Tool.
type Document struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"` // "uvebench", "uvelint", "uveserve"

	Bench *Bench `json:"bench,omitempty"`
	Lint  *Lint  `json:"lint,omitempty"`
	Serve *Serve `json:"serve,omitempty"`
}

// New returns an empty document for a tool, stamped with the current
// schema version.
func New(tool string) Document {
	return Document{SchemaVersion: SchemaVersion, Tool: tool}
}

// Marshal renders the document in the repo's canonical JSON style
// (two-space indent, trailing newline) — the exact bytes the store
// persists and the tools print, so byte-identity comparisons work across
// producers.
func (d *Document) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Bench is uvebench's section: the experiment reports (cycle tier) or the
// functional sweep rows, plus the runner's memoization counters.
type Bench struct {
	Scale   int               `json:"scale"`
	Workers int               `json:"workers"`
	Runner  bench.RunnerStats `json:"runner"`

	Experiments []bench.Report  `json:"experiments,omitempty"`
	Functional  []bench.FuncRow `json:"functional,omitempty"`
}

// Lint is uvelint's section: one Program per linted kernel/variant pair.
type Lint struct {
	Programs []Program `json:"programs"`
}

// Program is the lint report for one assembled program. Field names are
// stable: downstream tooling parses them.
type Program struct {
	Kernel  string `json:"kernel"`
	Name    string `json:"name"`
	Variant string `json:"variant"`
	Size    int    `json:"size"`
	Insts   int    `json:"insts"`
	Clean   bool   `json:"clean"`
	Diags   []Diag `json:"diags"`
	// Cost is the static cost model's estimate (with -cost, clean programs
	// only).
	Cost *cost.Estimate `json:"cost,omitempty"`
	// Certificate summarizes the dependence verdicts: when CollisionFree,
	// the runtime stream sanitizer may be elided (sim SanitizeAuto does).
	Certificate lint.SafetyCertificate `json:"certificate"`
}

// Diag is one lint diagnostic.
type Diag struct {
	PC       int    `json:"pc"`
	Op       string `json:"op,omitempty"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// Serve is uveserve's section: one completed job's result. Everything in
// it is a deterministic function of the job's content — no job IDs, no
// timestamps, no daemon identity — because these bytes are what the
// content-addressed store persists and what byte-identity across clients
// and restarts is asserted over.
type Serve struct {
	Result *RunResult `json:"result,omitempty"`
}

// RunResult is the schema-stable projection of a sim.Result.
type RunResult struct {
	Kernel    string  `json:"kernel"`
	Variant   string  `json:"variant"`
	Size      int     `json:"size"`
	Fidelity  string  `json:"fidelity"`
	Cycles    int64   `json:"cycles,omitempty"`
	Committed uint64  `json:"committed"`
	IPC       float64 `json:"ipc,omitempty"`
	BusUtil   float64 `json:"bus_util,omitempty"`
	// Collisions counts the stream sanitizer's observations.
	Collisions      int    `json:"collisions,omitempty"`
	SanitizerElided bool   `json:"sanitizer_elided,omitempty"`
	MemHash         uint64 `json:"mem_hash,omitempty"`
	// Stalls is the per-class cycle attribution (traced cycle runs only);
	// Drain counts post-halt store-drain steps, outside Cycles.
	Stalls map[string]int64 `json:"stalls,omitempty"`
	Drain  int64            `json:"drain,omitempty"`
}

// FromResult projects a sim.Result onto the stable schema.
func FromResult(res *sim.Result, fidelity sim.Fidelity) *RunResult {
	return &RunResult{
		Kernel:          res.Kernel,
		Variant:         res.Variant.String(),
		Size:            res.Size,
		Fidelity:        fidelity.String(),
		Cycles:          res.Cycles,
		Committed:       res.Committed,
		IPC:             res.IPC(),
		BusUtil:         res.BusUtil,
		Collisions:      len(res.Collisions),
		SanitizerElided: res.SanitizerElided,
		MemHash:         res.MemHash,
	}
}
