package report

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/kernels"
	"repro/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// checkGolden pins a document's exact rendering. Regenerate with
// `go test ./internal/report -update` after an intentional schema change —
// and bump SchemaVersion if the change is incompatible.
func checkGolden(t *testing.T, name string, doc *Document) {
	t.Helper()
	got, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("rendering drifted from %s\n-- got --\n%s\n-- want --\n%s\n(regenerate with -update after an intentional change)",
			golden, got, want)
	}
}

// TestGoldenBench pins the uvebench envelope, including the runner's
// memoization counters (the -json RunnerStats surface).
func TestGoldenBench(t *testing.T) {
	doc := New("uvebench")
	doc.Bench = &Bench{
		Scale:   256,
		Workers: 4,
		Runner:  bench.RunnerStats{Submitted: 10, Simulated: 7, MemoHits: 3},
		Experiments: []bench.Report{{
			Experiment: "fig8",
			Summary:    map[string]float64{"geomean_speedup_vs_neon": 2.5},
		}},
	}
	checkGolden(t, "bench.json", &doc)
}

// TestGoldenLint pins the uvelint envelope.
func TestGoldenLint(t *testing.T) {
	doc := New("uvelint")
	doc.Lint = &Lint{Programs: []Program{{
		Kernel: "C", Name: "saxpy", Variant: "UVE", Size: 512,
		Insts: 12, Clean: true, Diags: []Diag{},
	}}}
	checkGolden(t, "lint.json", &doc)
}

// TestGoldenServe pins the uveserve response body — the exact bytes the
// content-addressed store persists.
func TestGoldenServe(t *testing.T) {
	doc := New("uveserve")
	doc.Serve = &Serve{Result: &RunResult{
		Kernel: "C", Variant: "UVE", Size: 512, Fidelity: "cycle",
		Cycles: 1000, Committed: 4000, IPC: 4, BusUtil: 0.5,
		Stalls: map[string]int64{"commit": 800, "frontend": 200},
		Drain:  3,
	}}
	checkGolden(t, "serve.json", &doc)
}

// TestSchemaVersionPresent: every rendered document leads with an explicit
// schema_version — consumers must never have to infer the shape.
func TestSchemaVersionPresent(t *testing.T) {
	doc := New("uvebench")
	b, err := doc.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	v, ok := m["schema_version"].(float64)
	if !ok || int(v) != SchemaVersion {
		t.Fatalf("schema_version = %v, want %d", m["schema_version"], SchemaVersion)
	}
	if m["tool"] != "uvebench" {
		t.Fatalf("tool = %v, want uvebench", m["tool"])
	}
}

// TestFromResultProjection: the projection is faithful and the rendering
// deterministic across calls (map-free except Stalls, which json sorts).
func TestFromResultProjection(t *testing.T) {
	res, err := sim.Run(kernels.ByID("C"), kernels.UVE, 500, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := FromResult(res, sim.Cycle)
	if r.Kernel != "C" || r.Variant != "UVE" || r.Size != 500 {
		t.Fatalf("identity fields wrong: %+v", r)
	}
	if r.Cycles != res.Cycles || r.Committed != res.Committed {
		t.Fatalf("measurement fields wrong: %+v", r)
	}
	if r.Fidelity != "cycle" {
		t.Fatalf("fidelity = %q, want cycle", r.Fidelity)
	}
	d1 := New("uveserve")
	d1.Serve = &Serve{Result: r}
	b1, err := d1.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	d2 := New("uveserve")
	d2.Serve = &Serve{Result: FromResult(res, sim.Cycle)}
	b2, err := d2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical results rendered differently")
	}
}
