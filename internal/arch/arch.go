// Package arch holds machine-wide constants and small shared types used by
// the descriptor model, the ISA, the memory hierarchy, the streaming engine
// and the out-of-order core. Keeping them in one leaf package avoids import
// cycles between the larger subsystems.
package arch

import "fmt"

// LineSize is the cache line size in bytes, shared by every cache level and
// by the streaming engine's request coalescing logic.
const LineSize = 64

// LineMask masks a byte address down to its cache line base.
const LineMask = ^uint64(LineSize - 1)

// PageSize is the virtual memory page size in bytes.
const PageSize = 4096

// MaxVecBytes is the architected vector register width in bytes used by the
// evaluation (512-bit vectors, as in the paper's Table I). The UVE ISA itself
// is vector-length agnostic; this is the implementation's choice.
const MaxVecBytes = 64

// ElemWidth is the width in bytes of a vector element or stream element.
type ElemWidth int

// Element widths supported by UVE (byte, half-word, word, double-word).
const (
	W1 ElemWidth = 1
	W2 ElemWidth = 2
	W4 ElemWidth = 4
	W8 ElemWidth = 8
)

// Valid reports whether w is one of the architected element widths.
func (w ElemWidth) Valid() bool {
	switch w {
	case W1, W2, W4, W8:
		return true
	}
	return false
}

func (w ElemWidth) String() string {
	switch w {
	case W1:
		return "b"
	case W2:
		return "h"
	case W4:
		return "w"
	case W8:
		return "d"
	}
	return fmt.Sprintf("ElemWidth(%d)", int(w))
}

// CacheLevel selects which level of the memory hierarchy a stream is
// configured to operate over (the paper's so.cfg.memx mechanism, §III-B
// "Advanced control" and §IV-A "Cache Access").
type CacheLevel int

const (
	// LevelL1 streams from/to the L1 data cache.
	LevelL1 CacheLevel = iota
	// LevelL2 streams from/to the unified L2, bypassing (non-cacheable in)
	// the L1. This is the paper's default.
	LevelL2
	// LevelMem streams directly from/to DRAM, bypassing all caches.
	LevelMem
)

func (l CacheLevel) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "DRAM"
	}
	return fmt.Sprintf("CacheLevel(%d)", int(l))
}

// LanesFor returns the number of vector lanes a register of vecBytes bytes
// holds for elements of width w.
func LanesFor(vecBytes int, w ElemWidth) int {
	if !w.Valid() || vecBytes <= 0 {
		return 0
	}
	return vecBytes / int(w)
}

// LineOf returns the cache-line base address containing addr.
func LineOf(addr uint64) uint64 { return addr & LineMask }

// SamePage reports whether two byte addresses fall on the same virtual page.
func SamePage(a, b uint64) bool { return a/PageSize == b/PageSize }
