package arch

import "testing"

func TestElemWidths(t *testing.T) {
	for _, w := range []ElemWidth{W1, W2, W4, W8} {
		if !w.Valid() {
			t.Errorf("%v must be valid", w)
		}
	}
	for _, w := range []ElemWidth{0, 3, 5, 16} {
		if w.Valid() {
			t.Errorf("%d must be invalid", int(w))
		}
	}
	names := map[ElemWidth]string{W1: "b", W2: "h", W4: "w", W8: "d"}
	for w, n := range names {
		if w.String() != n {
			t.Errorf("%d.String() = %q, want %q", int(w), w.String(), n)
		}
	}
}

func TestLanesFor(t *testing.T) {
	if LanesFor(64, W4) != 16 || LanesFor(64, W8) != 8 || LanesFor(16, W4) != 4 {
		t.Error("lane counts wrong")
	}
	if LanesFor(64, 3) != 0 || LanesFor(0, W4) != 0 {
		t.Error("invalid inputs must give zero lanes")
	}
}

func TestLineOf(t *testing.T) {
	if LineOf(0) != 0 || LineOf(63) != 0 || LineOf(64) != 64 || LineOf(130) != 128 {
		t.Error("line rounding wrong")
	}
}

func TestSamePage(t *testing.T) {
	if !SamePage(0, PageSize-1) || SamePage(PageSize-1, PageSize) {
		t.Error("page comparison wrong")
	}
}

func TestCacheLevelStrings(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "DRAM" {
		t.Error("level names wrong")
	}
}
