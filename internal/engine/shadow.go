package engine

// Shadow exposes the stream sanitizer's byte-granular shadow tracker to
// execution tiers that do not instantiate a full Engine — the functional
// interpreter records the same touches the cycle engine's placeElem hook
// would, against the same collision rules (read/read benign, same logical
// register exempt, scalar stores checked but not recorded). Sharing the
// sanitizer implementation keeps the two tiers' collision semantics from
// drifting: a differential test compares their pair sets directly.
type Shadow struct {
	sz *sanitizer
}

// NewShadow builds an empty shadow tracker.
func NewShadow() *Shadow { return &Shadow{sz: newSanitizer()} }

// Touch records stream u (instance slot) accessing [addr, addr+w) and
// reports any collision with other live streams' recorded accesses. The
// slot distinguishes instances of the same logical register; callers must
// keep it unique per configured instance.
func (s *Shadow) Touch(u, slot int, addr uint64, w int64, writes bool) {
	s.sz.touch(u, slot, addr, w, writes)
}

// End clears a released instance's bytes: later touches of the same
// addresses no longer overlap it in time.
func (s *Shadow) End(slot, u int) { s.sz.end(slot, u) }

// NoteScalarStore checks a committed scalar store's bytes against every
// live stream's recorded accesses (the store itself is not recorded).
func (s *Shadow) NoteScalarStore(pc int, addr uint64, n int) {
	s.sz.noteScalarStore(pc, addr, n)
}

// Collisions returns the observed collisions, deduplicated per accessor
// pair and sorted for stable reporting.
func (s *Shadow) Collisions() []Collision { return s.sz.collisions() }
