package engine

import "repro/internal/mem"

// Activity returns a monotonic count of state-changing steps the engine has
// taken on its own clock (SCROB processing, generation steps, line arrivals,
// store drains, engine-side chunk commits, auto-releases). Core-driven
// mutations (consume/reserve/commit calls) are not counted here — the core
// already accounts for its own activity. The scheduler snapshots this before
// and after a cycle: an unchanged count plus a future NextEventAt proves the
// cycle left no new work behind.
func (e *Engine) Activity() uint64 { return e.activity }

// NextEventAt returns a lower bound on the cycle of the engine's next
// self-driven state change, given the state after the Tick at now:
//
//   - now+1 while any work could run next Tick: an unprocessed SCROB entry
//     (processing — or the sync-stall tally it charges while blocked —
//     mutates every cycle), a stream with real generation work, an
//     issuable MRQ entry, a queued store line, or an origin-stalled stream
//     (whose stall tally also mutates stats every cycle);
//   - the earliest future resume time otherwise: an injected generation
//     pause (genPauseUntil) or MRQ NACK backoff (retryAt);
//   - mem.NoEvent when fully quiescent (line fetches in flight wake the
//     engine via the hierarchy's events, not its own).
//
// Generation candidates in a tally-only frozen state (full FIFO, full MRQ
// — see genFrozen) do not count as busy: the scheduler compensates their
// per-cycle charges via SkipStallTallies. The one exception is frozen
// streams of BOTH kinds oversubscribing the NumModules generation slots —
// there the round-robin rotation decides which kind charges each cycle, so
// the engine reports busy rather than compensate the rotation.
//
// Ticks strictly before the returned cycle are provable no-ops, which is
// what lets the core's event-driven scheduler skip them.
func (e *Engine) NextEventAt(now int64) int64 {
	for _, ent := range e.scrob {
		if ent.valid && !ent.processed {
			return now + 1
		}
	}
	next := mem.NoEvent
	var fifoFrozen, mrqFrozen int
	for _, s := range e.entries {
		if s == nil || s.released || s.desc == nil {
			continue
		}
		if s.wantsGen(now) {
			switch e.genFrozen(s) {
			case genFrozenFIFO:
				fifoFrozen++
			case genFrozenMRQ:
				mrqFrozen++
			default:
				return now + 1
			}
		}
		// A pause-deferred stream resumes generation at genPauseUntil.
		if !s.suspended && s.genPauseUntil > now && !(s.itDone && !s.genStarted && !s.itHas) {
			if s.genPauseUntil < next {
				next = s.genPauseUntil
			}
		}
		if e.originStalled(s) {
			return now + 1
		}
	}
	if fifoFrozen+mrqFrozen > e.cfg.NumModules && fifoFrozen > 0 && mrqFrozen > 0 {
		return now + 1
	}
	for _, f := range e.mrq {
		if f.issued {
			continue
		}
		if f.retryAt > now {
			if f.retryAt < next {
				next = f.retryAt
			}
			continue
		}
		return now + 1
	}
	if len(e.storeQ) > 0 {
		return now + 1
	}
	return next
}
