package engine

import (
	"fmt"
	"sort"

	"repro/internal/descriptor"
)

// The stream sanitizer shadow-tracks every byte address a live stream
// instance touches (recorded at address generation, the engine's functional
// access point) and flags runtime collisions: two simultaneously-live
// streams of different logical registers touching the same byte with at
// least one writer, or a committed scalar store landing on a byte a live
// stream has touched. It is the dynamic cross-check for the static
// dependence analyzer in internal/lint: an observed collision between a
// pair the analyzer proved disjoint is an analyzer soundness bug.
//
// Two instances of the same logical register are exempt (stream renaming
// plus the in-order SCROB serializes them), matching the analyzer's pairing
// rule. Scalar loads are exempt for the analyzer's reason: the LSQ holds
// them while StoreMayOverlap reports a conflicting store-stream chunk.
//
// Tracking is byte-granular in a hash map, so the sanitizer is meant for
// verification runs at test sizes, not for timing experiments.

// Collision is one observed runtime overlap. StreamB is -1 when the second
// accessor is a scalar store (ScalarPC then holds its instruction index).
type Collision struct {
	StreamA  int
	StreamB  int
	ScalarPC int
	Addr     uint64
	// AWrites/BWrites record each accessor's direction (a scalar store
	// always writes).
	AWrites bool
	BWrites bool
}

func (c Collision) String() string {
	b := fmt.Sprintf("u%d", c.StreamB)
	if c.StreamB < 0 {
		b = fmt.Sprintf("store@%d", c.ScalarPC)
	}
	return fmt.Sprintf("u%d vs %s at %#x", c.StreamA, b, c.Addr)
}

// sanTouch packs, per byte address, which live streams have read it (low 32
// bits) and written it (high 32 bits), indexed by logical register.
type sanTouch uint64

func (t sanTouch) readers() uint32 { return uint32(t) }
func (t sanTouch) writers() uint32 { return uint32(t >> 32) }

type sanitizer struct {
	touched   map[uint64]sanTouch
	slotAddrs map[int][]uint64 // slot → bytes its live instance touched
	seen      map[[3]int]bool  // dedup key {a, b, scalarPC}
	colls     []Collision
}

func newSanitizer() *sanitizer {
	return &sanitizer{
		touched:   make(map[uint64]sanTouch),
		slotAddrs: make(map[int][]uint64),
		seen:      make(map[[3]int]bool),
	}
}

// EnableSanitizer switches on shadow address tracking. Call before the
// first cycle; collisions accumulate in Collisions.
func (e *Engine) EnableSanitizer() {
	if e.san == nil {
		e.san = newSanitizer()
	}
}

// SanitizerEnabled reports whether shadow tracking is on.
func (e *Engine) SanitizerEnabled() bool { return e.san != nil }

// Collisions returns the observed collisions, deduplicated per accessor
// pair and sorted for stable reporting.
func (e *Engine) Collisions() []Collision {
	if e.san == nil {
		return nil
	}
	return e.san.collisions()
}

// collisions snapshots the observations, sorted for stable reporting.
func (sz *sanitizer) collisions() []Collision {
	out := append([]Collision(nil), sz.colls...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.StreamA != b.StreamA {
			return a.StreamA < b.StreamA
		}
		if a.StreamB != b.StreamB {
			return a.StreamB < b.StreamB
		}
		return a.Addr < b.Addr
	})
	return out
}

// touch records stream u (on slot) accessing [addr, addr+w) and reports any
// collision with other live streams' recorded accesses.
func (sz *sanitizer) touch(u, slot int, addr uint64, w int64, writes bool) {
	bit := sanTouch(1) << uint(u)
	if writes {
		bit <<= 32
	}
	for b := addr; b < addr+uint64(w); b++ {
		t := sz.touched[b]
		others := t.readers() | t.writers()
		if !writes {
			others = t.writers() // read/read is benign
		}
		others &^= 1 << uint(u)
		for v := 0; others != 0; v++ {
			if others&(1<<uint(v)) == 0 {
				continue
			}
			others &^= 1 << uint(v)
			sz.record(Collision{
				StreamA: v, StreamB: u, ScalarPC: -1, Addr: b,
				AWrites: t.writers()&(1<<uint(v)) != 0, BWrites: writes,
			})
		}
		if t&bit == 0 {
			sz.touched[b] = t | bit
			sz.slotAddrs[slot] = append(sz.slotAddrs[slot], b)
		}
	}
}

// end clears a released (or squash-deconfigured) instance's bytes: later
// touches of the same addresses no longer overlap it in time.
func (sz *sanitizer) end(slot, u int) {
	mask := ^(sanTouch(1)<<uint(u) | sanTouch(1)<<uint(u+32))
	for _, b := range sz.slotAddrs[slot] {
		if t := sz.touched[b] & mask; t == 0 {
			delete(sz.touched, b)
		} else {
			sz.touched[b] = t
		}
	}
	delete(sz.slotAddrs, slot)
}

func (sz *sanitizer) record(c Collision) {
	key := [3]int{c.StreamA, c.StreamB, c.ScalarPC}
	if sz.seen[key] {
		return
	}
	sz.seen[key] = true
	sz.colls = append(sz.colls, c)
}

// sanTouchElem is the generation-side hook: placeElem calls it for every
// element address a stream emits.
func (e *Engine) sanTouchElem(s *stream, addr uint64) {
	if e.san == nil {
		return
	}
	e.san.touch(s.u, s.slot, addr, int64(s.w), s.kind == descriptor.Store)
}

// sanEndSlot is the release-side hook (releaseSlot and deconfigure).
func (e *Engine) sanEndSlot(s *stream) {
	if e.san == nil || s == nil {
		return
	}
	e.san.end(s.slot, s.u)
}

// NoteScalarStore is called by the core when a scalar/legacy store commits,
// checking its bytes against every live stream's recorded accesses. Scalar
// stores are not themselves recorded: streams configured later are ordered
// behind them by the engine's store-sync stall.
func (e *Engine) NoteScalarStore(pc int, addr uint64, n int) {
	if e.san == nil {
		return
	}
	e.san.noteScalarStore(pc, addr, n)
}

// noteScalarStore checks a committed scalar store's bytes against every live
// stream's recorded accesses without recording the store's own bytes.
func (sz *sanitizer) noteScalarStore(pc int, addr uint64, n int) {
	if n <= 0 {
		return
	}
	for b := addr; b < addr+uint64(n); b++ {
		t := sz.touched[b]
		others := t.readers() | t.writers()
		for v := 0; others != 0; v++ {
			if others&(1<<uint(v)) == 0 {
				continue
			}
			others &^= 1 << uint(v)
			sz.record(Collision{
				StreamA: v, StreamB: -1, ScalarPC: pc, Addr: b,
				AWrites: t.writers()&(1<<uint(v)) != 0, BWrites: true,
			})
		}
	}
}
