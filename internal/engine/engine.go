// Package engine implements the UVE Streaming Engine (paper §IV-B): the
// Stream Configuration Reorder Buffer (SCROB), the Stream Table with stream
// renaming, the Stream Scheduler with its lowest-occupancy policy, the
// Stream Processing Modules (address generation with cache-line coalescing
// and a one-cycle dimension-switch penalty), per-stream Load/Store FIFOs
// with speculative and committed pointers (so miss-speculatively consumed
// data is re-used, never re-loaded — paper A3), the Memory Request Queue and
// arbiter with TLB translation, and store draining at commit.
package engine

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/descriptor"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Config sizes the Streaming Engine (paper Table I and §VI-C).
type Config struct {
	LogStreams  int // architectural stream registers (32)
	PhysStreams int // physical stream-table entries (renaming headroom)
	FIFODepth   int // Load/Store FIFO entries (vector chunks) per stream
	NumModules  int // Stream Processing Modules
	MRQSize     int // Memory Request Queue entries
	SCROBSize   int // stream configuration reorder buffer entries
	VecBytes    int // vector register width in bytes
	// LoadPorts is how many stream line requests the arbiter issues per
	// cycle. Stream requests merge with the core's (idle, in streamed
	// loops) load ports before the cache (paper §IV-A "Cache Access"), so
	// this defaults to the number of Stream Processing Modules.
	LoadPorts int
	// ForceLevel, when non-nil, overrides every stream's configured cache
	// level (the Fig 11 sensitivity sweep).
	ForceLevel *arch.CacheLevel
}

// DefaultConfig matches Table I.
func DefaultConfig() Config {
	return Config{
		LogStreams:  32,
		PhysStreams: 48,
		FIFODepth:   8,
		NumModules:  2,
		MRQSize:     16,
		SCROBSize:   16,
		VecBytes:    arch.MaxVecBytes,
		LoadPorts:   2,
	}
}

// Stats aggregates engine activity.
type Stats struct {
	ConfigsCompleted  uint64
	ChunksLoaded      uint64
	ChunksStored      uint64
	ElementsLoaded    uint64
	ElementsStored    uint64
	LineRequests      uint64
	CoalescedReuses   uint64
	StoreLines        uint64
	FIFOFullCycles    uint64
	OriginStallCycles uint64
	MRQFullCycles     uint64
	DimSwitchStalls   uint64
	PageFaults        uint64
	StreamsReleased   uint64
	ConfigSyncStalls  uint64
	// Regenerations counts streams whose End part was squashed after
	// generation began: the stream regenerates from scratch, so gen-side
	// tallies (ChunksLoaded, ElementsLoaded, LineRequests, CoalescedReuses)
	// include the discarded work. Commit-side StreamTraffic does not.
	Regenerations uint64
}

// StreamTraffic is the committed, replay-safe per-stream work record the
// static cost model validates against. One record per stream configuration
// instance (stream renaming can map the same logical register u to several
// instances); counters cover committed chunks only, so miss-speculation and
// configuration squashes never inflate them.
type StreamTraffic struct {
	U     int
	Kind  descriptor.Kind
	Width arch.ElemWidth
	Level arch.CacheLevel
	// Elems/Bytes are committed elements and their byte volume.
	Elems uint64
	Bytes uint64
	// Chunks is the number of committed vector chunks; DimBoundaries counts
	// committed chunks that end a non-innermost dimension without ending the
	// stream (each costs one dimension-switch generation cycle).
	Chunks        uint64
	DimBoundaries uint64
	// LineRequests counts distinct line fetches the stream's generation
	// issued (maximal runs of consecutive same-line elements; loads only,
	// fault-free). StoreLines counts unique lines per committed store chunk.
	LineRequests uint64
	StoreLines   uint64
	// Complete reports the whole pattern committed (not stopped mid-way or
	// still live at snapshot time).
	Complete bool
}

// ChunkView is what the core receives when a stream register is consumed at
// rename (loads) or reserved (stores).
type ChunkView struct {
	Seq       int64
	Data      isa.VecVal
	N         int
	End       uint16
	Last      bool
	Fault     bool
	FaultAddr uint64
	// Consumed is false for synthetic end-of-stream reads (wrong-path reads
	// past the end): they must not be un-consumed or committed.
	Consumed bool
	// PrevEnd/PrevLast snapshot the stream's rename-time flags before this
	// consume, for ROB-walk restoration.
	PrevEnd  uint16
	PrevLast bool
}

// EndsDim0 reports whether the chunk ends an innermost-dimension sweep.
func (v ChunkView) EndsDim0() bool { return v.End&1 != 0 }

// EndsDim reports whether the chunk completes dimension k.
func (v ChunkView) EndsDim(k int) bool { return v.End&(1<<uint(k)) != 0 }

type chunk struct {
	seq        int64
	startElem  int64
	addrs      []uint64
	data       []uint64
	n          int
	end        uint16
	last       bool
	fault      bool
	faultAddr  uint64
	closed     bool // all elements placed (stores: ready to reserve)
	pendLines  int
	written    bool
	stamp      int64   // reservation order stamp (store chunks)
	originNeed []int64 // per-origin cumulative element debt at close
}

func (c *chunk) reset(seq, startElem int64) {
	*c = chunk{seq: seq, startElem: startElem, addrs: c.addrs[:0], data: c.data[:0], originNeed: c.originNeed[:0]}
}

// loadReady reports whether a load chunk's data can be handed to the core.
func (c *chunk) loadReady() bool { return c.closed && c.pendLines == 0 }

type lineFetch struct {
	line    uint64
	issued  bool
	slot    int
	epoch   uint64
	level   arch.CacheLevel
	pc      int
	waiters []laneRef
	// Injected-NACK bookkeeping: a NACKed request backs off until retryAt;
	// nacks counts injections so the plan's retry bound can cap them.
	retryAt int64
	nacks   int
}

type laneRef struct {
	seq  int64
	lane int
	addr uint64
}

type stream struct {
	slot  int
	epoch uint64
	u     int
	desc  *descriptor.Descriptor
	kind  descriptor.Kind
	w     arch.ElemWidth
	lanes int
	level arch.CacheLevel

	it     *descriptor.Iterator
	itPend descriptor.Elem
	itHas  bool
	itDone bool

	fifo           []chunk
	genPos         int64 // chunks whose generation has started
	genStarted     bool  // building chunk open at genPos
	specPos        int64 // chunks consumed/reserved speculatively by the core
	commitPos      int64 // chunks committed (slots freed)
	totalChunks    int64
	totalKnown     bool
	committedElems int64

	lastEnd    uint16 // flags of the most recently consumed chunk
	lastLast   bool
	commitEnd  uint16 // flags at the commit point (exception recovery)
	commitLast bool

	lastLine      uint64
	lastLineState int8 // 0 none, 1 outstanding, 2 done
	lastFetch     *lineFetch
	lastFault     bool
	dimSwitch     bool
	genPauseUntil int64 // injected dim-boundary pause: no generation before this cycle

	// Indirection: functional origin values come from shadow iterators over
	// the origin streams' descriptors; timing is paced by origin FIFO
	// delivery.
	shadow     *shadowSource
	originRefs []*stream // origin stream entries (timing pacing)
	originUs   []int     // logical registers of origin streams
	originCum  []int64   // cumulative origin elements consumed functionally

	// Origin-side bookkeeping for streams consumed by the engine itself.
	engineConsumed bool
	settledElems   int64

	// Commit-side traffic tallies for the StreamTraffic export.
	lineReqs     uint64 // gen-side but replay-safe: squash regenerates a fresh struct
	storeLineCnt uint64
	dimBounds    uint64

	configuring       bool // SAT-mapped at rename, descriptor not yet final
	suspended         bool
	released          bool
	configDone        bool // End part committed
	coreSawEnd        bool // a consume of the Last chunk has committed
	pendingStoreLines int
	minAddr, maxAddr  uint64 // conservative footprint for store/load overlap checks
	unbounded         bool   // indirect patterns: footprint unknown
}

func (s *stream) occupancy() int64 { return s.genPos - s.commitPos }

func (s *stream) originIdx(u int) int {
	for i, id := range s.originUs {
		if id == u {
			return i
		}
	}
	return 0
}

// maxStreamRegs is the architectural stream-register count (u0..u31, the
// Stream Table geometry of Table I). shadowSource keys its per-origin state
// by this, so it can use fixed arrays instead of per-configure maps.
const maxStreamRegs = 32

// shadowSource adapts origin streams' descriptors into a
// descriptor.OriginSource with eager functional memory reads; every read is
// recorded as timing debt against the origin's FIFO delivery. Origin state
// lives in fixed 32-slot arrays indexed by the architectural stream number —
// configuring an indirect stream allocates nothing beyond the struct itself.
type shadowSource struct {
	mem   *mem.Memory
	its   [maxStreamRegs]*descriptor.Iterator
	ws    [maxStreamRegs]arch.ElemWidth
	owner *stream
}

func (ss *shadowSource) NextOrigin(u int) (uint64, bool) {
	if u < 0 || u >= maxStreamRegs {
		return 0, false
	}
	it := ss.its[u]
	if it == nil {
		return 0, false
	}
	e, ok := it.Next()
	if !ok {
		return 0, false
	}
	ss.owner.originCum[ss.owner.originIdx(u)]++
	return ss.mem.Read(e.Addr, ss.ws[u]), true
}

// ConfigToken identifies one configuration µOp in the SCROB for later
// commit or squash.
type ConfigToken = scrobEntry

type scrobEntry struct {
	part      *isa.StreamCfgPart
	valid     bool
	processed bool
	committed bool
	slot      int // stream-table entry the part belongs to
	// Undo state recorded at rename (Start parts) or processing (others).
	activatedSlot   int // slot allocated by a Start part, -1 otherwise
	prevSAT         int
	restoreBuilding []*isa.StreamCfgPart
}

type flagPair struct {
	end  uint16
	last bool
}

// storeLine references its stream by pointer, not slot+epoch: committed
// store drains survive exception replay (ReloadFromCommit bumps the epoch
// to orphan speculative line fetches, but a committed line must still
// decrement pendingStoreLines or StoresPending wedges the post-halt drain).
type storeLine struct {
	line  uint64
	level arch.CacheLevel
	s     *stream
}

var debugSCROB = false

// DebugConfigure, when set, observes every finalized stream configuration.
var DebugConfigure func(u int, desc string)

// Engine is the streaming engine instance attached to one core.
type Engine struct {
	cfg  Config
	hier *mem.Hierarchy

	sat       []int // logical stream register → slot, -1 when unmapped
	entries   []*stream
	freeSlots []int

	scrob    []*scrobEntry
	building map[int][]*isa.StreamCfgPart // slot → parts accumulated in order

	vecBytes     int // effective vector length (ss.setvl), affects new configs
	mrq          []*lineFetch
	storeQ       []storeLine
	rr           int        // scheduler round-robin cursor
	reserveStamp int64      // monotonically counts store reservations
	lastFlags    []flagPair // final flags of released streams, by logical reg

	// SyncStoresPending is installed by the core: it reports whether older
	// scalar stores are still pending, delaying input-stream activation
	// (paper §III-A3 "Streaming memory model").
	SyncStoresPending func() bool

	san *sanitizer // nil unless EnableSanitizer was called

	// inj, when non-nil, perturbs the request path deterministically:
	// NACK/backoff on MRQ line requests and forced generation pauses at
	// descriptor dimension boundaries. Timing only — never data.
	inj *fault.Injector

	// rec receives instrumentation events; tracing caches rec.Enabled().
	// now is the engine's event clock: Tick sets it, and the core advances
	// it at the start of each Step so core-called methods (ConsumeChunk,
	// ReserveStore) timestamp correctly before the engine's own Tick runs.
	rec     trace.Recorder
	tracing bool
	now     int64

	// traffic accumulates StreamTraffic records of released streams in
	// release order; Traffic() extends it with live-stream snapshots.
	traffic []StreamTraffic

	// activity counts state-changing steps the engine took on its own clock
	// (SCROB processing, generation, line arrivals, store drains, chunk
	// commits, releases). The event-driven scheduler compares snapshots of it
	// across a cycle to prove the engine quiescent; see NextEventAt.
	activity uint64

	Stats Stats
}

// New builds a streaming engine over the given memory hierarchy.
func New(cfg Config, h *mem.Hierarchy) *Engine {
	if cfg.LogStreams > maxStreamRegs {
		panic(fmt.Sprintf("engine: LogStreams %d exceeds the %d-entry Stream Table geometry", cfg.LogStreams, maxStreamRegs))
	}
	e := &Engine{
		cfg:       cfg,
		hier:      h,
		sat:       make([]int, cfg.LogStreams),
		entries:   make([]*stream, cfg.PhysStreams),
		building:  make(map[int][]*isa.StreamCfgPart),
		lastFlags: make([]flagPair, cfg.LogStreams),
	}
	for i := range e.sat {
		e.sat[i] = -1
	}
	for i := cfg.PhysStreams - 1; i >= 0; i-- {
		e.freeSlots = append(e.freeSlots, i)
	}
	e.vecBytes = cfg.VecBytes
	e.rec = trace.Nop
	return e
}

// SetRecorder directs instrumentation events at r (nil restores the no-op
// recorder). Call before the first cycle.
func (e *Engine) SetRecorder(r trace.Recorder) {
	if r == nil {
		r = trace.Nop
	}
	e.rec = r
	e.tracing = r.Enabled()
}

// SetNow advances the engine's event clock; the core calls it at the start
// of each Step (when tracing) so events emitted from rename-stage calls
// carry the current cycle rather than the previous Tick's.
func (e *Engine) SetNow(now int64) { e.now = now }

// SetInjector attaches a deterministic fault injector to the engine's
// request path (nil detaches). Call before the first cycle.
func (e *Engine) SetInjector(in *fault.Injector) { e.inj = in }

// SetVL narrows (or restores) the effective vector length used to size the
// chunks of subsequently configured streams (ss.setvl).
func (e *Engine) SetVL(bytes int) {
	if bytes <= 0 || bytes > e.cfg.VecBytes {
		bytes = e.cfg.VecBytes
	}
	e.vecBytes = bytes
}

// StreamFor returns the physical stream slot mapped to logical register u
// and visible to the pipeline (configured and not suspended).
func (e *Engine) StreamFor(u int) (int, bool) {
	if u < 0 || u >= len(e.sat) || e.sat[u] < 0 {
		return 0, false
	}
	slot := e.sat[u]
	if s := e.entries[slot]; s != nil && !s.suspended && !s.released {
		return slot, true
	}
	return 0, false
}

// Configuring reports whether the slot is still awaiting its descriptor.
func (e *Engine) Configuring(slot int) bool {
	s := e.entries[slot]
	return s != nil && s.configuring
}

// IsLoad reports whether the slot holds an input stream.
func (e *Engine) IsLoad(slot int) bool {
	s := e.entries[slot]
	return s != nil && s.kind == descriptor.Load
}

// --- SCROB: speculative stream configuration (paper §IV-A) ---

// RenameConfigPart registers one configuration µOp at rename. It returns a
// token for later commit/squash, or ok=false when the SCROB is full or no
// stream-table entry is free (the rename stage must stall). A Start part
// allocates the physical stream entry and updates the SAT immediately —
// younger instructions already see the register as stream-associated and
// stall on CanConsume until configuration completes, exactly the stream
// renaming the paper describes (§IV-A "Stream Renaming").
func (e *Engine) RenameConfigPart(part *isa.StreamCfgPart) (*ConfigToken, bool) {
	if len(e.scrob) >= e.cfg.SCROBSize {
		return nil, false
	}
	ent := &scrobEntry{part: part, valid: true, activatedSlot: -1, slot: -1}
	if part.Start {
		if len(e.freeSlots) == 0 {
			return nil, false
		}
		slot := e.freeSlots[len(e.freeSlots)-1]
		e.freeSlots = e.freeSlots[:len(e.freeSlots)-1]
		var epoch uint64
		if old := e.entries[slot]; old != nil {
			epoch = old.epoch + 1
		}
		e.entries[slot] = &stream{
			slot: slot, epoch: epoch, u: part.Stream,
			kind: part.Kind, w: part.Width, level: part.Level,
			configuring: true,
		}
		ent.activatedSlot = slot
		ent.prevSAT = e.sat[part.Stream]
		e.sat[part.Stream] = slot
	}
	ent.slot = e.sat[part.Stream]
	e.scrob = append(e.scrob, ent)
	if debugSCROB {
		fmt.Printf("scrob: rename part u%d slot=%d start=%v end=%v (queue %d)\n", part.Stream, ent.slot, part.Start, part.End, len(e.scrob))
	}
	return ent, true
}

// SquashConfigPart undoes one configuration µOp during a ROB walk. The core
// squashes youngest-first, so undo states compose.
func (e *Engine) SquashConfigPart(tok *ConfigToken) {
	if tok == nil || !tok.valid {
		return
	}
	tok.valid = false
	if debugSCROB {
		fmt.Printf("scrob: squash part u%d start=%v end=%v processed=%v\n", tok.part.Stream, tok.part.Start, tok.part.End, tok.processed)
	}
	if !tok.processed {
		for i := len(e.scrob) - 1; i >= 0; i-- {
			if e.scrob[i] == tok {
				e.scrob = append(e.scrob[:i], e.scrob[i+1:]...)
				break
			}
		}
		return
	}
	u := tok.part.Stream
	if tok.part.Start && tok.activatedSlot >= 0 {
		// Undo the rename-side allocation: release the slot and restore the
		// previous mapping.
		delete(e.building, tok.activatedSlot)
		e.releaseSlot(tok.activatedSlot)
		e.sat[u] = tok.prevSAT
		e.dropScrob(tok)
		return
	}
	if tok.processed {
		if tok.part.End {
			// The stream had been fully configured and possibly started
			// generating: put it back into configuring state; the data it
			// fetched is dropped.
			e.deconfigure(tok.slot, tok.restoreBuilding)
		} else {
			parts := e.building[tok.slot]
			if len(parts) > 0 && parts[len(parts)-1] == tok.part {
				e.building[tok.slot] = parts[:len(parts)-1]
			}
		}
	}
	e.dropScrob(tok)
}

// deconfigure reverts a stream to its configuring state after the squash of
// its End part.
func (e *Engine) deconfigure(slot int, building []*isa.StreamCfgPart) {
	s := e.entries[slot]
	if s == nil || s.released {
		return
	}
	e.sanEndSlot(s)
	e.Stats.Regenerations++
	e.entries[slot] = &stream{
		slot: slot, epoch: s.epoch + 1, u: s.u,
		kind: s.kind, w: s.w, level: s.level,
		configuring: true,
	}
	kept := e.mrq[:0]
	for _, f := range e.mrq {
		if f.slot != slot || f.issued {
			kept = append(kept, f)
		}
	}
	e.mrq = kept
	e.building[slot] = building
}

func (e *Engine) dropScrob(tok *scrobEntry) {
	if !tok.part.Start && tok.part.End {
		_ = tok // keep symmetric structure; removal below covers all cases
	}
	for i := len(e.scrob) - 1; i >= 0; i-- {
		if e.scrob[i] == tok {
			e.scrob = append(e.scrob[:i], e.scrob[i+1:]...)
			return
		}
	}
}

// ConfigProcessed reports whether the SCROB has retired the part; the core
// holds the configuration µOp's completion (and therefore its commit) until
// then, which is what serializes configuration at one part per cycle.
func (e *Engine) ConfigProcessed(tok *ConfigToken) bool {
	return tok != nil && tok.processed
}

// CommitConfigPart marks one configuration µOp committed.
func (e *Engine) CommitConfigPart(tok *ConfigToken) {
	if tok == nil {
		return
	}
	if !tok.processed {
		panic("engine: committing unprocessed config part")
	}
	tok.committed = true
	if tok.part.End && tok.slot >= 0 {
		if s := e.entries[tok.slot]; s != nil && !s.released {
			s.configDone = true
		}
	}
	for len(e.scrob) > 0 && e.scrob[0].committed {
		e.scrob = e.scrob[1:]
	}
}

// processSCROB retires one configuration part per cycle, in order, and
// finalizes a stream when its End part is processed — speculatively, before
// commit (paper §IV-A "Stream Configuration").
func (e *Engine) processSCROB() {
	for _, ent := range e.scrob {
		if !ent.valid {
			continue
		}
		if ent.processed {
			continue
		}
		part := ent.part
		slot := ent.slot
		if part.End {
			parts := append(append([]*isa.StreamCfgPart{}, e.building[slot]...), part)
			if parts[0].Start && parts[0].Kind == descriptor.Load {
				// Input streams synchronize with older pending scalar stores
				// and with still-active output streams before activating
				// (paper §III-A3: the processor orders input streams after
				// preceding writes).
				if (e.SyncStoresPending != nil && e.SyncStoresPending()) || e.storeStreamsBusy() {
					e.Stats.ConfigSyncStalls++
					return
				}
			}
			ent.processed = true
			e.activity++
			ent.restoreBuilding = e.building[slot]
			delete(e.building, slot)
			d, err := isa.RebuildDescriptor(parts)
			if err != nil {
				panic(fmt.Sprintf("engine: bad stream config for u%d: %v", part.Stream, err))
			}
			e.configure(slot, d)
			return
		}
		ent.processed = true
		e.activity++
		e.building[slot] = append(e.building[slot], part)
		if debugSCROB {
			fmt.Printf("scrob: part u%d slot=%d start=%v end=%v building=%d\n", part.Stream, slot, part.Start, part.End, len(e.building[slot]))
		}
		return // one part per cycle
	}
}

// configure finalizes the descriptor on a rename-allocated stream entry and
// starts generation.
func (e *Engine) configure(slot int, d *descriptor.Descriptor) {
	if e.cfg.ForceLevel != nil {
		d = d.Clone()
		d.Level = *e.cfg.ForceLevel
	}
	s := e.entries[slot]
	if s == nil || s.released || !s.configuring {
		panic(fmt.Sprintf("engine: configuring slot %d in invalid state", slot))
	}
	s.configuring = false
	s.desc = d
	s.kind = d.Kind
	s.w = d.Width
	s.lanes = arch.LanesFor(e.vecBytes, d.Width)
	s.level = d.Level
	s.fifo = make([]chunk, e.cfg.FIFODepth)
	s.computeFootprint()
	if d.HasIndirect() {
		s.shadow = &shadowSource{mem: e.hier.Mem, owner: s}
		for _, ou := range d.Origins() {
			oslot, ok := e.StreamFor(ou)
			if !ok || e.entries[oslot].configuring {
				panic(fmt.Sprintf("engine: stream u%d has unconfigured origin u%d", s.u, ou))
			}
			os := e.entries[oslot]
			os.engineConsumed = true
			s.originRefs = append(s.originRefs, os)
			s.originUs = append(s.originUs, ou)
			s.originCum = append(s.originCum, 0)
			s.shadow.its[ou] = descriptor.NewIterator(os.desc, nil)
			s.shadow.ws[ou] = os.w
		}
	}
	s.it = descriptor.NewIterator(d, s.shadow)
	e.Stats.ConfigsCompleted++
	if e.tracing {
		e.rec.Emit(trace.Event{Cycle: e.now, Kind: trace.EvStreamConfig, Arg0: int64(slot), Arg1: int64(s.u)})
	}
	if DebugConfigure != nil {
		DebugConfigure(s.u, d.String())
	}
	if debugSCROB {
		fmt.Printf("scrob: configure u%d slot=%d desc=%s\n", s.u, slot, d)
	}
}

// computeFootprint derives a conservative [min,max] byte range the stream
// can touch, used for scalar-load vs output-stream overlap checks. Indirect
// patterns are unbounded.
func (s *stream) computeFootprint() {
	if s.desc.HasIndirect() {
		s.unbounded = true
		return
	}
	lo, hi := int64(0), int64(0)
	for k, d := range s.desc.Dims {
		size := d.Size
		// Static modifiers can grow or shift a dimension; widen the bound
		// by |disp|·count on the affected parameter.
		for _, m := range s.desc.Static {
			if m.Bound-1 != k {
				continue
			}
			g := m.Disp
			if g < 0 {
				g = -g
			}
			c := m.Count
			if c <= 0 {
				c = 1 << 20
			}
			switch m.Target {
			case descriptor.TargetSize:
				size += g * c
			case descriptor.TargetOffset, descriptor.TargetStride:
				lo -= g * c
				hi += g * c
			}
		}
		if size <= 0 {
			continue
		}
		// Element-index contribution range of dimension k (paper eq. (1)):
		// dim 0 contributes O0 + i·S0; dims k≥1 contribute (Ok+i)·Sk.
		var a, b int64
		if k == 0 {
			a, b = d.Offset, d.Offset+(size-1)*d.Stride
		} else {
			a, b = d.Offset*d.Stride, (d.Offset+size-1)*d.Stride
		}
		if a > b {
			a, b = b, a
		}
		lo += a
		hi += b
	}
	w := int64(s.w)
	s.minAddr = uint64(int64(s.desc.Base) + lo*w)
	s.maxAddr = uint64(int64(s.desc.Base) + hi*w + w - 1)
}

// trafficOf snapshots a configured stream's committed work.
func trafficOf(s *stream, released bool) StreamTraffic {
	return StreamTraffic{
		U: s.u, Kind: s.kind, Width: s.w, Level: s.level,
		Elems:         uint64(s.committedElems),
		Bytes:         uint64(s.committedElems) * uint64(s.w),
		Chunks:        uint64(s.commitPos),
		DimBoundaries: s.dimBounds,
		LineRequests:  s.lineReqs,
		StoreLines:    s.storeLineCnt,
		Complete:      released && s.totalKnown && s.commitPos == s.totalChunks,
	}
}

// Traffic returns the committed per-stream work records: released streams in
// release order, then snapshots of still-live configured streams in slot
// order. Idempotent — safe to call repeatedly or mid-run.
func (e *Engine) Traffic() []StreamTraffic {
	out := append([]StreamTraffic(nil), e.traffic...)
	for _, s := range e.entries {
		if s != nil && !s.released && s.desc != nil {
			out = append(out, trafficOf(s, false))
		}
	}
	return out
}

func (e *Engine) releaseSlot(slot int) {
	s := e.entries[slot]
	if s == nil || s.released {
		return
	}
	e.sanEndSlot(s)
	// A Start-part squash releases a rename-allocated entry that never got
	// its descriptor (desc == nil): no work to record.
	if s.desc != nil {
		e.traffic = append(e.traffic, trafficOf(s, true))
	}
	s.released = true
	s.epoch++ // invalidate in-flight callbacks
	// Remove the slot's pending MRQ entries.
	kept := e.mrq[:0]
	for _, f := range e.mrq {
		if f.slot != slot || f.issued {
			kept = append(kept, f)
		}
	}
	e.mrq = kept
	e.freeSlots = append(e.freeSlots, slot)
	e.Stats.StreamsReleased++
	if e.tracing {
		e.rec.Emit(trace.Event{Cycle: e.now, Kind: trace.EvStreamEnd, Arg0: int64(slot), Arg1: int64(s.u)})
	}
}

// DebugSCROB toggles configuration tracing (tests only).
func DebugSCROB(on bool) { debugSCROB = on }
